// Ablation for the closing remark of Sec. IV: does the node-level energy
// advantage survive at cluster scale? BigDFT's energy-to-solution on an
// ARM cluster (stock network / upgraded network / energy-saving Ethernet)
// against a single Xeon server doing the same work.
#include <iostream>

#include "apps/bigdft.h"
#include "arch/platforms.h"
#include "power/cluster_energy.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

}  // namespace

int main() {
  std::cout << "=== Sec. IV ablation: cluster-level energy to solution "
               "(BigDFT, 36 ARM cores) ===\n\n";

  mb::apps::BigDftParams params;
  params.ranks = 36;
  params.iterations = 5;
  params.compute_s_per_iter = 2.0;
  params.transpose_bytes = 24ull << 20;

  const double stock =
      mb::apps::run_bigdft(mb::apps::tibidabo_cluster(18), params)
          .makespan_s;
  const double upgraded =
      mb::apps::run_bigdft(mb::apps::upgraded_cluster(18), params)
          .makespan_s;

  // The same work on one Xeon server: sequential compute is
  // iterations x compute_s_per_iter on an ARM core; the per-core speed
  // ratio for this DP-convolution workload is the Table II BigDFT ratio
  // scaled by the core counts (22.7 x 2/4 ~ 11.4).
  const double seq = params.iterations * params.compute_s_per_iter;
  const double per_core_ratio = 11.4;
  const auto xeon = mb::arch::xeon_x5550();
  const double xeon_makespan = seq / (xeon.cores * per_core_ratio);
  const double xeon_energy = xeon.power_w * xeon_makespan;

  const auto arm_stock = mb::power::arm_cluster_power(18);
  const auto arm_eee = mb::power::arm_cluster_power_eee(18);

  mb::support::Table table(
      {"Configuration", "Makespan (s)", "Power (W)", "Energy (J)",
       "vs Xeon"});
  auto row = [&](const std::string& name, const mb::power::ClusterPower& p,
                 double makespan) {
    const double e = mb::power::cluster_energy_j(p, makespan);
    table.add_row({name, fmt_fixed(makespan, 2),
                   fmt_fixed(mb::power::cluster_watts(p), 1),
                   fmt_fixed(e, 1), fmt_fixed(e / xeon_energy, 2)});
  };
  row("ARM cluster, stock GbE switches", arm_stock, stock);
  row("ARM cluster, upgraded switches", arm_stock, upgraded);
  row("ARM cluster, upgraded + EEE switches", arm_eee, upgraded);
  table.add_row({"1x Xeon X5550 server (same work)",
                 fmt_fixed(xeon_makespan, 2), fmt_fixed(xeon.power_w, 1),
                 fmt_fixed(xeon_energy, 1), "1.00"});
  std::cout << table;

  std::cout
      << "\nPaper Sec. IV: 'the node power efficiency is likely to be "
         "counterbalanced by\nthe network inefficiency' — the stock-network "
         "row loses the Table II advantage;\nthe upgraded, energy-saving "
         "network (chosen for the final prototype) restores\nmost of it. "
         "Switch power and parallel efficiency both matter.\n";
  return 0;
}
