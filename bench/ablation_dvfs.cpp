// Ablation: energy-optimal frequency scaling on the embedded board.
//
// The memory-bound fraction of each kernel is *measured* on the simulated
// Snowball (memory stall cycles / total cycles), then the DVFS model
// answers the operational question: at which frequency does each workload
// burn the least energy? Compute-bound LINPACK races to idle near f_max;
// the DRAM-bound membench prefers a much lower clock — frequency tuning
// is yet another per-workload parameter, reinforcing the paper's
// auto-tuning thesis.
#include <iostream>

#include "arch/platforms.h"
#include "kernels/linpack.h"
#include "kernels/membench.h"
#include "power/dvfs.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

struct Measured {
  std::string name;
  double seconds = 0.0;
  double compute_fraction = 0.0;
};

Measured measure_linpack(mb::sim::Machine& m) {
  mb::kernels::LinpackParams p;
  p.n = 96;
  p.block = 32;
  const auto r = mb::kernels::linpack_run(m, p);
  const auto& b = r.sim.breakdown;
  return {"LINPACK (n=96)", r.sim.seconds,
          1.0 - b.memory_cycles / b.total};
}

Measured measure_membench(mb::sim::Machine& m) {
  mb::kernels::MembenchParams p;
  p.array_bytes = 2048 * 1024;  // DRAM resident
  p.elem_bits = 64;
  p.unroll = 8;
  p.passes = 2;
  const auto r = mb::kernels::membench_run(m, p);
  const auto& b = r.sim.breakdown;
  return {"membench (2MB stream)", r.sim.seconds,
          1.0 - b.memory_cycles / b.total};
}

}  // namespace

int main() {
  std::cout << "=== Ablation: DVFS energy-to-solution on the Snowball "
               "===\n\n";
  mb::sim::Machine machine(mb::arch::snowball(),
                           mb::sim::PagePolicy::kConsecutive,
                           mb::support::Rng(1));
  const auto model = mb::power::snowball_dvfs();

  for (const auto& w :
       {measure_linpack(machine), measure_membench(machine)}) {
    std::cout << "--- " << w.name << " (measured compute fraction "
              << fmt_fixed(w.compute_fraction, 2) << ") ---\n";
    mb::power::DvfsWorkload load{w.seconds, w.compute_fraction};
    mb::support::Table table(
        {"Frequency (GHz)", "Time (ms)", "Power (W)", "Energy (mJ)"});
    for (const double f : {0.2e9, 0.4e9, 0.6e9, 0.8e9, 1.0e9, 1.2e9}) {
      table.add_row(
          {fmt_fixed(f / 1e9, 1),
           fmt_fixed(mb::power::dvfs_seconds(model, load, f) * 1e3, 2),
           fmt_fixed(mb::power::dvfs_watts(model, f), 2),
           fmt_fixed(mb::power::dvfs_energy_j(model, load, f) * 1e3, 2)});
    }
    std::cout << table;
    const double f_opt = mb::power::dvfs_optimal_frequency(model, load);
    std::cout << "energy-optimal frequency: " << fmt_fixed(f_opt / 1e9, 2)
              << " GHz\n\n";
  }
  std::cout << "Compute-bound work races to idle; memory-bound work clocks "
               "down. The right\nsetting is a property of the workload — "
               "one more reason tuning must be\nautomated and per-instance "
               "(paper Sec. VI-B).\n";
  return 0;
}
