// Ablation for Sec. VI "Perspectives": hybrid embedded nodes and
// instance-specific GPU buffer tuning.
//
// Part 1 — the efficiency table behind the paper's exascale argument:
// single-precision GFLOPS/W of the Xeon, the CPU-only embedded nodes, and
// the hybrid CPU+GPU nodes (Tegra3 extension, Exynos5+Mali-T604
// prototype), against the 20 MW exaflop requirement of 50 GFLOPS/W.
//
// Part 2 — "optimal buffer size used in GPU kernel could be tuned to
// match the length of the input problem": the buffer-size optimum of an
// OpenCL-style kernel as a function of the instance size.
#include <iostream>

#include "arch/platforms.h"
#include "core/param_space.h"
#include "core/search.h"
#include "gpu/hybrid.h"
#include "power/top500.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

void efficiency_table() {
  mb::support::Table table(
      {"Node", "SP GFLOPS (achievable)", "Power (W)", "GFLOPS/W"});

  const auto xeon = mb::arch::xeon_x5550();
  const double xeon_gf = xeon.peak_sp_gflops() * 0.5;
  table.add_row({xeon.name, fmt_fixed(xeon_gf, 1),
                 fmt_fixed(xeon.power_w, 1),
                 fmt_fixed(xeon_gf / xeon.power_w, 2)});

  const auto snow = mb::arch::snowball();
  const double snow_gf = snow.peak_sp_gflops() * 0.5;
  table.add_row({snow.name, fmt_fixed(snow_gf, 1),
                 fmt_fixed(snow.power_w, 1),
                 fmt_fixed(snow_gf / snow.power_w, 2)});

  for (const auto& node :
       {mb::gpu::tegra3_node(), mb::gpu::exynos5_node()}) {
    const auto t = mb::gpu::hybrid_sp_throughput(node);
    table.add_row({node.cpu.name + " + " + node.gpu.name,
                   fmt_fixed(t.total_gflops, 1),
                   fmt_fixed(node.power_w(), 1),
                   fmt_fixed(t.gflops_per_watt, 2)});
  }
  std::cout << table;
  mb::power::ExascaleRequirement req;
  std::cout << "exaflop @ 20 MW requires: " << req.required_efficiency()
            << " GFLOPS/W\n\n";
}

void buffer_tuning() {
  std::cout << "--- instance-specific GPU buffer tuning (Mali-T604) ---\n";
  const auto device = mb::gpu::mali_t604();
  mb::support::Table table(
      {"Instance N", "Best buffer B", "Time (ms)", "Naive B=N (ms)"});
  for (const std::uint64_t n :
       {1ull << 10, 1ull << 12, 1ull << 14, 1ull << 17, 1ull << 20}) {
    mb::core::ParamSpace space;
    std::vector<std::int64_t> buffers;
    for (std::uint64_t b = 64; b <= n; b *= 4)
      buffers.push_back(static_cast<std::int64_t>(b));
    space.add("buffer", buffers);

    auto eval = [&](const mb::core::Point& p) {
      mb::gpu::GpuKernel k;
      k.flops_per_element = 64.0;
      k.bytes_per_element = 8.0;
      k.elements = n;
      k.buffer_elements = static_cast<std::uint64_t>(p.get("buffer"));
      return mb::gpu::gpu_kernel_seconds(device, k);
    };
    const auto best = mb::core::exhaustive_search(
        space, eval, mb::core::Direction::kMinimize);

    mb::gpu::GpuKernel naive;
    naive.flops_per_element = 64.0;
    naive.bytes_per_element = 8.0;
    naive.elements = n;
    naive.buffer_elements = n;
    table.add_row({std::to_string(n),
                   std::to_string(space.at(best.best_index).get("buffer")),
                   fmt_fixed(best.best_value * 1e3, 2),
                   fmt_fixed(mb::gpu::gpu_kernel_seconds(device, naive) * 1e3,
                             2)});
  }
  std::cout << table
            << "\nThe optimum shifts with the instance: static tuning is "
               "not enough, which is\nwhy the paper proposes JIT-compiled "
               "(OpenCL) kernels tuned per problem size.\n";
}

}  // namespace

int main() {
  std::cout << "=== Sec. VI ablation: hybrid embedded platforms ===\n\n";
  efficiency_table();
  buffer_tuning();
  return 0;
}
