// Ablation: what if the Cortex-A9 had an aggressive hardware stream
// prefetcher? The calibrated platform models bake the *measured* average
// latency hiding into miss_overlap/MSHR parameters; this bench runs the
// mechanistic prefetcher instead and separates the two memory behaviours:
// streaming (prefetchable — bandwidth recovers) vs pointer chasing
// (fundamentally serial — nothing helps). A design-space data point for
// the embedded-HPC SoCs the Mont-Blanc project was arguing for.
#include <iostream>

#include "arch/platforms.h"
#include "kernels/latency.h"
#include "kernels/membench.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

mb::sim::Machine machine_with(bool prefetch) {
  mb::sim::Machine m(mb::arch::snowball(),
                     mb::sim::PagePolicy::kConsecutive,
                     mb::support::Rng(1));
  if (prefetch) {
    mb::cache::PrefetcherConfig cfg;
    cfg.enabled = true;
    cfg.degree = 4;
    m.set_prefetcher(cfg);
  }
  return m;
}

double stream_gbs(bool prefetch, std::uint64_t kb) {
  auto m = machine_with(prefetch);
  mb::kernels::MembenchParams p;
  p.array_bytes = kb * 1024;
  p.elem_bits = 64;
  p.unroll = 8;
  p.passes = 2;
  return mb::kernels::membench_run(m, p).bandwidth_bytes_per_s / 1e9;
}

double chase_ns(bool prefetch, std::uint64_t kb) {
  auto m = machine_with(prefetch);
  mb::kernels::LatencyParams p;
  p.buffer_bytes = kb * 1024;
  p.stride_bytes = 64;
  p.hops = 4096;
  return mb::kernels::latency_run(m, p).ns_per_hop;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: a stream prefetcher on the Snowball ===\n\n";
  mb::support::Table stream({"Array", "No prefetch (GB/s)",
                             "Prefetch deg=4 (GB/s)", "Gain"});
  for (const std::uint64_t kb : {16ull, 128ull, 1024ull, 4096ull}) {
    const double off = stream_gbs(false, kb);
    const double on = stream_gbs(true, kb);
    stream.add_row({std::to_string(kb) + " KB", fmt_fixed(off, 2),
                    fmt_fixed(on, 2), fmt_fixed(on / off, 2) + "x"});
  }
  std::cout << "--- streaming (membench, 64-bit, unroll 8) ---\n"
            << stream << '\n';

  mb::support::Table chase({"Buffer", "No prefetch (ns/hop)",
                            "Prefetch deg=4 (ns/hop)"});
  for (const std::uint64_t kb : {16ull, 1024ull, 8192ull}) {
    chase.add_row({std::to_string(kb) + " KB",
                   fmt_fixed(chase_ns(false, kb), 1),
                   fmt_fixed(chase_ns(true, kb), 1)});
  }
  std::cout << "--- pointer chase (random permutation) ---\n"
            << chase << '\n';
  std::cout
      << "The prefetcher pays off exactly where latency is the limiter "
         "(the L2-resident\nwindow); DRAM-sized streams are already at "
         "the bandwidth ceiling, and the\npointer chase is immune — "
         "dependent misses cannot be predicted. Memory-level\n"
         "parallelism is a workload property before it is a hardware "
         "one.\n";
  return 0;
}
