// Ablation for Sec. IV: "This problem is to be fixed by upgrading the
// Ethernet switches used on Tibidabo." BigDFT at 36 cores on the stock
// interconnect vs the upgraded one (deep buffers, 10GbE uplinks, lower
// latency).
#include <iostream>

#include "apps/bigdft.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

struct Outcome {
  double makespan = 0.0;
  std::uint64_t drops = 0;
  std::size_t delayed = 0;
  double median_ms = 0.0;
};

Outcome run(const mb::apps::ClusterConfig& cluster) {
  mb::apps::BigDftParams p;
  p.ranks = 36;
  p.iterations = 10;
  p.compute_s_per_iter = 2.0;
  p.transpose_bytes = 24ull << 20;  // the congestion-bound Fig. 3c instance
  const auto r = mb::apps::run_bigdft(cluster, p);
  const auto report = mb::trace::analyze_collectives(r.trace, "alltoallv");
  return {r.makespan_s, r.network_drops, report.delayed_count,
          report.median_duration * 1e3};
}

}  // namespace

int main() {
  std::cout << "=== Ablation: Tibidabo switch upgrade (BigDFT, 36 cores, "
               "10 iterations) ===\n\n";
  const Outcome stock = run(mb::apps::tibidabo_cluster(18));
  const Outcome upgraded = run(mb::apps::upgraded_cluster(18));

  mb::support::Table table({"Interconnect", "Makespan (s)", "Drops",
                            "Delayed alltoallv", "Median a2a (ms)"});
  table.add_row({"stock 1GbE, shallow buffers",
                 fmt_fixed(stock.makespan, 2), std::to_string(stock.drops),
                 std::to_string(stock.delayed),
                 fmt_fixed(stock.median_ms, 2)});
  table.add_row({"upgraded (deep buffers, 10GbE uplinks)",
                 fmt_fixed(upgraded.makespan, 2),
                 std::to_string(upgraded.drops),
                 std::to_string(upgraded.delayed),
                 fmt_fixed(upgraded.median_ms, 2)});
  std::cout << table;
  std::cout << "\nSpeedup from the upgrade: "
            << fmt_fixed(stock.makespan / upgraded.makespan, 2) << "x\n";
  return 0;
}
