// Ablation: transposition-table size on the StockFish-proxy workload.
//
// A TT cuts the searched node count — but its probes are uniform random
// accesses over the whole table, a pattern that the Xeon's 8 MB L3 absorbs
// and the A9's 512 KB L2 does not. Another instance of the paper's
// Sec.-V/VII theme: an optimization that is straightforwardly good on the
// server can be much less so on the embedded platform, so it has to be
// *measured*, not assumed.
#include <iostream>

#include "arch/platforms.h"
#include "kernels/chessbench.h"
#include "support/table.h"

namespace {

using mb::support::fmt_eng;
using mb::support::fmt_fixed;

void sweep(const mb::arch::Platform& platform) {
  std::cout << "--- " << platform.name << " ---\n";
  mb::sim::Machine machine(platform, mb::sim::PagePolicy::kConsecutive,
                           mb::support::Rng(1));
  mb::support::Table table({"TT size", "Nodes", "TT hit rate", "Time (ms)",
                            "Speedup vs no TT"});
  double baseline = 0.0;
  for (const std::uint64_t tt_bytes :
       {0ull, 256ull << 10, 1ull << 20, 4ull << 20}) {
    mb::kernels::ChessbenchParams p;
    p.depth = 4;
    p.positions = 3;
    p.tt_bytes = tt_bytes;
    const auto r = mb::kernels::chessbench_run(machine, p);
    if (tt_bytes == 0) baseline = r.sim.seconds;
    const double hit_rate =
        r.stats.tt_probes > 0
            ? static_cast<double>(r.stats.tt_hits) / r.stats.tt_probes
            : 0.0;
    table.add_row(
        {tt_bytes == 0 ? "off" : std::to_string(tt_bytes >> 10) + " KB",
         std::to_string(r.stats.nodes), fmt_fixed(hit_rate, 2),
         fmt_fixed(r.sim.seconds * 1e3, 2),
         fmt_fixed(baseline / r.sim.seconds, 2)});
  }
  std::cout << table << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Ablation: transposition table size (chess search, "
               "depth 4, 3 positions) ===\n\n";
  sweep(mb::arch::xeon_x5550());
  sweep(mb::arch::snowball());
  std::cout
      << "The node reduction is identical on both machines. At shallow "
         "depth the\nsavings dominate everywhere; what the platforms "
         "disagree on is the probe\ncost once the table outgrows the "
         "embedded cache hierarchy — measure, don't\nassume (the paper's "
         "Sec. V moral).\n";
  return 0;
}
