// Ablation for Sec. V-B / VI-B: search strategies over the magicfilter
// unroll space on both architectures. Evaluates how many measurements each
// strategy needs and whether it lands in the platform's sweet spot — the
// paper's argument that intuition-guided (greedy) tuning that works on
// Nehalem is not sufficient on embedded cores.
#include <iostream>

#include "arch/platforms.h"
#include "core/tuner.h"
#include "kernels/magicfilter.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

mb::core::Workload magicfilter_workload() {
  return [](const mb::core::Point& p, mb::sim::Machine& m) {
    mb::kernels::MagicfilterParams mp;
    mp.n = 20;
    mp.dims = 1;
    mp.unroll = static_cast<std::uint32_t>(p.get("unroll"));
    return mb::kernels::magicfilter_run(m, mp).cycles_per_output;
  };
}

void evaluate(const mb::arch::Platform& platform) {
  std::cout << "--- " << platform.name << " ---\n";
  mb::core::MachineFactory factory = [platform](std::uint64_t seed) {
    return mb::sim::Machine(platform, mb::sim::PagePolicy::kConsecutive,
                            mb::support::Rng(seed));
  };
  mb::core::MeasurementPlan plan;
  plan.repetitions = 3;
  plan.fresh_machine_per_rep = false;

  mb::core::ParamSpace space;
  space.add_range("unroll", 1, 12);

  mb::support::Table table(
      {"Strategy", "Best unroll", "Cycles/output", "Measurements"});
  for (const auto strategy :
       {mb::core::Strategy::kExhaustive, mb::core::Strategy::kHillClimb,
        mb::core::Strategy::kRandom}) {
    mb::core::Tuner tuner(mb::core::Harness(factory, nullptr, plan),
                          mb::core::Direction::kMinimize);
    const auto report =
        tuner.tune(space, magicfilter_workload(), strategy, /*budget=*/4);
    table.add_row({std::string(mb::core::strategy_name(strategy)),
                   std::to_string(report.best.get("unroll")),
                   fmt_fixed(report.best_value, 1),
                   std::to_string(report.evaluations)});
  }
  std::cout << table << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Ablation: tuning strategies on the magicfilter unroll "
               "space ===\n(random search budget: 4 of 12 points)\n\n";
  evaluate(mb::arch::xeon_x5550());
  evaluate(mb::arch::tegra2_node());
  std::cout
      << "Exhaustive search finds the platform optimum by construction;\n"
         "the budgeted strategies show the cost/quality trade-off the\n"
         "paper's call for automated, systematic tuning is about.\n";
  return 0;
}
