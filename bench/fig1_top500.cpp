// Reproduces Figure 1: exponential growth of supercomputing power as
// recorded by the TOP500, plus the introduction's exascale arithmetic.
#include <iostream>

#include "power/top500.h"
#include "support/table.h"

int main() {
  using mb::support::fmt_eng;
  const mb::power::Top500Model model;

  std::cout << "=== Figure 1: TOP500 performance development ===\n\n";
  mb::support::Table table(
      {"Year", "Sum (GFLOPS)", "#1 (GFLOPS)", "#500 (GFLOPS)"});
  for (const auto& p : mb::power::top500_series(model, 1993, 2018)) {
    table.add_row({mb::support::fmt_fixed(p.year, 0), fmt_eng(p.sum_gflops),
                   fmt_eng(p.top_gflops), fmt_eng(p.last_gflops)});
  }
  std::cout << table << '\n';

  const double exa_year = mb::power::projected_year_for(model, 1e9);
  std::cout << "Projected #1 system reaches 1 EFLOPS in: "
            << mb::support::fmt_fixed(exa_year, 1) << "\n";

  mb::power::ExascaleRequirement req;
  std::cout << "Exaflop in a " << req.power_budget_w / 1e6
            << " MW budget requires " << req.required_efficiency()
            << " GFLOPS/W\n";
  std::cout << "2012 state of the art ~2 GFLOPS/W -> improvement needed: "
            << mb::support::fmt_fixed(req.improvement_over(2.0), 0)
            << "x (the paper's 25x)\n";
  return 0;
}
