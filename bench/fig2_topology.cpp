// Reproduces Figure 2: memory hierarchies of the two single-node
// platforms, in the style of hwloc's lstopo.
#include <iostream>

#include "arch/platforms.h"
#include "arch/topology.h"

int main() {
  std::cout << "=== Figure 2a: Xeon X5550 topology ===\n"
            << mb::arch::render_topology(mb::arch::xeon_x5550()) << '\n';
  std::cout << "=== Figure 2b: ST-Ericsson A9500 (Snowball) topology ===\n"
            << mb::arch::render_topology(mb::arch::snowball()) << '\n';
  return 0;
}
