// Reproduces Figure 3: strong scaling of LINPACK, SPECFEM3D and BigDFT on
// the Tibidabo cluster. Expected shapes:
//   3a LINPACK   — ~80% efficiency at ~100 cores, linear tail after 32
//   3b SPECFEM3D — ~90% efficiency (vs the 4-core baseline: the instance
//                  does not fit one node)
//   3c BigDFT    — efficiency collapses by 36 cores (Ethernet alltoallv)
//
// A second set of tables extrapolates the ladders to 1k/4k/16k simulated
// ranks — beyond the physical Tibidabo — exercising the sharded
// conservative-lookahead engine (sim_jobs > 0, byte-identical to serial)
// at the scales the CI scaling-gate budgets. Pass --at-scale to run them
// (minutes of wall clock); the default run keeps the paper's figure fast.
#include <algorithm>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "apps/bigdft.h"
#include "apps/hpl.h"
#include "apps/specfem.h"
#include "stats/scaling.h"
#include "support/table.h"

namespace {

using mb::stats::ScalingPoint;
using mb::support::fmt_fixed;

void print_series(const std::string& title,
                  const std::vector<ScalingPoint>& series) {
  std::cout << title << '\n';
  mb::support::Table table({"Cores", "Time (s)", "Speedup", "Efficiency"});
  for (const auto& p : series) {
    table.add_row({std::to_string(p.cores), fmt_fixed(p.time_s, 3),
                   fmt_fixed(p.speedup, 1), fmt_fixed(p.efficiency, 2)});
  }
  std::cout << table << '\n';
}

std::vector<ScalingPoint> sweep(const std::vector<int>& cores,
                                double (*run)(std::uint32_t)) {
  std::vector<double> times;
  for (int c : cores) times.push_back(run(static_cast<std::uint32_t>(c)));
  return mb::stats::strong_scaling(cores, times);
}

double hpl_time(std::uint32_t cores) {
  mb::apps::HplParams p;
  p.ranks = cores;
  p.n = 32768;  // memory-filling N, as HPL is run in practice
  p.block = 128;
  auto cluster = mb::apps::tibidabo_cluster(std::max(1u, cores / 2));
  cluster.mtu_bytes = 1u << 20;  // coarse frames for month-long runs
  return mb::apps::run_hpl(cluster, p).makespan_s;
}

double specfem_time(std::uint32_t cores) {
  mb::apps::SpecfemParams p;
  p.ranks = cores;
  p.steps = 10;
  p.compute_s_per_step = 3.0;
  const auto cluster = mb::apps::tibidabo_cluster(std::max(1u, cores / 2));
  return mb::apps::run_specfem(cluster, p).makespan_s;
}

double bigdft_time(std::uint32_t cores) {
  mb::apps::BigDftParams p;
  p.ranks = cores;
  p.iterations = 5;
  p.compute_s_per_iter = 2.0;
  p.transpose_bytes = 24ull << 20;
  const auto cluster = mb::apps::tibidabo_cluster(std::max(1u, cores / 2));
  return mb::apps::run_bigdft(cluster, p).makespan_s;
}

// ---------------------------------------------------------------------------
// "Fig. 3 at scale": the same applications at 1k-16k simulated ranks on
// the sharded engine. Communication-dense parameters (the scaling-suite
// scenarios from `mbctl bench-suite --suite scaling`) keep DES event
// throughput, not the compute model, as the measured quantity.

std::uint32_t scale_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min(8u, hw == 0 ? 1u : hw);
}

mb::apps::ClusterConfig scale_cluster(std::uint32_t ranks,
                                      std::uint32_t mtu) {
  auto cluster = mb::apps::tibidabo_cluster(std::max(1u, ranks / 2));
  cluster.mpi.verify = false;
  cluster.sim_jobs = scale_jobs();
  if (mtu != 0) cluster.mtu_bytes = mtu;
  return cluster;
}

double hpl_time_at_scale(std::uint32_t cores) {
  mb::apps::HplParams p;
  p.ranks = cores;
  p.n = 4096;
  p.block = 128;
  return mb::apps::run_hpl(scale_cluster(cores, 1u << 20), p).makespan_s;
}

double specfem_time_at_scale(std::uint32_t cores) {
  mb::apps::SpecfemParams p;
  p.ranks = cores;
  p.steps = 8;
  p.compute_s_per_step = 200.0;
  p.halo_bytes = 64 * 1024;
  p.seed = 2013;
  return mb::apps::run_specfem(scale_cluster(cores, 0), p).makespan_s;
}

double bigdft_time_at_scale(std::uint32_t cores) {
  mb::apps::BigDftParams p;
  p.ranks = cores;
  p.iterations = 1;
  p.transposes = 1;
  p.allreduces = 0;
  p.compute_s_per_iter = 100.0;
  p.transpose_bytes = 64ull << 20;
  p.seed = 2013;
  return mb::apps::run_bigdft(scale_cluster(cores, 0), p).makespan_s;
}

void run_at_scale() {
  std::cout << "=== Fig. 3 at scale: 1k-16k simulated ranks, sharded "
               "engine (sim-jobs "
            << scale_jobs() << ") ===\n\n";
  print_series("--- HPL at scale ---",
               sweep({1024, 4096, 16384}, hpl_time_at_scale));
  print_series("--- SPECFEM3D at scale ---",
               sweep({1024, 4096, 16384}, specfem_time_at_scale));
  // BigDFT's alltoallv is O(ranks^2) messages; 1024 is already the
  // congestion-collapse regime the paper's Fig. 3c extrapolates to.
  print_series("--- BigDFT at scale ---",
               sweep({256, 1024}, bigdft_time_at_scale));
}

}  // namespace

int main(int argc, char** argv) {
  bool at_scale = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--at-scale") == 0) at_scale = true;

  std::cout << "=== Figure 3: strong scaling on Tibidabo "
               "(Tegra2 nodes, 1GbE tree) ===\n\n";

  const auto hpl =
      sweep({2, 4, 8, 16, 32, 48, 64, 80, 96}, hpl_time);
  print_series("--- Fig. 3a: LINPACK (HPL) ---", hpl);
  std::cout << "Tail linear after 32 cores: "
            << (mb::stats::tail_is_linear(hpl, 32) ? "yes" : "no")
            << " (paper: yes)\n\n";

  const auto spec =
      sweep({4, 8, 16, 32, 64, 128, 192}, specfem_time);
  print_series("--- Fig. 3b: SPECFEM3D (baseline = 4 cores; the instance "
               "needs 2 nodes) ---",
               spec);
  std::cout << "Final efficiency: "
            << fmt_fixed(mb::stats::final_efficiency(spec), 2)
            << " (paper: ~0.90)\n\n";

  const auto big = sweep({2, 4, 8, 16, 24, 36}, bigdft_time);
  print_series("--- Fig. 3c: BigDFT ---", big);
  std::cout << "Final efficiency: "
            << fmt_fixed(mb::stats::final_efficiency(big), 2)
            << " (paper: drops rapidly; well below the others)\n";

  if (at_scale) {
    std::cout << '\n';
    run_at_scale();
  }
  return 0;
}
