// Reproduces Figure 4: profiling of BigDFT on Tibidabo using 36 cores.
// The paper instruments the code and finds that the all_to_all_v
// collectives are "sometimes delayed" — in some instances all ranks are
// slow, in others only part of them. We run the BigDFT model, analyze the
// trace exactly as Paraver would be used, and print the classification
// plus a trace excerpt.
#include <iostream>
#include <sstream>

#include "apps/bigdft.h"
#include "trace/gantt.h"
#include "support/table.h"

int main() {
  using mb::support::fmt_fixed;

  mb::apps::BigDftParams params;
  params.ranks = 36;
  params.iterations = 12;
  params.compute_s_per_iter = 2.0;
  params.transpose_bytes = 12ull << 20;  // the borderline-incast profiling instance

  std::cout << "=== Figure 4: BigDFT on Tibidabo, 36 cores ===\n\n";
  const auto result =
      mb::apps::run_bigdft(mb::apps::tibidabo_cluster(18), params);

  const auto report =
      mb::trace::analyze_collectives(result.trace, "alltoallv");
  std::cout << "alltoallv instances: " << report.instances.size() << '\n';
  std::cout << "median duration:     "
            << fmt_fixed(report.median_duration * 1e3, 2) << " ms\n";
  std::cout << "delayed (>2x med.):  " << report.delayed_count << '\n';
  std::cout << "partial delays seen: "
            << (report.has_partial_delays ? "yes" : "no")
            << "  (paper: some instances delay all ranks, others only "
               "part of them)\n";
  std::cout << "network drops:       " << result.network_drops
            << " (switch buffer overflows -> TCP-style retransmits)\n\n";

  mb::support::Table table({"Instance", "Start (s)", "Duration (ms)",
                            "Classification", "Slow ranks"});
  for (const auto& inst : report.instances) {
    table.add_row({std::to_string(inst.index), fmt_fixed(inst.start, 3),
                   fmt_fixed(inst.duration * 1e3, 2),
                   inst.delayed ? "DELAYED" : "normal",
                   inst.delayed ? std::to_string(inst.slow_ranks) : "-"});
  }
  std::cout << table << '\n';

  // A Gantt view of the first second — the Fig. 4 timeline, in ASCII.
  mb::trace::GanttOptions gopt;
  gopt.width = 100;
  gopt.max_ranks = 12;
  gopt.t1 = 1.0;
  std::cout << "--- timeline (first 12 ranks, first second) ---\n"
            << mb::trace::render_gantt(result.trace, gopt) << '\n';

  // A Paraver-like excerpt (first records of rank 0).
  std::ostringstream paraver;
  result.trace.write_paraver(paraver);
  std::istringstream lines(paraver.str());
  std::string line;
  int shown = 0;
  std::cout << "--- Paraver-like trace excerpt ---\n";
  while (std::getline(lines, line) && shown < 12) {
    if (line.rfind("0:", 0) == 0 || line[0] == '#') {
      std::cout << line << '\n';
      ++shown;
    }
  }
  return 0;
}
