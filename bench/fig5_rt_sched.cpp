// Reproduces Figure 5: impact of real-time scheduling priority on the ARM
// Snowball's effective memory bandwidth. 42 randomized repetitions for
// each array size in 1..50 KB (stride 1): under the anomalous RT
// scheduler two execution modes appear (~5x apart) and the degraded
// measurements are consecutive in time (Fig. 5b's sequence-order plot).
#include <algorithm>
#include <iostream>

#include "arch/platforms.h"
#include "core/harness.h"
#include "kernels/membench.h"
#include "stats/histogram.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

mb::core::ResultSet measure(bool realtime) {
  mb::core::MachineFactory factory = [](std::uint64_t seed) {
    return mb::sim::Machine(mb::arch::snowball(),
                            mb::sim::PagePolicy::kReuseBiased,
                            mb::support::Rng(seed));
  };
  std::unique_ptr<mb::os::SchedulerModel> sched;
  if (realtime) {
    sched = std::make_unique<mb::os::RealTimeAnomalous>(
        mb::support::Rng(2013));
  } else {
    sched = std::make_unique<mb::os::FairScheduler>(mb::support::Rng(2013));
  }

  mb::core::MeasurementPlan plan;
  plan.repetitions = 42;  // the paper's repetition count
  plan.fresh_machine_per_rep = false;
  plan.seed = 7;

  mb::core::ParamSpace space;
  space.add("array_kb", {1, 2, 4, 8, 16, 24, 32, 40, 50});

  mb::core::Workload workload = [](const mb::core::Point& p,
                                   mb::sim::Machine& m) {
    mb::kernels::MembenchParams mp;
    mp.array_bytes = static_cast<std::uint64_t>(p.get("array_kb")) * 1024;
    mp.stride_elems = 1;
    mp.elem_bits = 32;
    mp.passes = 4;
    const auto r = mb::kernels::membench_run(m, mp);
    // Store time per byte; bandwidth = 1 / value.
    return r.sim.seconds / static_cast<double>(r.bytes_accessed);
  };

  mb::core::Harness harness(factory, std::move(sched), plan);
  return harness.run(space, workload);
}

void report(const char* title, const mb::core::ResultSet& results) {
  std::cout << title << '\n';
  mb::support::Table table({"Array (KB)", "BW mean (GB/s)", "Modes",
                            "Low/High (GB/s)"});
  const std::vector<int> sizes{1, 2, 4, 8, 16, 24, 32, 40, 50};
  // Pool the degraded samples of every size in global measurement order —
  // the paper's Fig. 5b sequence-order plot spans the whole campaign.
  std::vector<std::size_t> degraded_orders;
  std::size_t bimodal_variants = 0;
  for (std::size_t v = 0; v < sizes.size(); ++v) {
    // Values are seconds/byte: convert to bandwidth for reporting.
    std::vector<double> bw;
    for (double spb : results.samples(v)) bw.push_back(1e-9 / spb);
    const auto split = mb::stats::split_modes(results.samples(v));
    const double mean_bw = mb::stats::mean(bw);
    std::string modes = split.bimodal ? "2" : "1";
    // For time-per-byte, the high cluster is the slow mode.
    std::string lohi =
        split.bimodal
            ? fmt_fixed(1e-9 / split.high_center, 2) + " / " +
                  fmt_fixed(1e-9 / split.low_center, 2)
            : "-";
    table.add_row(
        {std::to_string(sizes[v]), fmt_fixed(mean_bw, 2), modes, lohi});
    if (split.bimodal) {
      ++bimodal_variants;
      for (const std::size_t i : split.high_indices)
        degraded_orders.push_back(results.orders(v)[i]);
    }
  }
  std::cout << table;
  std::sort(degraded_orders.begin(), degraded_orders.end());
  std::cout << "bimodal sizes: " << bimodal_variants << "/" << sizes.size()
            << "; degraded measurements consecutive in sequence order: "
            << (mb::stats::is_temporally_clustered(
                    degraded_orders, results.total_samples())
                    ? "yes"
                    : "no")
            << "\n\n";
}

}  // namespace

int main() {
  std::cout << "=== Figure 5: real-time priority on the ARM Snowball ===\n"
               "(42 randomized repetitions per array size, stride 1)\n\n";
  const auto rt = measure(/*realtime=*/true);
  report("--- SCHED_FIFO (real-time priority) ---", rt);

  const auto fair = measure(/*realtime=*/false);
  report("--- default scheduler (control) ---", fair);

  std::cout
      << "Paper findings reproduced when the RT table shows 2 modes ~5x\n"
         "apart with consecutive degraded samples, while the control\n"
         "scheduler shows a single mode.\n";
  return 0;
}
