// Reproduces Figure 6: influence of code optimizations (element size x
// loop unrolling) on effective bandwidth for a 48KB stride-1 array.
// Expected shapes:
//   6a Nehalem  — vectorizing and unrolling both monotonically help;
//                 best = 128-bit + unroll.
//   6b Snowball — 128-bit is no better than 32-bit; unrolling 128-bit
//                 *degrades* performance (register spills); best =
//                 64-bit + unroll.
#include <iostream>

#include "arch/platforms.h"
#include "kernels/membench.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

void sweep(const mb::arch::Platform& platform) {
  std::cout << "--- " << platform.name << " ---\n";
  mb::sim::Machine machine(platform, mb::sim::PagePolicy::kConsecutive,
                           mb::support::Rng(1));
  mb::support::Table table({"Element", "Unroll=1 (GB/s)", "Unroll=8 (GB/s)",
                            "Unrolling helps?"});
  for (const std::uint32_t bits : {32u, 64u, 128u}) {
    double bw[2];
    for (int u = 0; u < 2; ++u) {
      mb::kernels::MembenchParams p;
      p.array_bytes = 48 * 1024;
      p.stride_elems = 1;
      p.elem_bits = bits;
      p.unroll = u == 0 ? 1 : 8;
      p.passes = 8;
      bw[u] = mb::kernels::membench_run(machine, p).bandwidth_bytes_per_s /
              1e9;
    }
    table.add_row({std::to_string(bits) + "b", fmt_fixed(bw[0], 2),
                   fmt_fixed(bw[1], 2), bw[1] > bw[0] ? "yes" : "NO"});
  }
  std::cout << table << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Figure 6: element size x loop unrolling "
               "(48KB array, stride 1) ===\n\n";
  sweep(mb::arch::xeon_x5550());
  sweep(mb::arch::snowball());
  std::cout
      << "Paper shapes: on Nehalem both optimizations always help; on the\n"
         "Snowball 128-bit ~ 32-bit, and unrolling the 128-bit variant is\n"
         "detrimental. Best ARM variant: 64-bit + unrolling.\n";
  return 0;
}
