// Reproduces Figure 7: cycles and cache accesses needed to apply the
// BigDFT magicfilter as a function of the unroll degree (1..12) on
// Nehalem and Tegra2, measured with PAPI-style counters. Expected shapes:
// roughly convex cycle curves; cache accesses fall (coefficient
// amortization) then jump at the register-spill staircase — unroll ~9 on
// Nehalem vs ~5 on Tegra2 — so the profitable sweet spot is [4,12] on
// Nehalem but only [4,7] on Tegra2.
#include <iostream>

#include "arch/platforms.h"
#include "core/param_space.h"
#include "core/search.h"
#include "kernels/magicfilter.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

struct Curve {
  std::vector<double> cycles;
  std::vector<double> accesses;
};

Curve sweep(const mb::arch::Platform& platform) {
  mb::sim::Machine machine(platform, mb::sim::PagePolicy::kConsecutive,
                           mb::support::Rng(1));
  Curve c;
  for (std::uint32_t u = 1; u <= 12; ++u) {
    mb::kernels::MagicfilterParams p;
    p.n = 20;
    p.dims = 1;
    p.unroll = u;
    const auto r = mb::kernels::magicfilter_run(machine, p);
    c.cycles.push_back(r.cycles_per_output);
    c.accesses.push_back(r.cache_accesses_per_output);
  }
  return c;
}

void report(const char* title, const Curve& c) {
  std::cout << title << '\n';
  mb::support::Table table(
      {"Unroll", "Cycles/output", "Cache accesses/output"});
  for (std::size_t u = 0; u < c.cycles.size(); ++u) {
    table.add_row({std::to_string(u + 1), fmt_fixed(c.cycles[u], 1),
                   fmt_fixed(c.accesses[u], 1)});
  }
  std::cout << table;

  mb::core::ParamSpace space;
  space.add_range("unroll", 1, 12);
  const auto spot = mb::core::sweet_spot(space, c.cycles,
                                         mb::core::Direction::kMinimize);
  std::cout << "sweet spot (cycles within 10% of best): [" << spot.lo << ", "
            << spot.hi << "]  width " << spot.width << "\n\n";
}

}  // namespace

int main() {
  std::cout << "=== Figure 7: magicfilter unroll degree, PAPI counters ===\n"
               "(3-D convolution core of BigDFT; one axis, n=20)\n\n";
  report("--- Fig. 7a: Intel Nehalem ---", sweep(mb::arch::xeon_x5550()));
  report("--- Fig. 7b: NVIDIA Tegra2 ---", sweep(mb::arch::tegra2_node()));
  std::cout << "Paper: sweet spot [4,12] on Nehalem vs [4,7] on Tegra2 —\n"
               "tuning must be systematic on the embedded platform.\n";
  return 0;
}
