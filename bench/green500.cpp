// Green500-style submission for the simulated Tibidabo (ties the
// introduction's efficiency arithmetic to the cluster experiments):
// run HPL at memory-filling N on the full cluster, report GFLOPS and
// GFLOPS/W, and put them next to the 2012 state of the art and the 20 MW
// exaflop requirement the paper opens with.
#include <iostream>

#include "apps/hpl.h"
#include "gpu/hybrid.h"
#include "power/cluster_energy.h"
#include "power/top500.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

}  // namespace

int main() {
  std::cout << "=== Green500-style numbers for the simulated clusters "
               "===\n\n";

  // --- Tibidabo: 48 Tegra2 nodes = 96 cores, stock GbE tree. ---
  mb::apps::HplParams hpl;
  hpl.ranks = 96;
  hpl.n = 32768;
  hpl.block = 128;
  auto cluster = mb::apps::tibidabo_cluster(48);
  cluster.mtu_bytes = 1u << 20;
  const auto run = mb::apps::run_hpl(cluster, hpl);
  const double gflops = mb::apps::hpl_gflops(hpl, run.makespan_s);

  // Tegra2 boards draw more than Snowballs (SoC + NIC + DRAM at speed).
  mb::power::ClusterPower tibidabo;
  tibidabo.nodes = 48;
  tibidabo.node_w = 8.5;
  tibidabo.switches = 1;
  tibidabo.switch_w = 60.0;
  const double watts = mb::power::cluster_watts(tibidabo);

  mb::support::Table table({"System", "HPL GFLOPS", "Power (W)",
                            "GFLOPS/W"});
  table.add_row({"Tibidabo (96x Cortex-A9, simulated HPL)",
                 fmt_fixed(gflops, 1), fmt_fixed(watts, 0),
                 fmt_fixed(gflops / watts, 3)});

  // --- The projected Exynos5 cluster (peak-based, paper Sec. VI-A). ---
  const auto node = mb::gpu::exynos5_node();
  const auto hybrid = mb::gpu::hybrid_sp_throughput(node);
  // DP for HPL: CPU-only peak (the Mali handles SP codes); assume the
  // same 0.85 parallel efficiency as the simulated Tibidabo run.
  const double exynos_dp = node.cpu.peak_dp_gflops() * 0.85 * 48;
  const double exynos_w = 48 * node.power_w() + 25.0;  // EEE switch
  table.add_row({"48x Exynos5 nodes (projected, DP HPL)",
                 fmt_fixed(exynos_dp, 1), fmt_fixed(exynos_w, 0),
                 fmt_fixed(exynos_dp / exynos_w, 3)});
  table.add_row({"same, SP workloads incl. Mali-T604",
                 fmt_fixed(hybrid.total_gflops * 48 * 0.85, 1),
                 fmt_fixed(exynos_w, 0),
                 fmt_fixed(hybrid.total_gflops * 48 * 0.85 / exynos_w, 3)});
  std::cout << table << '\n';

  mb::power::ExascaleRequirement req;
  std::cout << "2012 Green500 leader: ~2 GFLOPS/W; exaflop @ 20 MW needs "
            << req.required_efficiency() << " GFLOPS/W.\n"
            << "Tibidabo itself is far from competitive (the paper never "
               "claims otherwise);\nthe Exynos5 projection is the paper's "
               "case that the embedded path closes in.\n";
  return 0;
}
