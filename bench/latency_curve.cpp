// Model self-validation: the pointer-chase latency curve. Running
// lat_mem_rd-style chases of growing footprint must recover the
// platforms' configured cache/DRAM latencies as plateaus — evidence that
// the machine models measure what they claim to measure.
#include <iostream>

#include "arch/platforms.h"
#include "kernels/latency.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

void curve(const mb::arch::Platform& platform) {
  std::cout << "--- " << platform.name << " ---\n";
  std::cout << "configured: L1 " << platform.caches[0].latency_cycles
            << " cyc";
  for (std::size_t i = 1; i < platform.caches.size(); ++i)
    std::cout << ", " << platform.caches[i].name << " "
              << platform.caches[i].latency_cycles << " cyc";
  std::cout << ", DRAM " << platform.mem.latency_ns << " ns\n";

  mb::sim::Machine machine(platform, mb::sim::PagePolicy::kConsecutive,
                           mb::support::Rng(1));
  mb::support::Table table({"Buffer", "cycles/hop", "ns/hop"});
  for (const std::uint64_t kb :
       {4ull, 8ull, 16ull, 32ull, 64ull, 128ull, 256ull, 512ull, 1024ull,
        4096ull, 16384ull}) {
    mb::kernels::LatencyParams p;
    p.buffer_bytes = kb * 1024;
    p.stride_bytes = 64;
    p.hops = 4096;
    const auto r = mb::kernels::latency_run(machine, p);
    table.add_row({std::to_string(kb) + " KB",
                   fmt_fixed(r.cycles_per_hop, 1),
                   fmt_fixed(r.ns_per_hop, 1)});
  }
  std::cout << table << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Pointer-chase latency curves (model self-validation) "
               "===\n(random 64B-stride chase; plateaus = configured "
               "latencies)\n\n";
  curve(mb::arch::xeon_x5550());
  curve(mb::arch::snowball());
  std::cout << "Large-footprint hops also pay TLB walks — visible as the "
               "curve drifting\nabove the raw DRAM latency.\n";
  return 0;
}
