// Microbenchmarks of the simulator's own hot loops (google-benchmark):
// cache-model access rate, hierarchy walks, DES event throughput, RNG and
// kernel trace generation. These bound how large an experiment the
// framework can afford.
#include <benchmark/benchmark.h>

#include "arch/platforms.h"
#include "cache/hierarchy.h"
#include "kernels/membench.h"
#include "sim/event_queue.h"
#include "sim/machine.h"
#include "support/rng.h"

namespace {

void BM_CacheAccess(benchmark::State& state) {
  mb::cache::Cache cache(mb::arch::snowball().caches[0]);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access_line(addr, false));
    addr += 32;
    if (addr >= 64 * 1024) addr = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_HierarchyAccess(benchmark::State& state) {
  mb::cache::Hierarchy h(mb::arch::xeon_x5550());
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.access(addr, 8, false));
    addr += 64;
    if (addr >= 1024 * 1024) addr = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyAccess);

void BM_MachineTouch(benchmark::State& state) {
  mb::sim::Machine m(mb::arch::snowball(),
                     mb::sim::PagePolicy::kConsecutive,
                     mb::support::Rng(1));
  const auto region = m.mmap(256 * 1024);
  std::uint64_t off = 0;
  for (auto _ : state) {
    m.touch(region.vaddr + off, 4, false);
    off = (off + 32) % (256 * 1024);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MachineTouch);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    mb::sim::EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1000; ++i)
      q.schedule_at(i, [&sink] { ++sink; });
    q.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void BM_Rng(benchmark::State& state) {
  mb::support::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Rng);

void BM_MembenchTrace(benchmark::State& state) {
  mb::sim::Machine m(mb::arch::snowball(),
                     mb::sim::PagePolicy::kConsecutive,
                     mb::support::Rng(1));
  mb::kernels::MembenchParams p;
  p.array_bytes = 32 * 1024;
  p.passes = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mb::kernels::membench_run(m, p));
  }
  state.SetItemsProcessed(state.iterations() * p.accessed_per_pass() *
                          p.passes);
}
BENCHMARK(BM_MembenchTrace);

}  // namespace

BENCHMARK_MAIN();
