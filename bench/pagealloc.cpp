// Ablation for Sec. V-A.1: influence of physical page allocation on
// reproducibility. The membench kernel at the L1-cache-size boundary is
// measured under the three OS page-placement models:
//
//   consecutive   — contiguous frames (the x86-like assumption):
//                   stable across runs.
//   reuse-biased  — random placement, frames recycled within a run (the
//                   observed ARM behaviour): stable *within* a run,
//                   different *between* runs.
//   random        — fresh random placement per allocation (what a
//                   thoroughly randomized benchmark must emulate).
#include <iostream>

#include "arch/platforms.h"
#include "kernels/membench.h"
#include "stats/descriptive.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

/// Bandwidths of `reps` measurements in one "run" (shared machine).
std::vector<double> one_run(mb::sim::PagePolicy policy, std::uint64_t seed,
                            int reps) {
  mb::sim::Machine machine(mb::arch::snowball(), policy,
                           mb::support::Rng(seed));
  std::vector<double> bw;
  for (int i = 0; i < reps; ++i) {
    mb::kernels::MembenchParams p;
    p.array_bytes = 40 * 1024;  // just above the 32 KB L1
    p.passes = 4;
    bw.push_back(
        mb::kernels::membench_run(machine, p).bandwidth_bytes_per_s / 1e9);
  }
  return bw;
}

}  // namespace

int main() {
  std::cout << "=== Sec. V-A.1 ablation: physical page allocation and "
               "reproducibility ===\n(Snowball, 40KB array around the "
               "32KB L1 size)\n\n";

  mb::support::Table table({"Policy", "Within-run CV", "Between-run CV",
                            "Run means (GB/s)"});
  for (const auto policy :
       {mb::sim::PagePolicy::kConsecutive, mb::sim::PagePolicy::kReuseBiased,
        mb::sim::PagePolicy::kRandom}) {
    std::vector<double> run_means;
    std::vector<double> within_cv;
    std::string means;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto bw = one_run(policy, seed, 8);
      run_means.push_back(mb::stats::mean(bw));
      within_cv.push_back(mb::stats::cv(bw));
      if (!means.empty()) means += ' ';
      means += fmt_fixed(run_means.back(), 2);
    }
    table.add_row({std::string(mb::sim::page_policy_name(policy)),
                   fmt_fixed(mb::stats::mean(within_cv), 4),
                   fmt_fixed(mb::stats::cv(run_means), 4), means});
  }
  std::cout << table;
  std::cout
      << "\nPaper finding reproduced when reuse-biased shows ~zero\n"
         "within-run variability but substantial between-run variability\n"
         "('very little performance variability inside a set of\n"
         "measurements ... from one run to another very different global\n"
         "behavior'), while consecutive placement is stable everywhere.\n";
  return 0;
}
