// Roofline placement of every Table-II workload on both platforms: the
// one-glance explanation of the paper's ratios. Compute-bound DP kernels
// (LINPACK, BigDFT) sit under wildly different compute roofs; the
// streaming kernel hugs each machine's memory roof; SPECFEM3D's SP work
// lands in between.
#include <iostream>

#include "arch/platforms.h"
#include "kernels/linpack.h"
#include "kernels/magicfilter.h"
#include "kernels/membench.h"
#include "kernels/stencil.h"
#include "sim/roofline.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

void analyze(const mb::arch::Platform& platform) {
  const auto dp = mb::sim::dp_roofline(platform);
  std::cout << "--- " << platform.name << " ---\n"
            << "DP roof " << fmt_fixed(dp.peak_gflops, 1)
            << " GFLOPS, memory roof " << fmt_fixed(dp.bandwidth_gbs, 1)
            << " GB/s, ridge at " << fmt_fixed(dp.ridge_intensity(), 1)
            << " flops/byte\n";

  mb::sim::Machine m(platform, mb::sim::PagePolicy::kConsecutive,
                     mb::support::Rng(1));
  std::vector<mb::sim::RooflinePoint> points;

  {
    mb::kernels::LinpackParams p;
    p.n = 96;
    p.block = 32;
    points.push_back(mb::sim::place_on_roofline(
        dp, "LINPACK", mb::kernels::linpack_run(m, p).sim,
        platform.cores));
  }
  {
    mb::kernels::MagicfilterParams p;
    p.n = 20;
    p.dims = 3;
    p.unroll = 4;
    points.push_back(mb::sim::place_on_roofline(
        dp, "BigDFT magicfilter", mb::kernels::magicfilter_run(m, p).sim,
        platform.cores));
  }
  {
    mb::kernels::StencilParams p;
    p.n = 24;  // DRAM-visible instance
    p.steps = 4;
    points.push_back(mb::sim::place_on_roofline(
        mb::sim::sp_roofline(platform), "SPECFEM3D stencil (SP)",
        mb::kernels::stencil_run(m, p).sim, platform.cores));
  }
  {
    mb::kernels::MembenchParams p;
    p.array_bytes = 4 * 1024 * 1024;
    p.elem_bits = 64;
    p.unroll = 8;
    p.passes = 2;
    p.bandwidth_sharers = platform.cores;  // whole-chip streaming
    points.push_back(mb::sim::place_on_roofline(
        dp, "membench stream", mb::kernels::membench_run(m, p).sim,
        platform.cores));
  }

  mb::support::Table table({"Kernel", "AI (flop/B)", "Achieved GF",
                            "Attainable GF", "Fraction", "Bound"});
  for (const auto& p : points) {
    table.add_row({p.name, fmt_fixed(p.intensity, 2),
                   fmt_fixed(p.achieved_gflops, 2),
                   fmt_fixed(p.attainable_gflops, 2),
                   fmt_fixed(p.roofline_fraction, 2),
                   p.memory_bound ? "memory" : "compute"});
  }
  std::cout << table << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Roofline placement of the Table II workloads ===\n\n";
  analyze(mb::arch::xeon_x5550());
  analyze(mb::arch::snowball());
  std::cout
      << "Reading: the DP kernels are compute-roof limited, and the DP "
         "roofs differ by\n~30x between the machines — while the memory "
         "roofs differ by ~20x and the SP\nroofs by much less. That "
         "asymmetry is Table II in one picture.\n";
  return 0;
}
