// Ablation for Sec. V-A's premise: the membench kernel's (array size x
// stride) plane gives "a crude estimation how temporal and spatial
// locality of the code impact performance on a given machine". Prints the
// effective-bandwidth grid for both platforms: size sweeps temporal
// locality (cache levels), stride sweeps spatial locality (line and page
// utilization; large strides also thrash the TLB).
#include <iostream>

#include "arch/platforms.h"
#include "kernels/membench.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

void grid(const mb::arch::Platform& platform) {
  std::cout << "--- " << platform.name << " (GB/s, 64-bit elements, "
               "unroll 4) ---\n";
  mb::sim::Machine machine(platform, mb::sim::PagePolicy::kConsecutive,
                           mb::support::Rng(1));
  const std::vector<std::uint64_t> sizes_kb{8, 32, 128, 512, 2048};
  const std::vector<std::uint32_t> strides{1, 2, 4, 8, 16, 64};

  std::vector<std::string> header{"Size \\ Stride"};
  for (const auto s : strides) header.push_back(std::to_string(s));
  mb::support::Table table(header);

  for (const auto kb : sizes_kb) {
    std::vector<std::string> row{std::to_string(kb) + " KB"};
    for (const auto stride : strides) {
      mb::kernels::MembenchParams p;
      p.array_bytes = kb * 1024;
      p.stride_elems = stride;
      p.elem_bits = 64;
      p.unroll = 4;
      p.passes = 4;
      const auto r = mb::kernels::membench_run(machine, p);
      row.push_back(fmt_fixed(r.bandwidth_bytes_per_s / 1e9, 2));
    }
    table.add_row(row);
  }
  std::cout << table << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Sec. V-A ablation: temporal x spatial locality plane "
               "===\n(effective bandwidth of accessed bytes; strided "
               "accesses waste the rest of each line)\n\n";
  grid(mb::arch::xeon_x5550());
  grid(mb::arch::snowball());
  std::cout
      << "Reading the grid: moving right (larger stride) wastes cache-line "
         "bytes\nand eventually TLB reach; moving down (larger arrays) "
         "falls out of L1,\nL2 (and L3 where present). The ARM cliff "
         "arrives one level earlier and\nfalls farther — the 'very "
         "different memory hierarchy' the paper probes.\n";
  return 0;
}
