// Reproduces Table I: the Mont-Blanc selected HPC applications.
#include <iostream>

#include "apps/registry.h"
#include "support/table.h"

int main() {
  std::cout << "=== Table I: Mont-Blanc Selected HPC Applications ===\n\n";
  mb::support::Table table({"Code", "Scientific Domain", "Institution"});
  for (const auto& app : mb::apps::montblanc_applications())
    table.add_row({app.code, app.domain, app.institution});
  std::cout << table;
  std::cout << "\n(11 applications, as listed in the paper.)\n";
  return 0;
}
