// Reproduces Table II: single-node comparison between the Snowball
// (ST-Ericsson A9500) and the Intel Xeon X5550 across the five workloads,
// with performance ratios and the paper's conservative energy ratios.
//
// Paper values for reference:
//   LINPACK (MFLOPS)    620       24000      ratio 38.7   energy 1.0
//   CoreMark (ops/s)    5877      41950      ratio  7.1   energy 0.2
//   StockFish (ops/s)   224113    4521733    ratio 20.2   energy 0.5
//   SPECFEM3D (s)       186.8     23.5       ratio  7.9   energy 0.2
//   BigDFT (s)          420.4     18.1       ratio 23.2   energy 0.6
#include <iostream>

#include "arch/platforms.h"
#include "kernels/chessbench.h"
#include "kernels/coremark.h"
#include "kernels/linpack.h"
#include "kernels/magicfilter.h"
#include "kernels/stencil.h"
#include "power/energy.h"
#include "support/table.h"

namespace {

using mb::support::fmt_eng;
using mb::support::fmt_fixed;

mb::sim::Machine machine_for(const mb::arch::Platform& p) {
  return mb::sim::Machine(p, mb::sim::PagePolicy::kConsecutive,
                          mb::support::Rng(1));
}

struct Row {
  std::string name;
  double snowball = 0.0;  ///< metric on the ARM board (whole machine)
  double xeon = 0.0;      ///< metric on the Xeon (whole machine)
  bool higher_is_better = true;
};

}  // namespace

int main() {
  const auto arm_platform = mb::arch::snowball();
  const auto x86_platform = mb::arch::xeon_x5550();
  auto arm = machine_for(arm_platform);
  auto x86 = machine_for(x86_platform);

  // Whole-machine metrics: per-core simulated rate x cores (the paper runs
  // 2 Snowball cores against 4 Xeon cores, hyperthreading off).
  const double arm_cores = arm_platform.cores;
  const double x86_cores = x86_platform.cores;

  std::vector<Row> rows;

  {  // LINPACK: MFLOPS.
    mb::kernels::LinpackParams p;
    p.n = 96;
    p.block = 32;
    Row r{"LINPACK (MFLOPS)"};
    r.snowball = mb::kernels::linpack_run(arm, p).mflops * arm_cores;
    r.xeon = mb::kernels::linpack_run(x86, p).mflops * x86_cores;
    rows.push_back(r);
  }
  {  // CoreMark: iterations/s.
    mb::kernels::CoremarkParams p;
    p.iterations = 8;
    Row r{"CoreMark (ops/s)"};
    r.snowball =
        mb::kernels::coremark_run(arm, p).iterations_per_s * arm_cores;
    r.xeon = mb::kernels::coremark_run(x86, p).iterations_per_s * x86_cores;
    rows.push_back(r);
  }
  {  // StockFish: nodes/s.
    mb::kernels::ChessbenchParams p;
    p.depth = 4;
    p.positions = 3;
    Row r{"StockFish (nodes/s)"};
    r.snowball = mb::kernels::chessbench_run(arm, p).nodes_per_s * arm_cores;
    r.xeon = mb::kernels::chessbench_run(x86, p).nodes_per_s * x86_cores;
    rows.push_back(r);
  }
  {  // SPECFEM3D: seconds for a fixed instance (lower is better).
    mb::kernels::StencilParams p;
    p.n = 12;
    p.steps = 40;
    Row r{"SPECFEM3D (s)", 0, 0, /*higher_is_better=*/false};
    r.snowball = mb::kernels::stencil_run(arm, p).sim.seconds / arm_cores;
    r.xeon = mb::kernels::stencil_run(x86, p).sim.seconds / x86_cores;
    rows.push_back(r);
  }
  {  // BigDFT: seconds of magicfilter-dominated work (lower is better).
    mb::kernels::MagicfilterParams p;
    p.n = 20;
    p.dims = 3;
    p.unroll = 4;
    Row r{"BigDFT (s)", 0, 0, /*higher_is_better=*/false};
    r.snowball = mb::kernels::magicfilter_run(arm, p).sim.seconds / arm_cores;
    r.xeon = mb::kernels::magicfilter_run(x86, p).sim.seconds / x86_cores;
    rows.push_back(r);
  }

  std::cout << "=== Table II: Snowball (2xA9 @1GHz, 2.5W) vs "
               "Xeon X5550 (4 cores @2.66GHz, 95W TDP) ===\n\n";
  mb::support::Table table(
      {"Benchmark", "Snowball", "Xeon", "Ratio", "Energy Ratio"});
  for (const auto& r : rows) {
    const double ratio = r.higher_is_better ? r.xeon / r.snowball
                                            : r.snowball / r.xeon;
    // Energy ratio (ARM/x86) under the paper's nameplate power model:
    // ratio * P_arm / P_xeon.
    const double energy =
        ratio * arm_platform.power_w / x86_platform.power_w;
    table.add_row({r.name, fmt_eng(r.snowball), fmt_eng(r.xeon),
                   fmt_fixed(ratio, 1), fmt_fixed(energy, 2)});
  }
  std::cout << table;
  std::cout <<
      "\nPaper ratios: 38.7 / 7.1 / 20.2 / 7.9 / 23.2;"
      " paper energy ratios: 1.0 / 0.2 / 0.5 / 0.2 / 0.6.\n"
      "Energy ratio < 1 means the ARM board used less energy for the same"
      " work\n(despite the deliberately unfavourable 2.5 W vs TDP-only"
      " accounting).\n";
  return 0;
}
