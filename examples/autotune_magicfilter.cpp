// Full auto-tuning session on the BigDFT magicfilter, the paper's Sec. V-B
// use case: generate unrolled variants 1..12, benchmark them with the
// randomized harness on two platforms, and report each platform's optimum
// and sweet spot. Demonstrates both tuning levels of Sec. VI-B:
// platform-specific (static) and instance-specific tuning.
#include <iostream>

#include "arch/platforms.h"
#include "core/tuner.h"
#include "kernels/magicfilter.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

mb::core::Workload magicfilter_workload(std::uint32_t n) {
  return [n](const mb::core::Point& point, mb::sim::Machine& machine) {
    mb::kernels::MagicfilterParams p;
    p.n = n;
    p.dims = 1;
    p.unroll = static_cast<std::uint32_t>(point.get("unroll"));
    return mb::kernels::magicfilter_run(machine, p).cycles_per_output;
  };
}

void tune_platform(const mb::arch::Platform& platform) {
  std::cout << "--- static tuning on " << platform.name << " ---\n";

  mb::core::MachineFactory factory = [platform](std::uint64_t seed) {
    return mb::sim::Machine(platform, mb::sim::PagePolicy::kReuseBiased,
                            mb::support::Rng(seed));
  };
  mb::core::MeasurementPlan plan;
  plan.repetitions = 5;
  plan.seed = 2013;

  mb::core::ParamSpace space;
  space.add_range("unroll", 1, 12);

  mb::core::Tuner tuner(mb::core::Harness(factory, nullptr, plan),
                        mb::core::Direction::kMinimize);
  const auto report = tuner.tune(space, magicfilter_workload(20));

  mb::support::Table table({"Unroll", "Cycles/output"});
  std::vector<double> metric(space.size());
  for (const auto& [idx, value] : report.evaluated) {
    metric[idx] = value;
    table.add_row({std::to_string(space.at(idx).get("unroll")),
                   fmt_fixed(value, 1)});
  }
  std::cout << table;

  const auto spot = mb::core::sweet_spot(space, metric,
                                         mb::core::Direction::kMinimize);
  std::cout << "best variant: " << report.best.to_string() << " at "
            << fmt_fixed(report.best_value, 1) << " cycles/output ("
            << report.evaluations << " measurements)\n"
            << "sweet spot:   unroll in [" << spot.lo << ", " << spot.hi
            << "]\n\n";
}

}  // namespace

int main() {
  std::cout << "=== Auto-tuning the magicfilter unroll degree ===\n\n";
  tune_platform(mb::arch::xeon_x5550());
  tune_platform(mb::arch::tegra2_node());

  // Instance-specific tuning: the best unroll may shift with problem size.
  std::cout << "--- instance-specific tuning (Tegra2) ---\n";
  mb::core::MachineFactory factory = [](std::uint64_t seed) {
    return mb::sim::Machine(mb::arch::tegra2_node(),
                            mb::sim::PagePolicy::kReuseBiased,
                            mb::support::Rng(seed));
  };
  mb::core::MeasurementPlan plan;
  plan.repetitions = 3;
  mb::core::Tuner tuner(mb::core::Harness(factory, nullptr, plan),
                        mb::core::Direction::kMinimize);

  mb::support::Table table({"Instance (n)", "Best unroll", "Cycles/output"});
  for (const std::uint32_t n : {16u, 24u, 32u}) {
    mb::core::ParamSpace space;
    space.add_range("unroll", 1, 12);
    const auto report = tuner.tune(space, magicfilter_workload(n));
    table.add_row({std::to_string(n),
                   std::to_string(report.best.get("unroll")),
                   fmt_fixed(report.best_value, 1)});
  }
  std::cout << table
            << "\nRuntime (JIT) compilation of such variants is what the "
               "paper proposes\nfor OpenCL kernels (Sec. VI-B).\n";
  return 0;
}
