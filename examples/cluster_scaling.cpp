// Scale the BigDFT application model across a simulated Tibidabo cluster,
// stock vs upgraded interconnect, and print speedup/efficiency tables —
// the Sec. IV experiment as a user of the library would run it.
#include <iostream>
#include <vector>

#include "apps/bigdft.h"
#include "stats/scaling.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

std::vector<mb::stats::ScalingPoint> sweep(bool upgraded) {
  const std::vector<int> cores{2, 4, 8, 16, 24, 36};
  std::vector<double> times;
  for (const int c : cores) {
    mb::apps::BigDftParams p;
    p.ranks = static_cast<std::uint32_t>(c);
    p.iterations = 5;
    p.compute_s_per_iter = 2.0;
    p.transpose_bytes = 24ull << 20;
    const auto cluster =
        upgraded ? mb::apps::upgraded_cluster(std::max(1, c / 2))
                 : mb::apps::tibidabo_cluster(std::max(1, c / 2));
    times.push_back(mb::apps::run_bigdft(cluster, p).makespan_s);
  }
  return mb::stats::strong_scaling(cores, times);
}

void print(const char* title,
           const std::vector<mb::stats::ScalingPoint>& series) {
  std::cout << title << '\n';
  mb::support::Table table({"Cores", "Time (s)", "Speedup", "Efficiency"});
  for (const auto& p : series)
    table.add_row({std::to_string(p.cores), fmt_fixed(p.time_s, 2),
                   fmt_fixed(p.speedup, 1), fmt_fixed(p.efficiency, 2)});
  std::cout << table << '\n';
}

}  // namespace

int main() {
  std::cout << "=== BigDFT strong scaling on Tibidabo ===\n\n";
  const auto stock = sweep(/*upgraded=*/false);
  print("--- stock interconnect (1GbE, shallow switch buffers) ---", stock);

  const auto upgraded = sweep(/*upgraded=*/true);
  print("--- upgraded interconnect (deep buffers, 10GbE uplinks) ---",
        upgraded);

  std::cout << "efficiency at 36 cores: stock "
            << fmt_fixed(mb::stats::final_efficiency(stock), 2)
            << " vs upgraded "
            << fmt_fixed(mb::stats::final_efficiency(upgraded), 2)
            << "\n(the upgrade the paper announces for Tibidabo)\n";
  return 0;
}
