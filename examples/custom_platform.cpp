// Defining your own machine — the library's main extension point.
//
// The Mont-Blanc method is meant to be reapplied to every new board. This
// example builds a hypothetical next-generation embedded part ("big
// in-order microserver core") as a *text* description, parses it, and puts
// it through the standard battery: topology, roofline, membench, latency
// and the magicfilter tuning sweep, next to the Snowball baseline.
#include <iostream>

#include "arch/platform_io.h"
#include "arch/platforms.h"
#include "arch/topology.h"
#include "core/param_space.h"
#include "core/search.h"
#include "kernels/latency.h"
#include "kernels/magicfilter.h"
#include "kernels/membench.h"
#include "sim/roofline.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

/// A board that exists only in this file: start from the Snowball's
/// serialized description and edit it — exactly the workflow a user has
/// with `mbctl show snowball > my.platform`.
mb::arch::Platform make_hypothetical() {
  std::string text = mb::arch::serialize_platform(mb::arch::snowball());
  auto patch = [&text](const std::string& key, const std::string& value) {
    const auto pos = text.find(key + " = ");
    const auto end = text.find('\n', pos);
    text.replace(pos, end - pos, key + " = " + value);
  };
  patch("name", "Hypothetica H1 (4x in-order @1.4 GHz, DP NEON)");
  patch("cores", "4");
  patch("power_w", "4.0");
  patch("freq_hz", "1.4e9");
  patch("vector_dp", "1");          // the DP-capable SIMD the A9 lacked
  patch("recip.vec_dp", "2");
  patch("recip.fp_add_dp", "1.5");
  patch("recip.fp_mul_dp", "1.5");
  patch("bandwidth_bytes_per_s", "3.2e9");  // LPDDR3-class
  patch("latency_ns", "95");
  return mb::arch::parse_platform(text);
}

void battery(const mb::arch::Platform& platform) {
  std::cout << "==== " << platform.name << " ====\n";
  std::cout << mb::arch::render_topology(platform);
  const auto roof = mb::sim::dp_roofline(platform);
  std::cout << "DP roofline: " << fmt_fixed(roof.peak_gflops, 1)
            << " GFLOPS / " << fmt_fixed(roof.bandwidth_gbs, 1)
            << " GB/s (ridge " << fmt_fixed(roof.ridge_intensity(), 1)
            << " flop/B), " << fmt_fixed(platform.power_w, 1) << " W -> "
            << fmt_fixed(roof.peak_gflops / platform.power_w, 2)
            << " GFLOPS/W peak\n";

  mb::sim::Machine machine(platform, mb::sim::PagePolicy::kConsecutive,
                           mb::support::Rng(1));
  mb::kernels::MembenchParams mp;
  mp.array_bytes = 48 * 1024;
  mp.elem_bits = 64;
  mp.unroll = 8;
  std::cout << "membench 48KB/64b/u8: "
            << fmt_fixed(mb::kernels::membench_run(machine, mp)
                                 .bandwidth_bytes_per_s /
                             1e9,
                         2)
            << " GB/s\n";

  mb::kernels::LatencyParams lp;
  lp.buffer_bytes = 4 * 1024 * 1024;
  std::cout << "4MB chase: "
            << fmt_fixed(mb::kernels::latency_run(machine, lp).ns_per_hop,
                         1)
            << " ns/hop\n";

  mb::core::ParamSpace space;
  space.add_range("unroll", 1, 12);
  std::vector<double> cycles;
  for (std::size_t i = 0; i < space.size(); ++i) {
    mb::kernels::MagicfilterParams p;
    p.n = 20;
    p.dims = 1;
    p.unroll = static_cast<std::uint32_t>(space.at(i).get("unroll"));
    cycles.push_back(
        mb::kernels::magicfilter_run(machine, p).cycles_per_output);
  }
  const auto spot = mb::core::sweet_spot(space, cycles,
                                         mb::core::Direction::kMinimize);
  std::cout << "magicfilter sweet spot: unroll in [" << spot.lo << ", "
            << spot.hi << "]\n\n";
}

}  // namespace

int main() {
  std::cout << "=== Custom platform walkthrough ===\n\n";
  battery(mb::arch::snowball());
  battery(make_hypothetical());
  std::cout
      << "Every number above came straight from the text description — "
         "evaluating a\nproposed SoC is an edit to a config file, not a "
         "C++ change.\n";
  return 0;
}
