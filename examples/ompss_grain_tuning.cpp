// OmpSs-style task-granularity tuning (paper Sec. II objectives + VI-B).
//
// The Mont-Blanc project ports its applications to BSC's OmpSs task model;
// the first tuning question any tasking runtime poses is *grain size*:
// few big tasks load-balance poorly, many small tasks drown in dispatch
// overhead. This example sweeps the chunk count of a fixed computation on
// the embedded dual-core and the server quad-core, then lets the core
// tuning framework find each platform's optimum — which differ, again.
#include <iostream>

#include "core/param_space.h"
#include "core/search.h"
#include "omp/taskgraph.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

struct NodeModel {
  std::string name;
  std::uint32_t cores;
  double task_overhead_s;  ///< dispatch cost per task on this core
};

double makespan(const NodeModel& node, std::int64_t chunks) {
  // 100 ms of irregular work (+-60% task-size spread) with a 5% serial
  // prologue, split into `chunks` tasks.
  const auto g = mb::omp::irregular_graph(
      0.1, 0.05, static_cast<std::uint32_t>(chunks), 0.6, 42);
  return mb::omp::schedule(g, node.cores, node.task_overhead_s).makespan;
}

void tune(const NodeModel& node) {
  std::cout << "--- " << node.name << " (" << node.cores << " cores, "
            << node.task_overhead_s * 1e6 << " us/task dispatch) ---\n";
  mb::core::ParamSpace space;
  space.add("chunks", {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096});

  mb::support::Table table({"Chunks", "Makespan (ms)", "Efficiency"});
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto chunks = space.at(i).get("chunks");
    const auto g = mb::omp::irregular_graph(
        0.1, 0.05, static_cast<std::uint32_t>(chunks), 0.6, 42);
    const auto s =
        mb::omp::schedule(g, node.cores, node.task_overhead_s);
    table.add_row({std::to_string(chunks), fmt_fixed(s.makespan * 1e3, 3),
                   fmt_fixed(s.efficiency, 2)});
  }
  std::cout << table;

  const auto best = mb::core::exhaustive_search(
      space,
      [&node](const mb::core::Point& p) {
        return makespan(node, p.get("chunks"));
      },
      mb::core::Direction::kMinimize);
  std::cout << "optimal grain: " << space.at(best.best_index).get("chunks")
            << " chunks (" << fmt_fixed(best.best_value * 1e3, 3)
            << " ms)\n\n";
}

}  // namespace

int main() {
  std::cout << "=== OmpSs-style task granularity tuning ===\n\n";
  // The embedded runtime pays more per task (slower core, same bookkeeping
  // code), and has fewer cores to feed.
  tune({"Tegra2-class node", 2, 25e-6});
  tune({"Xeon X5550-class node", 4, 4e-6});
  std::cout
      << "Both platforms want enough chunks to balance load, but the "
         "embedded node's\nhigher per-task cost caps the useful grain much "
         "earlier — the tasking-runtime\nversion of the paper's narrow "
         "ARM sweet spots.\n";
  return 0;
}
