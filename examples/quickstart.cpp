// Quickstart: build a simulated platform, run the strided memory kernel on
// it, and read the PAPI-style counters.
//
//   $ ./quickstart
//
// This is the 60-second tour of the library: Platform -> Machine ->
// kernel run -> counters/derived metrics.
#include <iostream>

#include "arch/platforms.h"
#include "kernels/membench.h"
#include "support/table.h"

int main() {
  using mb::support::fmt_fixed;

  // 1. Pick a platform. Built-ins: snowball(), xeon_x5550(),
  //    tegra2_node(), exynos5() — or build your own arch::Platform.
  const mb::arch::Platform platform = mb::arch::snowball();
  std::cout << "Platform: " << platform.name << "\n"
            << "  cores: " << platform.cores << " @ "
            << platform.core.freq_hz / 1e9 << " GHz, power "
            << platform.power_w << " W\n"
            << "  peak DP: " << fmt_fixed(platform.peak_dp_gflops(), 2)
            << " GFLOPS\n\n";

  // 2. Bind it to live state: an address space (with an OS page-placement
  //    model), caches and a TLB.
  mb::sim::Machine machine(platform, mb::sim::PagePolicy::kConsecutive,
                           mb::support::Rng(42));

  // 3. Run a kernel. Here: the paper's strided-access micro-benchmark,
  //    24 KB array, stride 1, 64-bit elements, unrolled 4x.
  mb::kernels::MembenchParams params;
  params.array_bytes = 24 * 1024;
  params.stride_elems = 1;
  params.elem_bits = 64;
  params.unroll = 4;
  params.passes = 8;

  // The same variant also runs natively (real arithmetic, validated in
  // the test suite):
  std::cout << "native checksum: " << mb::kernels::membench_native(params)
            << "\n\n";

  const mb::kernels::MembenchResult r =
      mb::kernels::membench_run(machine, params);

  // 4. Read the results.
  std::cout << "simulated bandwidth: "
            << fmt_fixed(r.bandwidth_bytes_per_s / 1e9, 2) << " GB/s\n"
            << "time: " << r.sim.seconds * 1e6 << " us\n\n"
            << "PAPI-style counters:\n"
            << r.sim.counters.to_string() << "\n"
            << "IPC: " << fmt_fixed(r.sim.counters.ipc(), 2)
            << ", L1 miss ratio: "
            << fmt_fixed(r.sim.counters.l1_miss_ratio(), 3) << "\n";
  return 0;
}
