// Reproducibility audit: demonstrates the two experimental-bias traps of
// Sec. V-A and how the randomized harness handles them.
//
//  1. Physical page placement — measurements are stable within a run but
//     differ across runs on the ARM board (reuse-biased allocation).
//  2. Real-time scheduling — a latent degraded mode makes "max
//     performance" settings bimodal; consecutive samples hide it unless
//     the whole campaign is randomized and mode-checked.
#include <iostream>

#include "arch/platforms.h"
#include "core/harness.h"
#include "kernels/membench.h"
#include "support/table.h"

namespace {

using mb::support::fmt_fixed;

mb::core::Workload membench_seconds_per_byte() {
  return [](const mb::core::Point&, mb::sim::Machine& machine) {
    mb::kernels::MembenchParams p;
    p.array_bytes = 40 * 1024;  // around the L1 capacity: the danger zone
    p.passes = 4;
    const auto r = mb::kernels::membench_run(machine, p);
    return r.sim.seconds / static_cast<double>(r.bytes_accessed);
  };
}

mb::core::ResultSet measure(mb::sim::PagePolicy policy, bool fresh_per_rep,
                            bool realtime_scheduler, std::uint64_t seed) {
  mb::core::MachineFactory factory = [policy](std::uint64_t s) {
    return mb::sim::Machine(mb::arch::snowball(), policy,
                            mb::support::Rng(s));
  };
  std::unique_ptr<mb::os::SchedulerModel> sched;
  if (realtime_scheduler) {
    sched =
        std::make_unique<mb::os::RealTimeAnomalous>(mb::support::Rng(seed));
  }
  mb::core::MeasurementPlan plan;
  plan.repetitions = 42;
  plan.fresh_machine_per_rep = fresh_per_rep;
  plan.seed = seed;

  mb::core::Harness harness(factory, std::move(sched), plan);
  mb::core::ParamSpace space;
  space.add("variant", {0});
  return harness.run(space, membench_seconds_per_byte());
}

}  // namespace

int main() {
  std::cout << "=== Reproducibility audit (Snowball, 40KB membench) ===\n\n";

  std::cout << "--- trap 1: physical page placement ---\n";
  mb::support::Table t1({"Setup", "CV across samples"});
  const auto within =
      measure(mb::sim::PagePolicy::kReuseBiased, /*fresh=*/false,
              /*rt=*/false, 7);
  t1.add_row({"one run, reuse-biased pages (what you measure naively)",
              fmt_fixed(mb::stats::cv(within.samples(0)), 4)});
  const auto across =
      measure(mb::sim::PagePolicy::kRandom, /*fresh=*/true, /*rt=*/false, 7);
  t1.add_row({"fresh placement per repetition (randomized harness)",
              fmt_fixed(mb::stats::cv(across.samples(0)), 4)});
  std::cout << t1
            << "\nThe naive setup under-reports variability: every sample "
               "reuses the same\nphysical pages, so the (possibly bad) "
               "placement drawn at startup never shows.\n\n";

  std::cout << "--- trap 2: real-time scheduling ---\n";
  const auto rt = measure(mb::sim::PagePolicy::kReuseBiased, false,
                          /*rt=*/true, 11);
  const auto split = rt.modes(0);
  std::cout << "modes detected: " << (split.bimodal ? 2 : 1) << '\n';
  if (split.bimodal) {
    std::cout << "mode ratio (slow/fast): "
              << fmt_fixed(split.high_center / split.low_center, 1)
              << "x\n"
              << "degraded samples consecutive: "
              << (rt.degraded_mode_is_temporal(0) ? "yes" : "no")
              << "  (the paper's Fig. 5b signature)\n";
  }
  std::cout << "\nConclusion (paper Sec. V): benchmark campaigns on these "
               "platforms must be\nrandomized and mode-checked before "
               "trusting any mean.\n";
  return 0;
}
