// Compare two platforms on one kernel, Table-II style: performance ratio
// and energy ratio under the paper's conservative power accounting.
//
//   $ ./single_node_compare            # default: LINPACK
//   $ ./single_node_compare coremark
//   $ ./single_node_compare chess
//   $ ./single_node_compare stencil
//   $ ./single_node_compare magicfilter
#include <iostream>
#include <string>

#include "arch/platforms.h"
#include "kernels/chessbench.h"
#include "kernels/coremark.h"
#include "kernels/linpack.h"
#include "kernels/magicfilter.h"
#include "kernels/stencil.h"
#include "power/energy.h"
#include "support/table.h"

namespace {

/// Seconds for one core to finish the chosen workload on `machine`.
double run_workload(const std::string& which, mb::sim::Machine& machine) {
  if (which == "coremark") {
    mb::kernels::CoremarkParams p;
    p.iterations = 8;
    return mb::kernels::coremark_run(machine, p).sim.seconds;
  }
  if (which == "chess") {
    mb::kernels::ChessbenchParams p;
    p.depth = 4;
    p.positions = 2;
    return mb::kernels::chessbench_run(machine, p).sim.seconds;
  }
  if (which == "stencil") {
    mb::kernels::StencilParams p;
    p.n = 12;
    p.steps = 20;
    return mb::kernels::stencil_run(machine, p).sim.seconds;
  }
  if (which == "magicfilter") {
    mb::kernels::MagicfilterParams p;
    p.n = 20;
    p.dims = 3;
    p.unroll = 4;
    return mb::kernels::magicfilter_run(machine, p).sim.seconds;
  }
  mb::kernels::LinpackParams p;  // default: linpack
  p.n = 96;
  p.block = 32;
  return mb::kernels::linpack_run(machine, p).sim.seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "linpack";

  const auto arm_platform = mb::arch::snowball();
  const auto x86_platform = mb::arch::xeon_x5550();
  mb::sim::Machine arm(arm_platform, mb::sim::PagePolicy::kConsecutive,
                       mb::support::Rng(1));
  mb::sim::Machine x86(x86_platform, mb::sim::PagePolicy::kConsecutive,
                       mb::support::Rng(1));

  // Whole-machine time: per-core time divided by core count (the paper
  // compares 2 Snowball cores against 4 Xeon cores).
  const double t_arm = run_workload(which, arm) / arm_platform.cores;
  const double t_x86 = run_workload(which, x86) / x86_platform.cores;

  const double perf_ratio = t_arm / t_x86;
  const double energy =
      mb::power::energy_ratio(arm_platform, t_arm, x86_platform, t_x86);

  std::cout << "workload: " << which << "\n\n";
  mb::support::Table table({"Platform", "Time (ms)", "Energy (J)"});
  table.add_row({arm_platform.name,
                 mb::support::fmt_fixed(t_arm * 1e3, 3),
                 mb::support::fmt_eng(
                     mb::power::energy_j(arm_platform, t_arm))});
  table.add_row({x86_platform.name,
                 mb::support::fmt_fixed(t_x86 * 1e3, 3),
                 mb::support::fmt_eng(
                     mb::power::energy_j(x86_platform, t_x86))});
  std::cout << table << '\n';
  std::cout << "performance ratio (Xeon faster by): "
            << mb::support::fmt_fixed(perf_ratio, 1) << "x\n";
  std::cout << "energy ratio (ARM / x86):           "
            << mb::support::fmt_fixed(energy, 2)
            << (energy < 1.0 ? "  -> the ARM board uses less energy\n"
                             : "  -> the Xeon uses less energy\n");
  return 0;
}
