#include "advise/advice.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"
#include "support/check.h"
#include "support/json.h"
#include "support/version.h"

namespace mb::advise {

using support::JsonValue;
using support::JsonWriter;

namespace {

std::string pct(double frac) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * frac);
  return buf;
}

}  // namespace

std::string_view kind_name(Kind k) {
  switch (k) {
    case Kind::kRemapRanks: return "remap-ranks";
    case Kind::kSwitchCollective: return "switch-collective";
    case Kind::kCheckpointInterval: return "checkpoint-interval";
    case Kind::kKernelVariant: return "kernel-variant";
    case Kind::kSimJobs: return "sim-jobs";
  }
  support::fail("kind_name", "invalid recommendation kind");
}

Kind parse_kind(std::string_view name) {
  for (Kind k : {Kind::kRemapRanks, Kind::kSwitchCollective,
                 Kind::kCheckpointInterval, Kind::kKernelVariant,
                 Kind::kSimJobs}) {
    if (kind_name(k) == name) return k;
  }
  support::fail("parse_kind",
                "unknown recommendation kind '" + std::string(name) + "'");
}

std::string_view verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kPending: return "pending";
    case Verdict::kAccepted: return "accepted";
    case Verdict::kRejected: return "rejected";
    case Verdict::kAdvisory: return "advisory";
  }
  support::fail("verdict_name", "invalid verdict");
}

Verdict parse_verdict(std::string_view name) {
  for (Verdict v : {Verdict::kPending, Verdict::kAccepted, Verdict::kRejected,
                    Verdict::kAdvisory}) {
    if (verdict_name(v) == name) return v;
  }
  support::fail("parse_verdict",
                "unknown verdict '" + std::string(name) + "'");
}

void rank_recommendations(AdviceReport& report) {
  std::stable_sort(report.recommendations.begin(),
                   report.recommendations.end(),
                   [](const Recommendation& a, const Recommendation& b) {
                     if (a.predicted_delta_hi != b.predicted_delta_hi)
                       return a.predicted_delta_hi > b.predicted_delta_hi;
                     return a.id < b.id;
                   });
}

std::string to_json(const AdviceReport& report) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "mb-advice");
  w.field("schema_version", report.schema_version);
  w.field("tool", report.tool);
  w.field("tool_version", report.tool_version.empty()
                              ? std::string(support::version())
                              : report.tool_version);
  w.field("scenario", report.scenario);
  w.field("seed", report.seed);
  w.field("applied", report.applied);
  w.key("recommendations").begin_array();
  for (const Recommendation& r : report.recommendations) {
    w.begin_object();
    w.field("id", r.id);
    w.field("kind", kind_name(r.kind));
    w.field("title", r.title);
    w.field("action", r.action);
    w.field("target", r.target);
    w.field("metric", r.metric);
    w.field("baseline_value", r.baseline_value);
    w.field("proposed_value", r.proposed_value);
    w.field("predicted_delta_lo", r.predicted_delta_lo);
    w.field("predicted_delta_hi", r.predicted_delta_hi);
    w.field("appliable", r.appliable);
    w.field("verdict", verdict_name(r.verdict));
    if (r.verdict == Verdict::kAccepted || r.verdict == Verdict::kRejected) {
      w.field("measured_baseline", r.measured_baseline);
      w.field("measured_candidate", r.measured_candidate);
      w.field("measured_delta", r.measured_delta);
    }
    if (!r.verdict_reason.empty())
      w.field("verdict_reason", r.verdict_reason);
    w.key("evidence").begin_array();
    for (const Evidence& e : r.evidence) {
      w.begin_object();
      w.field("artifact", e.artifact);
      w.field("pointer", e.pointer);
      w.field("detail", e.detail);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

AdviceReport advice_from_json(std::string_view text) {
  const JsonValue doc = support::parse_json(text);
  support::check(doc.at("schema").as_string() == kAdviceSchemaName,
                 "advice_from_json",
                 "unknown schema '" + doc.at("schema").as_string() + "'");
  AdviceReport report;
  report.schema_version =
      static_cast<int>(doc.at("schema_version").as_number());
  support::check(report.schema_version == kAdviceSchemaVersion,
                 "advice_from_json",
                 "unsupported mb-advice schema_version " +
                     std::to_string(report.schema_version));
  report.tool = doc.at("tool").as_string();
  report.tool_version = doc.at("tool_version").as_string();
  report.scenario = doc.at("scenario").as_string();
  report.seed = static_cast<std::uint64_t>(doc.at("seed").as_number());
  report.applied = doc.at("applied").as_bool();
  for (const JsonValue& rv : doc.at("recommendations").as_array()) {
    Recommendation r;
    r.id = rv.at("id").as_string();
    r.kind = parse_kind(rv.at("kind").as_string());
    r.title = rv.at("title").as_string();
    r.action = rv.at("action").as_string();
    r.target = rv.at("target").as_string();
    r.metric = rv.at("metric").as_string();
    r.baseline_value = rv.at("baseline_value").as_number();
    r.proposed_value = rv.at("proposed_value").as_number();
    r.predicted_delta_lo = rv.at("predicted_delta_lo").as_number();
    r.predicted_delta_hi = rv.at("predicted_delta_hi").as_number();
    r.appliable = rv.at("appliable").as_bool();
    r.verdict = parse_verdict(rv.at("verdict").as_string());
    if (const JsonValue* v = rv.find("measured_baseline"))
      r.measured_baseline = v->as_number();
    if (const JsonValue* v = rv.find("measured_candidate"))
      r.measured_candidate = v->as_number();
    if (const JsonValue* v = rv.find("measured_delta"))
      r.measured_delta = v->as_number();
    if (const JsonValue* v = rv.find("verdict_reason"))
      r.verdict_reason = v->as_string();
    for (const JsonValue& ev : rv.at("evidence").as_array()) {
      Evidence e;
      e.artifact = ev.at("artifact").as_string();
      e.pointer = ev.at("pointer").as_string();
      e.detail = ev.at("detail").as_string();
      r.evidence.push_back(std::move(e));
    }
    report.recommendations.push_back(std::move(r));
  }
  return report;
}

std::string render_advice(const AdviceReport& report) {
  std::ostringstream out;
  out << "advice for " << report.scenario << " (seed " << report.seed
      << "): " << report.recommendations.size() << " recommendation(s)";
  if (report.applied) out << ", verdicts applied";
  out << '\n';
  std::size_t i = 0;
  for (const Recommendation& r : report.recommendations) {
    out << "  " << ++i << ". [" << kind_name(r.kind) << "] " << r.title
        << '\n';
    out << "     predicted: " << pct(r.predicted_delta_lo) << " - "
        << pct(r.predicted_delta_hi) << " of " << r.metric << '\n';
    out << "     action: " << r.action << '\n';
    for (const Evidence& e : r.evidence) {
      out << "     evidence: " << e.artifact << e.pointer << " — "
          << e.detail << '\n';
    }
    out << "     verdict: " << verdict_name(r.verdict);
    if (r.verdict == Verdict::kAccepted || r.verdict == Verdict::kRejected) {
      out << " (measured " << pct(r.measured_delta) << ": "
          << r.verdict_reason << ")";
    } else if (!r.verdict_reason.empty()) {
      out << " (" << r.verdict_reason << ")";
    }
    out << '\n';
  }
  return out.str();
}

void publish_advice_metrics(const AdviceReport& report) {
  obs::Registry& registry = obs::metrics();
  for (const Recommendation& r : report.recommendations) {
    registry
        .counter("advise.recommendations",
                 {{"kind", std::string(kind_name(r.kind))}})
        .add(1.0);
    if (r.verdict == Verdict::kAccepted)
      registry.counter("advise.accepted").add(1.0);
    if (r.verdict == Verdict::kRejected)
      registry.counter("advise.rejected").add(1.0);
  }
}

}  // namespace mb::advise
