// Versioned performance recommendations (mb-advice v1).
//
// The advisor closes the loop the paper leaves open: its analyses name a
// culprit (a straggling node, a latency-bound collective, a mis-tuned
// checkpoint interval) but leave the "so what do I change" step to the
// reader. A Recommendation captures that step as data — a stable id, the
// concrete action, a predicted improvement *bracket* rather than a point
// estimate, and pointers back to the evidence artifacts that justify it.
// Guarded apply (apply.h) later records whether the measurement confirmed
// the prediction, so an mb-advice document is an auditable record of what
// was claimed, what was tried and what actually happened.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mb::advise {

inline constexpr std::string_view kAdviceSchemaName = "mb-advice";
inline constexpr int kAdviceSchemaVersion = 1;

/// What category of change a recommendation proposes. Stable names (see
/// kind_name) are part of the mb-advice schema.
enum class Kind {
  kRemapRanks,          ///< migrate a degraded node's ranks elsewhere
  kSwitchCollective,    ///< ring allreduce -> binomial reduce+bcast
  kCheckpointInterval,  ///< move the interval toward Young's optimum
  kKernelVariant,       ///< different unroll / element-width variant
  kSimJobs,             ///< advisory: shard the simulator itself
};

std::string_view kind_name(Kind k);
Kind parse_kind(std::string_view name);

/// Lifecycle of a recommendation through guarded apply.
enum class Verdict {
  kPending,   ///< emitted, not yet tried
  kAccepted,  ///< re-measured; compare confirmed the predicted bracket
  kRejected,  ///< re-measured; prediction did not survive the noise model
  kAdvisory,  ///< not mechanically appliable (human follow-up)
};

std::string_view verdict_name(Verdict v);
Verdict parse_verdict(std::string_view name);

/// A pointer into the artifact that justifies a recommendation — which
/// document (by schema name), where in it, and the one-line reading.
struct Evidence {
  std::string artifact;  ///< producing schema, e.g. "mb-analysis"
  std::string pointer;   ///< location within it, e.g. "/stragglers/0"
  std::string detail;    ///< human-readable reading of that evidence
};

struct Recommendation {
  /// Stable within a scenario, e.g. "remap-ranks:node2" — reruns of the
  /// same advisor over the same inputs produce the same ids, so verdicts
  /// can be diffed across runs.
  std::string id;
  Kind kind = Kind::kRemapRanks;
  std::string title;   ///< one line, e.g. "migrate ranks 4,5 off node 2"
  std::string action;  ///< what --apply (or the user) would change
  std::string target;  ///< the knob/node/label acted on, e.g. "node2"
  /// Metric predicted to improve and its measured baseline value.
  std::string metric = "time_to_solution_s";
  double baseline_value = 0.0;
  /// Generic numeric parameter of the proposed change (new checkpoint
  /// interval in seconds, unroll factor, node index to vacate, ...).
  double proposed_value = 0.0;
  /// Predicted fractional improvement bracket [lo, hi] of `metric`
  /// (0.25 = 25% faster). Guarded apply accepts only when the measured
  /// delta lands inside this bracket AND compare calls it significant.
  double predicted_delta_lo = 0.0;
  double predicted_delta_hi = 0.0;
  std::vector<Evidence> evidence;
  /// Whether apply.h knows how to re-run this configuration mechanically.
  bool appliable = false;

  Verdict verdict = Verdict::kPending;
  // Filled by guarded apply (zero / empty until then).
  double measured_baseline = 0.0;
  double measured_candidate = 0.0;
  double measured_delta = 0.0;  ///< fractional improvement, sign as above
  std::string verdict_reason;
};

struct AdviceReport {
  int schema_version = kAdviceSchemaVersion;
  std::string tool = "mbctl";
  std::string tool_version;  ///< stamped by to_json() when empty
  std::string scenario;      ///< e.g. "chaos:bigdft"
  std::uint64_t seed = 0;
  bool applied = false;  ///< true once guarded apply filled verdicts
  std::vector<Recommendation> recommendations;  ///< ranked, see below
};

/// Sorts recommendations by predicted_delta_hi descending (biggest
/// promised win first), id ascending on ties — deterministic ranking.
void rank_recommendations(AdviceReport& report);

/// Deterministic serialization (stable key order, json_number doubles).
std::string to_json(const AdviceReport& report);

/// Inverse of to_json(). Throws support::Error on malformed documents or
/// schema mismatch.
AdviceReport advice_from_json(std::string_view text);

/// Human-readable rendering for the CLI.
std::string render_advice(const AdviceReport& report);

/// Publishes advise.recommendations{kind=...} / advise.accepted /
/// advise.rejected counters to the global registry. Call from the thread
/// that owns the registry (it is single-threaded by design).
void publish_advice_metrics(const AdviceReport& report);

}  // namespace mb::advise
