#include "advise/advisor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include "support/check.h"
#include "verify/rules.h"

namespace mb::advise {
namespace {

std::string fmt2(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

std::string join_ranks(const std::vector<std::uint32_t>& ranks) {
  std::string s;
  for (std::uint32_t r : ranks) {
    if (!s.empty()) s += ",";
    s += std::to_string(r);
  }
  return s;
}

/// Ranks living on `node` under the default node-major placement the
/// measured run used.
std::vector<std::uint32_t> node_major_ranks(const ScenarioFacts& facts,
                                            std::uint32_t node) {
  std::vector<std::uint32_t> ranks;
  for (std::uint32_t c = 0; c < facts.cores_per_node; ++c) {
    const std::uint32_t r = node * facts.cores_per_node + c;
    if (r < facts.ranks) ranks.push_back(r);
  }
  return ranks;
}

/// remap-ranks: a fault-plan slowdown names a node; the measured timeline
/// confirms that node's ranks are where the run's wait concentrates.
/// Migrating those ranks to a spare node dodges the slowdown entirely.
void rule_remap_ranks(const ScenarioFacts& facts,
                      const AdvisorOptions& options,
                      std::vector<Recommendation>& out) {
  if (facts.analysis == nullptr || facts.plan == nullptr) return;
  const double makespan = facts.measured_makespan_s;
  if (makespan <= 0.0) return;

  for (std::size_t si = 0; si < facts.plan->slowdowns.size(); ++si) {
    const fault::NodeSlowdown& s = facts.plan->slowdowns[si];
    const std::vector<std::uint32_t> victims =
        node_major_ranks(facts, s.node);
    if (victims.empty()) continue;

    double node_wait = 0.0;
    std::vector<Evidence> evidence;
    for (std::size_t i = 0; i < facts.analysis->stragglers.size(); ++i) {
      const obs::Straggler& st = facts.analysis->stragglers[i];
      if (std::find(victims.begin(), victims.end(), st.rank) ==
          victims.end())
        continue;
      node_wait += st.attributed_wait_s;
      evidence.push_back(
          {"mb-analysis", "/stragglers/" + std::to_string(i),
           "rank " + std::to_string(st.rank) + " holds " +
               fmt2(st.attributed_wait_s) + " s of attributed wait (" +
               fmt2(100.0 * st.share) + "% of the run's total)"});
    }
    if (node_wait / makespan < options.remap_wait_floor) continue;

    // Physical model of the claim: a factor-f slowdown over `overlap`
    // wall seconds costs at most (1 - 1/f) * overlap of makespan, so
    // removing it recovers some fraction of that. The attributed wait is
    // a *sum over ranks* — concurrent waiters double-count wall time —
    // so it sizes the ceiling (divided across the node's ranks), never
    // the floor.
    const double overlap =
        std::max(0.0, std::min(s.until_s, makespan) - s.at_s);
    const double factor = std::max(1.0, s.factor);
    const double slowdown_cost = (1.0 - 1.0 / factor) * overlap;
    const double mean_wait =
        node_wait / static_cast<double>(victims.size());
    const double lo =
        std::min(0.75, 0.25 * slowdown_cost / makespan);
    double hi = (slowdown_cost + mean_wait) / makespan;
    hi = std::min(0.9, std::max(hi, lo));

    evidence.push_back(
        {"mb-fault-plan", "/slowdowns/" + std::to_string(si),
         "node " + std::to_string(s.node) + " runs " + fmt2(factor) +
             "x slower in [" + fmt2(s.at_s) + ", " + fmt2(s.until_s) +
             ") s"});

    Recommendation r;
    r.id = "remap-ranks:node" + std::to_string(s.node);
    r.kind = Kind::kRemapRanks;
    r.target = "node" + std::to_string(s.node);
    r.title = "migrate ranks " + join_ranks(victims) + " off slowed node " +
              std::to_string(s.node) + " to a spare node";
    r.action =
        "extend the cluster by one spare node and pin node " +
        std::to_string(s.node) +
        "'s ranks onto it via an explicit rank_map; the slowdown window "
        "then degrades a node that carries no ranks";
    r.metric = "time_to_solution_s";
    r.baseline_value = makespan;
    r.proposed_value = static_cast<double>(s.node);
    r.predicted_delta_lo = lo;
    r.predicted_delta_hi = hi;
    r.evidence = std::move(evidence);
    r.appliable = true;
    out.push_back(std::move(r));
  }
}

/// switch-collective: the PERF006 condition re-derived from the static
/// bounds — a ring allreduce whose per-round segment is sub-MTU pays
/// 2(p-1) latency-bound rounds where a binomial reduce+bcast pays
/// 2*ceil(log2 p). The measured time in that collective sizes the claim.
void rule_switch_collective(const ScenarioFacts& facts,
                            const AdvisorOptions& options,
                            std::vector<Recommendation>& out) {
  if (facts.cost == nullptr || facts.analysis == nullptr) return;
  const double makespan = facts.measured_makespan_s;
  if (makespan <= 0.0) return;
  const std::uint32_t p = facts.cost->ranks;
  if (p < options.allreduce_min_ranks) return;

  std::set<std::string> seen;
  for (std::size_t ci = 0; ci < facts.cost->collectives.size(); ++ci) {
    const verify::CollectiveCost& cc = facts.cost->collectives[ci];
    if (cc.kind != mpi::Op::Kind::kAllreduce) continue;
    const std::uint64_t rounds = 2ull * (p - 1);
    const std::uint64_t chunk =
        cc.payload_bytes / std::max<std::uint64_t>(1, rounds * p);
    if (chunk >= facts.cost->mtu_bytes) continue;
    const std::string label =
        cc.label.empty() ? std::string("allreduce") : cc.label;
    if (!seen.insert(label).second) continue;

    const obs::CollectiveStats* stats = nullptr;
    std::size_t stats_index = 0;
    for (std::size_t k = 0; k < facts.analysis->collectives.size(); ++k) {
      if (facts.analysis->collectives[k].label == label) {
        stats = &facts.analysis->collectives[k];
        stats_index = k;
        break;
      }
    }
    if (stats == nullptr || stats->instances == 0) continue;

    const double ring_rounds = static_cast<double>(rounds);
    const double binom_rounds =
        2.0 * std::ceil(std::log2(static_cast<double>(p)));
    const double total_s =
        stats->median_duration_s * static_cast<double>(stats->instances);
    const double saved =
        total_s * std::max(0.0, 1.0 - binom_rounds / ring_rounds);

    Recommendation r;
    r.id = "switch-collective:" + label;
    r.kind = Kind::kSwitchCollective;
    r.target = label;
    r.title = "replace ring allreduce '" + label +
              "' with a binomial reduce + bcast";
    r.action = "the payload's per-round segment is " +
               std::to_string(chunk) + " B (< mtu " +
               std::to_string(facts.cost->mtu_bytes) +
               "): rewrite the allreduce as a reduce to rank 0 followed "
               "by a bcast, cutting " +
               fmt2(ring_rounds) + " latency-bound rounds to " +
               fmt2(binom_rounds);
    r.metric = "time_to_solution_s";
    r.baseline_value = makespan;
    r.predicted_delta_lo = 0.0;
    r.predicted_delta_hi = std::min(0.9, saved / makespan);
    r.evidence.push_back(
        {"mb-static-analysis", "/collectives/" + std::to_string(ci),
         "sub-MTU ring segments: " + std::to_string(chunk) + " B over " +
             std::to_string(rounds) + " rounds at " + std::to_string(p) +
             " ranks"});
    r.evidence.push_back(
        {"mb-analysis", "/collectives/" + std::to_string(stats_index),
         "measured " + std::to_string(stats->instances) + " instance(s), " +
             fmt2(total_s) + " s total in '" + label + "'"});
    if (facts.perf != nullptr &&
        facts.perf->has_rule(verify::kRulePerfCollectiveAlgorithm)) {
      r.evidence.push_back(
          {"mb-diagnostics",
           "/findings/" + std::string(verify::kRulePerfCollectiveAlgorithm),
           "the static perf pass flags this collective as "
           "latency-bound at this message size"});
    }
    r.appliable = true;
    out.push_back(std::move(r));
  }
}

/// checkpoint-interval: Young's first-order optimum from the fault plan's
/// crash rate, exactly as PERF004 derives it. The predicted bracket is
/// the overhead-fraction difference h(current) - h(optimal) with
/// h(T) = C/T + T/(2*MTBF).
void rule_checkpoint_interval(const ScenarioFacts& facts,
                              const AdvisorOptions& options,
                              std::vector<Recommendation>& out) {
  if (facts.plan == nullptr || facts.plan->crashes.empty()) return;
  if (!facts.plan->checkpoint.enabled) return;
  const double makespan = facts.measured_makespan_s;

  double last_crash = 0.0;
  for (const fault::NodeCrash& c : facts.plan->crashes)
    last_crash = std::max(last_crash, c.at_s);
  const double lower =
      facts.cost != nullptr ? facts.cost->makespan_lower_s : makespan;
  const double horizon = std::max(lower, last_crash);
  if (horizon <= 0.0) return;

  const double mtbf =
      horizon / static_cast<double>(facts.plan->crashes.size());
  const double cost_s = facts.plan->checkpoint.state_bytes_per_rank /
                        facts.plan->checkpoint.write_bandwidth_bytes_per_s;
  if (cost_s <= 0.0) return;
  const double optimal = std::sqrt(2.0 * mtbf * cost_s);
  const double interval = facts.plan->checkpoint.interval_s;
  const bool too_long = interval > options.checkpoint_band * optimal;
  const bool too_short = interval * options.checkpoint_band < optimal;
  if (!too_long && !too_short) return;

  const auto overhead = [&](double t) {
    return cost_s / t + t / (2.0 * mtbf);
  };
  const double hi = std::min(
      0.9, std::max(0.0, overhead(interval) - overhead(optimal)));

  Recommendation r;
  r.id = "checkpoint-interval";
  r.kind = Kind::kCheckpointInterval;
  r.target = "checkpoint.interval_s";
  r.title = std::string("move the checkpoint interval from ") +
            fmt2(interval) + " s to Young's optimum " + fmt2(optimal) +
            " s";
  r.action =
      too_long
          ? "the interval is " + fmt2(interval / optimal) +
                "x the optimum: expected lost work per crash dwarfs the "
                "checkpoint cost; set interval_s near " + fmt2(optimal)
          : "the interval is " + fmt2(optimal / interval) +
                "x below the optimum: checkpoint overhead dominates "
                "between crashes; set interval_s near " + fmt2(optimal);
  r.metric = "time_to_solution_s";
  r.baseline_value = makespan;
  r.proposed_value = optimal;
  r.predicted_delta_lo = 0.0;
  r.predicted_delta_hi = hi;
  r.evidence.push_back(
      {"mb-fault-plan", "/checkpoint",
       "interval " + fmt2(interval) + " s vs sqrt(2*MTBF*C) = " +
           fmt2(optimal) + " s (MTBF " + fmt2(mtbf) +
           " s, checkpoint cost " + fmt2(cost_s) + " s)"});
  if (facts.perf != nullptr &&
      facts.perf->has_rule(verify::kRulePerfCheckpointInterval)) {
    r.evidence.push_back(
        {"mb-diagnostics",
         "/findings/" + std::string(verify::kRulePerfCheckpointInterval),
         "the static perf pass flags the interval as outside the "
         "acceptance band around Young's optimum"});
  }
  r.appliable = true;
  out.push_back(std::move(r));
}

/// sim-jobs: purely advisory — at large rank counts the serial DES is
/// the experimenter's bottleneck, not the simulated application.
void rule_sim_jobs(const ScenarioFacts& facts, const AdvisorOptions& options,
                   std::vector<Recommendation>& out) {
  if (facts.ranks < options.sim_jobs_rank_floor) return;
  if (facts.sim_jobs > 1) return;

  Recommendation r;
  r.id = "sim-jobs";
  r.kind = Kind::kSimJobs;
  r.target = "--sim-jobs";
  r.title = "shard the simulator: " + std::to_string(facts.ranks) +
            " ranks on a serial event queue";
  r.action =
      "re-run with --sim-jobs 8; each leaf subtree becomes one shard "
      "and the engine overlaps them under a conservative lookahead "
      "(changes simulator wall-clock only, never simulated time)";
  r.metric = "sim_wall_s";
  r.baseline_value = 0.0;
  r.proposed_value = 8.0;
  r.predicted_delta_lo = 0.0;
  r.predicted_delta_hi = 1.0 - 1.0 / 8.0;  // parallel-efficiency ceiling
  r.evidence.push_back(
      {"mb-analysis", "/ranks",
       std::to_string(facts.ranks) +
           " simulated ranks exceed the serial-queue comfort zone of " +
           std::to_string(options.sim_jobs_rank_floor)});
  r.appliable = false;
  r.verdict = Verdict::kAdvisory;
  r.verdict_reason =
      "advisory: affects simulator wall-clock, not simulated time — "
      "nothing for guarded apply to confirm";
  out.push_back(std::move(r));
}

}  // namespace

std::vector<Recommendation> advise_scenario(const ScenarioFacts& facts,
                                            const AdvisorOptions& options) {
  std::vector<Recommendation> out;
  rule_remap_ranks(facts, options, out);
  rule_switch_collective(facts, options, out);
  rule_checkpoint_interval(facts, options, out);
  rule_sim_jobs(facts, options, out);
  return out;
}

std::vector<Recommendation> advise_kernel(
    const arch::Platform& platform, std::string_view kernel,
    const std::vector<KernelSweepPoint>& sweep, std::uint32_t current_unroll,
    const sim::HierarchicalPoint& placement,
    const AdvisorOptions& options) {
  support::check(!sweep.empty(), "advise_kernel", "empty variant sweep");
  const KernelSweepPoint* current = nullptr;
  const KernelSweepPoint* best = nullptr;
  for (const KernelSweepPoint& p : sweep) {
    if (p.unroll == current_unroll) current = &p;
    if (best == nullptr || p.cycles_per_output < best->cycles_per_output ||
        (p.cycles_per_output == best->cycles_per_output &&
         p.unroll < best->unroll))
      best = &p;
  }
  support::check(current != nullptr, "advise_kernel",
                 "sweep lacks the current unroll factor");

  std::vector<Recommendation> out;
  if (current->cycles_per_output <= 0.0) return out;
  const double gain =
      (current->cycles_per_output - best->cycles_per_output) /
      current->cycles_per_output;
  if (best->unroll == current_unroll || gain < options.kernel_min_gain)
    return out;

  Recommendation r;
  r.id = std::string("kernel-variant:") + std::string(kernel) + ":unroll" +
         std::to_string(best->unroll);
  r.kind = Kind::kKernelVariant;
  r.target = std::string(kernel);
  r.title = std::string("switch ") + std::string(kernel) + " on " +
            platform.name + " from unroll " +
            std::to_string(current_unroll) + " to unroll " +
            std::to_string(best->unroll);
  r.action = "re-run the kernel with --unroll " +
             std::to_string(best->unroll) + ": " +
             fmt2(best->cycles_per_output) + " cycles/output vs " +
             fmt2(current->cycles_per_output) + " at the current variant";
  r.metric = "cycles_per_output";
  r.baseline_value = current->cycles_per_output;
  r.proposed_value = static_cast<double>(best->unroll);
  r.predicted_delta_lo = 0.5 * gain;
  r.predicted_delta_hi = std::min(0.95, 1.5 * gain);
  r.evidence.push_back(
      {"mb-bench-report", "/records/" + std::string(kernel),
       "variant sweep over " + std::to_string(sweep.size()) +
           " unroll factors; best " + std::to_string(best->unroll) +
           " at " + fmt2(best->cycles_per_output) + " cycles/output"});
  std::string reading = std::string(kernel) + " is " + placement.bound_by +
                        "-bound at " +
                        fmt2(100.0 * placement.roofline_fraction) +
                        "% of the attainable roof";
  if (placement.vector_headroom > 1.5) {
    reading += "; a vectorized variant has " +
               fmt2(placement.vector_headroom) + "x headroom on " +
               platform.name;
  }
  r.evidence.push_back({"mb-roofline", "/hierarchy/" + placement.name,
                        std::move(reading)});
  r.appliable = true;
  out.push_back(std::move(r));
  return out;
}

}  // namespace mb::advise
