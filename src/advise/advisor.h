// Recommendation rules: measured + static evidence in, ranked advice out.
//
// Each rule cross-references two independent views of the same run — the
// measured timeline (mb-analysis) and the contention-free static bounds
// (mb-static-analysis / PERF findings) — before it speaks. A straggler
// that only the timeline shows could be scheduling noise; one the fault
// plan also names is a slowed node worth migrating away from. The
// predicted improvement is always a bracket [lo, hi]: the advisor commits
// to a falsifiable claim that guarded apply (apply.h) can check, not a
// point estimate nobody can hold it to.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "advise/advice.h"
#include "arch/platform.h"
#include "fault/plan.h"
#include "obs/analysis.h"
#include "sim/roofline.h"
#include "verify/diagnostics.h"
#include "verify/static_cost.h"

namespace mb::advise {

struct AdvisorOptions {
  /// A slowed node's attributed wait must reach this fraction of the
  /// makespan before a remap is worth proposing.
  double remap_wait_floor = 0.02;
  /// Ring allreduce is only questioned at or above this rank count
  /// (mirrors verify::PerfThresholds::allreduce_min_ranks).
  std::uint32_t allreduce_min_ranks = 8;
  /// Checkpoint interval must be this factor off Young's optimum to fire
  /// (mirrors verify::PerfThresholds::checkpoint_band).
  double checkpoint_band = 4.0;
  /// Minimum relative cycles-per-output gain before a kernel variant
  /// switch is worth recommending.
  double kernel_min_gain = 0.02;
  /// Rank count from which the serial DES itself becomes the bottleneck
  /// and --sim-jobs sharding is advised.
  std::uint32_t sim_jobs_rank_floor = 256;
};

/// Everything the scenario rules may consult. Pointers are optional —
/// a rule that is missing its inputs stays silent rather than guessing.
struct ScenarioFacts {
  const obs::Analysis* analysis = nullptr;    ///< measured timeline
  const verify::CostReport* cost = nullptr;   ///< static bounds
  const verify::Report* perf = nullptr;       ///< PERF findings
  const fault::FaultPlan* plan = nullptr;     ///< injected faults
  std::uint32_t ranks = 0;
  std::uint32_t nodes = 0;
  std::uint32_t cores_per_node = 2;
  /// Measured end-to-end time of the run the evidence came from
  /// (time-to-solution under faults, makespan otherwise).
  double measured_makespan_s = 0.0;
  std::uint32_t sim_jobs = 0;  ///< --sim-jobs the run used
};

/// Runs the scenario rules (remap-ranks, switch-collective,
/// checkpoint-interval, sim-jobs) and returns every recommendation that
/// fired, unranked. Rules assume the measured run used the default
/// node-major placement (rank r on node r / cores_per_node).
std::vector<Recommendation> advise_scenario(const ScenarioFacts& facts,
                                            const AdvisorOptions& options = {});

/// One sampled point of a kernel-variant sweep.
struct KernelSweepPoint {
  std::uint32_t unroll = 1;
  double cycles_per_output = 0.0;  ///< median over the sweep's reps
};

/// Kernel-variant rule: proposes the best unroll from `sweep` when it
/// beats `current_unroll` by at least kernel_min_gain, citing the
/// hierarchical-roofline placement (what bounds the kernel, and how much
/// vector headroom is left) as evidence. `sweep` must contain a point
/// with unroll == current_unroll.
std::vector<Recommendation> advise_kernel(
    const arch::Platform& platform, std::string_view kernel,
    const std::vector<KernelSweepPoint>& sweep, std::uint32_t current_unroll,
    const sim::HierarchicalPoint& placement,
    const AdvisorOptions& options = {});

}  // namespace mb::advise
