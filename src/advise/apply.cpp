#include "advise/apply.h"

#include <cstdio>
#include <iostream>
#include <utility>
#include <vector>

#include "support/check.h"
#include "support/hash.h"
#include "support/version.h"

namespace mb::advise {
namespace {

std::string pct(double frac) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * frac);
  return buf;
}

std::string fmt1(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

core::BenchReport arm_report(const Arm& arm, std::vector<double> samples,
                             const ApplyOptions& options,
                             std::string_view scenario) {
  core::BenchReport report;
  report.suite = "advise-apply";
  report.seed = options.seed;
  report.plan.repetitions = options.reps;
  report.plan.seed = options.seed;
  core::BenchRecord record;
  record.name = std::string(scenario) + "/" + arm.name;
  record.metric = options.metric;
  record.unit = options.unit;
  record.direction = core::Direction::kMinimize;
  record.samples = std::move(samples);
  report.records.push_back(std::move(record));
  return report;
}

}  // namespace

void verify_recommendation(Recommendation& rec, std::string_view scenario,
                           const Arm& baseline, const Arm& candidate,
                           const ApplyOptions& options) {
  if (!rec.appliable) return;
  support::check(options.reps > 0, "verify_recommendation",
                 "reps must be positive");

  // Both arms, every repetition, as one campaign: cache hits replay
  // byte-identically, misses run (serially when the arms touch the
  // global obs registry). Keys carry only the arm name, rep and config
  // hash — NOT the recommendation id — so the baseline arm, which is the
  // same measurement for every recommendation of a scenario, is simulated
  // once and replayed from cache for the rest. Rep i of both arms shares
  // one derived measurement seed (paired noise).
  std::vector<core::CampaignTask> tasks;
  tasks.reserve(2 * options.reps);
  for (const Arm* arm : {&baseline, &candidate}) {
    for (std::uint32_t rep = 0; rep < options.reps; ++rep) {
      const std::uint64_t rep_seed = support::derive_seed(options.seed, rep);
      core::CampaignTask task;
      task.key = {std::string(support::version()),
                  "advise:" + std::string(scenario), arm->name,
                  "rep=" + std::to_string(rep), rep_seed,
                  options.config_hash};
      task.run = [arm, rep_seed] {
        return std::vector<double>{arm->measure(rep_seed)};
      };
      tasks.push_back(std::move(task));
    }
  }
  core::CampaignOptions campaign = options.campaign;
  if (options.serial_only) campaign.jobs = 1;
  const core::CampaignResult result = core::run_campaign(tasks, campaign);
  // Totals on stderr like every other sweeping command — never on
  // stdout, which must stay byte-identical across cache states.
  std::cerr << core::campaign_summary(result.stats, campaign) << "\n";

  std::vector<double> base_samples, cand_samples;
  for (std::uint32_t rep = 0; rep < options.reps; ++rep)
    base_samples.push_back(result.samples[rep].at(0));
  for (std::uint32_t rep = 0; rep < options.reps; ++rep)
    cand_samples.push_back(result.samples[options.reps + rep].at(0));

  const core::BenchReport base_report =
      arm_report(baseline, std::move(base_samples), options, scenario);
  const core::BenchReport cand_report =
      arm_report(candidate, std::move(cand_samples), options, scenario);

  // The candidate arm runs under a different record name than the
  // baseline (the configuration changed); compare them under one name so
  // compare_reports pairs them.
  core::BenchReport cand_aligned = cand_report;
  cand_aligned.records[0].name = base_report.records[0].name;
  const core::CompareResult compared =
      core::compare_reports(base_report, cand_aligned, options.compare);
  support::check(compared.entries.size() == 1, "verify_recommendation",
                 "expected exactly one compared record");
  const core::Comparison& entry = compared.entries[0];

  rec.measured_baseline = entry.baseline_center;
  rec.measured_candidate = entry.candidate_center;
  rec.measured_delta =
      entry.baseline_center > 0.0
          ? (entry.baseline_center - entry.candidate_center) /
                entry.baseline_center
          : 0.0;

  const bool improved = entry.verdict == core::Verdict::kImproved;
  const bool in_bracket = rec.measured_delta >= rec.predicted_delta_lo &&
                          rec.measured_delta <= rec.predicted_delta_hi;
  if (improved && in_bracket) {
    rec.verdict = Verdict::kAccepted;
    rec.verdict_reason =
        "compare confirms a significant improvement and the measured "
        "delta lands inside the predicted bracket [" +
        pct(rec.predicted_delta_lo) + ", " + pct(rec.predicted_delta_hi) +
        "]";
  } else {
    rec.verdict = Verdict::kRejected;
    if (!improved) {
      rec.verdict_reason =
          "compare verdict '" + std::string(core::verdict_name(entry.verdict)) +
          "': the measured delta does not clear the noise model "
          "(threshold " +
          pct(options.compare.min_rel_delta) + " and " +
          fmt1(options.compare.threshold_sigma) + " sigma)";
    } else {
      rec.verdict_reason =
          "significant improvement, but the measured delta " +
          pct(rec.measured_delta) + " falls outside the predicted bracket [" +
          pct(rec.predicted_delta_lo) + ", " + pct(rec.predicted_delta_hi) +
          "] — the advisor's model was wrong even though the change helped";
    }
  }
}

mpi::Program rewrite_allreduce(const mpi::Program& program,
                               std::string_view label) {
  mpi::Program rewritten(program.ranks());
  for (std::uint32_t r = 0; r < program.ranks(); ++r) {
    for (const mpi::Op& op : program.rank(r)) {
      if (op.kind == mpi::Op::Kind::kAllreduce && op.label == label) {
        rewritten.append(r, mpi::Op::reduce(0, op.bytes, op.label));
        rewritten.append(r, mpi::Op::bcast(0, op.bytes, op.label));
      } else {
        rewritten.append(r, op);
      }
    }
  }
  return rewritten;
}

}  // namespace mb::advise
