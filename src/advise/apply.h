// Guarded apply: a recommendation is a hypothesis, not an edict.
//
// verify_recommendation() re-runs the affected configuration — baseline
// and candidate arms, several repetitions each, through the cache-backed
// campaign runner — and hands both sample sets to the compare gate's
// noise model. A recommendation is accepted only when (a) compare calls
// the candidate a significant improvement AND (b) the measured delta
// lands inside the advisor's own predicted bracket. Anything else is
// recorded as rejected with the reason. The advisor therefore cannot
// quietly take credit for noise, and a rejected recommendation is as
// informative an artifact as an accepted one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "advise/advice.h"
#include "core/campaign.h"
#include "core/compare.h"
#include "mpi/program.h"

namespace mb::advise {

/// One measurable configuration. measure() produces a single sample of
/// the recommendation's metric; it must be a pure function of rep_seed
/// (the campaign cache replays it byte-identically otherwise).
struct Arm {
  std::string name;  ///< e.g. "baseline" / "candidate"
  std::function<double(std::uint64_t rep_seed)> measure;
};

struct ApplyOptions {
  core::CampaignOptions campaign;
  core::CompareOptions compare;
  /// Repetitions per arm; rep i of both arms shares the same derived
  /// seed, so run-to-run noise is paired rather than compounded.
  std::uint32_t reps = 3;
  std::uint64_t seed = 2013;
  /// Hash of everything that shapes an arm's measurement besides its name
  /// and rep seed (app parameters, fault plan, cluster knobs). Folded into
  /// the campaign cache key so editing the scenario invalidates cached
  /// arm samples instead of silently replaying stale ones.
  std::uint64_t config_hash = 0;
  std::string metric = "seconds";
  std::string unit = "s";
  /// DES arms publish to the global obs registry, which is
  /// single-threaded by design — set this to force the campaign to one
  /// job regardless of options.campaign.jobs. Pure-machine arms
  /// (kernel sweeps) may leave it false and run in parallel.
  bool serial_only = false;
};

/// Measures `baseline` vs `candidate` and records the verdict (accepted /
/// rejected, measured values, reason) into `rec`. `scenario` namespaces
/// the campaign cache keys. No-op for non-appliable recommendations.
void verify_recommendation(Recommendation& rec, std::string_view scenario,
                           const Arm& baseline, const Arm& candidate,
                           const ApplyOptions& options);

/// Rewrites every allreduce with `label` into the algorithm the
/// switch-collective recommendation proposes: a binomial reduce to rank 0
/// followed by a binomial bcast of the result. All other ops pass through
/// untouched.
mpi::Program rewrite_allreduce(const mpi::Program& program,
                               std::string_view label);

}  // namespace mb::advise
