#include "apps/bigdft.h"

#include "support/check.h"
#include "support/rng.h"

namespace mb::apps {

void BigDftParams::validate() const {
  support::check(ranks >= 1, "BigDftParams", "ranks must be >= 1");
  support::check(iterations >= 1, "BigDftParams", "iterations must be >= 1");
  support::check(compute_s_per_iter > 0.0, "BigDftParams",
                 "compute time must be positive");
  support::check(imbalance >= 0.0 && imbalance < 0.5, "BigDftParams",
                 "imbalance must be in [0, 0.5)");
}

mpi::Program bigdft_program(const BigDftParams& params) {
  params.validate();
  const std::uint32_t p = params.ranks;
  mpi::Program program(p);

  // Per-pair transpose payload: the array is scattered from p row-slabs
  // to p column-slabs, each rank exchanging 1/p^2 of the volume with
  // every other rank ("these communications should be small").
  const std::uint64_t per_pair =
      std::max<std::uint64_t>(1, params.transpose_bytes /
                                     (static_cast<std::uint64_t>(p) * p));
  std::vector<std::uint64_t> counts(p, per_pair);

  // Conv -> transpose -> conv -> transpose ... per iteration, as the axis-
  // by-axis wavelet transform does. The per-(iteration, rank) compute skew
  // models ordinary OS/load noise; it desynchronizes the ranks' entry into
  // each alltoallv by varying amounts, which is why only *some* instances
  // hit the switch-buffer incast and get delayed (paper Fig. 4).
  support::Rng rng(params.seed);
  const double slice =
      params.compute_s_per_iter / params.transposes / p;
  for (std::uint32_t iter = 0; iter < params.iterations; ++iter) {
    for (std::uint32_t k = 0; k < params.transposes; ++k) {
      for (std::uint32_t r = 0; r < p; ++r) {
        const double skew =
            1.0 + rng.uniform(-params.imbalance, params.imbalance);
        program.rank(r).push_back(
            mpi::Op::compute(slice * skew, "convolution"));
      }
      program.append_all(mpi::Op::alltoallv(counts, "alltoallv"));
    }
    for (std::uint32_t k = 0; k < params.allreduces; ++k)
      program.append_all(mpi::Op::allreduce(64, "energy_allreduce"));
  }
  return program;
}

AppRunResult run_bigdft(const ClusterConfig& cluster,
                        const BigDftParams& params) {
  return run_on_cluster(cluster, bigdft_program(params));
}

}  // namespace mb::apps
