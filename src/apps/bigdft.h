// BigDFT application model (paper Sec. IV, Fig. 3c and Fig. 4).
//
// BigDFT's wavelet transforms are 3-D convolutions applied axis by axis;
// between axes the distributed array is transposed with MPI_Alltoallv
// ("BigDFT mostly uses all to all communication patterns"). The model
// captures exactly that phase structure: per SCF iteration, a compute
// phase (magicfilter work, perfectly partitioned) followed by alltoallv
// transposes whose total volume is fixed by the grid — the strong-scaling
// poison on commodity Ethernet.
#pragma once

#include <cstdint>

#include "apps/cluster.h"
#include "mpi/program.h"

namespace mb::apps {

struct BigDftParams {
  std::uint32_t ranks = 8;
  std::uint32_t iterations = 10;
  /// Sequential compute time of one iteration's convolutions (seconds on
  /// one reference core); divided by ranks under strong scaling.
  double compute_s_per_iter = 2.0;
  /// Total bytes moved by one transpose (the full distributed array);
  /// each iteration performs `transposes` of them.
  std::uint64_t transpose_bytes = 48ull << 20;
  std::uint32_t transposes = 2;
  /// Small DIIS/energy reductions per iteration.
  std::uint32_t allreduces = 1;
  /// Per-(iteration, rank) compute imbalance (fraction of compute time):
  /// the OS/load noise that desynchronizes collective entry, making only
  /// some alltoallv instances hit the buffer-overflow incast.
  double imbalance = 0.10;
  std::uint64_t seed = 1;

  void validate() const;
};

/// Builds the per-rank program.
mpi::Program bigdft_program(const BigDftParams& params);

/// Convenience: builds and runs on a cluster sized for params.ranks.
AppRunResult run_bigdft(const ClusterConfig& cluster,
                        const BigDftParams& params);

}  // namespace mb::apps
