#include "apps/cluster.h"

#include <limits>
#include <memory>
#include <utility>

#include "obs/rollup.h"
#include "obs/timeseries.h"
#include "sim/sharded.h"
#include "support/check.h"
#include "trace/sink.h"

namespace mb::apps {

ClusterConfig tibidabo_cluster(std::uint32_t nodes) {
  ClusterConfig c;
  c.nodes = nodes;
  c.cores_per_node = 2;
  c.tree = net::tibidabo_tree(nodes);
  return c;
}

ClusterConfig upgraded_cluster(std::uint32_t nodes) {
  ClusterConfig c;
  c.nodes = nodes;
  c.cores_per_node = 2;
  c.tree = net::upgraded_tree(nodes);
  return c;
}

namespace {

void aggregate_link(AppRunResult& result, const net::Network& network,
                    net::NodeId a, net::NodeId b) {
  for (const auto& [src, dst] : {std::pair{a, b}, std::pair{b, a}}) {
    const net::LinkStats& stats = network.link_stats(src, dst);
    result.network_drops += stats.drops;
    result.network_retransmits += stats.retransmits;
    result.injected_losses += stats.injected_losses;
  }
}

/// Partitions the tree topology for the sharded engine: each leaf-switch
/// subtree (the switch plus its hosts) is one shard, the root switch is
/// its own shard. Single-switch clusters collapse to one shard (the
/// engine then runs a single unbounded window).
void configure_sharding(sim::ShardedEngine& engine, const net::Network& net,
                        const net::ClusterTopology& topo,
                        const ClusterConfig& config) {
  std::vector<std::uint32_t> node_to_shard(net.nodes(), 0);
  std::uint32_t nshards = 1;
  if (topo.leaf_switches.size() > 1) {
    nshards = static_cast<std::uint32_t>(topo.leaf_switches.size()) + 1;
    for (std::size_t i = 0; i < topo.leaf_switches.size(); ++i)
      node_to_shard[topo.leaf_switches[i]] = static_cast<std::uint32_t>(i);
    node_to_shard[topo.root_switch] = nshards - 1;
    for (std::uint32_t n = 0; n < config.nodes; ++n)
      node_to_shard[topo.hosts[n]] = n / config.tree.switch_ports;
  }
  // Conservative lookahead: no shard can affect another sooner than the
  // fastest cross-shard link delivers (+infinity with a single shard).
  double lookahead = std::numeric_limits<double>::infinity();
  for (std::size_t li = 0; li < net.link_count(); ++li) {
    if (node_to_shard[net.link_from(li)] != node_to_shard[net.link_to(li)])
      lookahead = std::min(lookahead, net.link_latency_s(li));
  }
  engine.configure(std::move(node_to_shard), nshards, lookahead);
}

/// Registers the time-series probes: global gauges always, per-link
/// counters when the topology is small enough that the series tables
/// stay bounded (a 10k-rank tree has thousands of host links; sampling
/// them all would defeat the memory budget — uplinks alone carry the
/// congestion signal there).
void register_probes(obs::TimeSampler& sampler, sim::EventQueue& queue,
                     const net::Network& network,
                     const net::ClusterTopology& topo,
                     const ClusterConfig& config) {
  sampler.add_probe("sim.pending_events",
                    [&queue] { return static_cast<double>(queue.pending()); });
  sampler.add_probe("net.in_flight_messages", [&network] {
    return static_cast<double>(network.in_flight_messages());
  });

  std::vector<std::pair<net::NodeId, net::NodeId>> links;
  if (topo.leaf_switches.size() > 1) {
    for (const net::NodeId sw : topo.leaf_switches) {
      links.emplace_back(sw, topo.root_switch);
      links.emplace_back(topo.root_switch, sw);
    }
  }
  constexpr std::size_t kMaxLinkProbePairs = 2048;
  if (links.size() + 2 * config.nodes <= kMaxLinkProbePairs) {
    for (std::uint32_t n = 0; n < config.nodes; ++n) {
      const net::NodeId host = topo.hosts[n];
      const net::NodeId sw =
          topo.leaf_switches.size() == 1
              ? topo.leaf_switches[0]
              : topo.leaf_switches[n / config.tree.switch_ports];
      links.emplace_back(host, sw);
      links.emplace_back(sw, host);
    }
  }
  for (const auto& [src, dst] : links) {
    const net::LinkStats& stats = network.link_stats(src, dst);
    const obs::Labels labels{
        {"link", std::to_string(src) + "->" + std::to_string(dst)}};
    sampler.add_probe("net.link.retransmits", labels, [&stats] {
      return static_cast<double>(stats.retransmits);
    });
    sampler.add_probe("net.link.drops", labels, [&stats] {
      return static_cast<double>(stats.drops);
    });
  }
}

// Validates an explicit rank_map: every rank lands on a real node and no
// node is oversubscribed past its core count.
void check_rank_map(const ClusterConfig& config, std::uint32_t ranks) {
  support::check(config.rank_map.size() == ranks, "run_on_cluster",
                 "rank_map must have one entry per program rank");
  std::vector<std::uint32_t> occupancy(config.nodes, 0);
  for (std::uint32_t node : config.rank_map) {
    support::check(node < config.nodes, "run_on_cluster",
                   "rank_map entry names a node outside the cluster");
    support::check(++occupancy[node] <= config.cores_per_node,
                   "run_on_cluster",
                   "rank_map oversubscribes a node past cores_per_node");
  }
}

}  // namespace

std::vector<std::uint32_t> ranks_on_node(const ClusterConfig& config,
                                         std::uint32_t node) {
  std::vector<std::uint32_t> ranks;
  if (config.rank_map.empty()) {
    for (std::uint32_t c = 0; c < config.cores_per_node; ++c)
      ranks.push_back(node * config.cores_per_node + c);
  } else {
    for (std::uint32_t r = 0; r < config.rank_map.size(); ++r)
      if (config.rank_map[r] == node) ranks.push_back(r);
  }
  return ranks;
}

AppRunResult run_on_cluster(const ClusterConfig& config,
                            const mpi::Program& program,
                            const RunHooks& hooks) {
  if (config.rank_map.empty()) {
    support::check(program.ranks() == config.nodes * config.cores_per_node,
                   "run_on_cluster",
                   "program ranks must equal nodes * cores_per_node");
  } else {
    check_rank_map(config, program.ranks());
  }

  // Fault injection (hooks, failure detector) and the time sampler need
  // the serial queue: they touch cross-shard state at arbitrary times.
  const bool sharded = config.sim_jobs > 0 && !hooks.on_ready &&
                       config.mpi.recv_timeout_s == 0.0 &&
                       !config.timeseries.enabled;

  std::unique_ptr<sim::EventQueue> queue;
  std::unique_ptr<sim::ShardedEngine> engine;
  std::unique_ptr<net::Network> network;
  if (sharded) {
    engine = std::make_unique<sim::ShardedEngine>(config.sim_jobs);
    network = std::make_unique<net::Network>(*engine, config.mtu_bytes);
  } else {
    queue = std::make_unique<sim::EventQueue>();
    network = std::make_unique<net::Network>(*queue, config.mtu_bytes);
  }
  const net::ClusterTopology topo = net::build_tree(*network, config.tree);
  if (sharded) configure_sharding(*engine, *network, topo, config);

  std::vector<net::NodeId> rank_to_host;
  rank_to_host.reserve(program.ranks());
  for (std::uint32_t r = 0; r < program.ranks(); ++r) {
    const std::uint32_t node =
        config.rank_map.empty() ? r / config.cores_per_node
                                : config.rank_map[r];
    rank_to_host.push_back(topo.hosts[node]);
  }

  AppRunResult result;
  std::unique_ptr<mpi::Runtime> runtime;
  if (sharded) {
    runtime = std::make_unique<mpi::Runtime>(*engine, *network,
                                             std::move(rank_to_host),
                                             config.mpi, &result.trace);
  } else {
    runtime = std::make_unique<mpi::Runtime>(*queue, *network,
                                             std::move(rank_to_host),
                                             config.mpi, &result.trace);
  }
  std::unique_ptr<trace::StreamingSink> stream;
  if (config.streaming_trace) {
    stream = std::make_unique<trace::StreamingSink>(program.ranks(),
                                                    config.trace_sink);
    runtime->set_trace_sink(stream.get());
  }
  obs::TimeSampler sampler;
  if (config.timeseries.enabled) {
    register_probes(sampler, *queue, *network, topo, config);
    sampler.arm(*queue, config.timeseries.interval_s,
                config.timeseries.max_samples);
  }

  if (hooks.on_ready)
    hooks.on_ready(*queue, *network, topo, *runtime, result.trace);
  const mpi::RunOutcome outcome = runtime->run_outcome(program);
  result.completed = outcome.completed;
  result.makespan_s = outcome.makespan_s;
  result.failed_at_s = outcome.drained_s;
  result.failure = outcome.failure;

  if (stream) {
    stream->close();
    if (config.trace_sink.spill_path.empty()) stream->drain(result.trace);
    result.trace_sampled_ranks = stream->sampled_ranks();
    result.trace_dropped = stream->total_dropped();
  }
  if (config.timeseries.enabled) {
    result.timeseries = sampler.take();
    obs::prune_series(result.timeseries, "net.link.",
                      config.timeseries.max_link_series);
  }

  // The engine dies with this scope — publish its DES statistics now so a
  // profile snapshot taken after the run still sees them.
  if (sharded) {
    obs::publish_scheduler(obs::metrics(), *engine);
  } else {
    obs::publish_event_queue(obs::metrics(), *queue);
  }

  // Aggregate link counters over host links (both directions) and uplinks.
  for (std::uint32_t n = 0; n < config.nodes; ++n) {
    const net::NodeId host = topo.hosts[n];
    const net::NodeId sw =
        topo.leaf_switches.size() == 1
            ? topo.leaf_switches[0]
            : topo.leaf_switches[n / config.tree.switch_ports];
    aggregate_link(result, *network, host, sw);
  }
  if (topo.leaf_switches.size() > 1) {
    for (const net::NodeId sw : topo.leaf_switches)
      aggregate_link(result, *network, sw, topo.root_switch);
  }
  return result;
}

AppRunResult run_on_cluster(const ClusterConfig& config,
                            const mpi::Program& program) {
  AppRunResult result = run_on_cluster(config, program, RunHooks{});
  support::check(result.completed, "run_on_cluster",
                 "deadlock: some ranks never completed their program\n" +
                     result.failure.to_string());
  return result;
}

}  // namespace mb::apps
