#include "apps/cluster.h"

#include <utility>

#include "obs/rollup.h"
#include "support/check.h"

namespace mb::apps {

ClusterConfig tibidabo_cluster(std::uint32_t nodes) {
  ClusterConfig c;
  c.nodes = nodes;
  c.cores_per_node = 2;
  c.tree = net::tibidabo_tree(nodes);
  return c;
}

ClusterConfig upgraded_cluster(std::uint32_t nodes) {
  ClusterConfig c;
  c.nodes = nodes;
  c.cores_per_node = 2;
  c.tree = net::upgraded_tree(nodes);
  return c;
}

namespace {

void aggregate_link(AppRunResult& result, const net::Network& network,
                    net::NodeId a, net::NodeId b) {
  for (const auto& [src, dst] : {std::pair{a, b}, std::pair{b, a}}) {
    const net::LinkStats& stats = network.link_stats(src, dst);
    result.network_drops += stats.drops;
    result.network_retransmits += stats.retransmits;
    result.injected_losses += stats.injected_losses;
  }
}

}  // namespace

AppRunResult run_on_cluster(const ClusterConfig& config,
                            const mpi::Program& program,
                            const RunHooks& hooks) {
  support::check(program.ranks() == config.nodes * config.cores_per_node,
                 "run_on_cluster",
                 "program ranks must equal nodes * cores_per_node");

  sim::EventQueue queue;
  net::Network network(queue, config.mtu_bytes);
  const net::ClusterTopology topo = net::build_tree(network, config.tree);

  std::vector<net::NodeId> rank_to_host;
  rank_to_host.reserve(program.ranks());
  for (std::uint32_t r = 0; r < program.ranks(); ++r)
    rank_to_host.push_back(topo.hosts[r / config.cores_per_node]);

  AppRunResult result;
  mpi::Runtime runtime(queue, network, std::move(rank_to_host), config.mpi,
                       &result.trace);
  if (hooks.on_ready)
    hooks.on_ready(queue, network, topo, runtime, result.trace);
  const mpi::RunOutcome outcome = runtime.run_outcome(program);
  result.completed = outcome.completed;
  result.makespan_s = outcome.makespan_s;
  result.failed_at_s = outcome.drained_s;
  result.failure = outcome.failure;

  // The queue dies with this scope — publish its DES statistics now so a
  // profile snapshot taken after the run still sees them.
  obs::publish_event_queue(obs::metrics(), queue);

  // Aggregate link counters over host links (both directions) and uplinks.
  for (std::uint32_t n = 0; n < config.nodes; ++n) {
    const net::NodeId host = topo.hosts[n];
    const net::NodeId sw =
        topo.leaf_switches.size() == 1
            ? topo.leaf_switches[0]
            : topo.leaf_switches[n / config.tree.switch_ports];
    aggregate_link(result, network, host, sw);
  }
  if (topo.leaf_switches.size() > 1) {
    for (const net::NodeId sw : topo.leaf_switches)
      aggregate_link(result, network, sw, topo.root_switch);
  }
  return result;
}

AppRunResult run_on_cluster(const ClusterConfig& config,
                            const mpi::Program& program) {
  AppRunResult result = run_on_cluster(config, program, RunHooks{});
  support::check(result.completed, "run_on_cluster",
                 "deadlock: some ranks never completed their program\n" +
                     result.failure.to_string());
  return result;
}

}  // namespace mb::apps
