#include "apps/cluster.h"

#include "obs/rollup.h"
#include "support/check.h"

namespace mb::apps {

ClusterConfig tibidabo_cluster(std::uint32_t nodes) {
  ClusterConfig c;
  c.nodes = nodes;
  c.cores_per_node = 2;
  c.tree = net::tibidabo_tree(nodes);
  return c;
}

ClusterConfig upgraded_cluster(std::uint32_t nodes) {
  ClusterConfig c;
  c.nodes = nodes;
  c.cores_per_node = 2;
  c.tree = net::upgraded_tree(nodes);
  return c;
}

AppRunResult run_on_cluster(const ClusterConfig& config,
                            const mpi::Program& program) {
  support::check(program.ranks() == config.nodes * config.cores_per_node,
                 "run_on_cluster",
                 "program ranks must equal nodes * cores_per_node");

  sim::EventQueue queue;
  net::Network network(queue, config.mtu_bytes);
  const net::ClusterTopology topo = net::build_tree(network, config.tree);

  std::vector<net::NodeId> rank_to_host;
  rank_to_host.reserve(program.ranks());
  for (std::uint32_t r = 0; r < program.ranks(); ++r)
    rank_to_host.push_back(topo.hosts[r / config.cores_per_node]);

  AppRunResult result;
  mpi::Runtime runtime(queue, network, std::move(rank_to_host), config.mpi,
                       &result.trace);
  result.makespan_s = runtime.run(program);

  // The queue dies with this scope — publish its DES statistics now so a
  // profile snapshot taken after the run still sees them.
  obs::publish_event_queue(obs::metrics(), queue);

  // Aggregate drop counts over host links (both directions) and uplinks.
  for (std::uint32_t n = 0; n < config.nodes; ++n) {
    const net::NodeId host = topo.hosts[n];
    const net::NodeId sw =
        topo.leaf_switches.size() == 1
            ? topo.leaf_switches[0]
            : topo.leaf_switches[n / config.tree.switch_ports];
    result.network_drops += network.link_stats(host, sw).drops;
    result.network_drops += network.link_stats(sw, host).drops;
  }
  if (topo.leaf_switches.size() > 1) {
    for (const net::NodeId sw : topo.leaf_switches) {
      result.network_drops += network.link_stats(sw, topo.root_switch).drops;
      result.network_drops += network.link_stats(topo.root_switch, sw).drops;
    }
  }
  return result;
}

}  // namespace mb::apps
