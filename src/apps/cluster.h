// Cluster harness: wires a topology, an MPI runtime and a trace together
// so application models can be launched with one call.
#pragma once

#include <cstdint>
#include <functional>

#include "mpi/program.h"
#include "mpi/runtime.h"
#include "net/topology.h"
#include "trace/trace.h"

namespace mb::apps {

struct ClusterConfig {
  std::uint32_t nodes = 16;
  std::uint32_t cores_per_node = 2;  ///< Tegra2: dual Cortex-A9
  net::TreeParams tree;              ///< interconnect parameters
  mpi::RuntimeConfig mpi;
  /// Frame granularity (see net::Network): raise for long-running apps
  /// (HPL at realistic N) where per-Ethernet-frame simulation is overkill.
  std::uint32_t mtu_bytes = net::Network::kMtuBytes;
  /// 0 = classic serial engine. >0 = sharded conservative-lookahead
  /// engine (sim::ShardedEngine) with this many worker threads; shards
  /// follow the leaf-switch subtrees and results are byte-identical for
  /// any worker count (sim_jobs=1 is the reference). Ignored — classic
  /// engine — when RunHooks::on_ready is set or recv_timeout_s > 0,
  /// since fault injection needs the serial queue.
  std::uint32_t sim_jobs = 0;
};

/// The Tibidabo cluster as studied in the paper (Sec. II-B / IV).
ClusterConfig tibidabo_cluster(std::uint32_t nodes);

/// Tibidabo after the switch upgrade the paper announces.
ClusterConfig upgraded_cluster(std::uint32_t nodes);

struct AppRunResult {
  double makespan_s = 0.0;
  trace::Trace trace;
  std::uint64_t network_drops = 0;  ///< buffer-overflow retransmissions
  // Failure-aware extensions (fault injection, see src/fault):
  bool completed = true;
  double failed_at_s = 0.0;  ///< event-loop drain time of a failed run
  mpi::FailureReport failure;
  std::uint64_t network_retransmits = 0;
  std::uint64_t injected_losses = 0;
};

/// Hook point for fault injectors: called after the cluster is wired but
/// before the program runs, with every moving part exposed. Injectors
/// schedule their events on the queue (crash_rank, set_link_state, ...)
/// so they fire at simulated times inside the run. Setting on_ready
/// forces the classic serial engine regardless of sim_jobs.
struct RunHooks {
  std::function<void(sim::EventQueue&, net::Network&,
                     const net::ClusterTopology&, mpi::Runtime&,
                     trace::Trace&)>
      on_ready;
};

/// Runs `program` on a freshly built cluster. The program's rank count
/// must equal nodes * cores_per_node; ranks are packed node-major
/// (ranks 2k and 2k+1 share node k on the dual-core Tibidabo boards).
/// Throws on deadlock/failure (use the hooks overload to observe
/// failures structurally).
AppRunResult run_on_cluster(const ClusterConfig& config,
                            const mpi::Program& program);

/// Like above, but invokes `hooks.on_ready` before the run and never
/// throws on a failed run: `completed` is false and `failure` names the
/// dead ranks and blocked ops instead.
AppRunResult run_on_cluster(const ClusterConfig& config,
                            const mpi::Program& program,
                            const RunHooks& hooks);

}  // namespace mb::apps
