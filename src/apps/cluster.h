// Cluster harness: wires a topology, an MPI runtime and a trace together
// so application models can be launched with one call.
#pragma once

#include <cstdint>

#include "mpi/program.h"
#include "mpi/runtime.h"
#include "net/topology.h"
#include "trace/trace.h"

namespace mb::apps {

struct ClusterConfig {
  std::uint32_t nodes = 16;
  std::uint32_t cores_per_node = 2;  ///< Tegra2: dual Cortex-A9
  net::TreeParams tree;              ///< interconnect parameters
  mpi::RuntimeConfig mpi;
  /// Frame granularity (see net::Network): raise for long-running apps
  /// (HPL at realistic N) where per-Ethernet-frame simulation is overkill.
  std::uint32_t mtu_bytes = net::Network::kMtuBytes;
};

/// The Tibidabo cluster as studied in the paper (Sec. II-B / IV).
ClusterConfig tibidabo_cluster(std::uint32_t nodes);

/// Tibidabo after the switch upgrade the paper announces.
ClusterConfig upgraded_cluster(std::uint32_t nodes);

struct AppRunResult {
  double makespan_s = 0.0;
  trace::Trace trace;
  std::uint64_t network_drops = 0;  ///< buffer-overflow retransmissions
};

/// Runs `program` on a freshly built cluster. The program's rank count
/// must equal nodes * cores_per_node; ranks are packed node-major
/// (ranks 2k and 2k+1 share node k on the dual-core Tibidabo boards).
AppRunResult run_on_cluster(const ClusterConfig& config,
                            const mpi::Program& program);

}  // namespace mb::apps
