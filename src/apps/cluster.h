// Cluster harness: wires a topology, an MPI runtime and a trace together
// so application models can be launched with one call.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mpi/program.h"
#include "mpi/runtime.h"
#include "net/topology.h"
#include "obs/timeseries.h"
#include "trace/sink.h"
#include "trace/trace.h"

namespace mb::apps {

/// Metrics time-series sampling during the run (obs::TimeSampler).
/// Enabling it forces the classic serial engine: the probes read global
/// state (queue depth, link counters) that has no single owner under the
/// sharded engine.
struct TimeSeriesConfig {
  bool enabled = false;
  double interval_s = 0.1;  ///< simulated seconds between samples
  std::size_t max_samples = 4096;
  /// Per-link series kept per metric after the run (prune_series);
  /// all-zero link series are always dropped.
  std::size_t max_link_series = 16;
};

struct ClusterConfig {
  std::uint32_t nodes = 16;
  std::uint32_t cores_per_node = 2;  ///< Tegra2: dual Cortex-A9
  net::TreeParams tree;              ///< interconnect parameters
  mpi::RuntimeConfig mpi;
  /// Frame granularity (see net::Network): raise for long-running apps
  /// (HPL at realistic N) where per-Ethernet-frame simulation is overkill.
  std::uint32_t mtu_bytes = net::Network::kMtuBytes;
  /// 0 = classic serial engine. >0 = sharded conservative-lookahead
  /// engine (sim::ShardedEngine) with this many worker threads; shards
  /// follow the leaf-switch subtrees and results are byte-identical for
  /// any worker count (sim_jobs=1 is the reference). Ignored — classic
  /// engine — when RunHooks::on_ready is set or recv_timeout_s > 0,
  /// since fault injection needs the serial queue.
  std::uint32_t sim_jobs = 0;
  /// Streaming trace capture: when true the runtime's records flow
  /// through a trace::StreamingSink configured by `trace_sink` (bounded
  /// per-rank rings, deterministic rank sampling, event-kind filters,
  /// optional mb-trace spill) instead of the unbounded collector. See
  /// the AppRunResult trace fields for where the records end up.
  bool streaming_trace = false;
  trace::SinkConfig trace_sink;
  /// Metrics time series; forces the serial engine when enabled.
  TimeSeriesConfig timeseries;
  /// Explicit rank -> node placement. Empty = node-major packing (rank r
  /// on node r / cores_per_node). When set it must have one entry per
  /// program rank, every entry < nodes, and at most cores_per_node ranks
  /// per node; nodes may be left empty (spare nodes the advisor migrates
  /// ranks onto when one node degrades).
  std::vector<std::uint32_t> rank_map;
};

/// Ranks placed on `node` under the config's mapping (rank_map when set,
/// node-major packing otherwise). Empty for a spare node.
std::vector<std::uint32_t> ranks_on_node(const ClusterConfig& config,
                                         std::uint32_t node);

/// The Tibidabo cluster as studied in the paper (Sec. II-B / IV).
ClusterConfig tibidabo_cluster(std::uint32_t nodes);

/// Tibidabo after the switch upgrade the paper announces.
ClusterConfig upgraded_cluster(std::uint32_t nodes);

struct AppRunResult {
  double makespan_s = 0.0;
  trace::Trace trace;
  std::uint64_t network_drops = 0;  ///< buffer-overflow retransmissions
  // Failure-aware extensions (fault injection, see src/fault):
  bool completed = true;
  double failed_at_s = 0.0;  ///< event-loop drain time of a failed run
  mpi::FailureReport failure;
  std::uint64_t network_retransmits = 0;
  std::uint64_t injected_losses = 0;
  // Streaming-capture bookkeeping (streaming_trace runs only). When the
  // sink spilled to an mb-trace file, `trace` stays empty — read the
  // file (trace::read_mb_trace) instead.
  std::vector<std::uint32_t> trace_sampled_ranks;
  std::uint64_t trace_dropped = 0;  ///< records lost to ring overflow
  /// Sampled gauges; empty unless config.timeseries.enabled. The caller
  /// stamps tool_version/seed (the harness does not know the run seed).
  obs::TimeSeries timeseries;
};

/// Hook point for fault injectors: called after the cluster is wired but
/// before the program runs, with every moving part exposed. Injectors
/// schedule their events on the queue (crash_rank, set_link_state, ...)
/// so they fire at simulated times inside the run. Setting on_ready
/// forces the classic serial engine regardless of sim_jobs.
struct RunHooks {
  std::function<void(sim::EventQueue&, net::Network&,
                     const net::ClusterTopology&, mpi::Runtime&,
                     trace::Trace&)>
      on_ready;
};

/// Runs `program` on a freshly built cluster. The program's rank count
/// must equal nodes * cores_per_node; ranks are packed node-major
/// (ranks 2k and 2k+1 share node k on the dual-core Tibidabo boards).
/// Throws on deadlock/failure (use the hooks overload to observe
/// failures structurally).
AppRunResult run_on_cluster(const ClusterConfig& config,
                            const mpi::Program& program);

/// Like above, but invokes `hooks.on_ready` before the run and never
/// throws on a failed run: `completed` is false and `failure` names the
/// dead ranks and blocked ops instead.
AppRunResult run_on_cluster(const ClusterConfig& config,
                            const mpi::Program& program,
                            const RunHooks& hooks);

}  // namespace mb::apps
