#include "apps/hpl.h"

#include <cmath>

#include "support/check.h"

namespace mb::apps {

void HplParams::validate() const {
  support::check(ranks >= 1, "HplParams", "ranks must be >= 1");
  support::check(n >= block && block >= 1, "HplParams",
                 "need n >= block >= 1");
  support::check(seconds_per_flop > 0.0, "HplParams",
                 "seconds_per_flop must be positive");
}

double HplParams::total_flops() const {
  const double nn = n;
  return 2.0 * nn * nn * nn / 3.0;
}

namespace {

/// Appends a pipelined (segmented) ring broadcast among `members` rooted at
/// members[0]: the owner streams segments to the next member, every member
/// forwards while receiving. Critical path ~ one transfer time plus a
/// pipeline fill — the shape HPL's row/column broadcasts are tuned to.
void append_ring_bcast(mpi::Program& program,
                       const std::vector<std::uint32_t>& members,
                       std::uint64_t bytes, std::int32_t tag_base,
                       std::uint64_t segment_bytes) {
  if (members.size() < 2 || bytes == 0) return;
  const std::uint64_t segments =
      std::max<std::uint64_t>(1, (bytes + segment_bytes - 1) / segment_bytes);
  for (std::size_t m = 0; m < members.size(); ++m) {
    auto& ops = program.rank(members[m]);
    for (std::uint64_t s = 0; s < segments; ++s) {
      const auto tag = static_cast<std::int32_t>(
          (tag_base + static_cast<std::int32_t>(s)) % (1 << 15));
      const std::uint64_t seg =
          s + 1 == segments ? bytes - s * segment_bytes : segment_bytes;
      if (m > 0) ops.push_back(mpi::Op::recv(members[m - 1], tag));
      if (m + 1 < members.size())
        ops.push_back(mpi::Op::send(members[m + 1], seg, tag));
    }
  }
}

}  // namespace

mpi::Program hpl_program(const HplParams& params) {
  params.validate();
  const std::uint32_t p = params.ranks;
  mpi::Program program(p);

  // 2-D process grid prow x pcol (prow ~ sqrt(p)); rank = r + c * prow.
  const auto prow = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::floor(std::sqrt(p))));
  const std::uint32_t pcol = p / prow;  // ranks beyond prow*pcol idle
  const std::uint32_t grid = prow * pcol;

  const std::uint64_t segment = 1u << 20;  // 1 MB broadcast segments
  const std::uint32_t panels = params.n / params.block;

  for (std::uint32_t k = 0; k < panels; ++k) {
    const double nk = static_cast<double>(params.n) -
                      static_cast<double>(k) * params.block;
    if (nk <= 0) break;
    const std::uint32_t owner_col = k % pcol;
    const std::uint32_t owner_row = k % prow;

    // --- panel factorization: parallel down the owning column (prow
    // ranks share the column block). ---
    const double panel_flops =
        2.0 * nk * params.block * params.block / prow;
    for (std::uint32_t r = 0; r < prow; ++r) {
      const std::uint32_t rank = r + owner_col * prow;
      program.rank(rank).push_back(mpi::Op::compute(
          panel_flops * params.seconds_per_flop, "panel_factor"));
    }

    // --- broadcast the column panel along each process row. ---
    const auto panel_bytes =
        static_cast<std::uint64_t>(nk) * params.block * 8 / prow;
    for (std::uint32_t r = 0; r < prow; ++r) {
      std::vector<std::uint32_t> row;
      row.push_back(r + owner_col * prow);  // owner first
      for (std::uint32_t c = 0; c < pcol; ++c)
        if (c != owner_col) row.push_back(r + c * prow);
      append_ring_bcast(program, row, panel_bytes,
                        static_cast<std::int32_t>(k * 64), segment);
    }

    // --- broadcast the U12 row block along each process column. ---
    const auto u_bytes =
        static_cast<std::uint64_t>(nk) * params.block * 8 / pcol;
    for (std::uint32_t c = 0; c < pcol; ++c) {
      std::vector<std::uint32_t> col;
      col.push_back(owner_row + c * prow);
      for (std::uint32_t r = 0; r < prow; ++r)
        if (r != owner_row) col.push_back(r + c * prow);
      append_ring_bcast(program, col, u_bytes,
                        static_cast<std::int32_t>(k * 64 + 32), segment);
    }

    // --- trailing update, spread over the whole grid. ---
    const double update_flops = 2.0 * nk * nk * params.block / grid;
    for (std::uint32_t rank = 0; rank < grid; ++rank) {
      program.rank(rank).push_back(mpi::Op::compute(
          update_flops * params.seconds_per_flop, "trailing_update"));
    }
  }
  return program;
}

AppRunResult run_hpl(const ClusterConfig& cluster, const HplParams& params) {
  return run_on_cluster(cluster, hpl_program(params));
}

double hpl_gflops(const HplParams& params, double makespan_s) {
  support::check(makespan_s > 0.0, "hpl_gflops",
                 "makespan must be positive");
  return params.total_flops() / makespan_s / 1e9;
}

}  // namespace mb::apps
