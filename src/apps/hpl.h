// LINPACK/HPL application model (paper Sec. IV, Fig. 3a).
//
// Right-looking LU over a block-cyclic distribution, modelled at panel
// granularity: per panel, the owning process column factors it (parallel
// across the column), broadcasts it (binomial), and all ranks update their
// share of the trailing matrix. Communication is broadcast-dominated —
// "LINPACK is only affected to a lesser extent" by the Ethernet trouble,
// and its Fig. 3a speedup stays linear past 32 nodes at ~80% efficiency.
#pragma once

#include <cstdint>

#include "apps/cluster.h"
#include "mpi/program.h"

namespace mb::apps {

struct HplParams {
  std::uint32_t ranks = 16;
  std::uint32_t n = 16384;       ///< global matrix dimension
  std::uint32_t block = 64;      ///< panel width
  /// Seconds per double-precision flop on one reference core (Tegra2:
  /// ~1/0.3 GFLOPS; calibrate from kernels::linpack_run).
  double seconds_per_flop = 3.3e-9;

  void validate() const;

  /// Total factorization flops (2n^3/3).
  double total_flops() const;
};

mpi::Program hpl_program(const HplParams& params);

AppRunResult run_hpl(const ClusterConfig& cluster, const HplParams& params);

/// GFLOPS of a finished run.
double hpl_gflops(const HplParams& params, double makespan_s);

}  // namespace mb::apps
