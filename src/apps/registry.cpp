#include "apps/registry.h"

#include "support/check.h"

namespace mb::apps {

const std::vector<AppInfo>& montblanc_applications() {
  static const std::vector<AppInfo> kApps = {
      {"YALES2", "Combustion", "CNRS/CORIA"},
      {"EUTERPE", "Fusion", "BSC"},
      {"SPECFEM3D", "Wave Propagation", "CNRS"},
      {"MP2C", "Multi-particle Collision", "JSC"},
      {"BigDFT", "Electronic Structure", "CEA"},
      {"Quantum Expresso", "Electronic Structure", "CINECA"},
      {"PEPC", "Coulomb & Gravitational Forces", "JSC"},
      {"SMMP", "Protein Folding", "JSC"},
      {"PorFASI", "Protein Folding", "JSC"},
      {"COSMO", "Weather Forecast", "CINECA"},
      {"BQCD", "Particle Physics", "LRZ"},
  };
  return kApps;
}

const AppInfo& find_application(const std::string& code) {
  for (const auto& app : montblanc_applications())
    if (app.code == code) return app;
  support::fail("find_application", "unknown application code: " + code);
}

}  // namespace mb::apps
