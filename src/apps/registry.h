// The Mont-Blanc application portfolio (paper Table I).
#pragma once

#include <string>
#include <vector>

namespace mb::apps {

struct AppInfo {
  std::string code;
  std::string domain;
  std::string institution;
};

/// The eleven applications selected for porting and optimization.
const std::vector<AppInfo>& montblanc_applications();

/// Looks an application up by code name; throws when absent.
const AppInfo& find_application(const std::string& code);

}  // namespace mb::apps
