#include "apps/specfem.h"

#include "support/check.h"
#include "support/rng.h"

namespace mb::apps {

void SpecfemParams::validate() const {
  support::check(ranks >= 2, "SpecfemParams",
                 "the halo exchange needs at least 2 ranks");
  support::check(steps >= 1, "SpecfemParams", "steps must be >= 1");
  support::check(compute_s_per_step > 0.0, "SpecfemParams",
                 "compute time must be positive");
}

std::uint32_t SpecfemParams::min_ranks(std::uint32_t cores_per_node) const {
  const std::uint64_t nodes =
      (instance_bytes + node_memory_bytes - 1) / node_memory_bytes;
  return static_cast<std::uint32_t>(nodes) * cores_per_node;
}

mpi::Program specfem_program(const SpecfemParams& params) {
  params.validate();
  support::check(params.ranks >= params.min_ranks(), "specfem_program",
                 "instance does not fit in memory on this few nodes "
                 "(the paper's use-case cannot run on less than 2 nodes)");
  const std::uint32_t p = params.ranks;
  mpi::Program program(p);

  support::Rng rng(params.seed);
  std::vector<double> skew(p);
  for (auto& s : skew) s = 1.0 + rng.uniform(-params.imbalance,
                                             params.imbalance);

  for (std::uint32_t step = 0; step < params.steps; ++step) {
    for (std::uint32_t r = 0; r < p; ++r) {
      auto& ops = program.rank(r);
      ops.push_back(mpi::Op::compute(
          params.compute_s_per_step / p * skew[r], "element_compute"));
      // Halo exchange with ring neighbours; buffered sends first so the
      // symmetric receives cannot deadlock. Tags encode direction.
      const std::uint32_t right = (r + 1) % p;
      const std::uint32_t left = (r + p - 1) % p;
      const auto tag_r = static_cast<std::int32_t>(2 * step);
      const auto tag_l = static_cast<std::int32_t>(2 * step + 1);
      ops.push_back(mpi::Op::send(right, params.halo_bytes, tag_r));
      ops.push_back(mpi::Op::send(left, params.halo_bytes, tag_l));
      ops.push_back(mpi::Op::recv(left, tag_r));
      ops.push_back(mpi::Op::recv(right, tag_l));
    }
  }
  return program;
}

AppRunResult run_specfem(const ClusterConfig& cluster,
                         const SpecfemParams& params) {
  return run_on_cluster(cluster, specfem_program(params));
}

}  // namespace mb::apps
