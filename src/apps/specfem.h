// SPECFEM3D application model (paper Sec. IV, Fig. 3b).
//
// SPECFEM3D owes its excellent scalability to "careful load-balancing and
// point to point communications": each rank owns a mesh chunk and per time
// step exchanges only boundary data with its neighbours. The model is a
// ring decomposition with halo sendrecv — contention-free on a switched
// network, hence the ~90% strong-scaling efficiency of Fig. 3b.
//
// The paper's instance cannot run on fewer than 2 nodes (4 cores): one
// node's 1 GB cannot hold the mesh. min_ranks() encodes that constraint,
// and the Fig. 3b speedups are reported versus the 4-core run.
#pragma once

#include <cstdint>

#include "apps/cluster.h"
#include "mpi/program.h"

namespace mb::apps {

struct SpecfemParams {
  std::uint32_t ranks = 8;
  std::uint32_t steps = 20;
  /// Sequential compute time of one time step (seconds on one reference
  /// core); divided by ranks under strong scaling.
  double compute_s_per_step = 6.0;
  /// Halo payload exchanged with each of the two ring neighbours. Small
  /// relative to switch buffers — the reason the paper finds SPECFEM3D
  /// immune to the congestion that ruins BigDFT.
  std::uint64_t halo_bytes = 32 * 1024;
  /// Memory footprint of the whole instance; with the per-node memory it
  /// determines the minimum node count.
  std::uint64_t instance_bytes = 1536ull << 20;
  std::uint64_t node_memory_bytes = 1024ull << 20;
  double imbalance = 0.01;
  std::uint64_t seed = 1;

  void validate() const;

  /// Minimum ranks imposed by per-node memory (2 ranks per node).
  std::uint32_t min_ranks(std::uint32_t cores_per_node = 2) const;
};

mpi::Program specfem_program(const SpecfemParams& params);

AppRunResult run_specfem(const ClusterConfig& cluster,
                         const SpecfemParams& params);

}  // namespace mb::apps
