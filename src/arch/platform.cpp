#include "arch/platform.h"

#include <algorithm>

#include "support/check.h"

namespace mb::arch {

std::string_view op_class_name(OpClass c) {
  switch (c) {
    case OpClass::kIntAlu: return "int_alu";
    case OpClass::kIntMul: return "int_mul";
    case OpClass::kInt64: return "int64";
    case OpClass::kFpAddSp: return "fp_add_sp";
    case OpClass::kFpMulSp: return "fp_mul_sp";
    case OpClass::kFpAddDp: return "fp_add_dp";
    case OpClass::kFpMulDp: return "fp_mul_dp";
    case OpClass::kVecSp: return "vec_sp";
    case OpClass::kVecDp: return "vec_dp";
    case OpClass::kLoad32: return "load32";
    case OpClass::kLoad64: return "load64";
    case OpClass::kLoad128: return "load128";
    case OpClass::kStore32: return "store32";
    case OpClass::kStore64: return "store64";
    case OpClass::kStore128: return "store128";
    case OpClass::kBranch: return "branch";
    case OpClass::kCount: break;
  }
  return "?";
}

bool is_memory_op(OpClass c) {
  switch (c) {
    case OpClass::kLoad32:
    case OpClass::kLoad64:
    case OpClass::kLoad128:
    case OpClass::kStore32:
    case OpClass::kStore64:
    case OpClass::kStore128:
      return true;
    default:
      return false;
  }
}

std::uint32_t memory_op_bytes(OpClass c) {
  switch (c) {
    case OpClass::kLoad32:
    case OpClass::kStore32:
      return 4;
    case OpClass::kLoad64:
    case OpClass::kStore64:
      return 8;
    case OpClass::kLoad128:
    case OpClass::kStore128:
      return 16;
    default:
      return 0;
  }
}

OpClass load_class_for_bits(std::uint32_t bits) {
  switch (bits) {
    case 32: return OpClass::kLoad32;
    case 64: return OpClass::kLoad64;
    case 128: return OpClass::kLoad128;
    default:
      support::fail("load_class_for_bits", "width must be 32, 64 or 128");
  }
}

OpClass store_class_for_bits(std::uint32_t bits) {
  switch (bits) {
    case 32: return OpClass::kStore32;
    case 64: return OpClass::kStore64;
    case 128: return OpClass::kStore128;
    default:
      support::fail("store_class_for_bits", "width must be 32, 64 or 128");
  }
}

double recip_throughput(const CoreConfig& core, OpClass c) {
  return core.recip_throughput[static_cast<std::size_t>(c)];
}

double Platform::peak_dp_gflops() const {
  // Peak = best of vector DP (lanes per cycle) or scalar DP pipes.
  double flops_per_cycle = 0.0;
  const double vec_rt = recip_throughput(core, OpClass::kVecDp);
  if (core.vector_bits > 0 && core.vector_dp && vec_rt > 0.0) {
    const double lanes = core.vector_bits / 64.0;
    // Separate add and mul pipes can dual-issue: count both if both exist.
    flops_per_cycle = 2.0 * lanes / vec_rt;
  } else {
    const double add_rt = recip_throughput(core, OpClass::kFpAddDp);
    const double mul_rt = recip_throughput(core, OpClass::kFpMulDp);
    if (add_rt > 0.0) flops_per_cycle += 1.0 / add_rt;
    if (mul_rt > 0.0) flops_per_cycle += 1.0 / mul_rt;
    flops_per_cycle = std::min<double>(flops_per_cycle, core.issue_width);
  }
  return cores * core.freq_hz * flops_per_cycle / 1e9;
}

double Platform::peak_sp_gflops() const {
  double flops_per_cycle = 0.0;
  const double vec_rt = recip_throughput(core, OpClass::kVecSp);
  if (core.vector_bits > 0 && vec_rt > 0.0) {
    const double lanes = core.vector_bits / 32.0;
    flops_per_cycle = 2.0 * lanes / vec_rt;
  } else {
    const double add_rt = recip_throughput(core, OpClass::kFpAddSp);
    const double mul_rt = recip_throughput(core, OpClass::kFpMulSp);
    if (add_rt > 0.0) flops_per_cycle += 1.0 / add_rt;
    if (mul_rt > 0.0) flops_per_cycle += 1.0 / mul_rt;
    flops_per_cycle = std::min<double>(flops_per_cycle, core.issue_width);
  }
  return cores * core.freq_hz * flops_per_cycle / 1e9;
}

std::size_t Platform::llc_index() const {
  support::check(!caches.empty(), "Platform::llc_index", "no caches defined");
  return caches.size() - 1;
}

void Platform::validate() const {
  namespace sp = mb::support;
  sp::check(!name.empty(), "Platform::validate", "platform needs a name");
  sp::check(core.freq_hz > 0.0, "Platform::validate",
            "core frequency must be positive");
  sp::check(cores >= 1, "Platform::validate", "at least one core");
  sp::check(core.issue_width >= 1, "Platform::validate",
            "issue width must be >= 1");
  sp::check(!caches.empty(), "Platform::validate",
            "at least one cache level required");
  for (const auto& c : caches) {
    sp::check(c.size_bytes > 0 && c.line_bytes > 0 && c.associativity > 0,
              "Platform::validate", "cache parameters must be positive");
    sp::check((c.line_bytes & (c.line_bytes - 1)) == 0, "Platform::validate",
              "cache line size must be a power of two");
    const std::uint64_t way_bytes =
        static_cast<std::uint64_t>(c.line_bytes) * c.associativity;
    sp::check(c.size_bytes % way_bytes == 0, "Platform::validate",
              "cache size must divide into sets exactly");
    const std::uint64_t sets = c.sets();
    sp::check((sets & (sets - 1)) == 0, "Platform::validate",
              "cache set count must be a power of two");
  }
  sp::check(mem.bandwidth_bytes_per_s > 0.0, "Platform::validate",
            "memory bandwidth must be positive");
  sp::check(mem.latency_ns > 0.0, "Platform::validate",
            "memory latency must be positive");
  sp::check((mem.page_bytes & (mem.page_bytes - 1)) == 0,
            "Platform::validate", "page size must be a power of two");
  sp::check(power_w > 0.0, "Platform::validate", "power must be positive");
}

}  // namespace mb::arch
