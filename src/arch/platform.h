// Platform descriptors.
//
// A Platform is a declarative model of one machine from the paper: core
// microarchitecture (issue width, per-operation-class throughput, vector
// capabilities, register files), cache hierarchy, memory system, and power.
// The cost model in mb::sim combines a kernel's instruction mix and simulated
// cache behaviour with these parameters to produce cycles, time and energy.
//
// The paper's platforms (Section II-III):
//  * Snowball     — ST-Ericsson A9500, 2x Cortex-A9 @1 GHz, NEON (SP only)
//  * Xeon X5550   — 4x Nehalem @2.66 GHz, SSE 128-bit, 8 MB L3
//  * Tegra2 node  — Tibidabo compute node, 2x Cortex-A9 @1 GHz, no NEON
//  * Exynos5 Dual — projected Mont-Blanc prototype chip (2x A15 + Mali T604)
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mb::arch {

/// Instruction classes distinguished by the cost model. Granularity follows
/// what the paper's workloads stress: integer vs 64-bit integer (bitboards),
/// scalar vs vector floating point in both precisions, memory ops, branches.
enum class OpClass : std::uint8_t {
  kIntAlu,     ///< 32-bit integer add/sub/logic/shift
  kIntMul,     ///< integer multiply
  kInt64,      ///< 64-bit integer op (decomposed on 32-bit cores)
  kFpAddSp,    ///< scalar single-precision add
  kFpMulSp,    ///< scalar single-precision multiply
  kFpAddDp,    ///< scalar double-precision add
  kFpMulDp,    ///< scalar double-precision multiply
  kVecSp,      ///< one 128-bit-wide packed SP op (4 lanes nominal)
  kVecDp,      ///< one 128-bit-wide packed DP op (2 lanes nominal)
  kLoad32,     ///< 32-bit load (cache behaviour modelled separately)
  kLoad64,     ///< 64-bit load
  kLoad128,    ///< 128-bit (vector) load
  kStore32,    ///< 32-bit store
  kStore64,    ///< 64-bit store
  kStore128,   ///< 128-bit (vector) store
  kBranch,     ///< conditional branch
  kCount
};

/// True for the load/store classes.
bool is_memory_op(OpClass c);
/// Bytes moved by one memory op of this class (0 for non-memory classes).
std::uint32_t memory_op_bytes(OpClass c);
/// The load (or store) class matching an element width in bits (32/64/128).
OpClass load_class_for_bits(std::uint32_t bits);
OpClass store_class_for_bits(std::uint32_t bits);

inline constexpr std::size_t kOpClassCount =
    static_cast<std::size_t>(OpClass::kCount);

/// Human-readable operation class name.
std::string_view op_class_name(OpClass c);

/// One cache level.
struct CacheConfig {
  std::string name;            ///< "L1", "L2", ...
  std::uint64_t size_bytes = 0;
  std::uint32_t line_bytes = 0;
  std::uint32_t associativity = 0;  ///< ways; sets = size / (line * ways)
  std::uint32_t latency_cycles = 0; ///< load-to-use on hit
  bool shared = false;              ///< shared among all cores of the socket
  bool physically_indexed = true;   ///< uses physical addresses for indexing

  std::uint64_t sets() const {
    return size_bytes / (static_cast<std::uint64_t>(line_bytes) *
                         associativity);
  }
};

/// DRAM / memory-bus behaviour.
struct MemConfig {
  std::string kind;                  ///< "LP-DDR2", "DDR3", ...
  double latency_ns = 0.0;           ///< loaded DRAM access latency
  double bandwidth_bytes_per_s = 0;  ///< sustainable chip bandwidth
  std::uint64_t total_bytes = 0;     ///< installed capacity
  std::uint32_t page_bytes = 4096;   ///< OS page size
};

/// Core microarchitecture parameters.
struct CoreConfig {
  std::string name;               ///< "Cortex-A9", "Nehalem", ...
  double freq_hz = 0.0;
  std::uint32_t issue_width = 1;  ///< sustained ops per cycle ceiling
  bool out_of_order = false;

  /// Reciprocal throughput (cycles per operation when that class saturates
  /// its unit) for each OpClass. A value of 0 marks the class unsupported:
  /// the cost model decomposes it (see sim::CostModel).
  std::array<double, kOpClassCount> recip_throughput{};

  /// Loads and stores issue on separate ports (Nehalem-style) rather than
  /// sharing a single AGU/LSU slot (Cortex-A9-style). With split ports the
  /// LSU bound is max(loads, stores) instead of their sum.
  bool split_lsu = false;

  /// Vector datapath width in bits (64 for Cortex-A9 NEON: 128-bit ops crack
  /// into two 64-bit halves; 128 for SSE). 0 = no vector unit.
  std::uint32_t vector_bits = 0;
  bool vector_dp = false;  ///< vector unit handles double precision

  /// Architectural registers available for unrolled loop bodies. Drives the
  /// spill models in the unrolling experiments (Fig. 6 and 7).
  std::uint32_t int_registers = 0;
  /// Vector registers the compiler will actually allocate, in 128-bit
  /// units (membench vectorized-unrolling spill model, Fig. 6).
  std::uint32_t fp_registers = 0;
  /// Scalar double-precision values that can stay register-resident in an
  /// unrolled FP loop (magicfilter spill model, Fig. 7).
  std::uint32_t dp_scalar_registers = 8;

  /// Fraction of a miss's latency an OoO window can overlap with useful
  /// work (0 = fully exposed, 0.7 = 70% hidden).
  double miss_overlap = 0.0;

  /// Outstanding DRAM misses the core can sustain (MSHRs + prefetch
  /// streams). Back-to-back independent misses pipeline across them, so
  /// streaming cost approaches the bandwidth bound instead of serializing
  /// on DRAM latency.
  double mshr = 1.0;

  double branch_mispredict_penalty = 10.0;  ///< cycles
  double branch_mispredict_rate = 0.02;     ///< default rate when a kernel
                                            ///< does not supply its own

  /// Result-to-use latency of a dependent FP add chain (reduction loops).
  double fp_dep_latency_cycles = 4.0;

  /// Data TLB parameters (drives cache::Tlb construction).
  std::uint32_t tlb_entries = 32;
  std::uint32_t tlb_associativity = 32;
  std::uint32_t tlb_walk_cycles = 30;
};

/// GPU presence (perspectives section; used by power projections only).
struct GpuConfig {
  std::string name;
  double peak_sp_gflops = 0.0;
  bool general_purpose = false;  ///< usable for GPGPU (Mali-400 is not)
};

/// A complete machine description.
struct Platform {
  std::string name;
  CoreConfig core;
  std::uint32_t cores = 1;
  std::vector<CacheConfig> caches;  ///< ordered L1 -> LLC
  MemConfig mem;
  std::optional<GpuConfig> gpu;

  /// Power model: the paper uses nameplate numbers (2.5 W full-board for
  /// Snowball, 95 W TDP for the Xeon) — deliberately conservative for ARM.
  double power_w = 0.0;

  /// Peak double-precision GFLOPS of the whole chip (derived).
  double peak_dp_gflops() const;
  /// Peak single-precision GFLOPS of the whole chip (derived).
  double peak_sp_gflops() const;

  /// Cycles -> seconds at core frequency.
  double seconds(double cycles) const { return cycles / core.freq_hz; }

  /// Returns the cache level index acting as last-level cache.
  std::size_t llc_index() const;

  /// Validates internal consistency (sizes power-of-two-divisible into
  /// sets, nonzero frequency, ...). Throws support::Error on violation.
  void validate() const;
};

/// Convenience accessor for a core's reciprocal throughput of a class.
double recip_throughput(const CoreConfig& core, OpClass c);

}  // namespace mb::arch
