#include "arch/platform_io.h"

#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "support/check.h"

namespace mb::arch {
namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

void serialize_core(std::ostringstream& out, const CoreConfig& c) {
  out << "[core]\n";
  out << "name = " << c.name << '\n';
  out << "freq_hz = " << c.freq_hz << '\n';
  out << "issue_width = " << c.issue_width << '\n';
  out << "out_of_order = " << (c.out_of_order ? 1 : 0) << '\n';
  out << "split_lsu = " << (c.split_lsu ? 1 : 0) << '\n';
  out << "vector_bits = " << c.vector_bits << '\n';
  out << "vector_dp = " << (c.vector_dp ? 1 : 0) << '\n';
  out << "int_registers = " << c.int_registers << '\n';
  out << "fp_registers = " << c.fp_registers << '\n';
  out << "dp_scalar_registers = " << c.dp_scalar_registers << '\n';
  out << "miss_overlap = " << c.miss_overlap << '\n';
  out << "mshr = " << c.mshr << '\n';
  out << "branch_mispredict_penalty = " << c.branch_mispredict_penalty
      << '\n';
  out << "branch_mispredict_rate = " << c.branch_mispredict_rate << '\n';
  out << "fp_dep_latency_cycles = " << c.fp_dep_latency_cycles << '\n';
  out << "tlb_entries = " << c.tlb_entries << '\n';
  out << "tlb_associativity = " << c.tlb_associativity << '\n';
  out << "tlb_walk_cycles = " << c.tlb_walk_cycles << '\n';
  for (std::size_t i = 0; i < kOpClassCount; ++i) {
    out << "recip." << op_class_name(static_cast<OpClass>(i)) << " = "
        << c.recip_throughput[i] << '\n';
  }
}

/// Section = ordered key/value list (caches repeat, so order matters).
struct Section {
  std::string name;  // "" for top level
  std::map<std::string, std::string> kv;
  int line = 0;
};

std::vector<Section> split_sections(const std::string& text) {
  std::vector<Section> sections;
  sections.push_back(Section{});
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;
    if (line.front() == '[') {
      support::check(line.back() == ']', "parse_platform",
                     "unterminated section header at line " +
                         std::to_string(line_no));
      sections.push_back(
          Section{trim(line.substr(1, line.size() - 2)), {}, line_no});
      continue;
    }
    const auto eq = line.find('=');
    support::check(eq != std::string::npos, "parse_platform",
                   "expected key = value at line " +
                       std::to_string(line_no));
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    support::check(!key.empty(), "parse_platform",
                   "empty key at line " + std::to_string(line_no));
    auto& section = sections.back();
    support::check(section.kv.emplace(key, value).second, "parse_platform",
                   "duplicate key '" + key + "' at line " +
                       std::to_string(line_no));
  }
  return sections;
}

double to_double(const Section& s, const std::string& key) {
  const auto it = s.kv.find(key);
  support::check(it != s.kv.end(), "parse_platform",
                 "missing key '" + key + "' in section [" + s.name + "]");
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  support::check(end != nullptr && *end == '\0', "parse_platform",
                 "bad numeric value for '" + key + "'");
  return v;
}

std::uint64_t to_u64(const Section& s, const std::string& key) {
  const double v = to_double(s, key);
  support::check(v >= 0.0, "parse_platform",
                 "'" + key + "' must be non-negative");
  return static_cast<std::uint64_t>(v);
}

bool to_bool(const Section& s, const std::string& key) {
  return to_u64(s, key) != 0;
}

std::string to_string_value(const Section& s, const std::string& key) {
  const auto it = s.kv.find(key);
  support::check(it != s.kv.end(), "parse_platform",
                 "missing key '" + key + "' in section [" + s.name + "]");
  return it->second;
}

CoreConfig parse_core(const Section& s) {
  CoreConfig c;
  c.name = to_string_value(s, "name");
  c.freq_hz = to_double(s, "freq_hz");
  c.issue_width = static_cast<std::uint32_t>(to_u64(s, "issue_width"));
  c.out_of_order = to_bool(s, "out_of_order");
  c.split_lsu = to_bool(s, "split_lsu");
  c.vector_bits = static_cast<std::uint32_t>(to_u64(s, "vector_bits"));
  c.vector_dp = to_bool(s, "vector_dp");
  c.int_registers = static_cast<std::uint32_t>(to_u64(s, "int_registers"));
  c.fp_registers = static_cast<std::uint32_t>(to_u64(s, "fp_registers"));
  c.dp_scalar_registers =
      static_cast<std::uint32_t>(to_u64(s, "dp_scalar_registers"));
  c.miss_overlap = to_double(s, "miss_overlap");
  c.mshr = to_double(s, "mshr");
  c.branch_mispredict_penalty = to_double(s, "branch_mispredict_penalty");
  c.branch_mispredict_rate = to_double(s, "branch_mispredict_rate");
  c.fp_dep_latency_cycles = to_double(s, "fp_dep_latency_cycles");
  c.tlb_entries = static_cast<std::uint32_t>(to_u64(s, "tlb_entries"));
  c.tlb_associativity =
      static_cast<std::uint32_t>(to_u64(s, "tlb_associativity"));
  c.tlb_walk_cycles =
      static_cast<std::uint32_t>(to_u64(s, "tlb_walk_cycles"));
  for (std::size_t i = 0; i < kOpClassCount; ++i) {
    const auto cls = static_cast<OpClass>(i);
    c.recip_throughput[i] =
        to_double(s, "recip." + std::string(op_class_name(cls)));
  }
  return c;
}

CacheConfig parse_cache(const Section& s) {
  CacheConfig c;
  c.name = to_string_value(s, "name");
  c.size_bytes = to_u64(s, "size_bytes");
  c.line_bytes = static_cast<std::uint32_t>(to_u64(s, "line_bytes"));
  c.associativity =
      static_cast<std::uint32_t>(to_u64(s, "associativity"));
  c.latency_cycles =
      static_cast<std::uint32_t>(to_u64(s, "latency_cycles"));
  c.shared = to_bool(s, "shared");
  c.physically_indexed = to_bool(s, "physically_indexed");
  return c;
}

MemConfig parse_mem(const Section& s) {
  MemConfig m;
  m.kind = to_string_value(s, "kind");
  m.latency_ns = to_double(s, "latency_ns");
  m.bandwidth_bytes_per_s = to_double(s, "bandwidth_bytes_per_s");
  m.total_bytes = to_u64(s, "total_bytes");
  m.page_bytes = static_cast<std::uint32_t>(to_u64(s, "page_bytes"));
  return m;
}

}  // namespace

std::string serialize_platform(const Platform& platform) {
  platform.validate();
  std::ostringstream out;
  out.precision(17);
  out << "# montblanc platform description\n";
  out << "name = " << platform.name << '\n';
  out << "cores = " << platform.cores << '\n';
  out << "power_w = " << platform.power_w << '\n';
  serialize_core(out, platform.core);
  for (const auto& c : platform.caches) {
    out << "[cache]\n";
    out << "name = " << c.name << '\n';
    out << "size_bytes = " << c.size_bytes << '\n';
    out << "line_bytes = " << c.line_bytes << '\n';
    out << "associativity = " << c.associativity << '\n';
    out << "latency_cycles = " << c.latency_cycles << '\n';
    out << "shared = " << (c.shared ? 1 : 0) << '\n';
    out << "physically_indexed = " << (c.physically_indexed ? 1 : 0)
        << '\n';
  }
  out << "[mem]\n";
  out << "kind = " << platform.mem.kind << '\n';
  out << "latency_ns = " << platform.mem.latency_ns << '\n';
  out << "bandwidth_bytes_per_s = " << platform.mem.bandwidth_bytes_per_s
      << '\n';
  out << "total_bytes = " << platform.mem.total_bytes << '\n';
  out << "page_bytes = " << platform.mem.page_bytes << '\n';
  return out.str();
}

Platform parse_platform(const std::string& text) {
  const auto sections = split_sections(text);
  Platform p;
  bool have_core = false, have_mem = false;
  for (const auto& s : sections) {
    if (s.name.empty()) {
      if (s.kv.empty()) continue;
      p.name = to_string_value(s, "name");
      p.cores = static_cast<std::uint32_t>(to_u64(s, "cores"));
      p.power_w = to_double(s, "power_w");
    } else if (s.name == "core") {
      support::check(!have_core, "parse_platform",
                     "duplicate [core] section");
      p.core = parse_core(s);
      have_core = true;
    } else if (s.name == "cache") {
      p.caches.push_back(parse_cache(s));
    } else if (s.name == "mem") {
      support::check(!have_mem, "parse_platform",
                     "duplicate [mem] section");
      p.mem = parse_mem(s);
      have_mem = true;
    } else {
      support::fail("parse_platform", "unknown section [" + s.name + "]");
    }
  }
  support::check(have_core, "parse_platform", "missing [core] section");
  support::check(have_mem, "parse_platform", "missing [mem] section");
  p.validate();
  return p;
}

}  // namespace mb::arch
