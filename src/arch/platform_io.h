// Platform descriptor serialization.
//
// Lets users define their own machines in a plain text format instead of
// C++ — the natural extension point of the library (the paper's method is
// meant to be applied to each new board that comes along). The format is
// INI-like: top-level keys, a [core] section, one [cache] section per
// level (L1 first), and a [mem] section. serialize/parse round-trip
// exactly, and every built-in platform ships as a parseable description.
//
//   name = My Board
//   power_w = 3.0
//   cores = 2
//   [core]
//   name = Cortex-A7
//   freq_hz = 8e8
//   issue_width = 1
//   recip.int_alu = 1
//   ...
//   [cache]
//   name = L1d
//   size_bytes = 16384
//   ...
//   [mem]
//   kind = DDR2
//   ...
#pragma once

#include <string>

#include "arch/platform.h"

namespace mb::arch {

/// Serializes a platform to the text format (validates first).
std::string serialize_platform(const Platform& platform);

/// Parses the text format; throws support::Error with a line number on
/// malformed input. The result is validate()d before returning.
Platform parse_platform(const std::string& text);

}  // namespace mb::arch
