#include "arch/platforms.h"

#include "support/units.h"

namespace mb::arch {
namespace {

using support::GHz;
using support::KiB;
using support::MiB;
using support::GiB;

void set_rt(CoreConfig& core, OpClass c, double cycles_per_op) {
  core.recip_throughput[static_cast<std::size_t>(c)] = cycles_per_op;
}

/// Cortex-A9 core shared by Snowball and Tegra2 (NEON presence differs).
CoreConfig cortex_a9(bool has_neon) {
  CoreConfig core;
  core.name = has_neon ? "Cortex-A9+NEON" : "Cortex-A9";
  core.freq_hz = 1.0 * GHz;
  core.issue_width = 2;
  core.out_of_order = true;  // small 2-wide OoO window
  core.miss_overlap = 0.10;  // almost no capacity to hide misses
  core.mshr = 3.0;           // PL310 supports a few outstanding fills
  core.branch_mispredict_penalty = 9.0;
  core.int_registers = 12;  // r0-r12 minus fixed-role registers
  // gcc-4.6 allocates NEON Q registers conservatively (softfp ABI): about
  // half the architectural file is effectively usable in unrolled bodies.
  core.fp_registers = has_neon ? 8 : 4;
  // VFPv3: 32 D registers with NEON, 16 (D16) without; several serve as
  // scratch, leaving this many unrolled doubles register-resident. The
  // D16 budget of 11 puts the magicfilter spill staircase at unroll~5,
  // where the paper's Fig. 7b cache-access curve jumps on Tegra2.
  core.dp_scalar_registers = has_neon ? 24 : 11;
  core.fp_dep_latency_cycles = 4.0;       // VFP/NEON result-to-use
  core.tlb_entries = 32;                  // Cortex-A9 micro-TLB
  core.tlb_associativity = 32;
  core.tlb_walk_cycles = 40;

  set_rt(core, OpClass::kIntAlu, 0.5);  // two integer pipes
  set_rt(core, OpClass::kIntMul, 2.0);
  set_rt(core, OpClass::kInt64, 1.8);  // 32-bit core: ADDS/ADC pairs, some
                                       // dual-issue across the halves
  set_rt(core, OpClass::kFpAddSp, 1.0);
  set_rt(core, OpClass::kFpMulSp, 1.0);
  // VFP double precision is the A9's weak spot (and with gcc's softfp
  // code generation the practical throughput is worse than the pipe's
  // nameplate): one DP result every ~3 cycles. This is what stretches the
  // BigDFT and LINPACK rows of Table II.
  set_rt(core, OpClass::kFpAddDp, 3.0);
  set_rt(core, OpClass::kFpMulDp, 3.0);
  if (has_neon) {
    // NEON datapath is 64 bits wide: a 128-bit op cracks into two halves.
    core.vector_bits = 64;
    core.vector_dp = false;  // NEON is single precision only (paper Sec. II)
    set_rt(core, OpClass::kVecSp, 2.0);   // nominal 128-bit op = 2 x 64-bit
    set_rt(core, OpClass::kVecDp, 0.0);   // unsupported -> decomposed
  } else {
    core.vector_bits = 0;
    core.vector_dp = false;
    set_rt(core, OpClass::kVecSp, 0.0);
    set_rt(core, OpClass::kVecDp, 0.0);
  }
  set_rt(core, OpClass::kLoad32, 1.0);
  set_rt(core, OpClass::kLoad64, 1.0);   // LDRD / NEON D-register load
  // Quad-register NEON loads on the A9 are notoriously slow: they issue
  // over several cycles and effectively bypass the L1 into the PL310 —
  // this is why the paper finds 128-bit "vectorized" accesses no better
  // than 32-bit scalar ones (Fig. 6b).
  set_rt(core, OpClass::kLoad128, has_neon ? 8.0 : 0.0);
  set_rt(core, OpClass::kStore32, 1.0);
  set_rt(core, OpClass::kStore64, 1.5);
  set_rt(core, OpClass::kStore128, has_neon ? 8.0 : 0.0);
  set_rt(core, OpClass::kBranch, 1.0);
  return core;
}

CoreConfig nehalem() {
  CoreConfig core;
  core.name = "Nehalem";
  core.freq_hz = 2.66 * GHz;
  core.issue_width = 4;
  core.out_of_order = true;
  core.miss_overlap = 0.65;  // deep ROB + aggressive prefetch
  core.mshr = 10.0;          // 10 line-fill buffers per core
  core.branch_mispredict_penalty = 15.0;
  core.int_registers = 14;
  core.fp_registers = 16;  // XMM0-15
  // One scalar double per XMM register minus a scratch register: the
  // magicfilter staircase lands at unroll~9 (Fig. 7a).
  core.dp_scalar_registers = 15;
  core.fp_dep_latency_cycles = 3.0;
  core.tlb_entries = 64;  // Nehalem L1 DTLB
  core.tlb_associativity = 4;
  core.tlb_walk_cycles = 25;

  set_rt(core, OpClass::kIntAlu, 0.34);  // three ALU ports
  set_rt(core, OpClass::kIntMul, 1.0);
  set_rt(core, OpClass::kInt64, 0.34);  // native 64-bit
  set_rt(core, OpClass::kFpAddSp, 1.0);
  set_rt(core, OpClass::kFpMulSp, 1.0);
  set_rt(core, OpClass::kFpAddDp, 1.0);  // dedicated FADD pipe
  set_rt(core, OpClass::kFpMulDp, 1.0);  // dedicated FMUL pipe
  core.vector_bits = 128;
  core.vector_dp = true;  // SSE2 packed double
  set_rt(core, OpClass::kVecSp, 1.0);
  set_rt(core, OpClass::kVecDp, 1.0);
  core.split_lsu = true;  // dedicated load and store ports
  set_rt(core, OpClass::kLoad32, 1.0);  // one load port
  set_rt(core, OpClass::kLoad64, 1.0);
  set_rt(core, OpClass::kLoad128, 1.0);
  set_rt(core, OpClass::kStore32, 1.0);  // one store port
  set_rt(core, OpClass::kStore64, 1.0);
  set_rt(core, OpClass::kStore128, 1.0);
  set_rt(core, OpClass::kBranch, 1.0);
  return core;
}

CoreConfig cortex_a15() {
  CoreConfig core;
  core.name = "Cortex-A15";
  core.freq_hz = 1.7 * GHz;
  core.issue_width = 3;
  core.out_of_order = true;
  core.miss_overlap = 0.40;
  core.mshr = 6.0;
  core.branch_mispredict_penalty = 15.0;
  core.int_registers = 12;
  core.fp_registers = 16;
  core.dp_scalar_registers = 28;
  core.fp_dep_latency_cycles = 4.0;
  core.tlb_entries = 32;
  core.tlb_associativity = 32;
  core.tlb_walk_cycles = 35;
  core.split_lsu = true;  // A15 has separate load and store pipelines

  set_rt(core, OpClass::kIntAlu, 0.5);
  set_rt(core, OpClass::kIntMul, 1.0);
  set_rt(core, OpClass::kInt64, 2.0);
  set_rt(core, OpClass::kFpAddSp, 0.5);
  set_rt(core, OpClass::kFpMulSp, 0.5);
  set_rt(core, OpClass::kFpAddDp, 1.0);  // VFPv4: fully pipelined DP
  set_rt(core, OpClass::kFpMulDp, 1.0);
  core.vector_bits = 128;   // full-width NEON datapath
  core.vector_dp = false;   // NEON still SP-only on ARMv7
  set_rt(core, OpClass::kVecSp, 1.0);
  set_rt(core, OpClass::kVecDp, 0.0);
  set_rt(core, OpClass::kLoad32, 1.0);
  set_rt(core, OpClass::kLoad64, 1.0);
  set_rt(core, OpClass::kLoad128, 1.0);
  set_rt(core, OpClass::kStore32, 1.0);
  set_rt(core, OpClass::kStore64, 1.0);
  set_rt(core, OpClass::kStore128, 1.5);
  set_rt(core, OpClass::kBranch, 1.0);
  return core;
}

CacheConfig cache(std::string name, std::uint64_t size, std::uint32_t line,
                  std::uint32_t ways, std::uint32_t latency, bool shared) {
  CacheConfig c;
  c.name = std::move(name);
  c.size_bytes = size;
  c.line_bytes = line;
  c.associativity = ways;
  c.latency_cycles = latency;
  c.shared = shared;
  return c;
}

}  // namespace

Platform snowball() {
  Platform p;
  p.name = "Snowball (ST-Ericsson A9500)";
  p.core = cortex_a9(/*has_neon=*/true);
  p.cores = 2;
  p.caches = {
      cache("L1d", 32 * KiB, 32, 4, 4, /*shared=*/false),
      cache("L2", 512 * KiB, 32, 8, 20, /*shared=*/true),
  };
  p.mem.kind = "LP-DDR2";
  p.mem.latency_ns = 110.0;
  p.mem.bandwidth_bytes_per_s = 0.8e9;  // sustainable, not peak
  p.mem.total_bytes = 796 * MiB;        // as reported by hwloc (Fig. 2b)
  p.mem.page_bytes = 4096;
  p.gpu = GpuConfig{"Mali-400", 10.0, /*general_purpose=*/false};
  p.power_w = 2.5;  // full board over USB; paper's conservative bound
  p.validate();
  return p;
}

Platform xeon_x5550() {
  Platform p;
  p.name = "Intel Xeon X5550 (Nehalem)";
  p.core = nehalem();
  p.cores = 4;  // hyperthreading disabled in the paper's runs
  p.caches = {
      cache("L1d", 32 * KiB, 64, 8, 4, /*shared=*/false),
      cache("L2", 256 * KiB, 64, 8, 10, /*shared=*/false),
      cache("L3", 8 * MiB, 64, 16, 38, /*shared=*/true),
  };
  p.mem.kind = "DDR3";
  p.mem.latency_ns = 65.0;
  p.mem.bandwidth_bytes_per_s = 16.0e9;  // triple channel, sustainable
  p.mem.total_bytes = 12 * GiB;
  p.mem.page_bytes = 4096;
  p.power_w = 95.0;  // TDP, the paper's accounting
  p.validate();
  return p;
}

Platform tegra2_node() {
  Platform p;
  p.name = "Tibidabo node (NVIDIA Tegra2)";
  p.core = cortex_a9(/*has_neon=*/false);
  p.cores = 2;
  p.caches = {
      cache("L1d", 32 * KiB, 32, 4, 4, /*shared=*/false),
      cache("L2", 1 * MiB, 32, 16, 25, /*shared=*/true),
  };
  p.mem.kind = "DDR2-667";
  p.mem.latency_ns = 100.0;
  p.mem.bandwidth_bytes_per_s = 1.0e9;
  p.mem.total_bytes = 1 * GiB;
  p.mem.page_bytes = 4096;
  // Tegra2 has a GPU but it is not programmable for general purpose use;
  // Tibidabo is being extended with Tegra3 + discrete GPU (paper Sec. VI-A).
  p.gpu = GpuConfig{"GeForce ULP", 5.0, /*general_purpose=*/false};
  p.power_w = 8.5;  // board-level (SoC + NIC + DRAM), per Tibidabo report
  p.validate();
  return p;
}

Platform exynos5() {
  Platform p;
  p.name = "Samsung Exynos 5 Dual";
  p.core = cortex_a15();
  p.cores = 2;
  p.caches = {
      cache("L1d", 32 * KiB, 64, 2, 4, /*shared=*/false),
      cache("L2", 1 * MiB, 64, 16, 21, /*shared=*/true),
  };
  p.mem.kind = "LP-DDR3";
  p.mem.latency_ns = 90.0;
  p.mem.bandwidth_bytes_per_s = 6.0e9;
  p.mem.total_bytes = 2 * GiB;
  p.mem.page_bytes = 4096;
  p.gpu = GpuConfig{"Mali-T604", 68.0, /*general_purpose=*/true};
  p.power_w = 5.0;  // paper's projection: ~100 GFLOPS at 5 W with the GPU
  p.validate();
  return p;
}

std::vector<Platform> all_builtin_platforms() {
  return {snowball(), xeon_x5550(), tegra2_node(), exynos5()};
}

}  // namespace mb::arch
