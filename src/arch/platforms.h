// Built-in descriptors for the machines studied in the paper.
//
// Microarchitectural parameters follow published characteristics of each
// part; they are calibrated so that the derived peaks match the machines'
// documented capabilities (e.g. Xeon X5550 peak DP = 42.6 GFLOPS, Cortex-A9
// VFP ~1 DP flop/cycle/core). See DESIGN.md for the calibration notes.
#pragma once

#include "arch/platform.h"

namespace mb::arch {

/// ST-Ericsson A9500 "Snowball" board: 2x Cortex-A9 @1 GHz with NEON
/// (single precision only), 32 KB L1 / 512 KB shared L2, LP-DDR2, 2.5 W
/// full-board power budget (USB-powered, the paper's conservative number).
Platform snowball();

/// Intel Xeon X5550: 4x Nehalem @2.66 GHz (hyperthreading disabled, as in
/// the paper), SSE 128-bit DP, 32K/256K/8M hierarchy, DDR3, 95 W TDP.
Platform xeon_x5550();

/// One Tibidabo compute node: NVIDIA Tegra2 = 2x Cortex-A9 @1 GHz *without*
/// NEON (Tegra2 omits the media extension), VFPv3-D16 FPU, 1 MB L2.
Platform tegra2_node();

/// Samsung Exynos 5 Dual (projected Mont-Blanc prototype): 2x Cortex-A15
/// @1.7 GHz + Mali-T604 GPU; the paper quotes ~100 GFLOPS at ~5 W.
Platform exynos5();

/// All built-in platforms (for registry-style iteration in tools/tests).
std::vector<Platform> all_builtin_platforms();

}  // namespace mb::arch
