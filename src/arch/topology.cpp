#include "arch/topology.h"

#include <sstream>

#include "support/units.h"

namespace mb::arch {
namespace {

std::string size_str(std::uint64_t bytes) {
  using support::GiB;
  using support::KiB;
  using support::MiB;
  std::ostringstream out;
  if (bytes >= GiB && bytes % GiB == 0)
    out << bytes / GiB << "GB";
  else if (bytes >= MiB)
    out << bytes / MiB << "MB";
  else
    out << bytes / KiB << "KB";
  return out.str();
}

}  // namespace

std::string render_topology(const Platform& p) {
  std::ostringstream out;
  out << "Machine (" << size_str(p.mem.total_bytes) << ")\n";
  out << "  Socket P#0\n";

  // Shared levels wrap the per-core column; private levels repeat per core.
  std::vector<const CacheConfig*> shared, private_levels;
  for (auto it = p.caches.rbegin(); it != p.caches.rend(); ++it) {
    if (it->shared)
      shared.push_back(&*it);
    else
      private_levels.push_back(&*it);
  }

  std::string indent = "    ";
  for (const CacheConfig* c : shared) {
    out << indent << c->name << " (" << size_str(c->size_bytes) << ")\n";
    indent += "  ";
  }
  for (std::uint32_t core = 0; core < p.cores; ++core) {
    std::string line;
    for (const CacheConfig* c : private_levels)
      line += c->name + " (" + size_str(c->size_bytes) + ") + ";
    out << indent << line << "Core P#" << core << " + PU P#" << core << "\n";
  }
  return out.str();
}

}  // namespace mb::arch
