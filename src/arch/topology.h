// hwloc-style ASCII rendering of a platform's topology (paper Figure 2).
#pragma once

#include <string>

#include "arch/platform.h"

namespace mb::arch {

/// Renders a nested Machine/Socket/Cache/Core/PU diagram similar to hwloc's
/// lstopo text output, e.g.
///
///   Machine (12GB)
///     Socket P#0
///       L3 (8192KB)
///         L2 (256KB) + L1 (32KB) + Core P#0 + PU P#0
///         ...
std::string render_topology(const Platform& p);

}  // namespace mb::arch
