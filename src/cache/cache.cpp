#include "cache/cache.h"

#include <bit>

#include "support/check.h"

namespace mb::cache {

Cache::Cache(const arch::CacheConfig& config)
    : config_(config),
      sets_(config.sets()),
      ways_(config.associativity),
      line_shift_(static_cast<std::uint32_t>(
          std::countr_zero(static_cast<std::uint64_t>(config.line_bytes)))),
      lines_(sets_ * ways_) {
  support::check(sets_ > 0 && (sets_ & (sets_ - 1)) == 0, "Cache",
                 "set count must be a nonzero power of two");
}

std::uint64_t Cache::set_index(std::uint64_t addr) const {
  return (addr >> line_shift_) & (sets_ - 1);
}

std::uint64_t Cache::tag(std::uint64_t addr) const {
  return addr >> line_shift_;  // full line address as tag; set is implied
}

bool Cache::access_line(std::uint64_t addr, bool write) {
  ++stats_.accesses;
  const std::uint64_t set = set_index(addr);
  const std::uint64_t t = tag(addr);
  Line* base = &lines_[set * ways_];

  // MRU-first search.
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == t) {
      // Move to front (true LRU).
      Line hit = base[w];
      for (std::uint32_t k = w; k > 0; --k) base[k] = base[k - 1];
      hit.dirty = hit.dirty || write;
      base[0] = hit;
      ++stats_.hits;
      return true;
    }
  }

  ++stats_.misses;
  // Evict the LRU way (last slot).
  Line& victim = base[ways_ - 1];
  if (victim.valid) {
    ++stats_.evictions;
    if (victim.dirty) ++stats_.writebacks;
  }
  for (std::uint32_t k = ways_ - 1; k > 0; --k) base[k] = base[k - 1];
  base[0] = Line{t, /*valid=*/true, /*dirty=*/write};
  return false;
}

void Cache::fill_line(std::uint64_t addr) {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t t = tag(addr);
  Line* base = &lines_[set * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == t) {
      // Already resident: refresh LRU position only.
      Line hit = base[w];
      for (std::uint32_t k = w; k > 0; --k) base[k] = base[k - 1];
      base[0] = hit;
      return;
    }
  }
  Line& victim = base[ways_ - 1];
  if (victim.valid) {
    ++stats_.evictions;
    if (victim.dirty) ++stats_.writebacks;
  }
  for (std::uint32_t k = ways_ - 1; k > 0; --k) base[k] = base[k - 1];
  base[0] = Line{t, /*valid=*/true, /*dirty=*/false};
}

std::uint32_t Cache::access(std::uint64_t addr, std::uint32_t bytes,
                            bool write) {
  support::check(bytes > 0, "Cache::access", "bytes must be positive");
  const std::uint64_t first = addr >> line_shift_;
  const std::uint64_t last = (addr + bytes - 1) >> line_shift_;
  std::uint32_t misses = 0;
  for (std::uint64_t line = first; line <= last; ++line)
    if (!access_line(line << line_shift_, write)) ++misses;
  return misses;
}

bool Cache::contains(std::uint64_t addr) const {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t t = tag(addr);
  const Line* base = &lines_[set * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w)
    if (base[w].valid && base[w].tag == t) return true;
  return false;
}

void Cache::flush() {
  for (auto& line : lines_) line = Line{};
}

}  // namespace mb::cache
