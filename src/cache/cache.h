// Trace-driven set-associative cache model.
//
// This is the heart of the paper's Section V reproduction: conflict misses
// caused by the OS's physical page placement (Sec. V-A.1) and the cache
// traffic growth under aggressive loop unrolling (Fig. 7) are both direct
// functions of how addresses map into a set-associative structure. The model
// is a classic write-back/write-allocate LRU cache operating on (physical)
// byte addresses.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/platform.h"

namespace mb::cache {

/// Statistics accumulated by one cache level.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;  ///< dirty evictions

  double miss_ratio() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

/// One level of set-associative cache with true-LRU replacement,
/// write-back + write-allocate policy.
class Cache {
 public:
  explicit Cache(const arch::CacheConfig& config);

  /// Accesses `bytes` bytes starting at `addr` (may straddle lines; each
  /// touched line is accessed once). Returns the number of line misses.
  std::uint32_t access(std::uint64_t addr, std::uint32_t bytes, bool write);

  /// Single-line probe: true on hit. Updates LRU and dirty state.
  bool access_line(std::uint64_t addr, bool write);

  /// Inserts a line without demand-access bookkeeping (prefetch fill):
  /// no access/hit/miss counts; evictions and writebacks still count
  /// (the displaced line really leaves). No-op if already resident.
  void fill_line(std::uint64_t addr);

  /// Probes without updating state (for tests and analyzers).
  bool contains(std::uint64_t addr) const;

  /// Invalidates all lines and clears dirty bits; stats are preserved.
  void flush();

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  const arch::CacheConfig& config() const { return config_; }
  std::uint64_t set_index(std::uint64_t addr) const;
  std::uint64_t tag(std::uint64_t addr) const;

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
  };

  arch::CacheConfig config_;
  std::uint64_t sets_;
  std::uint32_t ways_;
  std::uint32_t line_shift_;
  // ways_ lines per set, MRU-first order within a set.
  std::vector<Line> lines_;
  CacheStats stats_;
};

}  // namespace mb::cache
