#include "cache/hierarchy.h"

#include <algorithm>

#include "support/check.h"

namespace mb::cache {

Hierarchy::Hierarchy(std::span<const arch::CacheConfig> configs) {
  support::check(!configs.empty(), "Hierarchy", "need at least one level");
  levels_.reserve(configs.size());
  for (const auto& c : configs) levels_.emplace_back(c);
}

Hierarchy::Hierarchy(const arch::Platform& platform)
    : Hierarchy(std::span<const arch::CacheConfig>(platform.caches)) {}

void Hierarchy::set_prefetcher(const PrefetcherConfig& config) {
  support::check(config.train_threshold >= 1, "Hierarchy::set_prefetcher",
                 "train threshold must be >= 1");
  support::check(config.degree >= 1 && config.streams >= 1,
                 "Hierarchy::set_prefetcher",
                 "degree and streams must be >= 1");
  prefetcher_ = config;
  streams_.assign(config.streams, Stream{});
}

void Hierarchy::prefetch_line(std::uint64_t paddr) {
  // Already resident anywhere: leave it be (no stat effects).
  for (const auto& level : levels_) {
    if (level.contains(paddr)) return;
  }
  // Fill every level without demand bookkeeping; the fetched line still
  // pays DRAM traffic.
  for (auto& level : levels_) level.fill_line(paddr);
  ++prefetches_;
  memory_bytes_ += levels_.back().config().line_bytes;

  // Track it so a demand hit on this line keeps the stream running.
  if (outstanding_.insert(paddr).second) {
    outstanding_fifo_.push_back(paddr);
    const std::size_t cap =
        static_cast<std::size_t>(prefetcher_.streams) *
        prefetcher_.degree * 8;
    while (outstanding_fifo_.size() > cap) {
      outstanding_.erase(outstanding_fifo_.front());
      outstanding_fifo_.pop_front();
    }
  }
}

void Hierarchy::continue_stream(std::uint64_t paddr_line) {
  const std::uint32_t line = levels_.front().config().line_bytes;
  prefetch_line(paddr_line +
                static_cast<std::uint64_t>(prefetcher_.degree) * line);
}

void Hierarchy::train_prefetcher(std::uint64_t paddr_line) {
  const std::uint32_t line = levels_.front().config().line_bytes;
  // Match an existing stream expecting this line.
  for (auto& s : streams_) {
    if (!s.valid) continue;
    if (paddr_line == s.next_line) {
      ++s.confidence;
      s.next_line = paddr_line + line;
      if (s.confidence >= prefetcher_.train_threshold) {
        for (std::uint32_t d = 1; d <= prefetcher_.degree; ++d)
          prefetch_line(paddr_line + d * line);
      }
      return;
    }
  }
  // Allocate a new stream (round robin over invalid, else overwrite 0).
  for (auto& s : streams_) {
    if (!s.valid) {
      s.valid = true;
      s.confidence = 1;
      s.next_line = paddr_line + line;
      return;
    }
  }
  streams_[0] = Stream{paddr_line + line, 1, true};
}

AccessResult Hierarchy::access(std::uint64_t vaddr, std::uint64_t paddr,
                               std::uint32_t bytes, bool write) {
  AccessResult result;
  // Walk each line touched by the access through the hierarchy.
  const std::uint32_t line0 = levels_.front().config().line_bytes;
  const std::uint64_t first = paddr / line0;
  const std::uint64_t last = (paddr + bytes - 1) / line0;
  result.lines_touched = static_cast<std::uint32_t>(last - first + 1);

  std::size_t deepest = 0;
  for (std::uint64_t line = first; line <= last; ++line) {
    const std::uint64_t offset = line * line0 - paddr;
    const std::uint64_t pa = line * line0;
    const std::uint64_t va = vaddr + offset;
    if (prefetcher_.enabled) {
      const auto it = outstanding_.find(pa);
      if (it != outstanding_.end()) {
        outstanding_.erase(it);
        continue_stream(pa);
      }
    }
    std::size_t lvl = 0;
    for (; lvl < levels_.size(); ++lvl) {
      const std::uint64_t a =
          levels_[lvl].config().physically_indexed ? pa : va;
      if (levels_[lvl].access_line(a, write)) break;
    }
    if (lvl == levels_.size()) {
      ++memory_accesses_;
      const std::uint32_t llc_line = levels_.back().config().line_bytes;
      memory_bytes_ += llc_line;
      if (prefetcher_.enabled) train_prefetcher(pa);
    }
    deepest = std::max(deepest, lvl);
  }
  // Writeback traffic is accounted lazily in stats(): dirty evictions at
  // the LLC reach DRAM.
  result.hit_level = deepest;
  return result;
}

HierarchyStats Hierarchy::stats() const {
  HierarchyStats s;
  s.level.reserve(levels_.size());
  for (const auto& c : levels_) s.level.push_back(c.stats());
  s.memory_accesses = memory_accesses_;
  s.memory_bytes = memory_bytes_ +
                   levels_.back().stats().writebacks *
                       levels_.back().config().line_bytes;
  s.prefetches = prefetches_;
  return s;
}

void Hierarchy::reset_stats() {
  for (auto& c : levels_) c.reset_stats();
  memory_accesses_ = 0;
  memory_bytes_ = 0;
  prefetches_ = 0;
}

void Hierarchy::flush() {
  for (auto& c : levels_) c.flush();
}

}  // namespace mb::cache
