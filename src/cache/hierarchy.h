// Multi-level cache hierarchy.
//
// Models one core's view of the platform's cache levels: an access probes
// L1; on miss it proceeds to L2, and so on to memory. Fill policy is
// non-inclusive non-exclusive (NINE): a miss allocates in every level it
// traversed, evictions do not back-invalidate. Stats per level plus memory
// traffic are kept for the cost model.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <unordered_set>
#include <vector>

#include "arch/platform.h"
#include "cache/cache.h"

namespace mb::cache {

/// Outcome of one hierarchy access.
struct AccessResult {
  /// 0-based index of the level that hit; == levels() when served by memory.
  std::size_t hit_level = 0;
  std::uint32_t lines_touched = 1;
};

/// Aggregate view consumed by sim::CostModel.
struct HierarchyStats {
  std::vector<CacheStats> level;     ///< per cache level
  std::uint64_t memory_accesses = 0; ///< line fills from DRAM
  std::uint64_t memory_bytes = 0;    ///< fill + writeback traffic
  std::uint64_t prefetches = 0;      ///< lines pulled by the prefetcher
};

/// Sequential stream prefetcher configuration. Disabled by default: the
/// calibrated platform models bake average prefetch benefit into their
/// miss_overlap/MSHR parameters; enabling this gives the *mechanistic*
/// version for ablations ("what if the A9 had a Nehalem-class stream
/// prefetcher?").
struct PrefetcherConfig {
  bool enabled = false;
  /// Consecutive-line misses needed to confirm a stream.
  std::uint32_t train_threshold = 2;
  /// Lines fetched ahead once a stream is confirmed.
  std::uint32_t degree = 2;
  /// Concurrently tracked streams.
  std::uint32_t streams = 8;
};

class Hierarchy {
 public:
  /// Builds private copies of every level in `configs` (L1 first).
  explicit Hierarchy(std::span<const arch::CacheConfig> configs);

  /// Convenience: builds from a platform's cache list.
  explicit Hierarchy(const arch::Platform& platform);

  /// Installs (or disables) the stream prefetcher.
  void set_prefetcher(const PrefetcherConfig& config);
  const PrefetcherConfig& prefetcher() const { return prefetcher_; }

  /// Accesses `bytes` at the given address pair. Levels with
  /// `physically_indexed` use `paddr`; virtually-indexed levels use `vaddr`.
  /// The access must not straddle a page boundary (callers split there,
  /// since the physical mapping changes).
  AccessResult access(std::uint64_t vaddr, std::uint64_t paddr,
                      std::uint32_t bytes, bool write);

  /// Convenience for identity-mapped traces (tests, analyzers).
  AccessResult access(std::uint64_t addr, std::uint32_t bytes, bool write) {
    return access(addr, addr, bytes, write);
  }

  std::size_t levels() const { return levels_.size(); }
  const Cache& level(std::size_t i) const { return levels_[i]; }

  HierarchyStats stats() const;
  void reset_stats();
  void flush();

 private:
  struct Stream {
    std::uint64_t next_line = 0;
    std::uint32_t confidence = 0;
    bool valid = false;
  };

  /// Brings one line into every level without touching demand stats and
  /// remembers it as an outstanding prefetch (stream continuation).
  void prefetch_line(std::uint64_t paddr);
  void train_prefetcher(std::uint64_t paddr_line);
  /// Demand access touched a prefetched line: keep the stream ahead.
  void continue_stream(std::uint64_t paddr_line);

  std::vector<Cache> levels_;
  std::uint64_t memory_accesses_ = 0;
  std::uint64_t memory_bytes_ = 0;
  std::uint64_t prefetches_ = 0;
  PrefetcherConfig prefetcher_;
  std::vector<Stream> streams_;
  // Prefetched-but-not-yet-demanded lines (bounded FIFO window).
  std::unordered_set<std::uint64_t> outstanding_;
  std::deque<std::uint64_t> outstanding_fifo_;
};

}  // namespace mb::cache
