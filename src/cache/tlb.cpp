#include "cache/tlb.h"

#include <bit>

#include "support/check.h"

namespace mb::cache {

Tlb::Tlb(const TlbConfig& config)
    : config_(config),
      sets_(config.entries / config.associativity),
      ways_(config.associativity),
      page_shift_(static_cast<std::uint32_t>(
          std::countr_zero(static_cast<std::uint64_t>(config.page_bytes)))),
      entries_(config.entries) {
  support::check(config.entries > 0 && config.associativity > 0, "Tlb",
                 "entries and associativity must be positive");
  support::check(config.entries % config.associativity == 0, "Tlb",
                 "entries must divide evenly into sets");
  support::check((sets_ & (sets_ - 1)) == 0, "Tlb",
                 "set count must be a power of two");
  support::check((config.page_bytes & (config.page_bytes - 1)) == 0, "Tlb",
                 "page size must be a power of two");
}

bool Tlb::access(std::uint64_t vaddr) {
  ++stats_.accesses;
  const std::uint64_t vpn = vaddr >> page_shift_;
  const std::uint64_t set = vpn & (sets_ - 1);
  Entry* base = &entries_[set * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].vpn == vpn) {
      Entry hit = base[w];
      for (std::uint32_t k = w; k > 0; --k) base[k] = base[k - 1];
      base[0] = hit;
      ++stats_.hits;
      return true;
    }
  }
  ++stats_.misses;
  if (base[ways_ - 1].valid) ++stats_.evictions;
  for (std::uint32_t k = ways_ - 1; k > 0; --k) base[k] = base[k - 1];
  base[0] = Entry{vpn, true};
  return false;
}

void Tlb::flush() {
  for (auto& e : entries_) e = Entry{};
}

}  // namespace mb::cache
