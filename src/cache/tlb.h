// Translation lookaside buffer model.
//
// A small fully/set-associative cache of virtual page numbers. TLB misses
// charge a page-walk penalty in the cost model; with randomized physical
// page placement (Sec. V-A.1 of the paper) TLB behaviour stays a function of
// *virtual* pages, so it is modelled separately from the data caches.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.h"

namespace mb::cache {

struct TlbConfig {
  std::uint32_t entries = 32;
  std::uint32_t associativity = 32;  ///< == entries -> fully associative
  std::uint32_t page_bytes = 4096;
  std::uint32_t walk_penalty_cycles = 30;
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& config);

  /// Looks up the page of `vaddr`; true on hit. Misses install the entry.
  bool access(std::uint64_t vaddr);

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }
  void flush();

  const TlbConfig& config() const { return config_; }

 private:
  struct Entry {
    std::uint64_t vpn = 0;
    bool valid = false;
  };

  TlbConfig config_;
  std::uint32_t sets_;
  std::uint32_t ways_;
  std::uint32_t page_shift_;
  std::vector<Entry> entries_;  // MRU-first within each set
  CacheStats stats_;
};

}  // namespace mb::cache
