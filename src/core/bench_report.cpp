#include "core/bench_report.h"

#include <utility>

#include "support/check.h"
#include "support/version.h"

namespace mb::core {

using support::check;
using support::JsonValue;
using support::JsonWriter;

std::string_view direction_name(Direction d) {
  return d == Direction::kMinimize ? "minimize" : "maximize";
}

Direction parse_direction(std::string_view name) {
  if (name == "minimize") return Direction::kMinimize;
  if (name == "maximize") return Direction::kMaximize;
  support::fail("parse_direction",
                "unknown direction '" + std::string(name) + "'");
}

const BenchRecord* BenchReport::find(std::string_view name) const {
  for (const auto& r : records)
    if (r.name == name) return &r;
  return nullptr;
}

void BenchReport::add_platform(const PlatformInfo& info) {
  for (const auto& p : platforms)
    if (p.name == info.name) return;
  platforms.push_back(info);
}

void append_resultset(BenchReport& report, const ParamSpace& space,
                      const ResultSet& results, std::string_view base_name,
                      std::string_view platform, std::string_view metric,
                      std::string_view unit, Direction direction) {
  check(space.size() == results.variants(), "append_resultset",
        "space size does not match result variants");
  for (std::size_t v = 0; v < results.variants(); ++v) {
    BenchRecord record;
    record.name = std::string(base_name);
    if (space.dims() > 0) {
      record.name += "/";
      record.name += space.at(v).to_string();
    }
    record.platform = std::string(platform);
    record.metric = std::string(metric);
    record.unit = std::string(unit);
    record.direction = direction;
    record.samples = results.samples(v);
    check(report.find(record.name) == nullptr, "append_resultset",
          "duplicate record name '" + record.name + "'");
    report.records.push_back(std::move(record));
  }
}

std::string to_json(const BenchReport& report) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", kBenchSchemaName);
  w.field("schema_version", report.schema_version);
  w.field("suite", report.suite);
  w.field("tool", report.tool);
  w.field("tool_version", report.tool_version.empty()
                              ? std::string(support::version())
                              : report.tool_version);
  w.field("seed", report.seed);

  w.key("plan").begin_object();
  w.field("repetitions", report.plan.repetitions);
  w.field("randomize_order", report.plan.randomize_order);
  w.field("fresh_machine_per_rep", report.plan.fresh_machine_per_rep);
  w.field("seed", report.plan.seed);
  w.end_object();

  w.key("platforms").begin_array();
  for (const auto& p : report.platforms) {
    w.begin_object();
    w.field("name", p.name);
    w.field("cores", p.cores);
    w.field("freq_hz", p.freq_hz);
    w.field("power_w", p.power_w);
    w.field("peak_dp_gflops", p.peak_dp_gflops);
    w.field("peak_sp_gflops", p.peak_sp_gflops);
    w.end_object();
  }
  w.end_array();

  w.key("benchmarks").begin_array();
  for (const auto& r : report.records) {
    check(!r.samples.empty(), "to_json",
          "record '" + r.name + "' has no samples");
    w.begin_object();
    w.field("name", r.name);
    w.field("platform", r.platform);
    w.field("metric", r.metric);
    w.field("unit", r.unit);
    w.field("direction", direction_name(r.direction));
    w.key("samples").begin_array();
    for (double s : r.samples) w.value(s);
    w.end_array();

    const auto sum = r.summary();
    w.key("summary").begin_object();
    w.field("n", static_cast<std::uint64_t>(sum.n));
    w.field("mean", sum.mean);
    w.field("median", sum.median);
    w.field("stddev", sum.stddev);
    w.field("cv", stats::cv(r.samples));
    w.field("min", sum.min);
    w.field("max", sum.max);
    w.field("q1", sum.q1);
    w.field("q3", sum.q3);
    w.end_object();

    const auto split = r.modes();
    w.key("modes").begin_object();
    w.field("count", split.bimodal ? 2 : 1);
    if (split.bimodal) {
      w.field("low_center", split.low_center);
      w.field("high_center", split.high_center);
      w.field("separation", split.separation);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();

  if (!report.metrics.empty()) {
    w.key("metrics");
    obs::write_metrics_json(w, report.metrics);
  }

  if (report.failure.present) {
    w.key("failure").begin_object();
    w.key("dead_ranks").begin_array();
    for (std::uint32_t r : report.failure.dead_ranks) w.value(r);
    w.end_array();
    w.key("blocked").begin_array();
    for (const RunFailure::Blocked& b : report.failure.blocked) {
      w.begin_object();
      w.field("rank", b.rank);
      w.field("peer", b.peer);
      w.field("tag", static_cast<std::int64_t>(b.tag));
      w.field("op_index", b.op_index);
      w.field("since_s", b.since_s);
      w.field("timed_out", b.timed_out);
      w.end_object();
    }
    w.end_array();
    w.field("detected_s", report.failure.detected_s);
    w.end_object();
  }

  w.end_object();
  return w.str();
}

BenchReport report_from_json(std::string_view text) {
  return report_from_json(support::parse_json(text));
}

BenchReport report_from_json(const JsonValue& doc) {
  check(doc.is_object(), "report_from_json", "document is not an object");
  check(doc.at("schema").as_string() == kBenchSchemaName, "report_from_json",
        "unknown schema '" + doc.at("schema").as_string() + "'");
  const int version = static_cast<int>(doc.at("schema_version").as_number());
  check(version == kBenchSchemaVersion, "report_from_json",
        "unsupported schema version " + std::to_string(version));

  BenchReport report;
  report.schema_version = version;
  report.suite = doc.at("suite").as_string();
  report.tool = doc.at("tool").as_string();
  // Optional: reports from builds before the observability change.
  if (const JsonValue* tv = doc.find("tool_version"))
    report.tool_version = tv->as_string();
  report.seed = static_cast<std::uint64_t>(doc.at("seed").as_number());
  if (const JsonValue* m = doc.find("metrics"))
    report.metrics = obs::parse_metrics_json(*m);
  if (const JsonValue* f = doc.find("failure")) {
    report.failure.present = true;
    for (const JsonValue& r : f->at("dead_ranks").as_array())
      report.failure.dead_ranks.push_back(
          static_cast<std::uint32_t>(r.as_number()));
    for (const JsonValue& b : f->at("blocked").as_array()) {
      RunFailure::Blocked blocked;
      blocked.rank = static_cast<std::uint32_t>(b.at("rank").as_number());
      blocked.peer = static_cast<std::uint32_t>(b.at("peer").as_number());
      blocked.tag = static_cast<std::int32_t>(b.at("tag").as_number());
      blocked.op_index =
          static_cast<std::uint64_t>(b.at("op_index").as_number());
      blocked.since_s = b.at("since_s").as_number();
      blocked.timed_out = b.at("timed_out").as_bool();
      report.failure.blocked.push_back(blocked);
    }
    report.failure.detected_s = f->at("detected_s").as_number();
  }

  const JsonValue& plan = doc.at("plan");
  report.plan.repetitions =
      static_cast<std::uint32_t>(plan.at("repetitions").as_number());
  report.plan.randomize_order = plan.at("randomize_order").as_bool();
  report.plan.fresh_machine_per_rep =
      plan.at("fresh_machine_per_rep").as_bool();
  report.plan.seed = static_cast<std::uint64_t>(plan.at("seed").as_number());

  for (const JsonValue& p : doc.at("platforms").as_array()) {
    PlatformInfo info;
    info.name = p.at("name").as_string();
    info.cores = static_cast<std::uint32_t>(p.at("cores").as_number());
    info.freq_hz = p.at("freq_hz").as_number();
    info.power_w = p.at("power_w").as_number();
    info.peak_dp_gflops = p.at("peak_dp_gflops").as_number();
    info.peak_sp_gflops = p.at("peak_sp_gflops").as_number();
    report.platforms.push_back(std::move(info));
  }

  for (const JsonValue& b : doc.at("benchmarks").as_array()) {
    BenchRecord record;
    record.name = b.at("name").as_string();
    record.platform = b.at("platform").as_string();
    record.metric = b.at("metric").as_string();
    record.unit = b.at("unit").as_string();
    record.direction = parse_direction(b.at("direction").as_string());
    for (const JsonValue& s : b.at("samples").as_array())
      record.samples.push_back(s.as_number());
    check(!record.samples.empty(), "report_from_json",
          "record '" + record.name + "' has no samples");
    check(report.find(record.name) == nullptr, "report_from_json",
          "duplicate record name '" + record.name + "'");
    report.records.push_back(std::move(record));
  }
  return report;
}

}  // namespace mb::core
