// Machine-readable benchmark reports (the BENCH_*.json schema).
//
// The paper's methodological core (Sec. V-A.1, Fig. 5) is that results on
// these platforms are noisy and often bimodal, so conclusions must come from
// randomized repeated runs compared statistically. Human-oriented text tables
// cannot be diffed or gated on by CI; this module gives every benchmark a
// structured form instead: named sample series with their descriptive
// statistics and execution-mode analysis, plus the platform and measurement
// plan they came from, serialized to a versioned JSON document.
//
// Schema (version 1), informally:
//   {
//     "schema": "mb-bench-report", "schema_version": 1,
//     "suite": "...", "tool": "...", "tool_version": "1.0.0", "seed": N,
//     "metrics": [...],  // optional obs snapshot (obs/metrics.h)
//     "plan": {"repetitions": N, "randomize_order": B,
//              "fresh_machine_per_rep": B, "seed": N},
//     "platforms": [{"name": "...", "cores": N, "freq_hz": X,
//                    "power_w": X, "peak_dp_gflops": X,
//                    "peak_sp_gflops": X}, ...],
//     "benchmarks": [{"name": "...", "platform": "...", "metric": "...",
//                     "unit": "...", "direction": "minimize|maximize",
//                     "samples": [...],
//                     "summary": {"n":, "mean":, "median":, "stddev":,
//                                 "cv":, "min":, "max":, "q1":, "q3":},
//                     "modes": {"count": 1|2, "low_center":,
//                               "high_center":, "separation":}}, ...]
//   }
// "samples" is authoritative and preserved in measurement order; "summary"
// and "modes" are derived conveniences for downstream consumers and are
// recomputed (not trusted) when a report is parsed back.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/harness.h"
#include "core/param_space.h"
#include "core/resultset.h"
#include "obs/metrics.h"
#include "support/json.h"

namespace mb::core {

inline constexpr int kBenchSchemaVersion = 1;
inline constexpr std::string_view kBenchSchemaName = "mb-bench-report";

/// "minimize" / "maximize".
std::string_view direction_name(Direction d);
Direction parse_direction(std::string_view name);

/// Platform metadata embedded in a report (a flat summary of the
/// arch::Platform the measurements ran on; kept declarative so that core
/// does not depend on arch).
struct PlatformInfo {
  std::string name;
  std::uint32_t cores = 0;
  double freq_hz = 0.0;
  double power_w = 0.0;
  double peak_dp_gflops = 0.0;
  double peak_sp_gflops = 0.0;
};

/// One benchmark's sample series.
struct BenchRecord {
  std::string name;      ///< unique within a report, e.g. "membench/snowball/
                         ///< array_kb=48"
  std::string platform;  ///< PlatformInfo::name it ran on ("" if n/a)
  std::string metric;    ///< "seconds", "bandwidth_gbs", "mflops", ...
  std::string unit;      ///< display unit, e.g. "GB/s"
  Direction direction = Direction::kMinimize;
  std::vector<double> samples;  ///< in measurement order

  stats::Summary summary() const { return stats::summarize(samples); }
  /// Mode analysis; a single sample is trivially unimodal.
  stats::ModeSplit modes() const {
    return samples.size() < 2 ? stats::ModeSplit{}
                              : stats::split_modes(samples);
  }
  /// Robust central value used by comparisons.
  double center() const { return stats::median(samples); }
};

/// Structured account of a run that did not complete, embedded in the
/// report when a command observed one (e.g. an unrecovered `mbctl chaos`
/// scenario). Declarative mirror of mpi::FailureReport so core does not
/// depend on the mpi layer; `present` false omits the section entirely.
struct RunFailure {
  struct Blocked {
    std::uint32_t rank = 0;
    std::uint32_t peer = 0;  ///< the (dead or silent) rank waited on
    std::int32_t tag = 0;
    std::uint64_t op_index = 0;
    double since_s = 0.0;
    bool timed_out = false;
  };

  bool present = false;
  std::vector<std::uint32_t> dead_ranks;
  std::vector<Blocked> blocked;
  double detected_s = 0.0;
};

/// A complete report: metadata plus records.
struct BenchReport {
  int schema_version = kBenchSchemaVersion;
  std::string suite;  ///< e.g. "bench-suite", "membench"
  std::string tool;   ///< producing tool, e.g. "mbctl"
  /// Producing build ("1.0.0"); stamped by to_json() when empty so every
  /// emitted report is attributable.
  std::string tool_version;
  std::uint64_t seed = 0;
  MeasurementPlan plan;
  std::vector<PlatformInfo> platforms;
  std::vector<BenchRecord> records;
  /// Optional observability snapshot (obs::Registry::snapshot()) captured
  /// alongside the measurements: per-phase times and subsystem counters
  /// let `compare` attribute a regression to a phase instead of just
  /// flagging the end-to-end number. Empty = section omitted.
  std::vector<obs::MetricSample> metrics;
  /// Structured failure of an unrecovered run; omitted when not present.
  RunFailure failure;

  /// Record lookup by name; nullptr when absent.
  const BenchRecord* find(std::string_view name) const;

  /// Adds platform metadata once (deduplicated by name).
  void add_platform(const PlatformInfo& info);
};

/// Converts a harness ResultSet into one record per variant, named
/// "<base>/<point>" (e.g. "membench/snowball/array_kb=48").
void append_resultset(BenchReport& report, const ParamSpace& space,
                      const ResultSet& results, std::string_view base_name,
                      std::string_view platform, std::string_view metric,
                      std::string_view unit, Direction direction);

/// Serializes the report (pretty-printed, schema above).
std::string to_json(const BenchReport& report);

/// Parses a serialized report. Validates the schema name and version and
/// the presence/types of required fields; throws support::Error otherwise.
BenchReport report_from_json(std::string_view text);
BenchReport report_from_json(const support::JsonValue& doc);

}  // namespace mb::core
