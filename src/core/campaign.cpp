#include "core/campaign.h"

#include <sstream>

#include "obs/metrics.h"
#include "support/check.h"

namespace mb::core {

CampaignResult run_campaign(const std::vector<CampaignTask>& tasks,
                            const CampaignOptions& options) {
  CampaignResult result;
  result.samples.resize(tasks.size());
  result.stats.tasks = tasks.size();

  // Cache I/O happens on the calling thread only: hits before the pool
  // starts, stores after it drains. Workers never touch the filesystem.
  const ResultCache cache(options.cache_dir, options.cache,
                          options.cache_max_bytes);
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (auto hit = cache.lookup(tasks[i].key)) {
      result.samples[i] = std::move(*hit);
      ++result.stats.cache_hits;
    } else {
      pending.push_back(i);
    }
  }
  result.stats.cache_misses = cache.enabled() ? pending.size() : 0;
  result.stats.executed = pending.size();

  Executor executor(options.jobs);
  std::vector<unsigned char> done(pending.size(), 0);
  try {
    executor.run(pending.size(), [&](std::size_t j) {
      const std::size_t i = pending[j];
      result.samples[i] = tasks[i].run();
      done[j] = 1;
    });
  } catch (...) {
    // One task threw. The executor joins every worker before rethrowing,
    // so `done` and the completed sample slots are stable here: commit
    // them before propagating, and the re-run after the caller fixes the
    // failing point replays the finished work from cache instead of
    // re-simulating the whole campaign.
    for (std::size_t j = 0; j < pending.size(); ++j) {
      if (done[j])
        cache.store(tasks[pending[j]].key, result.samples[pending[j]]);
    }
    throw;
  }
  result.stats.steals = executor.steals();

  for (std::size_t i : pending) cache.store(tasks[i].key, result.samples[i]);
  result.stats.cache_evictions = cache.evict();
  result.stats.cache_quarantined = cache.quarantined();

  obs::metrics().counter("campaign.tasks").add(
      static_cast<double>(result.stats.tasks));
  obs::metrics().counter("campaign.steals").add(
      static_cast<double>(result.stats.steals));
  obs::metrics().counter("campaign.cache.hits").add(
      static_cast<double>(result.stats.cache_hits));
  obs::metrics().counter("campaign.cache.misses").add(
      static_cast<double>(result.stats.cache_misses));
  obs::metrics().counter("campaign.cache.evictions").add(
      static_cast<double>(result.stats.cache_evictions));
  obs::metrics().counter("campaign.cache.quarantined").add(
      static_cast<double>(result.stats.cache_quarantined));

  return result;
}

std::string campaign_summary(const CampaignStats& stats,
                             const CampaignOptions& options) {
  std::ostringstream out;
  out << "campaign: " << stats.tasks << " task(s), " << stats.cache_hits
      << " cache hit(s), " << stats.cache_misses << " miss(es), jobs "
      << options.jobs << ", " << stats.steals << " steal(s)";
  if (stats.cache_evictions > 0)
    out << ", " << stats.cache_evictions << " evicted";
  if (stats.cache_quarantined > 0)
    out << ", " << stats.cache_quarantined << " quarantined";
  if (!options.cache) out << " [cache disabled]";
  return out.str();
}

}  // namespace mb::core
