#include "core/campaign.h"

#include <sstream>

#include "obs/metrics.h"
#include "support/check.h"

namespace mb::core {

CampaignResult run_campaign(const std::vector<CampaignTask>& tasks,
                            const CampaignOptions& options) {
  CampaignResult result;
  result.samples.resize(tasks.size());
  result.stats.tasks = tasks.size();

  // Cache I/O happens on the calling thread only: hits before the pool
  // starts, stores after it drains. Workers never touch the filesystem.
  const ResultCache cache(options.cache_dir, options.cache);
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (auto hit = cache.lookup(tasks[i].key)) {
      result.samples[i] = std::move(*hit);
      ++result.stats.cache_hits;
    } else {
      pending.push_back(i);
    }
  }
  result.stats.cache_misses = cache.enabled() ? pending.size() : 0;
  result.stats.executed = pending.size();

  Executor executor(options.jobs);
  executor.run(pending.size(), [&](std::size_t j) {
    const std::size_t i = pending[j];
    result.samples[i] = tasks[i].run();
  });
  result.stats.steals = executor.steals();

  for (std::size_t i : pending) cache.store(tasks[i].key, result.samples[i]);

  obs::metrics().counter("campaign.tasks").add(
      static_cast<double>(result.stats.tasks));
  obs::metrics().counter("campaign.steals").add(
      static_cast<double>(result.stats.steals));
  obs::metrics().counter("campaign.cache.hits").add(
      static_cast<double>(result.stats.cache_hits));
  obs::metrics().counter("campaign.cache.misses").add(
      static_cast<double>(result.stats.cache_misses));

  return result;
}

std::string campaign_summary(const CampaignStats& stats,
                             const CampaignOptions& options) {
  std::ostringstream out;
  out << "campaign: " << stats.tasks << " task(s), " << stats.cache_hits
      << " cache hit(s), " << stats.cache_misses << " miss(es), jobs "
      << options.jobs << ", " << stats.steals << " steal(s)";
  if (!options.cache) out << " [cache disabled]";
  return out.str();
}

}  // namespace mb::core
