// Parallel campaign executor with deterministic output.
//
// The paper's experiments are sweeps — unroll degrees, element-size ×
// unrolling grids, rank counts — each repeated and randomized per §V.A.1,
// so a reproduction campaign is hundreds of independent simulations. This
// module shards them across a work-stealing thread pool while keeping the
// rendered output byte-identical to the serial run:
//  * every task's RNG seed is a pure function of the campaign seed and the
//    task's configuration (support::derive_seed), never of scheduling;
//  * results land in a position-indexed buffer and are consumed in task
//    order after the pool drains, so downstream rendering sees the serial
//    order regardless of completion order;
//  * the only nondeterministic observable (steal count) is reported out of
//    band, on stderr, never in reports.
//
// run_campaign() layers the content-addressed ResultCache underneath:
// hits are resolved on the calling thread before the pool starts, misses
// are executed and then persisted. Campaign totals are published to the
// global obs registry (campaign.tasks/steals, cache.hits/cache.misses)
// from the calling thread only — task bodies must not touch
// obs::metrics()/profiler(), which are single-threaded by design.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/result_cache.h"
#include "support/executor.h"

namespace mb::core {

/// Work-stealing index pool; lives in support/ so the sharded DES engine
/// can reuse it (see support/executor.h for the two execution modes).
using Executor = support::Executor;

/// Knobs surfaced as mbctl --jobs / --no-cache / --cache-dir /
/// --cache-max-bytes.
struct CampaignOptions {
  std::uint32_t jobs = 1;
  bool cache = true;
  std::string cache_dir = ".mb-cache";
  /// Cache size budget; 0 = unbounded. When exceeded after the campaign's
  /// stores, the oldest entries are evicted (ResultCache::evict()).
  std::uint64_t cache_max_bytes = 0;
};

/// Aggregate counters for one run_campaign() call (also published to the
/// obs registry). `steals` depends on thread timing and is only ever
/// reported on stderr.
struct CampaignStats {
  std::uint64_t tasks = 0;        ///< total tasks submitted
  std::uint64_t executed = 0;     ///< tasks actually simulated (misses)
  std::uint64_t steals = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;    ///< entries removed by the budget
  std::uint64_t cache_quarantined = 0;  ///< corrupt entries moved aside
};

/// One cacheable unit of work: the key states every input that determines
/// the samples; run() recomputes them from scratch.
struct CampaignTask {
  CacheKey key;
  std::function<std::vector<double>()> run;
};

/// Samples per task, in submission order (index-aligned with the input).
struct CampaignResult {
  std::vector<std::vector<double>> samples;
  CampaignStats stats;
};

/// Resolves cache hits, executes the misses on an Executor, stores their
/// results back, and publishes campaign.* / cache.* counters. Sample
/// vectors come back in task order — byte-identical whether a task was
/// simulated or replayed from cache, serial or parallel.
CampaignResult run_campaign(const std::vector<CampaignTask>& tasks,
                            const CampaignOptions& options);

/// One-line human summary for stderr, e.g.
/// "campaign: 12 task(s), 8 cache hit(s), 4 miss(es), jobs 4, 3 steal(s)".
std::string campaign_summary(const CampaignStats& stats,
                             const CampaignOptions& options);

}  // namespace mb::core
