#include "core/compare.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace mb::core {

namespace {

/// Pooled within-cluster standard deviation of a bimodal split — the
/// paper-appropriate noise scale: the spread *inside* each execution mode,
/// not the mode gap itself.
double pooled_within_mode_stddev(const std::vector<double>& xs,
                                 const stats::ModeSplit& split) {
  auto cluster = [&](const std::vector<std::size_t>& idx) {
    std::vector<double> vals;
    vals.reserve(idx.size());
    for (std::size_t i : idx) vals.push_back(xs[i]);
    return vals;
  };
  const auto lo = cluster(split.low_indices);
  const auto hi = cluster(split.high_indices);
  const double ss = (lo.size() > 1 ? (lo.size() - 1) * stats::variance(lo)
                                   : 0.0) +
                    (hi.size() > 1 ? (hi.size() - 1) * stats::variance(hi)
                                   : 0.0);
  const std::size_t dof =
      (lo.size() > 1 ? lo.size() - 1 : 0) + (hi.size() > 1 ? hi.size() - 1 : 0);
  return dof > 0 ? std::sqrt(ss / static_cast<double>(dof)) : 0.0;
}

/// What the baseline allows: the centers of its known execution modes and
/// the noise scale around them.
struct NoiseModel {
  double better_edge = 0.0;  ///< best acceptable center
  double worse_edge = 0.0;   ///< worst center the baseline itself showed
  double sigma = 0.0;
  bool bimodal = false;
};

NoiseModel model_of(const BenchRecord& r) {
  NoiseModel m;
  const auto split = r.modes();
  if (split.bimodal) {
    m.bimodal = true;
    m.sigma = pooled_within_mode_stddev(r.samples, split);
    const bool minimize = r.direction == Direction::kMinimize;
    m.worse_edge = minimize ? split.high_center : split.low_center;
    m.better_edge = minimize ? split.low_center : split.high_center;
  } else {
    m.better_edge = m.worse_edge = stats::mean(r.samples);
    m.sigma = stats::stddev(r.samples);
  }
  return m;
}

}  // namespace

std::string_view verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kUnchanged: return "unchanged";
    case Verdict::kImproved: return "improved";
    case Verdict::kRegressed: return "regressed";
    case Verdict::kBaselineOnly: return "baseline-only";
    case Verdict::kCandidateOnly: return "candidate-only";
  }
  support::fail("verdict_name", "invalid verdict");
}

CompareResult compare_reports(const BenchReport& baseline,
                              const BenchReport& candidate,
                              const CompareOptions& options) {
  CompareResult result;
  result.baseline_seed = baseline.seed;
  result.candidate_seed = candidate.seed;
  for (const auto& base : baseline.records) {
    Comparison c;
    c.name = base.name;
    c.metric = base.metric;
    c.unit = base.unit;
    c.baseline_center = base.center();

    const BenchRecord* cand = candidate.find(base.name);
    if (cand == nullptr) {
      c.verdict = Verdict::kBaselineOnly;
      ++result.unmatched;
      result.entries.push_back(std::move(c));
      continue;
    }
    support::check(cand->metric == base.metric &&
                       cand->direction == base.direction,
                   "compare_reports",
                   "record '" + base.name +
                       "' changed metric or direction between reports");

    const bool minimize = base.direction == Direction::kMinimize;
    const NoiseModel noise = model_of(base);
    c.baseline_bimodal = noise.bimodal;
    c.candidate_center = cand->center();

    const NoiseModel cand_noise = model_of(*cand);
    const double pooled = std::sqrt(
        (noise.sigma * noise.sigma + cand_noise.sigma * cand_noise.sigma) /
        2.0);

    // Distance past the worst / best center the baseline itself exhibited,
    // signed so that positive means outside the acceptance band.
    const double worse_by = minimize ? c.candidate_center - noise.worse_edge
                                     : noise.worse_edge - c.candidate_center;
    const double better_by = minimize
                                 ? noise.better_edge - c.candidate_center
                                 : c.candidate_center - noise.better_edge;

    if (c.baseline_center != 0.0) {
      const double raw =
          (c.candidate_center - c.baseline_center) / c.baseline_center;
      if (raw != 0.0) c.rel_delta = minimize ? raw : -raw;
    }

    // Noise below ~1e-9 of the signal is floating-point residue, not
    // measurement variability: report such comparisons as exact (sigma 0)
    // instead of astronomically significant.
    const auto sigmas = [&](double delta, double edge) {
      return pooled > 1e-9 * std::fabs(edge) ? delta / pooled : 0.0;
    };
    const auto significant = [&](double delta, double edge) {
      return delta > 0.0 && delta >= options.threshold_sigma * pooled &&
             delta >= options.min_rel_delta * std::fabs(edge);
    };
    if (significant(worse_by, noise.worse_edge)) {
      c.verdict = Verdict::kRegressed;
      c.sigma_delta = sigmas(worse_by, noise.worse_edge);
      ++result.regressions;
    } else if (significant(better_by, noise.better_edge)) {
      c.verdict = Verdict::kImproved;
      c.sigma_delta = sigmas(better_by, noise.better_edge);
      ++result.improvements;
    } else {
      c.verdict = Verdict::kUnchanged;
    }
    result.entries.push_back(std::move(c));
  }

  for (const auto& cand : candidate.records) {
    if (baseline.find(cand.name) != nullptr) continue;
    Comparison c;
    c.name = cand.name;
    c.metric = cand.metric;
    c.unit = cand.unit;
    c.verdict = Verdict::kCandidateOnly;
    c.candidate_center = cand.center();
    ++result.unmatched;
    result.entries.push_back(std::move(c));
  }
  return result;
}

std::vector<MetricDelta> attribute_metrics(const BenchReport& baseline,
                                           const BenchReport& candidate,
                                           double min_rel) {
  std::vector<MetricDelta> deltas;
  if (baseline.metrics.empty() || candidate.metrics.empty()) return deltas;

  // MetricSample::value is the counter/gauge value or the histogram sum —
  // either way the series' scalar magnitude.
  std::vector<bool> cand_matched(candidate.metrics.size(), false);
  for (const auto& base : baseline.metrics) {
    const std::string key = base.key();
    bool matched = false;
    for (std::size_t i = 0; i < candidate.metrics.size(); ++i) {
      const auto& cand = candidate.metrics[i];
      if (cand.key() != key) continue;
      matched = true;
      cand_matched[i] = true;
      MetricDelta d;
      d.key = key;
      d.baseline = base.value;
      d.candidate = cand.value;
      if (d.baseline != 0.0) {
        d.rel_delta = (d.candidate - d.baseline) / std::fabs(d.baseline);
      } else if (d.candidate != 0.0) {
        d.rel_delta = d.candidate > 0.0 ? 1.0 : -1.0;  // appeared from zero
      }
      if (std::fabs(d.rel_delta) >= min_rel) deltas.push_back(std::move(d));
      break;
    }
    if (!matched && base.value != 0.0) {
      // Series vanished from the candidate: full negative movement.
      MetricDelta d;
      d.key = key;
      d.baseline = base.value;
      d.rel_delta = -1.0;
      d.presence = MetricDelta::Presence::kBaselineOnly;
      deltas.push_back(std::move(d));
    }
  }
  for (std::size_t i = 0; i < candidate.metrics.size(); ++i) {
    const auto& cand = candidate.metrics[i];
    if (cand_matched[i] || cand.value == 0.0) continue;
    // Series appeared in the candidate only: full positive movement.
    MetricDelta d;
    d.key = cand.key();
    d.candidate = cand.value;
    d.rel_delta = 1.0;
    d.presence = MetricDelta::Presence::kCandidateOnly;
    deltas.push_back(std::move(d));
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const MetricDelta& a, const MetricDelta& b) {
              if (std::fabs(a.rel_delta) != std::fabs(b.rel_delta))
                return std::fabs(a.rel_delta) > std::fabs(b.rel_delta);
              return a.key < b.key;
            });
  return deltas;
}

}  // namespace mb::core
