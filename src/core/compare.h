// Noise-aware comparison of two benchmark reports.
//
// The naive gate — "candidate mean is X% above baseline mean" — is exactly
// what the paper shows to be wrong on these platforms: Fig. 5's bimodal
// bandwidth distributions would make any mean-based check fire constantly
// even when nothing changed. This module compares a candidate report
// against a baseline per record, using
//  * the baseline's execution-mode structure (a candidate landing inside a
//    mode the baseline already exhibited is not a regression),
//  * pooled sample variability (a delta must exceed `threshold_sigma`
//    pooled standard deviations AND a minimum relative size before it is
//    believed),
//  * the candidate's median (robust against the candidate's own outliers).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/bench_report.h"

namespace mb::core {

struct CompareOptions {
  /// A delta must exceed this many pooled standard deviations.
  double threshold_sigma = 3.0;
  /// ... and this fraction of the baseline center (guards the
  /// zero-variance case and statistically-significant-but-tiny deltas).
  double min_rel_delta = 0.02;
};

enum class Verdict {
  kUnchanged,      ///< within noise / within known baseline modes
  kImproved,       ///< better beyond noise
  kRegressed,      ///< worse beyond noise — the gate trips on this
  kBaselineOnly,   ///< record disappeared from the candidate
  kCandidateOnly,  ///< new record with no baseline
};

std::string_view verdict_name(Verdict v);

/// One record's comparison outcome.
struct Comparison {
  std::string name;
  std::string metric;
  std::string unit;
  Verdict verdict = Verdict::kUnchanged;
  double baseline_center = 0.0;   ///< baseline median
  double candidate_center = 0.0;  ///< candidate median
  /// Signed relative delta vs the baseline median; positive = worse in the
  /// record's direction.
  double rel_delta = 0.0;
  /// Distance past the acceptance edge in pooled standard deviations
  /// (0 when inside the acceptance band or when noise is zero).
  double sigma_delta = 0.0;
  bool baseline_bimodal = false;
};

struct CompareResult {
  std::vector<Comparison> entries;
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t unmatched = 0;  ///< baseline-only + candidate-only
  /// Seeds the two reports were generated with. When verdicts differ and
  /// the seeds differ too, the delta may be placement/scheduler noise
  /// rather than a code change — the CLI surfaces both seeds so this is
  /// diagnosable from the log alone.
  std::uint64_t baseline_seed = 0;
  std::uint64_t candidate_seed = 0;

  bool has_regressions() const { return regressions > 0; }
  bool seeds_differ() const { return baseline_seed != candidate_seed; }
};

/// Compares every record of `baseline` against `candidate` by name.
/// Records present in only one report are included with the corresponding
/// *Only verdict (counted in `unmatched`, never as regressions). A name
/// that matches with a different metric or direction throws support::Error
/// — that is a schema misuse, not a measurement.
CompareResult compare_reports(const BenchReport& baseline,
                              const BenchReport& candidate,
                              const CompareOptions& options = {});

/// One observability metric's movement between two reports.
struct MetricDelta {
  /// Whether the series exists in both reports or only one side. A
  /// one-sided series is evidence too (a phase that appeared or vanished),
  /// so it is listed explicitly instead of being silently dropped.
  enum class Presence { kBoth, kBaselineOnly, kCandidateOnly };

  std::string key;  ///< series key, e.g. "mpi.time_s{kind=collective}"
  double baseline = 0.0;
  double candidate = 0.0;
  double rel_delta = 0.0;  ///< (candidate - baseline) / |baseline|
  Presence presence = Presence::kBoth;
};

/// Pairs the optional "metrics" sections of two reports by series key and
/// returns every series whose relative movement exceeds `min_rel`, sorted
/// by |rel_delta| descending. Series present on only one side are always
/// included (unless zero-valued) with `presence` set and rel_delta ±1, so
/// a diff can never silently drop evidence. Purely informational — this
/// is how a confirmed end-to-end regression gets *attributed* to a phase
/// (the biggest mover names the suspect subsystem); it never gates.
/// Histogram series compare by their sum. Empty when either report lacks
/// a metrics section entirely (profiling was off).
std::vector<MetricDelta> attribute_metrics(const BenchReport& baseline,
                                           const BenchReport& candidate,
                                           double min_rel = 0.01);

}  // namespace mb::core
