#include "core/harness.h"

#include <optional>

#include "core/campaign.h"
#include "obs/profiler.h"
#include "support/check.h"

namespace mb::core {

Harness::Harness(MachineFactory factory,
                 std::unique_ptr<os::SchedulerModel> scheduler,
                 MeasurementPlan plan)
    : factory_(std::move(factory)),
      scheduler_(std::move(scheduler)),
      plan_(plan) {
  support::check(static_cast<bool>(factory_), "Harness",
                 "machine factory required");
  support::check(plan_.repetitions >= 1, "Harness",
                 "at least one repetition");
}

ResultSet Harness::run(const ParamSpace& space, const Workload& workload) {
  Executor inline_executor(1);
  return run(space, workload, inline_executor);
}

ResultSet Harness::run(const ParamSpace& space, const Workload& workload,
                       Executor& executor) {
  support::check(!space.empty(), "Harness::run", "empty parameter space");
  support::check(static_cast<bool>(workload), "Harness::run",
                 "workload required");
  obs::ScopedSpan span(obs::profiler(), "harness/run");

  const std::size_t variants = space.size();
  support::Rng rng(plan_.seed);

  // The measurement schedule: every (variant, repetition) pair once.
  struct Cell {
    std::size_t variant;
    std::uint32_t rep;
  };
  std::vector<Cell> schedule;
  schedule.reserve(variants * plan_.repetitions);
  for (std::uint32_t rep = 0; rep < plan_.repetitions; ++rep)
    for (std::size_t v = 0; v < variants; ++v) schedule.push_back({v, rep});
  if (plan_.randomize_order) rng.shuffle(schedule);

  // Everything stochastic is fixed up front, in schedule order, so the
  // result cannot depend on worker count or completion order:
  //  * the scheduler disturbance stream is drawn here (it is a process of
  //    its own, independent of the measured values);
  //  * machine seeds are a pure function of plan seed + slot, exactly as
  //    in the serial interleaved walk.
  std::vector<double> slowdowns;
  if (scheduler_ != nullptr) {
    slowdowns.resize(schedule.size());
    for (double& s : slowdowns) s = scheduler_->next_slowdown();
  }

  // Shard by machine slot: cells sharing a machine must run in schedule
  // order on one thread (machine state evolves across measurements), but
  // distinct slots are independent.
  const std::size_t slots = plan_.fresh_machine_per_rep ? plan_.repetitions : 1;
  std::vector<std::vector<std::size_t>> cells_by_slot(slots);
  for (std::size_t pos = 0; pos < schedule.size(); ++pos) {
    const Cell& cell = schedule[pos];
    cells_by_slot[plan_.fresh_machine_per_rep ? cell.rep : 0].push_back(pos);
  }

  std::vector<double> values(schedule.size());
  executor.run(slots, [&](std::size_t slot) {
    std::uint64_t mix = plan_.seed + slot;
    sim::Machine machine = factory_(support::splitmix64(mix));
    for (std::size_t pos : cells_by_slot[slot]) {
      const Cell& cell = schedule[pos];
      const Point point = space.at(cell.variant);
      double value = workload(point, machine);
      if (scheduler_ != nullptr) value *= slowdowns[pos];
      values[pos] = value;
    }
  });

  // Commit in schedule order — the ResultSet is indistinguishable from
  // the serial walk's.
  ResultSet results(variants);
  std::size_t order = 0;
  for (std::size_t pos = 0; pos < schedule.size(); ++pos) {
    results.add(schedule[pos].variant, values[pos], order++);
  }
  return results;
}

}  // namespace mb::core
