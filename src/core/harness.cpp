#include "core/harness.h"

#include <optional>

#include "obs/profiler.h"
#include "support/check.h"

namespace mb::core {

Harness::Harness(MachineFactory factory,
                 std::unique_ptr<os::SchedulerModel> scheduler,
                 MeasurementPlan plan)
    : factory_(std::move(factory)),
      scheduler_(std::move(scheduler)),
      plan_(plan) {
  support::check(static_cast<bool>(factory_), "Harness",
                 "machine factory required");
  support::check(plan_.repetitions >= 1, "Harness",
                 "at least one repetition");
}

ResultSet Harness::run(const ParamSpace& space, const Workload& workload) {
  support::check(!space.empty(), "Harness::run", "empty parameter space");
  support::check(static_cast<bool>(workload), "Harness::run",
                 "workload required");
  obs::ScopedSpan span(obs::profiler(), "harness/run");

  const std::size_t variants = space.size();
  ResultSet results(variants);
  support::Rng rng(plan_.seed);

  // The measurement schedule: every (variant, repetition) pair once.
  struct Cell {
    std::size_t variant;
    std::uint32_t rep;
  };
  std::vector<Cell> schedule;
  schedule.reserve(variants * plan_.repetitions);
  for (std::uint32_t rep = 0; rep < plan_.repetitions; ++rep)
    for (std::size_t v = 0; v < variants; ++v) schedule.push_back({v, rep});
  if (plan_.randomize_order) rng.shuffle(schedule);

  // Per-repetition machines (fresh placement per rep) or one shared.
  std::vector<std::optional<sim::Machine>> machines(
      plan_.fresh_machine_per_rep ? plan_.repetitions : 1);

  std::size_t order = 0;
  for (const Cell& cell : schedule) {
    const std::size_t slot = plan_.fresh_machine_per_rep ? cell.rep : 0;
    if (!machines[slot]) {
      std::uint64_t mix = plan_.seed + slot;
      machines[slot].emplace(factory_(support::splitmix64(mix)));
    }
    const Point point = space.at(cell.variant);
    double value = workload(point, *machines[slot]);
    if (scheduler_ != nullptr) value *= scheduler_->next_slowdown();
    results.add(cell.variant, value, order++);
  }
  return results;
}

}  // namespace mb::core
