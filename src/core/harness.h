// Randomized benchmarking harness.
//
// Section V-A.1's lesson: on these platforms, "benchmarks and auto-tuning
// methods need to be thoroughly randomized to avoid experimental bias" —
// physical page placement is drawn per run and sticks, so measuring
// variants in a fixed order on one machine state confounds variant effects
// with placement effects. The harness therefore:
//
//  * interleaves (variant, repetition) measurements in a shuffled order,
//  * optionally rebuilds the machine per repetition (fresh page placement,
//    a fresh "run" in the paper's sense),
//  * applies an OS scheduler disturbance model to every measurement.
#pragma once

#include <functional>
#include <memory>

#include "core/param_space.h"
#include "core/resultset.h"
#include "os/scheduler.h"
#include "sim/machine.h"
#include "support/executor.h"
#include "support/rng.h"

namespace mb::core {

using Executor = support::Executor;

/// A tunable workload: runs one variant on a machine, returns the metric
/// in *time-like* units (lower is better; bandwidths are inverted by the
/// caller or compared with Direction::kMaximize on 1/t).
using Workload =
    std::function<double(const Point&, sim::Machine&)>;

/// Builds a fresh machine for a "new run" (new boot / new page placement).
using MachineFactory = std::function<sim::Machine(std::uint64_t seed)>;

struct MeasurementPlan {
  std::uint32_t repetitions = 42;  ///< the paper's Fig. 5 uses 42
  bool randomize_order = true;
  /// Rebuild the machine each repetition: each rep sees a fresh physical
  /// page placement (between-run variability). When false, all reps share
  /// one machine (within-run stability, the paper's malloc/free reuse).
  bool fresh_machine_per_rep = true;
  std::uint64_t seed = 1;
};

class Harness {
 public:
  /// `scheduler` may be null (no disturbance).
  Harness(MachineFactory factory, std::unique_ptr<os::SchedulerModel> scheduler,
          MeasurementPlan plan);

  /// Measures every point of `space` according to the plan.
  ResultSet run(const ParamSpace& space, const Workload& workload);

  /// Same measurement, sharded across `executor` by machine slot (one
  /// task per repetition when fresh_machine_per_rep, else effectively
  /// serial). The returned ResultSet is byte-identical to the serial
  /// overload for any worker count: the shuffled schedule, per-slot
  /// machine seeds and scheduler disturbance draws are all fixed up front
  /// in schedule order, and results are committed in schedule order after
  /// the pool drains. `workload` must be safe to call concurrently on
  /// distinct machines and must not touch obs::metrics()/profiler().
  ResultSet run(const ParamSpace& space, const Workload& workload,
                Executor& executor);

  const MeasurementPlan& plan() const { return plan_; }

 private:
  MachineFactory factory_;
  std::unique_ptr<os::SchedulerModel> scheduler_;
  MeasurementPlan plan_;
};

}  // namespace mb::core
