#include "core/param_space.h"

#include <sstream>

#include "support/check.h"

namespace mb::core {

Point::Point(std::vector<std::string> names,
             std::vector<std::int64_t> values)
    : names_(std::move(names)), values_(std::move(values)) {
  support::check(names_.size() == values_.size(), "Point",
                 "names and values must align");
}

std::int64_t Point::get(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return values_[i];
  support::fail("Point::get", "unknown dimension name");
}

std::string Point::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (i) out << ' ';
    out << names_[i] << '=' << values_[i];
  }
  return out.str();
}

ParamSpace& ParamSpace::add(std::string name,
                            std::vector<std::int64_t> values) {
  support::check(!values.empty(), "ParamSpace::add",
                 "dimension needs at least one value");
  for (const auto& d : dims_)
    support::check(d.name != name, "ParamSpace::add",
                   "duplicate dimension name");
  dims_.push_back({std::move(name), std::move(values)});
  return *this;
}

ParamSpace& ParamSpace::add_range(std::string name, std::int64_t lo,
                                  std::int64_t hi, std::int64_t step) {
  support::check(step > 0, "ParamSpace::add_range", "step must be positive");
  support::check(lo <= hi, "ParamSpace::add_range", "lo must be <= hi");
  std::vector<std::int64_t> values;
  for (std::int64_t v = lo; v <= hi; v += step) values.push_back(v);
  return add(std::move(name), std::move(values));
}

std::size_t ParamSpace::size() const {
  if (dims_.empty()) return 0;
  std::size_t n = 1;
  for (const auto& d : dims_) n *= d.values.size();
  return n;
}

Point ParamSpace::at(std::size_t index) const {
  support::check(index < size(), "ParamSpace::at", "index out of range");
  const auto c = coords(index);
  std::vector<std::string> names;
  std::vector<std::int64_t> values;
  names.reserve(dims_.size());
  values.reserve(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    names.push_back(dims_[d].name);
    values.push_back(dims_[d].values[c[d]]);
  }
  return Point(std::move(names), std::move(values));
}

std::size_t ParamSpace::index_of(
    const std::vector<std::size_t>& value_indices) const {
  support::check(value_indices.size() == dims_.size(),
                 "ParamSpace::index_of", "wrong coordinate count");
  std::size_t index = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    support::check(value_indices[d] < dims_[d].values.size(),
                   "ParamSpace::index_of", "coordinate out of range");
    index = index * dims_[d].values.size() + value_indices[d];
  }
  return index;
}

std::vector<std::size_t> ParamSpace::coords(std::size_t index) const {
  support::check(index < size(), "ParamSpace::coords", "index out of range");
  std::vector<std::size_t> c(dims_.size());
  for (std::size_t d = dims_.size(); d-- > 0;) {
    c[d] = index % dims_[d].values.size();
    index /= dims_[d].values.size();
  }
  return c;
}

}  // namespace mb::core
