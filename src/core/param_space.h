// Tuning parameter spaces.
//
// The paper's Section V concludes that optimization on low-power platforms
// "may have to explore more systematically parameter space, rather than
// being guided by developers' intuition". A ParamSpace is the explicit
// cartesian product of named dimensions (unroll degree, element width,
// block size, ...) that the search strategies in core/search.h walk.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mb::core {

/// One point of a parameter space: a value per dimension.
class Point {
 public:
  Point(std::vector<std::string> names, std::vector<std::int64_t> values);

  std::int64_t get(std::string_view name) const;
  std::int64_t operator[](std::size_t dim) const { return values_[dim]; }
  std::size_t dims() const { return values_.size(); }
  const std::vector<std::int64_t>& values() const { return values_; }

  /// "unroll=4 elem_bits=64"
  std::string to_string() const;

  bool operator==(const Point& other) const {
    return values_ == other.values_;
  }

 private:
  std::vector<std::string> names_;  // shared ordering with the space
  std::vector<std::int64_t> values_;
};

class ParamSpace {
 public:
  /// Adds a dimension with explicit values (non-empty).
  ParamSpace& add(std::string name, std::vector<std::int64_t> values);

  /// Adds an integer range [lo, hi] with a stride.
  ParamSpace& add_range(std::string name, std::int64_t lo, std::int64_t hi,
                        std::int64_t step = 1);

  std::size_t dims() const { return dims_.size(); }
  const std::string& name(std::size_t dim) const { return dims_[dim].name; }
  const std::vector<std::int64_t>& values(std::size_t dim) const {
    return dims_[dim].values;
  }

  /// Total number of points (product of dimension sizes).
  std::size_t size() const;
  /// True when the space has no dimensions (readability-container-size-
  /// empty pairs this with size() so `!empty()` reads over `size() > 0`).
  bool empty() const { return dims_.empty(); }

  /// The i-th point in row-major order (last dimension fastest).
  Point at(std::size_t index) const;

  /// Index of the point with the given per-dimension value indices.
  std::size_t index_of(const std::vector<std::size_t>& value_indices) const;

  /// Per-dimension value indices of the i-th point (inverse of index_of).
  std::vector<std::size_t> coords(std::size_t index) const;

 private:
  struct Dim {
    std::string name;
    std::vector<std::int64_t> values;
  };
  std::vector<Dim> dims_;
};

}  // namespace mb::core
