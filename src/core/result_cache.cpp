#include "core/result_cache.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "support/hash.h"
#include "support/json.h"

namespace mb::core {

namespace fs = std::filesystem;

std::uint64_t CacheKey::hash() const {
  support::Hasher h;
  h.str(kCacheEntrySchemaName)
      .u64(static_cast<std::uint64_t>(kCacheEntrySchemaVersion))
      .str(tool_version)
      .str(suite)
      .str(platform)
      .str(point)
      .u64(seed)
      .u64(fault_plan_hash);
  return h.digest();
}

std::string CacheKey::digest() const { return support::hex64(hash()); }

ResultCache::ResultCache() = default;

ResultCache::ResultCache(std::string dir, bool enabled,
                         std::uint64_t max_bytes)
    : dir_(std::move(dir)),
      enabled_(enabled && !dir_.empty()),
      max_bytes_(max_bytes) {}

std::string ResultCache::entry_path(const CacheKey& key) const {
  // Two-hex-digit fan-out keeps directories small on big campaigns.
  const std::string digest = key.digest();
  return dir_ + "/" + digest.substr(0, 2) + "/" + digest + ".json";
}

std::optional<std::vector<double>> ResultCache::lookup(
    const CacheKey& key) const {
  if (!enabled_) return std::nullopt;
  try {
    std::ifstream in(entry_path(key));
    if (!in) return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();
    const support::JsonValue doc = support::parse_json(text.str());
    if (doc.at("schema").as_string() != kCacheEntrySchemaName) {
      return std::nullopt;
    }
    if (static_cast<int>(doc.at("schema_version").as_number()) !=
        kCacheEntrySchemaVersion) {
      return std::nullopt;
    }
    // The entry echoes its full key; require an exact match so a digest
    // collision (or a hand-edited file) reads as a miss, never as a wrong
    // result. Seeds/hashes are stored as strings to keep 64-bit values
    // exact through the double-based JSON number path.
    const support::JsonValue& k = doc.at("key");
    if (k.at("tool_version").as_string() != key.tool_version ||
        k.at("suite").as_string() != key.suite ||
        k.at("platform").as_string() != key.platform ||
        k.at("point").as_string() != key.point ||
        k.at("seed").as_string() != std::to_string(key.seed) ||
        k.at("fault_plan_hash").as_string() !=
            support::hex64(key.fault_plan_hash)) {
      return std::nullopt;
    }
    std::vector<double> samples;
    for (const support::JsonValue& s : doc.at("samples").as_array()) {
      samples.push_back(s.as_number());
    }
    return samples;
  } catch (const std::exception&) {
    // Unparsable / truncated / wrong shape: quarantine rather than delete,
    // so the broken file stays inspectable but is never re-parsed. Rename
    // failures (e.g. the file vanished) still degrade to a plain miss.
    try {
      const fs::path path = entry_path(key);
      fs::rename(path, fs::path(path.string() + ".quarantined"));
      ++quarantined_;
    } catch (const std::exception&) {
    }
    return std::nullopt;
  }
}

std::uint64_t ResultCache::evict() const {
  if (!enabled_ || max_bytes_ == 0) return 0;
  struct Entry {
    fs::file_time_type mtime;
    std::string path;
    std::uint64_t size = 0;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  try {
    for (const auto& item : fs::recursive_directory_iterator(dir_)) {
      if (!item.is_regular_file()) continue;
      // Only live entries participate: quarantined files and in-flight
      // `.tmp.<pid>` writes are neither budgeted nor removed.
      if (item.path().extension() != ".json") continue;
      Entry e;
      e.mtime = item.last_write_time();
      e.path = item.path().string();
      e.size = item.file_size();
      total += e.size;
      entries.push_back(std::move(e));
    }
    if (total <= max_bytes_) return 0;
    // Oldest first; equal mtimes (coarse clocks) tie-break on path so the
    // eviction order is deterministic.
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                if (a.mtime != b.mtime) return a.mtime < b.mtime;
                return a.path < b.path;
              });
    std::uint64_t evicted = 0;
    for (const Entry& e : entries) {
      if (total <= max_bytes_) break;
      fs::remove(e.path);
      total -= e.size;
      ++evicted;
    }
    return evicted;
  } catch (const std::exception&) {
    return 0;  // a failing scan must never fail the campaign
  }
}

bool ResultCache::store(const CacheKey& key,
                        const std::vector<double>& samples) const {
  if (!enabled_) return false;
  try {
    const fs::path path = entry_path(key);
    fs::create_directories(path.parent_path());

    support::JsonWriter w;
    w.begin_object();
    w.field("schema", kCacheEntrySchemaName);
    w.field("schema_version", kCacheEntrySchemaVersion);
    w.key("key").begin_object();
    w.field("tool_version", key.tool_version);
    w.field("suite", key.suite);
    w.field("platform", key.platform);
    w.field("point", key.point);
    w.field("seed", std::to_string(key.seed));
    w.field("fault_plan_hash", support::hex64(key.fault_plan_hash));
    w.end_object();
    w.key("samples").begin_array();
    for (double s : samples) w.value(s);
    w.end_array();
    w.end_object();

    // Atomic publish: concurrent campaigns see either no entry or a
    // complete one. The pid suffix keeps two processes' temp files apart.
    const fs::path tmp =
        path.string() + ".tmp." + std::to_string(::getpid());
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) return false;
      out << w.str() << "\n";
      if (!out) return false;
    }
    fs::rename(tmp, path);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace mb::core
