// Content-addressed cache for simulation outcomes.
//
// A campaign re-run after touching one parameter point should only
// re-simulate that point. Every measurement task is addressed by a
// CacheKey — the full set of inputs that determine its samples: tool
// version, suite, platform, canonical parameter-point string, seed and
// fault-plan hash. The stable FNV-1a digest of that key (support/hash.h)
// names a JSON fragment under the cache directory
// (`<dir>/<2 hex>/<16 hex>.json`, mb-cache-entry v1); a hit replays the
// stored samples verbatim, so cached and fresh campaigns render
// byte-identical reports.
//
// Invalidation is purely key-driven: bumping the project version (or any
// other key field) changes the digest and the old entry is simply never
// looked up again. After changing simulator models *without* a version
// bump, clear the cache directory (or pass --no-cache).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mb::core {

inline constexpr std::string_view kCacheEntrySchemaName = "mb-cache-entry";
inline constexpr int kCacheEntrySchemaVersion = 1;

/// Everything that determines a task's samples. Two tasks with equal keys
/// are interchangeable; any field difference yields a different digest.
struct CacheKey {
  std::string tool_version;  ///< support::version(); bump to invalidate.
  std::string suite;         ///< e.g. "membench", "tune-magicfilter".
  std::string platform;      ///< platform registry key.
  std::string point;         ///< canonical parameter-point string.
  std::uint64_t seed = 0;
  std::uint64_t fault_plan_hash = 0;  ///< 0 when no faults are injected.

  /// Stable across processes, builds and platforms (support::Hasher).
  std::uint64_t hash() const;
  /// hash() as 16 lowercase hex digits — the entry's on-disk name.
  std::string digest() const;
};

/// Filesystem-backed sample store. All I/O failures degrade to a miss
/// (lookup) or a dropped write (store) — a broken cache can slow a
/// campaign down but never change or fail it.
///
/// Hygiene: an entry that exists but cannot be parsed (truncated write,
/// disk damage, hand-editing) is *quarantined* — renamed to
/// `<entry>.quarantined` so the evidence survives for inspection while
/// every later lookup is an honest miss instead of a re-parse. Entries
/// that parse but echo a different key (digest collision) or carry a
/// foreign schema/version stay plain misses and are left untouched.
/// With a nonzero `max_bytes`, evict() trims live `*.json` entries
/// oldest-first (mtime, then path, so ties are deterministic) until the
/// cache fits; quarantined and in-flight temp files are never counted
/// or removed.
class ResultCache {
 public:
  /// Disabled cache: lookup always misses, store drops.
  ResultCache();
  /// `max_bytes` 0 means unbounded (no eviction).
  ResultCache(std::string dir, bool enabled, std::uint64_t max_bytes = 0);

  bool enabled() const { return enabled_; }
  const std::string& dir() const { return dir_; }
  std::uint64_t max_bytes() const { return max_bytes_; }

  /// Returns the stored samples iff an entry with this digest exists,
  /// parses cleanly, and echoes exactly this key (digest collisions and
  /// corrupt entries read as misses; corrupt ones are also quarantined).
  std::optional<std::vector<double>> lookup(const CacheKey& key) const;

  /// Persists samples for `key` (atomic tmp + rename; concurrent writers
  /// of the same key are harmless — last rename wins with equal content).
  /// Returns false if disabled or the write failed.
  bool store(const CacheKey& key, const std::vector<double>& samples) const;

  /// Removes the oldest live entries until the cache fits max_bytes().
  /// No-op (returns 0) when disabled or unbounded; otherwise returns the
  /// number of entries removed.
  std::uint64_t evict() const;

  /// Corrupt entries this instance has quarantined so far.
  std::uint64_t quarantined() const { return quarantined_; }

 private:
  std::string entry_path(const CacheKey& key) const;

  std::string dir_;
  bool enabled_ = false;
  std::uint64_t max_bytes_ = 0;
  /// Mutated by lookup(), which is logically read-only for callers.
  mutable std::uint64_t quarantined_ = 0;
};

}  // namespace mb::core
