#include "core/resultset.h"

#include <algorithm>

#include "support/check.h"

namespace mb::core {

ResultSet::ResultSet(std::size_t variants) : samples_(variants) {
  support::check(variants > 0, "ResultSet", "need at least one variant");
}

void ResultSet::add(std::size_t v, double value, std::size_t order) {
  support::check(v < samples_.size(), "ResultSet::add",
                 "variant out of range");
  samples_[v].values.push_back(value);
  samples_[v].orders.push_back(order);
  ++total_;
}

std::vector<double> ResultSet::samples(std::size_t v) const {
  support::check(v < samples_.size(), "ResultSet::samples",
                 "variant out of range");
  return samples_[v].values;
}

const std::vector<std::size_t>& ResultSet::orders(std::size_t v) const {
  support::check(v < samples_.size(), "ResultSet::orders",
                 "variant out of range");
  return samples_[v].orders;
}

stats::Summary ResultSet::summary(std::size_t v) const {
  return stats::summarize(samples(v));
}

stats::ModeSplit ResultSet::modes(std::size_t v) const {
  return stats::split_modes(samples(v));
}

bool ResultSet::degraded_mode_is_temporal(std::size_t v) const {
  const auto split = modes(v);
  if (!split.bimodal) return false;
  // For time-like metrics the degraded mode is the *high* cluster; map
  // sample indices back to global measurement order and test clustering.
  const auto& ords = orders(v);
  std::vector<std::size_t> degraded;
  for (const std::size_t i : split.high_indices) degraded.push_back(ords[i]);
  std::sort(degraded.begin(), degraded.end());
  return stats::is_temporally_clustered(degraded, total_);
}

std::size_t ResultSet::best(Direction dir) const {
  std::size_t best_v = 0;
  double best_val = 0.0;
  bool first = true;
  for (std::size_t v = 0; v < samples_.size(); ++v) {
    if (samples_[v].values.empty()) continue;
    const double m = mean(v);
    const bool better = first || (dir == Direction::kMinimize ? m < best_val
                                                              : m > best_val);
    if (better) {
      best_v = v;
      best_val = m;
      first = false;
    }
  }
  support::check(!first, "ResultSet::best", "no samples recorded");
  return best_v;
}

double ResultSet::mean(std::size_t v) const {
  return stats::mean(samples(v));
}

}  // namespace mb::core
