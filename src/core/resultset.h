// Benchmark result sets with the statistics the paper's methodology needs:
// per-variant sample series (in measurement order, so temporal clustering
// is detectable), summaries, and execution-mode analysis.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/descriptive.h"
#include "stats/modes.h"

namespace mb::core {

/// Which way "better" points for a metric.
enum class Direction { kMinimize, kMaximize };

class ResultSet {
 public:
  explicit ResultSet(std::size_t variants);

  /// Records one measurement of variant `v`. `order` is the global
  /// measurement sequence number (for temporal analyses).
  void add(std::size_t v, double value, std::size_t order);

  std::size_t variants() const { return samples_.size(); }
  std::size_t total_samples() const { return total_; }

  /// Samples of a variant in the order they were measured.
  std::vector<double> samples(std::size_t v) const;
  /// Global order numbers aligned with samples(v).
  const std::vector<std::size_t>& orders(std::size_t v) const;

  stats::Summary summary(std::size_t v) const;

  /// Mode analysis (paper Fig. 5): detects bimodal variants.
  stats::ModeSplit modes(std::size_t v) const;

  /// True when the variant's low-performance mode samples occurred
  /// consecutively in global measurement order (Fig. 5b).
  bool degraded_mode_is_temporal(std::size_t v) const;

  /// Index of the best variant by mean, in the given direction.
  std::size_t best(Direction dir) const;

  /// Mean of a variant (shorthand).
  double mean(std::size_t v) const;

 private:
  struct Series {
    std::vector<double> values;
    std::vector<std::size_t> orders;
  };
  std::vector<Series> samples_;
  std::size_t total_ = 0;
};

}  // namespace mb::core
