#include "core/search.h"

#include <algorithm>
#include <set>

#include "support/check.h"

namespace mb::core {
namespace {

bool better(double candidate, double incumbent, Direction dir) {
  return dir == Direction::kMinimize ? candidate < incumbent
                                     : candidate > incumbent;
}

}  // namespace

SearchOutcome exhaustive_search(const ParamSpace& space,
                                const Evaluator& eval, Direction dir) {
  support::check(!space.empty(), "exhaustive_search", "empty space");
  SearchOutcome out;
  bool first = true;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const double v = eval(space.at(i));
    out.visited.emplace_back(i, v);
    ++out.evaluations;
    if (first || better(v, out.best_value, dir)) {
      out.best_index = i;
      out.best_value = v;
      first = false;
    }
  }
  return out;
}

SearchOutcome random_search(const ParamSpace& space, const Evaluator& eval,
                            Direction dir, std::size_t budget,
                            support::Rng rng) {
  support::check(!space.empty(), "random_search", "empty space");
  support::check(budget >= 1, "random_search", "budget must be >= 1");
  // Sample without replacement via a truncated permutation.
  auto perm = rng.permutation(space.size());
  const std::size_t n = std::min(budget, space.size());

  SearchOutcome out;
  bool first = true;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = perm[k];
    const double v = eval(space.at(i));
    out.visited.emplace_back(i, v);
    ++out.evaluations;
    if (first || better(v, out.best_value, dir)) {
      out.best_index = i;
      out.best_value = v;
      first = false;
    }
  }
  return out;
}

SearchOutcome hill_climb(const ParamSpace& space, const Evaluator& eval,
                         Direction dir,
                         std::optional<std::vector<std::size_t>> start,
                         std::size_t budget) {
  support::check(!space.empty(), "hill_climb", "empty space");
  std::vector<std::size_t> cur =
      start.value_or(std::vector<std::size_t>(space.dims(), 0));
  support::check(cur.size() == space.dims(), "hill_climb",
                 "start coordinate dimension mismatch");

  SearchOutcome out;
  std::set<std::size_t> seen;
  auto visit = [&](const std::vector<std::size_t>& coords) {
    const std::size_t idx = space.index_of(coords);
    const double v = eval(space.at(idx));
    if (seen.insert(idx).second) {
      out.visited.emplace_back(idx, v);
      ++out.evaluations;
    }
    return v;
  };

  double cur_val = visit(cur);
  out.best_index = space.index_of(cur);
  out.best_value = cur_val;

  bool improved = true;
  while (improved && out.evaluations < budget) {
    improved = false;
    std::vector<std::size_t> best_nb;
    double best_nb_val = cur_val;
    for (std::size_t d = 0; d < space.dims(); ++d) {
      for (int delta : {-1, +1}) {
        if (delta < 0 && cur[d] == 0) continue;
        if (delta > 0 && cur[d] + 1 >= space.values(d).size()) continue;
        auto nb = cur;
        nb[d] += static_cast<std::size_t>(delta);
        const double v = visit(nb);
        if (better(v, best_nb_val, dir)) {
          best_nb_val = v;
          best_nb = nb;
        }
        if (out.evaluations >= budget) break;
      }
      if (out.evaluations >= budget) break;
    }
    if (!best_nb.empty()) {
      cur = best_nb;
      cur_val = best_nb_val;
      out.best_index = space.index_of(cur);
      out.best_value = cur_val;
      improved = true;
    }
  }
  return out;
}

SweetSpot sweet_spot(const ParamSpace& space,
                     const std::vector<double>& metric, Direction dir,
                     double tolerance) {
  support::check(space.dims() == 1, "sweet_spot",
                 "sweet spots are defined over 1-D spaces");
  support::check(metric.size() == space.size(), "sweet_spot",
                 "one metric value per point required");
  support::check(tolerance >= 0.0, "sweet_spot",
                 "tolerance must be non-negative");

  std::size_t best = 0;
  for (std::size_t i = 1; i < metric.size(); ++i)
    if (better(metric[i], metric[best], dir)) best = i;

  const double bound = dir == Direction::kMinimize
                           ? metric[best] * (1.0 + tolerance)
                           : metric[best] * (1.0 - tolerance);
  auto inside = [&](std::size_t i) {
    return dir == Direction::kMinimize ? metric[i] <= bound
                                       : metric[i] >= bound;
  };

  std::size_t lo = best, hi = best;
  while (lo > 0 && inside(lo - 1)) --lo;
  while (hi + 1 < metric.size() && inside(hi + 1)) ++hi;

  SweetSpot s;
  s.lo = space.values(0)[lo];
  s.hi = space.values(0)[hi];
  s.width = hi - lo + 1;
  return s;
}

}  // namespace mb::core
