// Search strategies over parameter spaces.
//
// The paper contrasts developer intuition with systematic exploration and
// notes that the profitable region ("sweet spot") can be much narrower on
// embedded cores than on server cores — so a strategy that works on
// Nehalem (greedy hill climbing from an intuition-provided start) can miss
// the optimum on Tegra2 entirely. Exhaustive, random-budget and
// hill-climbing strategies are provided, plus sweet-spot extraction.
#pragma once

#include <functional>
#include <optional>

#include "core/param_space.h"
#include "core/resultset.h"
#include "support/rng.h"

namespace mb::core {

/// Evaluates one point; smaller is better under kMinimize.
using Evaluator = std::function<double(const Point&)>;

struct SearchOutcome {
  std::size_t best_index = 0;
  double best_value = 0.0;
  std::size_t evaluations = 0;
  /// Value per visited point index (unvisited absent).
  std::vector<std::pair<std::size_t, double>> visited;
};

/// Evaluates every point.
SearchOutcome exhaustive_search(const ParamSpace& space,
                                const Evaluator& eval, Direction dir);

/// Evaluates `budget` distinct random points (all of them when budget
/// exceeds the space).
SearchOutcome random_search(const ParamSpace& space, const Evaluator& eval,
                            Direction dir, std::size_t budget,
                            support::Rng rng);

/// Coordinate hill climbing from `start` (defaults to the first point):
/// repeatedly moves to the best improving +-1 neighbour along any
/// dimension until no neighbour improves or the budget is exhausted.
SearchOutcome hill_climb(const ParamSpace& space, const Evaluator& eval,
                         Direction dir,
                         std::optional<std::vector<std::size_t>> start = {},
                         std::size_t budget = 10'000);

/// Sweet-spot extraction over a 1-D space (paper Fig. 7): the contiguous
/// range of values around the optimum whose metric stays within
/// `tolerance` (fractional) of the best.
struct SweetSpot {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::size_t width = 0;  ///< number of values in the range
};

SweetSpot sweet_spot(const ParamSpace& space,
                     const std::vector<double>& metric, Direction dir,
                     double tolerance = 0.10);

}  // namespace mb::core
