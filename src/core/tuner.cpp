#include "core/tuner.h"

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "stats/descriptive.h"
#include "support/check.h"

namespace mb::core {

namespace {

/// Best-so-far curve over (index, value) pairs in evaluation order.
std::vector<std::pair<std::size_t, double>> best_trajectory(
    const std::vector<std::pair<std::size_t, double>>& evaluated,
    Direction direction) {
  std::vector<std::pair<std::size_t, double>> trajectory;
  double best = 0.0;
  for (std::size_t i = 0; i < evaluated.size(); ++i) {
    const double v = evaluated[i].second;
    const bool improved =
        trajectory.empty() ||
        (direction == Direction::kMinimize ? v < best : v > best);
    if (improved) {
      best = v;
      trajectory.emplace_back(i + 1, v);
    }
  }
  return trajectory;
}

}  // namespace

std::string_view strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kExhaustive: return "exhaustive";
    case Strategy::kRandom: return "random";
    case Strategy::kHillClimb: return "hill-climb";
  }
  return "?";
}

Tuner::Tuner(Harness harness, Direction direction)
    : harness_(std::move(harness)), direction_(direction) {}

TuneReport Tuner::tune(const ParamSpace& space, const Workload& workload,
                       Strategy strategy, std::size_t budget,
                       Executor* executor) {
  support::check(!space.empty(), "Tuner::tune", "empty space");
  obs::ScopedSpan span(obs::profiler(), "tuner/tune");
  obs::Registry& registry = obs::metrics();
  obs::Counter& evaluations = registry.counter(
      "tuner.evaluations", {{"strategy", std::string(strategy_name(strategy))}});
  obs::Gauge& best_gauge = registry.gauge("tuner.best_value");

  if (strategy == Strategy::kExhaustive) {
    // One interleaved measurement campaign over the full space.
    obs::ScopedSpan measure(obs::profiler(), "tuner/measure");
    const ResultSet results = executor != nullptr
                                  ? harness_.run(space, workload, *executor)
                                  : harness_.run(space, workload);
    TuneReport report{space.at(0), 0.0, 0, {}, {}};
    const std::size_t best = results.best(direction_);
    report.best = space.at(best);
    report.best_value = results.mean(best);
    report.evaluations = results.total_samples();
    for (std::size_t v = 0; v < space.size(); ++v)
      report.evaluated.emplace_back(v, results.mean(v));
    report.trajectory = best_trajectory(report.evaluated, direction_);
    evaluations.add(static_cast<double>(report.evaluations));
    best_gauge.set(report.best_value);
    for (const auto& [v, cost] : report.evaluated)
      registry.gauge("tuner.variant_cost", {{"point", space.at(v).to_string()}})
          .set(cost);
    return report;
  }

  // Sequential strategies: measure points on demand (each point still gets
  // the harness's repetitions, via a single-point space).
  Evaluator eval = [&](const Point& point) {
    obs::ScopedSpan evaluate(obs::profiler(), "tuner/evaluate");
    ParamSpace single;
    for (std::size_t d = 0; d < point.dims(); ++d)
      single.add(std::string(space.name(d)), {point[d]});
    const ResultSet r = harness_.run(single, workload);
    evaluations.add(static_cast<double>(harness_.plan().repetitions));
    registry.gauge("tuner.variant_cost", {{"point", point.to_string()}})
        .set(r.mean(0));
    return r.mean(0);
  };

  SearchOutcome outcome;
  if (strategy == Strategy::kRandom) {
    outcome = random_search(space, eval, direction_, budget,
                            support::Rng(harness_.plan().seed));
  } else {
    outcome = hill_climb(space, eval, direction_, {}, budget);
  }

  TuneReport report{space.at(outcome.best_index), 0.0, 0, {}, {}};
  report.best_value = outcome.best_value;
  report.evaluations = outcome.evaluations * harness_.plan().repetitions;
  report.evaluated = outcome.visited;
  report.trajectory = best_trajectory(report.evaluated, direction_);
  best_gauge.set(report.best_value);
  return report;
}

std::map<std::string, TuneReport> Tuner::tune_per_instance(
    const std::map<std::string, ParamSpace>& instances,
    const Workload& workload, Strategy strategy, Executor* executor) {
  std::map<std::string, TuneReport> out;
  for (const auto& [key, space] : instances)
    out.emplace(key, tune(space, workload, strategy, 10'000, executor));
  return out;
}

}  // namespace mb::core
