// Auto-tuning facade (paper Sec. V-B and VI-B).
//
// Ties the harness, the statistics and the search strategies together, and
// implements the paper's two tuning levels:
//
//  * static tuning   — "platform specific tuning of the application",
//    performed once per platform at build time: tune() over a space.
//  * instance tuning — "instance specific tuning": optimal parameters
//    depend on the problem size, so tune_per_instance() produces a best
//    variant per instance key (e.g. per array size).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/harness.h"
#include "core/search.h"

namespace mb::core {

struct TuneReport {
  Point best;
  double best_value = 0.0;
  std::size_t evaluations = 0;
  /// Mean metric per fully-evaluated point (index -> value); complete for
  /// exhaustive searches, partial otherwise.
  std::vector<std::pair<std::size_t, double>> evaluated;
  /// Best-so-far after each point, in evaluation order (point count ->
  /// best value) — one entry per improvement, starting with the first
  /// point. The search's convergence curve.
  std::vector<std::pair<std::size_t, double>> trajectory;
};

enum class Strategy { kExhaustive, kRandom, kHillClimb };

std::string_view strategy_name(Strategy s);

class Tuner {
 public:
  /// `harness` performs the (randomized, repeated) measurements; the mean
  /// over repetitions is the point metric handed to the search strategy.
  /// Note: kExhaustive measures everything through the harness in one
  /// interleaved campaign (best methodology); the sequential strategies
  /// measure point by point as they walk.
  Tuner(Harness harness, Direction direction);

  /// `executor` (optional) shards the exhaustive measurement campaign
  /// across worker threads via Harness::run(…, Executor&); the report is
  /// byte-identical to the serial run. Sequential strategies ignore it —
  /// each step depends on the previous point's result.
  TuneReport tune(const ParamSpace& space, const Workload& workload,
                  Strategy strategy = Strategy::kExhaustive,
                  std::size_t budget = 10'000, Executor* executor = nullptr);

  /// Instance-specific tuning: one report per (key, space) pair — e.g.
  /// problem sizes mapping to possibly different best variants.
  std::map<std::string, TuneReport> tune_per_instance(
      const std::map<std::string, ParamSpace>& instances,
      const Workload& workload, Strategy strategy = Strategy::kExhaustive,
      Executor* executor = nullptr);

 private:
  Harness harness_;
  Direction direction_;
};

}  // namespace mb::core
