#include "counters/counters.h"

#include <sstream>

namespace mb::counters {

std::string_view counter_name(Counter c) {
  switch (c) {
    case Counter::kTotCyc: return "PAPI_TOT_CYC";
    case Counter::kTotIns: return "PAPI_TOT_INS";
    case Counter::kL1Dca: return "PAPI_L1_DCA";
    case Counter::kL1Dcm: return "PAPI_L1_DCM";
    case Counter::kL2Dca: return "PAPI_L2_DCA";
    case Counter::kL2Dcm: return "PAPI_L2_DCM";
    case Counter::kL3Dcm: return "PAPI_L3_DCM";
    case Counter::kTlbDm: return "PAPI_TLB_DM";
    case Counter::kBrMsp: return "PAPI_BR_MSP";
    case Counter::kFpOps: return "PAPI_FP_OPS";
    case Counter::kMemWcy: return "PAPI_MEM_WCY";
    case Counter::kCount: break;
  }
  return "?";
}

CounterSet& CounterSet::operator+=(const CounterSet& other) {
  for (std::size_t i = 0; i < kCounterCount; ++i)
    values_[i] += other.values_[i];
  return *this;
}

double CounterSet::ipc() const {
  const auto cyc = get(Counter::kTotCyc);
  return cyc == 0 ? 0.0
                  : static_cast<double>(get(Counter::kTotIns)) /
                        static_cast<double>(cyc);
}

double CounterSet::l1_miss_ratio() const {
  const auto acc = get(Counter::kL1Dca);
  return acc == 0 ? 0.0
                  : static_cast<double>(get(Counter::kL1Dcm)) /
                        static_cast<double>(acc);
}

std::string CounterSet::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    out << counter_name(static_cast<Counter>(i)) << "  " << values_[i]
        << '\n';
  }
  return out.str();
}

}  // namespace mb::counters
