// PAPI-style performance counter interface.
//
// The paper's auto-tuning experiments (Sec. V-B, Fig. 7) benchmark kernel
// variants with PAPI hardware counters — total cycles and cache accesses in
// particular. Our simulated machines populate the same counter set, so the
// tuning framework and the benches read results through an interface
// shaped like the real tool.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace mb::counters {

/// Counter identifiers; names mirror PAPI preset events.
enum class Counter : std::uint8_t {
  kTotCyc,   ///< PAPI_TOT_CYC — total cycles
  kTotIns,   ///< PAPI_TOT_INS — instructions completed
  kL1Dca,    ///< PAPI_L1_DCA — L1 data cache accesses
  kL1Dcm,    ///< PAPI_L1_DCM — L1 data cache misses
  kL2Dca,    ///< PAPI_L2_DCA — L2 accesses
  kL2Dcm,    ///< PAPI_L2_DCM — L2 misses
  kL3Dcm,    ///< PAPI_L3_DCM — L3 misses (0 on 2-level hierarchies)
  kTlbDm,    ///< PAPI_TLB_DM — data TLB misses
  kBrMsp,    ///< PAPI_BR_MSP — mispredicted branches
  kFpOps,    ///< PAPI_FP_OPS — floating point operations
  kMemWcy,   ///< PAPI_MEM_WCY — cycles stalled on memory
  kCount
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// PAPI-style event name ("PAPI_TOT_CYC", ...).
std::string_view counter_name(Counter c);

/// A fixed set of counter values; value semantics, addable.
class CounterSet {
 public:
  std::uint64_t get(Counter c) const {
    return values_[static_cast<std::size_t>(c)];
  }
  void set(Counter c, std::uint64_t v) {
    values_[static_cast<std::size_t>(c)] = v;
  }
  void add(Counter c, std::uint64_t v) {
    values_[static_cast<std::size_t>(c)] += v;
  }

  CounterSet& operator+=(const CounterSet& other);
  friend CounterSet operator+(CounterSet a, const CounterSet& b) {
    a += b;
    return a;
  }

  /// Instructions per cycle; 0 when no cycles recorded.
  double ipc() const;
  /// L1 miss ratio; 0 when no accesses recorded.
  double l1_miss_ratio() const;

  /// Multi-line "PAPI_XXX  value" dump.
  std::string to_string() const;

 private:
  std::array<std::uint64_t, kCounterCount> values_{};
};

}  // namespace mb::counters
