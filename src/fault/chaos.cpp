#include "fault/chaos.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "support/check.h"
#include "verify/fault_lint.h"

namespace mb::fault {
namespace {

net::NodeId leaf_of(const net::ClusterTopology& topo,
                    const apps::ClusterConfig& config, std::uint32_t node) {
  return topo.leaf_switches.size() == 1
             ? topo.leaf_switches[0]
             : topo.leaf_switches[node / config.tree.switch_ports];
}

/// Instant fault marker on the first rank of the affected node (viewers
/// render kFault records as global instants, the rank only picks a track).
void mark(trace::Trace& tr, std::uint32_t rank, double t,
          std::string label) {
  trace::Record r;
  r.rank = rank;
  r.t0 = t;
  r.t1 = t;
  r.kind = trace::EventKind::kFault;
  r.label = std::move(label);
  tr.add(r);
}

/// Arms every remaining fault on the freshly wired cluster. Injection
/// events are ordinary queue events, so they fire at their simulated
/// times inside the run, interleaved with the application.
apps::RunHooks make_injector(const apps::ClusterConfig& config,
                             const FaultPlan& plan) {
  // The scheduled lambdas below fire inside queue.run(), long after
  // on_ready has returned: they may only capture by value, or reference
  // the hook parameters (whose referents live through the run).
  apps::RunHooks hooks;
  hooks.on_ready = [&config, plan](sim::EventQueue& queue,
                                   net::Network& network,
                                   const net::ClusterTopology& topo,
                                   mpi::Runtime& runtime,
                                   trace::Trace& tr) {
    // Faults target *nodes*; which ranks that hits depends on the
    // placement (rank_map-aware). A spare node carries no ranks, so a
    // slowdown or crash there only drops the host link / leaves a mark.
    const auto node_ranks = [&config](std::uint32_t node) {
      return apps::ranks_on_node(config, node);
    };
    const auto mark_rank = [](const std::vector<std::uint32_t>& ranks) {
      return ranks.empty() ? 0u : ranks.front();
    };

    for (const NodeCrash& c : plan.crashes) {
      const net::NodeId host = topo.hosts[c.node];
      const net::NodeId leaf = leaf_of(topo, config, c.node);
      const std::uint32_t node = c.node;
      const std::vector<std::uint32_t> ranks = node_ranks(node);
      const std::uint32_t track = mark_rank(ranks);
      queue.schedule_in(c.at_s, [&queue, &network, &runtime, &tr, host,
                                 leaf, node, ranks, track] {
        for (std::uint32_t r : ranks) runtime.crash_rank(r);
        network.set_link_state(host, leaf, false);
        mark(tr, track, queue.now(), "crash:node" + std::to_string(node));
        obs::metrics().counter("fault.crashes").add(1.0);
      });
    }

    for (const NodeSlowdown& s : plan.slowdowns) {
      const std::uint32_t node = s.node;
      const double factor = s.factor;
      const std::vector<std::uint32_t> ranks = node_ranks(node);
      const std::uint32_t track = mark_rank(ranks);
      queue.schedule_in(s.at_s, [&queue, &runtime, &tr, node, ranks, track,
                                 factor] {
        for (std::uint32_t r : ranks) runtime.set_rank_slowdown(r, factor);
        mark(tr, track, queue.now(),
             "slowdown:node" + std::to_string(node));
        obs::metrics().counter("fault.slowdowns").add(1.0);
      });
      queue.schedule_in(s.until_s, [&queue, &runtime, &tr, node, ranks,
                                    track] {
        for (std::uint32_t r : ranks) runtime.set_rank_slowdown(r, 1.0);
        mark(tr, track, queue.now(),
             "slowdown_end:node" + std::to_string(node));
      });
    }

    for (const LinkDownWindow& d : plan.link_downs) {
      const net::NodeId host = topo.hosts[d.node];
      const net::NodeId leaf = leaf_of(topo, config, d.node);
      const std::uint32_t node = d.node;
      const std::uint32_t track = mark_rank(node_ranks(node));
      queue.schedule_in(d.at_s, [&queue, &network, &tr, host, leaf, node,
                                 track] {
        network.set_link_state(host, leaf, false);
        mark(tr, track, queue.now(),
             "link_down:node" + std::to_string(node));
        obs::metrics().counter("fault.link_downs").add(1.0);
      });
      queue.schedule_in(d.until_s, [&queue, &network, &tr, host, leaf,
                                    node, track] {
        network.set_link_state(host, leaf, true);
        mark(tr, track, queue.now(),
             "link_up:node" + std::to_string(node));
      });
    }

    for (const FrameLoss& l : plan.losses) {
      // Loss applies from t=0; each link derives its own RNG stream from
      // the plan seed so scenarios replay bit-identically.
      network.set_link_loss(
          topo.hosts[l.node], leaf_of(topo, config, l.node), l.probability,
          plan.seed ^ (0x9E3779B97F4A7C15ULL * (l.node + 1)));
      obs::metrics().counter("fault.loss_links").add(1.0);
    }
  };
  return hooks;
}

}  // namespace

ChaosResult run_chaos(const ChaosScenario& scenario,
                      const mpi::Program& program) {
  // Defensive lint: callers should have gated on this already, but an
  // unchecked plan (crash of a nonexistent node) must not become an
  // out-of-bounds topo access.
  const verify::Report lint =
      verify::lint_fault_plan(scenario.plan, scenario.cluster.nodes);
  support::check(!lint.has_errors(), "run_chaos",
                 "fault plan failed lint:\n" + render_diagnostics(lint));

  const CheckpointConfig& cp = scenario.plan.checkpoint;
  const double write_s =
      cp.enabled ? cp.state_bytes_per_rank / cp.write_bandwidth_bytes_per_s
                 : 0.0;
  const double read_s =
      cp.enabled ? cp.state_bytes_per_rank / cp.read_bandwidth_bytes_per_s
                 : 0.0;

  FaultPlan remaining = scenario.plan;
  ChaosResult result;
  // Fault marks of failed attempts, carried into the final trace so a
  // recovered run still shows what it recovered from.
  std::vector<trace::Record> past_faults;
  for (std::uint32_t attempt = 1;; ++attempt) {
    result.attempts = attempt;
    apps::AppRunResult run = apps::run_on_cluster(
        scenario.cluster, program, make_injector(scenario.cluster, remaining));
    result.network_drops += run.network_drops;
    result.retransmits += run.network_retransmits;
    result.injected_losses += run.injected_losses;
    result.trace = std::move(run.trace);
    result.trace_sampled_ranks = std::move(run.trace_sampled_ranks);
    result.trace_dropped = run.trace_dropped;
    result.timeseries = std::move(run.timeseries);
    for (const trace::Record& r : past_faults) result.trace.add(r);

    if (run.completed) {
      result.completed = true;
      result.recovered = attempt > 1;
      result.app_makespan_s = run.makespan_s;
      // The successful attempt still pays for its periodic checkpoints.
      if (cp.enabled) {
        result.recovery.checkpoint_write_s +=
            std::floor(run.makespan_s / cp.interval_s) * write_s;
      }
      break;
    }

    result.failure = run.failure;
    const bool recoverable = cp.enabled && !run.failure.dead_ranks.empty() &&
                             !remaining.crashes.empty() &&
                             attempt <= scenario.max_restarts;
    if (!recoverable) break;

    // The earliest remaining crash is what brought the attempt down. The
    // job is declared dead when the failure detector last fired; without
    // detection (recv_timeout_s == 0) that only happens at event-loop
    // drain — after every retransmit timer has run its course.
    double t_crash = remaining.crashes.front().at_s;
    for (const NodeCrash& c : remaining.crashes)
      t_crash = std::min(t_crash, c.at_s);
    const double detect = run.failure.detected_s > 0.0
                              ? run.failure.detected_s
                              : run.failed_at_s;
    const double t_detect = std::max(detect, t_crash);
    const double completed_cps = std::floor(t_crash / cp.interval_s);
    const double last_cp = completed_cps * cp.interval_s;

    result.recovery.lost_work_s += t_crash - last_cp;
    result.recovery.detection_s += t_detect - t_crash;
    result.recovery.restart_s += cp.restart_overhead_s + read_s;
    result.recovery.checkpoint_write_s += completed_cps * write_s;

    // Rebuild from the current trace (it already holds the carried
    // marks) rather than appending — avoids duplicates across attempts.
    past_faults.clear();
    for (const trace::Record& r : result.trace.records())
      if (r.kind == trace::EventKind::kFault) past_faults.push_back(r);

    // Crashes that already fired stay dead history — the restarted run
    // faces only the faults still ahead of it. Slowdowns, link windows
    // and loss persist (the hardware did not heal).
    remaining.crashes.erase(
        std::remove_if(remaining.crashes.begin(), remaining.crashes.end(),
                       [t_detect](const NodeCrash& c) {
                         return c.at_s <= t_detect;
                       }),
        remaining.crashes.end());
  }

  result.time_to_solution_s = result.app_makespan_s + result.recovery.total();

  obs::Registry& registry = obs::metrics();
  registry.counter("recovery.restarts")
      .add(static_cast<double>(result.attempts - 1));
  registry.counter("recovery.lost_work_s").add(result.recovery.lost_work_s);
  registry.counter("recovery.checkpoint_write_s")
      .add(result.recovery.checkpoint_write_s);
  registry.counter("recovery.restart_s").add(result.recovery.restart_s);
  registry.counter("recovery.detection_s").add(result.recovery.detection_s);
  return result;
}

}  // namespace mb::fault
