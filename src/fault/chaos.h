// Chaos scenario executor: runs an application program on a cluster while
// a FaultPlan injects failures, and models coordinated checkpoint/restart
// recovery on top.
//
// Execution model: each *attempt* simulates the application with the
// remaining faults armed (node crashes fail-stop every rank on the node
// and take its host link down; slowdown windows drive the Fig. 5 degraded
// mode through Runtime::set_rank_slowdown; link windows and frame loss go
// straight to the network). A failed attempt ends when the runtime's
// failure detector (or the drained event loop) reports the dead ranks.
// With checkpointing enabled the run restarts from the last checkpoint:
// the cost model charges the lost work since that checkpoint, the
// detection latency, the checkpoint writes performed so far and the
// restart itself; crashes already fired are removed from the plan and the
// next attempt begins. Time-to-solution is the application makespan plus
// every charged overhead — the quantity a resilience study compares
// against checkpoint interval and state size.
#pragma once

#include <cstdint>

#include "apps/cluster.h"
#include "fault/plan.h"
#include "mpi/program.h"
#include "mpi/runtime.h"
#include "trace/trace.h"

namespace mb::fault {

struct ChaosScenario {
  apps::ClusterConfig cluster;
  FaultPlan plan;
  /// Give up after this many restarts (guards unrecoverable plans, e.g. a
  /// crash scheduled later than any checkpoint can outrun).
  std::uint32_t max_restarts = 8;
};

/// Overheads charged by the checkpoint/restart model, in seconds.
struct RecoveryCost {
  double checkpoint_write_s = 0.0;  ///< all checkpoint writes, all attempts
  double lost_work_s = 0.0;         ///< progress rolled back by crashes
  double detection_s = 0.0;         ///< crash-to-detection latency
  double restart_s = 0.0;           ///< relaunch + state re-read

  double total() const {
    return checkpoint_write_s + lost_work_s + detection_s + restart_s;
  }
};

struct ChaosResult {
  bool completed = false;  ///< the application finally finished
  bool recovered = false;  ///< ... after at least one restart
  std::uint32_t attempts = 0;
  double app_makespan_s = 0.0;      ///< makespan of the successful attempt
  double time_to_solution_s = 0.0;  ///< makespan + recovery overheads
  RecoveryCost recovery;
  mpi::FailureReport failure;  ///< of the last attempt, when !completed
  std::uint64_t network_drops = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t injected_losses = 0;
  trace::Trace trace;  ///< of the last attempt, fault marks included
  // Observability extensions, all of the last attempt (see ClusterConfig:
  // streaming_trace / timeseries are inherited from scenario.cluster).
  std::vector<std::uint32_t> trace_sampled_ranks;
  std::uint64_t trace_dropped = 0;
  obs::TimeSeries timeseries;
};

/// Runs `program` under `scenario`. The plan must lint clean against the
/// cluster (FLT00x errors throw support::Error — gate with
/// verify::lint_fault_plan first for structured diagnostics). Publishes
/// fault.* and recovery.* metrics. Deterministic: identical scenario,
/// program and seed yield identical results.
ChaosResult run_chaos(const ChaosScenario& scenario,
                      const mpi::Program& program);

}  // namespace mb::fault
