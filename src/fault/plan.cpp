#include "fault/plan.h"

#include "support/check.h"
#include "support/json.h"

namespace mb::fault {

using support::check;
using support::JsonValue;
using support::JsonWriter;

std::string to_json(const FaultPlan& plan) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", kPlanSchemaName);
  w.field("schema_version", kPlanSchemaVersion);
  w.field("seed", plan.seed);

  w.key("crashes").begin_array();
  for (const NodeCrash& c : plan.crashes) {
    w.begin_object();
    w.field("node", c.node);
    w.field("at_s", c.at_s);
    w.end_object();
  }
  w.end_array();

  w.key("slowdowns").begin_array();
  for (const NodeSlowdown& s : plan.slowdowns) {
    w.begin_object();
    w.field("node", s.node);
    w.field("at_s", s.at_s);
    w.field("until_s", s.until_s);
    w.field("factor", s.factor);
    w.end_object();
  }
  w.end_array();

  w.key("link_down").begin_array();
  for (const LinkDownWindow& d : plan.link_downs) {
    w.begin_object();
    w.field("node", d.node);
    w.field("at_s", d.at_s);
    w.field("until_s", d.until_s);
    w.end_object();
  }
  w.end_array();

  w.key("frame_loss").begin_array();
  for (const FrameLoss& l : plan.losses) {
    w.begin_object();
    w.field("node", l.node);
    w.field("probability", l.probability);
    w.end_object();
  }
  w.end_array();

  w.key("checkpoint").begin_object();
  w.field("enabled", plan.checkpoint.enabled);
  w.field("interval_s", plan.checkpoint.interval_s);
  w.field("state_bytes_per_rank", plan.checkpoint.state_bytes_per_rank);
  w.field("write_bandwidth_bytes_per_s",
          plan.checkpoint.write_bandwidth_bytes_per_s);
  w.field("read_bandwidth_bytes_per_s",
          plan.checkpoint.read_bandwidth_bytes_per_s);
  w.field("restart_overhead_s", plan.checkpoint.restart_overhead_s);
  w.end_object();

  w.end_object();
  return w.str();
}

namespace {

std::uint32_t node_of(const JsonValue& v) {
  return static_cast<std::uint32_t>(v.at("node").as_number());
}

}  // namespace

FaultPlan plan_from_json(std::string_view text) {
  const JsonValue doc = support::parse_json(text);
  check(doc.is_object(), "plan_from_json", "document is not an object");
  check(doc.at("schema").as_string() == kPlanSchemaName, "plan_from_json",
        "unknown schema '" + doc.at("schema").as_string() + "'");
  const int version = static_cast<int>(doc.at("schema_version").as_number());
  check(version == kPlanSchemaVersion, "plan_from_json",
        "unsupported schema version " + std::to_string(version));

  FaultPlan plan;
  if (const JsonValue* s = doc.find("seed"))
    plan.seed = static_cast<std::uint64_t>(s->as_number());

  if (const JsonValue* arr = doc.find("crashes")) {
    for (const JsonValue& v : arr->as_array()) {
      NodeCrash c;
      c.node = node_of(v);
      c.at_s = v.at("at_s").as_number();
      plan.crashes.push_back(c);
    }
  }
  if (const JsonValue* arr = doc.find("slowdowns")) {
    for (const JsonValue& v : arr->as_array()) {
      NodeSlowdown s;
      s.node = node_of(v);
      s.at_s = v.at("at_s").as_number();
      s.until_s = v.at("until_s").as_number();
      if (const JsonValue* f = v.find("factor")) s.factor = f->as_number();
      plan.slowdowns.push_back(s);
    }
  }
  if (const JsonValue* arr = doc.find("link_down")) {
    for (const JsonValue& v : arr->as_array()) {
      LinkDownWindow d;
      d.node = node_of(v);
      d.at_s = v.at("at_s").as_number();
      d.until_s = v.at("until_s").as_number();
      plan.link_downs.push_back(d);
    }
  }
  if (const JsonValue* arr = doc.find("frame_loss")) {
    for (const JsonValue& v : arr->as_array()) {
      FrameLoss l;
      l.node = node_of(v);
      l.probability = v.at("probability").as_number();
      plan.losses.push_back(l);
    }
  }
  if (const JsonValue* cp = doc.find("checkpoint")) {
    CheckpointConfig& c = plan.checkpoint;
    c.enabled = cp->at("enabled").as_bool();
    if (const JsonValue* v = cp->find("interval_s"))
      c.interval_s = v->as_number();
    if (const JsonValue* v = cp->find("state_bytes_per_rank"))
      c.state_bytes_per_rank = v->as_number();
    if (const JsonValue* v = cp->find("write_bandwidth_bytes_per_s"))
      c.write_bandwidth_bytes_per_s = v->as_number();
    if (const JsonValue* v = cp->find("read_bandwidth_bytes_per_s"))
      c.read_bandwidth_bytes_per_s = v->as_number();
    if (const JsonValue* v = cp->find("restart_overhead_s"))
      c.restart_overhead_s = v->as_number();
  }
  return plan;
}

}  // namespace mb::fault
