// Fault scenario description ("chaos plan").
//
// A FaultPlan is a declarative, seeded schedule of things going wrong on
// the simulated cluster: nodes crashing (fail-stop), nodes entering the
// Fig. 5 two-state degraded mode (slowdown windows), links going down and
// coming back, and per-link Bernoulli frame loss. Plans are plain data —
// buildable programmatically or parsed from JSON — so the same scenario
// replays byte-identically across runs and machines (given the same seed).
//
// The plan layer deliberately links only against support: it is linted by
// verify (FLT00x rules) and executed by fault/chaos.h, and neither wants
// the other as a dependency.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mb::fault {

inline constexpr std::string_view kPlanSchemaName = "mb-fault-plan";
inline constexpr int kPlanSchemaVersion = 1;

/// Fail-stop crash of a whole node (all ranks on it die, its host link
/// goes down) at a point in simulated time.
struct NodeCrash {
  std::uint32_t node = 0;
  double at_s = 0.0;
};

/// Degraded-mode window: compute on the node runs `factor` times slower
/// between at_s and until_s (Fig. 5 two-state model at cluster scope).
struct NodeSlowdown {
  std::uint32_t node = 0;
  double at_s = 0.0;
  double until_s = 0.0;
  double factor = 5.0;
};

/// The node's host link is down (frames dropped, retransmits fire) during
/// [at_s, until_s). Windows for the same node must not overlap.
struct LinkDownWindow {
  std::uint32_t node = 0;
  double at_s = 0.0;
  double until_s = 0.0;
};

/// Bernoulli frame loss on the node's host link for the whole run.
struct FrameLoss {
  std::uint32_t node = 0;
  double probability = 0.0;  ///< per-frame, in [0, 1)
};

/// Coordinated checkpoint/restart cost model. When enabled, the
/// application checkpoints every `interval_s` of useful progress; after a
/// crash the run restarts from the last checkpoint, paying the restart
/// overhead plus re-reading the state, and re-executes the lost work.
struct CheckpointConfig {
  bool enabled = false;
  double interval_s = 30.0;
  double state_bytes_per_rank = 64.0 * 1024 * 1024;
  double write_bandwidth_bytes_per_s = 100e6;
  double read_bandwidth_bytes_per_s = 150e6;
  double restart_overhead_s = 1.0;  ///< relaunch / rejoin cost per restart
};

struct FaultPlan {
  std::uint64_t seed = 1;  ///< drives frame-loss RNG streams
  std::vector<NodeCrash> crashes;
  std::vector<NodeSlowdown> slowdowns;
  std::vector<LinkDownWindow> link_downs;
  std::vector<FrameLoss> losses;
  CheckpointConfig checkpoint;

  bool empty() const {
    return crashes.empty() && slowdowns.empty() && link_downs.empty() &&
           losses.empty();
  }
};

/// Serializes a plan to a pretty-printed JSON document (stable key order,
/// round-trip double formatting — re-serializing a parse is
/// byte-identical).
std::string to_json(const FaultPlan& plan);

/// Parses a plan document. Requires the mb-fault-plan schema marker and a
/// supported version; unknown nodes / bad values are left to the FLT00x
/// lint rules (verify/fault_lint.h), which know the cluster size. Throws
/// support::Error on structurally malformed documents.
FaultPlan plan_from_json(std::string_view text);

}  // namespace mb::fault
