#include "gen/bundle.h"

#include <cstdlib>

#include "support/check.h"
#include "support/hash.h"
#include "support/json.h"
#include "support/version.h"

namespace mb::gen {
namespace {

std::uint64_t parse_u64(const support::JsonValue& v, int base) {
  const std::string& s = v.as_string();
  support::check(!s.empty(), "gen::bundle", "empty integer field");
  char* end = nullptr;
  const std::uint64_t out = std::strtoull(s.c_str(), &end, base);
  support::check(end == s.c_str() + s.size(), "gen::bundle",
                 "malformed integer field: " + s);
  return out;
}

std::uint64_t dec_field(const support::JsonValue& doc, std::string_view key) {
  return parse_u64(doc.at(key), 10);
}

std::uint64_t hex_field(const support::JsonValue& doc, std::string_view key) {
  return parse_u64(doc.at(key), 16);
}

}  // namespace

std::string to_json(const ReproBundle& bundle) {
  support::JsonWriter w;
  w.begin_object();
  w.field("schema", "mb-repro");  // == kReproSchemaName (check_docs greps)
  w.field("schema_version", kReproSchemaVersion);
  w.field("tool", "mbctl");
  w.field("tool_version", bundle.tool_version.empty()
                              ? std::string(support::version())
                              : bundle.tool_version);
  w.field("seed", std::to_string(bundle.seed));
  w.field("oracle", bundle.oracle.empty() ? "none" : bundle.oracle);
  w.field("note", bundle.note);

  w.key("generator").begin_object();
  w.field("seed", std::to_string(bundle.gen_seed));
  w.key("params");
  write_params(w, bundle.params);
  w.end_object();

  w.key("platform").begin_object();
  w.field("tree", bundle.platform.tree);
  w.field("nodes", bundle.platform.nodes);
  w.field("cores_per_node", bundle.platform.cores_per_node);
  w.field("sim_jobs", bundle.platform.sim_jobs);
  w.end_object();

  if (bundle.has_fault_plan) {
    // Embed the plan's own mb-fault-plan document so a replay (or a
    // human) can lift it out and feed it to `mbctl chaos` unchanged.
    w.key("fault_plan");
    support::write_json_value(w,
                              support::parse_json(to_json(bundle.fault_plan)));
  }

  const ReproExpected& e = bundle.expected;
  w.key("expected").begin_object();
  w.field("verifier_digest", support::hex64(e.verifier_digest));
  w.field("verifier_errors", e.verifier_errors);
  w.field("des_digest", support::hex64(e.des_digest));
  w.field("des_completed", e.des_completed);
  w.field("makespan_bits", support::hex64(e.makespan_bits));
  if (e.has_sharded) w.field("sharded_digest", support::hex64(e.sharded_digest));
  if (e.has_static) w.field("static_digest", support::hex64(e.static_digest));
  if (e.has_chaos) w.field("chaos_digest", support::hex64(e.chaos_digest));
  w.end_object();

  w.end_object();
  return w.str();
}

ReproBundle bundle_from_json(std::string_view text) {
  const support::JsonValue doc = support::parse_json(text);
  support::check(doc.is_object(), "gen::bundle",
                 "bundle document must be an object");
  support::check(doc.at("schema").as_string() == kReproSchemaName,
                 "gen::bundle", "not an mb-repro document");
  support::check(static_cast<int>(doc.at("schema_version").as_number()) ==
                     kReproSchemaVersion,
                 "gen::bundle", "unsupported mb-repro schema version");

  ReproBundle b;
  b.tool_version = doc.at("tool_version").as_string();
  b.seed = dec_field(doc, "seed");
  b.oracle = doc.at("oracle").as_string();
  b.note = doc.at("note").as_string();

  const support::JsonValue& gen = doc.at("generator");
  b.gen_seed = dec_field(gen, "seed");
  b.params = params_from_json(gen.at("params"));

  const support::JsonValue& plat = doc.at("platform");
  b.platform.tree = plat.at("tree").as_string();
  b.platform.nodes = static_cast<std::uint32_t>(plat.at("nodes").as_number());
  b.platform.cores_per_node =
      static_cast<std::uint32_t>(plat.at("cores_per_node").as_number());
  b.platform.sim_jobs =
      static_cast<std::uint32_t>(plat.at("sim_jobs").as_number());

  if (const support::JsonValue* plan = doc.find("fault_plan")) {
    support::JsonWriter pw;
    support::write_json_value(pw, *plan);
    b.fault_plan = fault::plan_from_json(pw.str());
    b.has_fault_plan = true;
  }

  const support::JsonValue& e = doc.at("expected");
  b.expected.verifier_digest = hex_field(e, "verifier_digest");
  b.expected.verifier_errors =
      static_cast<std::uint64_t>(e.at("verifier_errors").as_number());
  b.expected.des_digest = hex_field(e, "des_digest");
  b.expected.des_completed = e.at("des_completed").as_bool();
  b.expected.makespan_bits = hex_field(e, "makespan_bits");
  if (e.find("sharded_digest")) {
    b.expected.has_sharded = true;
    b.expected.sharded_digest = hex_field(e, "sharded_digest");
  }
  if (e.find("static_digest")) {
    b.expected.has_static = true;
    b.expected.static_digest = hex_field(e, "static_digest");
  }
  if (e.find("chaos_digest")) {
    b.expected.has_chaos = true;
    b.expected.chaos_digest = hex_field(e, "chaos_digest");
  }
  return b;
}

}  // namespace mb::gen
