// mb-repro bundles: single-artifact record/replay for fuzz discrepancies.
//
// When the differential harness (gen/differential.h) finds a disagreement
// between two views of the same program — verifier vs DES, static bounds
// vs measured makespan, serial vs sharded engine, or two chaos runs — the
// anomaly must survive the process that found it. A bundle captures
// everything needed to re-execute the exact run: the (seed, params) pair
// the generator consumes, the platform (tree, node count, sharded worker
// count), the fault plan if chaos was in play, the producing tool version
// and the expected digests of every arm. `mbctl replay <bundle.json>`
// re-runs the arms byte-identically and re-checks each digest.
//
// Serialization is exact: 64-bit seeds and digests travel as strings
// (decimal / 16-digit hex) because JSON numbers are doubles, and the
// serial makespan travels as its IEEE-754 bit pattern.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "fault/plan.h"
#include "gen/generator.h"

namespace mb::gen {

inline constexpr std::string_view kReproSchemaName = "mb-repro";
inline constexpr int kReproSchemaVersion = 1;

/// The platform half of a recorded run; mirrors what mbctl fuzz resolved
/// from --tree/--sim-jobs at capture time.
struct ReproPlatform {
  std::string tree = "tibidabo";  ///< "tibidabo" | "upgraded"
  std::uint32_t nodes = 0;
  std::uint32_t cores_per_node = 2;
  std::uint32_t sim_jobs = 2;  ///< sharded-arm workers at capture (0 = arm off)
};

/// Expected digests per differential arm. `has_*` false means the arm was
/// not run at capture (e.g. sharded/static arms are skipped for programs
/// the verifier rejects) and replay skips it too.
struct ReproExpected {
  std::uint64_t verifier_digest = 0;
  std::uint64_t verifier_errors = 0;
  std::uint64_t des_digest = 0;
  bool des_completed = false;
  std::uint64_t makespan_bits = 0;  ///< IEEE-754 bits of the serial makespan
  bool has_sharded = false;
  std::uint64_t sharded_digest = 0;
  bool has_static = false;
  std::uint64_t static_digest = 0;
  bool has_chaos = false;
  std::uint64_t chaos_digest = 0;
};

struct ReproBundle {
  std::string tool_version;  ///< stamped with support::version() at write
  std::uint64_t seed = 0;    ///< campaign base seed (MB_SEED / --seed)
  std::uint64_t gen_seed = 0;  ///< generator seed of this program
  GenParams params;
  ReproPlatform platform;
  bool has_fault_plan = false;
  fault::FaultPlan fault_plan;  ///< chaos-arm overlay, when recorded
  std::string oracle;           ///< failed oracle name; "none" = known-good
  std::string note;             ///< human summary of the discrepancy
  ReproExpected expected;
};

/// Serializes a bundle (pretty JSON, stable key order). Round-trips
/// byte-identically through bundle_from_json.
std::string to_json(const ReproBundle& bundle);

/// Parses a bundle document; requires the mb-repro schema marker and a
/// supported version. Throws support::Error on malformed input.
ReproBundle bundle_from_json(std::string_view text);

}  // namespace mb::gen
