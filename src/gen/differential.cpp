#include "gen/differential.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "apps/cluster.h"
#include "fault/chaos.h"
#include "obs/metrics.h"
#include "support/check.h"
#include "support/hash.h"
#include "support/rng.h"
#include "verify/diagnostics.h"
#include "verify/mpi_verify.h"
#include "verify/static_cost.h"

namespace mb::gen {
namespace {

/// Relative slack for the double-summed runtime counters against the
/// exact integer static counts, and for bound comparisons at makespan
/// scale (matches the static-bounds property suite).
constexpr double kRelTol = 1e-9;

apps::ClusterConfig make_cluster(const GenParams& params,
                                 const std::string& tree,
                                 std::uint32_t sim_jobs) {
  const std::uint32_t nodes = params.ranks / 2;  // dual-core node packing
  apps::ClusterConfig cluster = (tree == "upgraded")
                                    ? apps::upgraded_cluster(nodes)
                                    : apps::tibidabo_cluster(nodes);
  // The differential *is* the verification: the DES arm must execute
  // defective programs so the harness can observe whether they block.
  cluster.mpi.verify = false;
  cluster.sim_jobs = sim_jobs;
  return cluster;
}

struct ByteCounters {
  std::vector<double> sent;
  std::vector<double> received;
};

ByteCounters read_counters(std::uint32_t ranks) {
  obs::Registry& registry = obs::metrics();
  ByteCounters c;
  c.sent.resize(ranks);
  c.received.resize(ranks);
  for (std::uint32_t r = 0; r < ranks; ++r) {
    const std::string rank = std::to_string(r);
    c.sent[r] = registry.counter("mpi.bytes_sent", {{"rank", rank}}).value();
    c.received[r] =
        registry.counter("mpi.bytes_received", {{"rank", rank}}).value();
  }
  return c;
}

void feed_failure(support::Hasher& h, const mpi::FailureReport& failure) {
  h.u64(failure.dead_ranks.size());
  for (std::uint32_t r : failure.dead_ranks) h.u64(r);
  h.u64(failure.blocked.size());
  for (const mpi::BlockedOp& b : failure.blocked) {
    h.u64(b.rank)
        .u64(b.peer)
        .u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(b.tag)))
        .u64(b.op_index)
        .f64(b.since_s)
        .u64(b.timed_out ? 1 : 0);
  }
  h.f64(failure.detected_s);
}

struct DesRun {
  apps::AppRunResult result;
  ByteCounters delta;  ///< per-rank payload bytes moved by this run
  std::uint64_t digest = 0;
};

/// One DES execution with its byte-count deltas and structural digest.
/// Counter values are snapshotted around the run so earlier runs in the
/// same process (and open profiler spans) don't bleed into the digest.
DesRun run_des(const GenParams& params, const mpi::Program& program,
               const std::string& tree, std::uint32_t sim_jobs) {
  DesRun run;
  const ByteCounters before = read_counters(params.ranks);
  run.result = apps::run_on_cluster(make_cluster(params, tree, sim_jobs),
                                    program, apps::RunHooks{});
  const ByteCounters after = read_counters(params.ranks);
  run.delta.sent.resize(params.ranks);
  run.delta.received.resize(params.ranks);
  for (std::uint32_t r = 0; r < params.ranks; ++r) {
    run.delta.sent[r] = after.sent[r] - before.sent[r];
    run.delta.received[r] = after.received[r] - before.received[r];
  }

  support::Hasher h;
  const apps::AppRunResult& res = run.result;
  h.u64(res.completed ? 1 : 0)
      .f64(res.makespan_s)
      .f64(res.failed_at_s)
      .u64(res.network_drops)
      .u64(res.network_retransmits)
      .u64(res.injected_losses);
  for (std::uint32_t r = 0; r < params.ranks; ++r)
    h.f64(run.delta.sent[r]).f64(run.delta.received[r]);
  feed_failure(h, res.failure);
  run.digest = h.digest();
  return run;
}

/// Structural digest of a verification report: rule IDs, severities and
/// locations only — never the human-readable messages, which may be
/// reworded without invalidating recorded bundles.
std::uint64_t verifier_digest(const verify::Report& report) {
  support::Hasher h;
  h.u64(report.findings().size());
  for (const verify::Diagnostic& d : report.findings()) {
    h.str(d.rule)
        .u64(static_cast<std::uint64_t>(d.severity))
        .u64(d.location.in_program ? 1 : 0)
        .u64(d.location.rank)
        .u64(d.location.op_index)
        .str(d.location.config_key);
  }
  return h.digest();
}

std::uint64_t static_digest(const verify::CostReport& cost) {
  support::Hasher h;
  h.u64(cost.ranks)
      .u64(cost.total_bytes)
      .u64(cost.total_messages)
      .u64(cost.intra_messages)
      .u64(cost.net_messages)
      .u64(cost.total_frames)
      .f64(cost.makespan_lower_s)
      .f64(cost.makespan_upper_s)
      .f64(cost.makespan_serialized_s);
  for (const verify::RankCost& r : cost.per_rank)
    h.u64(r.bytes_sent)
        .u64(r.bytes_received)
        .u64(r.messages_sent)
        .u64(r.messages_received);
  return h.digest();
}

std::uint64_t chaos_digest(const fault::ChaosResult& result) {
  support::Hasher h;
  h.u64(result.completed ? 1 : 0)
      .u64(result.recovered ? 1 : 0)
      .u64(result.attempts)
      .f64(result.app_makespan_s)
      .f64(result.time_to_solution_s)
      .f64(result.recovery.checkpoint_write_s)
      .f64(result.recovery.lost_work_s)
      .f64(result.recovery.detection_s)
      .f64(result.recovery.restart_s)
      .u64(result.network_drops)
      .u64(result.retransmits)
      .u64(result.injected_losses);
  feed_failure(h, result.failure);
  return h.digest();
}

/// Seeded chaos overlay for the chaos-determinism oracle: one node crash
/// mid-run plus a checkpoint/restart model sized so recovery is possible
/// (interval shorter than the crash time). Scaled from the measured
/// fault-free makespan; deterministic in gen_seed.
fault::FaultPlan derive_fault_plan(std::uint64_t gen_seed,
                                   const GenParams& params,
                                   double makespan_s) {
  support::Rng rng(support::derive_seed(gen_seed, 0xC4A05F17ull));
  const std::uint32_t nodes = params.ranks / 2;
  fault::FaultPlan plan;
  // Keep the seed in u32 range: the mb-fault-plan JSON carries it as a
  // number, and doubles are only exact to 2^53.
  plan.seed = gen_seed & 0xffffffffull;
  fault::NodeCrash crash;
  crash.node = static_cast<std::uint32_t>(rng.index(nodes));
  crash.at_s = std::max(1e-4, makespan_s * rng.uniform(0.3, 0.7));
  plan.crashes.push_back(crash);
  plan.checkpoint.enabled = true;
  plan.checkpoint.interval_s = std::max(1e-3, makespan_s * 0.25);
  plan.checkpoint.state_bytes_per_rank = 1 << 20;
  plan.checkpoint.write_bandwidth_bytes_per_s = 1e9;
  plan.checkpoint.read_bandwidth_bytes_per_s = 1e9;
  plan.checkpoint.restart_overhead_s = 0.005;
  return plan;
}

}  // namespace

SeedOutcome run_differential(std::uint64_t gen_seed, const GenParams& params,
                             const DiffConfig& config) {
  return run_differential(gen_seed, params, generate(gen_seed, params),
                          config);
}

SeedOutcome run_differential(std::uint64_t gen_seed, const GenParams& params,
                             const GeneratedProgram& generated,
                             const DiffConfig& config) {
  SeedOutcome out;
  out.gen_seed = gen_seed;
  out.params = params;
  out.defect = generated.defect;
  const mpi::Program& program = generated.program;

  auto flag = [&out](const std::string& oracle, const std::string& detail) {
    if (out.failed_oracle.empty()) out.failed_oracle = oracle;
    out.discrepancies.push_back(oracle + ": " + detail);
  };

  // Arm 1: static verification.
  const verify::Report verdict = verify::verify_program(program);
  out.verifier_digest = verifier_digest(verdict);
  out.verifier_errors = verdict.errors();

  // Arm 2: serial DES execution (the reference).
  const DesRun serial = run_des(params, program, config.tree, 0);
  out.des_digest = serial.digest;
  out.des_completed = serial.result.completed;
  out.makespan_s = serial.result.completed ? serial.result.makespan_s
                                           : serial.result.failed_at_s;

  // Oracle (a): the verifier must flag exactly the programs the DES
  // cannot complete — no false negatives, no false alarms.
  const bool flagged = config.pretend_clean ? false : out.verifier_errors > 0;
  if (flagged && out.des_completed) {
    flag("verifier-vs-des",
         "verifier reported " + std::to_string(out.verifier_errors) +
             " error(s) but the DES completed the run");
  } else if (!flagged && !out.des_completed) {
    flag("verifier-vs-des",
         "verifier passed the program but the DES did not complete "
         "(blocked at t=" +
             std::to_string(serial.result.failed_at_s) + " s)");
  }

  // The remaining arms are only meaningful for programs that actually
  // verify clean and complete (analyze_cost rejects broken schedules).
  const bool clean = out.verifier_errors == 0 && out.des_completed;

  // Oracle (b): static cost bounds bracket the measured makespan and the
  // exact byte counts match the runtime's counters.
  if (clean && config.check_static) {
    try {
      verify::CostDescriptor descriptor;
      const apps::ClusterConfig cluster = make_cluster(params, config.tree, 0);
      descriptor.tree = cluster.tree;
      descriptor.cores_per_node = cluster.cores_per_node;
      descriptor.mtu_bytes = cluster.mtu_bytes;
      descriptor.mpi = cluster.mpi;
      const verify::CostReport cost = verify::analyze_cost(program, descriptor);
      out.has_static = true;
      out.static_digest = static_digest(cost);

      const double slack = kRelTol * std::max(1.0, out.makespan_s);
      if (cost.makespan_lower_s > out.makespan_s + slack)
        flag("static-bounds",
             "lower bound " + std::to_string(cost.makespan_lower_s) +
                 " s exceeds the DES makespan " +
                 std::to_string(out.makespan_s) + " s");
      if (cost.makespan_upper_s < out.makespan_s - slack)
        flag("static-bounds",
             "upper bound " + std::to_string(cost.makespan_upper_s) +
                 " s is below the DES makespan " +
                 std::to_string(out.makespan_s) + " s");
      for (std::uint32_t r = 0; r < params.ranks; ++r) {
        const auto expect_sent = static_cast<double>(cost.per_rank[r].bytes_sent);
        const auto expect_recv =
            static_cast<double>(cost.per_rank[r].bytes_received);
        if (std::fabs(serial.delta.sent[r] - expect_sent) >
            kRelTol * std::max(1.0, expect_sent))
          flag("static-bounds",
               "rank " + std::to_string(r) + " sent " +
                   std::to_string(serial.delta.sent[r]) +
                   " B but the static count is " +
                   std::to_string(cost.per_rank[r].bytes_sent) + " B");
        if (std::fabs(serial.delta.received[r] - expect_recv) >
            kRelTol * std::max(1.0, expect_recv))
          flag("static-bounds",
               "rank " + std::to_string(r) + " received " +
                   std::to_string(serial.delta.received[r]) +
                   " B but the static count is " +
                   std::to_string(cost.per_rank[r].bytes_received) + " B");
      }
    } catch (const support::Error& e) {
      flag("static-bounds",
           std::string("analyze_cost rejected a verify-clean program: ") +
               e.what());
    }
  }

  // Oracle (c): the sharded engine must reproduce the serial engine's
  // run byte-identically, for any worker count.
  if (clean && config.sim_jobs > 0) {
    const DesRun sharded = run_des(params, program, config.tree,
                                   config.sim_jobs);
    out.has_sharded = true;
    out.sharded_digest = sharded.digest;
    if (sharded.digest != serial.digest)
      flag("sharded-identity",
           "serial digest " + support::hex64(serial.digest) +
               " != sharded(--sim-jobs " + std::to_string(config.sim_jobs) +
               ") digest " + support::hex64(sharded.digest));
  }

  // Oracle (d): chaos recovery under a seeded fault plan is deterministic
  // and satisfies the recovery invariants.
  if (clean && config.with_chaos) {
    fault::ChaosScenario scenario;
    scenario.cluster = make_cluster(params, config.tree, 0);
    // Give the failure detector a horizon: longer than any legitimate
    // wait (bounded by the fault-free makespan) so healthy ranks are
    // never declared dead, short enough that detection happens.
    scenario.cluster.mpi.recv_timeout_s = 0.05 + 2.0 * out.makespan_s;
    scenario.plan = config.fault_plan_override
                        ? *config.fault_plan_override
                        : derive_fault_plan(gen_seed, params, out.makespan_s);
    out.fault_plan = scenario.plan;
    out.has_fault_plan = true;

    const fault::ChaosResult first = fault::run_chaos(scenario, program);
    const fault::ChaosResult second = fault::run_chaos(scenario, program);
    out.has_chaos = true;
    out.chaos_digest = chaos_digest(first);
    if (chaos_digest(second) != out.chaos_digest)
      flag("chaos-determinism",
           "two identical chaos runs disagree: " +
               support::hex64(out.chaos_digest) + " vs " +
               support::hex64(chaos_digest(second)));
    if (first.attempts < 1)
      flag("chaos-determinism", "chaos run reports zero attempts");
    if (first.completed &&
        first.time_to_solution_s + 1e-12 < first.app_makespan_s)
      flag("chaos-determinism",
           "time-to-solution " + std::to_string(first.time_to_solution_s) +
               " s is below the app makespan " +
               std::to_string(first.app_makespan_s) + " s");
    if (first.recovered && first.attempts < 2)
      flag("chaos-determinism",
           "run claims recovery after " + std::to_string(first.attempts) +
               " attempt(s)");
  }

  return out;
}

ReproBundle make_bundle(const SeedOutcome& outcome, const DiffConfig& config,
                        std::uint64_t campaign_seed) {
  ReproBundle b;
  b.seed = campaign_seed;
  b.gen_seed = outcome.gen_seed;
  b.params = outcome.params;
  b.platform.tree = config.tree;
  b.platform.nodes = outcome.params.ranks / 2;
  b.platform.cores_per_node = 2;
  b.platform.sim_jobs = config.sim_jobs;
  b.has_fault_plan = outcome.has_fault_plan;
  b.fault_plan = outcome.fault_plan;
  b.oracle = outcome.failed_oracle.empty() ? "none" : outcome.failed_oracle;
  b.note = outcome.discrepancies.empty() ? std::string()
                                         : outcome.discrepancies.front();

  b.expected.verifier_digest = outcome.verifier_digest;
  b.expected.verifier_errors = outcome.verifier_errors;
  b.expected.des_digest = outcome.des_digest;
  b.expected.des_completed = outcome.des_completed;
  double makespan = outcome.makespan_s;
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof makespan);
  std::memcpy(&bits, &makespan, sizeof bits);
  b.expected.makespan_bits = bits;
  b.expected.has_sharded = outcome.has_sharded;
  b.expected.sharded_digest = outcome.sharded_digest;
  b.expected.has_static = outcome.has_static;
  b.expected.static_digest = outcome.static_digest;
  b.expected.has_chaos = outcome.has_chaos;
  b.expected.chaos_digest = outcome.chaos_digest;
  return b;
}

ReplayOutcome replay_bundle(const ReproBundle& bundle, int sim_jobs_override) {
  DiffConfig config;
  config.tree = bundle.platform.tree;
  config.sim_jobs = sim_jobs_override >= 0
                        ? static_cast<std::uint32_t>(sim_jobs_override)
                        : bundle.platform.sim_jobs;
  // The arms replayed are exactly the arms recorded.
  if (!bundle.expected.has_sharded) config.sim_jobs = 0;
  if (bundle.expected.has_sharded && config.sim_jobs == 0) config.sim_jobs = 1;
  config.check_static = bundle.expected.has_static;
  config.with_chaos = bundle.expected.has_chaos;
  config.fault_plan_override =
      bundle.has_fault_plan ? &bundle.fault_plan : nullptr;

  ReplayOutcome rep;
  rep.observed = run_differential(bundle.gen_seed, bundle.params, config);
  const SeedOutcome& got = rep.observed;
  const ReproExpected& want = bundle.expected;

  auto expect_digest = [&rep](const char* arm, std::uint64_t want_digest,
                              std::uint64_t got_digest) {
    if (want_digest != got_digest)
      rep.mismatches.push_back(std::string(arm) + ": expected " +
                               support::hex64(want_digest) + ", observed " +
                               support::hex64(got_digest));
  };

  expect_digest("verifier_digest", want.verifier_digest, got.verifier_digest);
  if (want.verifier_errors != got.verifier_errors)
    rep.mismatches.push_back(
        "verifier_errors: expected " + std::to_string(want.verifier_errors) +
        ", observed " + std::to_string(got.verifier_errors));
  expect_digest("des_digest", want.des_digest, got.des_digest);
  if (want.des_completed != got.des_completed)
    rep.mismatches.push_back(std::string("des_completed: expected ") +
                             (want.des_completed ? "true" : "false") +
                             ", observed " +
                             (got.des_completed ? "true" : "false"));
  double got_makespan = got.makespan_s;
  std::uint64_t got_bits = 0;
  std::memcpy(&got_bits, &got_makespan, sizeof got_bits);
  expect_digest("makespan_bits", want.makespan_bits, got_bits);
  if (want.has_sharded) {
    if (!got.has_sharded)
      rep.mismatches.push_back("sharded arm recorded but not replayed");
    else
      expect_digest("sharded_digest", want.sharded_digest, got.sharded_digest);
  }
  if (want.has_static) {
    if (!got.has_static)
      rep.mismatches.push_back("static arm recorded but not replayed");
    else
      expect_digest("static_digest", want.static_digest, got.static_digest);
  }
  if (want.has_chaos) {
    if (!got.has_chaos)
      rep.mismatches.push_back("chaos arm recorded but not replayed");
    else
      expect_digest("chaos_digest", want.chaos_digest, got.chaos_digest);
  }
  return rep;
}

}  // namespace mb::gen
