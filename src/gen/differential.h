// Differential fuzzing harness: four independent views of one program.
//
// For each generated (seed, params) program the harness cross-checks:
//
//  (a) verifier vs DES — the static verifier must flag *exactly* the
//      programs that fail to complete under the DES: an error on a
//      program that runs, or a clean bill on a program that blocks, is a
//      simulator or verifier bug (no false negatives, no false alarms);
//  (b) static bounds — analyze_cost's [lower, upper] must bracket the
//      measured makespan and its per-rank byte counts must equal the
//      runtime's counters exactly;
//  (c) engine identity — the sharded conservative-lookahead engine
//      (--sim-jobs N) must reproduce the serial engine's results
//      byte-identically;
//  (d) chaos determinism — with a seeded fault-plan overlay, two chaos
//      runs must agree digest-for-digest and satisfy the recovery
//      invariants (time-to-solution >= makespan, recovered => restarted).
//
// Digest recipes hash structural facts only (rule IDs, locations, counter
// deltas, IEEE-754 bit patterns) — never human-readable messages — so
// wording changes don't invalidate recorded bundles.
//
// Threading: every oracle runs the DES, and the DES publishes to the
// single-threaded obs::metrics() registry. run_differential must be
// called from the thread that owns the registry (never from campaign
// workers); byte-count deltas are snapshotted around each run so open
// profiler spans and earlier runs don't bleed in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "gen/bundle.h"
#include "gen/generator.h"

namespace mb::gen {

struct DiffConfig {
  std::string tree = "tibidabo";  ///< "tibidabo" | "upgraded"
  std::uint32_t sim_jobs = 2;     ///< sharded-arm workers; 0 = skip oracle (c)
  bool check_static = true;       ///< oracle (b)
  bool with_chaos = false;        ///< oracle (d)
  /// Test fixture: report the verifier as clean regardless of findings,
  /// guaranteeing an oracle-(a) discrepancy on every defective program.
  /// Exists so the bundle-writing path is itself testable end to end.
  bool pretend_clean = false;
  /// Replay: use this recorded plan for the chaos arm instead of
  /// re-deriving one from the seed.
  const fault::FaultPlan* fault_plan_override = nullptr;
};

/// Everything one differential run observed. `discrepancies` empty means
/// all oracles agree.
struct SeedOutcome {
  std::uint64_t gen_seed = 0;
  GenParams params;
  std::string defect;  ///< generator's injected defect ("" = clean)

  std::uint64_t verifier_digest = 0;
  std::uint64_t verifier_errors = 0;
  std::uint64_t des_digest = 0;
  bool des_completed = false;
  double makespan_s = 0.0;  ///< serial-engine makespan (drain time if failed)

  bool has_sharded = false;
  std::uint64_t sharded_digest = 0;
  bool has_static = false;
  std::uint64_t static_digest = 0;
  bool has_chaos = false;
  std::uint64_t chaos_digest = 0;
  bool has_fault_plan = false;
  fault::FaultPlan fault_plan;

  std::vector<std::string> discrepancies;
  std::string failed_oracle;  ///< first failed oracle name ("" = none)

  bool ok() const { return discrepancies.empty(); }
};

/// Runs the differential for one (seed, params) pair, generating the
/// program internally. See the threading note above.
SeedOutcome run_differential(std::uint64_t gen_seed, const GenParams& params,
                             const DiffConfig& config);

/// Same, with a pre-generated program (mbctl fuzz generates in parallel
/// across --jobs workers, then runs the oracles serially). `generated`
/// must be generate(gen_seed, params)'s result.
SeedOutcome run_differential(std::uint64_t gen_seed, const GenParams& params,
                             const GeneratedProgram& generated,
                             const DiffConfig& config);

/// Packages an outcome as an mb-repro bundle (expected digests = what
/// this run observed).
ReproBundle make_bundle(const SeedOutcome& outcome, const DiffConfig& config,
                        std::uint64_t campaign_seed);

struct ReplayOutcome {
  SeedOutcome observed;
  /// Expected-vs-observed digest differences; empty = faithful replay.
  std::vector<std::string> mismatches;

  bool match() const { return mismatches.empty(); }
};

/// Re-executes a bundle and re-checks every digest it records. The arms
/// replayed are exactly the arms recorded. `sim_jobs_override < 0` keeps
/// the bundle's worker count; any value >= 1 must reproduce the same
/// digests (sharded-engine byte identity makes worker count irrelevant).
ReplayOutcome replay_bundle(const ReproBundle& bundle,
                            int sim_jobs_override = -1);

}  // namespace mb::gen
