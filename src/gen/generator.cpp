#include "gen/generator.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include "support/check.h"
#include "support/hash.h"
#include "support/rng.h"

namespace mb::gen {
namespace {

// Keep generated user tags far below the runtime's reserved collective
// tag space (1 << 16); the budget is generous — patterns use at most a
// handful of tags per round.
constexpr std::int32_t kMaxUserTag = 1 << 15;

struct Builder {
  const GenParams& params;
  support::Rng& rng;
  mpi::Program& program;
  std::int32_t next_tag = 0;

  std::int32_t tag() {
    support::check(next_tag < kMaxUserTag, "gen",
                   "generated program exhausted the user tag budget");
    return next_tag++;
  }

  std::uint64_t bytes() {
    if (params.min_bytes == params.max_bytes) return params.min_bytes;
    const double lo = std::log2(static_cast<double>(params.min_bytes));
    const double hi = std::log2(static_cast<double>(params.max_bytes));
    const auto v =
        static_cast<std::uint64_t>(std::llround(std::exp2(rng.uniform(lo, hi))));
    if (v < params.min_bytes) return params.min_bytes;
    if (v > params.max_bytes) return params.max_bytes;
    return v;
  }

  double compute() {
    const double skew = 1.0 + params.imbalance * (2.0 * rng.uniform() - 1.0);
    return params.compute_s * skew;
  }

  // One ring halo-exchange round: everyone computes, eagerly sends both
  // halos, then receives both. Sends are buffered so send-send-recv-recv
  // cannot deadlock.
  void halo_round() {
    const std::uint32_t n = program.ranks();
    const std::int32_t tag_right = tag();  // messages travelling rank+1
    const std::int32_t tag_left = tag();   // messages travelling rank-1
    for (std::uint32_t r = 0; r < n; ++r) {
      const std::uint32_t right = (r + 1) % n;
      const std::uint32_t left = (r + n - 1) % n;
      program.append(r, mpi::Op::compute(compute(), "halo-compute"));
      program.append(r, mpi::Op::send(right, bytes(), tag_right));
      program.append(r, mpi::Op::send(left, bytes(), tag_left));
      program.append(r, mpi::Op::recv(left, tag_right));
      program.append(r, mpi::Op::recv(right, tag_left));
    }
  }

  // One alltoallv round. A single counts vector shared by every rank —
  // the consistency the verifier's MPI004/MPI008 rules demand.
  void alltoall_round() {
    const std::uint32_t n = program.ranks();
    std::vector<std::uint64_t> counts(n);
    for (std::uint32_t d = 0; d < n; ++d) counts[d] = bytes();
    for (std::uint32_t r = 0; r < n; ++r)
      program.append(r, mpi::Op::compute(compute(), "a2a-compute"));
    program.append_all(mpi::Op::alltoallv(counts, "gen-alltoallv"));
  }

  // One pipeline round: rank r feeds rank r+1 along the chain.
  void pipeline_round() {
    const std::uint32_t n = program.ranks();
    const std::int32_t t = tag();
    for (std::uint32_t r = 0; r < n; ++r) {
      if (r > 0) program.append(r, mpi::Op::recv(r - 1, t));
      program.append(r, mpi::Op::compute(compute(), "stage-compute"));
      if (r + 1 < n) program.append(r, mpi::Op::send(r + 1, bytes(), t));
    }
  }

  // One master/worker round: rank 0 scatters one task to each worker and
  // collects one result from each.
  void master_worker_round() {
    const std::uint32_t n = program.ranks();
    const std::int32_t tag_task = tag();
    const std::int32_t tag_result = tag();
    program.append(0, mpi::Op::compute(compute(), "master-compute"));
    for (std::uint32_t w = 1; w < n; ++w)
      program.append(0, mpi::Op::send(w, bytes(), tag_task));
    for (std::uint32_t w = 1; w < n; ++w) {
      program.append(w, mpi::Op::recv(0, tag_task));
      program.append(w, mpi::Op::compute(compute(), "worker-compute"));
      program.append(w, mpi::Op::send(0, bytes(), tag_result));
    }
    for (std::uint32_t w = 1; w < n; ++w)
      program.append(0, mpi::Op::recv(w, tag_result));
  }

  void collective() {
    const std::uint32_t n = program.ranks();
    const auto root = static_cast<std::uint32_t>(rng.index(n));
    switch (rng.index(7)) {
      case 0: program.append_all(mpi::Op::barrier()); break;
      case 1: program.append_all(mpi::Op::bcast(root, bytes())); break;
      case 2: program.append_all(mpi::Op::allreduce(bytes())); break;
      case 3: program.append_all(mpi::Op::gather(root, bytes())); break;
      case 4: program.append_all(mpi::Op::scatter(root, bytes())); break;
      case 5: program.append_all(mpi::Op::allgather(bytes())); break;
      default: program.append_all(mpi::Op::reduce(root, bytes())); break;
    }
  }

  void round(Pattern p) {
    switch (p) {
      case Pattern::kHalo: halo_round(); break;
      case Pattern::kAllToAll: alltoall_round(); break;
      case Pattern::kPipeline: pipeline_round(); break;
      case Pattern::kMasterWorker: master_worker_round(); break;
      case Pattern::kMixed: {
        switch (rng.index(4)) {
          case 0: halo_round(); break;
          case 1: alltoall_round(); break;
          case 2: pipeline_round(); break;
          default: master_worker_round(); break;
        }
        if (rng.bernoulli(params.collective_prob)) collective();
        break;
      }
    }
  }

  // Defect epilogues. Appended after the full clean body so they are
  // reachable regardless of pattern; each plants a receive that blocks
  // forever, which both the verifier (error) and the DES (incomplete run)
  // observe — the exactness the differential oracle relies on.
  std::string inject_defect(std::size_t cls) {
    switch (cls) {
      case 0: {  // send and recv that disagree on the tag
        const std::int32_t sent = tag();
        const std::int32_t expected = tag();
        program.append(1, mpi::Op::send(0, bytes(), sent));
        program.append(0, mpi::Op::recv(1, expected));
        return "tag-mismatch";
      }
      case 1: {  // recv whose matching send was never written
        program.append(0, mpi::Op::recv(1, tag()));
        return "missing-send";
      }
      default: {  // both ranks receive before sending: wait-for cycle
        const std::int32_t t01 = tag();
        const std::int32_t t10 = tag();
        program.append(0, mpi::Op::recv(1, t10));
        program.append(0, mpi::Op::send(1, bytes(), t01));
        program.append(1, mpi::Op::recv(0, t01));
        program.append(1, mpi::Op::send(0, bytes(), t10));
        return "recv-cycle";
      }
    }
  }
};

void validate(const GenParams& p) {
  support::check(p.ranks >= 4 && p.ranks % 2 == 0, "gen",
                 "ranks must be even and >= 4");
  support::check(p.rounds >= 1 && p.rounds <= 64, "gen",
                 "rounds must be in [1, 64]");
  support::check(p.min_bytes >= 1 && p.min_bytes <= p.max_bytes, "gen",
                 "need 1 <= min_bytes <= max_bytes");
  support::check(p.max_bytes <= (1ULL << 30), "gen",
                 "max_bytes above 1 GiB is not a fuzzing payload");
  support::check(std::isfinite(p.compute_s) && p.compute_s >= 0.0, "gen",
                 "compute_s must be finite and >= 0");
  support::check(p.imbalance >= 0.0 && p.imbalance < 1.0, "gen",
                 "imbalance must be in [0, 1)");
  support::check(p.collective_prob >= 0.0 && p.collective_prob <= 1.0, "gen",
                 "collective_prob must be in [0, 1]");
  support::check(p.defect_prob >= 0.0 && p.defect_prob <= 1.0, "gen",
                 "defect_prob must be in [0, 1]");
}

}  // namespace

std::string_view pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kHalo: return "halo";
    case Pattern::kAllToAll: return "alltoall";
    case Pattern::kPipeline: return "pipeline";
    case Pattern::kMasterWorker: return "master-worker";
    case Pattern::kMixed: return "mixed";
  }
  return "mixed";
}

Pattern parse_pattern(std::string_view name) {
  if (name == "halo") return Pattern::kHalo;
  if (name == "alltoall") return Pattern::kAllToAll;
  if (name == "pipeline") return Pattern::kPipeline;
  if (name == "master-worker") return Pattern::kMasterWorker;
  if (name == "mixed") return Pattern::kMixed;
  support::check(false, "gen",
                 "unknown pattern (expected halo|alltoall|pipeline|"
                 "master-worker|mixed)");
  return Pattern::kMixed;
}

std::uint64_t params_hash(const GenParams& p) {
  support::Hasher h;
  h.str(pattern_name(p.pattern))
      .u64(p.ranks)
      .u64(p.rounds)
      .u64(p.min_bytes)
      .u64(p.max_bytes)
      .f64(p.compute_s)
      .f64(p.imbalance)
      .f64(p.collective_prob)
      .f64(p.defect_prob);
  return h.digest();
}

void write_params(support::JsonWriter& w, const GenParams& p) {
  w.begin_object();
  w.field("pattern", pattern_name(p.pattern));
  w.field("ranks", p.ranks);
  w.field("rounds", p.rounds);
  w.field("min_bytes", p.min_bytes);
  w.field("max_bytes", p.max_bytes);
  w.field("compute_s", p.compute_s);
  w.field("imbalance", p.imbalance);
  w.field("collective_prob", p.collective_prob);
  w.field("defect_prob", p.defect_prob);
  w.end_object();
}

GenParams params_from_json(const support::JsonValue& v) {
  GenParams p;
  p.pattern = parse_pattern(v.at("pattern").as_string());
  p.ranks = static_cast<std::uint32_t>(v.at("ranks").as_number());
  p.rounds = static_cast<std::uint32_t>(v.at("rounds").as_number());
  p.min_bytes = static_cast<std::uint64_t>(v.at("min_bytes").as_number());
  p.max_bytes = static_cast<std::uint64_t>(v.at("max_bytes").as_number());
  p.compute_s = v.at("compute_s").as_number();
  p.imbalance = v.at("imbalance").as_number();
  p.collective_prob = v.at("collective_prob").as_number();
  p.defect_prob = v.at("defect_prob").as_number();
  validate(p);
  return p;
}

GeneratedProgram generate(std::uint64_t seed, const GenParams& params) {
  validate(params);
  support::Rng rng(seed);
  GeneratedProgram out;
  out.program = mpi::Program(params.ranks);
  Builder b{params, rng, out.program};

  // Decide the defect up front so the body's draw sequence is identical
  // for a given seed whether or not a defect follows it.
  const bool defective = rng.bernoulli(params.defect_prob);
  const std::size_t defect_class = defective ? rng.index(3) : 0;

  for (std::uint32_t round = 0; round < params.rounds; ++round)
    b.round(params.pattern);
  if (defective) out.defect = b.inject_defect(defect_class);
  return out;
}

std::uint64_t program_digest(const mpi::Program& program) {
  support::Hasher h;
  h.u64(program.ranks());
  for (std::uint32_t r = 0; r < program.ranks(); ++r) {
    const auto& ops = program.rank(r);
    h.u64(ops.size());
    for (const auto& op : ops) {
      h.u64(static_cast<std::uint64_t>(op.kind))
          .f64(op.seconds)
          .u64(op.peer)
          .u64(op.bytes)
          .u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(op.tag)))
          .u64(op.root)
          .u64(op.counts.size());
      for (std::uint64_t c : op.counts) h.u64(c);
      h.str(op.label);
    }
  }
  return h.digest();
}

GenParams sweep_params(std::uint64_t seed, const SweepSpec& spec) {
  support::Rng rng(support::derive_seed(seed, params_hash(spec.base)));
  GenParams p = spec.base;
  if (!spec.pin_pattern) {
    constexpr Pattern kAll[] = {Pattern::kHalo, Pattern::kAllToAll,
                                Pattern::kPipeline, Pattern::kMasterWorker,
                                Pattern::kMixed};
    p.pattern = kAll[rng.index(5)];
  }
  if (!spec.pin_ranks) {
    constexpr std::uint32_t kRanks[] = {4, 8, 12, 16};
    p.ranks = kRanks[rng.index(4)];
  }
  if (!spec.pin_rounds) {
    p.rounds = static_cast<std::uint32_t>(2 + rng.index(3));
  }
  return p;
}

}  // namespace mb::gen
