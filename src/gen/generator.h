// Seeded MPI program generation.
//
// Only three hand-written apps (HPL/HYDRO/SPECFEM3D models) exercise the
// verifier, the DES and the chaos executor — a bug outside their
// communication patterns is invisible. This module closes that gap: a
// deterministic generator that emits valid mpi::Programs parameterized by
// communication pattern, rank count, message-size distribution and
// collective mix. Every program is a pure function of a single
// (seed, params) pair, which is what makes the differential fuzzing
// harness (gen/differential.h) and the mb-repro record/replay bundles
// (gen/bundle.h) possible: the artifact only needs to carry the pair, not
// the program.
//
// Defect injection: with probability `defect_prob` the generator plants
// exactly one communication defect. All three defect classes are chosen
// to produce a *blocked receive* — a receive the verifier proves orphaned
// or deadlocked AND that stalls the DES — because that is the property
// the verifier-vs-DES oracle needs to be exact. (An unmatched *send*
// alone would not do: sends are buffered/eager, so the verifier errors
// but the simulated run still completes.)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "mpi/program.h"
#include "support/json.h"

namespace mb::gen {

/// Communication skeleton of a generated program.
enum class Pattern : std::uint8_t {
  kHalo,          ///< 1-D periodic halo exchange (ring neighbours)
  kAllToAll,      ///< alltoallv rounds with a shared counts vector
  kPipeline,      ///< rank-chain producer/consumer stages
  kMasterWorker,  ///< rank 0 scatters tasks, collects results
  kMixed,         ///< per-round pattern draw + optional collective
};

std::string_view pattern_name(Pattern p);
/// Parses a pattern name ("halo", "alltoall", "pipeline",
/// "master-worker", "mixed"); throws support::Error on anything else.
Pattern parse_pattern(std::string_view name);

/// The parameter half of the (seed, params) pair. Message sizes are drawn
/// log-uniformly from [min_bytes, max_bytes]; compute intervals are
/// compute_s skewed by +/- imbalance per rank per round.
struct GenParams {
  Pattern pattern = Pattern::kMixed;
  std::uint32_t ranks = 8;   ///< even, >= 4 (dual-core node packing)
  std::uint32_t rounds = 3;  ///< >= 1
  std::uint64_t min_bytes = 64;
  std::uint64_t max_bytes = 32 * 1024;
  double compute_s = 0.002;       ///< mean per-round compute interval
  double imbalance = 0.3;         ///< per-rank compute skew, in [0, 1)
  double collective_prob = 0.35;  ///< mixed: trailing collective chance
  double defect_prob = 0.0;       ///< chance of one injected defect
};

/// Stable content hash of the parameter set (bundle digests, cache keys).
std::uint64_t params_hash(const GenParams& params);

/// Writes params as a JSON object value into an open writer (the caller
/// provides the surrounding key); the inverse of params_from_json.
void write_params(support::JsonWriter& w, const GenParams& params);
GenParams params_from_json(const support::JsonValue& v);

struct GeneratedProgram {
  mpi::Program program{1};
  /// Injected defect class: "" (clean), "tag-mismatch", "missing-send"
  /// or "recv-cycle".
  std::string defect;

  bool has_defect() const { return !defect.empty(); }
};

/// Generates the program for (seed, params). Deterministic: identical
/// inputs yield identical programs on every platform and build. Clean
/// programs (defect empty) verify with zero errors and complete under
/// the DES; defective programs do neither. Throws support::Error on
/// out-of-range params.
GeneratedProgram generate(std::uint64_t seed, const GenParams& params);

/// Stable content hash of a program (determinism tests, replay checks).
std::uint64_t program_digest(const mpi::Program& program);

/// Per-seed parameter derivation for fuzz sweeps: unpinned dimensions
/// (pattern, ranks, rounds) are drawn from the seed so one seed range
/// covers the whole pattern/size matrix; pinned ones keep base's value.
struct SweepSpec {
  GenParams base;
  bool pin_pattern = false;
  bool pin_ranks = false;
  bool pin_rounds = false;
};

GenParams sweep_params(std::uint64_t seed, const SweepSpec& spec);

}  // namespace mb::gen
