#include "gpu/gpu_model.h"

#include <algorithm>
#include <cmath>

namespace mb::gpu {

GpuDevice mali_t604() {
  GpuDevice d;
  d.name = "Mali-T604";
  d.peak_sp_gflops = 68.0;
  d.mem_bandwidth_bytes_per_s = 6.0e9;  // shares the LP-DDR3 with the CPU
  d.launch_overhead_s = 12e-6;
  d.local_memory_bytes = 32 * 1024;
  d.efficiency = 0.55;
  d.general_purpose = true;
  d.power_w = 2.0;
  return d;
}

GpuDevice tegra3_gpu() {
  GpuDevice d;
  d.name = "Tegra3 GPU (GPGPU-capable companion)";
  d.peak_sp_gflops = 24.0;
  d.mem_bandwidth_bytes_per_s = 2.0e9;
  d.launch_overhead_s = 25e-6;  // discrete-ish path over the SoC fabric
  d.local_memory_bytes = 16 * 1024;
  d.efficiency = 0.5;
  d.general_purpose = true;
  d.power_w = 2.5;
  return d;
}

GpuDevice mali_400() {
  GpuDevice d;
  d.name = "Mali-400";
  d.peak_sp_gflops = 10.0;
  d.mem_bandwidth_bytes_per_s = 0.8e9;
  d.general_purpose = false;  // no compute API on the Snowball's GPU
  d.power_w = 1.0;
  return d;
}

void GpuKernel::validate() const {
  support::check(flops_per_element > 0.0, "GpuKernel",
                 "flops_per_element must be positive");
  support::check(bytes_per_element >= 0.0, "GpuKernel",
                 "bytes_per_element must be non-negative");
  support::check(elements > 0, "GpuKernel", "elements must be positive");
  support::check(buffer_elements > 0, "GpuKernel",
                 "buffer_elements must be positive");
  support::check(element_bytes > 0, "GpuKernel",
                 "element_bytes must be positive");
}

double gpu_kernel_seconds(const GpuDevice& device, const GpuKernel& kernel) {
  kernel.validate();
  support::check(device.general_purpose, "gpu_kernel_seconds",
                 "device has no general-purpose compute capability");

  const std::uint64_t launches =
      (kernel.elements + kernel.buffer_elements - 1) /
      kernel.buffer_elements;
  const std::uint64_t chunk_bytes =
      kernel.buffer_elements * kernel.element_bytes;
  const bool spills = chunk_bytes > device.local_memory_bytes;
  const double throughput = device.peak_sp_gflops * 1e9 *
                            device.efficiency *
                            (spills ? device.spill_throughput_factor : 1.0);

  double total = 0.0;
  std::uint64_t remaining = kernel.elements;
  for (std::uint64_t l = 0; l < launches; ++l) {
    const std::uint64_t n =
        std::min<std::uint64_t>(kernel.buffer_elements, remaining);
    remaining -= n;
    const double compute =
        static_cast<double>(n) * kernel.flops_per_element / throughput;
    const double memory = static_cast<double>(n) * kernel.bytes_per_element /
                          device.mem_bandwidth_bytes_per_s;
    total += device.launch_overhead_s + std::max(compute, memory);
  }
  return total;
}

double gpu_kernel_joules(const GpuDevice& device, const GpuKernel& kernel) {
  return device.power_w * gpu_kernel_seconds(device, kernel);
}

}  // namespace mb::gpu
