// Embedded-GPU execution model (paper Sec. VI, "Perspectives").
//
// The paper's forward-looking sections argue that (a) hybrid
// CPU+embedded-GPU nodes are the path to 5-7 GFLOPS/W (Tegra3 extension of
// Tibidabo, Mali-T604 in the final prototype) and (b) GPU kernels need
// *instance-specific* tuning — "optimal buffer size used in GPU kernel
// could be tuned to match the length of the input problem", enabled by
// OpenCL's runtime compilation.
//
// The model is deliberately throughput-level: a kernel launch costs a
// fixed software overhead plus max(compute, memory) time; work is
// processed in buffer-sized chunks, so small buffers are launch-overhead
// bound, oversized buffers spill out of local memory — the convex curve
// whose optimum moves with the problem size.
#pragma once

#include <cstdint>
#include <string>

#include "support/check.h"

namespace mb::gpu {

struct GpuDevice {
  std::string name;
  double peak_sp_gflops = 0.0;
  double mem_bandwidth_bytes_per_s = 0.0;
  double launch_overhead_s = 15e-6;   ///< driver + queue submission
  std::uint64_t local_memory_bytes = 32 * 1024;
  /// Throughput multiplier once a chunk exceeds local memory (spills to
  /// global memory): < 1.
  double spill_throughput_factor = 0.25;
  /// Achievable fraction of peak on well-shaped kernels.
  double efficiency = 0.6;
  bool general_purpose = true;
  double power_w = 1.5;  ///< incremental board power while busy
};

/// The GPUs the paper names.
GpuDevice mali_t604();        ///< final Mont-Blanc prototype (Exynos 5)
GpuDevice tegra3_gpu();       ///< Tibidabo extension, SP-capable
GpuDevice mali_400();         ///< Snowball; NOT general purpose

/// One data-parallel kernel pass over `elements` items.
struct GpuKernel {
  double flops_per_element = 0.0;
  double bytes_per_element = 0.0;   ///< global traffic per element
  std::uint64_t elements = 0;       ///< instance size N
  std::uint64_t buffer_elements = 0;///< tunable chunk size B
  std::uint64_t element_bytes = 4;  ///< SP data

  void validate() const;
};

/// Execution time of the kernel on the device, processing the instance in
/// ceil(N / B) buffer-sized launches.
double gpu_kernel_seconds(const GpuDevice& device, const GpuKernel& kernel);

/// Energy consumed by the GPU for that time.
double gpu_kernel_joules(const GpuDevice& device, const GpuKernel& kernel);

}  // namespace mb::gpu
