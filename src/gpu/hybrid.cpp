#include "gpu/hybrid.h"

#include "arch/platforms.h"
#include "support/check.h"

namespace mb::gpu {

HybridNode tegra3_node() {
  // A Tegra3-class CPU: model as the Tegra2 node descriptor with four
  // cores at a slightly higher clock and NEON present (Tegra3 restored
  // the media extension).
  arch::Platform cpu = arch::tegra2_node();
  cpu.name = "Tegra3 (4x Cortex-A9 @1.3 GHz + NEON)";
  cpu.cores = 4;
  cpu.core.freq_hz = 1.3e9;
  cpu.core.vector_bits = 64;
  cpu.core.recip_throughput[static_cast<std::size_t>(
      arch::OpClass::kVecSp)] = 2.0;
  cpu.power_w = 4.0;
  return {cpu, tegra3_gpu()};
}

HybridNode exynos5_node() { return {arch::exynos5(), mali_t604()}; }

HybridThroughput hybrid_sp_throughput(const HybridNode& node,
                                      double cpu_efficiency) {
  support::check(cpu_efficiency > 0.0 && cpu_efficiency <= 1.0,
                 "hybrid_sp_throughput",
                 "cpu_efficiency must be in (0, 1]");
  support::check(node.gpu.general_purpose, "hybrid_sp_throughput",
                 "node's GPU cannot run compute kernels");

  HybridThroughput t;
  t.cpu_gflops = node.cpu.peak_sp_gflops() * cpu_efficiency;
  t.gpu_gflops = node.gpu.peak_sp_gflops * node.gpu.efficiency;
  t.total_gflops = t.cpu_gflops + t.gpu_gflops;
  t.gpu_fraction = t.gpu_gflops / t.total_gflops;
  t.gflops_per_watt = t.total_gflops / node.power_w();
  return t;
}

double hybrid_seconds(const HybridNode& node, double flops,
                      double cpu_efficiency) {
  support::check(flops >= 0.0, "hybrid_seconds",
                 "flops must be non-negative");
  const HybridThroughput t = hybrid_sp_throughput(node, cpu_efficiency);
  return flops / (t.total_gflops * 1e9);
}

}  // namespace mb::gpu
