// Hybrid CPU+GPU node model (paper Sec. VI-A).
//
// "Low-power versions of these accelerators exist and have a very
// attractive performance per Watt ratio" — the paper's case for extending
// Tibidabo with Tegra3+GPU and for the Exynos5/Mali-T604 prototype, where
// "even an efficiency of 5 or 7 GFLOPS per Watt would be an
// accomplishment". This module computes the achievable single-precision
// throughput and GFLOPS/W of a CPU+GPU node with work split between the
// two, for codes (like SPECFEM3D) that can use single precision.
#pragma once

#include "arch/platform.h"
#include "gpu/gpu_model.h"

namespace mb::gpu {

struct HybridNode {
  arch::Platform cpu;
  GpuDevice gpu;

  /// Total board power while both engines are busy.
  double power_w() const { return cpu.power_w + gpu.power_w; }
};

/// The Tibidabo extension: Tegra3-class node with a companion GPU.
HybridNode tegra3_node();
/// The final Mont-Blanc prototype node: Exynos5 + Mali-T604.
HybridNode exynos5_node();

struct HybridThroughput {
  double cpu_gflops = 0.0;
  double gpu_gflops = 0.0;
  double total_gflops = 0.0;
  double gpu_fraction = 0.0;       ///< share of work placed on the GPU
  double gflops_per_watt = 0.0;
};

/// Optimal static split of a single-precision, compute-bound workload
/// between CPU and GPU (both run concurrently; the split equalizes finish
/// times). `cpu_efficiency` discounts the CPU's achievable fraction of SP
/// peak on the given kernel.
HybridThroughput hybrid_sp_throughput(const HybridNode& node,
                                      double cpu_efficiency = 0.5);

/// Time to run `flops` single-precision flops with the optimal split.
double hybrid_seconds(const HybridNode& node, double flops,
                      double cpu_efficiency = 0.5);

}  // namespace mb::gpu
