#include "kernels/chess/bitboard.h"

#include <array>

namespace mb::kernels::chess {
namespace {

// thread_local: a campaign worker's search must count only its own ops —
// reset_bitboard_ops/bitboard_ops bracket a search that runs entirely on
// one thread.
thread_local std::uint64_t g_bitboard_ops = 0;

std::array<Bitboard, 64> build_knight_table() {
  std::array<Bitboard, 64> t{};
  constexpr int kOffsets[8][2] = {{1, 2},  {2, 1},  {2, -1}, {1, -2},
                                  {-1, -2}, {-2, -1}, {-2, 1}, {-1, 2}};
  for (Square s = 0; s < 64; ++s) {
    Bitboard a = 0;
    for (const auto& o : kOffsets) {
      const int f = file_of(s) + o[0];
      const int r = rank_of(s) + o[1];
      if (f >= 0 && f < 8 && r >= 0 && r < 8) a |= bb(make_square(f, r));
    }
    t[static_cast<std::size_t>(s)] = a;
  }
  return t;
}

std::array<Bitboard, 64> build_king_table() {
  std::array<Bitboard, 64> t{};
  for (Square s = 0; s < 64; ++s) {
    Bitboard a = 0;
    for (int df = -1; df <= 1; ++df) {
      for (int dr = -1; dr <= 1; ++dr) {
        if (df == 0 && dr == 0) continue;
        const int f = file_of(s) + df;
        const int r = rank_of(s) + dr;
        if (f >= 0 && f < 8 && r >= 0 && r < 8) a |= bb(make_square(f, r));
      }
    }
    t[static_cast<std::size_t>(s)] = a;
  }
  return t;
}

std::array<std::array<Bitboard, 64>, 2> build_pawn_table() {
  std::array<std::array<Bitboard, 64>, 2> t{};
  for (Square s = 0; s < 64; ++s) {
    const Bitboard b = bb(s);
    t[kWhite][static_cast<std::size_t>(s)] =
        east(north(b)) | west(north(b));
    t[kBlack][static_cast<std::size_t>(s)] =
        east(south(b)) | west(south(b));
  }
  return t;
}

const std::array<Bitboard, 64> kKnightTable = build_knight_table();
const std::array<Bitboard, 64> kKingTable = build_king_table();
const std::array<std::array<Bitboard, 64>, 2> kPawnTable = build_pawn_table();

/// Scans one ray until a blocker (blocker square included).
Bitboard ray(Square s, int df, int dr, Bitboard occupied) {
  Bitboard a = 0;
  int f = file_of(s) + df;
  int r = rank_of(s) + dr;
  while (f >= 0 && f < 8 && r >= 0 && r < 8) {
    const Square sq = make_square(f, r);
    a |= bb(sq);
    ++g_bitboard_ops;
    if (occupied & bb(sq)) break;
    f += df;
    r += dr;
  }
  return a;
}

}  // namespace

Bitboard knight_attacks(Square s) {
  ++g_bitboard_ops;
  return kKnightTable[static_cast<std::size_t>(s)];
}

Bitboard king_attacks(Square s) {
  ++g_bitboard_ops;
  return kKingTable[static_cast<std::size_t>(s)];
}

Bitboard pawn_attacks(Color c, Square s) {
  ++g_bitboard_ops;
  return kPawnTable[c][static_cast<std::size_t>(s)];
}

Bitboard bishop_attacks(Square s, Bitboard occupied) {
  return ray(s, 1, 1, occupied) | ray(s, 1, -1, occupied) |
         ray(s, -1, 1, occupied) | ray(s, -1, -1, occupied);
}

Bitboard rook_attacks(Square s, Bitboard occupied) {
  return ray(s, 1, 0, occupied) | ray(s, -1, 0, occupied) |
         ray(s, 0, 1, occupied) | ray(s, 0, -1, occupied);
}

Bitboard queen_attacks(Square s, Bitboard occupied) {
  return bishop_attacks(s, occupied) | rook_attacks(s, occupied);
}

std::uint64_t bitboard_ops() { return g_bitboard_ops; }
void reset_bitboard_ops() { g_bitboard_ops = 0; }

}  // namespace mb::kernels::chess
