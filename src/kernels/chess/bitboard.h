// Bitboard primitives for the chess benchmark.
//
// A 64-bit-word-per-piece-set representation, exactly the data layout that
// makes chess engines heavy users of 64-bit integer operations — the reason
// the StockFish row of Table II shows a large (20x) performance ratio on
// the 32-bit ARM: every mask, shift and popcount decomposes there.
#pragma once

#include <bit>
#include <cstdint>

namespace mb::kernels::chess {

using Bitboard = std::uint64_t;

enum Color : std::uint8_t { kWhite = 0, kBlack = 1 };
enum PieceType : std::uint8_t {
  kPawn = 0, kKnight, kBishop, kRook, kQueen, kKing, kPieceTypes
};

/// Squares are 0..63, a1 = 0, h1 = 7, a8 = 56.
using Square = std::int8_t;
inline constexpr Square kNoSquare = -1;

constexpr Bitboard bb(Square s) { return Bitboard{1} << s; }
constexpr int file_of(Square s) { return s & 7; }
constexpr int rank_of(Square s) { return s >> 3; }
constexpr Square make_square(int file, int rank) {
  return static_cast<Square>(rank * 8 + file);
}

inline int popcount(Bitboard b) { return std::popcount(b); }
inline Square lsb(Bitboard b) {
  return static_cast<Square>(std::countr_zero(b));
}
/// Pops and returns the lowest set square.
inline Square pop_lsb(Bitboard& b) {
  const Square s = lsb(b);
  b &= b - 1;
  return s;
}

inline constexpr Bitboard kFileA = 0x0101010101010101ULL;
inline constexpr Bitboard kFileH = kFileA << 7;
inline constexpr Bitboard kRank1 = 0xFFULL;
inline constexpr Bitboard kRank2 = kRank1 << 8;
inline constexpr Bitboard kRank7 = kRank1 << 48;
inline constexpr Bitboard kRank8 = kRank1 << 56;

/// Single-step shifts with edge masking.
constexpr Bitboard north(Bitboard b) { return b << 8; }
constexpr Bitboard south(Bitboard b) { return b >> 8; }
constexpr Bitboard east(Bitboard b) { return (b & ~kFileH) << 1; }
constexpr Bitboard west(Bitboard b) { return (b & ~kFileA) >> 1; }

/// Precomputed leaper attacks.
Bitboard knight_attacks(Square s);
Bitboard king_attacks(Square s);
Bitboard pawn_attacks(Color c, Square s);

/// Sliding attacks by ray scan given the full occupancy.
Bitboard bishop_attacks(Square s, Bitboard occupied);
Bitboard rook_attacks(Square s, Bitboard occupied);
Bitboard queen_attacks(Square s, Bitboard occupied);

/// Dynamic 64-bit-operation counter for the benchmark's instruction mix:
/// incremented by the attack generators (one unit per mask/shift cluster).
/// Reset before a search, read after. Thread-local, so concurrent campaign
/// tasks each count their own search.
std::uint64_t bitboard_ops();
void reset_bitboard_ops();

}  // namespace mb::kernels::chess
