#include "kernels/chess/position.h"

#include <cctype>

#include "kernels/chess/zobrist.h"
#include "support/check.h"

namespace mb::kernels::chess {

void Position::put(Color c, PieceType t, Square s) {
  piece_bb_[c][t] |= bb(s);
  hash_ ^= zobrist_piece(c, t, s);
}

void Position::clear(Color c, PieceType t, Square s) {
  piece_bb_[c][t] &= ~bb(s);
  hash_ ^= zobrist_piece(c, t, s);
}

std::uint64_t Position::compute_hash() const {
  std::uint64_t h = 0;
  for (int c = 0; c < 2; ++c) {
    for (int t = 0; t < kPieceTypes; ++t) {
      Bitboard b = piece_bb_[c][t];
      while (b) {
        h ^= zobrist_piece(static_cast<Color>(c),
                           static_cast<PieceType>(t), pop_lsb(b));
      }
    }
  }
  h ^= zobrist_castling(castling_);
  if (ep_ != kNoSquare) h ^= zobrist_ep_file(file_of(ep_));
  if (stm_ == kBlack) h ^= zobrist_side();
  return h;
}

std::string Move::to_string() const {
  std::string s;
  s += static_cast<char>('a' + file_of(from()));
  s += static_cast<char>('1' + rank_of(from()));
  s += static_cast<char>('a' + file_of(to()));
  s += static_cast<char>('1' + rank_of(to()));
  if (is_promotion()) {
    constexpr const char* kPromo = "pnbrqk";
    s += kPromo[promotion()];
  }
  return s;
}

Position Position::initial() {
  return from_fen(
      "rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w KQkq -");
}

Position Position::from_fen(const std::string& fen) {
  Position p;
  std::size_t i = 0;
  int rank = 7, file = 0;
  // Board field.
  for (; i < fen.size() && fen[i] != ' '; ++i) {
    const char ch = fen[i];
    if (ch == '/') {
      --rank;
      file = 0;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      file += ch - '0';
      continue;
    }
    const Color c = std::isupper(static_cast<unsigned char>(ch)) ? kWhite
                                                                 : kBlack;
    PieceType t;
    switch (std::tolower(static_cast<unsigned char>(ch))) {
      case 'p': t = kPawn; break;
      case 'n': t = kKnight; break;
      case 'b': t = kBishop; break;
      case 'r': t = kRook; break;
      case 'q': t = kQueen; break;
      case 'k': t = kKing; break;
      default:
        support::fail("Position::from_fen", "bad piece character");
    }
    support::check(rank >= 0 && file < 8, "Position::from_fen",
                   "board field overflows");
    p.put(c, t, make_square(file, rank));
    ++file;
  }
  support::check(i < fen.size(), "Position::from_fen", "missing side field");
  ++i;  // space
  p.stm_ = fen[i] == 'w' ? kWhite : kBlack;
  i += 2;
  // Castling field.
  for (; i < fen.size() && fen[i] != ' '; ++i) {
    switch (fen[i]) {
      case 'K': p.castling_ |= kWhiteKingside; break;
      case 'Q': p.castling_ |= kWhiteQueenside; break;
      case 'k': p.castling_ |= kBlackKingside; break;
      case 'q': p.castling_ |= kBlackQueenside; break;
      case '-': break;
      default:
        support::fail("Position::from_fen", "bad castling character");
    }
  }
  if (i < fen.size()) ++i;  // space
  // En passant field.
  if (i < fen.size() && fen[i] != '-') {
    support::check(i + 1 < fen.size(), "Position::from_fen",
                   "truncated en-passant field");
    p.ep_ = make_square(fen[i] - 'a', fen[i + 1] - '1');
  }
  // Pieces already entered the hash through put(); fold in the state keys.
  p.hash_ ^= zobrist_castling(p.castling_);
  if (p.ep_ != kNoSquare) p.hash_ ^= zobrist_ep_file(file_of(p.ep_));
  if (p.stm_ == kBlack) p.hash_ ^= zobrist_side();
  return p;
}

Bitboard Position::occupied(Color c) const {
  Bitboard b = 0;
  for (int t = 0; t < kPieceTypes; ++t) b |= piece_bb_[c][t];
  return b;
}

Bitboard Position::occupied() const {
  return occupied(kWhite) | occupied(kBlack);
}

PieceType Position::piece_on(Color c, Square s) const {
  const Bitboard mask = bb(s);
  for (int t = 0; t < kPieceTypes; ++t)
    if (piece_bb_[c][t] & mask) return static_cast<PieceType>(t);
  return kPieceTypes;
}

bool Position::attacked(Square s, Color by) const {
  const Bitboard occ = occupied();
  if (pawn_attacks(by == kWhite ? kBlack : kWhite, s) &
      piece_bb_[by][kPawn])
    return true;
  if (knight_attacks(s) & piece_bb_[by][kKnight]) return true;
  if (king_attacks(s) & piece_bb_[by][kKing]) return true;
  const Bitboard diag = bishop_attacks(s, occ);
  if (diag & (piece_bb_[by][kBishop] | piece_bb_[by][kQueen])) return true;
  const Bitboard ortho = rook_attacks(s, occ);
  if (ortho & (piece_bb_[by][kRook] | piece_bb_[by][kQueen])) return true;
  return false;
}

bool Position::in_check() const {
  const Bitboard king = piece_bb_[stm_][kKing];
  support::check(king != 0, "Position::in_check", "side to move has no king");
  return attacked(lsb(king), stm_ == kWhite ? kBlack : kWhite);
}

void Position::make(Move m) {
  const Color us = stm_;
  const Color them = us == kWhite ? kBlack : kWhite;
  const Square from = m.from();
  const Square to = m.to();
  const PieceType pt = piece_on(us, from);
  support::check(pt != kPieceTypes, "Position::make", "no piece on from");

  // Retire the old state keys; piece keys update inside put()/clear().
  hash_ ^= zobrist_castling(castling_);
  if (ep_ != kNoSquare) hash_ ^= zobrist_ep_file(file_of(ep_));

  // Remove any captured piece.
  if (m.flag() == Move::kEnPassant) {
    const Square cap = us == kWhite ? static_cast<Square>(to - 8)
                                    : static_cast<Square>(to + 8);
    clear(them, kPawn, cap);
  } else if (m.is_capture()) {
    const PieceType victim = piece_on(them, to);
    support::check(victim != kPieceTypes, "Position::make",
                   "capture without a victim");
    clear(them, victim, to);
  }

  // Move the piece (with promotion).
  clear(us, pt, from);
  put(us, m.is_promotion() ? m.promotion() : pt, to);

  // Castling: move the rook too.
  if (m.flag() == Move::kCastle) {
    Square rook_from, rook_to;
    if (to > from) {  // kingside
      rook_from = make_square(7, rank_of(from));
      rook_to = make_square(5, rank_of(from));
    } else {
      rook_from = make_square(0, rank_of(from));
      rook_to = make_square(3, rank_of(from));
    }
    clear(us, kRook, rook_from);
    put(us, kRook, rook_to);
  }

  // Castling-right updates: king or rook moved, or rook captured.
  auto revoke = [this](Square sq) {
    switch (sq) {
      case 4: castling_ &= static_cast<std::uint8_t>(
                  ~(kWhiteKingside | kWhiteQueenside));
              break;
      case 0: castling_ &= static_cast<std::uint8_t>(~kWhiteQueenside); break;
      case 7: castling_ &= static_cast<std::uint8_t>(~kWhiteKingside); break;
      case 60: castling_ &= static_cast<std::uint8_t>(
                   ~(kBlackKingside | kBlackQueenside));
               break;
      case 56: castling_ &= static_cast<std::uint8_t>(~kBlackQueenside);
               break;
      case 63: castling_ &= static_cast<std::uint8_t>(~kBlackKingside); break;
      default: break;
    }
  };
  revoke(from);
  revoke(to);

  // En passant target.
  ep_ = kNoSquare;
  if (m.flag() == Move::kDoublePush)
    ep_ = us == kWhite ? static_cast<Square>(from + 8)
                       : static_cast<Square>(from - 8);

  stm_ = them;

  // Enter the new state keys.
  hash_ ^= zobrist_castling(castling_);
  if (ep_ != kNoSquare) hash_ ^= zobrist_ep_file(file_of(ep_));
  hash_ ^= zobrist_side();
}

void Position::pseudo_legal_moves(std::vector<Move>& out) const {
  const Color us = stm_;
  const Color them = us == kWhite ? kBlack : kWhite;
  const Bitboard own = occupied(us);
  const Bitboard their = occupied(them);
  const Bitboard occ = own | their;
  const Bitboard empty = ~occ;

  // ---- pawns ----
  const Bitboard pawns = piece_bb_[us][kPawn];
  const int fwd = us == kWhite ? 8 : -8;
  const Bitboard promo_rank = us == kWhite ? kRank8 : kRank1;
  const Bitboard start_rank = us == kWhite ? kRank2 : kRank7;

  auto add_pawn_move = [&](Square from, Square to, Move::Flag flag) {
    if (bb(to) & promo_rank) {
      for (PieceType p : {kQueen, kRook, kBishop, kKnight})
        out.emplace_back(from, to, flag, p);
    } else {
      out.emplace_back(from, to, flag);
    }
  };

  for (Bitboard b = pawns; b;) {
    const Square s = pop_lsb(b);
    const auto push = static_cast<Square>(s + fwd);
    if (bb(push) & empty) {
      add_pawn_move(s, push, Move::kQuiet);
      if (bb(s) & start_rank) {
        const auto dbl = static_cast<Square>(s + 2 * fwd);
        if (bb(dbl) & empty) out.emplace_back(s, dbl, Move::kDoublePush);
      }
    }
    Bitboard caps = pawn_attacks(us, s) & their;
    while (caps) add_pawn_move(s, pop_lsb(caps), Move::kCapture);
    if (ep_ != kNoSquare && (pawn_attacks(us, s) & bb(ep_)))
      out.emplace_back(s, ep_, Move::kEnPassant);
  }

  // ---- leapers and sliders ----
  auto add_targets = [&](Square from, Bitboard targets) {
    Bitboard quiet = targets & empty;
    while (quiet) out.emplace_back(from, pop_lsb(quiet), Move::kQuiet);
    Bitboard caps = targets & their;
    while (caps) out.emplace_back(from, pop_lsb(caps), Move::kCapture);
  };

  for (Bitboard b = piece_bb_[us][kKnight]; b;) {
    const Square s = pop_lsb(b);
    add_targets(s, knight_attacks(s));
  }
  for (Bitboard b = piece_bb_[us][kBishop]; b;) {
    const Square s = pop_lsb(b);
    add_targets(s, bishop_attacks(s, occ));
  }
  for (Bitboard b = piece_bb_[us][kRook]; b;) {
    const Square s = pop_lsb(b);
    add_targets(s, rook_attacks(s, occ));
  }
  for (Bitboard b = piece_bb_[us][kQueen]; b;) {
    const Square s = pop_lsb(b);
    add_targets(s, queen_attacks(s, occ));
  }

  // ---- king ----
  const Bitboard king = piece_bb_[us][kKing];
  if (king) {
    const Square ks = lsb(king);
    add_targets(ks, king_attacks(ks));

    // Castling: rights present, path empty, king path not attacked.
    const int base_rank = us == kWhite ? 0 : 7;
    const auto kside =
        static_cast<std::uint8_t>(us == kWhite ? kWhiteKingside
                                               : kBlackKingside);
    const auto qside =
        static_cast<std::uint8_t>(us == kWhite ? kWhiteQueenside
                                               : kBlackQueenside);
    if ((castling_ & kside) && ks == make_square(4, base_rank)) {
      const Square f1 = make_square(5, base_rank);
      const Square g1 = make_square(6, base_rank);
      if (!(occ & (bb(f1) | bb(g1))) && !attacked(ks, them) &&
          !attacked(f1, them) && !attacked(g1, them)) {
        out.emplace_back(ks, g1, Move::kCastle);
      }
    }
    if ((castling_ & qside) && ks == make_square(4, base_rank)) {
      const Square d1 = make_square(3, base_rank);
      const Square c1 = make_square(2, base_rank);
      const Square b1 = make_square(1, base_rank);
      if (!(occ & (bb(d1) | bb(c1) | bb(b1))) && !attacked(ks, them) &&
          !attacked(d1, them) && !attacked(c1, them)) {
        out.emplace_back(ks, c1, Move::kCastle);
      }
    }
  }
}

std::vector<Move> Position::legal_moves() const {
  std::vector<Move> pseudo;
  pseudo.reserve(64);
  pseudo_legal_moves(pseudo);
  std::vector<Move> legal;
  legal.reserve(pseudo.size());
  const Color us = stm_;
  const Color them = us == kWhite ? kBlack : kWhite;
  for (const Move m : pseudo) {
    Position next = *this;
    next.make(m);
    const Bitboard king = next.piece_bb_[us][kKing];
    if (king != 0 && !next.attacked(lsb(king), them)) legal.push_back(m);
  }
  return legal;
}

std::uint64_t perft(const Position& pos, int depth) {
  if (depth == 0) return 1;
  const auto moves = pos.legal_moves();
  if (depth == 1) return moves.size();
  std::uint64_t nodes = 0;
  for (const Move m : moves) {
    Position next = pos;
    next.make(m);
    nodes += perft(next, depth - 1);
  }
  return nodes;
}

}  // namespace mb::kernels::chess
