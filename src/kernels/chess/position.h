// Chess position, move encoding and legal move generation (copy-make).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "kernels/chess/bitboard.h"

namespace mb::kernels::chess {

/// Packed move: from(6) | to(6) | promo(3) | flags(3).
class Move {
 public:
  enum Flag : std::uint8_t {
    kQuiet = 0,
    kCapture = 1,
    kDoublePush = 2,
    kEnPassant = 3,  // also a capture
    kCastle = 4,
  };

  Move() = default;
  Move(Square from, Square to, Flag flag = kQuiet,
       PieceType promo = kPieceTypes)
      : bits_(static_cast<std::uint32_t>(from) |
              (static_cast<std::uint32_t>(to) << 6) |
              (static_cast<std::uint32_t>(promo) << 12) |
              (static_cast<std::uint32_t>(flag) << 15)) {}

  Square from() const { return static_cast<Square>(bits_ & 63); }
  Square to() const { return static_cast<Square>((bits_ >> 6) & 63); }
  PieceType promotion() const {
    return static_cast<PieceType>((bits_ >> 12) & 7);
  }
  bool is_promotion() const { return promotion() != kPieceTypes; }
  Flag flag() const { return static_cast<Flag>((bits_ >> 15) & 7); }
  bool is_capture() const {
    return flag() == kCapture || flag() == kEnPassant;
  }

  bool operator==(const Move&) const = default;

  /// Long algebraic ("e2e4", "e7e8q").
  std::string to_string() const;

 private:
  std::uint32_t bits_ = 0;
};

/// Castling right bits.
enum CastleRight : std::uint8_t {
  kWhiteKingside = 1,
  kWhiteQueenside = 2,
  kBlackKingside = 4,
  kBlackQueenside = 8,
};

class Position {
 public:
  /// The standard initial position.
  static Position initial();

  /// Parses a FEN string (board, side, castling, en passant fields).
  static Position from_fen(const std::string& fen);

  Color side_to_move() const { return stm_; }
  Bitboard pieces(Color c, PieceType t) const { return piece_bb_[c][t]; }
  Bitboard occupied(Color c) const;
  Bitboard occupied() const;
  std::uint8_t castling() const { return castling_; }
  Square en_passant() const { return ep_; }

  /// The piece type on a square for `c`, or kPieceTypes if none.
  PieceType piece_on(Color c, Square s) const;

  /// True when `s` is attacked by any piece of color `by`.
  bool attacked(Square s, Color by) const;

  /// True when the side to move's king is in check.
  bool in_check() const;

  /// Applies a move (must be legal or at least pseudo-legal); the position
  /// is modified in place — callers copy first (copy-make).
  void make(Move m);

  /// All strictly legal moves.
  std::vector<Move> legal_moves() const;

  /// Pseudo-legal moves (may leave the king in check).
  void pseudo_legal_moves(std::vector<Move>& out) const;

  /// Counting material for the evaluator: piece counts per type.
  int count(Color c, PieceType t) const {
    return popcount(piece_bb_[c][t]);
  }

  /// Zobrist signature, maintained incrementally by make().
  std::uint64_t hash() const { return hash_; }

  /// Recomputes the signature from the board state (test oracle for the
  /// incremental updates).
  std::uint64_t compute_hash() const;

 private:
  Position() = default;

  void put(Color c, PieceType t, Square s);
  void clear(Color c, PieceType t, Square s);

  std::array<std::array<Bitboard, kPieceTypes>, 2> piece_bb_{};
  Color stm_ = kWhite;
  std::uint8_t castling_ = 0;
  Square ep_ = kNoSquare;
  std::uint64_t hash_ = 0;
};

/// perft: the number of leaf nodes of the legal move tree at `depth`.
/// The canonical move-generator correctness oracle.
std::uint64_t perft(const Position& pos, int depth);

}  // namespace mb::kernels::chess
