#include "kernels/chess/search.h"

#include <algorithm>
#include <array>

#include "support/check.h"

namespace mb::kernels::chess {
namespace {

constexpr std::array<int, kPieceTypes> kPieceValue = {100, 320, 330,
                                                      500, 900, 0};

/// A compact piece-square bonus: centralization for minor pieces and
/// pawns, back-rank shelter for kings. Indexed from white's perspective;
/// mirrored for black.
int square_bonus(PieceType t, Square s, Color c) {
  const int rank = c == kWhite ? rank_of(s) : 7 - rank_of(s);
  const int file = file_of(s);
  const int center_dist =
      std::max(std::abs(2 * file - 7), std::abs(2 * rank - 7));
  switch (t) {
    case kPawn:
      return 2 * rank;  // push bonus
    case kKnight:
    case kBishop:
      return 12 - 3 * center_dist / 2;
    case kRook:
      return rank == 6 ? 10 : 0;  // seventh rank
    case kQueen:
      return 4 - center_dist;
    case kKing:
      return rank == 0 ? 8 : -4 * rank;  // stay sheltered
    default:
      return 0;
  }
}

int evaluate_side(const Position& pos, Color c) {
  int score = 0;
  for (int t = 0; t < kPieceTypes; ++t) {
    Bitboard b = pos.pieces(c, static_cast<PieceType>(t));
    score += kPieceValue[static_cast<std::size_t>(t)] * popcount(b);
    while (b) {
      const Square s = pop_lsb(b);
      score += square_bonus(static_cast<PieceType>(t), s, c);
    }
  }
  return score;
}

/// MVV-LVA ordering key: most valuable victim, least valuable aggressor.
int order_key(const Position& pos, Move m) {
  if (!m.is_capture()) return 0;
  const Color them =
      pos.side_to_move() == kWhite ? kBlack : kWhite;
  const PieceType victim = m.flag() == Move::kEnPassant
                               ? kPawn
                               : pos.piece_on(them, m.to());
  const PieceType aggressor = pos.piece_on(pos.side_to_move(), m.from());
  const int v =
      victim == kPieceTypes ? 0 : kPieceValue[static_cast<std::size_t>(victim)];
  const int a = aggressor == kPieceTypes
                    ? 0
                    : kPieceValue[static_cast<std::size_t>(aggressor)];
  return 10'000 + 10 * v - a;
}

int alphabeta(const Position& pos, int depth, int alpha, int beta,
              SearchStats& stats, Move* best_out) {
  ++stats.nodes;
  if (depth == 0) {
    ++stats.evals;
    return evaluate(pos);
  }
  auto moves = pos.legal_moves();
  if (moves.empty()) {
    // Checkmate (prefer shorter mates) or stalemate.
    return pos.in_check() ? -30'000 - depth : 0;
  }
  std::stable_sort(moves.begin(), moves.end(), [&pos](Move a, Move b) {
    return order_key(pos, a) > order_key(pos, b);
  });

  Move best = moves.front();
  for (const Move m : moves) {
    Position next = pos;
    next.make(m);
    ++stats.moves_made;
    const int score =
        -alphabeta(next, depth - 1, -beta, -alpha, stats, nullptr);
    if (score >= beta) {
      ++stats.cutoffs;
      if (best_out != nullptr) *best_out = m;
      return beta;
    }
    if (score > alpha) {
      alpha = score;
      best = m;
    }
  }
  if (best_out != nullptr) *best_out = best;
  return alpha;
}

}  // namespace

int evaluate(const Position& pos) {
  const int white = evaluate_side(pos, kWhite);
  const int black = evaluate_side(pos, kBlack);
  const int score = white - black;
  return pos.side_to_move() == kWhite ? score : -score;
}

SearchResult search(const Position& pos, int depth) {
  support::check(depth >= 1, "chess::search", "depth must be >= 1");
  SearchResult result;
  result.score = alphabeta(pos, depth, -1'000'000, 1'000'000, result.stats,
                           &result.best);
  return result;
}

}  // namespace mb::kernels::chess
