// Alpha-beta search with a material + piece-square evaluation — the
// StockFish-proxy workload of Table II. Node throughput (nodes/second) is
// the benchmark metric, exactly like the real engine's `bench` command.
#pragma once

#include <cstdint>

#include "kernels/chess/position.h"

namespace mb::kernels::chess {

/// Centipawn evaluation from the side to move's perspective.
int evaluate(const Position& pos);

struct SearchStats {
  std::uint64_t nodes = 0;       ///< interior + leaf nodes visited
  std::uint64_t evals = 0;       ///< leaf evaluations
  std::uint64_t moves_made = 0;  ///< copy-make operations
  std::uint64_t cutoffs = 0;     ///< beta cutoffs (ordering quality)
};

struct SearchResult {
  Move best;
  int score = 0;  ///< centipawns, side-to-move perspective
  SearchStats stats;
};

/// Fixed-depth alpha-beta with MVV-LVA capture ordering. depth >= 1.
SearchResult search(const Position& pos, int depth);

}  // namespace mb::kernels::chess
