#include "kernels/chess/tt.h"

#include <algorithm>
#include <bit>

#include "kernels/chess/search.h"
#include "support/check.h"

namespace mb::kernels::chess {

TranspositionTable::TranspositionTable(std::uint64_t bytes) {
  support::check(bytes >= sizeof(TtEntry), "TranspositionTable",
                 "table must hold at least one entry");
  const std::uint64_t want = bytes / sizeof(TtEntry);
  const std::uint64_t entries = std::bit_floor(std::max<std::uint64_t>(
      1, want));
  table_.assign(entries, TtEntry{});
  mask_ = entries - 1;
}

const TtEntry* TranspositionTable::probe(std::uint64_t key) {
  ++probes_;
  const TtEntry& e = table_[slot_of(key)];
  if (e.valid() && e.key == key) {
    ++hits_;
    return &e;
  }
  return nullptr;
}

void TranspositionTable::store(std::uint64_t key, std::int32_t score,
                               int depth, Bound bound, Move best) {
  support::check(depth >= 0, "TranspositionTable::store",
                 "depth must be non-negative");
  TtEntry& e = table_[slot_of(key)];
  if (e.valid() && e.key != key && e.depth > depth) return;  // keep deeper
  e.key = key;
  e.score = score;
  e.depth = static_cast<std::int16_t>(depth);
  e.bound = bound;
  e.best = best;
  ++stores_;
}

void TranspositionTable::clear() {
  std::fill(table_.begin(), table_.end(), TtEntry{});
  probes_ = hits_ = stores_ = 0;
}

namespace {

int alphabeta_tt(const Position& pos, int depth, int alpha, int beta,
                 TranspositionTable& tt, SearchStats& stats,
                 Move* best_out) {
  ++stats.nodes;
  if (depth == 0) {
    ++stats.evals;
    return evaluate(pos);
  }

  const std::uint64_t key = pos.hash();
  Move tt_move;
  bool have_tt_move = false;
  if (const TtEntry* e = tt.probe(key)) {
    if (e->depth >= depth) {
      // Only exact same-depth-or-deeper scores may cut at interior nodes;
      // bound entries adjust the window.
      if (e->bound == Bound::kExact) {
        if (best_out != nullptr) *best_out = e->best;
        return e->score;
      }
      if (e->bound == Bound::kLower) alpha = std::max(alpha, e->score);
      if (e->bound == Bound::kUpper) beta = std::min(beta, e->score);
      if (alpha >= beta) {
        if (best_out != nullptr) *best_out = e->best;
        ++stats.cutoffs;
        return e->score;
      }
    }
    tt_move = e->best;
    have_tt_move = true;
  }

  auto moves = pos.legal_moves();
  if (moves.empty()) return pos.in_check() ? -30'000 - depth : 0;

  // Order: TT move first, then captures by MVV-LVA (reuse the evaluator's
  // value table implicitly via capture flag + victim type).
  auto key_of = [&pos, &tt_move, have_tt_move](Move m) {
    if (have_tt_move && m == tt_move) return 1'000'000;
    if (!m.is_capture()) return 0;
    const Color them = pos.side_to_move() == kWhite ? kBlack : kWhite;
    const PieceType victim = m.flag() == Move::kEnPassant
                                 ? kPawn
                                 : pos.piece_on(them, m.to());
    return 10'000 + 10 * static_cast<int>(victim);
  };
  std::stable_sort(moves.begin(), moves.end(), [&key_of](Move a, Move b) {
    return key_of(a) > key_of(b);
  });

  const int alpha_orig = alpha;
  Move best = moves.front();
  int best_score = -1'000'000;
  for (const Move m : moves) {
    Position next = pos;
    next.make(m);
    ++stats.moves_made;
    const int score =
        -alphabeta_tt(next, depth - 1, -beta, -alpha, tt, stats, nullptr);
    if (score > best_score) {
      best_score = score;
      best = m;
    }
    alpha = std::max(alpha, score);
    if (alpha >= beta) {
      ++stats.cutoffs;
      break;
    }
  }

  const Bound bound = best_score <= alpha_orig ? Bound::kUpper
                      : best_score >= beta     ? Bound::kLower
                                               : Bound::kExact;
  tt.store(key, best_score, depth, bound, best);
  if (best_out != nullptr) *best_out = best;
  return best_score;
}

}  // namespace

SearchResult search_tt(const Position& pos, int depth,
                       TranspositionTable& tt) {
  support::check(depth >= 1, "chess::search_tt", "depth must be >= 1");
  SearchResult result;
  result.score = alphabeta_tt(pos, depth, -1'000'000, 1'000'000, tt,
                              result.stats, &result.best);
  return result;
}

}  // namespace mb::kernels::chess
