// Transposition table: the cache-unfriendly heart of every real chess
// engine. A fixed-size array of hash-indexed entries with depth-preferred
// replacement; probes are effectively random accesses over the whole
// table, so a realistically sized TT turns the search partially
// memory-bound — behaviour the chessbench kernel traces through the
// simulated machines.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/chess/position.h"
#include "kernels/chess/search.h"

namespace mb::kernels::chess {

enum class Bound : std::uint8_t { kExact, kLower, kUpper };

struct TtEntry {
  std::uint64_t key = 0;
  std::int32_t score = 0;
  std::int16_t depth = -1;
  Bound bound = Bound::kExact;
  Move best;
  bool valid() const { return depth >= 0; }
};

class TranspositionTable {
 public:
  /// Size is rounded up to the next power of two of entries.
  explicit TranspositionTable(std::uint64_t bytes);

  /// Entry for `key`, or nullptr on miss.
  const TtEntry* probe(std::uint64_t key);

  /// Stores with depth-preferred replacement: an entry only yields to a
  /// same-key update or a deeper search result (plus always-replace for
  /// empty slots).
  void store(std::uint64_t key, std::int32_t score, int depth, Bound bound,
             Move best);

  std::uint64_t entries() const { return mask_ + 1; }
  std::uint64_t bytes() const { return entries() * sizeof(TtEntry); }
  std::uint64_t probes() const { return probes_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t stores() const { return stores_; }

  /// Index of a key (exposed so the benchmark can trace the access).
  std::uint64_t slot_of(std::uint64_t key) const { return key & mask_; }

  void clear();

 private:
  std::vector<TtEntry> table_;
  std::uint64_t mask_;
  std::uint64_t probes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t stores_ = 0;
};

/// Alpha-beta with the transposition table (same move ordering as
/// search(); TT best-move tried first). Returns the identical root score
/// as the plain search at equal depth.
SearchResult search_tt(const Position& pos, int depth,
                       TranspositionTable& tt);

}  // namespace mb::kernels::chess
