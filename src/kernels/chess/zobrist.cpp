#include "kernels/chess/zobrist.h"

#include <array>

#include "support/check.h"
#include "support/rng.h"

namespace mb::kernels::chess {
namespace {

struct Tables {
  std::array<std::array<std::array<std::uint64_t, 64>, kPieceTypes>, 2>
      piece;
  std::uint64_t side;
  std::array<std::uint64_t, 16> castling;
  std::array<std::uint64_t, 8> ep_file;
};

Tables build() {
  Tables t;
  std::uint64_t state = 0xC0FFEE5EEDULL;
  for (auto& per_color : t.piece)
    for (auto& per_piece : per_color)
      for (auto& key : per_piece) key = support::splitmix64(state);
  t.side = support::splitmix64(state);
  for (auto& key : t.castling) key = support::splitmix64(state);
  for (auto& key : t.ep_file) key = support::splitmix64(state);
  return t;
}

const Tables& tables() {
  static const Tables kTables = build();
  return kTables;
}

}  // namespace

std::uint64_t zobrist_piece(Color c, PieceType t, Square s) {
  support::check(t < kPieceTypes && s >= 0 && s < 64, "zobrist_piece",
                 "piece/square out of range");
  return tables().piece[c][t][static_cast<std::size_t>(s)];
}

std::uint64_t zobrist_side() { return tables().side; }

std::uint64_t zobrist_castling(std::uint8_t rights) {
  support::check(rights < 16, "zobrist_castling", "rights out of range");
  return tables().castling[rights];
}

std::uint64_t zobrist_ep_file(int file) {
  support::check(file >= 0 && file < 8, "zobrist_ep_file",
                 "file out of range");
  return tables().ep_file[static_cast<std::size_t>(file)];
}

}  // namespace mb::kernels::chess
