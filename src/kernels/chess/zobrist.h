// Zobrist hashing: the incremental position signature used by the
// transposition table. Keys are generated from a fixed-seed SplitMix64
// stream, so hashes are stable across runs and platforms.
#pragma once

#include <cstdint>

#include "kernels/chess/bitboard.h"

namespace mb::kernels::chess {

/// Key of a (color, piece, square) occupancy bit.
std::uint64_t zobrist_piece(Color c, PieceType t, Square s);
/// Key toggled when black is to move.
std::uint64_t zobrist_side();
/// Key of a castling-rights nibble (0..15).
std::uint64_t zobrist_castling(std::uint8_t rights);
/// Key of an en-passant file (0..7).
std::uint64_t zobrist_ep_file(int file);

}  // namespace mb::kernels::chess
