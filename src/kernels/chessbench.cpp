#include "kernels/chessbench.h"

#include <optional>

#include "kernels/chess/tt.h"
#include "support/check.h"
#include "support/rng.h"

namespace mb::kernels {

using arch::OpClass;
using chess::Position;

void ChessbenchParams::validate() const {
  support::check(depth >= 1 && depth <= 6, "ChessbenchParams",
                 "depth must be in [1, 6]");
  support::check(positions >= 1 && positions <= chessbench_suite().size(),
                 "ChessbenchParams", "positions out of range");
  support::check(tt_bytes <= (64ull << 20), "ChessbenchParams",
                 "transposition table capped at 64 MB");
}

const std::vector<std::string>& chessbench_suite() {
  static const std::vector<std::string> kSuite = {
      // Startpos and a few classic benchmark middlegames.
      "rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w KQkq -",
      // "Kiwipete" (Peterson): heavy tactics, castling both sides.
      "r3k2r/p1ppqpb1/bn2pnp1/3PN3/1p2P3/2N2Q1p/PPPBBPPP/R3K2R w KQkq -",
      // Endgame with passed pawns.
      "8/2p5/3p4/KP5r/1R3p1k/8/4P1P1/8 w - -",
      // Symmetric four-knights middlegame.
      "r2q1rk1/2p1bppp/p2p1n2/1p2P3/4P1b1/1nP1BN2/PP3PPP/RN1QR1K1 w - -",
      // Open Sicilian structure.
      "r1bqkb1r/pp1n1ppp/2p1pn2/3p4/2PP4/2N1PN2/PP3PPP/R1BQKB1R w KQ -",
  };
  return kSuite;
}

ChessbenchStats chessbench_native(const ChessbenchParams& params) {
  params.validate();
  chess::reset_bitboard_ops();
  ChessbenchStats total;
  std::optional<chess::TranspositionTable> tt;
  if (params.tt_bytes > 0) tt.emplace(params.tt_bytes);
  for (std::uint32_t i = 0; i < params.positions; ++i) {
    const Position pos = Position::from_fen(chessbench_suite()[i]);
    const chess::SearchResult r =
        tt ? chess::search_tt(pos, params.depth, *tt)
           : chess::search(pos, params.depth);
    total.nodes += r.stats.nodes;
    total.evals += r.stats.evals;
    total.moves_made += r.stats.moves_made;
  }
  total.bitboard_ops = chess::bitboard_ops();
  if (tt) {
    total.tt_probes = tt->probes();
    total.tt_hits = tt->hits();
  }
  return total;
}

ChessbenchResult chessbench_run(sim::Machine& machine,
                                const ChessbenchParams& params) {
  params.validate();
  const ChessbenchStats stats = chessbench_native(params);

  // The engine's working set (search stack of positions, attack tables,
  // move lists) is a few KB and stays cache resident; model it as a hot
  // region re-touched per copy-make.
  const os::Region buf = machine.mmap(16 * 1024);
  const os::Region tt_buf =
      machine.mmap(params.tt_bytes > 0 ? params.tt_bytes : 4096);
  machine.flush_caches();
  machine.begin_measurement();
  // Each copy-make writes a ~128-byte Position and reads its parent; touch
  // a rotating window so the trace has realistic L1 behaviour without
  // costing one touch per word. (Sampled: one 64-byte touch per 8 makes.)
  const std::uint64_t samples = stats.moves_made / 8;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const std::uint64_t slot = (i % 64) * 128;
    machine.touch(buf.vaddr + slot, 64, /*write=*/i % 2 == 0);
  }
  // TT probes are uniform random reads over the whole table — the cache-
  // hostile access pattern of real engines. Replay them (sampled 1-in-4;
  // the slot sequence is pseudo-random exactly like real probe targets).
  support::Rng tt_rng(0xD1CE);
  const std::uint64_t tt_entries =
      params.tt_bytes > 0 ? params.tt_bytes / 24 : 0;
  const std::uint64_t tt_samples = stats.tt_probes / 4;
  for (std::uint64_t i = 0; i < tt_samples; ++i) {
    const std::uint64_t slot = tt_rng.uniform_u64(0, tt_entries - 1);
    machine.touch(tt_buf.vaddr + slot * 24, 16, /*write=*/i % 3 == 0);
  }

  // ---- instruction mix, from measured engine counters ----
  sim::InstrMix mix;
  // Attack generation: each counted cluster is a few masks/shifts on
  // 64-bit words.
  mix.add(OpClass::kInt64, stats.bitboard_ops * 3);
  // Copy-make: a Position is 13 x 64-bit words copied, plus bookkeeping.
  mix.add(OpClass::kLoad64, stats.moves_made * 13);
  mix.add(OpClass::kStore64, stats.moves_made * 13);
  mix.add(OpClass::kInt64, stats.moves_made * 6);
  // Evaluation: popcounts and per-square bonus loops.
  mix.add(OpClass::kInt64, stats.evals * 24);
  mix.add(OpClass::kIntAlu, stats.evals * 40);
  // Search control flow: move ordering, loop overhead, alpha-beta tests.
  mix.add(OpClass::kIntAlu, stats.nodes * 30);
  mix.add(OpClass::kBranch, stats.nodes * 14);
  // Chess branches are data dependent and mispredict heavily.
  mix.mispredicted_branches = stats.nodes * 14 / 12;
  // TT probes: hash mixing + a dependent load whose latency cannot be
  // hidden (the next step of the search waits on the entry).
  mix.add(OpClass::kInt64, stats.tt_probes * 4);
  mix.add(OpClass::kLoad64, stats.tt_probes * 2);
  mix.serialized_loads += stats.tt_probes;

  const sim::SimResult sim = machine.end_measurement(mix);
  machine.munmap(buf);
  machine.munmap(tt_buf);

  ChessbenchResult result;
  result.sim = sim;
  result.stats = stats;
  result.nodes_per_s = static_cast<double>(stats.nodes) / sim.seconds;
  return result;
}

}  // namespace mb::kernels
