// StockFish-proxy benchmark (paper Table II).
//
// Runs fixed-depth alpha-beta searches over a suite of positions with the
// real bitboard engine in kernels/chess/ and reports nodes per second. The
// instruction mix is built from quantities the engine actually counts
// (nodes, copy-make operations, attack generations, evaluations), with the
// 64-bit bitboard work classified as kInt64 — which the cost model
// decomposes on the 32-bit Cortex-A9, reproducing the 20x gap of Table II.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/chess/search.h"
#include "sim/machine.h"

namespace mb::kernels {

struct ChessbenchParams {
  int depth = 4;  ///< search depth per position
  /// Number of suite positions to search (<= the built-in suite size).
  std::uint32_t positions = 4;
  /// Transposition table size; 0 disables the TT (plain alpha-beta).
  /// A realistically sized table exceeds the embedded caches, so probes
  /// become the search's memory-bound component.
  std::uint64_t tt_bytes = 0;
  void validate() const;
};

/// The built-in opening/middlegame suite (FEN strings).
const std::vector<std::string>& chessbench_suite();

struct ChessbenchStats {
  std::uint64_t nodes = 0;
  std::uint64_t evals = 0;
  std::uint64_t moves_made = 0;
  std::uint64_t bitboard_ops = 0;
  std::uint64_t tt_probes = 0;  ///< 0 when the TT is disabled
  std::uint64_t tt_hits = 0;
};

/// Native run: searches the suite, returns the aggregated engine counters
/// (deterministic, used for validation and as the simulated run's ground
/// truth).
ChessbenchStats chessbench_native(const ChessbenchParams& params);

struct ChessbenchResult {
  sim::SimResult sim;
  ChessbenchStats stats;
  double nodes_per_s = 0.0;  ///< the Table II "ops/s" metric
};

/// Simulated run on a machine.
ChessbenchResult chessbench_run(sim::Machine& machine,
                                const ChessbenchParams& params);

}  // namespace mb::kernels
