#include "kernels/coremark.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "support/check.h"
#include "support/rng.h"

namespace mb::kernels {

using arch::OpClass;

void CoremarkParams::validate() const {
  support::check(list_nodes >= 2, "CoremarkParams", "need >= 2 list nodes");
  support::check(matrix_n >= 2 && matrix_n <= 64, "CoremarkParams",
                 "matrix_n must be in [2, 64]");
  support::check(state_input_len >= 1, "CoremarkParams",
                 "state input must not be empty");
  support::check(iterations >= 1, "CoremarkParams",
                 "iterations must be >= 1");
}

std::uint16_t crc16_update(std::uint16_t crc, std::uint8_t byte) {
  crc ^= static_cast<std::uint16_t>(byte) << 8;
  for (int bit = 0; bit < 8; ++bit) {
    if (crc & 0x8000)
      crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
    else
      crc = static_cast<std::uint16_t>(crc << 1);
  }
  return crc;
}

std::uint16_t crc16(const std::uint8_t* data, std::size_t len,
                    std::uint16_t seed) {
  std::uint16_t crc = seed;
  for (std::size_t i = 0; i < len; ++i) crc = crc16_update(crc, data[i]);
  return crc;
}

namespace {

/// Dynamic-operation accounting shared by native and simulated runs. The
/// counters are incremented inside the real workload loops, so the mix is
/// measured, not estimated.
struct OpCount {
  std::uint64_t int_alu = 0;
  std::uint64_t int_mul = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;
  std::uint64_t taken_surprises = 0;  ///< data-dependent branch flips
};

struct ListNode {
  std::int32_t value;
  std::int32_t next;  ///< index, -1 terminates (index-linked list)
};

/// Trace hook: touches node/array slots when a machine is attached.
struct Touch {
  sim::Machine* machine = nullptr;
  std::uint64_t base = 0;
  void at(std::uint64_t offset, std::uint32_t bytes, bool write) const {
    if (machine != nullptr) machine->touch(base + offset, bytes, write);
  }
};

/// Workload 1: linked list — find the k-th largest by repeated scans, then
/// reverse the list. Exercises dependent loads and branchy compares.
std::uint16_t run_list(std::vector<ListNode>& nodes, std::int32_t& head,
                       std::uint16_t crc, OpCount& ops, const Touch& t) {
  // Full scan: running max and sum.
  std::int32_t maxv = std::numeric_limits<std::int32_t>::min();
  std::int64_t sum = 0;
  for (std::int32_t i = head; i != -1;) {
    const ListNode& nd = nodes[static_cast<std::size_t>(i)];
    t.at(static_cast<std::uint64_t>(i) * sizeof(ListNode), 8, false);
    ops.loads += 2;  // value + next
    ops.int_alu += 2;
    ops.branches += 2;
    if (nd.value > maxv) {
      maxv = nd.value;
      ++ops.taken_surprises;  // data-dependent, poorly predicted
    }
    sum += nd.value;
    i = nd.next;
  }
  // In-place reversal.
  std::int32_t prev = -1, cur = head;
  while (cur != -1) {
    ListNode& nd = nodes[static_cast<std::size_t>(cur)];
    t.at(static_cast<std::uint64_t>(cur) * sizeof(ListNode), 8, true);
    ops.loads += 1;
    ops.stores += 1;
    ops.int_alu += 2;
    ops.branches += 1;
    const std::int32_t nxt = nd.next;
    nd.next = prev;
    prev = cur;
    cur = nxt;
  }
  head = prev;  // the list is now reversed; next pass starts at the old tail
  crc = crc16_update(crc, static_cast<std::uint8_t>(maxv & 0xFF));
  crc = crc16_update(crc, static_cast<std::uint8_t>(sum & 0xFF));
  // CRC16 of two bytes: 16 shift/xor rounds plus compares.
  ops.int_alu += 2 * 8 * 3;
  ops.branches += 2 * 8;
  return crc;
}

/// Workload 2: matrix — integer multiply C = A*B plus a bit-twiddle pass.
std::uint16_t run_matrix(const std::vector<std::int16_t>& a,
                         const std::vector<std::int16_t>& b,
                         std::vector<std::int32_t>& c, std::uint32_t n,
                         std::uint16_t crc, OpCount& ops, const Touch& t,
                         std::uint64_t mat_base) {
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::uint32_t k = 0; k < n; ++k) {
        acc += static_cast<std::int32_t>(a[i * n + k]) * b[k * n + j];
        ops.int_mul += 1;
        ops.int_alu += 2;
        ops.loads += 2;
      }
      t.at(mat_base + (static_cast<std::uint64_t>(i) * n + j) * 4, 4, true);
      c[i * n + j] = acc ^ (acc >> 7);
      ops.int_alu += 2;
      ops.stores += 1;
      ops.branches += 1;
    }
  }
  std::int32_t fold = 0;
  for (std::uint32_t i = 0; i < n * n; ++i) {
    fold ^= c[i];
    ops.int_alu += 1;
    ops.loads += 1;
  }
  ops.branches += n * n / 8;
  return crc16_update(crc, static_cast<std::uint8_t>(fold & 0xFF));
}

/// Workload 3: table-driven state machine over a byte string (CoreMark's
/// number-format scanner, reduced): states x input classes.
std::uint16_t run_state(const std::vector<std::uint8_t>& input,
                        std::uint16_t crc, OpCount& ops, const Touch& t,
                        std::uint64_t input_base) {
  enum State { kStart, kInt, kFloat, kHex, kInvalid, kNumStates };
  std::uint32_t counts[kNumStates] = {};
  State s = kStart;
  for (std::size_t i = 0; i < input.size(); ++i) {
    const std::uint8_t ch = input[i];
    t.at(input_base + i, 1, false);
    ops.loads += 1;
    ops.branches += 3;  // class tests
    ops.int_alu += 3;
    State next;
    if (ch >= '0' && ch <= '9')
      next = (s == kFloat) ? kFloat : kInt;
    else if (ch == '.')
      next = kFloat;
    else if (ch == 'x' || (ch >= 'a' && ch <= 'f'))
      next = kHex;
    else if (ch == ',')
      next = kStart;  // separator resets
    else {
      next = kInvalid;
      ++ops.taken_surprises;
    }
    s = next;
    ++counts[s];
    ops.stores += 1;
  }
  std::uint8_t fold = 0;
  for (const auto cnt : counts) fold ^= static_cast<std::uint8_t>(cnt);
  return crc16_update(crc, fold);
}

struct SuiteOutcome {
  std::uint16_t crc = 0;
  OpCount ops;
};

SuiteOutcome run_suite(const CoremarkParams& params, std::uint64_t seed,
                       const Touch& t) {
  params.validate();
  support::Rng rng(seed);

  // Build the index-linked list in shuffled order so traversal hops around
  // memory like a heap-allocated list would.
  std::vector<ListNode> nodes(params.list_nodes);
  const auto order = support::Rng(seed ^ 0xABCD).permutation(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[order[i]].value =
        static_cast<std::int32_t>(rng.uniform_u64(0, 1 << 20));
    nodes[order[i]].next =
        (i + 1 < nodes.size()) ? static_cast<std::int32_t>(order[i + 1]) : -1;
  }
  // Traversal starts at the first node of the shuffled chain.
  std::int32_t head = static_cast<std::int32_t>(order[0]);

  const std::uint32_t n = params.matrix_n;
  std::vector<std::int16_t> a(static_cast<std::size_t>(n) * n);
  std::vector<std::int16_t> b(a.size());
  std::vector<std::int32_t> c(a.size());
  for (auto& x : a) x = static_cast<std::int16_t>(rng.uniform_u64(0, 255));
  for (auto& x : b) x = static_cast<std::int16_t>(rng.uniform_u64(0, 255));

  std::vector<std::uint8_t> input(params.state_input_len);
  const char alphabet[] = "0123456789.xabcf,+- ";
  for (auto& ch : input)
    ch = static_cast<std::uint8_t>(
        alphabet[rng.index(sizeof(alphabet) - 1)]);

  const std::uint64_t list_bytes = nodes.size() * sizeof(ListNode);
  const std::uint64_t mat_base = list_bytes;
  const std::uint64_t input_base = mat_base + c.size() * 4;

  SuiteOutcome out;
  out.crc = 0xFFFF;
  for (std::uint32_t it = 0; it < params.iterations; ++it) {
    out.crc = run_list(nodes, head, out.crc, out.ops, t);
    out.crc = run_matrix(a, b, c, n, out.crc, out.ops, t, mat_base);
    out.crc = run_state(input, out.crc, out.ops, t, input_base);
  }
  return out;
}

}  // namespace

std::uint16_t coremark_native(const CoremarkParams& params,
                              std::uint64_t seed) {
  Touch t;  // no machine
  return run_suite(params, seed, t).crc;
}

CoremarkResult coremark_run(sim::Machine& machine,
                            const CoremarkParams& params,
                            std::uint64_t seed) {
  params.validate();
  const std::uint64_t working_set =
      params.list_nodes * 8ull +
      static_cast<std::uint64_t>(params.matrix_n) * params.matrix_n * 8 +
      params.state_input_len + 4096;
  const os::Region buf = machine.mmap(working_set);
  machine.flush_caches();
  machine.begin_measurement();

  Touch t;
  t.machine = &machine;
  t.base = buf.vaddr;
  const SuiteOutcome out = run_suite(params, seed, t);

  sim::InstrMix mix;
  mix.add(OpClass::kIntAlu, out.ops.int_alu);
  mix.add(OpClass::kIntMul, out.ops.int_mul);
  mix.add(OpClass::kLoad32, out.ops.loads);
  mix.add(OpClass::kStore32, out.ops.stores);
  mix.add(OpClass::kBranch, out.ops.branches);
  // Data-dependent branches mispredict; loop branches mostly do not.
  mix.mispredicted_branches =
      out.ops.taken_surprises + out.ops.branches / 64;
  // List traversal serializes on the next-pointer load: one dependent load
  // per node visit (two visits per iteration: scan + reverse).
  mix.serialized_loads =
      static_cast<std::uint64_t>(params.iterations) * params.list_nodes * 2;

  const sim::SimResult sim = machine.end_measurement(mix);
  machine.munmap(buf);

  CoremarkResult result;
  result.sim = sim;
  result.crc = out.crc;
  result.iterations_per_s = params.iterations / sim.seconds;
  return result;
}

}  // namespace mb::kernels
