// CoreMark-like embedded integer benchmark (paper Table II).
//
// CoreMark exercises three integer-heavy workloads — linked-list
// processing, small-matrix arithmetic and a table-driven state machine —
// and folds every result into a CRC16 so compilers cannot elide work. This
// is an original implementation with the same structure; the score is
// "iterations per second", like the real benchmark's ops/s.
//
// Integer work is the one place the Cortex-A9 is closest to Nehalem per
// clock, which is why this row of Table II has the *smallest* performance
// ratio (7.1x) and the best ARM energy ratio (0.2).
#pragma once

#include <cstdint>
#include <string>

#include "sim/machine.h"

namespace mb::kernels {

struct CoremarkParams {
  std::uint32_t list_nodes = 128;
  std::uint32_t matrix_n = 16;
  std::uint32_t state_input_len = 64;
  std::uint32_t iterations = 16;
  void validate() const;
};

/// CRC16/CCITT update — the checksum CoreMark chains through everything.
std::uint16_t crc16_update(std::uint16_t crc, std::uint8_t byte);
std::uint16_t crc16(const std::uint8_t* data, std::size_t len,
                    std::uint16_t seed = 0);

/// Runs the full suite natively; returns the final chained CRC.
/// Deterministic for a given (params, seed).
std::uint16_t coremark_native(const CoremarkParams& params,
                              std::uint64_t seed = 1);

struct CoremarkResult {
  sim::SimResult sim;
  double iterations_per_s = 0.0;  ///< the "CoreMark-like" score
  std::uint16_t crc = 0;          ///< must equal the native CRC
};

/// Runs the suite on the simulated machine: real math + trace + mix.
CoremarkResult coremark_run(sim::Machine& machine,
                            const CoremarkParams& params,
                            std::uint64_t seed = 1);

}  // namespace mb::kernels
