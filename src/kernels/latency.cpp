#include "kernels/latency.h"

#include <numeric>
#include <set>

#include "support/check.h"
#include "support/rng.h"

namespace mb::kernels {

using arch::OpClass;

void LatencyParams::validate() const {
  support::check(stride_bytes >= 8, "LatencyParams",
                 "stride must hold a pointer");
  support::check(buffer_bytes >= 2 * stride_bytes, "LatencyParams",
                 "need at least two slots");
  support::check(buffer_bytes % stride_bytes == 0, "LatencyParams",
                 "buffer must be a whole number of slots");
  support::check(hops >= 1, "LatencyParams", "hops must be >= 1");
}

namespace {

/// Sattolo's algorithm: a uniformly random permutation with a single
/// cycle, so the chase visits every slot before repeating.
std::vector<std::uint64_t> single_cycle(std::uint64_t n,
                                        std::uint64_t seed) {
  std::vector<std::uint64_t> next(n);
  std::iota(next.begin(), next.end(), 0);
  support::Rng rng(seed);
  for (std::uint64_t i = n - 1; i > 0; --i) {
    const std::uint64_t j = rng.uniform_u64(0, i - 1);
    std::swap(next[i], next[j]);
  }
  return next;
}

}  // namespace

std::uint64_t latency_native(const LatencyParams& params) {
  params.validate();
  const auto next = single_cycle(params.slots(), params.seed);
  std::set<std::uint64_t> visited;
  std::uint64_t cur = 0;
  for (std::uint32_t h = 0; h < params.hops; ++h) {
    visited.insert(cur);
    cur = next[cur];
  }
  return visited.size();
}

LatencyResult latency_run(sim::Machine& machine,
                          const LatencyParams& params) {
  params.validate();
  const auto next = single_cycle(params.slots(), params.seed);

  const os::Region buf = machine.mmap(params.buffer_bytes);
  machine.flush_caches();

  // Warm pass: bring the chain into whichever levels it fits.
  std::uint64_t cur = 0;
  for (std::uint64_t s = 0; s < params.slots(); ++s) {
    machine.touch(buf.vaddr + cur * params.stride_bytes, 8, false);
    cur = next[cur];
  }

  machine.begin_measurement();
  cur = 0;
  for (std::uint32_t h = 0; h < params.hops; ++h) {
    machine.touch(buf.vaddr + cur * params.stride_bytes, 8, false);
    cur = next[cur];
  }

  sim::InstrMix mix;
  mix.add(OpClass::kLoad64, params.hops);
  mix.add(OpClass::kIntAlu, params.hops);  // address formation
  // Every load feeds the next: the chain is fully serialized, and any
  // miss pays its whole latency.
  mix.serialized_loads = params.hops;
  mix.dependent_miss_fraction = 1.0;

  const sim::SimResult sim = machine.end_measurement(mix);
  machine.munmap(buf);

  LatencyResult result;
  result.sim = sim;
  result.cycles_per_hop = sim.breakdown.total / params.hops;
  result.ns_per_hop = sim.seconds * 1e9 / params.hops;
  return result;
}

}  // namespace mb::kernels
