// Pointer-chase latency kernel (lat_mem_rd style).
//
// The complement of membench: where membench measures achievable
// *bandwidth*, the chase measures exposed *load-to-use latency*. A buffer
// is filled with a random cyclic permutation of pointers and traversed —
// every load depends on the previous one, so no amount of out-of-order
// machinery can overlap them. The measured cycles/hop curve plateaus at
// each cache level's latency and ends at DRAM: running it on a simulated
// machine therefore *recovers the platform's configured latencies*, which
// makes it the model's self-validation kernel (and a classic tool the
// paper's methodology would reach for).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.h"

namespace mb::kernels {

struct LatencyParams {
  std::uint64_t buffer_bytes = 32 * 1024;
  std::uint32_t hops = 4096;      ///< chase steps measured
  std::uint64_t seed = 1;         ///< permutation seed
  std::uint32_t stride_bytes = 64;///< one pointer per this many bytes

  std::uint64_t slots() const { return buffer_bytes / stride_bytes; }
  void validate() const;
};

/// Builds the random single-cycle permutation (Sattolo's algorithm) and
/// walks it natively; returns the number of distinct slots visited in
/// `hops` steps (== min(hops, slots): the cycle property, used by tests).
std::uint64_t latency_native(const LatencyParams& params);

struct LatencyResult {
  sim::SimResult sim;
  double cycles_per_hop = 0.0;
  double ns_per_hop = 0.0;
};

/// Walks the same permutation through the simulated machine with fully
/// serialized loads.
LatencyResult latency_run(sim::Machine& machine,
                          const LatencyParams& params);

}  // namespace mb::kernels
