#include "kernels/linpack.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.h"
#include "support/rng.h"

namespace mb::kernels {

using arch::OpClass;

void LinpackParams::validate() const {
  support::check(n >= 4, "LinpackParams", "n must be >= 4");
  support::check(block >= 1 && block <= n, "LinpackParams",
                 "block must be in [1, n]");
}

Matrix::Matrix(std::uint32_t rows, std::uint32_t cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, 0.0) {
  support::check(rows > 0 && cols > 0, "Matrix", "dimensions must be positive");
}

std::uint64_t Matrix::index(std::uint32_t r, std::uint32_t c) const {
  return static_cast<std::uint64_t>(c) * rows_ + r;  // column major
}

double& Matrix::at(std::uint32_t r, std::uint32_t c) {
  return data_[index(r, c)];
}

double Matrix::at(std::uint32_t r, std::uint32_t c) const {
  return data_[index(r, c)];
}

void Matrix::fill_random(std::uint64_t seed) {
  support::Rng rng(seed);
  for (auto& x : data_) x = rng.uniform(-1.0, 1.0);
  const std::uint32_t d = std::min(rows_, cols_);
  for (std::uint32_t i = 0; i < d; ++i) at(i, i) += 4.0;
}

double Matrix::norm_inf() const {
  double best = 0.0;
  for (std::uint32_t r = 0; r < rows_; ++r) {
    double row = 0.0;
    for (std::uint32_t c = 0; c < cols_; ++c) row += std::fabs(at(r, c));
    best = std::max(best, row);
  }
  return best;
}

std::uint64_t lu_flops(std::uint32_t n) {
  const auto nn = static_cast<std::uint64_t>(n);
  return 2 * nn * nn * nn / 3;
}

namespace {

/// Shared context for the traced factorization. `machine` may be null
/// (native run); then only the math executes.
struct TraceCtx {
  sim::Machine* machine = nullptr;
  std::uint64_t base_vaddr = 0;
  const Matrix* matrix = nullptr;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;

  void load(std::uint32_t r, std::uint32_t c) {
    ++loads;
    if (machine != nullptr)
      machine->touch(base_vaddr + matrix->index(r, c) * 8, 8, false);
  }
  void store(std::uint32_t r, std::uint32_t c) {
    ++stores;
    if (machine != nullptr)
      machine->touch(base_vaddr + matrix->index(r, c) * 8, 8, true);
  }
};

/// Unblocked panel factorization of columns [k, k+nb) acting on rows
/// [k, n). Returns flops done. Partial pivoting swaps whole rows of A.
std::uint64_t factor_panel(Matrix& a, std::vector<std::uint32_t>& pivots,
                           std::uint32_t k, std::uint32_t nb, TraceCtx& t) {
  const std::uint32_t n = a.rows();
  std::uint64_t flops = 0;
  for (std::uint32_t j = k; j < k + nb; ++j) {
    // Pivot search in column j (serial scan).
    std::uint32_t piv = j;
    double best = std::fabs(a.at(j, j));
    for (std::uint32_t r = j + 1; r < n; ++r) {
      t.load(r, j);
      const double v = std::fabs(a.at(r, j));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    support::check(best > 0.0, "factor_panel", "matrix is singular");
    pivots[j] = piv;
    if (piv != j) {
      for (std::uint32_t c = 0; c < a.cols(); ++c)
        std::swap(a.at(j, c), a.at(piv, c));
    }
    // Scale multipliers and rank-1 update of the panel's trailing block.
    const double inv = 1.0 / a.at(j, j);
    for (std::uint32_t r = j + 1; r < n; ++r) {
      a.at(r, j) *= inv;
      t.store(r, j);
      ++flops;
    }
    for (std::uint32_t c = j + 1; c < k + nb; ++c) {
      const double ajc = a.at(j, c);
      for (std::uint32_t r = j + 1; r < n; ++r) {
        t.load(r, j);
        a.at(r, c) -= a.at(r, j) * ajc;
        t.store(r, c);
        flops += 2;
      }
    }
  }
  return flops;
}

/// Triangular solve: computes U12 = L11^-1 * A12 for the block row right
/// of the panel. L11 is unit lower triangular (panel columns).
std::uint64_t panel_trsm(Matrix& a, std::uint32_t k, std::uint32_t nb,
                         TraceCtx& t) {
  const std::uint32_t n = a.cols();
  std::uint64_t flops = 0;
  for (std::uint32_t c = k + nb; c < n; ++c) {
    for (std::uint32_t j = k; j < k + nb; ++j) {
      const double ajc = a.at(j, c);
      for (std::uint32_t r = j + 1; r < k + nb; ++r) {
        t.load(r, j);
        a.at(r, c) -= a.at(r, j) * ajc;
        flops += 2;
      }
      t.store(j, c);
    }
  }
  return flops;
}

/// Register-blocked (4x4) DGEMM trailing update:
/// A22 -= L21 * U12 over rows [k+nb, n) x cols [k+nb, n).
std::uint64_t trailing_update(Matrix& a, std::uint32_t k, std::uint32_t nb,
                              TraceCtx& t) {
  const std::uint32_t n = a.rows();
  const std::uint32_t i0 = k + nb;
  std::uint64_t flops = 0;
  constexpr std::uint32_t kBlock = 4;

  for (std::uint32_t i = i0; i < n; i += kBlock) {
    const std::uint32_t imax = std::min(i + kBlock, n);
    for (std::uint32_t j = i0; j < n; j += kBlock) {
      const std::uint32_t jmax = std::min(j + kBlock, n);
      // C(i..imax, j..jmax) -= A(i.., k..k+nb) * B(k.., j..)
      for (std::uint32_t p = k; p < k + nb; ++p) {
        // Touch the A column fragment and B row fragment once per p.
        for (std::uint32_t r = i; r < imax; ++r) t.load(r, p);
        for (std::uint32_t c = j; c < jmax; ++c) t.load(p, c);
        for (std::uint32_t c = j; c < jmax; ++c) {
          const double b = a.at(p, c);
          for (std::uint32_t r = i; r < imax; ++r) {
            a.at(r, c) -= a.at(r, p) * b;
            flops += 2;
          }
        }
      }
      for (std::uint32_t c = j; c < jmax; ++c)
        for (std::uint32_t r = i; r < imax; ++r) t.store(r, c);
    }
  }
  return flops;
}

struct FactorOutcome {
  std::uint64_t flops = 0;
  std::vector<std::uint32_t> pivots;
};

FactorOutcome factor(Matrix& a, const LinpackParams& params, TraceCtx& t) {
  const std::uint32_t n = a.rows();
  FactorOutcome out;
  out.pivots.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) out.pivots[i] = i;
  for (std::uint32_t k = 0; k < n; k += params.block) {
    const std::uint32_t nb = std::min(params.block, n - k);
    out.flops += factor_panel(a, out.pivots, k, nb, t);
    if (k + nb < n) {
      out.flops += panel_trsm(a, k, nb, t);
      out.flops += trailing_update(a, k, nb, t);
    }
  }
  return out;
}

/// Residual ||PA - LU||_inf / (n ||A||_inf eps).
double factorization_residual(const Matrix& original, const Matrix& lu,
                              const std::vector<std::uint32_t>& pivots) {
  const std::uint32_t n = original.rows();
  // Apply the recorded row swaps to a copy of the original.
  Matrix pa = original;
  for (std::uint32_t j = 0; j < n; ++j) {
    if (pivots[j] != j) {
      for (std::uint32_t c = 0; c < n; ++c)
        std::swap(pa.at(j, c), pa.at(pivots[j], c));
    }
  }
  // Compute LU product from the packed factors.
  double err = 0.0;
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t c = 0; c < n; ++c) {
      double acc = 0.0;
      const std::uint32_t kmax = std::min(r, c);
      for (std::uint32_t k = 0; k <= kmax; ++k) {
        const double l = (k == r) ? 1.0 : lu.at(r, k);
        acc += l * lu.at(k, c);
      }
      err = std::max(err, std::fabs(pa.at(r, c) - acc));
    }
  }
  return err / (static_cast<double>(n) * original.norm_inf() *
                std::numeric_limits<double>::epsilon());
}

}  // namespace

LinpackResult linpack_native(const LinpackParams& params,
                             std::uint64_t seed) {
  params.validate();
  Matrix a(params.n, params.n);
  a.fill_random(seed);
  const Matrix original = a;

  TraceCtx t;  // no machine: math only
  t.matrix = &a;
  const FactorOutcome f = factor(a, params, t);

  LinpackResult result;
  result.flops = f.flops;
  result.pivots = f.pivots;
  result.residual = factorization_residual(original, a, f.pivots);
  return result;
}

LinpackResult linpack_run(sim::Machine& machine, const LinpackParams& params,
                          std::uint64_t seed) {
  params.validate();
  Matrix a(params.n, params.n);
  a.fill_random(seed);
  const Matrix original = a;

  const os::Region buf =
      machine.mmap(static_cast<std::uint64_t>(params.n) * params.n * 8);
  machine.flush_caches();
  machine.begin_measurement();

  TraceCtx t;
  t.machine = &machine;
  t.base_vaddr = buf.vaddr;
  t.matrix = &a;
  const FactorOutcome f = factor(a, params, t);

  // ---- instruction mix ----
  // The paper stresses that LINPACK (like BigDFT) "has been optimized for
  // Intel architecture while the code remains unchanged when built on the
  // ARM platform". We model exactly that: on a platform with a DP vector
  // unit the kernel runs as tuned packed-SSE code (paired loads, short
  // dependency chains); elsewhere it is plain scalar compiler output.
  sim::InstrMix mix;
  mix.flops = f.flops;
  mix.add(OpClass::kIntAlu, f.flops / 8);  // addressing/loop overhead
  mix.add(OpClass::kBranch, f.flops / 32);
  mix.mispredicted_branches = f.flops / 2048;
  if (machine.platform().core.vector_dp) {
    mix.add(OpClass::kVecDp, f.flops / 2);
    mix.add(OpClass::kLoad128, t.loads / 2);  // paired/aligned loads
    mix.add(OpClass::kStore128, t.stores / 2);
    mix.serialized_fp = f.flops / 16;  // well-scheduled BLAS inner kernel
  } else {
    mix.add(OpClass::kFpAddDp, f.flops / 2);
    mix.add(OpClass::kFpMulDp, f.flops / 2);
    mix.add(OpClass::kLoad64, t.loads);
    mix.add(OpClass::kStore64, t.stores);
    // Untuned scalar code exposes the VFP accumulation latency on a large
    // fraction of the FP operations (pivot scans, rank-1 updates, and a
    // DGEMM the compiler does not software-pipeline).
    mix.serialized_fp = f.flops / 4;
  }

  const sim::SimResult sim = machine.end_measurement(mix);
  machine.munmap(buf);

  LinpackResult result;
  result.sim = sim;
  result.flops = f.flops;
  result.mflops = static_cast<double>(f.flops) / sim.seconds / 1e6;
  result.pivots = f.pivots;
  result.residual = factorization_residual(original, a, f.pivots);
  return result;
}

std::vector<std::uint32_t> lu_factor_inplace(Matrix& a,
                                             const LinpackParams& params) {
  params.validate();
  support::check(a.rows() == a.cols(), "lu_factor_inplace",
                 "matrix must be square");
  support::check(a.rows() == params.n, "lu_factor_inplace",
                 "params.n must match the matrix dimension");
  TraceCtx t;
  t.matrix = &a;
  return factor(a, params, t).pivots;
}

std::vector<double> lu_solve(const Matrix& lu,
                             const std::vector<std::uint32_t>& pivots,
                             std::vector<double> b) {
  const std::uint32_t n = lu.rows();
  support::check(b.size() == n, "lu_solve", "b must have length n");
  // Apply pivots.
  for (std::uint32_t j = 0; j < n; ++j)
    if (pivots[j] != j) std::swap(b[j], b[pivots[j]]);
  // Forward substitution (unit lower).
  for (std::uint32_t r = 1; r < n; ++r) {
    double acc = b[r];
    for (std::uint32_t c = 0; c < r; ++c) acc -= lu.at(r, c) * b[c];
    b[r] = acc;
  }
  // Back substitution.
  for (std::uint32_t r = n; r-- > 0;) {
    double acc = b[r];
    for (std::uint32_t c = r + 1; c < n; ++c) acc -= lu.at(r, c) * b[c];
    b[r] = acc / lu.at(r, r);
  }
  return b;
}

}  // namespace mb::kernels
