// LINPACK-style dense linear algebra kernel (paper Table II, Fig. 3a).
//
// A real blocked right-looking LU factorization with partial pivoting
// (dgetrf-style): unblocked panel factorization, row-swap, triangular solve
// for the panel's trailing row block, and a register-blocked DGEMM trailing
// update. Validation computes ||PA - LU|| / (n ||A||).
//
// The simulated run executes the same factorization while tracing the
// block-level memory accesses of the DGEMM microkernel through the Machine
// and building the dynamic instruction mix (packed DP ops, so the cost
// model's decomposition reproduces the SSE-vs-VFP asymmetry that makes this
// the most ARM-hostile row of Table II).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.h"

namespace mb::kernels {

struct LinpackParams {
  std::uint32_t n = 128;    ///< matrix dimension
  std::uint32_t block = 32; ///< panel width
  void validate() const;
};

/// Dense column-major matrix helper.
class Matrix {
 public:
  Matrix(std::uint32_t rows, std::uint32_t cols);

  double& at(std::uint32_t r, std::uint32_t c);
  double at(std::uint32_t r, std::uint32_t c) const;
  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }
  std::uint64_t index(std::uint32_t r, std::uint32_t c) const;
  const std::vector<double>& data() const { return data_; }

  /// Fills with deterministic uniform(-1,1) entries plus a diagonal boost
  /// (keeps the factorization well conditioned).
  void fill_random(std::uint64_t seed);

  /// Infinity norm.
  double norm_inf() const;

 private:
  std::uint32_t rows_, cols_;
  std::vector<double> data_;
};

/// Result of a (simulated or native) factorization.
struct LinpackResult {
  sim::SimResult sim;               ///< zeroed for native runs
  std::uint64_t flops = 0;
  double mflops = 0.0;              ///< simulated rate (0 for native)
  double residual = 0.0;            ///< ||PA - LU|| / (n * ||A|| * eps)
  std::vector<std::uint32_t> pivots;
};

/// Factors a copy of `a` natively (no machine) and reports the residual.
LinpackResult linpack_native(const LinpackParams& params,
                             std::uint64_t seed = 1);

/// Factors on the simulated machine: same math, plus trace + mix.
LinpackResult linpack_run(sim::Machine& machine, const LinpackParams& params,
                          std::uint64_t seed = 1);

/// Factors `a` in place natively; returns the pivot vector. Building block
/// exposed for solve tests and the HPL application model.
std::vector<std::uint32_t> lu_factor_inplace(Matrix& a,
                                             const LinpackParams& params);

/// Solves A x = b using a factorization produced by the routines above
/// (forward/back substitution with the recorded pivots). `lu` is the
/// factored matrix. Used by validation tests.
std::vector<double> lu_solve(const Matrix& lu,
                             const std::vector<std::uint32_t>& pivots,
                             std::vector<double> b);

/// Theoretical flop count of LU on an n x n matrix: 2n^3/3 + lower order.
std::uint64_t lu_flops(std::uint32_t n);

}  // namespace mb::kernels
