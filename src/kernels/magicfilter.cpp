#include "kernels/magicfilter.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/rng.h"

namespace mb::kernels {

using arch::OpClass;

const std::array<double, 16>& magicfilter_coefficients() {
  // Lowpass magic filter of BigDFT (Daubechies-16 family). The dominant
  // central coefficient and rapidly decaying tails are what give the
  // kernel its numerical character; the sum is ~1 (interpolating filter).
  static const std::array<double, 16> kFilter = {
      8.4334247333529341094733325815816e-7,
      -0.1290557201342060969516786758559028e-4,
      0.8762984476210559564689161894116397e-4,
      -0.30158038132690463167163703826169879e-3,
      0.174723713672993903449447812749852942e-2,
      -0.942047030201080385922711540948195075e-2,
      0.2373821463724942397566389712597274535e-1,
      0.612625895831207982195380597e-1,
      0.9940415697834003993178616713,
      -0.604895289196983516002834636e-1,
      -0.2103025160930381434955489412839065067e-1,
      0.1337263414854794752733423467013220997e-1,
      -0.344128144493493857280881509686821861e-2,
      0.49443227688689919192282259476750972e-3,
      -0.5185986881173432922848639136911487e-4,
      2.72734492911979659657715313017228e-6,
  };
  return kFilter;
}

void MagicfilterParams::validate() const {
  support::check(n >= 16, "MagicfilterParams",
                 "grid edge must be >= filter length (16)");
  support::check(unroll >= 1 && unroll <= 16, "MagicfilterParams",
                 "unroll must be in [1, 16]");
  support::check(dims >= 1 && dims <= 3, "MagicfilterParams",
                 "dims must be in [1, 3]");
}

void magicfilter_axis(const std::vector<double>& in, std::vector<double>& out,
                      std::uint32_t n, std::uint32_t axis) {
  support::check(axis < 3, "magicfilter_axis", "axis must be 0, 1 or 2");
  const std::uint64_t n64 = n;
  support::check(in.size() == n64 * n64 * n64 && out.size() == in.size(),
                 "magicfilter_axis", "arrays must be n^3");
  const auto& f = magicfilter_coefficients();
  const std::uint64_t stride = axis == 0 ? 1 : (axis == 1 ? n64 : n64 * n64);

  // Iterate over all lines along `axis`.
  for (std::uint64_t a = 0; a < n64; ++a) {
    for (std::uint64_t b = 0; b < n64; ++b) {
      // Base index of the line: the two non-axis coordinates are (a, b).
      std::uint64_t base;
      switch (axis) {
        case 0: base = n64 * (a + n64 * b); break;
        case 1: base = a + n64 * n64 * b; break;
        default: base = a + n64 * b; break;
      }
      for (std::uint64_t i = 0; i < n64; ++i) {
        double acc = 0.0;
        for (std::uint64_t l = 0; l < 16; ++l) {
          // Filter is centered: taps run from -8 .. +7 around the output.
          const std::uint64_t src = (i + n64 + l - 8) % n64;
          acc += f[l] * in[base + src * stride];
        }
        out[base + i * stride] = acc;
      }
    }
  }
}

double magicfilter_native(const MagicfilterParams& params,
                          std::uint64_t seed) {
  params.validate();
  const std::uint64_t n = params.n;
  const std::uint64_t total = n * n * n;
  std::vector<double> a(total), b(total);
  support::Rng rng(seed);
  for (auto& x : a) x = rng.uniform(-1.0, 1.0);

  for (std::uint32_t axis = 0; axis < params.dims; ++axis) {
    magicfilter_axis(a, b, params.n, axis);
    a.swap(b);
  }
  double norm2 = 0.0;
  for (double x : a) norm2 += x * x;
  return std::sqrt(norm2);
}

double magicfilter_live_values(std::uint32_t unroll) {
  // One accumulator per unrolled line (inputs are consumed immediately),
  // plus the current coefficient and address/loop temporaries the compiler
  // keeps in FP-adjacent registers.
  return unroll + 7.0;
}

MagicfilterResult magicfilter_run(sim::Machine& machine,
                                  const MagicfilterParams& params) {
  params.validate();
  const arch::Platform& platform = machine.platform();
  const std::uint64_t n = params.n;
  const std::uint64_t total = n * n * n;

  const os::Region in = machine.mmap(total * 8);
  const os::Region out = machine.mmap(total * 8);
  const os::Region coeffs = machine.mmap(16 * 8);
  machine.flush_caches();
  machine.begin_measurement();

  // Spill model: every accumulator beyond the scalar-DP register budget
  // is stored and reloaded once per filter tap (2 accesses x 16 taps per
  // spilled value per unrolled group). The *accesses* appear on every
  // platform — the Fig. 7 cache-access staircase — but their cycle cost is
  // platform dependent: a deep out-of-order core forwards them from the
  // store buffer almost for free, a 2-wide embedded core pays for each op.
  // The exposed fraction reuses miss_overlap as the OoO-depth proxy.
  const double live = magicfilter_live_values(params.unroll);
  const double budget = platform.core.dp_scalar_registers;
  const double spilled = std::max(0.0, live - budget);
  const auto spill_per_group = static_cast<std::uint64_t>(spilled * 32.0);
  const double exposed = (1.0 - platform.core.miss_overlap) *
                         (1.0 - platform.core.miss_overlap);
  const auto spill_ops_charged =
      static_cast<std::uint64_t>(spilled * 32.0 * exposed);

  sim::InstrMix mix;
  std::uint64_t outputs = 0;

  for (std::uint32_t axis = 0; axis < params.dims; ++axis) {
    const std::uint64_t stride = axis == 0 ? 1 : (axis == 1 ? n : n * n);
    for (std::uint64_t a = 0; a < n; ++a) {
      // Process the n lines indexed by b in groups of `unroll`.
      for (std::uint64_t b0 = 0; b0 < n; b0 += params.unroll) {
        const std::uint64_t group =
            std::min<std::uint64_t>(params.unroll, n - b0);
        for (std::uint64_t i = 0; i < n; ++i) {
          // One output element per line in the group; the 16-tap inner
          // loop loads each coefficient once per group (the unrolling
          // payoff) and one input element per line per tap.
          for (std::uint64_t l = 0; l < 16; ++l) {
            machine.touch(coeffs.vaddr + l * 8, 8, false);
            for (std::uint64_t u = 0; u < group; ++u) {
              const std::uint64_t line_a = a;
              const std::uint64_t line_b = b0 + u;
              std::uint64_t base;
              switch (axis) {
                case 0: base = n * (line_a + n * line_b); break;
                case 1: base = line_a + n * n * line_b; break;
                default: base = line_a + n * line_b; break;
              }
              const std::uint64_t src = (i + n + l - 8) % n;
              machine.touch(in.vaddr + (base + src * stride) * 8, 8, false);
            }
          }
          for (std::uint64_t u = 0; u < group; ++u) {
            const std::uint64_t line_a = a;
            const std::uint64_t line_b = b0 + u;
            std::uint64_t base;
            switch (axis) {
              case 0: base = n * (line_a + n * line_b); break;
              case 1: base = line_a + n * n * line_b; break;
              default: base = line_a + n * line_b; break;
            }
            machine.touch(out.vaddr + (base + i * stride) * 8, 8, true);
            ++outputs;
          }
          // Spilled values bounce through the stack once per tap burst.
          for (std::uint64_t s = 0; s < spill_per_group; ++s) {
            machine.touch(coeffs.vaddr + 128 - 8, 8, s % 2 == 0);
          }
        }
      }
    }
  }

  // ---- instruction mix ----
  // BigDFT "has been optimized for Intel architecture while the code
  // remains unchanged ... on the ARM platform" (paper Sec. III-B): on a
  // platform with packed-DP hardware the convolution runs as SSE2 code
  // (two taps per op, paired loads); elsewhere it is scalar VFP output.
  const std::uint64_t groups =
      (outputs / params.unroll) + (outputs % params.unroll ? 1 : 0);
  const std::uint64_t taps = outputs * 16;
  mix.flops = 2 * taps;
  if (platform.core.vector_dp) {
    mix.add(OpClass::kVecDp, taps);  // taps/2 packed muls + taps/2 adds
    mix.add(OpClass::kLoad128, taps / 2);
    // The tuned SSE variant keeps all 16 coefficients register-resident
    // across a line: one broadcast per line, not per group.
    mix.add(OpClass::kLoad64, (outputs / params.n) * 16);
  } else {
    mix.add(OpClass::kFpMulDp, taps);
    mix.add(OpClass::kFpAddDp, taps);
    mix.add(OpClass::kLoad64, taps);         // input element per tap
    mix.add(OpClass::kLoad64, groups * 16);  // coefficient per group
  }
  mix.add(OpClass::kStore64, outputs);
  mix.add(OpClass::kStore64, groups * spill_ops_charged / 2);
  mix.add(OpClass::kLoad64, groups * spill_ops_charged / 2);
  // Addressing: the Intel-optimized variant strength-reduces to pointer
  // bumps; plain compiled output recomputes indices per tap.
  mix.add(OpClass::kIntAlu,
          platform.core.vector_dp ? taps / 2 : taps * 2);
  mix.add(OpClass::kBranch, groups * 16);   // tap loop per group
  mix.mispredicted_branches = groups / 16;

  // Accumulator chains: `unroll` independent chains of 16 dependent adds.
  const double fp_lat = platform.core.fp_dep_latency_cycles;
  if (params.unroll < fp_lat) {
    mix.serialized_fp = static_cast<std::uint64_t>(
        static_cast<double>(taps) * (1.0 - params.unroll / fp_lat));
  }
  // Spilled accumulators reload right after being stored: a store-to-load
  // hazard a shallow pipeline stalls on, while a deep OoO core forwards.
  const double reloads =
      static_cast<double>(groups) * 16.0 * spilled;
  mix.serialized_loads +=
      static_cast<std::uint64_t>(reloads * 0.35 * exposed);

  const sim::SimResult sim = machine.end_measurement(mix);
  machine.munmap(in);
  machine.munmap(out);
  machine.munmap(coeffs);

  MagicfilterResult result;
  result.sim = sim;
  result.cycles_per_output =
      sim.breakdown.total / static_cast<double>(outputs);
  result.cache_accesses_per_output =
      static_cast<double>(sim.counters.get(counters::Counter::kL1Dca)) /
      static_cast<double>(outputs);
  result.spill_values = spilled;
  return result;
}

}  // namespace mb::kernels
