// BigDFT "magic filter" kernel (paper Sec. V-B, Fig. 7).
//
// The electronic-potential computation in BigDFT applies a 16-coefficient
// "magic filter" as three successive 1-D convolutions over a 3-D array
// (Daubechies-wavelet formalism). It is the use case of the paper's
// auto-tuning study: the inner loops can be unrolled with degree 1..12, and
// the right degree differs radically between Nehalem and Tegra2 because of
// register pressure.
//
// Two faces, like every kernel here:
//  * magicfilter_native()  — real double-precision convolution, validated
//    against a direct reference sum in the tests.
//  * magicfilter_run()     — replays the unrolled variant's access pattern
//    on a simulated machine and builds its instruction mix; cache accesses
//    fall with moderate unrolling (coefficient reuse) and climb once the
//    accumulators spill (the paper's staircase).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/machine.h"

namespace mb::kernels {

/// The 16 lowpass magic-filter coefficients (BigDFT convention).
const std::array<double, 16>& magicfilter_coefficients();

struct MagicfilterParams {
  std::uint32_t n = 24;       ///< cubic grid edge (n^3 elements)
  std::uint32_t unroll = 1;   ///< unrolled output lines, 1..12 in the paper
  std::uint32_t dims = 3;     ///< convolve this many axes (1..3)

  std::uint64_t outputs() const {
    return static_cast<std::uint64_t>(dims) * n * n * n;
  }
  void validate() const;
};

/// Applies the magic filter along one axis with periodic boundaries.
/// `in` and `out` are n^3 arrays; axis 0 is contiguous.
void magicfilter_axis(const std::vector<double>& in, std::vector<double>& out,
                      std::uint32_t n, std::uint32_t axis);

/// Full native computation: `dims` successive axis applications on a
/// deterministic pseudo-random field. Returns the array's L2 norm (the
/// checksum used by validation tests). Unrolling does not change the math,
/// only the schedule — the checksum must be identical for every unroll.
double magicfilter_native(const MagicfilterParams& params,
                          std::uint64_t seed = 1);

struct MagicfilterResult {
  sim::SimResult sim;
  double cycles_per_output = 0.0;
  double cache_accesses_per_output = 0.0;  ///< L1 DCA / outputs (Fig. 7)
  double spill_values = 0.0;               ///< register values spilled
};

/// Simulated run of the unrolled variant.
MagicfilterResult magicfilter_run(sim::Machine& machine,
                                  const MagicfilterParams& params);

/// Live double-precision values in the unrolled loop body (accumulators,
/// streamed inputs, coefficient and address temporaries).
double magicfilter_live_values(std::uint32_t unroll);

}  // namespace mb::kernels
