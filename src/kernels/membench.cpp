#include "kernels/membench.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/check.h"
#include "support/rng.h"

namespace mb::kernels {

using arch::OpClass;

void MembenchParams::validate() const {
  support::check(elem_bits == 32 || elem_bits == 64 || elem_bits == 128,
                 "MembenchParams", "elem_bits must be 32, 64 or 128");
  support::check(array_bytes >= elem_bytes(), "MembenchParams",
                 "array must hold at least one element");
  support::check(array_bytes % elem_bytes() == 0, "MembenchParams",
                 "array size must be a multiple of the element size");
  support::check(stride_elems >= 1, "MembenchParams", "stride must be >= 1");
  support::check(unroll >= 1, "MembenchParams", "unroll must be >= 1");
  support::check(passes >= 1, "MembenchParams", "passes must be >= 1");
  support::check(bandwidth_sharers >= 1, "MembenchParams",
                 "bandwidth_sharers must be >= 1");
}

double membench_native(const MembenchParams& params, std::uint64_t seed) {
  params.validate();
  // The native loop works in 32-bit lanes; wider elements are groups of
  // lanes, exactly like vector registers.
  const std::uint64_t lanes = params.elem_bits / 32;
  const std::uint64_t n32 = params.array_bytes / 4;
  std::vector<float> data(n32);
  support::Rng rng(seed);
  for (auto& x : data) x = static_cast<float>(rng.uniform(-1.0, 1.0));

  // One accumulator per unroll stream per lane.
  std::vector<double> acc(params.unroll * lanes, 0.0);
  const std::uint64_t elems = params.elements();
  for (std::uint32_t pass = 0; pass < params.passes; ++pass) {
    std::uint64_t stream = 0;
    for (std::uint64_t e = 0; e < elems; e += params.stride_elems) {
      const std::uint64_t base = e * lanes;
      for (std::uint64_t l = 0; l < lanes; ++l)
        acc[stream * lanes + l] += data[base + l];
      stream = (stream + 1) % params.unroll;
    }
  }
  double sum = 0.0;
  for (double a : acc) sum += a;
  return sum;
}

double membench_register_pressure(const MembenchParams& params) {
  // Each stream keeps an accumulator and the just-loaded element live;
  // express both in 128-bit register units.
  const double unit = params.elem_bits / 128.0;
  return params.unroll * 2.0 * unit;
}

namespace {

/// Spill accesses per accessed element: values that no longer fit the FP
/// register file are stored and reloaded once per loop iteration.
double spills_per_elem(const MembenchParams& params,
                       const arch::Platform& platform) {
  const double pressure = membench_register_pressure(params);
  const double regs = platform.core.fp_registers;
  if (pressure <= regs) return 0.0;
  // Excess register units, back in element units, spread over the unroll
  // body: each excess element value costs one store + one load per element
  // processed by its stream.
  const double unit = params.elem_bits / 128.0;
  const double excess_elems = (pressure - regs) / unit;
  return 2.0 * excess_elems / params.unroll;
}

}  // namespace

MembenchResult membench_run(sim::Machine& machine,
                            const MembenchParams& params) {
  params.validate();
  const arch::Platform& platform = machine.platform();

  // malloc/free per measurement, as the paper's benchmark does: placement
  // is re-drawn according to the machine's page policy.
  const os::Region buf = machine.mmap(params.array_bytes);
  machine.flush_caches();
  machine.begin_measurement();

  const std::uint64_t eb = params.elem_bytes();
  const auto elem_width =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(eb, 16));
  const std::uint64_t elems = params.elements();
  const double spill = spills_per_elem(params, platform);

  std::uint64_t accessed = 0;
  for (std::uint32_t pass = 0; pass < params.passes; ++pass) {
    for (std::uint64_t e = 0; e < elems; e += params.stride_elems) {
      machine.touch(buf.vaddr + e * eb, elem_width, /*write=*/false);
      ++accessed;
    }
  }

  // ---- dynamic instruction mix ----
  sim::InstrMix mix;
  const OpClass load_cls = arch::load_class_for_bits(params.elem_bits);
  const OpClass store_cls = arch::store_class_for_bits(params.elem_bits);
  mix.add(load_cls, accessed);

  // Accumulation per element. "Changing element sizes to vectorize"
  // (paper Sec. V-A.3) means reinterpreting the float array at wider
  // widths: 32-bit elements use the scalar SP pipe, 64-bit elements a
  // half-width (D-register) packed add, 128-bit a full packed add. A
  // 64-bit packed op is half of the nominal 128-bit kVecSp.
  switch (params.elem_bits) {
    case 32:
      mix.add(OpClass::kFpAddSp, accessed);
      break;
    case 64:
      mix.add(OpClass::kVecSp, accessed / 2);
      break;
    case 128:
      mix.add(OpClass::kVecSp, accessed);
      break;
    default:
      support::fail("membench_run", "unreachable element width");
  }
  mix.flops = accessed * (params.elem_bits / 32);

  // Loop overhead: index update + compare amortized over the unroll body,
  // plus one branch per body.
  const std::uint64_t bodies =
      (accessed + params.unroll - 1) / params.unroll;
  mix.add(OpClass::kIntAlu, bodies * 2);
  mix.add(OpClass::kBranch, bodies);
  mix.mispredicted_branches = bodies / 256;  // highly predictable loop

  // Register spills: extra stores+loads of element width.
  const auto spill_ops =
      static_cast<std::uint64_t>(spill * static_cast<double>(accessed) / 2.0);
  mix.add(store_cls, spill_ops);
  mix.add(load_cls, spill_ops);
  // Spilled traffic also hits the cache; model it as extra L1 touches on
  // a small stack region (the buffer's first lines stay hot, so reuse the
  // array's first element as the spill slot: it stays L1-resident).
  for (std::uint64_t s = 0; s < spill_ops; ++s) {
    machine.touch(buf.vaddr, elem_width, /*write=*/true);
    machine.touch(buf.vaddr, elem_width, /*write=*/false);
  }

  // Dependency exposure: each unroll stream owns an accumulator chain.
  // With fewer streams than the FP latency, the chains cannot fill the
  // pipeline and the add latency is exposed proportionally.
  const double fp_lat = platform.core.fp_dep_latency_cycles;
  if (params.unroll < fp_lat) {
    mix.serialized_fp = static_cast<std::uint64_t>(
        static_cast<double>(accessed) * (1.0 - params.unroll / fp_lat));
  }
  // Strided access with stride >= line: address generation serializes on
  // loads only when the next address depends on the loaded value (pointer
  // chase); this kernel uses independent addresses, so no serialized loads.

  const sim::SimResult sim =
      machine.end_measurement(mix, params.bandwidth_sharers);
  machine.munmap(buf);

  MembenchResult out;
  out.sim = sim;
  out.bytes_accessed = accessed * eb;
  out.bandwidth_bytes_per_s =
      static_cast<double>(out.bytes_accessed) / sim.seconds;
  out.spill_accesses_per_elem = spill;
  return out;
}

}  // namespace mb::kernels
