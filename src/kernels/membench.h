// Strided memory-access micro-benchmark (paper Sec. V-A, Figs. 5 and 6).
//
// Modeled on the Tikir et al. kernel the paper bases its Section V on: loop
// over an array of a fixed size with a fixed stride, accumulating loaded
// elements; effective bandwidth = bytes accessed / time. Variants differ in
//   * element width: 32, 64 or 128 bits ("vectorization"),
//   * unroll factor: 1 (none) or more (independent accumulator streams).
//
// The kernel has two faces:
//   * run_native() — executes the real loop on host memory and returns a
//     checksum; validates the arithmetic of every variant.
//   * run(Machine&) — replays the exact access pattern through a simulated
//     machine (so physical page placement matters) and builds the dynamic
//     instruction mix, including the register-pressure spill model that
//     reproduces the paper's "unrolling can be detrimental on ARM" finding.
#pragma once

#include <cstdint>

#include "sim/instr_mix.h"
#include "sim/machine.h"

namespace mb::kernels {

struct MembenchParams {
  std::uint64_t array_bytes = 32 * 1024;
  std::uint32_t stride_elems = 1;   ///< in elements
  std::uint32_t elem_bits = 32;     ///< 32, 64 or 128
  std::uint32_t unroll = 1;         ///< independent accumulator streams
  std::uint32_t passes = 8;         ///< sweeps over the array
  /// Cores concurrently driving DRAM (whole-chip runs share bandwidth).
  std::uint32_t bandwidth_sharers = 1;

  std::uint64_t elem_bytes() const { return elem_bits / 8; }
  std::uint64_t elements() const { return array_bytes / elem_bytes(); }
  /// Elements actually accessed per pass (stride skips the rest).
  std::uint64_t accessed_per_pass() const {
    return (elements() + stride_elems - 1) / stride_elems;
  }
  std::uint64_t bytes_accessed() const {
    return accessed_per_pass() * elem_bytes() * passes;
  }

  void validate() const;
};

struct MembenchResult {
  sim::SimResult sim;
  double bandwidth_bytes_per_s = 0.0;  ///< effective bandwidth
  std::uint64_t bytes_accessed = 0;
  /// Extra loads+stores per accessed element due to register spills (the
  /// quantity behind Fig. 6b's detrimental-unrolling effect).
  double spill_accesses_per_elem = 0.0;
};

/// Executes the real accumulation loop on host memory; returns the sum.
/// Deterministic for a given params/seed (array filled from the seed).
double membench_native(const MembenchParams& params, std::uint64_t seed = 1);

/// Replays the access pattern on the simulated machine. The array is
/// mmapped (page placement per the machine's policy), traced through the
/// cache hierarchy, and costed. `fresh_buffer` forces a new mmap/munmap
/// cycle per call (the paper's malloc/free-per-measurement behaviour).
MembenchResult membench_run(sim::Machine& machine,
                            const MembenchParams& params);

/// Register pressure of a variant in 128-bit register equivalents:
/// unroll streams x (accumulator + in-flight element).
double membench_register_pressure(const MembenchParams& params);

}  // namespace mb::kernels
