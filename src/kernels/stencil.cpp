#include "kernels/stencil.h"

#include <cmath>
#include <numbers>

#include "support/check.h"
#include "support/rng.h"

namespace mb::kernels {

using arch::OpClass;

void StencilParams::validate() const {
  support::check(n >= 4, "StencilParams", "grid edge must be >= 4");
  support::check(steps >= 1, "StencilParams", "steps must be >= 1");
  support::check(cfl > 0.0 && cfl < 0.577, "StencilParams",
                 "cfl must be in (0, 1/sqrt(3)) for 3-D stability");
}

namespace {

std::uint64_t idx(std::uint32_t i, std::uint32_t j, std::uint32_t k,
                  std::uint32_t n) {
  return (static_cast<std::uint64_t>(k) * n + j) * n + i;
}

}  // namespace

void stencil_step(const std::vector<float>& prev, const std::vector<float>& cur,
                  std::vector<float>& next, std::uint32_t n, double cfl) {
  const std::uint64_t total = static_cast<std::uint64_t>(n) * n * n;
  support::check(prev.size() == total && cur.size() == total &&
                     next.size() == total,
                 "stencil_step", "arrays must be n^3");
  const auto c2 = static_cast<float>(cfl * cfl);
  for (std::uint32_t k = 0; k < n; ++k) {
    const std::uint32_t km = (k + n - 1) % n, kp = (k + 1) % n;
    for (std::uint32_t j = 0; j < n; ++j) {
      const std::uint32_t jm = (j + n - 1) % n, jp = (j + 1) % n;
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t im = (i + n - 1) % n, ip = (i + 1) % n;
        const float center = cur[idx(i, j, k, n)];
        const float lap = cur[idx(im, j, k, n)] + cur[idx(ip, j, k, n)] +
                          cur[idx(i, jm, k, n)] + cur[idx(i, jp, k, n)] +
                          cur[idx(i, j, km, n)] + cur[idx(i, j, kp, n)] -
                          6.0f * center;
        next[idx(i, j, k, n)] =
            2.0f * center - prev[idx(i, j, k, n)] + c2 * lap;
      }
    }
  }
}

double stencil_dispersion_error(const StencilParams& params) {
  params.validate();
  const std::uint32_t n = params.n;
  const std::uint64_t total = static_cast<std::uint64_t>(n) * n * n;
  const double kx = 2.0 * std::numbers::pi / n;

  // Exact discrete dispersion of the leapfrog scheme for mode (1,1,1):
  // sin^2(w/2) = cfl^2 * 3 * sin^2(kx/2).
  const double s = params.cfl * params.cfl * 3.0 *
                   std::pow(std::sin(kx / 2.0), 2);
  support::check(s <= 1.0, "stencil_dispersion_error", "unstable mode");
  const double omega = 2.0 * std::asin(std::sqrt(s));

  auto mode = [&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    return std::cos(kx * i) * std::cos(kx * j) * std::cos(kx * k);
  };

  std::vector<float> prev(total), cur(total), next(total);
  for (std::uint32_t k = 0; k < n; ++k)
    for (std::uint32_t j = 0; j < n; ++j)
      for (std::uint32_t i = 0; i < n; ++i) {
        const double m = mode(i, j, k);
        // u(t) = cos(omega t) * mode; t = -1 and t = 0.
        prev[idx(i, j, k, n)] = static_cast<float>(std::cos(-omega) * m);
        cur[idx(i, j, k, n)] = static_cast<float>(m);
      }

  for (std::uint32_t step = 1; step <= params.steps; ++step) {
    stencil_step(prev, cur, next, n, params.cfl);
    prev.swap(cur);
    cur.swap(next);
  }

  // Compare against the exact discrete solution at t = steps.
  double err = 0.0;
  for (std::uint32_t k = 0; k < n; ++k)
    for (std::uint32_t j = 0; j < n; ++j)
      for (std::uint32_t i = 0; i < n; ++i) {
        const double expect =
            std::cos(omega * params.steps) * mode(i, j, k);
        err = std::max(err, std::fabs(cur[idx(i, j, k, n)] - expect));
      }
  return err;
}

double stencil_native(const StencilParams& params, std::uint64_t seed) {
  params.validate();
  const std::uint32_t n = params.n;
  const std::uint64_t total = static_cast<std::uint64_t>(n) * n * n;
  std::vector<float> prev(total), cur(total), next(total);
  support::Rng rng(seed);
  for (std::uint64_t i = 0; i < total; ++i) {
    cur[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    prev[i] = cur[i];
  }
  for (std::uint32_t step = 0; step < params.steps; ++step) {
    stencil_step(prev, cur, next, n, params.cfl);
    prev.swap(cur);
    cur.swap(next);
  }
  double norm2 = 0.0;
  for (float x : cur) norm2 += static_cast<double>(x) * x;
  return std::sqrt(norm2);
}

StencilResult stencil_run(sim::Machine& machine,
                          const StencilParams& params) {
  params.validate();
  const std::uint32_t n = params.n;
  const std::uint64_t total = static_cast<std::uint64_t>(n) * n * n;

  const os::Region prev = machine.mmap(total * 4);
  const os::Region cur = machine.mmap(total * 4);
  const os::Region next = machine.mmap(total * 4);
  machine.flush_caches();
  machine.begin_measurement();

  // Trace the leapfrog access pattern (reads of cur 7-point neighbourhood
  // and prev, write of next), rotating buffer roles per step.
  const os::Region* bufs[3] = {&prev, &cur, &next};
  for (std::uint32_t step = 0; step < params.steps; ++step) {
    const os::Region& rp = *bufs[step % 3];
    const os::Region& rc = *bufs[(step + 1) % 3];
    const os::Region& rn = *bufs[(step + 2) % 3];
    for (std::uint32_t k = 0; k < n; ++k) {
      const std::uint32_t km = (k + n - 1) % n, kp = (k + 1) % n;
      for (std::uint32_t j = 0; j < n; ++j) {
        const std::uint32_t jm = (j + n - 1) % n, jp = (j + 1) % n;
        for (std::uint32_t i = 0; i < n; ++i) {
          const std::uint32_t im = (i + n - 1) % n, ip = (i + 1) % n;
          machine.touch(rc.vaddr + idx(i, j, k, n) * 4, 4, false);
          machine.touch(rc.vaddr + idx(im, j, k, n) * 4, 4, false);
          machine.touch(rc.vaddr + idx(ip, j, k, n) * 4, 4, false);
          machine.touch(rc.vaddr + idx(i, jm, k, n) * 4, 4, false);
          machine.touch(rc.vaddr + idx(i, jp, k, n) * 4, 4, false);
          machine.touch(rc.vaddr + idx(i, j, km, n) * 4, 4, false);
          machine.touch(rc.vaddr + idx(i, j, kp, n) * 4, 4, false);
          machine.touch(rp.vaddr + idx(i, j, k, n) * 4, 4, false);
          machine.touch(rn.vaddr + idx(i, j, k, n) * 4, 4, true);
        }
      }
    }
  }

  // ---- instruction mix (scalar single precision) ----
  // SPECFEM3D is portable Fortran compiled with plain gcc on both
  // platforms (no hand vectorization): scalar SP arithmetic everywhere,
  // which is why its Table II ratio is almost as small as CoreMark's —
  // per-clock, the A9's SP pipe matches Nehalem's scalar SSE.
  const std::uint64_t points = total * params.steps;
  sim::InstrMix mix;
  // 10 SP flops per point: 6 neighbour adds, 2 multiplies, 2 combines.
  mix.flops = points * 10;
  mix.add(OpClass::kFpAddSp, points * 7);
  mix.add(OpClass::kFpMulSp, points * 3);
  // 5 reads + 1 write per point at the instruction level: the x-direction
  // neighbours stay in registers across the inner loop (standard stencil
  // register rotation), so only y/z neighbours, the new x value and u_prev
  // are loaded. (The *trace* above touches all 8 data accesses — the
  // reused ones are guaranteed L1 hits and only the instruction count
  // differs.)
  mix.add(OpClass::kLoad32, points * 5);
  mix.add(OpClass::kStore32, points);
  mix.add(OpClass::kIntAlu, points);       // index arithmetic (amortized)
  mix.add(OpClass::kBranch, points / 8);
  mix.mispredicted_branches = points / 2048;
  // Neighbour sums form short dependency trees, not long chains: no
  // serialized FP. Streaming loads are independent: no serialized loads.

  const sim::SimResult sim = machine.end_measurement(mix);
  machine.munmap(prev);
  machine.munmap(cur);
  machine.munmap(next);

  StencilResult result;
  result.sim = sim;
  result.points_per_s = static_cast<double>(points) / sim.seconds;
  result.seconds_per_step = sim.seconds / params.steps;
  return result;
}

}  // namespace mb::kernels
