// Seismic wave-propagation proxy for SPECFEM3D (paper Table II, Fig. 3b).
//
// SPECFEM3D propagates seismic waves with a continuous-Galerkin spectral
// element method in single precision. This proxy solves the same physics —
// the second-order wave equation on a 3-D grid with periodic boundaries —
// with the standard leapfrog scheme:
//
//   u_next = 2 u - u_prev + c^2 * laplacian(u)        (c^2 = CFL^2)
//
// Single precision matters: it is why SPECFEM3D runs comparatively well on
// the NEON-equipped ARM boards (Table II ratio 7.9, energy ratio 0.2) and
// why the paper calls it a natural fit for the SP-only embedded GPUs.
//
// Validation: an exact discrete standing-wave solution of the leapfrog
// scheme (the scheme's own dispersion relation), plus invariance checks.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.h"

namespace mb::kernels {

struct StencilParams {
  std::uint32_t n = 24;      ///< cubic grid edge
  std::uint32_t steps = 4;   ///< leapfrog time steps
  double cfl = 0.4;          ///< Courant number (c dt / dx), < 1/sqrt(3)
  void validate() const;
};

/// One leapfrog step on n^3 single-precision grids (periodic boundaries).
void stencil_step(const std::vector<float>& prev, const std::vector<float>& cur,
                  std::vector<float>& next, std::uint32_t n, double cfl);

/// Initializes the (1,1,1) standing-wave mode and steps it `params.steps`
/// times; returns the maximum absolute error against the exact discrete
/// solution. Small (~1e-5, SP rounding) when the scheme is implemented
/// correctly.
double stencil_dispersion_error(const StencilParams& params);

/// Native checksum run on a pseudo-random field (for cross-run identity).
double stencil_native(const StencilParams& params, std::uint64_t seed = 1);

struct StencilResult {
  sim::SimResult sim;
  double points_per_s = 0.0;   ///< grid-point updates per second
  double seconds_per_step = 0.0;
};

/// Simulated run: trace + instruction mix on a machine.
StencilResult stencil_run(sim::Machine& machine, const StencilParams& params);

}  // namespace mb::kernels
