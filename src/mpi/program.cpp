#include "mpi/program.h"

#include <string>

#include "support/check.h"

namespace mb::mpi {

Op Op::compute(double seconds, std::string label) {
  Op op;
  op.kind = Kind::kCompute;
  op.seconds = seconds;
  op.label = std::move(label);
  return op;
}

Op Op::send(std::uint32_t dst, std::uint64_t bytes, std::int32_t tag) {
  Op op;
  op.kind = Kind::kSend;
  op.peer = dst;
  op.bytes = bytes;
  op.tag = tag;
  return op;
}

Op Op::recv(std::uint32_t src, std::int32_t tag) {
  Op op;
  op.kind = Kind::kRecv;
  op.peer = src;
  op.tag = tag;
  return op;
}

Op Op::barrier() {
  Op op;
  op.kind = Kind::kBarrier;
  op.label = "barrier";
  return op;
}

Op Op::bcast(std::uint32_t root, std::uint64_t bytes, std::string label) {
  Op op;
  op.kind = Kind::kBcast;
  op.root = root;
  op.bytes = bytes;
  op.label = std::move(label);
  return op;
}

Op Op::allreduce(std::uint64_t bytes, std::string label) {
  Op op;
  op.kind = Kind::kAllreduce;
  op.bytes = bytes;
  op.label = std::move(label);
  return op;
}

Op Op::alltoallv(std::vector<std::uint64_t> counts, std::string label) {
  Op op;
  op.kind = Kind::kAlltoallv;
  op.counts = std::move(counts);
  op.label = std::move(label);
  return op;
}

Op Op::gather(std::uint32_t root, std::uint64_t bytes_per_rank,
              std::string label) {
  Op op;
  op.kind = Kind::kGather;
  op.root = root;
  op.bytes = bytes_per_rank;
  op.label = std::move(label);
  return op;
}

Op Op::scatter(std::uint32_t root, std::uint64_t bytes_per_rank,
               std::string label) {
  Op op;
  op.kind = Kind::kScatter;
  op.root = root;
  op.bytes = bytes_per_rank;
  op.label = std::move(label);
  return op;
}

Op Op::allgather(std::uint64_t bytes_per_rank, std::string label) {
  Op op;
  op.kind = Kind::kAllgather;
  op.bytes = bytes_per_rank;
  op.label = std::move(label);
  return op;
}

Op Op::reduce(std::uint32_t root, std::uint64_t bytes, std::string label) {
  Op op;
  op.kind = Kind::kReduce;
  op.root = root;
  op.bytes = bytes;
  op.label = std::move(label);
  return op;
}

bool is_collective(Op::Kind kind) {
  switch (kind) {
    case Op::Kind::kBarrier:
    case Op::Kind::kBcast:
    case Op::Kind::kAllreduce:
    case Op::Kind::kAlltoallv:
    case Op::Kind::kGather:
    case Op::Kind::kScatter:
    case Op::Kind::kAllgather:
    case Op::Kind::kReduce:
      return true;
    default:
      return false;
  }
}

Program::Program(std::uint32_t ranks) : per_rank_(ranks) {
  support::check(ranks >= 1, "Program", "need at least one rank");
}

namespace {

/// Construction-time validation shared by Program::append/append_all:
/// catches the alltoallv counts-length bug when the op is written, not
/// when lowering throws halfway through a simulation.
void check_op(const Op& op, std::uint32_t ranks) {
  if (op.kind == Op::Kind::kAlltoallv) {
    support::check(op.counts.size() == ranks, "Program::append",
                   "alltoallv counts vector has " +
                       std::to_string(op.counts.size()) +
                       " entries but the program has " +
                       std::to_string(ranks) +
                       " ranks (need one byte count per destination)");
  }
}

}  // namespace

void Program::append(std::uint32_t r, const Op& op) {
  check_op(op, ranks());
  per_rank_.at(r).push_back(op);
}

void Program::append_all(const Op& op) {
  check_op(op, ranks());
  for (auto& ops : per_rank_) ops.push_back(op);
}

namespace {

Op marker(Op::Kind kind, const std::string& label) {
  Op op;
  op.kind = kind;
  op.label = label;
  return op;
}

/// Binomial-tree broadcast schedule for one rank (MPICH shape).
void lower_bcast(const Op& op, std::uint32_t rank, std::uint32_t ranks,
                 std::int32_t tag, std::vector<Op>& out) {
  const std::uint32_t r = (rank + ranks - op.root) % ranks;  // relative
  std::uint32_t mask = 1;
  while (mask < ranks) {
    if (r & mask) {
      const std::uint32_t src = (r - mask + op.root) % ranks;
      out.push_back(Op::recv(src, tag));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (r + mask < ranks) {
      const std::uint32_t dst = (r + mask + op.root) % ranks;
      out.push_back(Op::send(dst, op.bytes, tag));
    }
    mask >>= 1;
  }
}

/// Ring allreduce: reduce-scatter then allgather, 2(p-1) rounds of
/// bytes/p. Buffered sends let the symmetric send/recv pairs proceed.
void lower_allreduce(const Op& op, std::uint32_t rank, std::uint32_t ranks,
                     std::int32_t tag, std::vector<Op>& out) {
  if (ranks == 1) return;
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, op.bytes / ranks);
  const std::uint32_t next = (rank + 1) % ranks;
  const std::uint32_t prev = (rank + ranks - 1) % ranks;
  for (std::uint32_t round = 0; round < 2 * (ranks - 1); ++round) {
    const auto t = static_cast<std::int32_t>(tag + round);
    out.push_back(Op::send(next, chunk, t));
    out.push_back(Op::recv(prev, t));
  }
}

/// Alltoallv the way MPICH implements it: post every send, then wait on
/// every receive. All p-1 flows toward each receiver enter the network at
/// once — the incast that overflows cheap switch buffers and produces the
/// paper's delayed collectives (Fig. 4). (A pairwise-exchange schedule
/// would be contention-free on a crossbar, and is exactly what the
/// upgraded-network ablation compares against.)
void lower_alltoallv(const Op& op, std::uint32_t rank, std::uint32_t ranks,
                     std::int32_t tag, std::vector<Op>& out) {
  support::check(op.counts.size() == ranks, "lower_collective",
                 "alltoallv counts vector has " +
                     std::to_string(op.counts.size()) + " entries for " +
                     std::to_string(ranks) +
                     " ranks (need one byte count per destination)");
  for (std::uint32_t step = 1; step < ranks; ++step) {
    const std::uint32_t dst = (rank + step) % ranks;
    const auto t = static_cast<std::int32_t>(tag + step);
    // Zero counts still send a header frame, matching the unconditional
    // receive (real alltoallv knows recvcounts; one frame is harmless).
    out.push_back(Op::send(dst, op.counts[dst], t));
  }
  for (std::uint32_t step = 1; step < ranks; ++step) {
    const std::uint32_t src = (rank + ranks - step) % ranks;
    const auto t = static_cast<std::int32_t>(tag + step);
    out.push_back(Op::recv(src, t));
  }
}

/// Linear gather: everyone sends its block to the root. (MPI libraries use
/// linear gathers: the root must receive every block anyway.)
void lower_gather(const Op& op, std::uint32_t rank, std::uint32_t ranks,
                  std::int32_t tag, std::vector<Op>& out) {
  if (rank == op.root) {
    for (std::uint32_t src = 0; src < ranks; ++src) {
      if (src == op.root) continue;
      out.push_back(Op::recv(src, static_cast<std::int32_t>(
                                      tag + static_cast<std::int32_t>(src))));
    }
  } else {
    out.push_back(Op::send(op.root, op.bytes,
                           static_cast<std::int32_t>(
                               tag + static_cast<std::int32_t>(rank))));
  }
}

/// Linear scatter: the root sends each rank its block.
void lower_scatter(const Op& op, std::uint32_t rank, std::uint32_t ranks,
                   std::int32_t tag, std::vector<Op>& out) {
  if (rank == op.root) {
    for (std::uint32_t dst = 0; dst < ranks; ++dst) {
      if (dst == op.root) continue;
      out.push_back(Op::send(dst, op.bytes,
                             static_cast<std::int32_t>(
                                 tag + static_cast<std::int32_t>(dst))));
    }
  } else {
    out.push_back(Op::recv(op.root,
                           static_cast<std::int32_t>(
                               tag + static_cast<std::int32_t>(rank))));
  }
}

/// Ring allgather: p-1 rounds, each rank forwarding the block it just
/// received while receiving the next.
void lower_allgather(const Op& op, std::uint32_t rank, std::uint32_t ranks,
                     std::int32_t tag, std::vector<Op>& out) {
  if (ranks == 1) return;
  const std::uint32_t next = (rank + 1) % ranks;
  const std::uint32_t prev = (rank + ranks - 1) % ranks;
  for (std::uint32_t round = 0; round + 1 < ranks; ++round) {
    const auto t = static_cast<std::int32_t>(tag + round);
    out.push_back(Op::send(next, op.bytes, t));
    out.push_back(Op::recv(prev, t));
  }
}

/// Binomial reduction: the mirror of the binomial broadcast — partial
/// sums flow up the tree toward the root.
void lower_reduce(const Op& op, std::uint32_t rank, std::uint32_t ranks,
                  std::int32_t tag, std::vector<Op>& out) {
  const std::uint32_t r = (rank + ranks - op.root) % ranks;  // relative
  // Receive from children (mirror of bcast's send loop), then send to the
  // parent (mirror of bcast's receive).
  std::uint32_t mask = 1;
  while (mask < ranks) {
    if (r & mask) break;
    mask <<= 1;
  }
  // Children are r + m for m < mask (they will send to us).
  for (std::uint32_t m = mask >> 1; m > 0; m >>= 1) {
    if (r + m < ranks) {
      const std::uint32_t child = (r + m + op.root) % ranks;
      out.push_back(Op::recv(child, static_cast<std::int32_t>(
                                        tag + static_cast<std::int32_t>(m))));
    }
  }
  if (r != 0) {
    const std::uint32_t parent = (r - mask + ranks + op.root) % ranks;
    out.push_back(Op::send(parent, op.bytes,
                           static_cast<std::int32_t>(
                               tag + static_cast<std::int32_t>(mask))));
  }
}

/// Dissemination barrier: log2(p) rounds of 0-byte exchange.
void lower_barrier(std::uint32_t rank, std::uint32_t ranks, std::int32_t tag,
                   std::vector<Op>& out) {
  std::uint32_t round = 0;
  for (std::uint32_t dist = 1; dist < ranks; dist <<= 1, ++round) {
    const std::uint32_t dst = (rank + dist) % ranks;
    const std::uint32_t src = (rank + ranks - dist) % ranks;
    const auto t = static_cast<std::int32_t>(tag + round);
    out.push_back(Op::send(dst, 0, t));
    out.push_back(Op::recv(src, t));
  }
}

}  // namespace

std::vector<Op> lower_collective(const Op& op, std::uint32_t rank,
                                 std::uint32_t ranks,
                                 std::int32_t tag_base) {
  std::vector<Op> out;
  out.push_back(marker(Op::Kind::kBeginGroup, op.label));
  switch (op.kind) {
    case Op::Kind::kBcast:
      lower_bcast(op, rank, ranks, tag_base, out);
      break;
    case Op::Kind::kAllreduce:
      lower_allreduce(op, rank, ranks, tag_base, out);
      break;
    case Op::Kind::kAlltoallv:
      lower_alltoallv(op, rank, ranks, tag_base, out);
      break;
    case Op::Kind::kBarrier:
      lower_barrier(rank, ranks, tag_base, out);
      break;
    case Op::Kind::kGather:
      lower_gather(op, rank, ranks, tag_base, out);
      break;
    case Op::Kind::kScatter:
      lower_scatter(op, rank, ranks, tag_base, out);
      break;
    case Op::Kind::kAllgather:
      lower_allgather(op, rank, ranks, tag_base, out);
      break;
    case Op::Kind::kReduce:
      lower_reduce(op, rank, ranks, tag_base, out);
      break;
    default:
      support::fail("lower_collective", "op is not a collective");
  }
  out.push_back(marker(Op::Kind::kEndGroup, op.label));
  return out;
}

}  // namespace mb::mpi
