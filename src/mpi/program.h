// MPI-like per-rank programs.
//
// Applications are expressed as a sequence of operations per rank —
// compute intervals, point-to-point messages and collectives. Collectives
// lower to point-to-point schedules (binomial broadcast, ring allreduce,
// pairwise-exchange alltoallv, dissemination barrier) exactly like a real
// MPI library over Ethernet would, so their congestion behaviour is the
// emergent property the paper studies, not an input parameter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mb::mpi {

struct Op {
  enum class Kind : std::uint8_t {
    kCompute,     ///< seconds of local work
    kSend,        ///< buffered (eager) send: completes after send overhead
    kRecv,        ///< blocks until the matching message arrives
    kBarrier,     ///< dissemination barrier
    kBcast,       ///< binomial tree broadcast
    kAllreduce,   ///< ring reduce-scatter + allgather
    kAlltoallv,   ///< MPICH-style: all sends posted, then all receives
    kGather,      ///< linear gather to the root
    kScatter,     ///< linear scatter from the root
    kAllgather,   ///< ring allgather
    kReduce,      ///< binomial reduction to the root
    kBeginGroup,  ///< trace marker: a lowered collective starts
    kEndGroup,    ///< trace marker: a lowered collective ends
  };

  Kind kind = Kind::kCompute;
  double seconds = 0.0;               ///< kCompute
  std::uint32_t peer = 0;             ///< kSend dst / kRecv src
  std::uint64_t bytes = 0;            ///< payload
  std::int32_t tag = 0;               ///< message matching
  std::uint32_t root = 0;             ///< kBcast
  std::vector<std::uint64_t> counts;  ///< kAlltoallv: bytes per destination
  std::string label;                  ///< trace label

  static Op compute(double seconds, std::string label = "compute");
  static Op send(std::uint32_t dst, std::uint64_t bytes, std::int32_t tag);
  static Op recv(std::uint32_t src, std::int32_t tag);
  static Op barrier();
  static Op bcast(std::uint32_t root, std::uint64_t bytes,
                  std::string label = "bcast");
  static Op allreduce(std::uint64_t bytes, std::string label = "allreduce");
  static Op alltoallv(std::vector<std::uint64_t> counts,
                      std::string label = "alltoallv");
  static Op gather(std::uint32_t root, std::uint64_t bytes_per_rank,
                   std::string label = "gather");
  static Op scatter(std::uint32_t root, std::uint64_t bytes_per_rank,
                    std::string label = "scatter");
  static Op allgather(std::uint64_t bytes_per_rank,
                      std::string label = "allgather");
  static Op reduce(std::uint32_t root, std::uint64_t bytes,
                   std::string label = "reduce");
};

/// True for the kinds lower_collective() accepts.
bool is_collective(Op::Kind kind);

/// A program is one op list per rank.
class Program {
 public:
  explicit Program(std::uint32_t ranks);

  std::uint32_t ranks() const {
    return static_cast<std::uint32_t>(per_rank_.size());
  }
  std::vector<Op>& rank(std::uint32_t r) { return per_rank_.at(r); }
  const std::vector<Op>& rank(std::uint32_t r) const {
    return per_rank_.at(r);
  }

  /// Appends `op` to rank `r`, validating what is checkable at
  /// construction time (alltoallv counts length vs rank count — the bug
  /// that otherwise only surfaces when lowering throws mid-simulation).
  /// rank(r).push_back remains the unchecked escape hatch the verifier
  /// tests use to build deliberately broken programs.
  void append(std::uint32_t r, const Op& op);

  /// Appends `op` to every rank (the common SPMD case), with the same
  /// construction-time validation as append().
  void append_all(const Op& op);

 private:
  std::vector<std::vector<Op>> per_rank_;
};

/// Lowers collectives to point-to-point ops (exposed for tests). The
/// returned list contains only kCompute/kSend/kRecv plus group markers.
/// `tag_base` must be unique per collective instance so rounds of
/// different collectives never cross-match.
std::vector<Op> lower_collective(const Op& op, std::uint32_t rank,
                                 std::uint32_t ranks, std::int32_t tag_base);

}  // namespace mb::mpi
