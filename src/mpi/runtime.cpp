#include "mpi/runtime.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "support/check.h"
#include "support/rng.h"
#include "verify/mpi_verify.h"

namespace mb::mpi {

std::string FailureReport::to_string() const {
  std::ostringstream os;
  os << "failure report:\n";
  os << "  dead ranks:";
  if (dead_ranks.empty()) {
    os << " none";
  } else {
    for (const std::uint32_t r : dead_ranks) os << ' ' << r;
  }
  os << '\n';
  for (const BlockedOp& b : blocked) {
    os << "  rank " << b.rank << " blocked on recv(peer=" << b.peer
       << ", tag=" << b.tag << ") since t=" << b.since_s << "s [op "
       << b.op_index << (b.timed_out ? ", timed out]" : "]") << '\n';
  }
  return os.str();
}

void Runtime::Mailbox::push(std::uint64_t k, std::uint64_t bytes) {
  if (keys_.empty() || (count_ + 1) * 2 > keys_.size()) grow();
  const std::size_t i = locate(k);
  if (keys_[i] == kEmpty) {
    keys_[i] = k;
    ++count_;
  }
  slots_[i].fifo.push_back(bytes);
}

bool Runtime::Mailbox::pop(std::uint64_t k, std::uint64_t& bytes) {
  if (keys_.empty()) return false;
  const std::size_t i = locate(k);
  if (keys_[i] == kEmpty) return false;
  Slot& slot = slots_[i];
  if (slot.head == slot.fifo.size()) return false;
  bytes = slot.fifo[slot.head++];
  if (slot.head == slot.fifo.size()) {
    slot.fifo.clear();  // keeps capacity for the next burst
    slot.head = 0;
  }
  return true;
}

std::size_t Runtime::Mailbox::locate(std::uint64_t k) const {
  const std::size_t mask = keys_.size() - 1;
  std::uint64_t h = k;  // splitmix64 steps its argument; keep k intact
  std::size_t i = support::splitmix64(h) & mask;
  while (keys_[i] != kEmpty && keys_[i] != k) i = (i + 1) & mask;
  return i;
}

void Runtime::Mailbox::grow() {
  std::vector<std::uint64_t> old_keys = std::move(keys_);
  std::vector<Slot> old_slots = std::move(slots_);
  const std::size_t n = old_keys.empty() ? 8 : old_keys.size() * 2;
  keys_.assign(n, kEmpty);
  slots_.assign(n, Slot{});
  for (std::size_t j = 0; j < old_keys.size(); ++j) {
    if (old_keys[j] == kEmpty) continue;
    const std::size_t i = locate(old_keys[j]);
    keys_[i] = old_keys[j];
    slots_[i] = std::move(old_slots[j]);
  }
}

Runtime::Runtime(sim::Scheduler& sched, net::Network& network,
                 std::vector<net::NodeId> rank_to_host, RuntimeConfig config,
                 trace::Trace* trace)
    : sched_(&sched),
      network_(network),
      rank_to_host_(std::move(rank_to_host)),
      config_(config),
      sink_(nullptr),
      parallel_(sched.parallel()) {
  if (trace != nullptr) {
    owned_sink_ = std::make_unique<trace::CollectorSink>(
        *trace, static_cast<std::uint32_t>(rank_to_host_.size()), parallel_);
    sink_ = owned_sink_.get();
  }
  init();
}

Runtime::Runtime(sim::EventQueue& queue, net::Network& network,
                 std::vector<net::NodeId> rank_to_host, RuntimeConfig config,
                 trace::Trace* trace)
    : owned_(std::make_unique<sim::QueueScheduler>(queue)),
      sched_(owned_.get()),
      network_(network),
      rank_to_host_(std::move(rank_to_host)),
      config_(config),
      sink_(nullptr),
      parallel_(false) {
  if (trace != nullptr) {
    owned_sink_ = std::make_unique<trace::CollectorSink>(
        *trace, static_cast<std::uint32_t>(rank_to_host_.size()),
        /*parallel=*/false);
    sink_ = owned_sink_.get();
  }
  init();
}

void Runtime::init() {
  support::check(!rank_to_host_.empty(), "Runtime", "need at least one rank");
  for (const net::NodeId host : rank_to_host_) {
    support::check(host < network_.nodes(), "Runtime", "unknown host");
    support::check(!network_.is_switch(host), "Runtime",
                   "ranks must live on hosts, not switches");
  }
  obs::Registry& registry = obs::metrics();
  const auto ranks = static_cast<std::uint32_t>(rank_to_host_.size());
  bytes_sent_.reserve(ranks);
  bytes_received_.reserve(ranks);
  for (std::uint32_t r = 0; r < ranks; ++r) {
    const obs::Labels labels{{"rank", std::to_string(r)}};
    bytes_sent_.push_back(&registry.counter("mpi.bytes_sent", labels));
    bytes_received_.push_back(
        &registry.counter("mpi.bytes_received", labels));
  }
  time_collective_ =
      &registry.counter("mpi.time_s", {{"kind", "collective"}});
  time_p2p_ = &registry.counter("mpi.time_s", {{"kind", "p2p"}});
  time_wait_ = &registry.counter("mpi.time_s", {{"kind", "wait"}});
  retries_ = &registry.counter("mpi.retries");
  recv_timeouts_ = &registry.counter("mpi.recv_timeouts");
}

void Runtime::record(std::uint32_t rank, double t0, double t1,
                     trace::EventKind kind, const std::string& label,
                     std::uint64_t bytes) {
  // wants() is the cheap pre-filter: an unsampled rank or filtered kind
  // skips the label copy entirely.
  if (sink_ == nullptr || !sink_->wants(rank, kind)) return;
  trace::Record r;
  r.rank = rank;
  r.t0 = t0;
  r.t1 = t1;
  r.kind = kind;
  r.label = label;
  r.bytes = bytes;
  sink_->emit(std::move(r));
}

void Runtime::set_trace_sink(trace::Sink* sink) { sink_ = sink; }

void Runtime::schedule_for(std::uint32_t rank, double delay_s,
                           sim::Scheduler::Callback cb) {
  sched_->schedule(rank_to_host_[rank], sched_->now() + delay_s,
                   std::move(cb));
}

double Runtime::run(const Program& program) {
  const RunOutcome outcome = run_outcome(program);
  if (!outcome.completed) {
    support::fail("Runtime::run",
                  "deadlock: some ranks never completed their program\n" +
                      outcome.failure.to_string());
  }
  return outcome.makespan_s;
}

RunOutcome Runtime::run_outcome(const Program& program) {
  const auto ranks = static_cast<std::uint32_t>(rank_to_host_.size());
  support::check(program.ranks() == ranks, "Runtime::run",
                 "program rank count must match the runtime");
  support::check(!parallel_ || config_.recv_timeout_s == 0.0, "Runtime::run",
                 "the failure detector requires the serial engine");

  if (config_.verify) {
    const verify::Report report = verify::verify_program(program);
    if (report.has_errors()) {
      support::fail("Runtime::run", "program failed static verification:\n" +
                                        verify::render_diagnostics(report));
    }
  }

  // Lower collectives. Tag bases are assigned per collective *occurrence*,
  // so the op sequences must contain collectives in the same order on
  // every rank (the usual MPI requirement).
  states_.assign(ranks, RankState{});
  metrics_.assign(ranks, RankMetrics{});
  failure_ = FailureReport{};
  for (std::uint32_t r = 0; r < ranks; ++r) {
    std::int32_t tag_base = next_tag_base_;
    auto& ops = states_[r].ops;
    for (const Op& op : program.rank(r)) {
      if (is_collective(op.kind)) {
        const auto lowered = lower_collective(op, r, ranks, tag_base);
        ops.insert(ops.end(), lowered.begin(), lowered.end());
        tag_base += 4096;
      } else if (op.kind == Op::Kind::kSend ||
                 op.kind == Op::Kind::kRecv) {
        support::check(op.tag < (1 << 16), "Runtime::run",
                       "user tags must stay below 1<<16");
        ops.push_back(op);
      } else {
        ops.push_back(op);
      }
    }
    if (r == ranks - 1) next_tag_base_ = tag_base;  // consumed instances
  }

  // Kick-off happens on the calling thread in rank order (the scheduler
  // routes each event to its home shard deterministically).
  for (std::uint32_t r = 0; r < ranks; ++r) advance(r);
  sched_->run_all();

  flush_observability(ranks);

  RunOutcome outcome;
  outcome.drained_s = sched_->now();
  std::uint32_t finished = 0;
  double makespan = 0.0;
  for (const auto& s : states_) {
    if (s.done) ++finished;
    makespan = std::max(makespan, s.finish_time);
  }
  outcome.completed = finished == ranks;
  outcome.makespan_s = makespan;
  if (!outcome.completed) {
    // Ranks still blocked at drain time (and not already reported by the
    // failure detector) round out the report.
    for (std::uint32_t r = 0; r < ranks; ++r) {
      const RankState& s = states_[r];
      if (s.crashed || s.timed_out || !s.waiting) continue;
      BlockedOp b;
      b.rank = r;
      b.peer = s.waiting->first;
      b.tag = s.waiting->second;
      b.op_index = s.wait_op;
      b.since_s = s.wait_start;
      failure_.blocked.push_back(b);
    }
    outcome.failure = failure_;
  }
  return outcome;
}

void Runtime::flush_observability(std::uint32_t ranks) {
  for (std::uint32_t r = 0; r < ranks; ++r) {
    const RankMetrics& m = metrics_[r];
    if (m.bytes_sent != 0.0) bytes_sent_[r]->add(m.bytes_sent);
    if (m.bytes_received != 0.0) bytes_received_[r]->add(m.bytes_received);
    if (m.time_collective != 0.0) time_collective_->add(m.time_collective);
    if (m.time_p2p != 0.0) time_p2p_->add(m.time_p2p);
    if (m.time_wait != 0.0) time_wait_->add(m.time_wait);
    if (m.retries != 0.0) retries_->add(m.retries);
    if (m.recv_timeouts != 0.0) recv_timeouts_->add(m.recv_timeouts);
  }
  // The default CollectorSink drains its per-rank buffers rank-major
  // here; external sinks get their post-run flush at the same boundary.
  if (sink_ != nullptr) sink_->flush();
}

void Runtime::crash_rank(std::uint32_t rank) {
  support::check(rank < states_.size(), "Runtime::crash_rank",
                 "unknown rank (inject crashes during a run)");
  RankState& s = states_[rank];
  if (s.crashed) return;
  s.crashed = true;
  s.waiting.reset();
  failure_.dead_ranks.push_back(rank);
}

void Runtime::set_rank_slowdown(std::uint32_t rank, double factor) {
  support::check(rank < states_.size(), "Runtime::set_rank_slowdown",
                 "unknown rank (inject slowdowns during a run)");
  support::check(factor >= 1.0 && std::isfinite(factor),
                 "Runtime::set_rank_slowdown", "factor must be >= 1");
  states_[rank].slow_factor = factor;
}

void Runtime::deliver(std::uint32_t dst_rank, std::uint32_t src_rank,
                      std::int32_t tag, std::uint64_t bytes) {
  RankState& s = states_[dst_rank];
  if (s.crashed || s.timed_out) return;  // dead ranks receive nothing
  const auto key = std::make_pair(src_rank, tag);
  s.mailbox.push(Mailbox::key(src_rank, tag), bytes);
  if (s.waiting && *s.waiting == key) {
    s.waiting.reset();
    metrics_[dst_rank].time_wait += sched_->now() - s.wait_start;
    advance(dst_rank);
  }
}

void Runtime::post_send(std::uint32_t src_rank, std::uint32_t dst_rank,
                        std::int32_t tag, std::uint64_t bytes,
                        std::uint32_t attempt) {
  net::Network::Callback on_failed;
  if (attempt < config_.max_send_retries) {
    on_failed = [this, src_rank, dst_rank, tag, bytes, attempt] {
      if (states_[src_rank].crashed) return;
      metrics_[src_rank].retries += 1.0;
      const double delay =
          config_.send_retry_base_s *
          std::pow(config_.send_retry_backoff, static_cast<double>(attempt));
      schedule_for(src_rank, delay,
                   [this, src_rank, dst_rank, tag, bytes, attempt] {
                     post_send(src_rank, dst_rank, tag, bytes,
                               attempt + 1);
                   });
    };
  }
  network_.send(rank_to_host_[src_rank], rank_to_host_[dst_rank], bytes,
                [this, dst_rank, src_rank, tag, bytes] {
                  deliver(dst_rank, src_rank, tag, bytes);
                },
                std::move(on_failed));
}

void Runtime::on_recv_timeout(std::uint32_t rank, std::uint64_t epoch) {
  RankState& s = states_[rank];
  if (s.crashed || s.timed_out) return;
  if (!s.waiting || s.wait_epoch != epoch) return;  // stale timer
  s.timed_out = true;
  const double now = sched_->now();
  failure_.detected_s = std::max(failure_.detected_s, now);
  metrics_[rank].recv_timeouts += 1.0;
  metrics_[rank].time_wait += now - s.wait_start;
  record(rank, s.wait_start, now, trace::EventKind::kWait,
         "recv_timeout", 0);
  BlockedOp b;
  b.rank = rank;
  b.peer = s.waiting->first;
  b.tag = s.waiting->second;
  b.op_index = s.wait_op;
  b.since_s = s.wait_start;
  b.timed_out = true;
  failure_.blocked.push_back(b);
  s.waiting.reset();
}

void Runtime::advance(std::uint32_t rank) {
  RankState& s = states_[rank];
  if (s.crashed || s.timed_out) return;  // fail-stop: no further progress
  while (s.pc < s.ops.size()) {
    const Op& op = s.ops[s.pc];
    const double now = sched_->now();
    switch (op.kind) {
      case Op::Kind::kCompute: {
        const double seconds = op.seconds * s.slow_factor;
        record(rank, now, now + seconds, trace::EventKind::kCompute,
               op.label, 0);
        ++s.pc;
        schedule_for(rank, seconds, [this, rank] { advance(rank); });
        return;
      }
      case Op::Kind::kSend: {
        const std::uint32_t dst = op.peer;
        const std::int32_t tag = op.tag;
        const net::NodeId src_host = rank_to_host_[rank];
        const net::NodeId dst_host = rank_to_host_[dst];
        metrics_[rank].bytes_sent += static_cast<double>(op.bytes);
        if (s.group_label.empty()) {
          metrics_[rank].time_p2p += config_.send_overhead_s;
          record(rank, now, now + config_.send_overhead_s,
                 trace::EventKind::kSend, "send", op.bytes);
        }
        const std::uint64_t bytes = op.bytes;
        if (src_host == dst_host) {
          const double t = config_.intra_latency_s +
                           static_cast<double>(op.bytes) /
                               config_.intra_bandwidth_bytes_per_s;
          schedule_for(rank, config_.send_overhead_s + t,
                       [this, dst, rank, tag, bytes] {
                         deliver(dst, rank, tag, bytes);
                       });
        } else {
          post_send(rank, dst, tag, bytes, 0);
        }
        ++s.pc;
        schedule_for(rank, config_.send_overhead_s,
                     [this, rank] { advance(rank); });
        return;
      }
      case Op::Kind::kRecv: {
        std::uint64_t bytes = 0;
        if (!s.mailbox.pop(Mailbox::key(op.peer, op.tag), bytes)) {
          s.waiting = std::make_pair(op.peer, op.tag);
          s.wait_start = now;
          s.wait_op = s.pc;
          if (config_.recv_timeout_s > 0.0) {
            const std::uint64_t epoch = ++s.wait_epoch;
            schedule_for(rank, config_.recv_timeout_s,
                         [this, rank, epoch] {
                           on_recv_timeout(rank, epoch);
                         });
          }
          return;
        }
        metrics_[rank].bytes_received += static_cast<double>(bytes);
        if (s.group_label.empty()) {
          metrics_[rank].time_p2p += config_.recv_overhead_s;
          record(rank, now, now + config_.recv_overhead_s,
                 trace::EventKind::kRecv, "recv", bytes);
        }
        ++s.pc;
        schedule_for(rank, config_.recv_overhead_s,
                     [this, rank] { advance(rank); });
        return;
      }
      case Op::Kind::kBeginGroup: {
        s.group_start = now;
        s.group_label = op.label;
        ++s.pc;
        break;
      }
      case Op::Kind::kEndGroup: {
        metrics_[rank].time_collective += now - s.group_start;
        record(rank, s.group_start, now, trace::EventKind::kCollective,
               op.label, 0);
        s.group_label.clear();
        ++s.pc;
        break;
      }
      default:
        support::fail("Runtime::advance",
                      "unlowered collective reached execution");
    }
  }
  s.finish_time = sched_->now();
  s.done = true;
}

}  // namespace mb::mpi
