#include "mpi/runtime.h"

#include <algorithm>

#include "support/check.h"
#include "verify/mpi_verify.h"

namespace mb::mpi {

Runtime::Runtime(sim::EventQueue& queue, net::Network& network,
                 std::vector<net::NodeId> rank_to_host, RuntimeConfig config,
                 trace::Trace* trace)
    : queue_(queue),
      network_(network),
      rank_to_host_(std::move(rank_to_host)),
      config_(config),
      trace_(trace) {
  support::check(!rank_to_host_.empty(), "Runtime", "need at least one rank");
  for (const net::NodeId host : rank_to_host_) {
    support::check(host < network_.nodes(), "Runtime", "unknown host");
    support::check(!network_.is_switch(host), "Runtime",
                   "ranks must live on hosts, not switches");
  }
  obs::Registry& registry = obs::metrics();
  const auto ranks = static_cast<std::uint32_t>(rank_to_host_.size());
  bytes_sent_.reserve(ranks);
  bytes_received_.reserve(ranks);
  for (std::uint32_t r = 0; r < ranks; ++r) {
    const obs::Labels labels{{"rank", std::to_string(r)}};
    bytes_sent_.push_back(&registry.counter("mpi.bytes_sent", labels));
    bytes_received_.push_back(
        &registry.counter("mpi.bytes_received", labels));
  }
  time_collective_ =
      &registry.counter("mpi.time_s", {{"kind", "collective"}});
  time_p2p_ = &registry.counter("mpi.time_s", {{"kind", "p2p"}});
  time_wait_ = &registry.counter("mpi.time_s", {{"kind", "wait"}});
}

void Runtime::record(std::uint32_t rank, double t0, double t1,
                     trace::EventKind kind, const std::string& label,
                     std::uint64_t bytes) {
  if (trace_ == nullptr) return;
  trace::Record r;
  r.rank = rank;
  r.t0 = t0;
  r.t1 = t1;
  r.kind = kind;
  r.label = label;
  r.bytes = bytes;
  trace_->add(r);
}

double Runtime::run(const Program& program) {
  const auto ranks = static_cast<std::uint32_t>(rank_to_host_.size());
  support::check(program.ranks() == ranks, "Runtime::run",
                 "program rank count must match the runtime");

  if (config_.verify) {
    const verify::Report report = verify::verify_program(program);
    if (report.has_errors()) {
      support::fail("Runtime::run", "program failed static verification:\n" +
                                        verify::render_diagnostics(report));
    }
  }

  // Lower collectives. Tag bases are assigned per collective *occurrence*,
  // so the op sequences must contain collectives in the same order on
  // every rank (the usual MPI requirement).
  states_.assign(ranks, RankState{});
  finished_ = 0;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    std::int32_t tag_base = next_tag_base_;
    auto& ops = states_[r].ops;
    for (const Op& op : program.rank(r)) {
      if (is_collective(op.kind)) {
        const auto lowered = lower_collective(op, r, ranks, tag_base);
        ops.insert(ops.end(), lowered.begin(), lowered.end());
        tag_base += 4096;
      } else if (op.kind == Op::Kind::kSend ||
                 op.kind == Op::Kind::kRecv) {
        support::check(op.tag < (1 << 16), "Runtime::run",
                       "user tags must stay below 1<<16");
        ops.push_back(op);
      } else {
        ops.push_back(op);
      }
    }
    if (r == ranks - 1) next_tag_base_ = tag_base;  // consumed instances
  }

  for (std::uint32_t r = 0; r < ranks; ++r) advance(r);
  queue_.run();

  support::check(finished_ == ranks, "Runtime::run",
                 "deadlock: some ranks never completed their program");
  double makespan = 0.0;
  for (const auto& s : states_) makespan = std::max(makespan, s.finish_time);
  return makespan;
}

void Runtime::deliver(std::uint32_t dst_rank, std::uint32_t src_rank,
                      std::int32_t tag, std::uint64_t bytes) {
  RankState& s = states_[dst_rank];
  const auto key = std::make_pair(src_rank, tag);
  s.mailbox[key].push_back(bytes);
  if (s.waiting && *s.waiting == key) {
    s.waiting.reset();
    time_wait_->add(queue_.now() - s.wait_start);
    advance(dst_rank);
  }
}

void Runtime::advance(std::uint32_t rank) {
  RankState& s = states_[rank];
  while (s.pc < s.ops.size()) {
    const Op& op = s.ops[s.pc];
    const double now = queue_.now();
    switch (op.kind) {
      case Op::Kind::kCompute: {
        record(rank, now, now + op.seconds, trace::EventKind::kCompute,
               op.label, 0);
        ++s.pc;
        queue_.schedule_in(op.seconds, [this, rank] { advance(rank); });
        return;
      }
      case Op::Kind::kSend: {
        const std::uint32_t dst = op.peer;
        const std::int32_t tag = op.tag;
        const net::NodeId src_host = rank_to_host_[rank];
        const net::NodeId dst_host = rank_to_host_[dst];
        bytes_sent_[rank]->add(static_cast<double>(op.bytes));
        if (s.group_label.empty()) {
          time_p2p_->add(config_.send_overhead_s);
          record(rank, now, now + config_.send_overhead_s,
                 trace::EventKind::kSend, "send", op.bytes);
        }
        const std::uint64_t bytes = op.bytes;
        if (src_host == dst_host) {
          const double t = config_.intra_latency_s +
                           static_cast<double>(op.bytes) /
                               config_.intra_bandwidth_bytes_per_s;
          queue_.schedule_in(config_.send_overhead_s + t,
                             [this, dst, rank, tag, bytes] {
                               deliver(dst, rank, tag, bytes);
                             });
        } else {
          network_.send(src_host, dst_host, op.bytes,
                        [this, dst, rank, tag, bytes] {
                          deliver(dst, rank, tag, bytes);
                        });
        }
        ++s.pc;
        queue_.schedule_in(config_.send_overhead_s,
                           [this, rank] { advance(rank); });
        return;
      }
      case Op::Kind::kRecv: {
        const auto key = std::make_pair(op.peer, op.tag);
        auto it = s.mailbox.find(key);
        if (it == s.mailbox.end() || it->second.empty()) {
          s.waiting = key;
          s.wait_start = now;
          return;
        }
        const std::uint64_t bytes = it->second.front();
        it->second.erase(it->second.begin());
        if (it->second.empty()) s.mailbox.erase(it);
        bytes_received_[rank]->add(static_cast<double>(bytes));
        if (s.group_label.empty()) {
          time_p2p_->add(config_.recv_overhead_s);
          record(rank, now, now + config_.recv_overhead_s,
                 trace::EventKind::kRecv, "recv", bytes);
        }
        ++s.pc;
        queue_.schedule_in(config_.recv_overhead_s,
                           [this, rank] { advance(rank); });
        return;
      }
      case Op::Kind::kBeginGroup: {
        s.group_start = now;
        s.group_label = op.label;
        ++s.pc;
        break;
      }
      case Op::Kind::kEndGroup: {
        time_collective_->add(now - s.group_start);
        record(rank, s.group_start, now, trace::EventKind::kCollective,
               op.label, 0);
        s.group_label.clear();
        ++s.pc;
        break;
      }
      default:
        support::fail("Runtime::advance",
                      "unlowered collective reached execution");
    }
  }
  s.finish_time = queue_.now();
  ++finished_;
}

}  // namespace mb::mpi
