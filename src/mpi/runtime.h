// MPI-like runtime executing rank programs over the network simulator.
//
// Each rank is a little state machine advancing through its op list:
// compute schedules a wakeup, buffered sends hand the payload to the
// (simulated) NIC and complete after the software send overhead,
// receives block until the matching (source, tag) message arrives.
// Collectives are lowered to point-to-point schedules on the fly
// (see mpi/program.h) and traced as single intervals.
//
// Failure semantics (fault-injection support): ranks can be crashed
// mid-run (fail-stop) or slowed down; a configurable receive timeout
// turns a lost peer into a structured FailureReport — naming the dead
// rank and every blocked op — instead of a hung event loop, and sends
// can opt into retry-with-backoff when the network abandons a message.
// Fault injection requires the serial engine (see below).
//
// Engine notes: the runtime schedules through sim::Scheduler, homing
// every event on the host of the rank whose state it touches, so it runs
// unchanged on the classic serial queue and on the sharded
// conservative-lookahead engine. Under a parallel scheduler, per-rank
// state is only ever touched by the owning shard's worker; cross-rank
// effects travel through Network::send. Metric updates accumulate in
// per-rank buckets flushed to the obs registry rank-major after the run
// (the registry is single-threaded by design), and trace records go
// through a trace::Sink whose contract matches shard ownership: emits
// may race across ranks but never within one, and the default
// CollectorSink buffers per rank and flushes rank-major — deterministic
// for any worker count. set_trace_sink() swaps in a bounded
// StreamingSink for runs too large to trace in full.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mpi/program.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "sim/scheduler.h"
#include "trace/sink.h"
#include "trace/trace.h"

namespace mb::mpi {

struct RuntimeConfig {
  double send_overhead_s = 25e-6;  ///< software cost to post a send
  double recv_overhead_s = 20e-6;  ///< software cost to complete a receive
  /// Intra-node transfers (ranks on the same host) bypass the network:
  double intra_latency_s = 3e-6;
  double intra_bandwidth_bytes_per_s = 1.2e9;
  /// Statically verify the program before executing it (verify::
  /// verify_program). Error findings abort the run with the rendered
  /// diagnostics — naming the rank, op and wait-for cycle — instead of
  /// the event loop draining into an opaque "deadlock" failure. Opt out
  /// for programs known-clean when re-running in a hot loop.
  bool verify = true;
  /// Failure detector: a receive blocked longer than this is declared
  /// dead (the rank stops, the blocked op lands in the FailureReport).
  /// 0 disables detection — a lost peer then only surfaces when the
  /// event loop drains. Set it above the longest legitimate wait.
  /// Must be 0 under a parallel scheduler (serial engine only).
  double recv_timeout_s = 0.0;
  /// Opt-in send retry: when the network abandons a message (link down
  /// past the retransmit budget), re-post it up to this many times with
  /// exponential backoff. 0 = a failed send is simply lost.
  std::uint32_t max_send_retries = 0;
  double send_retry_base_s = 0.05;
  double send_retry_backoff = 2.0;
};

/// One receive that never completed in a failed run.
struct BlockedOp {
  std::uint32_t rank = 0;
  std::uint32_t peer = 0;   ///< the (dead or silent) rank waited on
  std::int32_t tag = 0;
  std::size_t op_index = 0; ///< index into the rank's lowered op list
  double since_s = 0.0;     ///< when the rank blocked
  bool timed_out = false;   ///< detected by the failure detector
};

/// Structured account of why a run did not complete: which ranks were
/// crashed (fail-stop injection) and which receives were left blocked —
/// on the dead ranks directly or transitively (peer-death propagation).
struct FailureReport {
  std::vector<std::uint32_t> dead_ranks;
  std::vector<BlockedOp> blocked;
  /// Simulation time the failure detector last fired (0 when detection
  /// was disabled and the failure only surfaced at event-loop drain).
  double detected_s = 0.0;

  bool failed() const { return !dead_ranks.empty() || !blocked.empty(); }
  std::string to_string() const;
};

/// Non-throwing run result: completion flag, makespan and — when ranks
/// were lost — the failure report. `drained_s` is the simulation time at
/// which the event loop ran dry (failure-detection latency included);
/// checkpoint/restart models use it as the moment recovery can begin.
struct RunOutcome {
  bool completed = false;
  double makespan_s = 0.0;
  double drained_s = 0.0;
  FailureReport failure;
};

class Runtime {
 public:
  /// `rank_to_host[r]` is the network vertex hosting rank r (several
  /// ranks may share one host — the dual-core Tibidabo nodes).
  /// `trace` may be null.
  Runtime(sim::Scheduler& sched, net::Network& network,
          std::vector<net::NodeId> rank_to_host, RuntimeConfig config,
          trace::Trace* trace);

  /// Convenience overload for the classic serial engine: wraps `queue`
  /// in an internally owned QueueScheduler.
  Runtime(sim::EventQueue& queue, net::Network& network,
          std::vector<net::NodeId> rank_to_host, RuntimeConfig config,
          trace::Trace* trace);

  /// Runs `program` to completion; returns the makespan (seconds from
  /// start to the last rank finishing). Throws on deadlock.
  double run(const Program& program);

  /// Like run(), but a non-completing program yields a structured
  /// RunOutcome instead of throwing (static verification errors still
  /// throw — a malformed program is a bug, not a simulated failure).
  RunOutcome run_outcome(const Program& program);

  /// Fault injection: fail-stop `rank` at the current simulation time.
  /// The rank executes nothing further; messages to it are dropped.
  /// Only valid while a run is in flight (schedule it on the queue).
  void crash_rank(std::uint32_t rank);

  /// Fault injection: multiplies the duration of `rank`'s subsequent
  /// compute ops by `factor` (>= 1 slows, 1 restores). Models the Fig. 5
  /// two-state degraded mode at cluster scope. Only valid while a run is
  /// in flight.
  void set_rank_slowdown(std::uint32_t rank, double factor);

  /// Replaces the record destination (default: a CollectorSink feeding
  /// the constructor's Trace). The sink must outlive the runtime and
  /// honour the Sink concurrency contract. Call before run(); the
  /// caller finalizes/drains the sink itself afterwards.
  void set_trace_sink(trace::Sink* sink);

 private:
  /// Open-addressed (source, tag) -> FIFO-of-sizes map, replacing the
  /// std::map mailbox that dominated the deliver/recv path at scale.
  /// Keys are never erased: a drained FIFO marks absence, so matching is
  /// a probe plus a head-index bump and the per-key vectors recycle
  /// their capacity across the many messages of one (src, tag) stream.
  /// Keys live in their own dense array so a probe touches 8-byte
  /// entries, not the fat payload slots — the table stays cache-resident
  /// even at thousands of keys per rank.
  class Mailbox {
   public:
    static std::uint64_t key(std::uint32_t src, std::int32_t tag) {
      return (static_cast<std::uint64_t>(src) << 32) |
             static_cast<std::uint32_t>(tag);
    }
    void push(std::uint64_t k, std::uint64_t bytes);
    /// False when no message matches; otherwise pops FIFO-first.
    bool pop(std::uint64_t k, std::uint64_t& bytes);

   private:
    /// (src=~0, tag=-1) is not a reachable key: ranks are dense indices.
    static constexpr std::uint64_t kEmpty = ~0ull;
    struct Slot {
      std::uint32_t head = 0;
      std::vector<std::uint64_t> fifo;
    };
    std::size_t locate(std::uint64_t k) const;
    void grow();
    std::vector<std::uint64_t> keys_;  ///< probe array, kEmpty = free
    std::vector<Slot> slots_;          ///< payload, parallel to keys_
    std::size_t count_ = 0;  ///< used slots (never shrinks)
  };

  /// Metric deltas accumulated on the owning shard, flushed rank-major
  /// to the single-threaded obs registry after the run.
  struct RankMetrics {
    double bytes_sent = 0.0;
    double bytes_received = 0.0;
    double time_collective = 0.0;
    double time_p2p = 0.0;
    double time_wait = 0.0;
    double retries = 0.0;
    double recv_timeouts = 0.0;
  };

  struct RankState {
    std::vector<Op> ops;  ///< fully lowered op list
    std::size_t pc = 0;
    bool crashed = false;
    bool timed_out = false;
    bool done = false;
    double slow_factor = 1.0;
    double finish_time = 0.0;
    double group_start = 0.0;
    double wait_start = 0.0;  ///< when the rank last blocked on a recv
    std::size_t wait_op = 0;  ///< op index of the blocking receive
    std::uint64_t wait_epoch = 0;  ///< guards stale timeout events
    std::string group_label;
    // Arrived-but-unmatched messages (payload sizes, FIFO per key) and
    // the receive each op waits for. Receives take the size from the
    // matched message — recv ops carry no byte count of their own.
    Mailbox mailbox;
    std::optional<std::pair<std::uint32_t, std::int32_t>> waiting;
  };

  void advance(std::uint32_t rank);
  void deliver(std::uint32_t dst_rank, std::uint32_t src_rank,
               std::int32_t tag, std::uint64_t bytes);
  void post_send(std::uint32_t src_rank, std::uint32_t dst_rank,
                 std::int32_t tag, std::uint64_t bytes,
                 std::uint32_t attempt);
  void on_recv_timeout(std::uint32_t rank, std::uint64_t epoch);
  void record(std::uint32_t rank, double t0, double t1,
              trace::EventKind kind, const std::string& label,
              std::uint64_t bytes);
  void schedule_for(std::uint32_t rank, double delay_s,
                    sim::Scheduler::Callback cb);
  void flush_observability(std::uint32_t ranks);
  void init();

  std::unique_ptr<sim::QueueScheduler> owned_;  ///< compat-ctor engine
  sim::Scheduler* sched_;
  net::Network& network_;
  std::vector<net::NodeId> rank_to_host_;
  RuntimeConfig config_;
  std::unique_ptr<trace::CollectorSink> owned_sink_;  ///< default sink
  trace::Sink* sink_;  ///< where record() delivers; null = no tracing
  bool parallel_;  ///< sched_->parallel(): sink emits may race per rank
  // Registry instrumentation (handles resolved once in the constructor;
  // updates deferred to the post-run flush). Per-rank traffic plus the
  // collective / p2p-overhead / blocked-receive time split the paper's
  // Fig. 4 analysis needs. Wait time overlaps collective time when a
  // lowered collective blocks internally — they are different lenses,
  // not a partition.
  std::vector<obs::Counter*> bytes_sent_;
  std::vector<obs::Counter*> bytes_received_;
  obs::Counter* time_collective_;
  obs::Counter* time_p2p_;
  obs::Counter* time_wait_;
  obs::Counter* retries_;
  obs::Counter* recv_timeouts_;
  std::vector<RankState> states_;
  std::vector<RankMetrics> metrics_;
  FailureReport failure_;
  std::int32_t next_tag_base_ = 1 << 16;  // user tags stay below
};

}  // namespace mb::mpi
