// MPI-like runtime executing rank programs over the network simulator.
//
// Each rank is a little state machine advancing through its op list:
// compute schedules a wakeup, buffered sends hand the payload to the
// (simulated) NIC and complete after the software send overhead,
// receives block until the matching (source, tag) message arrives.
// Collectives are lowered to point-to-point schedules on the fly
// (see mpi/program.h) and traced as single intervals.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "mpi/program.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "trace/trace.h"

namespace mb::mpi {

struct RuntimeConfig {
  double send_overhead_s = 25e-6;  ///< software cost to post a send
  double recv_overhead_s = 20e-6;  ///< software cost to complete a receive
  /// Intra-node transfers (ranks on the same host) bypass the network:
  double intra_latency_s = 3e-6;
  double intra_bandwidth_bytes_per_s = 1.2e9;
  /// Statically verify the program before executing it (verify::
  /// verify_program). Error findings abort the run with the rendered
  /// diagnostics — naming the rank, op and wait-for cycle — instead of
  /// the event loop draining into an opaque "deadlock" failure. Opt out
  /// for programs known-clean when re-running in a hot loop.
  bool verify = true;
};

class Runtime {
 public:
  /// `rank_to_host[r]` is the network vertex hosting rank r (several
  /// ranks may share one host — the dual-core Tibidabo nodes).
  /// `trace` may be null.
  Runtime(sim::EventQueue& queue, net::Network& network,
          std::vector<net::NodeId> rank_to_host, RuntimeConfig config,
          trace::Trace* trace);

  /// Runs `program` to completion; returns the makespan (seconds from
  /// start to the last rank finishing). Throws on deadlock.
  double run(const Program& program);

 private:
  struct RankState {
    std::vector<Op> ops;  ///< fully lowered op list
    std::size_t pc = 0;
    bool blocked = false;
    double finish_time = 0.0;
    double group_start = 0.0;
    double wait_start = 0.0;  ///< when the rank last blocked on a recv
    std::string group_label;
    // Arrived-but-unmatched messages (payload sizes, FIFO per key) and
    // the receive each op waits for. Receives take the size from the
    // matched message — recv ops carry no byte count of their own.
    std::map<std::pair<std::uint32_t, std::int32_t>,
             std::vector<std::uint64_t>>
        mailbox;
    std::optional<std::pair<std::uint32_t, std::int32_t>> waiting;
  };

  void advance(std::uint32_t rank);
  void deliver(std::uint32_t dst_rank, std::uint32_t src_rank,
               std::int32_t tag, std::uint64_t bytes);
  void record(std::uint32_t rank, double t0, double t1,
              trace::EventKind kind, const std::string& label,
              std::uint64_t bytes);

  sim::EventQueue& queue_;
  net::Network& network_;
  std::vector<net::NodeId> rank_to_host_;
  RuntimeConfig config_;
  trace::Trace* trace_;
  // Registry instrumentation (handles resolved once in the constructor;
  // hot-path updates are plain adds). Per-rank traffic plus the
  // collective / p2p-overhead / blocked-receive time split the paper's
  // Fig. 4 analysis needs. Wait time overlaps collective time when a
  // lowered collective blocks internally — they are different lenses,
  // not a partition.
  std::vector<obs::Counter*> bytes_sent_;
  std::vector<obs::Counter*> bytes_received_;
  obs::Counter* time_collective_;
  obs::Counter* time_p2p_;
  obs::Counter* time_wait_;
  std::vector<RankState> states_;
  std::int32_t next_tag_base_ = 1 << 16;  // user tags stay below
  std::uint32_t finished_ = 0;
};

}  // namespace mb::mpi
