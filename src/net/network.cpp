#include "net/network.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

#include "support/check.h"

namespace mb::net {

namespace {
double backoff_delay(const LinkSpec& spec, std::uint32_t attempt) {
  const double raw = spec.retransmit_timeout_s *
                     std::pow(spec.retransmit_backoff,
                              static_cast<double>(attempt));
  return std::min(raw, spec.retransmit_timeout_max_s);
}
}  // namespace

Network::Network(sim::Scheduler& sched, std::uint32_t mtu_bytes)
    : sched_(&sched), mtu_(mtu_bytes) {
  support::check(mtu_bytes >= 64, "Network", "MTU must be at least 64 bytes");
}

Network::Network(sim::EventQueue& queue, std::uint32_t mtu_bytes)
    : owned_(std::make_unique<sim::QueueScheduler>(queue)),
      sched_(owned_.get()),
      mtu_(mtu_bytes) {
  support::check(mtu_bytes >= 64, "Network", "MTU must be at least 64 bytes");
}

NodeId Network::add_node(std::string name, bool is_switch) {
  support::check(!routed_, "Network::add_node",
                 "graph is frozen after finalize_routes");
  names_.push_back(std::move(name));
  is_switch_.push_back(is_switch);
  adjacency_.emplace_back();
  return static_cast<NodeId>(names_.size() - 1);
}

void Network::add_link(NodeId a, NodeId b, LinkSpec spec) {
  support::check(!routed_, "Network::add_link",
                 "graph is frozen after finalize_routes");
  support::check(a < names_.size() && b < names_.size(), "Network::add_link",
                 "unknown node");
  support::check(a != b, "Network::add_link", "no self links");
  support::check(spec.bandwidth_bytes_per_s > 0.0, "Network::add_link",
                 "bandwidth must be positive");
  for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    adjacency_[from].push_back(static_cast<std::uint32_t>(from_.size()));
    from_.push_back(from);
    to_.push_back(to);
    busy_until_.push_back(0.0);
    bandwidth_.push_back(spec.bandwidth_bytes_per_s);
    latency_.push_back(spec.latency_s);
    buffer_limit_.push_back(
        std::max<double>(spec.buffer_bytes, 4.0 * mtu_));
    loss_prob_.push_back(0.0);
    up_.push_back(1);
    spec_.push_back(spec);
    loss_rng_.emplace_back();
    stats_.emplace_back();
  }
}

void Network::finalize_routes() {
  support::check(!routed_, "Network::finalize_routes", "already routed");
  const std::size_t n = names_.size();
  // Routing rows only where there is a choice: one BFS per degree>1 node,
  // recording the first link out of it on the shortest path to every
  // destination (the BFS-root-child trick). O(rows * n) space instead of
  // the old O(n^2) next-hop matrix — the difference between megabytes and
  // gigabytes at 16k simulated ranks.
  row_of_.assign(n, kNoHop);
  rows_.clear();
  std::vector<std::uint32_t> via(n, kNoHop);
  std::vector<bool> seen(n, false);
  for (NodeId u = 0; u < n; ++u) {
    if (adjacency_[u].size() <= 1) continue;
    row_of_[u] = static_cast<std::uint32_t>(rows_.size());
    via.assign(n, kNoHop);
    seen.assign(n, false);
    seen[u] = true;
    std::deque<NodeId> frontier{u};
    while (!frontier.empty()) {
      const NodeId cur = frontier.front();
      frontier.pop_front();
      for (const std::uint32_t li : adjacency_[cur]) {
        const NodeId nb = to_[li];
        if (seen[nb]) continue;
        seen[nb] = true;
        via[nb] = cur == u ? li : via[cur];
        frontier.push_back(nb);
      }
    }
    rows_.push_back(via);
  }
  routed_ = true;
}

std::size_t Network::link_index(NodeId a, NodeId b) const {
  for (const std::uint32_t li : adjacency_[a])
    if (to_[li] == b) return li;
  support::fail("Network::link_index", "no such link");
}

std::uint32_t Network::hop_link(NodeId cur, NodeId dst) const {
  if (row_of_[cur] != kNoHop) return rows_[row_of_[cur]][dst];
  const auto& adj = adjacency_[cur];
  return adj.size() == 1 ? adj[0] : kNoHop;
}

std::uint32_t Network::route_first_link(NodeId src, NodeId dst,
                                        const char* where) const {
  const std::uint32_t first = hop_link(src, dst);
  std::uint32_t li = first;
  std::size_t hops = 0;
  NodeId cur = src;
  while (cur != dst) {
    support::check(li != kNoHop && hops < names_.size(), where, "no route");
    cur = to_[li];
    ++hops;
    if (cur != dst) li = hop_link(cur, dst);
  }
  return first;
}

const LinkStats& Network::link_stats(NodeId a, NodeId b) const {
  return stats_[link_index(a, b)];
}

void Network::degrade_link(NodeId a, NodeId b, double bandwidth_factor,
                           double extra_latency_s) {
  support::check(bandwidth_factor > 0.0 && bandwidth_factor <= 1.0,
                 "Network::degrade_link",
                 "bandwidth factor must be in (0, 1]");
  support::check(extra_latency_s >= 0.0, "Network::degrade_link",
                 "extra latency must be non-negative");
  for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    const std::size_t li = link_index(from, to);
    spec_[li].bandwidth_bytes_per_s *= bandwidth_factor;
    spec_[li].latency_s += extra_latency_s;
    bandwidth_[li] = spec_[li].bandwidth_bytes_per_s;
    latency_[li] = spec_[li].latency_s;
  }
}

void Network::set_link_state(NodeId a, NodeId b, bool up) {
  for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}})
    up_[link_index(from, to)] = up ? 1 : 0;
}

bool Network::link_up(NodeId a, NodeId b) const {
  return up_[link_index(a, b)] != 0;
}

void Network::set_link_loss(NodeId a, NodeId b, double probability,
                            std::uint64_t seed) {
  support::check(probability >= 0.0 && probability < 1.0,
                 "Network::set_link_loss",
                 "loss probability must be in [0, 1)");
  for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    const std::size_t li = link_index(from, to);
    loss_prob_[li] = probability;
    // Decorrelate the two directions (and distinct cables sharing a seed)
    // by folding the directed link index into the stream seed.
    std::uint64_t state = seed + 0x9E3779B97F4A7C15ULL * (li + 1);
    loss_rng_[li] = support::Rng(support::splitmix64(state));
  }
}

std::size_t Network::route_hops(NodeId src, NodeId dst) const {
  support::check(routed_, "Network::route_hops", "call finalize_routes first");
  std::size_t hops = 0;
  NodeId cur = src;
  while (cur != dst) {
    const std::uint32_t li = hop_link(cur, dst);
    support::check(li != kNoHop && hops < names_.size(), "Network::route_hops",
                   "no route");
    cur = to_[li];
    ++hops;
  }
  return hops;
}

void Network::send(NodeId src, NodeId dst, std::uint64_t bytes,
                   Callback on_delivered, Callback on_failed) {
  support::check(routed_, "Network::send", "call finalize_routes first");
  support::check(src < names_.size() && dst < names_.size(), "Network::send",
                 "unknown node");
  support::check(static_cast<bool>(on_delivered), "Network::send",
                 "delivery callback required");

  if (src == dst) {
    // Loopback: deliver immediately (caller models any memcpy cost).
    sched_->schedule(dst, sched_->now(), std::move(on_delivered));
    return;
  }

  const std::uint32_t first = route_first_link(src, dst, "Network::send");

  const std::uint64_t frames =
      std::max<std::uint64_t>(1, (bytes + mtu_ - 1) / mtu_);
  Message* msg = msg_pool_.allocate();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  msg->remaining = frames;
  msg->refs = static_cast<std::uint32_t>(frames);
  msg->failed = false;
  msg->on_delivered = std::move(on_delivered);
  msg->on_failed = std::move(on_failed);

  std::uint64_t left = std::max<std::uint64_t>(bytes, 1);
  for (std::uint64_t f = 0; f < frames; ++f) {
    const auto frame_bytes = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(left, mtu_));
    left -= frame_bytes;
    // Inject into the first link now; each frame flows independently.
    forward(first, frame_bytes, dst, 0, true, msg);
  }
}

void Network::release_ref(Message* msg) {
  if (--msg->refs == 0) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    msg_pool_.release(msg);
  }
}

void Network::forward(std::uint32_t li, std::uint32_t frame_bytes, NodeId dst,
                      std::uint32_t attempt, bool first_hop, Message* msg) {
  if (msg->failed) {  // a sibling frame already doomed the message
    release_ref(msg);
    return;
  }
  const double now = sched_->now();

  // A downed link transmits nothing: the frame sits with the sender and is
  // retried with backoff until the link returns or the budget runs out.
  if (up_[li] == 0) {
    stats_[li].down_drops += 1;
    retransmit(li, frame_bytes, dst, attempt, first_hop, msg);
    return;
  }

  const double start = std::max(now, busy_until_[li]);
  const double wait = start - now;

  // Output-port buffer overflow: the frame is dropped and retransmitted
  // with backoff (see LinkSpec). Only switch ports drop (not the first
  // hop): the first hop's queue is the sender's own memory, where frames
  // wait for the NIC at no cost beyond time.
  // In coarse-MTU mode frames are aggregated bursts; the drop threshold
  // scales with the frame size so coarsening trades drop fidelity for
  // speed instead of fabricating overflows.
  const double queued_bytes = wait * bandwidth_[li];
  if (!first_hop && queued_bytes > buffer_limit_[li]) {
    stats_[li].drops += 1;
    retransmit(li, frame_bytes, dst, attempt, first_hop, msg);
    return;
  }

  const double tx =
      static_cast<double>(frame_bytes + 38) /  // preamble + IFG + headers
      bandwidth_[li];
  busy_until_[li] = start + tx;
  LinkStats& st = stats_[li];
  st.frames += 1;
  st.bytes += frame_bytes;
  st.busy_s += tx;
  st.queued_s += wait;
  st.max_queue_s = std::max(st.max_queue_s, wait);

  // Injected Bernoulli loss: the frame burned wire time but never arrives
  // (corruption on a marginal cable); the sender's timeout retransmits it.
  if (loss_prob_[li] > 0.0 && loss_rng_[li].bernoulli(loss_prob_[li])) {
    st.injected_losses += 1;
    retransmit(li, frame_bytes, dst, attempt, first_hop, msg);
    return;
  }

  const double arrival = start + tx + latency_[li];
  const NodeId next = to_[li];
  // The continuation is homed on the receiving endpoint: cross-shard
  // frames carry at least the link latency of delay, which is what makes
  // the sharded engine's lookahead window sound.
  sched_->schedule(next, arrival, [this, frame_bytes, dst, next, msg] {
    if (next != dst) {
      // The frame advanced a hop: its retransmit budget starts fresh.
      forward(hop_link(next, dst), frame_bytes, dst, 0, false, msg);
      return;
    }
    --msg->remaining;
    if (msg->remaining == 0 && !msg->failed) {
      Callback cb = std::move(msg->on_delivered);
      release_ref(msg);
      cb();
    } else {
      release_ref(msg);
    }
  });
}

void Network::retransmit(std::uint32_t li, std::uint32_t frame_bytes,
                         NodeId dst, std::uint32_t attempt, bool first_hop,
                         Message* msg) {
  const LinkSpec& spec = spec_[li];
  if (attempt >= spec.max_retransmits) {
    stats_[li].gave_up += 1;
    if (sched_->parallel()) {
      // Message abandonment mutates shared message state from a switch
      // shard; fault-injection scenarios must run the serial engine.
      support::fail("Network::retransmit",
                    "message abandoned under the parallel engine; fault "
                    "injection requires the serial engine");
    }
    if (!msg->failed) {
      msg->failed = true;
      if (msg->on_failed) {
        ++msg->refs;
        sched_->schedule(from_[li], sched_->now(), [this, msg] {
          Callback cb = std::move(msg->on_failed);
          release_ref(msg);
          cb();
        });
      }
    }
    release_ref(msg);
    return;
  }
  stats_[li].retransmits += 1;
  sched_->schedule(
      from_[li], sched_->now() + backoff_delay(spec, attempt),
      [this, li, frame_bytes, dst, attempt, first_hop, msg] {
        forward(li, frame_bytes, dst, attempt + 1, first_hop, msg);
      });
}

}  // namespace mb::net
