#include "net/network.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>

#include "support/check.h"

namespace mb::net {

namespace {
constexpr std::uint32_t kNoHop = ~std::uint32_t{0};

double backoff_delay(const LinkSpec& spec, std::uint32_t attempt) {
  const double raw = spec.retransmit_timeout_s *
                     std::pow(spec.retransmit_backoff,
                              static_cast<double>(attempt));
  return std::min(raw, spec.retransmit_timeout_max_s);
}
}  // namespace

Network::Network(sim::EventQueue& queue, std::uint32_t mtu_bytes)
    : queue_(queue), mtu_(mtu_bytes) {
  support::check(mtu_bytes >= 64, "Network", "MTU must be at least 64 bytes");
}

NodeId Network::add_node(std::string name, bool is_switch) {
  support::check(!routed_, "Network::add_node",
                 "graph is frozen after finalize_routes");
  names_.push_back(std::move(name));
  is_switch_.push_back(is_switch);
  adjacency_.emplace_back();
  return static_cast<NodeId>(names_.size() - 1);
}

void Network::add_link(NodeId a, NodeId b, LinkSpec spec) {
  support::check(!routed_, "Network::add_link",
                 "graph is frozen after finalize_routes");
  support::check(a < names_.size() && b < names_.size(), "Network::add_link",
                 "unknown node");
  support::check(a != b, "Network::add_link", "no self links");
  support::check(spec.bandwidth_bytes_per_s > 0.0, "Network::add_link",
                 "bandwidth must be positive");
  for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    DirectedLink l;
    l.from = from;
    l.to = to;
    l.spec = spec;
    adjacency_[from].push_back(static_cast<std::uint32_t>(links_.size()));
    links_.push_back(l);
  }
}

void Network::finalize_routes() {
  support::check(!routed_, "Network::finalize_routes", "already routed");
  const std::size_t n = names_.size();
  next_hop_.assign(n, std::vector<std::uint32_t>(n, kNoHop));
  // BFS from every destination, walking reverse links (all links are
  // symmetric here), recording the first hop toward the destination.
  for (NodeId dst = 0; dst < n; ++dst) {
    std::deque<NodeId> frontier{dst};
    std::vector<bool> seen(n, false);
    seen[dst] = true;
    while (!frontier.empty()) {
      const NodeId cur = frontier.front();
      frontier.pop_front();
      for (const std::uint32_t li : adjacency_[cur]) {
        // links_[li] goes cur -> neighbour; the reverse direction
        // (neighbour -> cur) is the hop the neighbour should take.
        const NodeId nb = links_[li].to;
        if (seen[nb]) continue;
        seen[nb] = true;
        next_hop_[nb][dst] = static_cast<std::uint32_t>(link_index(nb, cur));
        frontier.push_back(nb);
      }
    }
  }
  routed_ = true;
}

std::size_t Network::link_index(NodeId a, NodeId b) const {
  for (const std::uint32_t li : adjacency_[a])
    if (links_[li].to == b) return li;
  support::fail("Network::link_index", "no such link");
}

const LinkStats& Network::link_stats(NodeId a, NodeId b) const {
  return links_[link_index(a, b)].stats;
}

void Network::degrade_link(NodeId a, NodeId b, double bandwidth_factor,
                           double extra_latency_s) {
  support::check(bandwidth_factor > 0.0 && bandwidth_factor <= 1.0,
                 "Network::degrade_link",
                 "bandwidth factor must be in (0, 1]");
  support::check(extra_latency_s >= 0.0, "Network::degrade_link",
                 "extra latency must be non-negative");
  for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    DirectedLink& link = links_[link_index(from, to)];
    link.spec.bandwidth_bytes_per_s *= bandwidth_factor;
    link.spec.latency_s += extra_latency_s;
  }
}

void Network::set_link_state(NodeId a, NodeId b, bool up) {
  for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}})
    links_[link_index(from, to)].up = up;
}

bool Network::link_up(NodeId a, NodeId b) const {
  return links_[link_index(a, b)].up;
}

void Network::set_link_loss(NodeId a, NodeId b, double probability,
                            std::uint64_t seed) {
  support::check(probability >= 0.0 && probability < 1.0,
                 "Network::set_link_loss",
                 "loss probability must be in [0, 1)");
  for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    const std::size_t li = link_index(from, to);
    DirectedLink& link = links_[li];
    link.loss_probability = probability;
    // Decorrelate the two directions (and distinct cables sharing a seed)
    // by folding the directed link index into the stream seed.
    std::uint64_t state = seed + 0x9E3779B97F4A7C15ULL * (li + 1);
    link.loss_rng = support::Rng(support::splitmix64(state));
  }
}

std::size_t Network::route_hops(NodeId src, NodeId dst) const {
  support::check(routed_, "Network::route_hops", "call finalize_routes first");
  std::size_t hops = 0;
  NodeId cur = src;
  while (cur != dst) {
    const std::uint32_t li = next_hop_[cur][dst];
    support::check(li != kNoHop, "Network::route_hops", "no route");
    cur = links_[li].to;
    ++hops;
  }
  return hops;
}

void Network::send(NodeId src, NodeId dst, std::uint64_t bytes,
                   Callback on_delivered, Callback on_failed) {
  support::check(routed_, "Network::send", "call finalize_routes first");
  support::check(src < names_.size() && dst < names_.size(), "Network::send",
                 "unknown node");
  support::check(static_cast<bool>(on_delivered), "Network::send",
                 "delivery callback required");

  if (src == dst) {
    // Loopback: deliver immediately (caller models any memcpy cost).
    queue_.schedule_in(0.0, std::move(on_delivered));
    return;
  }

  // Build the hop path once.
  auto hops = std::make_shared<std::vector<std::uint32_t>>();
  NodeId cur = src;
  while (cur != dst) {
    const std::uint32_t li = next_hop_[cur][dst];
    support::check(li != kNoHop, "Network::send", "no route");
    hops->push_back(li);
    cur = links_[li].to;
  }
  const Path path = hops;

  const std::uint64_t frames =
      std::max<std::uint64_t>(1, (bytes + mtu_ - 1) / mtu_);
  auto msg = std::make_shared<Message>();
  msg->remaining = frames;
  msg->on_delivered = std::move(on_delivered);
  msg->on_failed = std::move(on_failed);

  std::uint64_t left = std::max<std::uint64_t>(bytes, 1);
  for (std::uint64_t f = 0; f < frames; ++f) {
    const auto frame_bytes = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(left, mtu_));
    left -= frame_bytes;
    // Inject into the first link now; each frame flows independently.
    forward(frame_bytes, path, 0, 0, msg);
  }
}

void Network::forward(std::uint32_t frame_bytes, Path path, std::size_t hop,
                      std::uint32_t attempt, std::shared_ptr<Message> msg) {
  if (msg->failed) return;  // a sibling frame already doomed the message
  DirectedLink& link = links_[(*path)[hop]];
  const double now = queue_.now();

  // A downed link transmits nothing: the frame sits with the sender and is
  // retried with backoff until the link returns or the budget runs out.
  if (!link.up) {
    link.stats.down_drops += 1;
    retransmit(frame_bytes, std::move(path), hop, attempt, std::move(msg));
    return;
  }

  const double start = std::max(now, link.busy_until);
  const double wait = start - now;

  // Output-port buffer overflow: the frame is dropped and retransmitted
  // with backoff (see LinkSpec). Only switch ports drop (hop > 0): the
  // first hop's queue is the sender's own memory, where frames wait for
  // the NIC at no cost beyond time.
  // In coarse-MTU mode frames are aggregated bursts; the drop threshold
  // scales with the frame size so coarsening trades drop fidelity for
  // speed instead of fabricating overflows.
  const double buffer_limit =
      std::max<double>(link.spec.buffer_bytes, 4.0 * mtu_);
  const double queued_bytes = wait * link.spec.bandwidth_bytes_per_s;
  if (hop > 0 && queued_bytes > buffer_limit) {
    link.stats.drops += 1;
    retransmit(frame_bytes, std::move(path), hop, attempt, std::move(msg));
    return;
  }

  const double tx =
      static_cast<double>(frame_bytes + 38) /  // preamble + IFG + headers
      link.spec.bandwidth_bytes_per_s;
  link.busy_until = start + tx;
  link.stats.frames += 1;
  link.stats.bytes += frame_bytes;
  link.stats.busy_s += tx;
  link.stats.queued_s += wait;
  link.stats.max_queue_s = std::max(link.stats.max_queue_s, wait);

  // Injected Bernoulli loss: the frame burned wire time but never arrives
  // (corruption on a marginal cable); the sender's timeout retransmits it.
  if (link.loss_probability > 0.0 &&
      link.loss_rng.bernoulli(link.loss_probability)) {
    link.stats.injected_losses += 1;
    retransmit(frame_bytes, std::move(path), hop, attempt, std::move(msg));
    return;
  }

  const double arrival = start + tx + link.spec.latency_s;
  auto cont = [this, path = std::move(path), hop, frame_bytes,
               msg = std::move(msg)] {
    if (hop + 1 < path->size()) {
      // The frame advanced a hop: its retransmit budget starts fresh.
      forward(frame_bytes, path, hop + 1, 0, msg);
    } else {
      if (--msg->remaining == 0 && !msg->failed) (msg->on_delivered)();
    }
  };
  queue_.schedule_at(arrival, std::move(cont));
}

void Network::retransmit(std::uint32_t frame_bytes, Path path,
                         std::size_t hop, std::uint32_t attempt,
                         std::shared_ptr<Message> msg) {
  DirectedLink& link = links_[(*path)[hop]];
  if (attempt >= link.spec.max_retransmits) {
    link.stats.gave_up += 1;
    if (!msg->failed) {
      msg->failed = true;
      if (msg->on_failed)
        queue_.schedule_in(0.0, [msg] { (msg->on_failed)(); });
    }
    return;
  }
  link.stats.retransmits += 1;
  queue_.schedule_in(
      backoff_delay(link.spec, attempt),
      [this, frame_bytes, path = std::move(path), hop, attempt,
       msg = std::move(msg)]() mutable {
        forward(frame_bytes, std::move(path), hop, attempt + 1,
                std::move(msg));
      });
}

}  // namespace mb::net
