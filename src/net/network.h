// Packet-level Ethernet network simulator.
//
// Models the Tibidabo interconnect of Section IV: nodes with GbE NICs wired
// through store-and-forward switches (48-port 1 GbE in the paper). Messages
// are cut into MTU-sized frames; every directed link serializes frames
// (busy-until bookkeeping on the event queue), so output-port contention —
// the cause of the delayed all_to_all_v collectives in Fig. 4 — emerges
// naturally from concurrent flows sharing an uplink.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "support/rng.h"

namespace mb::net {

/// One direction of a cable: bandwidth, propagation+processing latency,
/// and the output-port buffering of the upstream device. When the queue in
/// front of the link exceeds `buffer_bytes`, newly arriving frames are
/// dropped and retransmitted — the TCP-over-cheap-GbE behaviour behind the
/// paper's "sometimes delayed" collectives (incast on all_to_all_v
/// overflows the switch buffers). Retransmission uses capped exponential
/// backoff: attempt k waits retransmit_timeout_s * retransmit_backoff^k,
/// clamped to retransmit_timeout_max_s; after max_retransmits consecutive
/// failed attempts at one hop the frame is abandoned and the whole
/// message fails (see Network::send's on_failed).
struct LinkSpec {
  double bandwidth_bytes_per_s = 0.0;
  double latency_s = 0.0;
  double buffer_bytes = 1e18;          ///< effectively infinite by default
  double retransmit_timeout_s = 0.2;   ///< base RTO (Linux TCP minimum)
  double retransmit_backoff = 2.0;     ///< per-attempt delay multiplier
  double retransmit_timeout_max_s = 5.0;  ///< backoff cap
  std::uint32_t max_retransmits = 16;  ///< give-up threshold per hop
};

/// Vertex id in the network graph (hosts and switches share the space).
using NodeId = std::uint32_t;

/// Statistics per directed link (for congestion analysis).
struct LinkStats {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  std::uint64_t drops = 0;    ///< buffer-overflow drops (retransmitted)
  std::uint64_t retransmits = 0;     ///< frames rescheduled with backoff
  std::uint64_t injected_losses = 0; ///< Bernoulli losses (fault injection)
  std::uint64_t down_drops = 0;      ///< frames hitting a downed link
  std::uint64_t gave_up = 0;         ///< frames abandoned after max retries
  double busy_s = 0.0;        ///< cumulated transmission time
  double queued_s = 0.0;      ///< cumulated waiting-for-link time
  double max_queue_s = 0.0;   ///< worst single-frame queueing delay
};

class Network {
 public:
  static constexpr std::uint32_t kMtuBytes = 1500;

  /// `mtu_bytes` sets frame granularity. 1500 (Ethernet) gives full
  /// congestion fidelity; large values coarsen messages into few frames —
  /// used to make month-long HPL runs simulable while keeping link
  /// serialization and queueing behaviour.
  explicit Network(sim::EventQueue& queue,
                   std::uint32_t mtu_bytes = kMtuBytes);

  std::uint32_t mtu() const { return mtu_; }

  /// Adds a vertex; `is_switch` only matters for reporting.
  NodeId add_node(std::string name, bool is_switch);

  /// Adds a full-duplex edge (two directed links with `spec` each).
  void add_link(NodeId a, NodeId b, LinkSpec spec);

  /// Computes routes (BFS shortest path; the topologies here are trees).
  /// Must be called after the graph is final and before send().
  void finalize_routes();

  using Callback = std::function<void()>;

  /// Sends `bytes` from `src` to `dst`; invokes `on_delivered` when the
  /// last frame arrives. Zero-byte messages are sent as one header frame.
  /// When any frame exhausts its per-hop retransmit budget the message is
  /// abandoned: `on_failed` (if given) fires once and `on_delivered`
  /// never does. Without `on_failed` an abandoned message is simply lost —
  /// the caller's own timeout must notice.
  void send(NodeId src, NodeId dst, std::uint64_t bytes,
            Callback on_delivered, Callback on_failed = nullptr);

  /// Fault injection: degrades both directions of the a-b cable —
  /// bandwidth is multiplied by `bandwidth_factor` (in (0, 1]) and
  /// `extra_latency_s` is added per frame. Models a renegotiated-down or
  /// error-prone link (a failing NIC, a bad cable): the straggler-maker
  /// of real clusters. May be called after finalize_routes().
  void degrade_link(NodeId a, NodeId b, double bandwidth_factor,
                    double extra_latency_s);

  /// Fault injection: takes both directions of the a-b cable down (or back
  /// up). A downed link transmits nothing; frames queued on it retry with
  /// backoff and either survive the outage or exhaust their retransmit
  /// budget. May be called after finalize_routes().
  void set_link_state(NodeId a, NodeId b, bool up);

  /// True when the directed link a->b is up. Throws if absent.
  bool link_up(NodeId a, NodeId b) const;

  /// Fault injection: every frame crossing either direction of the a-b
  /// cable is independently lost with `probability` (in [0, 1)). Lost
  /// frames consumed wire time and are retransmitted with backoff. The
  /// per-direction RNG streams derive from `seed`, so identical seeds
  /// reproduce identical loss patterns.
  void set_link_loss(NodeId a, NodeId b, double probability,
                     std::uint64_t seed);

  std::size_t nodes() const { return names_.size(); }
  const std::string& name(NodeId n) const { return names_[n]; }
  bool is_switch(NodeId n) const { return is_switch_[n]; }

  /// Stats of the directed link a->b. Throws if absent.
  const LinkStats& link_stats(NodeId a, NodeId b) const;

  /// Number of hops of the current route (for tests).
  std::size_t route_hops(NodeId src, NodeId dst) const;

 private:
  struct DirectedLink {
    NodeId from, to;
    LinkSpec spec;
    double busy_until = 0.0;
    bool up = true;
    double loss_probability = 0.0;
    support::Rng loss_rng;
    LinkStats stats;
  };

  /// Shared fate of one message's frames: delivery fires when the last
  /// frame lands; a single abandoned frame fails the whole message.
  struct Message {
    std::uint64_t remaining = 0;
    Callback on_delivered;
    Callback on_failed;  ///< may be null
    bool failed = false;
  };

  using Path = std::shared_ptr<const std::vector<std::uint32_t>>;

  std::size_t link_index(NodeId a, NodeId b) const;
  void forward(std::uint32_t frame_bytes, Path path, std::size_t hop,
               std::uint32_t attempt, std::shared_ptr<Message> msg);
  void retransmit(std::uint32_t frame_bytes, Path path, std::size_t hop,
                  std::uint32_t attempt, std::shared_ptr<Message> msg);

  sim::EventQueue& queue_;
  std::uint32_t mtu_;
  std::vector<std::string> names_;
  std::vector<bool> is_switch_;
  std::vector<DirectedLink> links_;
  std::vector<std::vector<std::uint32_t>> adjacency_;  // node -> link idxs
  // next_hop_[src][dst] = link index to take; computed by finalize_routes.
  std::vector<std::vector<std::uint32_t>> next_hop_;
  bool routed_ = false;
};

}  // namespace mb::net
