// Packet-level Ethernet network simulator.
//
// Models the Tibidabo interconnect of Section IV: nodes with GbE NICs wired
// through store-and-forward switches (48-port 1 GbE in the paper). Messages
// are cut into MTU-sized frames; every directed link serializes frames
// (busy-until bookkeeping on the event queue), so output-port contention —
// the cause of the delayed all_to_all_v collectives in Fig. 4 — emerges
// naturally from concurrent flows sharing an uplink.
//
// Layout notes (DESIGN.md §10): per-link state lives in parallel arrays
// keyed by directed-link index — the hot fields a frame touches
// (busy_until, bandwidth, latency, buffer limit) are separate from cold
// spec/stats/fault state, so the forward() inner loop stays in cache at
// 10k+ simulated ranks. Frames carry no path: each hop looks up the next
// link from compact routing rows (only nodes with degree > 1 get a row;
// leaf hosts take their only link), and in-flight messages are pooled
// (support::Pool) instead of heap-allocated per send.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.h"
#include "support/arena.h"
#include "support/rng.h"

namespace mb::net {

/// One direction of a cable: bandwidth, propagation+processing latency,
/// and the output-port buffering of the upstream device. When the queue in
/// front of the link exceeds `buffer_bytes`, newly arriving frames are
/// dropped and retransmitted — the TCP-over-cheap-GbE behaviour behind the
/// paper's "sometimes delayed" collectives (incast on all_to_all_v
/// overflows the switch buffers). Retransmission uses capped exponential
/// backoff: attempt k waits retransmit_timeout_s * retransmit_backoff^k,
/// clamped to retransmit_timeout_max_s; after max_retransmits consecutive
/// failed attempts at one hop the frame is abandoned and the whole
/// message fails (see Network::send's on_failed).
struct LinkSpec {
  double bandwidth_bytes_per_s = 0.0;
  double latency_s = 0.0;
  double buffer_bytes = 1e18;          ///< effectively infinite by default
  double retransmit_timeout_s = 0.2;   ///< base RTO (Linux TCP minimum)
  double retransmit_backoff = 2.0;     ///< per-attempt delay multiplier
  double retransmit_timeout_max_s = 5.0;  ///< backoff cap
  std::uint32_t max_retransmits = 16;  ///< give-up threshold per hop
};

/// Vertex id in the network graph (hosts and switches share the space).
using NodeId = std::uint32_t;

/// Statistics per directed link (for congestion analysis).
struct LinkStats {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  std::uint64_t drops = 0;    ///< buffer-overflow drops (retransmitted)
  std::uint64_t retransmits = 0;     ///< frames rescheduled with backoff
  std::uint64_t injected_losses = 0; ///< Bernoulli losses (fault injection)
  std::uint64_t down_drops = 0;      ///< frames hitting a downed link
  std::uint64_t gave_up = 0;         ///< frames abandoned after max retries
  double busy_s = 0.0;        ///< cumulated transmission time
  double queued_s = 0.0;      ///< cumulated waiting-for-link time
  double max_queue_s = 0.0;   ///< worst single-frame queueing delay
};

class Network {
 public:
  static constexpr std::uint32_t kMtuBytes = 1500;

  /// `mtu_bytes` sets frame granularity. 1500 (Ethernet) gives full
  /// congestion fidelity; large values coarsen messages into few frames —
  /// used to make month-long HPL runs simulable while keeping link
  /// serialization and queueing behaviour.
  explicit Network(sim::Scheduler& sched, std::uint32_t mtu_bytes = kMtuBytes);

  /// Convenience overload for the classic serial engine: wraps `queue`
  /// in an internally owned QueueScheduler.
  explicit Network(sim::EventQueue& queue,
                   std::uint32_t mtu_bytes = kMtuBytes);

  std::uint32_t mtu() const { return mtu_; }

  /// Adds a vertex; `is_switch` only matters for reporting.
  NodeId add_node(std::string name, bool is_switch);

  /// Adds a full-duplex edge (two directed links with `spec` each).
  void add_link(NodeId a, NodeId b, LinkSpec spec);

  /// Computes routes (BFS shortest path; the topologies here are trees).
  /// Must be called after the graph is final and before send().
  void finalize_routes();

  using Callback = sim::EventQueue::Callback;

  /// Sends `bytes` from `src` to `dst`; invokes `on_delivered` when the
  /// last frame arrives. Zero-byte messages are sent as one header frame.
  /// When any frame exhausts its per-hop retransmit budget the message is
  /// abandoned: `on_failed` (if given) fires once and `on_delivered`
  /// never does. Without `on_failed` an abandoned message is simply lost —
  /// the caller's own timeout must notice. Abandonment is a hard error
  /// under a parallel scheduler (fault injection needs the serial engine).
  void send(NodeId src, NodeId dst, std::uint64_t bytes,
            Callback on_delivered, Callback on_failed = nullptr);

  /// Fault injection: degrades both directions of the a-b cable —
  /// bandwidth is multiplied by `bandwidth_factor` (in (0, 1]) and
  /// `extra_latency_s` is added per frame. Models a renegotiated-down or
  /// error-prone link (a failing NIC, a bad cable): the straggler-maker
  /// of real clusters. May be called after finalize_routes().
  void degrade_link(NodeId a, NodeId b, double bandwidth_factor,
                    double extra_latency_s);

  /// Fault injection: takes both directions of the a-b cable down (or back
  /// up). A downed link transmits nothing; frames queued on it retry with
  /// backoff and either survive the outage or exhaust their retransmit
  /// budget. May be called after finalize_routes().
  void set_link_state(NodeId a, NodeId b, bool up);

  /// True when the directed link a->b is up. Throws if absent.
  bool link_up(NodeId a, NodeId b) const;

  /// Fault injection: every frame crossing either direction of the a-b
  /// cable is independently lost with `probability` (in [0, 1)). Lost
  /// frames consumed wire time and are retransmitted with backoff. The
  /// per-direction RNG streams derive from `seed`, so identical seeds
  /// reproduce identical loss patterns.
  void set_link_loss(NodeId a, NodeId b, double probability,
                     std::uint64_t seed);

  std::size_t nodes() const { return names_.size(); }
  const std::string& name(NodeId n) const { return names_[n]; }
  bool is_switch(NodeId n) const { return is_switch_[n]; }

  /// Messages accepted by send() whose frames are still somewhere on the
  /// wire (delivery or abandonment pending). A live congestion gauge for
  /// the metrics time-series sampler; atomic because messages complete
  /// on their destination's shard.
  std::uint64_t in_flight_messages() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  /// Stats of the directed link a->b. Throws if absent.
  const LinkStats& link_stats(NodeId a, NodeId b) const;

  /// Number of hops of the current route (for tests).
  std::size_t route_hops(NodeId src, NodeId dst) const;

  /// Directed-link enumeration, used by the sharded engine to derive its
  /// conservative lookahead (min latency over cross-shard links).
  std::size_t link_count() const { return from_.size(); }
  NodeId link_from(std::size_t li) const { return from_[li]; }
  NodeId link_to(std::size_t li) const { return to_[li]; }
  double link_latency_s(std::size_t li) const { return latency_[li]; }

 private:
  /// Shared fate of one message's frames: delivery fires when the last
  /// frame lands; a single abandoned frame fails the whole message.
  /// Pool-allocated; `refs` counts in-flight frame chains (plus a pending
  /// on_failed dispatch) and frees the record when it reaches zero. All
  /// touches of one message happen on the destination's shard (or, for
  /// failures, on the serial engine), so the counters stay plain.
  struct Message {
    std::uint64_t remaining = 0;
    std::uint32_t refs = 0;
    bool failed = false;
    Callback on_delivered;
    Callback on_failed;  ///< may be null
  };

  static constexpr std::uint32_t kNoHop = ~std::uint32_t{0};

  std::size_t link_index(NodeId a, NodeId b) const;
  /// Next directed link from `cur` toward `dst`; kNoHop when unroutable.
  std::uint32_t hop_link(NodeId cur, NodeId dst) const;
  /// Validates reachability and returns the first link of the route.
  std::uint32_t route_first_link(NodeId src, NodeId dst, const char* where) const;
  void forward(std::uint32_t li, std::uint32_t frame_bytes, NodeId dst,
               std::uint32_t attempt, bool first_hop, Message* msg);
  void retransmit(std::uint32_t li, std::uint32_t frame_bytes, NodeId dst,
                  std::uint32_t attempt, bool first_hop, Message* msg);
  void release_ref(Message* msg);

  std::unique_ptr<sim::QueueScheduler> owned_;  ///< compat-ctor engine
  sim::Scheduler* sched_;
  std::uint32_t mtu_;
  std::vector<std::string> names_;
  std::vector<bool> is_switch_;
  std::vector<std::vector<std::uint32_t>> adjacency_;  // node -> link idxs

  // Directed links, struct-of-arrays. Hot (read per frame per hop):
  std::vector<NodeId> from_;
  std::vector<NodeId> to_;
  std::vector<double> busy_until_;
  std::vector<double> bandwidth_;      ///< bytes/s, tracks degrade_link
  std::vector<double> latency_;        ///< seconds, tracks degrade_link
  std::vector<double> buffer_limit_;   ///< max(spec.buffer_bytes, 4*mtu)
  std::vector<double> loss_prob_;
  std::vector<std::uint8_t> up_;
  // Cold (faults, reporting):
  std::vector<LinkSpec> spec_;
  std::vector<support::Rng> loss_rng_;
  std::vector<LinkStats> stats_;

  // Routing: row_of_[n] indexes rows_ for nodes with degree > 1
  // (kNoHop otherwise — degree-1 nodes take their only link).
  std::vector<std::uint32_t> row_of_;
  std::vector<std::vector<std::uint32_t>> rows_;  // row -> dst -> link
  bool routed_ = false;

  support::Pool<Message, true> msg_pool_;
  std::atomic<std::uint64_t> in_flight_{0};
};

}  // namespace mb::net
