// Packet-level Ethernet network simulator.
//
// Models the Tibidabo interconnect of Section IV: nodes with GbE NICs wired
// through store-and-forward switches (48-port 1 GbE in the paper). Messages
// are cut into MTU-sized frames; every directed link serializes frames
// (busy-until bookkeeping on the event queue), so output-port contention —
// the cause of the delayed all_to_all_v collectives in Fig. 4 — emerges
// naturally from concurrent flows sharing an uplink.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace mb::net {

/// One direction of a cable: bandwidth, propagation+processing latency,
/// and the output-port buffering of the upstream device. When the queue in
/// front of the link exceeds `buffer_bytes`, newly arriving frames are
/// dropped and retransmitted after `retransmit_timeout_s` — the TCP-over-
/// cheap-GbE behaviour behind the paper's "sometimes delayed" collectives
/// (incast on all_to_all_v overflows the switch buffers).
struct LinkSpec {
  double bandwidth_bytes_per_s = 0.0;
  double latency_s = 0.0;
  double buffer_bytes = 1e18;          ///< effectively infinite by default
  double retransmit_timeout_s = 0.2;   ///< Linux TCP minimum RTO
};

/// Vertex id in the network graph (hosts and switches share the space).
using NodeId = std::uint32_t;

/// Statistics per directed link (for congestion analysis).
struct LinkStats {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  std::uint64_t drops = 0;    ///< buffer-overflow drops (retransmitted)
  double busy_s = 0.0;        ///< cumulated transmission time
  double queued_s = 0.0;      ///< cumulated waiting-for-link time
  double max_queue_s = 0.0;   ///< worst single-frame queueing delay
};

class Network {
 public:
  static constexpr std::uint32_t kMtuBytes = 1500;

  /// `mtu_bytes` sets frame granularity. 1500 (Ethernet) gives full
  /// congestion fidelity; large values coarsen messages into few frames —
  /// used to make month-long HPL runs simulable while keeping link
  /// serialization and queueing behaviour.
  explicit Network(sim::EventQueue& queue,
                   std::uint32_t mtu_bytes = kMtuBytes);

  std::uint32_t mtu() const { return mtu_; }

  /// Adds a vertex; `is_switch` only matters for reporting.
  NodeId add_node(std::string name, bool is_switch);

  /// Adds a full-duplex edge (two directed links with `spec` each).
  void add_link(NodeId a, NodeId b, LinkSpec spec);

  /// Computes routes (BFS shortest path; the topologies here are trees).
  /// Must be called after the graph is final and before send().
  void finalize_routes();

  using Callback = std::function<void()>;

  /// Sends `bytes` from `src` to `dst`; invokes `on_delivered` when the
  /// last frame arrives. Zero-byte messages are sent as one header frame.
  void send(NodeId src, NodeId dst, std::uint64_t bytes,
            Callback on_delivered);

  /// Fault injection: degrades both directions of the a-b cable —
  /// bandwidth is multiplied by `bandwidth_factor` (in (0, 1]) and
  /// `extra_latency_s` is added per frame. Models a renegotiated-down or
  /// error-prone link (a failing NIC, a bad cable): the straggler-maker
  /// of real clusters. May be called after finalize_routes().
  void degrade_link(NodeId a, NodeId b, double bandwidth_factor,
                    double extra_latency_s);

  std::size_t nodes() const { return names_.size(); }
  const std::string& name(NodeId n) const { return names_[n]; }
  bool is_switch(NodeId n) const { return is_switch_[n]; }

  /// Stats of the directed link a->b. Throws if absent.
  const LinkStats& link_stats(NodeId a, NodeId b) const;

  /// Number of hops of the current route (for tests).
  std::size_t route_hops(NodeId src, NodeId dst) const;

 private:
  struct DirectedLink {
    NodeId from, to;
    LinkSpec spec;
    double busy_until = 0.0;
    LinkStats stats;
  };

  using Path = std::shared_ptr<const std::vector<std::uint32_t>>;

  std::size_t link_index(NodeId a, NodeId b) const;
  void forward(std::uint32_t frame_bytes, Path path, std::size_t hop,
               std::shared_ptr<std::uint64_t> remaining,
               std::shared_ptr<Callback> on_delivered);

  sim::EventQueue& queue_;
  std::uint32_t mtu_;
  std::vector<std::string> names_;
  std::vector<bool> is_switch_;
  std::vector<DirectedLink> links_;
  std::vector<std::vector<std::uint32_t>> adjacency_;  // node -> link idxs
  // next_hop_[src][dst] = link index to take; computed by finalize_routes.
  std::vector<std::vector<std::uint32_t>> next_hop_;
  bool routed_ = false;
};

}  // namespace mb::net
