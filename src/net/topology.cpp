#include "net/topology.h"

#include "support/check.h"
#include "support/units.h"

namespace mb::net {

ClusterTopology build_tree(Network& net, const TreeParams& params) {
  support::check(params.nodes >= 1, "build_tree", "need at least one node");
  support::check(params.switch_ports >= 2, "build_tree",
                 "switches need at least two ports");

  ClusterTopology topo;
  const std::uint32_t leaves =
      (params.nodes + params.switch_ports - 1) / params.switch_ports;

  if (leaves <= 1) {
    const NodeId sw = net.add_node("switch0", /*is_switch=*/true);
    topo.root_switch = sw;
    topo.leaf_switches = {sw};
    for (std::uint32_t n = 0; n < params.nodes; ++n) {
      const NodeId host =
          net.add_node("node" + std::to_string(n), /*is_switch=*/false);
      net.add_link(host, sw, params.host_link);
      topo.hosts.push_back(host);
    }
  } else {
    topo.root_switch = net.add_node("root", /*is_switch=*/true);
    for (std::uint32_t l = 0; l < leaves; ++l) {
      const NodeId sw =
          net.add_node("switch" + std::to_string(l), /*is_switch=*/true);
      topo.leaf_switches.push_back(sw);
      net.add_link(sw, topo.root_switch, params.uplink);
    }
    for (std::uint32_t n = 0; n < params.nodes; ++n) {
      const NodeId host =
          net.add_node("node" + std::to_string(n), /*is_switch=*/false);
      net.add_link(host, topo.leaf_switches[n / params.switch_ports],
                   params.host_link);
      topo.hosts.push_back(host);
    }
  }
  net.finalize_routes();
  return topo;
}

TreeParams tibidabo_tree(std::uint32_t nodes) {
  using support::Gbit;
  TreeParams p;
  p.nodes = nodes;
  p.switch_ports = 48;
  // Tegra2's PCIe GbE NIC sustains well under line rate; cheap switches
  // add tens of microseconds of store-and-forward + kernel stack latency.
  p.host_link.bandwidth_bytes_per_s = support::bits_to_bytes_per_s(0.7 * Gbit);
  p.host_link.latency_s = support::us(45);
  p.host_link.buffer_bytes = 128 * 1024.0;  // cheap switch: ~128KB per port
  // Drop recovery at the MPI/transport layer: fast retransmit + eager
  // retry rather than a full TCP minimum RTO.
  p.host_link.retransmit_timeout_s = 0.025;
  p.uplink.bandwidth_bytes_per_s = support::bits_to_bytes_per_s(1.0 * Gbit);
  p.uplink.latency_s = support::us(30);
  p.uplink.buffer_bytes = 128 * 1024.0;
  p.uplink.retransmit_timeout_s = 0.025;
  return p;
}

TreeParams upgraded_tree(std::uint32_t nodes) {
  using support::Gbit;
  TreeParams p;
  p.nodes = nodes;
  p.switch_ports = 48;
  p.host_link.bandwidth_bytes_per_s = support::bits_to_bytes_per_s(0.9 * Gbit);
  p.host_link.latency_s = support::us(20);
  p.host_link.buffer_bytes = 2e6;  // deep-buffered managed switch
  p.uplink.bandwidth_bytes_per_s = support::bits_to_bytes_per_s(10.0 * Gbit);
  p.uplink.latency_s = support::us(8);
  p.uplink.buffer_bytes = 8e6;
  return p;
}

}  // namespace mb::net
