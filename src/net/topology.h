// Cluster topology builders.
//
// Tibidabo (paper Sec. II-B): boards with 1 GbE NICs "interconnected
// hierarchically using 48-port 1 GbE switches". The hierarchical tree with
// single-GbE uplinks is heavily oversubscribed — the root of the delayed
// collectives in Fig. 4. The "upgraded switches" variant (Sec. IV: "this
// problem is to be fixed by upgrading the Ethernet switches") widens the
// uplinks and cuts switch latency.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"

namespace mb::net {

/// A built cluster: the network plus the host vertex for every node.
struct ClusterTopology {
  std::vector<NodeId> hosts;
  NodeId root_switch = 0;
  std::vector<NodeId> leaf_switches;
};

struct TreeParams {
  std::uint32_t nodes = 32;
  std::uint32_t switch_ports = 48;      ///< host ports per leaf switch
  LinkSpec host_link{};                 ///< node NIC <-> leaf switch
  LinkSpec uplink{};                    ///< leaf switch <-> root switch
};

/// Builds a two-level tree: hosts -> leaf switches -> root switch. With
/// nodes <= switch_ports a single switch is built (no root hop).
/// finalize_routes() is called before returning.
ClusterTopology build_tree(Network& net, const TreeParams& params);

/// The Tibidabo interconnect as studied in the paper: 1 GbE everywhere,
/// cheap store-and-forward switches, one GbE uplink per leaf switch.
TreeParams tibidabo_tree(std::uint32_t nodes);

/// The post-upgrade interconnect (Sec. IV / Sec. VI: "high speed Ethernet
/// network"): 10 GbE uplinks and lower switch latency.
TreeParams upgraded_tree(std::uint32_t nodes);

}  // namespace mb::net
