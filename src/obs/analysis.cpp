#include "obs/analysis.h"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

#include "stats/descriptive.h"
#include "support/check.h"
#include "support/json.h"
#include "support/version.h"

namespace mb::obs {

using support::JsonWriter;

Analysis analyze_timeline(const trace::Trace& trace,
                          const TimeSeries* timeseries,
                          const AnalysisOptions& options) {
  support::check(options.late_fraction > 0.0 && options.late_fraction < 1.0,
                 "analyze_timeline", "late_fraction must be in (0, 1)");
  Analysis a;
  a.tool_version = trace.has_provenance() ? trace.tool_version()
                                          : std::string(support::version());
  a.seed = trace.has_provenance() ? trace.seed() : 0;
  a.ranks = trace.ranks();
  a.records = trace.size();
  a.makespan_s = trace.end_time();

  // Per-rank activity split by event kind.
  std::vector<RankActivity> activity(a.ranks);
  for (std::uint32_t r = 0; r < a.ranks; ++r) activity[r].rank = r;
  for (const auto& rec : trace.records()) {
    RankActivity& act = activity[rec.rank];
    switch (rec.kind) {
      case trace::EventKind::kCompute: act.compute_s += rec.duration(); break;
      case trace::EventKind::kCollective:
        act.collective_s += rec.duration();
        break;
      case trace::EventKind::kSend:
      case trace::EventKind::kRecv: act.p2p_s += rec.duration(); break;
      case trace::EventKind::kWait: act.wait_s += rec.duration(); break;
      case trace::EventKind::kFault:
        a.faults.push_back({rec.rank, rec.t0, rec.label});
        break;
    }
  }
  std::stable_sort(a.faults.begin(), a.faults.end(),
                   [](const FaultMark& x, const FaultMark& y) {
                     return x.at_s < y.at_s;
                   });
  std::stable_sort(activity.begin(), activity.end(),
                   [](const RankActivity& x, const RankActivity& y) {
                     return x.wait_s + x.collective_s >
                            y.wait_s + y.collective_s;
                   });
  if (activity.size() > options.top) activity.resize(options.top);
  a.rank_activity = std::move(activity);

  // Collective instances, grouped as in analyze_collectives: the i-th
  // occurrence of a label on each rank forms instance i.
  std::map<std::string, std::map<std::uint32_t, std::vector<trace::Record>>>
      groups;
  for (const auto& rec : trace.records())
    if (rec.kind == trace::EventKind::kCollective)
      groups[rec.label][rec.rank].push_back(rec);

  struct Accum {
    std::size_t instances_late = 0;
    double attributed = 0.0;
    std::map<std::string, double> by_label;
  };
  std::map<std::uint32_t, Accum> accum;
  std::vector<CriticalStep> steps;

  for (const auto& [label, per_rank] : groups) {
    CollectiveStats cs;
    cs.label = label;
    const trace::CollectiveReport report =
        trace::analyze_collectives(trace, label, options.delay_factor);
    cs.instances = report.instances.size();
    cs.delayed = report.delayed_count;
    cs.median_duration_s = report.median_duration;

    for (std::size_t i = 0; i < cs.instances; ++i) {
      // Arrival = when the rank *entered* the collective (t0): the spread
      // of arrivals is pure wait imposed on the early ranks.
      std::vector<std::pair<std::uint32_t, double>> arrivals;
      for (const auto& [rank, recs] : per_rank)
        if (i < recs.size()) arrivals.emplace_back(rank, recs[i].t0);
      if (arrivals.size() < 2) continue;

      double last_arrival = arrivals.front().second;
      std::uint32_t last_rank = arrivals.front().first;
      std::vector<double> times;
      times.reserve(arrivals.size());
      for (const auto& [rank, t0] : arrivals) {
        times.push_back(t0);
        if (t0 > last_arrival) {
          last_arrival = t0;
          last_rank = rank;
        }
      }
      const double median_arrival = stats::median(times);
      const double worst_lag = last_arrival - median_arrival;
      double spread_wait = 0.0;
      for (const double t0 : times) spread_wait += last_arrival - t0;
      cs.arrival_wait_s += spread_wait;
      if (worst_lag <= 0.0) continue;

      steps.push_back({last_arrival, label, i, last_rank, worst_lag});

      // Late set: every rank whose lag is within late_fraction of the
      // worst. This deliberately catches *groups* of stragglers — both
      // ranks of a slowed node arrive nearly together, so charging only
      // the single last arrival would let its sibling off free.
      std::vector<std::pair<std::uint32_t, double>> late;
      double late_lag_sum = 0.0;
      for (const auto& [rank, t0] : arrivals) {
        const double lag = t0 - median_arrival;
        if (lag > options.late_fraction * worst_lag) {
          late.emplace_back(rank, lag);
          late_lag_sum += lag;
        }
      }
      if (late.empty() || late_lag_sum <= 0.0) continue;
      a.total_attributed_wait_s += spread_wait;
      for (const auto& [rank, lag] : late) {
        Accum& acc = accum[rank];
        const double charged = spread_wait * (lag / late_lag_sum);
        acc.attributed += charged;
        acc.by_label[label] += charged;
        ++acc.instances_late;
      }
    }
    a.collectives.push_back(std::move(cs));
  }

  // Stragglers: consistent late arrivals carrying a real share of the
  // total attributed wait.
  for (const auto& [rank, acc] : accum) {
    const double share = a.total_attributed_wait_s > 0.0
                             ? acc.attributed / a.total_attributed_wait_s
                             : 0.0;
    if (share < options.straggler_min_share) continue;
    if (acc.instances_late < options.straggler_min_instances) continue;
    Straggler s;
    s.rank = rank;
    s.instances_late = acc.instances_late;
    s.attributed_wait_s = acc.attributed;
    s.share = share;
    s.by_label.assign(acc.by_label.begin(), acc.by_label.end());
    std::stable_sort(s.by_label.begin(), s.by_label.end(),
                     [](const auto& x, const auto& y) {
                       return x.second > y.second;
                     });
    a.stragglers.push_back(std::move(s));
  }
  std::stable_sort(a.stragglers.begin(), a.stragglers.end(),
                   [](const Straggler& x, const Straggler& y) {
                     return x.attributed_wait_s > y.attributed_wait_s;
                   });

  // Critical path: cap to the biggest lags, then restore chronology.
  std::stable_sort(steps.begin(), steps.end(),
                   [](const CriticalStep& x, const CriticalStep& y) {
                     return x.lag_s > y.lag_s;
                   });
  if (steps.size() > options.max_critical_steps)
    steps.resize(options.max_critical_steps);
  std::stable_sort(steps.begin(), steps.end(),
                   [](const CriticalStep& x, const CriticalStep& y) {
                     return x.enter_s < y.enter_s;
                   });
  a.critical_path = std::move(steps);

  // Congestion hotspots from cumulative per-link counter series.
  if (timeseries != nullptr) {
    for (const auto& s : timeseries->series) {
      if (s.name.rfind("net.link.", 0) != 0) continue;
      if (s.values.empty() || s.values.back() <= 0.0) continue;
      Hotspot h;
      h.metric = s.name;
      for (const auto& [k, v] : s.labels)
        if (k == "link") h.link = v;
      h.total = s.values.back();
      double prev_t = 0.0;
      double prev_v = 0.0;
      for (std::size_t i = 0; i < s.values.size(); ++i) {
        const double dt = timeseries->times_s[i] - prev_t;
        const double rate = dt > 0.0 ? (s.values[i] - prev_v) / dt : 0.0;
        if (rate > h.peak_rate_per_s) {
          h.peak_rate_per_s = rate;
          h.peak_at_s = timeseries->times_s[i];
        }
        prev_t = timeseries->times_s[i];
        prev_v = s.values[i];
      }
      a.hotspots.push_back(std::move(h));
    }
    std::stable_sort(a.hotspots.begin(), a.hotspots.end(),
                     [](const Hotspot& x, const Hotspot& y) {
                       return x.total > y.total;
                     });
    if (a.hotspots.size() > options.top) a.hotspots.resize(options.top);
  }
  return a;
}

std::string to_json(const Analysis& a) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", kAnalysisSchemaName);
  w.field("schema_version", a.schema_version);
  w.field("tool", a.tool);
  w.field("tool_version", a.tool_version);
  w.field("seed", a.seed);
  w.field("ranks", a.ranks);
  w.field("records", static_cast<std::uint64_t>(a.records));
  w.field("makespan_s", a.makespan_s);
  w.field("total_attributed_wait_s", a.total_attributed_wait_s);

  w.key("rank_activity").begin_array();
  for (const auto& r : a.rank_activity) {
    w.begin_object();
    w.field("rank", r.rank);
    w.field("compute_s", r.compute_s);
    w.field("collective_s", r.collective_s);
    w.field("p2p_s", r.p2p_s);
    w.field("wait_s", r.wait_s);
    w.end_object();
  }
  w.end_array();

  w.key("collectives").begin_array();
  for (const auto& c : a.collectives) {
    w.begin_object();
    w.field("label", c.label);
    w.field("instances", static_cast<std::uint64_t>(c.instances));
    w.field("delayed", static_cast<std::uint64_t>(c.delayed));
    w.field("median_duration_s", c.median_duration_s);
    w.field("arrival_wait_s", c.arrival_wait_s);
    w.end_object();
  }
  w.end_array();

  w.key("stragglers").begin_array();
  for (const auto& s : a.stragglers) {
    w.begin_object();
    w.field("rank", s.rank);
    w.field("instances_late", static_cast<std::uint64_t>(s.instances_late));
    w.field("attributed_wait_s", s.attributed_wait_s);
    w.field("share", s.share);
    w.key("by_label").begin_object();
    for (const auto& [label, seconds] : s.by_label) w.field(label, seconds);
    w.end_object();
    w.end_object();
  }
  w.end_array();

  w.key("critical_path").begin_array();
  for (const auto& step : a.critical_path) {
    w.begin_object();
    w.field("t_s", step.enter_s);
    w.field("label", step.label);
    w.field("instance", static_cast<std::uint64_t>(step.instance));
    w.field("rank", step.rank);
    w.field("lag_s", step.lag_s);
    w.end_object();
  }
  w.end_array();

  w.key("hotspots").begin_array();
  for (const auto& h : a.hotspots) {
    w.begin_object();
    w.field("link", h.link);
    w.field("metric", h.metric);
    w.field("total", h.total);
    w.field("peak_rate_per_s", h.peak_rate_per_s);
    w.field("peak_at_s", h.peak_at_s);
    w.end_object();
  }
  w.end_array();

  w.key("faults").begin_array();
  for (const auto& f : a.faults) {
    w.begin_object();
    w.field("rank", f.rank);
    w.field("t_s", f.at_s);
    w.field("label", f.label);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

namespace {

std::string seconds(double s) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4) << s << " s";
  return os.str();
}

std::string percent(double fraction) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << fraction * 100.0 << "%";
  return os.str();
}

}  // namespace

std::string render_analysis(const Analysis& a) {
  std::ostringstream os;
  os << "timeline analysis — " << a.ranks << " rank(s), " << a.records
     << " record(s), makespan " << seconds(a.makespan_s) << "\n";
  os << "  tool " << a.tool_version << ", seed " << a.seed << "\n\n";

  os << "collectives:\n";
  if (a.collectives.empty()) {
    os << "  (no collective records in trace)\n";
  } else {
    os << "  " << std::left << std::setw(20) << "label" << std::right
       << std::setw(10) << "instances" << std::setw(9) << "delayed"
       << std::setw(13) << "median" << std::setw(16) << "arrival wait"
       << "\n";
    for (const auto& c : a.collectives) {
      os << "  " << std::left << std::setw(20) << c.label << std::right
         << std::setw(10) << c.instances << std::setw(9) << c.delayed
         << std::setw(13) << seconds(c.median_duration_s) << std::setw(16)
         << seconds(c.arrival_wait_s) << "\n";
    }
  }

  os << "\nstragglers (consistently late into collectives):\n";
  if (a.stragglers.empty()) {
    os << "  none detected\n";
  } else {
    for (const auto& s : a.stragglers) {
      os << "  rank " << s.rank << ": " << s.instances_late
         << " late entr" << (s.instances_late == 1 ? "y" : "ies") << ", "
         << seconds(s.attributed_wait_s) << " attributed wait ("
         << percent(s.share) << " of total)";
      if (!s.by_label.empty()) {
        os << " — worst: " << s.by_label.front().first << " "
           << seconds(s.by_label.front().second);
      }
      os << "\n";
    }
  }

  os << "\ncritical path (each collective instance waits for its last "
        "arrival):\n";
  if (a.critical_path.empty()) {
    os << "  no synchronization lag found\n";
  } else {
    // The artifact keeps every step; the report shows the dozen worst,
    // in chronological order.
    std::vector<const CriticalStep*> shown;
    for (const auto& step : a.critical_path) shown.push_back(&step);
    std::stable_sort(shown.begin(), shown.end(),
                     [](const CriticalStep* x, const CriticalStep* y) {
                       return x->lag_s > y->lag_s;
                     });
    if (shown.size() > 12) shown.resize(12);
    std::stable_sort(shown.begin(), shown.end(),
                     [](const CriticalStep* x, const CriticalStep* y) {
                       return x->enter_s < y->enter_s;
                     });
    for (const CriticalStep* step : shown) {
      os << "  t=" << seconds(step->enter_s) << "  " << step->label << "#"
         << step->instance << " gated by rank " << step->rank << " (lag "
         << seconds(step->lag_s) << ")\n";
    }
    if (a.critical_path.size() > shown.size()) {
      os << "  … " << (a.critical_path.size() - shown.size())
         << " smaller step(s) in the JSON artifact\n";
    }
  }

  os << "\ncongestion hotspots:\n";
  if (a.hotspots.empty()) {
    os << "  none (no time series, or no per-link counters moved)\n";
  } else {
    for (const auto& h : a.hotspots) {
      os << "  " << h.link << "  " << h.metric << " total "
         << static_cast<std::uint64_t>(h.total) << ", peak "
         << std::fixed << std::setprecision(1) << h.peak_rate_per_s
         << "/s at t=" << seconds(h.peak_at_s) << "\n";
    }
  }

  if (!a.faults.empty()) {
    os << "\ninjected faults seen in trace:\n";
    for (const auto& f : a.faults) {
      os << "  t=" << seconds(f.at_s) << "  rank " << f.rank << "  "
         << f.label << "\n";
    }
  }
  return os.str();
}

}  // namespace mb::obs
