// Automatic timeline analysis — the measurement half of the advisor loop.
//
// The paper's methodology is reading per-rank timelines by eye in
// Paraver (Fig. 4: delayed collectives; Fig. 5: a slowed node). This
// module automates that reading: given a trace (and optionally a
// metrics time series) it extracts
//
//   * per-collective statistics — instances, delayed count (the Fig. 4
//     classifier), and the total wait caused by arrival spread;
//   * straggler detection with wait attribution — for every collective
//     instance, ranks arriving late (relative to the median arrival)
//     are charged the wait they induced in everyone else, generalizing
//     "which node was slow" from Fig. 5;
//   * the critical path through the DES timeline — each collective is a
//     synchronization point gated by its last-arriving rank; the
//     chronological gate sequence with arrival lags is the path a
//     speedup would have to shorten;
//   * congestion hotspots — per-link counter series from the time
//     series, ranked by total and peak rate.
//
// The result serializes as a versioned mb-analysis JSON artifact and
// renders as a human-readable report (mbctl analyze).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/timeseries.h"
#include "trace/trace.h"

namespace mb::obs {

inline constexpr std::string_view kAnalysisSchemaName = "mb-analysis";
inline constexpr int kAnalysisSchemaVersion = 1;

struct AnalysisOptions {
  /// Fig. 4 delayed-instance threshold (duration > factor x median).
  double delay_factor = 2.0;
  /// A rank is *late* into an instance when its arrival lag behind the
  /// median arrival exceeds this fraction of the instance's worst lag.
  double late_fraction = 0.5;
  /// Straggler gate: minimum share of the total attributed wait…
  double straggler_min_share = 0.2;
  /// …and minimum number of late entries (one bad instance is noise).
  std::size_t straggler_min_instances = 2;
  /// List caps (rank activity, hotspots).
  std::size_t top = 8;
  /// Critical-path steps kept in the artifact (largest lags win).
  std::size_t max_critical_steps = 256;
};

/// Where one rank's time went, by event kind.
struct RankActivity {
  std::uint32_t rank = 0;
  double compute_s = 0.0;
  double collective_s = 0.0;
  double p2p_s = 0.0;
  double wait_s = 0.0;
};

struct CollectiveStats {
  std::string label;
  std::size_t instances = 0;
  std::size_t delayed = 0;  ///< Fig. 4 classifier at delay_factor
  double median_duration_s = 0.0;
  /// Sum over instances of sum over ranks of (last arrival - own
  /// arrival): the wait created by desynchronized entry.
  double arrival_wait_s = 0.0;
};

struct Straggler {
  std::uint32_t rank = 0;
  std::size_t instances_late = 0;
  double attributed_wait_s = 0.0;
  double share = 0.0;  ///< of the run's total attributed wait
  /// Attribution split by collective label, descending.
  std::vector<std::pair<std::string, double>> by_label;
};

/// One synchronization point on the critical path: the i-th instance of
/// `label` could not complete before `rank` arrived at `enter_s`.
struct CriticalStep {
  double enter_s = 0.0;  ///< last arrival (the gating moment)
  std::string label;
  std::size_t instance = 0;
  std::uint32_t rank = 0;  ///< last-arriving rank
  double lag_s = 0.0;      ///< last arrival - median arrival
};

struct Hotspot {
  std::string link;    ///< "src->dst" from the series labels
  std::string metric;  ///< e.g. "net.link.retransmits"
  double total = 0.0;  ///< final cumulative value
  double peak_rate_per_s = 0.0;
  double peak_at_s = 0.0;
};

struct FaultMark {
  std::uint32_t rank = 0;
  double at_s = 0.0;
  std::string label;
};

struct Analysis {
  int schema_version = kAnalysisSchemaVersion;
  std::string tool = "montblanc";
  std::string tool_version;
  std::uint64_t seed = 0;
  std::uint32_t ranks = 0;
  std::size_t records = 0;
  double makespan_s = 0.0;
  double total_attributed_wait_s = 0.0;
  std::vector<RankActivity> rank_activity;  ///< busiest waiters first
  std::vector<CollectiveStats> collectives;  ///< label order
  std::vector<Straggler> stragglers;         ///< attributed wait, desc
  std::vector<CriticalStep> critical_path;   ///< chronological
  std::vector<Hotspot> hotspots;             ///< total, desc
  std::vector<FaultMark> faults;             ///< chronological
};

/// Runs every analysis over `trace`; `timeseries` (may be null) feeds
/// the congestion-hotspot pass. Provenance, when the trace carries it,
/// lands in tool_version/seed (callers may overwrite otherwise).
Analysis analyze_timeline(const trace::Trace& trace,
                          const TimeSeries* timeseries,
                          const AnalysisOptions& options = {});

std::string to_json(const Analysis& analysis);

/// Human-readable report (the `mbctl analyze` stdout).
std::string render_analysis(const Analysis& analysis);

}  // namespace mb::obs
