#include "obs/chrome_trace.h"

#include <map>
#include <ostream>
#include <string>

#include "support/check.h"
#include "support/version.h"

namespace mb::obs {

using support::JsonWriter;

namespace {

constexpr int kClusterPid = 0;
constexpr int kProfilerPid = 1;

void write_thread_name(JsonWriter& w, int pid, std::uint32_t tid,
                       const std::string& name) {
  w.begin_object();
  w.field("ph", "M");
  w.field("name", "thread_name");
  w.field("pid", pid);
  w.field("tid", tid);
  w.key("args").begin_object();
  w.field("name", name);
  w.end_object();
  w.end_object();
}

void write_process_name(JsonWriter& w, int pid, const std::string& name) {
  w.begin_object();
  w.field("ph", "M");
  w.field("name", "process_name");
  w.field("pid", pid);
  w.key("args").begin_object();
  w.field("name", name);
  w.end_object();
  w.end_object();
}

/// Lays the aggregated span tree out sequentially: each span occupies
/// [cursor, cursor + total_s] inside its parent.
double write_span_events(JsonWriter& w, const SpanNode& node,
                         double cursor_us) {
  for (const auto& c : node.children) {
    w.begin_object();
    w.field("ph", "X");
    w.field("name", c.name);
    w.field("cat", "span");
    w.field("pid", kProfilerPid);
    w.field("tid", 0);
    w.field("ts", cursor_us);
    w.field("dur", c.total_s * 1e6);
    w.key("args").begin_object();
    w.field("calls", c.calls);
    for (const auto& [key, delta] : c.counter_deltas) w.field(key, delta);
    w.end_object();
    w.end_object();
    write_span_events(w, c, cursor_us);
    cursor_us += c.total_s * 1e6;
  }
  return cursor_us;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const trace::Trace& trace,
                        const ChromeTraceOptions& options) {
  // Fig. 4 classification, per collective label: occurrence index i of a
  // rank belongs to instance i, and an instance (or a single rank within
  // it) is delayed when it exceeds delay_factor x the label's median.
  std::map<std::string, trace::CollectiveReport> reports;
  for (const auto& r : trace.records()) {
    if (r.kind == trace::EventKind::kCollective && !reports.count(r.label))
      reports.emplace(r.label, trace::analyze_collectives(
                                   trace, r.label, options.delay_factor));
  }
  // Occurrence counters: (label, rank) -> next instance index.
  std::map<std::pair<std::string, std::uint32_t>, std::size_t> occurrence;

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();

  write_process_name(w, kClusterPid, "cluster");
  for (std::uint32_t r = 0; r < trace.ranks(); ++r)
    write_thread_name(w, kClusterPid, r, "rank " + std::to_string(r));

  for (const auto& rec : trace.records()) {
    if (rec.kind == trace::EventKind::kFault) {
      // Injected faults are global instant markers, not rank work: the
      // viewer draws them as vertical lines across every track.
      w.begin_object();
      w.field("ph", "i");
      w.field("name", rec.label);
      w.field("cat", "fault");
      w.field("pid", kClusterPid);
      w.field("tid", rec.rank);
      w.field("ts", rec.t0 * 1e6);
      w.field("s", "g");
      w.field("cname", "terrible");
      w.end_object();
      continue;
    }
    w.begin_object();
    w.field("ph", "X");
    w.field("name", rec.label.empty()
                        ? std::string(trace::event_kind_name(rec.kind))
                        : rec.label);
    w.field("cat", trace::event_kind_name(rec.kind));
    w.field("pid", kClusterPid);
    w.field("tid", rec.rank);
    w.field("ts", rec.t0 * 1e6);
    w.field("dur", rec.duration() * 1e6);
    w.key("args").begin_object();
    if (rec.bytes > 0) w.field("bytes", rec.bytes);
    if (rec.kind == trace::EventKind::kCollective) {
      const auto& report = reports.at(rec.label);
      const std::size_t index = occurrence[{rec.label, rec.rank}]++;
      w.field("instance", static_cast<std::uint64_t>(index));
      const bool delayed = index < report.instances.size() &&
                           report.instances[index].delayed;
      w.field("delayed", delayed);
      if (delayed) {
        // Was this rank itself slow, or just held back by slower peers?
        w.field("rank_slow",
                rec.duration() >
                    options.delay_factor * report.median_duration);
        // The viewer colors by cname; flagged instances stand out.
        w.end_object();
        w.field("cname", "terrible");
        w.end_object();
        continue;
      }
    }
    w.end_object();
    w.end_object();
  }

  if (options.spans != nullptr && !options.spans->children.empty()) {
    write_process_name(w, kProfilerPid, "profiler (aggregated)");
    write_thread_name(w, kProfilerPid, 0, "spans");
    write_span_events(w, *options.spans, 0.0);
  }

  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  w.field("tool", "montblanc");
  // A trace carrying provenance knows which binary and seed produced it
  // (possibly a different build than the one exporting); fall back to
  // this binary's version otherwise.
  w.field("tool_version", trace.has_provenance()
                              ? trace.tool_version()
                              : std::string(support::version()));
  if (trace.has_provenance()) w.field("seed", trace.seed());
  w.end_object();
  w.end_object();
  os << w.str();
}

}  // namespace mb::obs
