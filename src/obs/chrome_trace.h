// Chrome trace-event export (chrome://tracing / Perfetto).
//
// The third observability pillar: the Paraver-like text dump is grep-able
// but not explorable; the Chrome trace-event JSON format gives the same
// cluster timeline an interactive viewer for free. One track (tid) per
// rank, complete ("ph":"X") events in microseconds, and alltoallv-style
// delayed collective instances — the paper's Fig. 4 finding — flagged in
// the event args so they can be searched and highlighted in the UI.
//
// Optionally appends the profiler's span hierarchy as a second process
// track. Aggregated spans have no absolute timestamps, so they are laid
// out sequentially inside their parent — a flame-graph rendering of where
// the tool itself spent its time.
#pragma once

#include <iosfwd>

#include "obs/profiler.h"
#include "trace/trace.h"

namespace mb::obs {

struct ChromeTraceOptions {
  /// A collective instance is flagged delayed when its duration exceeds
  /// `delay_factor` x the median for its label (trace::analyze_collectives).
  double delay_factor = 2.0;
  /// When non-null, the profiler hierarchy is appended as its own
  /// process track ("profiler (aggregated)").
  const SpanNode* spans = nullptr;
};

/// Writes the complete document: {"traceEvents": [...], ...}. The output
/// parses with support::parse_json and loads in chrome://tracing.
void write_chrome_trace(std::ostream& os, const trace::Trace& trace,
                        const ChromeTraceOptions& options = {});

}  // namespace mb::obs
