#include "obs/metrics.h"

#include <algorithm>

#include "support/check.h"

namespace mb::obs {

using support::check;
using support::JsonValue;
using support::JsonWriter;

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size(), 0) {
  check(!bounds_.empty(), "Histogram", "need at least one bucket bound");
  check(std::is_sorted(bounds_.begin(), bounds_.end()) &&
            std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                bounds_.end(),
        "Histogram", "bucket bounds must be strictly increasing");
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  if (it == bounds_.end()) {
    ++overflow_;
  } else {
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  }
  ++count_;
  sum_ += v;
}

std::string MetricSample::key() const {
  std::string k = name;
  if (!labels.empty()) {
    k += '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) k += ',';
      k += labels[i].first + '=' + labels[i].second;
    }
    k += '}';
  }
  return k;
}

std::string_view metric_type_name(MetricSample::Type t) {
  switch (t) {
    case MetricSample::Type::kCounter: return "counter";
    case MetricSample::Type::kGauge: return "gauge";
    case MetricSample::Type::kHistogram: return "histogram";
  }
  return "?";
}

namespace {

MetricSample::Type parse_metric_type(std::string_view name) {
  if (name == "counter") return MetricSample::Type::kCounter;
  if (name == "gauge") return MetricSample::Type::kGauge;
  if (name == "histogram") return MetricSample::Type::kHistogram;
  support::fail("parse_metric_type",
                "unknown metric type '" + std::string(name) + "'");
}

Labels normalize(Labels labels) {
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 1; i < labels.size(); ++i)
    check(labels[i - 1].first != labels[i].first, "Registry",
          "duplicate label key '" + labels[i].first + "'");
  return labels;
}

}  // namespace

Registry::Series* Registry::find(std::string_view name,
                                 const Labels& labels) {
  for (auto& s : series_)
    if (s.name == name && s.labels == labels) return &s;
  return nullptr;
}

Counter& Registry::counter(std::string_view name, Labels labels) {
  labels = normalize(std::move(labels));
  if (Series* s = find(name, labels)) {
    check(s->type == MetricSample::Type::kCounter, "Registry::counter",
          "series '" + std::string(name) + "' exists with another type");
    return *s->counter;
  }
  Series s;
  s.type = MetricSample::Type::kCounter;
  s.name = std::string(name);
  s.labels = std::move(labels);
  s.counter = std::make_unique<Counter>();
  counters_.push_back(s.counter.get());
  counter_series_.push_back(series_.size());
  series_.push_back(std::move(s));
  return *series_.back().counter;
}

Gauge& Registry::gauge(std::string_view name, Labels labels) {
  labels = normalize(std::move(labels));
  if (Series* s = find(name, labels)) {
    check(s->type == MetricSample::Type::kGauge, "Registry::gauge",
          "series '" + std::string(name) + "' exists with another type");
    return *s->gauge;
  }
  Series s;
  s.type = MetricSample::Type::kGauge;
  s.name = std::string(name);
  s.labels = std::move(labels);
  s.gauge = std::make_unique<Gauge>();
  series_.push_back(std::move(s));
  return *series_.back().gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds, Labels labels) {
  labels = normalize(std::move(labels));
  if (Series* s = find(name, labels)) {
    check(s->type == MetricSample::Type::kHistogram, "Registry::histogram",
          "series '" + std::string(name) + "' exists with another type");
    check(s->histogram->bounds() == bounds, "Registry::histogram",
          "series '" + std::string(name) +
              "' exists with different bucket bounds");
    return *s->histogram;
  }
  Series s;
  s.type = MetricSample::Type::kHistogram;
  s.name = std::string(name);
  s.labels = std::move(labels);
  s.histogram = std::make_unique<Histogram>(std::move(bounds));
  series_.push_back(std::move(s));
  return *series_.back().histogram;
}

std::vector<MetricSample> Registry::snapshot() const {
  std::vector<MetricSample> out;
  out.reserve(series_.size());
  for (const auto& s : series_) {
    MetricSample m;
    m.name = s.name;
    m.type = s.type;
    m.labels = s.labels;
    switch (s.type) {
      case MetricSample::Type::kCounter:
        m.value = s.counter->value();
        break;
      case MetricSample::Type::kGauge:
        m.value = s.gauge->value();
        break;
      case MetricSample::Type::kHistogram:
        m.value = s.histogram->sum();
        m.bounds = s.histogram->bounds();
        m.counts = s.histogram->counts();
        m.overflow = s.histogram->overflow();
        m.count = s.histogram->count();
        break;
    }
    out.push_back(std::move(m));
  }
  return out;
}

double Registry::counter_value(std::size_t i) const {
  check(i < counters_.size(), "Registry::counter_value", "index out of range");
  return counters_[i]->value();
}

std::string Registry::counter_key(std::size_t i) const {
  check(i < counter_series_.size(), "Registry::counter_key",
        "index out of range");
  const Series& s = series_[counter_series_[i]];
  MetricSample m;
  m.name = s.name;
  m.labels = s.labels;
  return m.key();
}

void Registry::reset() {
  for (auto& s : series_) {
    switch (s.type) {
      case MetricSample::Type::kCounter:
        *s.counter = Counter();
        break;
      case MetricSample::Type::kGauge:
        *s.gauge = Gauge();
        break;
      case MetricSample::Type::kHistogram:
        *s.histogram = Histogram(s.histogram->bounds());
        break;
    }
  }
}

void Registry::clear() {
  series_.clear();
  counters_.clear();
  counter_series_.clear();
}

Registry& metrics() {
  static Registry instance;
  return instance;
}

void write_metrics_json(JsonWriter& w,
                        const std::vector<MetricSample>& samples) {
  w.begin_array();
  for (const auto& m : samples) {
    w.begin_object();
    w.field("name", m.name);
    w.field("type", metric_type_name(m.type));
    if (!m.labels.empty()) {
      w.key("labels").begin_object();
      for (const auto& [k, v] : m.labels) w.field(k, v);
      w.end_object();
    }
    if (m.type == MetricSample::Type::kHistogram) {
      w.key("le").begin_array();
      for (double b : m.bounds) w.value(b);
      w.end_array();
      w.key("counts").begin_array();
      for (std::uint64_t c : m.counts) w.value(c);
      w.end_array();
      w.field("overflow", m.overflow);
      w.field("count", m.count);
      w.field("sum", m.value);
    } else {
      w.field("value", m.value);
    }
    w.end_object();
  }
  w.end_array();
}

std::vector<MetricSample> parse_metrics_json(const JsonValue& array) {
  std::vector<MetricSample> out;
  for (const JsonValue& v : array.as_array()) {
    MetricSample m;
    m.name = v.at("name").as_string();
    m.type = parse_metric_type(v.at("type").as_string());
    if (const JsonValue* labels = v.find("labels")) {
      for (const auto& [k, lv] : labels->members())
        m.labels.emplace_back(k, lv.as_string());
    }
    if (m.type == MetricSample::Type::kHistogram) {
      for (const JsonValue& b : v.at("le").as_array())
        m.bounds.push_back(b.as_number());
      for (const JsonValue& c : v.at("counts").as_array())
        m.counts.push_back(
            static_cast<std::uint64_t>(c.as_number()));
      check(m.bounds.size() == m.counts.size(), "parse_metrics_json",
            "histogram 'le' and 'counts' lengths differ");
      m.overflow = static_cast<std::uint64_t>(v.at("overflow").as_number());
      m.count = static_cast<std::uint64_t>(v.at("count").as_number());
      m.value = v.at("sum").as_number();
    } else {
      m.value = v.at("value").as_number();
    }
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace mb::obs
