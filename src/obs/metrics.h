// Metrics registry: named, labeled counters / gauges / histograms.
//
// The paper's methodology (Sec. IV) is trace-then-explain: a slow run is
// only diagnosable if the layers underneath exported what they were doing.
// This registry is the cross-layer sink for such facts. Design goals, in
// order:
//  * cheap hot-path updates — instruments resolve a handle once (a map
//    lookup at setup time) and then increment through the handle, which is
//    a plain add on a member;
//  * stable, snapshotable state — registration order is preserved, and a
//    snapshot is a plain value (`MetricSample`) that serializes to JSON via
//    support/json and parses back;
//  * single-threaded semantics — like the simulator itself, the registry
//    is deliberately not thread-safe; determinism matters more here than
//    concurrency.
//
// Thread-safety contract (explicit, because the sharded engine runs
// worker threads): every Registry method, and every update through a
// Counter/Gauge/Histogram handle, must happen on one thread at a time —
// there is no internal locking. Under sim::ShardedEngine the runtime
// therefore updates rank-labeled instruments only from the shard that
// owns the rank, and everything global (registration, snapshot(),
// reset(), clear(), rollups, the time sampler) happens outside the run
// or on the serial engine. The process-wide metrics() registry inherits
// this contract; tests that need a pristine registry call
// reset_for_test() instead of relying on process isolation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/json.h"

namespace mb::obs {

/// Label set attached to a metric series, e.g. {{"rank","3"}}. Order is
/// normalized (sorted by key) so label order at the call site is
/// irrelevant to series identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing value (counts, bytes, accumulated seconds).
class Counter {
 public:
  void inc() { value_ += 1.0; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Last-write-wins value (depths, best-so-far, rollup snapshots).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram with Prometheus-style upper-bound semantics:
/// an observation lands in the first bucket whose bound is >= the value
/// (bounds are inclusive upper edges); larger values land in the implicit
/// overflow bucket.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket observation counts (same length as bounds()).
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// One metric series captured at a point in time — the unit of the JSON
/// snapshot embedded in profiles and bench reports.
struct MetricSample {
  enum class Type : std::uint8_t { kCounter, kGauge, kHistogram };

  std::string name;
  Type type = Type::kCounter;
  Labels labels;  ///< normalized (sorted by key)
  double value = 0.0;  ///< counter/gauge value; histogram sum
  // Histogram-only fields:
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t overflow = 0;
  std::uint64_t count = 0;

  /// "name{k=v,...}" — unique series key within a registry.
  std::string key() const;
};

std::string_view metric_type_name(MetricSample::Type t);

class Registry {
 public:
  /// Finds or creates the series; the returned reference stays valid for
  /// the registry's lifetime (including across clear(), which zeroes
  /// values but keeps instruments registered). Requesting an existing
  /// name+labels with a different metric type throws support::Error.
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  /// `bounds` must match on repeat lookups of an existing histogram.
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       Labels labels = {});

  std::size_t size() const { return series_.size(); }

  /// All series in registration order.
  std::vector<MetricSample> snapshot() const;

  /// Counter subset in registration order (span delta attribution).
  /// The index of a counter is stable for the registry's lifetime.
  std::size_t counter_count() const { return counters_.size(); }
  double counter_value(std::size_t i) const;
  std::string counter_key(std::size_t i) const;

  /// Zeroes every value; instruments and handles stay registered/valid.
  void reset();
  /// Drops every series (handles become dangling — setup-time only).
  void clear();
  /// Test fixtures only: returns the registry to its pristine state so a
  /// test can assert absolute values instead of before/after deltas.
  /// Equivalent to clear() — call it *before* constructing the objects
  /// under test; handles resolved earlier (by other tests in the same
  /// process) must not be used afterwards.
  void reset_for_test() { clear(); }

 private:
  struct Series {
    MetricSample::Type type;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series* find(std::string_view name, const Labels& labels);

  std::vector<Series> series_;           ///< registration order
  std::vector<Counter*> counters_;       ///< registration order, counters only
  std::vector<std::size_t> counter_series_;  ///< index into series_
};

/// The process-wide default registry all built-in instrumentation uses.
Registry& metrics();

/// Serializes samples as a JSON array (the "metrics" section of profile
/// and bench-report documents).
void write_metrics_json(support::JsonWriter& w,
                        const std::vector<MetricSample>& samples);

/// Parses a "metrics" JSON array written by write_metrics_json().
std::vector<MetricSample> parse_metrics_json(const support::JsonValue& array);

}  // namespace mb::obs
