#include "obs/profile.h"

#include <iomanip>
#include <sstream>

#include "support/check.h"
#include "support/version.h"

namespace mb::obs {

using support::check;
using support::JsonValue;
using support::JsonWriter;

Profile capture_profile(const Profiler& p, const Registry& r,
                        std::string_view tool, std::string_view command) {
  check(p.open_depth() == 0, "capture_profile",
        "cannot capture while spans are open");
  Profile profile;
  profile.tool = std::string(tool);
  profile.tool_version = std::string(support::version());
  profile.command = std::string(command);
  profile.spans = p.root();
  for (const auto& c : profile.spans.children)
    profile.total_wall_s += c.total_s;
  profile.metrics = r.snapshot();
  return profile;
}

std::string to_json(const Profile& profile) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", kProfileSchemaName);
  w.field("schema_version", profile.schema_version);
  w.field("tool", profile.tool);
  w.field("tool_version", profile.tool_version);
  w.field("command", profile.command);
  w.field("total_wall_s", profile.total_wall_s);
  w.key("spans");
  write_spans_json(w, profile.spans);
  w.key("metrics");
  write_metrics_json(w, profile.metrics);
  w.end_object();
  return w.str();
}

Profile profile_from_json(std::string_view text) {
  return profile_from_json(support::parse_json(text));
}

Profile profile_from_json(const JsonValue& doc) {
  check(doc.is_object(), "profile_from_json", "document is not an object");
  check(doc.at("schema").as_string() == kProfileSchemaName,
        "profile_from_json",
        "unknown schema '" + doc.at("schema").as_string() + "'");
  const int version = static_cast<int>(doc.at("schema_version").as_number());
  check(version == kProfileSchemaVersion, "profile_from_json",
        "unsupported schema version " + std::to_string(version));

  Profile profile;
  profile.schema_version = version;
  profile.tool = doc.at("tool").as_string();
  profile.tool_version = doc.at("tool_version").as_string();
  profile.command = doc.at("command").as_string();
  profile.total_wall_s = doc.at("total_wall_s").as_number();
  profile.spans = parse_spans_json(doc.at("spans"));
  profile.metrics = parse_metrics_json(doc.at("metrics"));
  return profile;
}

std::string render_profile(const Profile& profile,
                           const SpanRenderOptions& options) {
  std::ostringstream os;
  os << "=== " << profile.tool << " profile (" << profile.command << ", v"
     << profile.tool_version << ") ===\n\n"
     << render_span_summary(profile.spans, options);

  // Phase coverage: how much of each top-level span its children explain.
  // A well-instrumented command has phases summing to ~its whole wall time.
  for (const auto& top : profile.spans.children) {
    if (top.children.empty()) continue;
    double phase_total = 0.0;
    for (const auto& c : top.children) phase_total += c.total_s;
    const double pct =
        top.total_s > 0.0 ? 100.0 * phase_total / top.total_s : 100.0;
    os << "\nphase coverage: " << std::fixed << std::setprecision(1) << pct
       << "% of '" << top.name << "' wall time ("
       << std::setprecision(6) << phase_total << " s of " << top.total_s
       << " s)\n";
  }

  if (!profile.metrics.empty()) {
    os << "\nmetrics:\n";
    for (const auto& m : profile.metrics) {
      os << "  " << std::left << std::setw(44) << m.key() << " ";
      if (m.type == MetricSample::Type::kHistogram) {
        os << "count=" << m.count << " sum=" << std::setprecision(6)
           << m.value;
      } else {
        os << std::setprecision(6) << m.value;
      }
      os << "  (" << metric_type_name(m.type) << ")\n";
    }
  }
  return os.str();
}

}  // namespace mb::obs
