// The mb-profile JSON document: spans + metrics + build identity.
//
// What `mbctl --profile out.json` writes and `mbctl obs-report` reads: a
// self-contained, versioned snapshot of one command's execution — the span
// hierarchy from the profiler, the metrics-registry snapshot, and the tool
// version that produced it.
//
// Schema (version 1), informally:
//   {
//     "schema": "mb-profile", "schema_version": 1,
//     "tool": "mbctl", "tool_version": "1.0.0", "command": "fig4",
//     "total_wall_s": X,
//     "spans": [{"name":, "calls":, "total_s":, "counters": {k: delta},
//                "children": [...]}, ...],
//     "metrics": [...]  // see obs/metrics.h write_metrics_json()
//   }
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace mb::obs {

inline constexpr int kProfileSchemaVersion = 1;
inline constexpr std::string_view kProfileSchemaName = "mb-profile";

struct Profile {
  int schema_version = kProfileSchemaVersion;
  std::string tool;
  std::string tool_version;
  std::string command;  ///< the command line that produced this profile
  double total_wall_s = 0.0;  ///< sum of top-level span times
  SpanNode spans;  ///< virtual root; children are the top-level spans
  std::vector<MetricSample> metrics;
};

/// Captures the current state of `p` and `r` into a document.
Profile capture_profile(const Profiler& p, const Registry& r,
                        std::string_view tool, std::string_view command);

std::string to_json(const Profile& profile);
Profile profile_from_json(std::string_view text);
Profile profile_from_json(const support::JsonValue& doc);

/// Human-readable report: span summary, phase coverage (how much of the
/// total wall time the top level's children explain) and a metrics table.
/// `options` controls the span section (hotspot sort, --top cap).
std::string render_profile(const Profile& profile,
                           const SpanRenderOptions& options = {});

}  // namespace mb::obs
