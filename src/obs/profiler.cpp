#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <sstream>
#include <vector>

#include "support/check.h"

namespace mb::obs {

using support::check;
using support::JsonValue;
using support::JsonWriter;

double SpanNode::self_s() const {
  double child_total = 0.0;
  for (const auto& c : children) child_total += c.total_s;
  return total_s - child_total;
}

const SpanNode* SpanNode::child(std::string_view name) const {
  for (const auto& c : children)
    if (c.name == name) return &c;
  return nullptr;
}

void Profiler::set_enabled(bool on) {
  check(stack_.empty(), "Profiler::set_enabled",
        "cannot toggle while spans are open");
  enabled_ = on;
  owner_ = std::this_thread::get_id();
  if (on) reset();
}

void Profiler::reset() {
  check(stack_.empty(), "Profiler::reset", "cannot reset while spans are open");
  root_ = SpanNode{"(root)", 0, 0.0, {}, {}};
}

void Profiler::set_clock(std::function<double()> now_s) {
  clock_ = std::move(now_s);
}

double Profiler::now() const {
  if (clock_) return clock_();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Profiler::enter(std::string_view name) {
  if (!enabled_ || std::this_thread::get_id() != owner_) return;
  SpanNode* parent = stack_.empty() ? &root_ : stack_.back().node;
  SpanNode* node = nullptr;
  for (auto& c : parent->children)
    if (c.name == name) node = &c;
  if (node == nullptr) {
    // Growing the stack-top node's child list only moves *closed*
    // siblings; every open node lives in a vector that cannot grow while
    // it is open, so Frame::node pointers stay valid.
    parent->children.push_back(SpanNode{std::string(name), 0, 0.0, {}, {}});
    node = &parent->children.back();
  }
  Frame frame{node, now(), {}};
  if (registry_ != nullptr) {
    frame.counter_snapshot.reserve(registry_->counter_count());
    for (std::size_t i = 0; i < registry_->counter_count(); ++i)
      frame.counter_snapshot.push_back(registry_->counter_value(i));
  }
  stack_.push_back(std::move(frame));
}

void Profiler::exit() {
  if (!enabled_ || std::this_thread::get_id() != owner_) return;
  check(!stack_.empty(), "Profiler::exit", "no span is open");
  const Frame& frame = stack_.back();
  SpanNode* node = frame.node;
  node->calls += 1;
  node->total_s += now() - frame.t_enter;
  if (registry_ != nullptr) {
    for (std::size_t i = 0; i < registry_->counter_count(); ++i) {
      const double before =
          i < frame.counter_snapshot.size() ? frame.counter_snapshot[i] : 0.0;
      const double delta = registry_->counter_value(i) - before;
      if (delta == 0.0) continue;
      const std::string key = registry_->counter_key(i);
      bool merged = false;
      for (auto& [k, v] : node->counter_deltas) {
        if (k == key) {
          v += delta;
          merged = true;
          break;
        }
      }
      if (!merged) node->counter_deltas.emplace_back(key, delta);
    }
  }
  stack_.pop_back();
}

Profiler& profiler() {
  static Profiler instance(&metrics());
  return instance;
}

namespace {

/// Children in render order: by exclusive time descending when sorting,
/// capped at options.top (0 = all). Returns how many rows were elided.
std::size_t render_order(const SpanNode& node,
                         const SpanRenderOptions& options,
                         std::vector<const SpanNode*>& out) {
  out.clear();
  for (const auto& c : node.children) out.push_back(&c);
  if (options.sort_by_self) {
    std::stable_sort(out.begin(), out.end(),
                     [](const SpanNode* a, const SpanNode* b) {
                       return a->self_s() > b->self_s();
                     });
  }
  const std::size_t elided =
      options.top > 0 && out.size() > options.top ? out.size() - options.top
                                                  : 0;
  out.resize(out.size() - elided);
  return elided;
}

void render_node(std::ostringstream& os, const SpanNode& node,
                 double parent_total, int depth,
                 const SpanRenderOptions& options) {
  const double pct =
      parent_total > 0.0 ? 100.0 * node.total_s / parent_total : 100.0;
  std::string label(static_cast<std::size_t>(depth) * 2, ' ');
  label += node.name;
  os << std::left << std::setw(40) << label << std::right << std::setw(8)
     << node.calls << std::setw(12) << std::fixed << std::setprecision(6)
     << node.total_s << std::setw(12) << node.self_s() << std::setw(8)
     << std::setprecision(1) << pct << "\n";
  for (const auto& [key, delta] : node.counter_deltas) {
    os << std::string(static_cast<std::size_t>(depth) * 2 + 2, ' ') << "+ "
       << key << " = " << std::setprecision(0) << delta << "\n";
  }
  std::vector<const SpanNode*> order;
  const std::size_t elided = render_order(node, options, order);
  for (const SpanNode* c : order)
    render_node(os, *c, node.total_s, depth + 1, options);
  if (elided > 0) {
    os << std::string(static_cast<std::size_t>(depth) * 2 + 2, ' ') << "… "
       << elided << " more span(s)\n";
  }
}

}  // namespace

std::string render_span_summary(const SpanNode& root,
                                const SpanRenderOptions& options) {
  std::ostringstream os;
  os << std::left << std::setw(40) << "span" << std::right << std::setw(8)
     << "calls" << std::setw(12) << "total s" << std::setw(12) << "self s"
     << std::setw(8) << "%par" << "\n";
  if (root.children.empty()) {
    os << "(no spans recorded)\n";
    return os.str();
  }
  double total = 0.0;
  for (const auto& c : root.children) total += c.total_s;
  std::vector<const SpanNode*> order;
  const std::size_t elided = render_order(root, options, order);
  for (const SpanNode* c : order) render_node(os, *c, total, 0, options);
  if (elided > 0) os << "… " << elided << " more span(s)\n";
  return os.str();
}

void write_spans_json(JsonWriter& w, const SpanNode& root) {
  w.begin_array();
  for (const auto& c : root.children) {
    w.begin_object();
    w.field("name", c.name);
    w.field("calls", c.calls);
    w.field("total_s", c.total_s);
    if (!c.counter_deltas.empty()) {
      w.key("counters").begin_object();
      for (const auto& [key, delta] : c.counter_deltas) w.field(key, delta);
      w.end_object();
    }
    w.key("children");
    write_spans_json(w, c);
    w.end_object();
  }
  w.end_array();
}

SpanNode parse_spans_json(const JsonValue& array) {
  SpanNode root{"(root)", 0, 0.0, {}, {}};
  for (const JsonValue& v : array.as_array()) {
    SpanNode node = parse_spans_json(v.at("children"));
    node.name = v.at("name").as_string();
    node.calls = static_cast<std::uint64_t>(v.at("calls").as_number());
    node.total_s = v.at("total_s").as_number();
    if (const JsonValue* counters = v.find("counters")) {
      for (const auto& [key, delta] : counters->members())
        node.counter_deltas.emplace_back(key, delta.as_number());
    }
    root.children.push_back(std::move(node));
  }
  return root;
}

}  // namespace mb::obs
