// Scoped-span wall-clock profiler.
//
// The second observability pillar: RAII spans form a call hierarchy with
// per-span wall time, call counts and the deltas of every registry counter
// that moved while the span was open — the paper's Paraver workflow
// ("where did the time go, and what was the hardware doing meanwhile")
// applied to this toolkit's own execution. Disabled by default; a disabled
// span construction is a single bool test, so instrumentation can stay in
// hot paths permanently.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "support/json.h"

namespace mb::obs {

/// One node of the span hierarchy. Sibling order is first-entry order;
/// re-entering a (parent, name) pair aggregates into the existing node.
struct SpanNode {
  std::string name;
  std::uint64_t calls = 0;
  double total_s = 0.0;  ///< wall time, summed over calls
  std::vector<SpanNode> children;
  /// Registry-counter movement while this span was open (aggregated over
  /// calls, series key -> delta; zero-delta counters are omitted).
  std::vector<std::pair<std::string, double>> counter_deltas;

  /// Time not attributed to any child.
  double self_s() const;
  /// Depth-first lookup of a direct child by name; nullptr when absent.
  const SpanNode* child(std::string_view name) const;
};

class Profiler {
 public:
  /// `registry` provides counter-delta attribution; may be null (no
  /// deltas). The global profiler() uses the global metrics() registry.
  explicit Profiler(Registry* registry = nullptr) : registry_(registry) {}

  /// Enabling resets previously collected spans and adopts the calling
  /// thread as the profiler's owner. Must not be toggled while spans are
  /// open.
  ///
  /// Like the metrics registry, the profiler is single-threaded by
  /// design; enter/exit from any other thread (e.g. a campaign worker
  /// running an instrumented Harness) are silently ignored rather than
  /// racing on the span stack — the campaign publishes aggregate
  /// campaign.* counters from the owner thread instead.
  void set_enabled(bool on);
  bool enabled() const { return enabled_; }

  /// Drops all collected spans (keeps the enabled flag).
  void reset();

  /// Replaces the wall-clock source (seconds, monotone) — tests inject a
  /// fake clock for exact time assertions. Null restores the real clock.
  void set_clock(std::function<double()> now_s);

  /// Explicit span boundaries; prefer ScopedSpan. enter/exit must nest.
  void enter(std::string_view name);
  void exit();

  std::size_t open_depth() const { return stack_.size(); }

  /// The virtual root containing all top-level spans. Only meaningful
  /// when no spans are open.
  const SpanNode& root() const { return root_; }

 private:
  struct Frame {
    SpanNode* node;
    double t_enter;
    std::vector<double> counter_snapshot;
  };

  double now() const;

  Registry* registry_;
  bool enabled_ = false;
  std::thread::id owner_ = std::this_thread::get_id();
  std::function<double()> clock_;
  SpanNode root_{"(root)", 0, 0.0, {}, {}};
  std::vector<Frame> stack_;
};

/// RAII span guard: enters on construction (when the profiler is enabled),
/// exits on destruction — including during exception unwinding, so a
/// throwing workload leaves a consistent hierarchy.
class ScopedSpan {
 public:
  ScopedSpan(Profiler& p, std::string_view name)
      : profiler_(p.enabled() ? &p : nullptr) {
    if (profiler_ != nullptr) profiler_->enter(name);
  }
  ~ScopedSpan() {
    if (profiler_ != nullptr) profiler_->exit();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Profiler* profiler_;
};

/// The process-wide default profiler (counter deltas from metrics()).
Profiler& profiler();

struct SpanRenderOptions {
  /// Sort siblings by exclusive (self) time, descending — the hotspots
  /// first. false preserves first-entered order (the historical layout).
  bool sort_by_self = true;
  /// Keep at most this many rows per level (0 = all); a trailing line
  /// counts what was elided.
  std::size_t top = 0;
};

/// Flame-style text summary: one indented row per span with calls, total,
/// self and percent-of-parent columns, plus counter-delta sublines.
std::string render_span_summary(const SpanNode& root,
                                const SpanRenderOptions& options = {});

/// Serializes the hierarchy (children of `root`) as a JSON array.
void write_spans_json(support::JsonWriter& w, const SpanNode& root);

/// Parses an array written by write_spans_json() back into a virtual root.
SpanNode parse_spans_json(const support::JsonValue& array);

}  // namespace mb::obs
