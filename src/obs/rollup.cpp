#include "obs/rollup.h"

#include <string>

#include "sim/sharded.h"

namespace mb::obs {

void publish_event_queue(Registry& registry, const sim::EventQueue& queue) {
  registry.gauge("sim.events_executed")
      .set(static_cast<double>(queue.executed()));
  registry.gauge("sim.events_scheduled")
      .set(static_cast<double>(queue.scheduled()));
  registry.gauge("sim.calendar_depth")
      .set(static_cast<double>(queue.pending()));
  registry.gauge("sim.calendar_max_depth")
      .set(static_cast<double>(queue.max_pending()));
}

void publish_scheduler(Registry& registry, const sim::Scheduler& sched) {
  const sim::SchedulerStats stats = sched.stats();
  registry.gauge("sim.events_executed")
      .set(static_cast<double>(stats.executed));
  registry.gauge("sim.events_scheduled")
      .set(static_cast<double>(stats.scheduled));
  registry.gauge("sim.calendar_depth")
      .set(static_cast<double>(stats.pending));
  registry.gauge("sim.calendar_max_depth")
      .set(static_cast<double>(stats.max_pending));
  if (const auto* sharded = dynamic_cast<const sim::ShardedEngine*>(&sched)) {
    registry.gauge("sim.shards").set(static_cast<double>(sharded->shards()));
    registry.gauge("sim.lookahead_s").set(sharded->lookahead());
    registry.gauge("sim.windows")
        .set(static_cast<double>(sharded->windows()));
  }
}

void publish_machine(Registry& registry, const sim::Machine& machine) {
  const std::string platform = machine.platform().name;
  const auto stats = machine.hierarchy().stats();
  for (std::size_t i = 0; i < stats.level.size(); ++i) {
    const cache::CacheStats& s = stats.level[i];
    std::string level_name = "L";
    level_name += std::to_string(i + 1);
    const Labels labels{{"level", std::move(level_name)},
                        {"platform", platform}};
    registry.gauge("cache.accesses", labels)
        .set(static_cast<double>(s.accesses));
    registry.gauge("cache.hits", labels).set(static_cast<double>(s.hits));
    registry.gauge("cache.misses", labels)
        .set(static_cast<double>(s.misses));
    registry.gauge("cache.evictions", labels)
        .set(static_cast<double>(s.evictions));
    registry.gauge("cache.writebacks", labels)
        .set(static_cast<double>(s.writebacks));
  }
  const Labels labels{{"platform", platform}};
  registry.gauge("cache.memory_accesses", labels)
      .set(static_cast<double>(stats.memory_accesses));
  registry.gauge("cache.memory_bytes", labels)
      .set(static_cast<double>(stats.memory_bytes));
  registry.gauge("cache.prefetches", labels)
      .set(static_cast<double>(stats.prefetches));
}

}  // namespace mb::obs
