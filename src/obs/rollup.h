// Rollups: surface existing per-subsystem statistics as registry metrics.
//
// The cache hierarchy and the DES engine already keep their own counters
// on the hot path (a design this module deliberately preserves — their
// inner loops stay free of registry lookups); these helpers publish those
// numbers into a Registry at measurement boundaries, so one snapshot
// carries the whole stack: spans, MPI traffic, cache behaviour and
// calendar-queue pressure side by side.
#pragma once

#include <string_view>

#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "sim/machine.h"
#include "sim/scheduler.h"

namespace mb::obs {

/// Publishes DES engine gauges: sim.events_executed, sim.events_scheduled,
/// sim.calendar_depth (pending now) and sim.calendar_max_depth.
void publish_event_queue(Registry& registry, const sim::EventQueue& queue);

/// Same gauges from any Scheduler's aggregate stats (summed over shards
/// for the parallel engine), plus sim.shards / sim.lookahead_s /
/// sim.windows when the scheduler is a ShardedEngine.
void publish_scheduler(Registry& registry, const sim::Scheduler& sched);

/// Publishes per-level cache gauges (cache.accesses / cache.hits /
/// cache.misses / cache.evictions / cache.writebacks, labeled
/// {level="L1"...}) plus cache.memory_accesses, cache.memory_bytes and
/// cache.prefetches, all labeled with the machine's platform name.
void publish_machine(Registry& registry, const sim::Machine& machine);

}  // namespace mb::obs
