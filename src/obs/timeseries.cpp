#include "obs/timeseries.h"

#include <algorithm>

#include "support/check.h"
#include "support/json.h"

namespace mb::obs {

using support::check;
using support::JsonValue;
using support::JsonWriter;

std::string to_json(const TimeSeries& ts) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", kTimeSeriesSchemaName);
  w.field("schema_version", ts.schema_version);
  w.field("tool", ts.tool);
  w.field("tool_version", ts.tool_version);
  w.field("seed", ts.seed);
  w.field("interval_s", ts.interval_s);
  w.field("samples", static_cast<std::uint64_t>(ts.times_s.size()));
  w.key("times_s").begin_array();
  for (const double t : ts.times_s) w.value(t);
  w.end_array();
  w.key("series").begin_array();
  for (const auto& s : ts.series) {
    w.begin_object();
    w.field("name", s.name);
    w.key("labels").begin_object();
    for (const auto& [k, v] : s.labels) w.field(k, v);
    w.end_object();
    w.key("values").begin_array();
    for (const double v : s.values) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

TimeSeries timeseries_from_json(std::string_view text) {
  const JsonValue doc = support::parse_json(text);
  check(doc.is_object(), "timeseries_from_json", "document is not an object");
  check(doc.at("schema").as_string() == kTimeSeriesSchemaName,
        "timeseries_from_json",
        "unknown schema '" + doc.at("schema").as_string() + "'");
  const int version = static_cast<int>(doc.at("schema_version").as_number());
  check(version == kTimeSeriesSchemaVersion, "timeseries_from_json",
        "unsupported schema version " + std::to_string(version));

  TimeSeries ts;
  ts.tool = doc.at("tool").as_string();
  ts.tool_version = doc.at("tool_version").as_string();
  ts.seed = static_cast<std::uint64_t>(doc.at("seed").as_number());
  ts.interval_s = doc.at("interval_s").as_number();
  for (const auto& t : doc.at("times_s").as_array())
    ts.times_s.push_back(t.as_number());
  for (const auto& entry : doc.at("series").as_array()) {
    Series s;
    s.name = entry.at("name").as_string();
    for (const auto& [k, v] : entry.at("labels").members())
      s.labels.emplace_back(k, v.as_string());
    for (const auto& v : entry.at("values").as_array())
      s.values.push_back(v.as_number());
    check(s.values.size() == ts.times_s.size(), "timeseries_from_json",
          "series '" + s.name + "' length does not match times_s");
    ts.series.push_back(std::move(s));
  }
  return ts;
}

void prune_series(TimeSeries& ts, std::string_view name_prefix,
                  std::size_t keep_top) {
  std::vector<std::size_t> matching;
  for (std::size_t i = 0; i < ts.series.size(); ++i) {
    const Series& s = ts.series[i];
    if (std::string_view(s.name).substr(0, name_prefix.size()) ==
        name_prefix)
      matching.push_back(i);
  }
  // Rank matches by final value, descending; stable so ties keep their
  // registration order.
  std::stable_sort(matching.begin(), matching.end(),
                   [&](std::size_t a, std::size_t b) {
                     const auto& va = ts.series[a].values;
                     const auto& vb = ts.series[b].values;
                     const double fa = va.empty() ? 0.0 : va.back();
                     const double fb = vb.empty() ? 0.0 : vb.back();
                     return fa > fb;
                   });
  std::vector<bool> drop(ts.series.size(), false);
  for (std::size_t m = 0; m < matching.size(); ++m) {
    const auto& values = ts.series[matching[m]].values;
    const double final_value = values.empty() ? 0.0 : values.back();
    if (m >= keep_top || final_value == 0.0) drop[matching[m]] = true;
  }
  std::vector<Series> kept;
  kept.reserve(ts.series.size());
  for (std::size_t i = 0; i < ts.series.size(); ++i)
    if (!drop[i]) kept.push_back(std::move(ts.series[i]));
  ts.series = std::move(kept);
}

void TimeSampler::add_probe(std::string name, Labels labels,
                            std::function<double()> probe) {
  check(!armed_, "TimeSampler", "register probes before arm()");
  check(static_cast<bool>(probe), "TimeSampler", "null probe");
  Probe p;
  p.name = std::move(name);
  p.labels = std::move(labels);
  p.fn = std::move(probe);
  probes_.push_back(std::move(p));
  Series s;
  s.name = probes_.back().name;
  s.labels = probes_.back().labels;
  data_.series.push_back(std::move(s));
}

void TimeSampler::arm(sim::EventQueue& queue, double interval_s,
                      std::size_t max_samples) {
  check(!armed_, "TimeSampler", "arm() called twice");
  check(interval_s > 0.0, "TimeSampler", "interval must be positive");
  check(max_samples > 0, "TimeSampler", "max_samples must be positive");
  armed_ = true;
  max_samples_ = max_samples;
  data_.interval_s = interval_s;
  queue.schedule_in(interval_s,
                    [this, &queue, interval_s] { step(queue, interval_s); });
}

void TimeSampler::step(sim::EventQueue& queue, double interval_s) {
  data_.times_s.push_back(queue.now());
  for (std::size_t i = 0; i < probes_.size(); ++i)
    data_.series[i].values.push_back(probes_[i].fn());
  // The executing event is already popped, so pending() == 0 means the
  // run has drained: keep this final sample and let the loop terminate
  // instead of rescheduling forever.
  if (queue.pending() == 0 || data_.times_s.size() >= max_samples_) return;
  queue.schedule_in(interval_s,
                    [this, &queue, interval_s] { step(queue, interval_s); });
}

TimeSeries TimeSampler::take() { return std::move(data_); }

}  // namespace mb::obs
