// Metrics time series — sim-time-driven sampling of live gauges.
//
// The registry (obs/metrics.h) snapshots the *final* state of a run;
// Fig. 4/5-style questions ("when did the switch start dropping?",
// "what was queue pressure while rank 7 straggled?") need the trajectory.
// TimeSampler rides the DES itself: a self-rescheduling event samples a
// set of probes every `interval_s` of *simulated* time, so the sampling
// grid is deterministic — identical runs produce byte-identical
// mb-timeseries artifacts, and sampling adds no wall-clock timers.
//
// Serial engine only (like fault injection): the sampler reads global
// state — queue depth, link counters — which has no single consistent
// owner under the sharded engine.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/event_queue.h"

namespace mb::obs {

inline constexpr std::string_view kTimeSeriesSchemaName = "mb-timeseries";
inline constexpr int kTimeSeriesSchemaVersion = 1;

/// One sampled quantity: a value per entry of TimeSeries::times_s.
struct Series {
  std::string name;
  Labels labels;
  std::vector<double> values;
};

struct TimeSeries {
  int schema_version = kTimeSeriesSchemaVersion;
  std::string tool = "montblanc";
  std::string tool_version;
  std::uint64_t seed = 0;
  double interval_s = 0.0;
  std::vector<double> times_s;  ///< simulated time of each sample
  std::vector<Series> series;   ///< columns, all sized like times_s

  bool empty() const { return times_s.empty(); }
};

std::string to_json(const TimeSeries& ts);
TimeSeries timeseries_from_json(std::string_view text);

/// Removes every series whose name starts with `name_prefix` except the
/// `keep_top` with the largest final value (all-zero series always go).
/// Bounds per-link artifacts: a 10k-rank tree has thousands of links but
/// only the congested handful carry signal. Survivor order: descending
/// final value, then original order — deterministic.
void prune_series(TimeSeries& ts, std::string_view name_prefix,
                  std::size_t keep_top);

/// Samples registered probes on a fixed simulated-time grid.
///
///   TimeSampler sampler;
///   sampler.add_probe("sim.pending_events",
///                     [&] { return double(queue.pending()); });
///   sampler.arm(queue, 0.5);
///   ... run ...
///   result.timeseries = sampler.take();
///
/// The sampler stops itself: when its own event finds the queue
/// otherwise empty the run has drained (that final sample is kept), so
/// it never holds the event loop open. `max_samples` bounds memory on
/// very long runs.
class TimeSampler {
 public:
  void add_probe(std::string name, Labels labels,
                 std::function<double()> probe);
  void add_probe(std::string name, std::function<double()> probe) {
    add_probe(std::move(name), Labels{}, std::move(probe));
  }

  /// Schedules the first sample at now() + interval_s. Call after the
  /// probes are registered and before the run. One arm() per sampler.
  void arm(sim::EventQueue& queue, double interval_s,
           std::size_t max_samples = 4096);

  std::size_t samples() const { return data_.times_s.size(); }

  /// Moves the collected series out (tool_version/seed are left to the
  /// caller — the sampler does not know the run's provenance).
  TimeSeries take();

 private:
  void step(sim::EventQueue& queue, double interval_s);

  struct Probe {
    std::string name;
    Labels labels;
    std::function<double()> fn;
  };
  std::vector<Probe> probes_;
  TimeSeries data_;
  std::size_t max_samples_ = 0;
  bool armed_ = false;
};

}  // namespace mb::obs
