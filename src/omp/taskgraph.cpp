#include "omp/taskgraph.h"

#include <algorithm>
#include <queue>

#include "support/check.h"
#include "support/rng.h"

namespace mb::omp {

TaskId TaskGraph::add(double seconds, std::vector<TaskId> deps,
                      std::string label) {
  support::check(seconds >= 0.0, "TaskGraph::add",
                 "task duration must be non-negative");
  const auto id = static_cast<TaskId>(tasks_.size());
  for (const TaskId d : deps)
    support::check(d < id, "TaskGraph::add",
                   "dependencies must reference earlier tasks");
  tasks_.push_back(Task{seconds, std::move(label), std::move(deps)});
  return id;
}

double TaskGraph::total_work() const {
  double acc = 0.0;
  for (const auto& t : tasks_) acc += t.seconds;
  return acc;
}

namespace {

/// Downward rank: task duration plus the longest chain through successors.
std::vector<double> upward_ranks(const TaskGraph& g) {
  const std::size_t n = g.size();
  std::vector<std::vector<TaskId>> succ(n);
  for (TaskId t = 0; t < n; ++t)
    for (const TaskId d : g.task(t).deps) succ[d].push_back(t);
  std::vector<double> rank(n, 0.0);
  // Tasks are topologically ordered by construction: walk backwards.
  for (TaskId t = static_cast<TaskId>(n); t-- > 0;) {
    double best = 0.0;
    for (const TaskId s : succ[t]) best = std::max(best, rank[s]);
    rank[t] = g.task(t).seconds + best;
  }
  return rank;
}

}  // namespace

double TaskGraph::critical_path() const {
  if (tasks_.empty()) return 0.0;
  const auto ranks = upward_ranks(*this);
  return *std::max_element(ranks.begin(), ranks.end());
}

ScheduleResult schedule(const TaskGraph& graph, std::uint32_t cores,
                        double per_task_overhead_s) {
  support::check(cores >= 1, "omp::schedule", "need at least one core");
  support::check(per_task_overhead_s >= 0.0, "omp::schedule",
                 "overhead must be non-negative");
  const std::size_t n = graph.size();
  ScheduleResult result;
  result.busy.assign(cores, 0.0);
  result.start.assign(n, 0.0);
  if (n == 0) {
    result.efficiency = 1.0;
    return result;
  }

  const auto ranks = upward_ranks(graph);
  std::vector<std::uint32_t> missing_deps(n, 0);
  std::vector<std::vector<TaskId>> succ(n);
  std::vector<double> finish(n, 0.0);
  for (TaskId t = 0; t < n; ++t) {
    missing_deps[t] = static_cast<std::uint32_t>(graph.task(t).deps.size());
    for (const TaskId d : graph.task(t).deps) succ[d].push_back(t);
  }

  // Ready queue ordered by upward rank (longest chain first).
  auto cmp = [&ranks](TaskId a, TaskId b) { return ranks[a] < ranks[b]; };
  std::priority_queue<TaskId, std::vector<TaskId>, decltype(cmp)> ready(cmp);
  // Earliest time each ready task may start (max over dep finishes).
  std::vector<double> earliest(n, 0.0);
  for (TaskId t = 0; t < n; ++t)
    if (missing_deps[t] == 0) ready.push(t);

  std::vector<double> core_free(cores, 0.0);
  std::size_t scheduled = 0;
  while (scheduled < n) {
    support::check(!ready.empty(), "omp::schedule",
                   "dependency cycle (unreachable by construction)");
    const TaskId t = ready.top();
    ready.pop();
    // Place on the earliest-free core.
    const auto core = static_cast<std::size_t>(
        std::min_element(core_free.begin(), core_free.end()) -
        core_free.begin());
    const double start =
        std::max(core_free[core], earliest[t]) + per_task_overhead_s;
    result.start[t] = start;
    finish[t] = start + graph.task(t).seconds;
    core_free[core] = finish[t];
    result.busy[core] += graph.task(t).seconds;
    result.makespan = std::max(result.makespan, finish[t]);
    ++scheduled;
    for (const TaskId s : succ[t]) {
      earliest[s] = std::max(earliest[s], finish[t]);
      if (--missing_deps[s] == 0) ready.push(s);
    }
  }
  const double work = graph.total_work();
  result.efficiency =
      work > 0.0 ? work / (result.makespan * cores) : 1.0;
  return result;
}

TaskGraph amdahl_graph(double total_seconds, double serial_fraction,
                       std::uint32_t chunks) {
  support::check(total_seconds > 0.0, "amdahl_graph",
                 "total time must be positive");
  support::check(serial_fraction >= 0.0 && serial_fraction <= 1.0,
                 "amdahl_graph", "serial fraction must be in [0, 1]");
  support::check(chunks >= 1, "amdahl_graph", "need at least one chunk");
  TaskGraph g;
  const TaskId serial =
      g.add(total_seconds * serial_fraction, {}, "serial");
  const double chunk = total_seconds * (1.0 - serial_fraction) / chunks;
  for (std::uint32_t c = 0; c < chunks; ++c)
    g.add(chunk, {serial}, "chunk");
  return g;
}

TaskGraph irregular_graph(double total_seconds, double serial_fraction,
                          std::uint32_t chunks, double imbalance,
                          std::uint64_t seed) {
  support::check(imbalance >= 0.0 && imbalance < 1.0, "irregular_graph",
                 "imbalance must be in [0, 1)");
  TaskGraph g = amdahl_graph(total_seconds, serial_fraction, chunks);
  // Redistribute the parallel work across the chunks with random weights
  // (totals preserved). Chunk tasks are ids 1..chunks.
  support::Rng rng(seed);
  std::vector<double> w(chunks);
  double sum = 0.0;
  for (auto& x : w) {
    x = 1.0 + rng.uniform(-imbalance, imbalance);
    sum += x;
  }
  TaskGraph out;
  const TaskId serial = out.add(g.task(0).seconds, {}, "serial");
  const double parallel = total_seconds * (1.0 - serial_fraction);
  for (std::uint32_t cidx = 0; cidx < chunks; ++cidx)
    out.add(parallel * w[cidx] / sum, {serial}, "chunk");
  return out;
}

TaskGraph lu_wavefront_graph(double panel_seconds, double update_seconds,
                             std::uint32_t panels) {
  support::check(panels >= 1, "lu_wavefront_graph",
                 "need at least one panel");
  TaskGraph g;
  TaskId prev_first_update = 0;
  bool has_prev = false;
  for (std::uint32_t k = 0; k < panels; ++k) {
    std::vector<TaskId> panel_deps;
    if (has_prev) panel_deps.push_back(prev_first_update);
    const TaskId panel = g.add(panel_seconds, panel_deps, "panel");
    const std::uint32_t updates = panels - k;
    for (std::uint32_t u = 0; u < updates; ++u) {
      const TaskId up = g.add(update_seconds, {panel}, "update");
      if (u == 0) {
        prev_first_update = up;
        has_prev = true;
      }
    }
  }
  return g;
}

}  // namespace mb::omp
