// OmpSs-style task-graph runtime model (paper Sec. II: the Mont-Blanc
// project ports its applications to "BSC's OmpSs programming model").
//
// OmpSs expresses a computation as tasks with data dependencies; a runtime
// schedules ready tasks over the cores. This module models exactly that:
// a DAG of weighted tasks executed by a greedy (HEFT-like) list scheduler
// on N identical cores, yielding the intra-node makespan — including the
// dependency-induced idling a plain work/cores division ignores.
//
// It doubles as the intra-node counterpart of the mpi runtime: Table-II
// style whole-node numbers come from scheduling the kernel's task graph on
// the platform's cores.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mb::omp {

using TaskId = std::uint32_t;

struct Task {
  double seconds = 0.0;
  std::string label;
  std::vector<TaskId> deps;  ///< must finish before this task starts
};

class TaskGraph {
 public:
  /// Adds a task; dependencies must reference already-added tasks (so the
  /// graph is acyclic by construction).
  TaskId add(double seconds, std::vector<TaskId> deps = {},
             std::string label = {});

  std::size_t size() const { return tasks_.size(); }
  const Task& task(TaskId id) const { return tasks_.at(id); }

  /// Sum of all task durations (the 1-core makespan).
  double total_work() const;

  /// Length of the longest dependency chain (the infinite-core makespan).
  double critical_path() const;

 private:
  std::vector<Task> tasks_;
};

struct ScheduleResult {
  double makespan = 0.0;
  /// Busy time per core (for utilization reports).
  std::vector<double> busy;
  /// makespan * cores / total_work.
  double efficiency = 0.0;
  /// Start time per task, aligned with graph ids (for tests/inspection).
  std::vector<double> start;
};

/// Greedy list scheduling: whenever a core is free, it picks the ready
/// task with the longest downstream critical path (HEFT's upward rank).
/// Guaranteed within 2x of optimal (Graham bound). `per_task_overhead_s`
/// is the runtime's cost to dispatch one task (task creation, dependency
/// bookkeeping) — the term that punishes too-fine task granularity.
ScheduleResult schedule(const TaskGraph& graph, std::uint32_t cores,
                        double per_task_overhead_s = 0.0);

/// Convenience builders for common kernel shapes.
///
/// `chunks` independent tasks of equal size plus a serial fraction at the
/// start (Amdahl shape).
TaskGraph amdahl_graph(double total_seconds, double serial_fraction,
                       std::uint32_t chunks);

/// Like amdahl_graph, but chunk durations vary by a uniform +-`imbalance`
/// factor (irregular tasks — meshes, adaptivity): few chunks now leave
/// cores idle, which is what makes grain-size tuning a real trade-off.
TaskGraph irregular_graph(double total_seconds, double serial_fraction,
                          std::uint32_t chunks, double imbalance,
                          std::uint64_t seed);

/// A blocked-LU-style wavefront: `panels` stages, stage k has a serial
/// panel task followed by (panels - k) parallel update tasks depending on
/// it; stage k+1's panel depends on the first update of stage k.
TaskGraph lu_wavefront_graph(double panel_seconds, double update_seconds,
                             std::uint32_t panels);

}  // namespace mb::omp
