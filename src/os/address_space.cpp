#include "os/address_space.h"

#include <bit>

#include "support/check.h"

namespace mb::os {

AddressSpace::AddressSpace(std::unique_ptr<PageAllocator> allocator,
                           std::uint32_t page_bytes)
    : allocator_(std::move(allocator)),
      page_bytes_(page_bytes),
      page_shift_(static_cast<std::uint32_t>(
          std::countr_zero(static_cast<std::uint64_t>(page_bytes)))),
      next_vaddr_(static_cast<std::uint64_t>(page_bytes) * 16) {
  support::check(allocator_ != nullptr, "AddressSpace",
                 "allocator must not be null");
  support::check(page_bytes > 0 && (page_bytes & (page_bytes - 1)) == 0,
                 "AddressSpace", "page size must be a power of two");
}

Region AddressSpace::mmap(std::uint64_t bytes) {
  support::check(bytes > 0, "AddressSpace::mmap", "bytes must be positive");
  const std::uint64_t pages = (bytes + page_bytes_ - 1) / page_bytes_;
  const std::vector<Pfn> frames =
      allocator_->allocate(static_cast<std::size_t>(pages));

  Region region{next_vaddr_, pages * page_bytes_};
  const std::uint64_t first_vpn = region.vaddr >> page_shift_;
  for (std::uint64_t i = 0; i < pages; ++i)
    page_table_[first_vpn + i] = frames[static_cast<std::size_t>(i)];
  next_vaddr_ += (pages + 1) * page_bytes_;  // leave a guard page gap
  return region;
}

void AddressSpace::munmap(const Region& region) {
  const std::uint64_t pages = region.bytes >> page_shift_;
  const std::uint64_t first_vpn = region.vaddr >> page_shift_;
  std::vector<Pfn> frames;
  frames.reserve(static_cast<std::size_t>(pages));
  for (std::uint64_t i = 0; i < pages; ++i) {
    auto it = page_table_.find(first_vpn + i);
    support::check(it != page_table_.end(), "AddressSpace::munmap",
                   "region not mapped");
    frames.push_back(it->second);
    page_table_.erase(it);
  }
  allocator_->free(frames);
}

std::uint64_t AddressSpace::translate(std::uint64_t vaddr) const {
  const auto it = page_table_.find(vaddr >> page_shift_);
  support::check(it != page_table_.end(), "AddressSpace::translate",
                 "unmapped virtual address");
  return (it->second << page_shift_) | (vaddr & (page_bytes_ - 1));
}

std::vector<Pfn> AddressSpace::frames_of(const Region& region) const {
  const std::uint64_t pages = region.bytes >> page_shift_;
  const std::uint64_t first_vpn = region.vaddr >> page_shift_;
  std::vector<Pfn> out;
  out.reserve(static_cast<std::size_t>(pages));
  for (std::uint64_t i = 0; i < pages; ++i) {
    const auto it = page_table_.find(first_vpn + i);
    support::check(it != page_table_.end(), "AddressSpace::frames_of",
                   "region not mapped");
    out.push_back(it->second);
  }
  return out;
}

}  // namespace mb::os
