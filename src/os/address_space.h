// Virtual address space backed by a PageAllocator.
//
// Kernels generate virtual addresses; the data caches of the platforms in
// the paper are physically indexed, so the page-frame layout chosen by the
// allocator directly shapes conflict-miss behaviour (paper Sec. V-A.1).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "os/page_alloc.h"

namespace mb::os {

/// A region handle returned by mmap(); identifies pages for munmap().
struct Region {
  std::uint64_t vaddr = 0;
  std::uint64_t bytes = 0;
};

class AddressSpace {
 public:
  /// Page size must be a power of two. The allocator provides frames.
  AddressSpace(std::unique_ptr<PageAllocator> allocator,
               std::uint32_t page_bytes);

  /// Maps `bytes` (rounded up to whole pages) at the next free virtual
  /// address; returns the region.
  Region mmap(std::uint64_t bytes);

  /// Unmaps a region previously returned by mmap and frees its frames.
  void munmap(const Region& region);

  /// Translates a virtual address. Throws for unmapped addresses.
  std::uint64_t translate(std::uint64_t vaddr) const;

  std::uint32_t page_bytes() const { return page_bytes_; }

  /// The frames backing a region, in virtual-page order (for tests).
  std::vector<Pfn> frames_of(const Region& region) const;

 private:
  std::unique_ptr<PageAllocator> allocator_;
  std::uint32_t page_bytes_;
  std::uint32_t page_shift_;
  std::uint64_t next_vaddr_;
  std::unordered_map<std::uint64_t, Pfn> page_table_;  // vpn -> pfn
};

}  // namespace mb::os
