#include "os/page_alloc.h"

#include <algorithm>

#include "support/check.h"

namespace mb::os {

// ---------------------------------------------------------------- consecutive

ConsecutivePageAllocator::ConsecutivePageAllocator(std::size_t total_frames)
    : used_(total_frames, false), free_count_(total_frames) {
  support::check(total_frames > 0, "ConsecutivePageAllocator",
                 "frame pool must not be empty");
}

std::vector<Pfn> ConsecutivePageAllocator::allocate(std::size_t n) {
  support::check(n <= free_count_, "ConsecutivePageAllocator::allocate",
                 "out of physical frames");
  std::vector<Pfn> out;
  out.reserve(n);
  std::size_t i = search_hint_;
  while (out.size() < n) {
    if (i >= used_.size()) i = 0;
    if (!used_[i]) {
      used_[i] = true;
      out.push_back(i);
    }
    ++i;
  }
  search_hint_ = i;
  free_count_ -= n;
  return out;
}

void ConsecutivePageAllocator::free(const std::vector<Pfn>& frames) {
  for (Pfn f : frames) {
    support::check(f < used_.size() && used_[f],
                   "ConsecutivePageAllocator::free", "double free or bad pfn");
    used_[f] = false;
    ++free_count_;
    search_hint_ = std::min<std::size_t>(search_hint_, f);
  }
}

std::size_t ConsecutivePageAllocator::available() const { return free_count_; }

// --------------------------------------------------------------- reuse-biased

ReuseBiasedPageAllocator::ReuseBiasedPageAllocator(std::size_t total_frames,
                                                   support::Rng rng)
    : rng_(rng) {
  support::check(total_frames > 0, "ReuseBiasedPageAllocator",
                 "frame pool must not be empty");
  free_list_.resize(total_frames);
  for (std::size_t i = 0; i < total_frames; ++i) free_list_[i] = i;
}

std::vector<Pfn> ReuseBiasedPageAllocator::allocate(std::size_t n) {
  support::check(n <= free_list_.size(),
                 "ReuseBiasedPageAllocator::allocate",
                 "out of physical frames");
  if (!shuffled_) {
    // The state of a freshly booted machine: frame order is effectively
    // arbitrary with respect to the process's virtual layout.
    rng_.shuffle(free_list_);
    shuffled_ = true;
  }
  std::vector<Pfn> out(free_list_.end() - static_cast<std::ptrdiff_t>(n),
                       free_list_.end());
  free_list_.resize(free_list_.size() - n);
  return out;
}

void ReuseBiasedPageAllocator::free(const std::vector<Pfn>& frames) {
  // LIFO: the next allocate() of the same size returns exactly these frames
  // (in reverse order), reproducing the paper's within-run stability.
  for (auto it = frames.rbegin(); it != frames.rend(); ++it)
    free_list_.push_back(*it);
}

std::size_t ReuseBiasedPageAllocator::available() const {
  return free_list_.size();
}

// --------------------------------------------------------------------- random

RandomPageAllocator::RandomPageAllocator(std::size_t total_frames,
                                         support::Rng rng)
    : rng_(rng) {
  support::check(total_frames > 0, "RandomPageAllocator",
                 "frame pool must not be empty");
  pool_.resize(total_frames);
  for (std::size_t i = 0; i < total_frames; ++i) pool_[i] = i;
}

std::vector<Pfn> RandomPageAllocator::allocate(std::size_t n) {
  support::check(n <= pool_.size(), "RandomPageAllocator::allocate",
                 "out of physical frames");
  std::vector<Pfn> out;
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t j = rng_.index(pool_.size());
    out.push_back(pool_[j]);
    pool_[j] = pool_.back();
    pool_.pop_back();
  }
  return out;
}

void RandomPageAllocator::free(const std::vector<Pfn>& frames) {
  for (Pfn f : frames) pool_.push_back(f);
}

std::size_t RandomPageAllocator::available() const { return pool_.size(); }

}  // namespace mb::os
