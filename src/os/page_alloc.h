// Physical page allocation models.
//
// Section V-A.1 of the paper traces surprising irreproducibility on the ARM
// boards to the OS's choice of *physical* pages: around the L1 size,
// non-consecutive physical pages create extra conflict misses in the
// physically-indexed caches, and because the kernel tends to hand back the
// same pages within one run (malloc/free reuse), variability appears
// *between* runs but not within one. Three allocator models capture this:
//
//  * ConsecutivePageAllocator — ideal contiguous placement (x86-like large
//    zones; the behaviour HPC developers implicitly assume).
//  * ReuseBiasedPageAllocator — random placement, but freed pages go back
//    on top of a LIFO free list, so repeated malloc/free within a run gets
//    the same frames (the paper's observed ARM behaviour).
//  * RandomPageAllocator — fully randomized placement on every allocation
//    (the methodological fix: what a randomized benchmark must emulate).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/rng.h"

namespace mb::os {

/// Physical frame number.
using Pfn = std::uint64_t;

/// Allocation policy interface.
class PageAllocator {
 public:
  virtual ~PageAllocator() = default;

  /// Allocates `n` frames. Throws when the pool is exhausted.
  virtual std::vector<Pfn> allocate(std::size_t n) = 0;

  /// Returns frames to the pool.
  virtual void free(const std::vector<Pfn>& frames) = 0;

  /// Frames currently available.
  virtual std::size_t available() const = 0;
};

/// Always hands out the lowest-numbered free frames in order, yielding
/// physically contiguous allocations whenever possible.
class ConsecutivePageAllocator final : public PageAllocator {
 public:
  explicit ConsecutivePageAllocator(std::size_t total_frames);

  std::vector<Pfn> allocate(std::size_t n) override;
  void free(const std::vector<Pfn>& frames) override;
  std::size_t available() const override;

 private:
  std::vector<bool> used_;
  std::size_t free_count_;
  std::size_t search_hint_ = 0;
};

/// Random placement with LIFO reuse of freed frames: the first allocation in
/// a "boot" draws random frames; malloc/free cycles then recycle the same
/// frames, so behaviour is stable within a run but differs across runs
/// (reseed to model a new boot/run).
class ReuseBiasedPageAllocator final : public PageAllocator {
 public:
  ReuseBiasedPageAllocator(std::size_t total_frames, support::Rng rng);

  std::vector<Pfn> allocate(std::size_t n) override;
  void free(const std::vector<Pfn>& frames) override;
  std::size_t available() const override;

 private:
  std::vector<Pfn> free_list_;  // back = most recently freed (LIFO)
  support::Rng rng_;
  bool shuffled_ = false;
};

/// Fully random placement on every allocation (no reuse bias): freed frames
/// re-enter the pool at random positions.
class RandomPageAllocator final : public PageAllocator {
 public:
  RandomPageAllocator(std::size_t total_frames, support::Rng rng);

  std::vector<Pfn> allocate(std::size_t n) override;
  void free(const std::vector<Pfn>& frames) override;
  std::size_t available() const override;

 private:
  std::vector<Pfn> pool_;
  support::Rng rng_;
};

}  // namespace mb::os
