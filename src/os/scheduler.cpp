#include "os/scheduler.h"

#include <algorithm>

namespace mb::os {

FairScheduler::FairScheduler(support::Rng rng, double jitter_cv)
    : rng_(rng), initial_rng_(rng), jitter_cv_(jitter_cv) {}

double FairScheduler::next_slowdown() {
  // Slowdowns cannot make a run faster than nominal; fold jitter upward.
  return 1.0 + std::abs(rng_.normal(0.0, jitter_cv_));
}

void FairScheduler::reset() { rng_ = initial_rng_; }

RealTimeAnomalous::RealTimeAnomalous(support::Rng rng)
    : RealTimeAnomalous(rng, Params{}) {}

RealTimeAnomalous::RealTimeAnomalous(support::Rng rng, Params params)
    : rng_(rng), initial_rng_(rng), params_(params) {}

double RealTimeAnomalous::next_slowdown() {
  if (degraded_) {
    if (rng_.bernoulli(params_.exit_degraded)) degraded_ = false;
  } else {
    if (rng_.bernoulli(params_.enter_degraded)) degraded_ = true;
  }
  const double base = degraded_ ? params_.degraded_slowdown : 1.0;
  return base * (1.0 + std::abs(rng_.normal(0.0, params_.jitter_cv)));
}

void RealTimeAnomalous::reset() {
  rng_ = initial_rng_;
  degraded_ = false;
}

}  // namespace mb::os
