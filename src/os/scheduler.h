// OS scheduler disturbance models.
//
// Section V-A.2 of the paper: running the memory benchmark under real-time
// (SCHED_FIFO) priority on the ARM board — a standard trick to *reduce*
// noise on x86 — instead produced a second, degraded execution mode with
// ~5x lower bandwidth, and the degraded measurements were consecutive in
// time (Fig. 5b), pointing at a latent scheduler state. We model a
// disturbance process that multiplies each measurement's runtime:
//
//  * FairScheduler        — small i.i.d. jitter around 1.0 (default CFS-ish
//                           behaviour on an otherwise idle machine).
//  * RealTimeAnomalous    — two-state Markov chain {Normal, Degraded}. In
//                           Degraded the slowdown is ~5x and the state is
//                           sticky, producing consecutive degraded samples.
#pragma once

#include <memory>

#include "support/rng.h"

namespace mb::os {

/// Per-measurement disturbance: returns the factor by which a measurement's
/// nominal runtime is multiplied (>= 1.0 means slower).
class SchedulerModel {
 public:
  virtual ~SchedulerModel() = default;

  /// Advances the process and returns the slowdown for the next sample.
  virtual double next_slowdown() = 0;

  /// Resets internal state (new run / new boot).
  virtual void reset() = 0;
};

/// CFS-like behaviour on an idle machine: multiplicative jitter with a small
/// coefficient of variation and no memory.
class FairScheduler final : public SchedulerModel {
 public:
  /// `jitter_cv` is the relative standard deviation of the slowdown.
  explicit FairScheduler(support::Rng rng, double jitter_cv = 0.01);

  double next_slowdown() override;
  void reset() override;

 private:
  support::Rng rng_;
  support::Rng initial_rng_;
  double jitter_cv_;
};

/// The ARM real-time anomaly: a sticky two-state Markov chain.
class RealTimeAnomalous final : public SchedulerModel {
 public:
  struct Params {
    double enter_degraded = 0.04;  ///< P(Normal -> Degraded) per sample
    double exit_degraded = 0.12;   ///< P(Degraded -> Normal) per sample
    double degraded_slowdown = 5.0;
    double jitter_cv = 0.015;
  };

  explicit RealTimeAnomalous(support::Rng rng);
  RealTimeAnomalous(support::Rng rng, Params params);

  double next_slowdown() override;
  void reset() override;

  bool degraded() const { return degraded_; }

 private:
  support::Rng rng_;
  support::Rng initial_rng_;
  Params params_;
  bool degraded_ = false;
};

}  // namespace mb::os
