#include "power/cluster_energy.h"

namespace mb::power {

ClusterPower arm_cluster_power(std::uint32_t nodes) {
  ClusterPower p;
  p.nodes = nodes;
  p.node_w = 3.5;  // 2.5 W board + ~1 W NIC/PHY
  p.switches = (nodes + 47) / 48 + (nodes > 48 ? 1 : 0);  // leaves + root
  p.switch_w = 60.0;
  return p;
}

ClusterPower arm_cluster_power_eee(std::uint32_t nodes) {
  ClusterPower p = arm_cluster_power(nodes);
  p.switch_w = 25.0;  // Energy-Efficient Ethernet class switching
  return p;
}

double cluster_watts(const ClusterPower& p) {
  return p.nodes * p.node_w + p.switches * p.switch_w;
}

double cluster_energy_j(const ClusterPower& p, double makespan_s) {
  support::check(makespan_s >= 0.0, "cluster_energy_j",
                 "makespan must be non-negative");
  return cluster_watts(p) * makespan_s;
}

double cluster_energy_ratio(const ClusterPower& a, double makespan_a,
                            const ClusterPower& b, double makespan_b) {
  const double eb = cluster_energy_j(b, makespan_b);
  support::check(eb > 0.0, "cluster_energy_ratio",
                 "reference energy must be positive");
  return cluster_energy_j(a, makespan_a) / eb;
}

}  // namespace mb::power
