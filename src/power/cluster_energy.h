// Cluster-level energy accounting (paper Sec. IV, closing remark).
//
// "No power measurement was done so far at large scale ... with current
// hardware, the node power efficiency is likely to be counterbalanced by
// the network inefficiency." This module makes that arithmetic explicit:
// energy-to-solution = (nodes x node power + switches x switch power) x
// makespan, where the makespan already contains the network-induced
// stretch. A node-level win (Table II) can disappear at cluster level once
// parallel efficiency drops and the switches' own draw is charged.
#pragma once

#include <cstdint>

#include "support/check.h"

namespace mb::power {

struct ClusterPower {
  std::uint32_t nodes = 0;
  double node_w = 0.0;        ///< board power incl. NIC
  std::uint32_t switches = 0;
  double switch_w = 0.0;
};

/// The Tibidabo-class power envelope for `nodes` boards: Snowball-class
/// boards (2.5 W) plus ~1 W NIC each, 48-port GbE switches at ~60 W.
ClusterPower arm_cluster_power(std::uint32_t nodes);

/// Energy-saving Ethernet variant the final prototype selects (Sec. IV):
/// the same boards behind lower-power switches.
ClusterPower arm_cluster_power_eee(std::uint32_t nodes);

/// Total draw in watts.
double cluster_watts(const ClusterPower& p);

/// Energy to run for `makespan_s`.
double cluster_energy_j(const ClusterPower& p, double makespan_s);

/// Energy ratio of cluster A vs cluster B for the same work.
double cluster_energy_ratio(const ClusterPower& a, double makespan_a,
                            const ClusterPower& b, double makespan_b);

}  // namespace mb::power
