#include "power/dvfs.h"

#include <cmath>

namespace mb::power {

void DvfsModel::validate() const {
  support::check(f_min_hz > 0.0 && f_min_hz <= f_nominal_hz &&
                     f_nominal_hz <= f_max_hz,
                 "DvfsModel", "need 0 < f_min <= f_nominal <= f_max");
  support::check(dynamic_w_nominal > 0.0 && static_w >= 0.0, "DvfsModel",
                 "power terms must be non-negative");
  support::check(alpha >= 1.0 && alpha <= 4.0, "DvfsModel",
                 "alpha outside the physically plausible range");
}

DvfsModel snowball_dvfs() {
  DvfsModel m;
  m.f_nominal_hz = 1.0e9;
  m.f_min_hz = 0.2e9;
  m.f_max_hz = 1.2e9;
  m.dynamic_w_nominal = 1.5;
  m.static_w = 1.0;  // totals the paper's 2.5 W at nominal
  m.alpha = 3.0;
  return m;
}

double dvfs_seconds(const DvfsModel& model, const DvfsWorkload& w,
                    double f_hz) {
  model.validate();
  support::check(f_hz >= model.f_min_hz && f_hz <= model.f_max_hz,
                 "dvfs_seconds", "frequency outside the envelope");
  support::check(w.seconds_at_nominal >= 0.0 && w.compute_fraction >= 0.0 &&
                     w.compute_fraction <= 1.0,
                 "dvfs_seconds", "bad workload");
  const double scale = model.f_nominal_hz / f_hz;
  return w.seconds_at_nominal *
         (w.compute_fraction * scale + (1.0 - w.compute_fraction));
}

double dvfs_watts(const DvfsModel& model, double f_hz) {
  model.validate();
  const double rel = f_hz / model.f_nominal_hz;
  return model.static_w + model.dynamic_w_nominal * std::pow(rel, model.alpha);
}

double dvfs_energy_j(const DvfsModel& model, const DvfsWorkload& w,
                     double f_hz) {
  return dvfs_watts(model, f_hz) * dvfs_seconds(model, w, f_hz);
}

double dvfs_optimal_frequency(const DvfsModel& model,
                              const DvfsWorkload& w) {
  model.validate();
  // Golden-section search on the unimodal energy curve.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = model.f_min_hz, hi = model.f_max_hz;
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double e1 = dvfs_energy_j(model, w, x1);
  double e2 = dvfs_energy_j(model, w, x2);
  for (int it = 0; it < 80; ++it) {
    if (e1 < e2) {
      hi = x2;
      x2 = x1;
      e2 = e1;
      x1 = hi - phi * (hi - lo);
      e1 = dvfs_energy_j(model, w, x1);
    } else {
      lo = x1;
      x1 = x2;
      e1 = e2;
      x2 = lo + phi * (hi - lo);
      e2 = dvfs_energy_j(model, w, x2);
    }
  }
  return (lo + hi) / 2.0;
}

}  // namespace mb::power
