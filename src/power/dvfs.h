// Dynamic voltage and frequency scaling model.
//
// The embedded platforms the paper studies live and die by DVFS; the
// Mont-Blanc question "what frequency minimizes energy to solution?" has a
// workload-dependent answer the model makes quantitative:
//
//  * dynamic power scales ~ f * V^2 and V scales roughly linearly with f
//    across the usable range, so P_dyn ~ f^3;
//  * static (leakage + board) power is constant while the job runs;
//  * compute-bound time scales 1/f, but the memory-bound fraction does
//    not — DRAM does not get faster when the core clocks up.
//
// Race-to-idle wins when static power dominates; slow-and-steady wins when
// dynamic power dominates and the workload is memory-bound. Both regimes
// appear in the sweep bench.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.h"

namespace mb::power {

struct DvfsModel {
  double f_nominal_hz = 1.0e9;
  double f_min_hz = 0.2e9;
  double f_max_hz = 1.2e9;
  /// Dynamic power at the nominal frequency (whole chip, busy).
  double dynamic_w_nominal = 1.5;
  /// Frequency-independent draw while the job runs (leakage, DRAM
  /// refresh, board).
  double static_w = 1.0;
  /// Voltage scaling exponent: P_dyn ~ (f/f_nom)^alpha; ~3 when voltage
  /// tracks frequency, 1 with fixed voltage.
  double alpha = 3.0;

  void validate() const;
};

/// The Snowball-class operating envelope (2.5 W total at nominal).
DvfsModel snowball_dvfs();

/// A workload characterized at the nominal frequency.
struct DvfsWorkload {
  double seconds_at_nominal = 0.0;
  /// Fraction of that time which is core-bound (scales with 1/f); the
  /// rest is memory-bound and frequency independent.
  double compute_fraction = 1.0;
};

/// Runtime at frequency f.
double dvfs_seconds(const DvfsModel& model, const DvfsWorkload& w,
                    double f_hz);

/// Power while running at f.
double dvfs_watts(const DvfsModel& model, double f_hz);

/// Energy to solution at f.
double dvfs_energy_j(const DvfsModel& model, const DvfsWorkload& w,
                     double f_hz);

/// The frequency in [f_min, f_max] minimizing energy to solution
/// (golden-section search; the function is unimodal in f).
double dvfs_optimal_frequency(const DvfsModel& model, const DvfsWorkload& w);

}  // namespace mb::power
