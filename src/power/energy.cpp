#include "power/energy.h"

#include "support/check.h"

namespace mb::power {

double energy_j(const arch::Platform& platform, double seconds) {
  support::check(seconds >= 0.0, "energy_j", "time must be non-negative");
  return platform.power_w * seconds;
}

double energy_ratio(const arch::Platform& a, double t_a,
                    const arch::Platform& b, double t_b) {
  const double eb = energy_j(b, t_b);
  support::check(eb > 0.0, "energy_ratio", "reference energy must be > 0");
  return energy_j(a, t_a) / eb;
}

double gflops_per_watt(const arch::Platform& platform, double gflops) {
  support::check(gflops >= 0.0, "gflops_per_watt",
                 "gflops must be non-negative");
  return gflops / platform.power_w;
}

double peak_efficiency(const arch::Platform& platform) {
  return platform.peak_dp_gflops() / platform.power_w;
}

double projected_efficiency_with_gpu(const arch::Platform& platform) {
  double peak = platform.peak_sp_gflops();
  if (platform.gpu && platform.gpu->general_purpose)
    peak += platform.gpu->peak_sp_gflops;
  return peak / platform.power_w;
}

}  // namespace mb::power
