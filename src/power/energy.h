// Energy accounting (paper Table II and Sec. VI-A).
//
// The paper deliberately uses a conservative model: the Snowball board is
// charged its full USB power budget (2.5 W) while the Xeon is charged only
// its TDP (95 W) — "highly unfavorable for the ARM platform". Energy is
// power x time; the energy ratio of a benchmark is
//
//   E_arm / E_x86 = (t_arm * P_arm) / (t_x86 * P_x86)
//                 = perf_ratio * P_arm / P_x86.
//
// With P_x86 / P_arm = 38, every Table II row with a performance ratio
// below 38x favours the ARM platform.
#pragma once

#include "arch/platform.h"

namespace mb::power {

/// Joules to run for `seconds` on `platform` (nameplate model).
double energy_j(const arch::Platform& platform, double seconds);

/// E_a / E_b for the same work taking t_a on a and t_b on b.
double energy_ratio(const arch::Platform& a, double t_a,
                    const arch::Platform& b, double t_b);

/// GFLOPS per watt at a given achieved GFLOPS.
double gflops_per_watt(const arch::Platform& platform, double gflops);

/// Peak-DP GFLOPS/W of a platform (the Green500-style headline number).
double peak_efficiency(const arch::Platform& platform);

/// The paper's Exynos5 projection: CPU+GPU peak over the 5 W budget
/// ("even an efficiency of 5 or 7 GFLOPS per Watt would be an
/// accomplishment").
double projected_efficiency_with_gpu(const arch::Platform& platform);

}  // namespace mb::power
