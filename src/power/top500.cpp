#include "power/top500.h"

#include <cmath>

#include "support/check.h"

namespace mb::power {

std::vector<Top500Point> top500_series(const Top500Model& model,
                                       double from_year, double to_year) {
  support::check(from_year <= to_year, "top500_series",
                 "from_year must be <= to_year");
  std::vector<Top500Point> out;
  for (double year = from_year; year <= to_year + 1e-9; year += 1.0) {
    const double dt = year - model.base_year;
    Top500Point p;
    p.year = year;
    p.top_gflops = model.top0 * std::pow(model.top_growth, dt);
    p.last_gflops = model.last0 * std::pow(model.last_growth, dt);
    p.sum_gflops = model.sum0 * std::pow(model.sum_growth, dt);
    out.push_back(p);
  }
  return out;
}

double projected_year_for(const Top500Model& model, double gflops) {
  const auto series = top500_series(model, model.base_year,
                                    model.base_year + 19);
  std::vector<double> xs, ys;
  for (const auto& p : series) {
    xs.push_back(p.year - model.base_year);
    ys.push_back(p.top_gflops);
  }
  const auto fit = stats::fit_exponential(xs, ys);
  return model.base_year + fit.solve_for_x(gflops);
}

double ExascaleRequirement::improvement_over(
    double current_gflops_per_w) const {
  support::check(current_gflops_per_w > 0.0,
                 "ExascaleRequirement::improvement_over",
                 "current efficiency must be positive");
  return required_efficiency() / current_gflops_per_w;
}

}  // namespace mb::power
