// TOP500 growth model (paper Fig. 1 and Introduction).
//
// Figure 1 plots the exponential growth of recorded supercomputing
// performance (sum of the list, #1 and #500) and motivates the paper: an
// exaflop machine by ~2018 under a 20 MW budget needs ~50 GFLOPS/W, a
// ~25x efficiency jump. This module generates the historical series from
// the well-known growth rates, fits them, and computes the projections the
// introduction quotes.
#pragma once

#include <vector>

#include "stats/regression.h"

namespace mb::power {

struct Top500Point {
  double year = 0.0;
  double sum_gflops = 0.0;
  double top_gflops = 0.0;
  double last_gflops = 0.0;  ///< rank #500
};

struct Top500Model {
  double base_year = 1993.0;
  /// June 1993 anchors (GFLOPS): #1 ~60 (CM-5), #500 ~0.4, sum ~1120.
  double top0 = 59.7;
  double last0 = 0.42;
  double sum0 = 1120.0;
  /// Annual growth factors (the list historically doubles in ~13 months).
  double top_growth = 1.87;
  double last_growth = 1.90;
  double sum_growth = 1.86;
};

/// The series from `from_year` to `to_year` inclusive (one point/year).
std::vector<Top500Point> top500_series(const Top500Model& model,
                                       double from_year, double to_year);

/// Fits an exponential to the #1 series and returns the projected year the
/// given performance is reached (e.g. 1e9 GFLOPS = 1 exaflop).
double projected_year_for(const Top500Model& model, double gflops);

struct ExascaleRequirement {
  double power_budget_w = 20e6;
  double exaflop_gflops = 1e9;
  /// GFLOPS/W required to fit the budget.
  double required_efficiency() const {
    return exaflop_gflops / power_budget_w;
  }
  /// Improvement factor over a given current efficiency.
  double improvement_over(double current_gflops_per_w) const;
};

}  // namespace mb::power
