#include "sim/cost_model.h"

#include <algorithm>

#include "support/check.h"

namespace mb::sim {

using arch::OpClass;

namespace {

double rt(const arch::CoreConfig& core, OpClass c) {
  return arch::recip_throughput(core, c);
}

bool supported(const arch::CoreConfig& core, OpClass c) {
  return rt(core, c) > 0.0;
}

}  // namespace

CostModel::CostModel(const arch::Platform& platform) : platform_(platform) {
  platform_.validate();
}

InstrMix CostModel::decompose(const InstrMix& mix) const {
  const auto& core = platform_.core;

  InstrMix fresh;
  fresh.flops = mix.flops;
  fresh.serialized_loads = mix.serialized_loads;
  fresh.serialized_fp = mix.serialized_fp;
  fresh.dependent_miss_fraction = mix.dependent_miss_fraction;
  fresh.mispredicted_branches = mix.mispredicted_branches;

  for (std::size_t i = 0; i < arch::kOpClassCount; ++i) {
    const auto c = static_cast<OpClass>(i);
    const std::uint64_t n = mix.count(c);
    if (n == 0) continue;
    if (supported(core, c)) {
      fresh.add(c, n);
      continue;
    }
    switch (c) {
      case OpClass::kVecDp:
        // Packed DP on a SP-only vector unit: scalar DP, 2 lanes, split
        // evenly between the add and mul pipes.
        fresh.add(OpClass::kFpAddDp, n);
        fresh.add(OpClass::kFpMulDp, n);
        break;
      case OpClass::kVecSp:
        // No vector unit at all (Tegra2): 4 scalar SP lanes.
        fresh.add(OpClass::kFpAddSp, 2 * n);
        fresh.add(OpClass::kFpMulSp, 2 * n);
        break;
      case OpClass::kLoad128:
        fresh.add(OpClass::kLoad64, 2 * n);
        break;
      case OpClass::kStore128:
        fresh.add(OpClass::kStore64, 2 * n);
        break;
      case OpClass::kLoad64:
        fresh.add(OpClass::kLoad32, 2 * n);
        break;
      case OpClass::kStore64:
        fresh.add(OpClass::kStore32, 2 * n);
        break;
      case OpClass::kInt64:
        fresh.add(OpClass::kIntAlu, 3 * n);
        break;
      default:
        support::fail("CostModel::decompose",
                      "op class unsupported by platform and not decomposable");
    }
  }
  return fresh;
}

CostBreakdown CostModel::cycles(const InstrMix& raw_mix,
                                const MemoryBehaviour& mem,
                                std::uint32_t bandwidth_sharers) const {
  support::check(bandwidth_sharers >= 1, "CostModel::cycles",
                 "bandwidth_sharers must be >= 1");
  const auto& core = platform_.core;
  const InstrMix mix = decompose(raw_mix);

  CostBreakdown out;

  // ---- throughput bounds ----
  const double issue_bound =
      static_cast<double>(mix.total_ops()) / core.issue_width;

  auto unit_cycles = [&](OpClass c) {
    return static_cast<double>(mix.count(c)) * rt(core, c);
  };

  const double int_bound = unit_cycles(OpClass::kIntAlu) +
                           unit_cycles(OpClass::kIntMul) +
                           unit_cycles(OpClass::kInt64);
  // Vector ops split across the FP add and mul pipes (MAC-balanced codes).
  const double vec_half = 0.5 * (unit_cycles(OpClass::kVecSp) +
                                 unit_cycles(OpClass::kVecDp));
  const double fpadd_bound = unit_cycles(OpClass::kFpAddSp) +
                             unit_cycles(OpClass::kFpAddDp) + vec_half;
  const double fpmul_bound = unit_cycles(OpClass::kFpMulSp) +
                             unit_cycles(OpClass::kFpMulDp) + vec_half;
  const double load_cycles = unit_cycles(OpClass::kLoad32) +
                             unit_cycles(OpClass::kLoad64) +
                             unit_cycles(OpClass::kLoad128);
  const double store_cycles = unit_cycles(OpClass::kStore32) +
                              unit_cycles(OpClass::kStore64) +
                              unit_cycles(OpClass::kStore128);
  const double lsu_bound = core.split_lsu
                               ? std::max(load_cycles, store_cycles)
                               : load_cycles + store_cycles;
  const double branch_bound = unit_cycles(OpClass::kBranch);

  out.compute_cycles = std::max({issue_bound, int_bound, fpadd_bound,
                                 fpmul_bound, lsu_bound, branch_bound});

  // ---- exposed dependency latency ----
  const double l1_latency = platform_.caches.front().latency_cycles;
  out.dependency_cycles =
      static_cast<double>(mix.serialized_loads) *
          std::max(0.0, l1_latency - 1.0) +
      static_cast<double>(mix.serialized_fp) *
          std::max(0.0, core.fp_dep_latency_cycles - 1.0);

  // ---- memory stalls ----
  support::check(mem.level.size() <= platform_.caches.size(),
                 "CostModel::cycles",
                 "memory behaviour has more levels than the platform");
  // Dependent misses (pointer chases) pay the full latency: no OoO
  // overlap, no MSHR pipelining. Independent misses expose only the
  // un-hidden fraction and pipeline over the MSHRs at the DRAM level.
  const double dep = std::clamp(mix.dependent_miss_fraction, 0.0, 1.0);
  const double exposed = 1.0 - core.miss_overlap;
  double latency_term = 0.0;
  for (std::size_t lvl = 1; lvl < mem.level.size(); ++lvl) {
    // Hits at level `lvl` are accesses that missed all shallower levels.
    const double hits = static_cast<double>(mem.level[lvl].hits);
    const double lat = platform_.caches[lvl].latency_cycles;
    latency_term += hits * lat * (dep + (1.0 - dep) * exposed);
  }
  const double dram_cycles =
      platform_.mem.latency_ns * 1e-9 * core.freq_hz;
  const double dram_accesses = static_cast<double>(mem.memory_accesses);
  latency_term += dram_accesses * dram_cycles *
                  (dep + (1.0 - dep) * exposed / std::max(1.0, core.mshr));

  const double share =
      platform_.mem.bandwidth_bytes_per_s / bandwidth_sharers;
  const double bandwidth_term =
      static_cast<double>(mem.memory_bytes) / share * core.freq_hz;
  out.memory_cycles = std::max(latency_term, bandwidth_term);

  // ---- TLB ----
  out.tlb_cycles =
      static_cast<double>(mem.tlb_misses) * core.tlb_walk_cycles;

  // ---- branches ----
  const double mispredicts =
      mix.mispredicted_branches
          ? static_cast<double>(*mix.mispredicted_branches)
          : static_cast<double>(mix.count(OpClass::kBranch)) *
                core.branch_mispredict_rate;
  out.branch_cycles = mispredicts * core.branch_mispredict_penalty;

  out.total = out.compute_cycles + out.dependency_cycles + out.memory_cycles +
              out.tlb_cycles + out.branch_cycles;
  return out;
}

}  // namespace mb::sim
