// Analytic core cost model.
//
// Produces a cycle count for an instruction mix executed on a platform,
// bounded the way real superscalar cores are bounded:
//
//   cycles = max( issue-width bound,
//                 per-functional-unit throughput bounds )
//          + exposed dependency latency (serialized loads / FP chains)
//          + memory stalls (per-level hit latency and DRAM, less the
//            fraction an out-of-order window hides; or the bandwidth
//            bound when traffic saturates the memory bus)
//          + TLB walk and branch misprediction penalties.
//
// Operation classes a platform cannot execute natively (e.g. packed DP on
// NEON, any vector op on Tegra2) are decomposed into supported ones first —
// this is what makes LINPACK's Xeon/ARM ratio much larger than CoreMark's,
// the central asymmetry of the paper's Table II.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/platform.h"
#include "cache/cache.h"
#include "sim/instr_mix.h"

namespace mb::sim {

/// Memory-system behaviour observed while the kernel ran (a delta of
/// cache::HierarchyStats plus TLB misses).
struct MemoryBehaviour {
  std::vector<cache::CacheStats> level;  ///< per cache level
  std::uint64_t memory_accesses = 0;     ///< DRAM line fills
  std::uint64_t memory_bytes = 0;        ///< DRAM traffic incl. writebacks
  std::uint64_t tlb_misses = 0;
};

/// Cycle count with its contributing terms (for reports and tests).
struct CostBreakdown {
  double compute_cycles = 0.0;     ///< max of issue/unit bounds
  double dependency_cycles = 0.0;  ///< exposed load / FP chain latency
  double memory_cycles = 0.0;      ///< cache-miss and DRAM stalls
  double tlb_cycles = 0.0;
  double branch_cycles = 0.0;
  double total = 0.0;
};

class CostModel {
 public:
  explicit CostModel(const arch::Platform& platform);

  /// Cycles to execute `mix` with the observed memory behaviour.
  /// `bandwidth_sharers` = number of cores concurrently driving DRAM
  /// (affects the per-core bandwidth bound).
  CostBreakdown cycles(const InstrMix& mix, const MemoryBehaviour& mem,
                       std::uint32_t bandwidth_sharers = 1) const;

  /// Rewrites unsupported op classes into supported equivalents
  /// (exposed for tests).
  InstrMix decompose(const InstrMix& mix) const;

  const arch::Platform& platform() const { return platform_; }

 private:
  arch::Platform platform_;
};

}  // namespace mb::sim
