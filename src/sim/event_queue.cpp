#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "support/check.h"

namespace mb::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// A drained bucket larger than this is re-bucketed into a finer rung
// instead of heapified (unless its timestamps are too tight to split).
constexpr std::size_t kSplitThreshold = 64;
// Rung depth cap: each descent shrinks the covered span by ~target
// bucket count, so double precision bottoms out long before this.
constexpr std::size_t kMaxRungs = 24;
// Small queues skip the ladder entirely: at rebuild time an overflow
// pool no larger than this becomes the bottom heap directly, and pushes
// then feed that heap in place. A binary heap this size stays
// cache-resident and beats the bucketing arithmetic (HPL's pipelined
// broadcast holds < 1k pending events at 4096 ranks; the ladder only
// pays off in the 10k+ regime of SPECFEM halos and BigDFT alltoallv).
constexpr std::size_t kHeapBypass = 2048;
// In heap mode, a push growing the heap past this spills everything back
// into the overflow pool so the next refill rebuilds the ladder.
constexpr std::size_t kHeapSpill = 4 * kHeapBypass;

}  // namespace

void EventQueue::schedule_at(double time_s, Callback cb) {
  support::check(time_s >= now_, "EventQueue::schedule_at",
                 "cannot schedule in the past");
  support::check(static_cast<bool>(cb), "EventQueue::schedule_at",
                 "callback must not be empty");
  push(Event{time_s, next_seq_++, std::move(cb)});
}

void EventQueue::schedule_in(double delay_s, Callback cb) {
  support::check(delay_s >= 0.0, "EventQueue::schedule_in",
                 "delay must be non-negative");
  schedule_at(now_ + delay_s, std::move(cb));
}

void EventQueue::push(Event ev) {
  ++size_;
  max_pending_ = std::max(max_pending_, size_);
  // Heap mode: when cur_ holds *every* pending event (no rungs, empty
  // overflow), pushing straight into it preserves exact (time, seq)
  // order — this is the classic single-heap engine. Grown past the spill
  // bound, the heap is dumped into the overflow so the next refill
  // rebuilds a proper ladder.
  if (rungs_.empty() && overflow_.empty() && !cur_.empty()) {
    if (cur_.size() < kHeapSpill) {
      cur_.push_back(std::move(ev));
      std::push_heap(cur_.begin(), cur_.end(), Later{});
      return;
    }
    overflow_.reserve(cur_.size() + 1);
    for (Event& e : cur_) overflow_.push_back(std::move(e));
    cur_.clear();
  }
  // Walk coarsest to deepest: the first rung whose live range holds the
  // timestamp takes the event; the cur bucket of every non-deepest rung
  // is delegated to the rung below it.
  for (std::size_t i = 0; i < rungs_.size(); ++i) {
    Rung& r = rungs_[i];
    const double rel = ev.time - r.base;
    std::int64_t idx =
        rel < 0.0 ? -1 : static_cast<std::int64_t>(rel * r.inv_width);
    if (idx >= r.nb) {
      if (i == 0) break;  // beyond the ladder: overflow pool
      // Past the top of a sub-rung (its parent mapped the time into the
      // expanded bucket, but the rung only spans the events it was split
      // from): clamp into the last bucket — the event is no earlier than
      // everything in this rung, so draining it there keeps time order.
      idx = r.nb - 1;
    }
    if (idx > r.cur) {
      r.buckets[static_cast<std::size_t>(idx)].push_back(std::move(ev));
      ++r.count;
      return;
    }
    // At or before the bucket being drained. On the deepest rung that is
    // the bottom heap; above it, descend into the expansion.
    if (i + 1 == rungs_.size()) {
      cur_.push_back(std::move(ev));
      std::push_heap(cur_.begin(), cur_.end(), Later{});
      return;
    }
  }
  overflow_.push_back(std::move(ev));
}

bool EventQueue::ensure_current() {
  while (cur_.empty()) {
    if (rungs_.empty()) {
      if (overflow_.empty()) return false;
      build_base_rung();
      continue;
    }
    Rung& r = rungs_.back();
    if (r.count == 0) {
      rungs_.pop_back();
      continue;
    }
    // The scan pointer only moves forward within a rung, so the sweep
    // costs O(nb) per rung lifetime, amortized over its events.
    std::int64_t j = r.cur + 1;
    while (r.buckets[static_cast<std::size_t>(j)].empty()) ++j;
    r.cur = j;
    std::vector<Event> bucket;
    bucket.swap(r.buckets[static_cast<std::size_t>(j)]);
    r.count -= bucket.size();
    if (bucket.size() > kSplitThreshold && rungs_.size() < kMaxRungs &&
        split_into_rung(bucket)) {
      continue;  // dense cluster: drain it through the new finer rung
    }
    cur_ = std::move(bucket);
    std::make_heap(cur_.begin(), cur_.end(), Later{});
  }
  return true;
}

void EventQueue::build_base_rung() {
  // Small pools skip the ladder: heapify straight into cur_ and let
  // push() feed the heap in place (see kHeapBypass above).
  if (overflow_.size() <= kHeapBypass) {
    cur_ = std::move(overflow_);
    overflow_.clear();
    std::make_heap(cur_.begin(), cur_.end(), Later{});
    return;
  }
  // Bucket the overflow around its minimum. Width targets ~4 events per
  // bucket across the span; events past the covered window stay in the
  // overflow for a later rebuild. The minimum always lands in bucket 0,
  // so every rebuild makes progress.
  const std::size_t n = overflow_.size();
  double min_t = kInf;
  double max_t = -kInf;
  for (const Event& ev : overflow_) {
    min_t = std::min(min_t, ev.time);
    max_t = std::max(max_t, ev.time);
  }
  const double span = max_t - min_t;
  double width = 1.0;
  if (span > 0.0 && n > 1) {
    width = span * 4.0 / static_cast<double>(n);
    if (!std::isfinite(width) || width <= 0.0) width = 1.0;
  }
  const auto nb =
      static_cast<std::int64_t>(std::clamp<std::size_t>(n / 4 + 1, 64, 65536));
  Rung r;
  r.base = min_t;
  r.inv_width = 1.0 / width;
  r.nb = nb;
  r.buckets.resize(static_cast<std::size_t>(nb));
  std::vector<Event> later;
  for (Event& ev : overflow_) {
    const std::int64_t idx =
        static_cast<std::int64_t>((ev.time - r.base) * r.inv_width);
    if (idx < nb) {
      r.buckets[static_cast<std::size_t>(idx)].push_back(std::move(ev));
      ++r.count;
    } else {
      later.push_back(std::move(ev));
    }
  }
  overflow_ = std::move(later);
  rungs_.push_back(std::move(r));
}

bool EventQueue::split_into_rung(std::vector<Event>& bucket) {
  const std::size_t n = bucket.size();
  double min_t = kInf;
  double max_t = -kInf;
  for (const Event& ev : bucket) {
    min_t = std::min(min_t, ev.time);
    max_t = std::max(max_t, ev.time);
  }
  const double span = max_t - min_t;
  if (span <= 0.0) return false;  // pure tie cluster: the heap handles seq
  const auto nb =
      static_cast<std::int64_t>(std::clamp<std::size_t>(n / 4 + 1, 16, 65536));
  const double width = span / static_cast<double>(nb);
  // Splitting is futile once the width degenerates below the resolution
  // of the timestamps involved.
  if (!std::isfinite(width) || min_t + width <= min_t) return false;
  Rung r;
  r.base = min_t;
  r.inv_width = 1.0 / width;
  r.nb = nb;
  r.count = n;
  r.buckets.resize(static_cast<std::size_t>(nb));
  for (Event& ev : bucket) {
    const std::int64_t idx = std::min<std::int64_t>(
        static_cast<std::int64_t>((ev.time - r.base) * r.inv_width), nb - 1);
    r.buckets[static_cast<std::size_t>(idx)].push_back(std::move(ev));
  }
  bucket.clear();
  rungs_.push_back(std::move(r));
  return true;
}

EventQueue::Event EventQueue::pop_min() {
  std::pop_heap(cur_.begin(), cur_.end(), Later{});
  Event ev = std::move(cur_.back());
  cur_.pop_back();
  --size_;
  return ev;
}

bool EventQueue::step() {
  if (!ensure_current()) return false;
  Event ev = pop_min();
  now_ = ev.time;
  ++executed_;
  ev.cb();
  return true;
}

double EventQueue::next_time() {
  if (!ensure_current()) return kInf;
  return cur_.front().time;
}

double EventQueue::run() {
  while (step()) {
  }
  return now_;
}

double EventQueue::run_until(double until_s) {
  while (next_time() <= until_s) step();
  if (now_ < until_s) now_ = until_s;
  return now_;
}

void EventQueue::run_before(double horizon_s) {
  while (next_time() < horizon_s) step();
}

}  // namespace mb::sim
