#include "sim/event_queue.h"

#include "support/check.h"

namespace mb::sim {

void EventQueue::schedule_at(double time_s, Callback cb) {
  support::check(time_s >= now_, "EventQueue::schedule_at",
                 "cannot schedule in the past");
  support::check(static_cast<bool>(cb), "EventQueue::schedule_at",
                 "callback must not be empty");
  heap_.push(Event{time_s, next_seq_++, std::move(cb)});
  if (heap_.size() > max_pending_) max_pending_ = heap_.size();
}

void EventQueue::schedule_in(double delay_s, Callback cb) {
  support::check(delay_s >= 0.0, "EventQueue::schedule_in",
                 "delay must be non-negative");
  schedule_at(now_ + delay_s, std::move(cb));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // only through a copy. Events carry std::function, so pop into a local.
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.time;
  ++executed_;
  ev.cb();
  return true;
}

double EventQueue::run() {
  while (step()) {
  }
  return now_;
}

double EventQueue::run_until(double until_s) {
  while (!heap_.empty() && heap_.top().time <= until_s) step();
  if (now_ < until_s) now_ = until_s;
  return now_;
}

}  // namespace mb::sim
