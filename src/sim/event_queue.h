// Discrete-event simulation engine.
//
// Drives the cluster-level experiments (network, MPI runtime, applications).
// Events are callbacks ordered by (time, insertion sequence); ties resolve
// in insertion order so simulations are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mb::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute simulated time `time_s` (>= now()).
  void schedule_at(double time_s, Callback cb);

  /// Schedules `cb` `delay_s` seconds from now (delay >= 0).
  void schedule_in(double delay_s, Callback cb);

  /// Runs until no events remain. Returns the final simulated time.
  double run();

  /// Runs until the queue is empty or `until_s` is reached.
  double run_until(double until_s);

  /// Executes the single earliest event; false when the queue is empty.
  bool step();

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }
  std::uint64_t scheduled() const { return next_seq_; }
  /// Calendar-queue high-water mark: the most events ever pending at once.
  std::size_t max_pending() const { return max_pending_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t max_pending_ = 0;
};

}  // namespace mb::sim
