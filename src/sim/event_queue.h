// Discrete-event simulation engine.
//
// Drives the cluster-level experiments (network, MPI runtime, applications).
// Events are callbacks ordered by (time, insertion sequence); ties resolve
// in insertion order so simulations are fully deterministic.
//
// The queue is a ladder queue rather than a binary heap over the full
// event set (see DESIGN.md §10 for the before/after profile):
//
//   current heap  |  rung stack (bucketed windows)  |  overflow (far future)
//   ordered       |  unordered per bucket           |  unordered
//
// Events land in a bucket of the deepest rung that covers their timestamp
// by linear time-hash; only the bucket currently being drained is kept
// heap-ordered. When a drained bucket is oversized (a dense cluster, e.g.
// microsecond message traffic between hundred-millisecond computes) it is
// re-bucketed into a finer rung spanning just that cluster instead of
// being heapified — the ladder descent that keeps the heap small under
// heavily skewed timestamp distributions. When every rung is exhausted
// the overflow is re-bucketed around the new minimum — unless the whole
// pool fits a cache-resident heap, in which case the queue degrades
// gracefully to the classic single-heap engine (and spills back into
// the ladder if the heap grows large again).
//
// Tie-breaking is exact: bucket membership is a monotone function of the
// timestamp, equal timestamps always take identical paths through the
// structure, and within a bucket the (time, seq) heap order decides, so
// dequeue order is identical to the old priority_queue engine (asserted
// by tests/sim/event_queue_property_test.cpp).
//
// Callbacks are support::SmallFn: captures live inline in the event record
// (no per-event heap allocation on the hot path).
#pragma once

#include <cstdint>
#include <vector>

#include "support/small_fn.h"

namespace mb::sim {

class EventQueue {
 public:
  using Callback = support::SmallFn<48>;

  /// Schedules `cb` at absolute simulated time `time_s` (>= now()).
  void schedule_at(double time_s, Callback cb);

  /// Schedules `cb` `delay_s` seconds from now (delay >= 0).
  void schedule_in(double delay_s, Callback cb);

  /// Runs until no events remain. Returns the final simulated time.
  double run();

  /// Runs until the queue is empty or `until_s` is reached.
  double run_until(double until_s);

  /// Executes every event strictly before `horizon_s`, leaving now() at
  /// the last executed event (events at exactly `horizon_s` stay queued).
  /// The sharded engine's window drain: the strict bound keeps horizon
  /// events in the next window, after cross-shard merges.
  void run_before(double horizon_s);

  /// Executes the single earliest event; false when the queue is empty.
  bool step();

  /// Timestamp of the earliest pending event; +infinity when empty.
  /// (May reorganize internal storage, hence non-const.)
  double next_time();

  double now() const { return now_; }
  bool empty() const { return size_ == 0; }
  std::size_t pending() const { return size_; }
  std::uint64_t executed() const { return executed_; }
  std::uint64_t scheduled() const { return next_seq_; }
  /// Ladder-queue high-water mark: the most events ever pending at once.
  std::size_t max_pending() const { return max_pending_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  /// One bucketed window. Buckets at or before `cur` have been drained
  /// (or expanded into a deeper rung); events hashing there go to cur_.
  struct Rung {
    double base = 0.0;
    double inv_width = 0.0;
    std::int64_t cur = -1;
    std::int64_t nb = 0;
    std::size_t count = 0;  ///< events in buckets after `cur`
    std::vector<std::vector<Event>> buckets;
  };

  void push(Event ev);
  /// Moves events forward until cur_ holds the global minimum.
  /// False when the queue is empty.
  bool ensure_current();
  /// Builds the coarsest rung from the overflow pool (ladder base).
  void build_base_rung();
  /// Re-buckets an oversized drained bucket into a finer rung; false when
  /// the cluster is too tight to split (ties, denormal widths).
  bool split_into_rung(std::vector<Event>& bucket);
  Event pop_min();

  std::vector<Event> cur_;     ///< bottom heap, (time, seq) ordered
  std::vector<Rung> rungs_;    ///< [0] coarsest .. back() deepest
  std::vector<Event> overflow_;

  double now_ = 0.0;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t max_pending_ = 0;
};

}  // namespace mb::sim
