#include "sim/instr_mix.h"

#include <algorithm>

namespace mb::sim {

using arch::OpClass;

std::uint64_t InstrMix::total_ops() const {
  std::uint64_t acc = 0;
  for (auto n : ops_) acc += n;
  return acc;
}

std::uint64_t InstrMix::total_loads() const {
  return count(OpClass::kLoad32) + count(OpClass::kLoad64) +
         count(OpClass::kLoad128);
}

std::uint64_t InstrMix::total_stores() const {
  return count(OpClass::kStore32) + count(OpClass::kStore64) +
         count(OpClass::kStore128);
}

std::uint64_t InstrMix::total_fp_scalar() const {
  return count(OpClass::kFpAddSp) + count(OpClass::kFpMulSp) +
         count(OpClass::kFpAddDp) + count(OpClass::kFpMulDp);
}

std::uint64_t InstrMix::total_vec() const {
  return count(OpClass::kVecSp) + count(OpClass::kVecDp);
}

InstrMix& InstrMix::operator+=(const InstrMix& other) {
  for (std::size_t i = 0; i < ops_.size(); ++i) ops_[i] += other.ops_[i];
  flops += other.flops;
  serialized_loads += other.serialized_loads;
  serialized_fp += other.serialized_fp;
  dependent_miss_fraction =
      std::max(dependent_miss_fraction, other.dependent_miss_fraction);
  if (other.mispredicted_branches) {
    mispredicted_branches = mispredicted_branches.value_or(0) +
                            *other.mispredicted_branches;
  }
  return *this;
}

}  // namespace mb::sim
