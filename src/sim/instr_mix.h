// Instruction mix: the platform-independent description of the dynamic
// instruction stream a kernel executes. Kernels produce an InstrMix (plus an
// address trace through the Machine); the CostModel turns the pair into
// cycles on a concrete platform.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "arch/platform.h"

namespace mb::sim {

class InstrMix {
 public:
  std::uint64_t count(arch::OpClass c) const {
    return ops_[static_cast<std::size_t>(c)];
  }
  void add(arch::OpClass c, std::uint64_t n) {
    ops_[static_cast<std::size_t>(c)] += n;
  }

  std::uint64_t total_ops() const;
  std::uint64_t total_loads() const;
  std::uint64_t total_stores() const;
  std::uint64_t total_fp_scalar() const;
  std::uint64_t total_vec() const;

  /// Floating-point operations represented by the mix (for PAPI_FP_OPS and
  /// MFLOPS rates). Kernels set this explicitly because one vector op
  /// represents several flops.
  std::uint64_t flops = 0;

  /// Loads on the critical dependency chain. For a reduction loop with U
  /// independent accumulators this is total_loads / U: each such load's
  /// result must arrive before its chain can proceed, so L1 latency is
  /// exposed rather than pipelined away (drives the unrolling experiments).
  std::uint64_t serialized_loads = 0;

  /// Dependent FP operations in accumulation chains (expose FP latency).
  std::uint64_t serialized_fp = 0;

  /// Fraction of cache/DRAM *misses* that sit on a dependency chain
  /// (pointer chase = 1.0): these pay their full latency — no OoO
  /// overlap, no MSHR pipelining. 0 for streaming kernels.
  double dependent_miss_fraction = 0.0;

  /// Measured mispredicted branches; when absent the cost model applies the
  /// platform's default rate to the branch count.
  std::optional<std::uint64_t> mispredicted_branches;

  InstrMix& operator+=(const InstrMix& other);

 private:
  std::array<std::uint64_t, arch::kOpClassCount> ops_{};
};

}  // namespace mb::sim
