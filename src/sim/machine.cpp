#include "sim/machine.h"

#include <algorithm>

#include "support/check.h"

namespace mb::sim {

std::string_view page_policy_name(PagePolicy p) {
  switch (p) {
    case PagePolicy::kConsecutive: return "consecutive";
    case PagePolicy::kReuseBiased: return "reuse-biased";
    case PagePolicy::kRandom: return "random";
  }
  return "?";
}

std::unique_ptr<os::PageAllocator> make_allocator(PagePolicy policy,
                                                  std::size_t frames,
                                                  support::Rng rng) {
  switch (policy) {
    case PagePolicy::kConsecutive:
      return std::make_unique<os::ConsecutivePageAllocator>(frames);
    case PagePolicy::kReuseBiased:
      return std::make_unique<os::ReuseBiasedPageAllocator>(frames, rng);
    case PagePolicy::kRandom:
      return std::make_unique<os::RandomPageAllocator>(frames, rng);
  }
  support::fail("make_allocator", "unknown page policy");
}

namespace {

std::size_t frame_pool_size(const arch::Platform& p) {
  // Enough frames for any workload in this project (DRAM-sized pointer
  // chases included) while keeping the allocator models fast.
  const std::uint64_t llc = p.caches.back().size_bytes;
  const std::uint64_t bytes = std::max<std::uint64_t>(llc * 4, 40u << 20);
  return static_cast<std::size_t>(bytes / p.mem.page_bytes);
}

cache::TlbConfig tlb_config(const arch::Platform& p) {
  cache::TlbConfig t;
  t.entries = p.core.tlb_entries;
  t.associativity = p.core.tlb_associativity;
  t.page_bytes = p.mem.page_bytes;
  t.walk_penalty_cycles = p.core.tlb_walk_cycles;
  return t;
}

}  // namespace

Machine::Machine(arch::Platform platform, PagePolicy policy, support::Rng rng)
    : platform_(std::move(platform)),
      cost_model_(platform_),
      space_(make_allocator(policy, frame_pool_size(platform_), rng),
             platform_.mem.page_bytes),
      hierarchy_(platform_),
      tlb_(tlb_config(platform_)) {}

void Machine::touch(std::uint64_t vaddr, std::uint32_t bytes, bool write) {
  support::check(bytes > 0, "Machine::touch", "bytes must be positive");
  const std::uint32_t page = platform_.mem.page_bytes;
  std::uint64_t va = vaddr;
  std::uint64_t remaining = bytes;
  while (remaining > 0) {
    const std::uint64_t in_page = page - (va & (page - 1));
    const auto chunk =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(in_page, remaining));
    tlb_.access(va);
    const std::uint64_t pa = space_.translate(va);
    hierarchy_.access(va, pa, chunk, write);
    va += chunk;
    remaining -= chunk;
  }
}

void Machine::begin_measurement() {
  hierarchy_.reset_stats();
  tlb_.reset_stats();
}

SimResult Machine::end_measurement(const InstrMix& mix,
                                   std::uint32_t bandwidth_sharers) const {
  const cache::HierarchyStats hs = hierarchy_.stats();

  MemoryBehaviour mem;
  mem.level = hs.level;
  mem.memory_accesses = hs.memory_accesses;
  mem.memory_bytes = hs.memory_bytes;
  mem.tlb_misses = tlb_.stats().misses;

  SimResult result;
  result.breakdown = cost_model_.cycles(mix, mem, bandwidth_sharers);
  result.seconds = platform_.seconds(result.breakdown.total);
  result.dram_bytes = hs.memory_bytes;

  using counters::Counter;
  auto& c = result.counters;
  c.set(Counter::kTotCyc,
        static_cast<std::uint64_t>(result.breakdown.total));
  c.set(Counter::kTotIns, mix.total_ops());
  if (!hs.level.empty()) {
    c.set(Counter::kL1Dca, hs.level[0].accesses);
    c.set(Counter::kL1Dcm, hs.level[0].misses);
  }
  if (hs.level.size() > 1) {
    c.set(Counter::kL2Dca, hs.level[1].accesses);
    c.set(Counter::kL2Dcm, hs.level[1].misses);
  }
  if (hs.level.size() > 2) c.set(Counter::kL3Dcm, hs.level[2].misses);
  c.set(Counter::kTlbDm, tlb_.stats().misses);
  const std::uint64_t mispredicts =
      mix.mispredicted_branches
          ? *mix.mispredicted_branches
          : static_cast<std::uint64_t>(
                static_cast<double>(mix.count(arch::OpClass::kBranch)) *
                platform_.core.branch_mispredict_rate);
  c.set(Counter::kBrMsp, mispredicts);
  c.set(Counter::kFpOps, mix.flops);
  c.set(Counter::kMemWcy,
        static_cast<std::uint64_t>(result.breakdown.memory_cycles));
  return result;
}

void Machine::flush_caches() {
  hierarchy_.flush();
  tlb_.flush();
}

}  // namespace mb::sim
