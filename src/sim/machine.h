// Machine: one simulated core's execution environment.
//
// Binds a Platform descriptor to live state: a virtual address space backed
// by one of the OS page-allocation models, a private cache hierarchy, and a
// data TLB. Kernels drive their memory accesses through touch() and then
// convert their instruction mix into cycles/time/counters with run().
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "arch/platform.h"
#include "cache/hierarchy.h"
#include "cache/tlb.h"
#include "counters/counters.h"
#include "os/address_space.h"
#include "sim/cost_model.h"
#include "sim/instr_mix.h"
#include "support/rng.h"

namespace mb::sim {

/// Which physical-page placement the OS model uses (paper Sec. V-A.1).
enum class PagePolicy {
  kConsecutive,  ///< contiguous frames (the x86-like assumption)
  kReuseBiased,  ///< random but stable within a run (observed ARM behaviour)
  kRandom,       ///< fully randomized every allocation
};

std::string_view page_policy_name(PagePolicy p);

/// Result of executing an instruction mix on the machine.
struct SimResult {
  CostBreakdown breakdown;
  double seconds = 0.0;
  counters::CounterSet counters;
  /// DRAM traffic of the measurement interval (fills + writebacks) —
  /// the denominator of roofline arithmetic intensity.
  std::uint64_t dram_bytes = 0;
};

class Machine {
 public:
  /// Creates a machine with ~4x the LLC size of physical frames available
  /// (enough for every workload in this project, small enough to keep the
  /// allocator models fast).
  Machine(arch::Platform platform, PagePolicy policy, support::Rng rng);

  const arch::Platform& platform() const { return platform_; }

  /// Maps / unmaps a buffer (whole pages).
  os::Region mmap(std::uint64_t bytes) { return space_.mmap(bytes); }
  void munmap(const os::Region& r) { space_.munmap(r); }

  /// Performs one data access of `bytes` at virtual `vaddr`: TLB lookup,
  /// translation, cache hierarchy walk. Splits at page boundaries.
  void touch(std::uint64_t vaddr, std::uint32_t bytes, bool write);

  /// Starts a measurement interval: zeroes hierarchy/TLB statistics.
  void begin_measurement();

  /// Ends the interval: combines `mix` with the memory behaviour observed
  /// since begin_measurement() into cycles, seconds and PAPI-style counters.
  SimResult end_measurement(const InstrMix& mix,
                            std::uint32_t bandwidth_sharers = 1) const;

  /// Flushes caches and TLB (cold-start conditions).
  void flush_caches();

  /// Installs a hardware stream prefetcher (see cache::PrefetcherConfig;
  /// off by default — platform models bake average benefit into their
  /// latency-hiding parameters, this is for mechanistic ablations).
  void set_prefetcher(const cache::PrefetcherConfig& config) {
    hierarchy_.set_prefetcher(config);
  }

  const cache::Hierarchy& hierarchy() const { return hierarchy_; }
  const os::AddressSpace& address_space() const { return space_; }
  const CostModel& cost_model() const { return cost_model_; }

 private:
  arch::Platform platform_;
  CostModel cost_model_;
  os::AddressSpace space_;
  cache::Hierarchy hierarchy_;
  cache::Tlb tlb_;
};

/// Builds the page-allocator model named by `policy` over `frames` frames.
std::unique_ptr<os::PageAllocator> make_allocator(PagePolicy policy,
                                                  std::size_t frames,
                                                  support::Rng rng);

}  // namespace mb::sim
