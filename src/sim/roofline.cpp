#include "sim/roofline.h"

#include <algorithm>

#include "support/check.h"

namespace mb::sim {

double Roofline::attainable(double ai) const {
  support::check(ai > 0.0, "Roofline::attainable",
                 "arithmetic intensity must be positive");
  return std::min(peak_gflops, ai * bandwidth_gbs);
}

Roofline dp_roofline(const arch::Platform& platform) {
  Roofline r;
  r.peak_gflops = platform.peak_dp_gflops();
  r.bandwidth_gbs = platform.mem.bandwidth_bytes_per_s / 1e9;
  return r;
}

Roofline sp_roofline(const arch::Platform& platform) {
  Roofline r;
  r.peak_gflops = platform.peak_sp_gflops();
  r.bandwidth_gbs = platform.mem.bandwidth_bytes_per_s / 1e9;
  return r;
}

RooflinePoint place_on_roofline(const Roofline& roof, std::string name,
                                const SimResult& run,
                                std::uint32_t cores) {
  support::check(cores >= 1, "place_on_roofline", "cores must be >= 1");
  const auto flops =
      static_cast<double>(run.counters.get(counters::Counter::kFpOps));
  support::check(flops > 0.0, "place_on_roofline",
                 "run performed no floating-point work");
  support::check(run.seconds > 0.0, "place_on_roofline",
                 "run has no duration");

  RooflinePoint p;
  p.name = std::move(name);
  // Cache-resident runs have (almost) no DRAM traffic: clamp the
  // intensity at a large value; such points sit on the compute roof.
  const double bytes = std::max<double>(1.0,
                                        static_cast<double>(run.dram_bytes));
  p.intensity = flops / bytes;
  p.achieved_gflops = flops / run.seconds / 1e9 * cores;
  p.attainable_gflops = roof.attainable(p.intensity);
  p.roofline_fraction = p.achieved_gflops / p.attainable_gflops;
  p.memory_bound = p.intensity < roof.ridge_intensity();
  return p;
}

}  // namespace mb::sim
