#include "sim/roofline.h"

#include <algorithm>

#include "support/check.h"

namespace mb::sim {

double Roofline::attainable(double ai) const {
  support::check(ai > 0.0, "Roofline::attainable",
                 "arithmetic intensity must be positive");
  return std::min(peak_gflops, ai * bandwidth_gbs);
}

Roofline dp_roofline(const arch::Platform& platform) {
  Roofline r;
  r.peak_gflops = platform.peak_dp_gflops();
  r.bandwidth_gbs = platform.mem.bandwidth_bytes_per_s / 1e9;
  return r;
}

Roofline sp_roofline(const arch::Platform& platform) {
  Roofline r;
  r.peak_gflops = platform.peak_sp_gflops();
  r.bandwidth_gbs = platform.mem.bandwidth_bytes_per_s / 1e9;
  return r;
}

namespace {

// Scalar FP roof: add + mul pipes dual-issuing, capped at issue width.
double scalar_flops_per_cycle(const arch::CoreConfig& core, bool dp) {
  const double add_rt = arch::recip_throughput(
      core, dp ? arch::OpClass::kFpAddDp : arch::OpClass::kFpAddSp);
  const double mul_rt = arch::recip_throughput(
      core, dp ? arch::OpClass::kFpMulDp : arch::OpClass::kFpMulSp);
  double per_cycle = 0.0;
  if (add_rt > 0.0) per_cycle += 1.0 / add_rt;
  if (mul_rt > 0.0) per_cycle += 1.0 / mul_rt;
  return std::min<double>(per_cycle, core.issue_width);
}

HierarchicalRoofline build_hierarchy(const arch::Platform& platform,
                                     bool dp) {
  HierarchicalRoofline h;

  ComputeRoof scalar;
  scalar.name = dp ? "scalar DP" : "scalar SP";
  scalar.vector_bits = 0;
  scalar.gflops =
      platform.cores * platform.core.freq_hz *
      scalar_flops_per_cycle(platform.core, dp) / 1e9;
  h.compute.push_back(scalar);

  const arch::CoreConfig& core = platform.core;
  const double vec_rt = arch::recip_throughput(
      core, dp ? arch::OpClass::kVecDp : arch::OpClass::kVecSp);
  const bool has_vec =
      core.vector_bits > 0 && vec_rt > 0.0 && (!dp || core.vector_dp);
  if (has_vec) {
    ComputeRoof vec;
    const double lanes = core.vector_bits / (dp ? 64.0 : 32.0);
    vec.name = std::string("vector ") + (dp ? "DP" : "SP") + " (" +
               std::to_string(core.vector_bits) + "b)";
    vec.vector_bits = core.vector_bits;
    vec.gflops =
        platform.cores * core.freq_hz * (2.0 * lanes / vec_rt) / 1e9;
    h.compute.push_back(vec);
  }

  // One bandwidth roof per cache level: each core can absorb one line per
  // load-to-use latency, so the chip-level roof is
  // cores * line_bytes * freq / latency. Shared levels still serve every
  // core, so the same scaling applies.
  for (const arch::CacheConfig& c : platform.caches) {
    MemoryLevel level;
    level.name = c.name;
    level.capacity_bytes = c.size_bytes;
    const double lat = std::max<double>(1.0, c.latency_cycles);
    level.bandwidth_gbs =
        platform.cores * c.line_bytes * core.freq_hz / lat / 1e9;
    h.levels.push_back(level);
  }
  MemoryLevel dram;
  dram.name = "DRAM";
  dram.capacity_bytes = 0;
  dram.bandwidth_gbs = platform.mem.bandwidth_bytes_per_s / 1e9;
  h.levels.push_back(dram);
  return h;
}

}  // namespace

const ComputeRoof& HierarchicalRoofline::peak() const {
  support::check(!compute.empty(), "HierarchicalRoofline::peak",
                 "no compute roofs");
  return compute.back();
}

const ComputeRoof& HierarchicalRoofline::scalar() const {
  support::check(!compute.empty(), "HierarchicalRoofline::scalar",
                 "no compute roofs");
  return compute.front();
}

const MemoryLevel& HierarchicalRoofline::level_for_working_set(
    std::uint64_t bytes) const {
  support::check(!levels.empty(),
                 "HierarchicalRoofline::level_for_working_set", "no levels");
  for (const MemoryLevel& level : levels) {
    if (level.capacity_bytes != 0 && bytes <= level.capacity_bytes) {
      return level;
    }
  }
  return levels.back();  // DRAM
}

double HierarchicalRoofline::attainable(double ai, const MemoryLevel& level,
                                        const ComputeRoof& roof) const {
  support::check(ai > 0.0, "HierarchicalRoofline::attainable",
                 "arithmetic intensity must be positive");
  return std::min(roof.gflops, ai * level.bandwidth_gbs);
}

double HierarchicalRoofline::vector_speedup() const {
  const double scalar_gflops = scalar().gflops;
  if (scalar_gflops <= 0.0) return 1.0;
  return std::max(1.0, peak().gflops / scalar_gflops);
}

HierarchicalRoofline hierarchical_dp_roofline(const arch::Platform& platform) {
  return build_hierarchy(platform, /*dp=*/true);
}

HierarchicalRoofline hierarchical_sp_roofline(const arch::Platform& platform) {
  return build_hierarchy(platform, /*dp=*/false);
}

HierarchicalPoint place_on_hierarchy(const HierarchicalRoofline& roof,
                                     std::string name, const SimResult& run,
                                     std::uint32_t cores,
                                     std::uint64_t working_set_bytes,
                                     bool vectorized) {
  support::check(cores >= 1, "place_on_hierarchy", "cores must be >= 1");
  const auto flops =
      static_cast<double>(run.counters.get(counters::Counter::kFpOps));
  support::check(flops > 0.0, "place_on_hierarchy",
                 "run performed no floating-point work");
  support::check(run.seconds > 0.0, "place_on_hierarchy",
                 "run has no duration");

  const MemoryLevel& level = roof.level_for_working_set(working_set_bytes);
  // DRAM-resident runs report their real DRAM traffic; cache-resident
  // runs move one working set through the serving level per pass — use
  // the larger so the intensity never degenerates to "infinite".
  const double bytes = std::max<double>(
      {1.0, static_cast<double>(run.dram_bytes),
       level.capacity_bytes != 0 ? static_cast<double>(working_set_bytes)
                                 : 0.0});

  const ComputeRoof& compute_roof =
      vectorized ? roof.peak() : roof.scalar();

  HierarchicalPoint p;
  p.name = std::move(name);
  p.intensity = flops / bytes;
  p.achieved_gflops = flops / run.seconds / 1e9 * cores;
  p.attainable_gflops = roof.attainable(p.intensity, level, compute_roof);
  p.roofline_fraction = p.achieved_gflops / p.attainable_gflops;
  p.memory_bound = p.intensity * level.bandwidth_gbs < compute_roof.gflops;
  p.bound_by = p.memory_bound ? level.name + " bandwidth" : compute_roof.name;
  if (!p.memory_bound && !vectorized) {
    // Compute bound on the scalar roof: the vector roof (if any) caps the
    // gain a wider-datapath variant could deliver at this intensity.
    const double vec_attainable =
        roof.attainable(p.intensity, level, roof.peak());
    p.vector_headroom =
        std::max(1.0, vec_attainable / p.attainable_gflops);
  }
  return p;
}

RooflinePoint place_on_roofline(const Roofline& roof, std::string name,
                                const SimResult& run,
                                std::uint32_t cores) {
  support::check(cores >= 1, "place_on_roofline", "cores must be >= 1");
  const auto flops =
      static_cast<double>(run.counters.get(counters::Counter::kFpOps));
  support::check(flops > 0.0, "place_on_roofline",
                 "run performed no floating-point work");
  support::check(run.seconds > 0.0, "place_on_roofline",
                 "run has no duration");

  RooflinePoint p;
  p.name = std::move(name);
  // Cache-resident runs have (almost) no DRAM traffic: clamp the
  // intensity at a large value; such points sit on the compute roof.
  const double bytes = std::max<double>(1.0,
                                        static_cast<double>(run.dram_bytes));
  p.intensity = flops / bytes;
  p.achieved_gflops = flops / run.seconds / 1e9 * cores;
  p.attainable_gflops = roof.attainable(p.intensity);
  p.roofline_fraction = p.achieved_gflops / p.attainable_gflops;
  p.memory_bound = p.intensity < roof.ridge_intensity();
  return p;
}

}  // namespace mb::sim
