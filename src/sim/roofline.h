// Roofline analysis.
//
// The classic way to see at a glance *why* each Table-II workload lands
// where it does: attainable GFLOPS = min(peak compute, arithmetic
// intensity x memory bandwidth). The module builds a platform's roofline
// from its descriptor and places measured kernel runs (flops and DRAM
// bytes from the simulated counters) on it.
#pragma once

#include <string>
#include <vector>

#include "arch/platform.h"
#include "sim/machine.h"

namespace mb::sim {

struct Roofline {
  double peak_gflops = 0.0;      ///< compute roof (chip)
  double bandwidth_gbs = 0.0;    ///< memory roof (chip)
  /// Arithmetic intensity (flops/byte) where the roofs intersect.
  double ridge_intensity() const { return peak_gflops / bandwidth_gbs; }
  /// Attainable GFLOPS at intensity `ai`.
  double attainable(double ai) const;
};

/// The platform's double- or single-precision roofline.
Roofline dp_roofline(const arch::Platform& platform);
Roofline sp_roofline(const arch::Platform& platform);

/// One kernel run placed on the roofline.
struct RooflinePoint {
  std::string name;
  double intensity = 0.0;        ///< flops per DRAM byte
  double achieved_gflops = 0.0;  ///< from the simulated run (chip-scaled)
  double attainable_gflops = 0.0;
  /// achieved / attainable: < 1 means other bottlenecks (issue width,
  /// dependencies, TLB...) dominate.
  double roofline_fraction = 0.0;
  bool memory_bound = false;  ///< intensity below the ridge
};

/// Places a simulated single-core run on the roofline. `cores` scales the
/// achieved rate to the whole chip (the roofline is chip-level).
RooflinePoint place_on_roofline(const Roofline& roof, std::string name,
                                const SimResult& run,
                                std::uint32_t cores);

// ---------------------------------------------------------------------------
// Hierarchical roofline (cache-level- and vector-width-aware).
//
// The flat roofline above answers "compute or DRAM bound?". The advisor
// needs two finer questions answered per kernel: *which* memory level is
// the binding roof for this working set, and how much headroom the vector
// unit leaves over scalar issue. Both come straight from the `arch`
// descriptor: one bandwidth roof per cache level (lines per cycle the
// level can return) plus the DRAM roof, and one compute roof per datapath
// (scalar FP pipes, vector unit at `core.vector_bits`).

/// One compute ceiling: a datapath and its chip-level peak.
struct ComputeRoof {
  std::string name;               ///< "scalar DP", "vector SP (128b)", ...
  double gflops = 0.0;
  std::uint32_t vector_bits = 0;  ///< datapath width; 0 = scalar pipes
};

/// One bandwidth ceiling: a cache level or DRAM.
struct MemoryLevel {
  std::string name;            ///< "L1", "L2", "DRAM"
  double bandwidth_gbs = 0.0;  ///< chip-level sustainable bandwidth
  /// Working sets up to this many bytes are served from this level.
  /// 0 marks the DRAM level (unbounded).
  std::uint64_t capacity_bytes = 0;
};

/// The full hierarchy: compute roofs (scalar first, widest vector last)
/// over memory roofs (L1 first, DRAM last). Built from a Platform.
struct HierarchicalRoofline {
  std::vector<ComputeRoof> compute;  ///< ordered narrow -> wide
  std::vector<MemoryLevel> levels;   ///< ordered L1 -> DRAM

  /// The highest compute roof (the flat roofline's `peak_gflops`).
  const ComputeRoof& peak() const;
  /// The scalar compute roof (always present).
  const ComputeRoof& scalar() const;
  /// The level a working set of `bytes` is served from (innermost level
  /// whose capacity holds it; DRAM when none does).
  const MemoryLevel& level_for_working_set(std::uint64_t bytes) const;
  /// Attainable GFLOPS at intensity `ai` against one (level, roof) pair.
  double attainable(double ai, const MemoryLevel& level,
                    const ComputeRoof& roof) const;
  /// peak vector roof / scalar roof (1.0 when there is no vector unit).
  double vector_speedup() const;
};

/// Build the hierarchy from the platform descriptor. Cache-level
/// bandwidth is modelled as one line per `latency_cycles` per core;
/// the DRAM roof is `mem.bandwidth_bytes_per_s`.
HierarchicalRoofline hierarchical_dp_roofline(const arch::Platform& platform);
HierarchicalRoofline hierarchical_sp_roofline(const arch::Platform& platform);

/// A kernel run placed on the hierarchy.
struct HierarchicalPoint {
  std::string name;
  double intensity = 0.0;         ///< flops per byte at the binding level
  double achieved_gflops = 0.0;   ///< chip-scaled achieved rate
  double attainable_gflops = 0.0; ///< min(binding roofs) at this intensity
  double roofline_fraction = 0.0; ///< achieved / attainable
  std::string bound_by;           ///< "L2 bandwidth", "DRAM bandwidth",
                                  ///< or a compute roof name
  bool memory_bound = false;
  /// Attainable gain from the widest vector roof when the run is pinned
  /// under the scalar roof (1.0 = none: already vector or memory bound).
  double vector_headroom = 1.0;
};

/// Places a simulated single-core run on the hierarchy. `working_set_bytes`
/// selects the serving memory level; `vectorized` says whether the kernel
/// already used the vector datapath (element width > 64 bits or explicit
/// packed ops).
HierarchicalPoint place_on_hierarchy(const HierarchicalRoofline& roof,
                                     std::string name, const SimResult& run,
                                     std::uint32_t cores,
                                     std::uint64_t working_set_bytes,
                                     bool vectorized);

}  // namespace mb::sim
