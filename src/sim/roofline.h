// Roofline analysis.
//
// The classic way to see at a glance *why* each Table-II workload lands
// where it does: attainable GFLOPS = min(peak compute, arithmetic
// intensity x memory bandwidth). The module builds a platform's roofline
// from its descriptor and places measured kernel runs (flops and DRAM
// bytes from the simulated counters) on it.
#pragma once

#include <string>
#include <vector>

#include "arch/platform.h"
#include "sim/machine.h"

namespace mb::sim {

struct Roofline {
  double peak_gflops = 0.0;      ///< compute roof (chip)
  double bandwidth_gbs = 0.0;    ///< memory roof (chip)
  /// Arithmetic intensity (flops/byte) where the roofs intersect.
  double ridge_intensity() const { return peak_gflops / bandwidth_gbs; }
  /// Attainable GFLOPS at intensity `ai`.
  double attainable(double ai) const;
};

/// The platform's double- or single-precision roofline.
Roofline dp_roofline(const arch::Platform& platform);
Roofline sp_roofline(const arch::Platform& platform);

/// One kernel run placed on the roofline.
struct RooflinePoint {
  std::string name;
  double intensity = 0.0;        ///< flops per DRAM byte
  double achieved_gflops = 0.0;  ///< from the simulated run (chip-scaled)
  double attainable_gflops = 0.0;
  /// achieved / attainable: < 1 means other bottlenecks (issue width,
  /// dependencies, TLB...) dominate.
  double roofline_fraction = 0.0;
  bool memory_bound = false;  ///< intensity below the ridge
};

/// Places a simulated single-core run on the roofline. `cores` scales the
/// achieved rate to the whole chip (the roofline is chip-level).
RooflinePoint place_on_roofline(const Roofline& roof, std::string name,
                                const SimResult& run,
                                std::uint32_t cores);

}  // namespace mb::sim
