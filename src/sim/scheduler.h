// Scheduling abstraction over the DES engine.
//
// The network and MPI runtime schedule continuations through this
// interface instead of touching an EventQueue directly, so the same
// model code runs on either engine:
//
//  * QueueScheduler — one EventQueue, the classic serial engine;
//  * ShardedEngine (sim/sharded.h) — one EventQueue per topology shard,
//    driven in conservative-lookahead windows across worker threads.
//
// Every schedule() names a *home* node: the topology node whose shard
// must execute the callback. The serial engine ignores it; the sharded
// engine uses it to route cross-shard events through outboxes. Model
// code computes the home as "the node whose state the callback touches"
// (a link's receiving endpoint, a rank's host).
#pragma once

#include <cstdint>

#include "sim/event_queue.h"

namespace mb::sim {

struct SchedulerStats {
  std::uint64_t executed = 0;
  std::uint64_t scheduled = 0;
  std::size_t pending = 0;
  std::size_t max_pending = 0;
};

class Scheduler {
 public:
  using Callback = EventQueue::Callback;

  virtual ~Scheduler() = default;

  /// Current simulated time as seen by the calling context. Outside any
  /// event callback this is the global committed time; inside one it is
  /// the executing shard's local clock.
  virtual double now() const = 0;

  /// Schedules `cb` at absolute time `time_s` on `home`'s shard.
  /// `time_s` must be >= now(); cross-shard schedules must additionally
  /// respect the engine's lookahead (enforced by the sharded engine).
  virtual void schedule(std::uint32_t home, double time_s, Callback cb) = 0;

  /// Runs the simulation to completion; returns the final simulated time
  /// (the max over shards for the sharded engine).
  virtual double run_all() = 0;

  /// True when callbacks may run concurrently on worker threads. Model
  /// code uses this to pick thread-safe pools and deferred metric sinks.
  virtual bool parallel() const { return false; }

  /// Aggregate event counters (summed over shards when sharded).
  virtual SchedulerStats stats() const = 0;
};

/// The classic serial engine: one queue, `home` ignored.
class QueueScheduler final : public Scheduler {
 public:
  explicit QueueScheduler(EventQueue& queue) : queue_(queue) {}

  double now() const override { return queue_.now(); }
  void schedule(std::uint32_t /*home*/, double time_s, Callback cb) override {
    queue_.schedule_at(time_s, std::move(cb));
  }
  double run_all() override { return queue_.run(); }
  SchedulerStats stats() const override {
    return SchedulerStats{queue_.executed(), queue_.scheduled(),
                          queue_.pending(), queue_.max_pending()};
  }

  EventQueue& queue() { return queue_; }

 private:
  EventQueue& queue_;
};

}  // namespace mb::sim
