#include "sim/sharded.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <thread>
#include <utility>

#include "support/check.h"

namespace mb::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

struct ShardedEngine::Pending {
  double time;
  Callback cb;
};

struct ShardedEngine::Shard {
  std::uint32_t id = 0;
  EventQueue queue;
  /// Cross-shard events produced by this shard, indexed by destination.
  /// Written only by the owning worker during a drain, read only by the
  /// destination's worker during the next merge — phases are barrier
  /// separated, so no slot is ever touched concurrently.
  std::vector<std::vector<Pending>> outbox;
};

thread_local ShardedEngine::Shard* ShardedEngine::tls_current_ = nullptr;

/// Sense-free generation barrier. Windows are microseconds of simulated
/// time, so workers meet here millions of times per run; spin-yield beats
/// a futex-based barrier at that granularity.
struct ShardedEngine::Barrier {
  explicit Barrier(std::size_t n) : n_(n) {}
  void arrive_and_wait() {
    const std::size_t gen = gen_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      count_.store(0, std::memory_order_relaxed);
      gen_.store(gen + 1, std::memory_order_release);
    } else {
      while (gen_.load(std::memory_order_acquire) == gen) {
        std::this_thread::yield();
      }
    }
  }
  const std::size_t n_;
  std::atomic<std::size_t> count_{0};
  std::atomic<std::size_t> gen_{0};
};

ShardedEngine::ShardedEngine(std::uint32_t jobs) : executor_(jobs) {}

ShardedEngine::~ShardedEngine() = default;

void ShardedEngine::configure(std::vector<std::uint32_t> node_to_shard,
                              std::uint32_t nshards, double lookahead_s) {
  support::check(nshards_ == 0, "ShardedEngine::configure",
                 "engine already configured");
  support::check(nshards >= 1, "ShardedEngine::configure",
                 "need at least one shard");
  support::check(lookahead_s > 0.0, "ShardedEngine::configure",
                 "lookahead must be positive");
  for (std::uint32_t s : node_to_shard) {
    support::check(s < nshards, "ShardedEngine::configure",
                   "node mapped to nonexistent shard");
  }
  node_to_shard_ = std::move(node_to_shard);
  nshards_ = nshards;
  lookahead_ = lookahead_s;
  shards_.reserve(nshards);
  for (std::uint32_t s = 0; s < nshards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->id = s;
    shard->outbox.resize(nshards);
    shards_.push_back(std::move(shard));
  }
  local_min_.assign(workers(), kInf);
}

std::uint32_t ShardedEngine::workers() const {
  if (nshards_ == 0) return 1;
  return std::min(executor_.jobs(), nshards_);
}

std::uint32_t ShardedEngine::shard_of(std::uint32_t node) const {
  support::check(node < node_to_shard_.size(), "ShardedEngine::shard_of",
                 "node outside the configured topology");
  return node_to_shard_[node];
}

double ShardedEngine::now() const {
  const Shard* cur = tls_current_;
  if (cur != nullptr) return cur->queue.now();
  return final_time_;
}

void ShardedEngine::schedule(std::uint32_t home, double time_s, Callback cb) {
  const std::uint32_t dst = shard_of(home);
  Shard* cur = tls_current_;
  if (cur == nullptr) {
    // Single-threaded setup context: route straight into the home queue.
    shards_[dst]->queue.schedule_at(time_s, std::move(cb));
    return;
  }
  if (cur->id == dst) {
    cur->queue.schedule_at(time_s, std::move(cb));
    return;
  }
  // The conservative guarantee: a cross-shard interaction always rides a
  // cross-shard link, whose latency is >= lookahead, so it can never land
  // inside the window currently draining.
  support::check(time_s >= window_end_, "ShardedEngine::schedule",
                 "cross-shard event inside the lookahead window");
  cur->outbox[dst].push_back(Pending{time_s, std::move(cb)});
}

void ShardedEngine::merge_inbox(std::uint32_t s) {
  // Fixed src order + append order within each outbox: the seq numbers
  // handed out by schedule_at depend only on the simulation.
  EventQueue& queue = shards_[s]->queue;
  for (std::uint32_t src = 0; src < nshards_; ++src) {
    std::vector<Pending>& box = shards_[src]->outbox[s];
    for (Pending& p : box) queue.schedule_at(p.time, std::move(p.cb));
    box.clear();
  }
}

void ShardedEngine::worker_loop(std::size_t w) {
  const std::uint32_t nworkers = workers();
  for (;;) {
    // Phase A: merge inboxes for owned shards, report the local minimum.
    double lmin = kInf;
    for (std::uint32_t s = static_cast<std::uint32_t>(w); s < nshards_;
         s += nworkers) {
      merge_inbox(s);
      lmin = std::min(lmin, shards_[s]->queue.next_time());
    }
    local_min_[w] = lmin;
    barrier_->arrive_and_wait();

    // Phase B: worker 0 publishes the window (or the stop flag).
    if (w == 0) {
      double t = kInf;
      for (double m : local_min_) t = std::min(t, m);
      if (failed_ || t == kInf) {
        done_ = true;
      } else {
        window_end_ = t + lookahead_;
        ++windows_;
      }
    }
    barrier_->arrive_and_wait();
    if (done_) return;

    // Phase C: drain owned shards up to (strictly before) the horizon.
    for (std::uint32_t s = static_cast<std::uint32_t>(w); s < nshards_;
         s += nworkers) {
      Shard* shard = shards_[s].get();
      tls_current_ = shard;
      try {
        shard->queue.run_before(window_end_);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex_);
        if (!error_) error_ = std::current_exception();
        failed_ = true;
      }
      tls_current_ = nullptr;
    }
    barrier_->arrive_and_wait();
  }
}

double ShardedEngine::run_all() {
  support::check(nshards_ > 0, "ShardedEngine::run_all",
                 "configure() must be called before run_all()");
  const std::uint32_t nworkers = workers();
  done_ = false;
  failed_ = false;
  error_ = nullptr;
  local_min_.assign(nworkers, kInf);
  barrier_ = std::make_unique<Barrier>(nworkers);
  executor_.run_pinned(nworkers,
                       [this](std::size_t w) { worker_loop(w); });
  if (error_) std::rethrow_exception(error_);
  double final_time = 0.0;
  for (const auto& shard : shards_) {
    final_time = std::max(final_time, shard->queue.now());
  }
  final_time_ = final_time;
  return final_time;
}

SchedulerStats ShardedEngine::stats() const {
  SchedulerStats total;
  for (const auto& shard : shards_) {
    total.executed += shard->queue.executed();
    total.scheduled += shard->queue.scheduled();
    total.pending += shard->queue.pending();
    total.max_pending += shard->queue.max_pending();
  }
  return total;
}

}  // namespace mb::sim
