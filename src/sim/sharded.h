// Conservative-lookahead parallel DES engine (Chandy–Misra–Bryant style,
// barrier-synchronized windows).
//
// The topology is partitioned into shards (one per leaf-switch subtree
// plus one for the root switch; see apps/cluster.cpp), each with its own
// EventQueue. Workers drain whole windows [T, T+L) in lockstep, where
//
//   L = min latency over links whose endpoints live in different shards.
//
// Why this is safe: every cross-shard interaction in the model traverses
// a cross-shard link, so a callback executing at time t < T+L can only
// schedule onto another shard at t' >= t + L >= T + L — never inside the
// current window. Shards therefore drain [T, T+L) with no inbound
// surprises, and cross-shard events ride per-(src,dst) outboxes that are
// merged at the next barrier in fixed shard order.
//
// Determinism: each shard's queue sees schedules in an order that depends
// only on the simulation, never on thread timing — local schedules in
// event-execution order, merged cross-shard events in (src shard, append
// order) order. Tie-breaking seq numbers are assigned from that order, so
// results are byte-identical for any worker count, including 1. The
// engine is still *sharded* at jobs=1 (same windows, same merge order),
// which is what the CI identity gate compares against jobs=N.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/scheduler.h"
#include "support/executor.h"

namespace mb::sim {

class ShardedEngine final : public Scheduler {
 public:
  /// `jobs` bounds the worker count; the effective count is
  /// min(jobs, shard count), each worker owning shards round-robin.
  explicit ShardedEngine(std::uint32_t jobs);
  ~ShardedEngine() override;

  /// Supplies the partition once the topology exists: `node_to_shard[n]`
  /// is the shard owning topology node n, `lookahead_s` the minimum
  /// cross-shard link latency (+infinity when nshards == 1). Must be
  /// called before the first schedule(); lookahead must be > 0.
  void configure(std::vector<std::uint32_t> node_to_shard,
                 std::uint32_t nshards, double lookahead_s);

  double now() const override;
  void schedule(std::uint32_t home, double time_s, Callback cb) override;
  double run_all() override;
  bool parallel() const override { return true; }
  SchedulerStats stats() const override;

  std::uint32_t shards() const { return nshards_; }
  std::uint32_t workers() const;
  double lookahead() const { return lookahead_; }
  std::uint64_t windows() const { return windows_; }
  std::uint32_t shard_of(std::uint32_t node) const;

 private:
  struct Shard;
  struct Pending;

  void merge_inbox(std::uint32_t s);
  void worker_loop(std::size_t w);

  support::Executor executor_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::uint32_t> node_to_shard_;
  std::uint32_t nshards_ = 0;
  double lookahead_ = 0.0;

  // Window state: written by worker 0 between barriers, read by all.
  double window_end_ = 0.0;
  bool done_ = false;
  std::vector<double> local_min_;
  std::uint64_t windows_ = 0;
  double final_time_ = 0.0;

  // First exception thrown inside a shard drain; workers keep honoring
  // the barrier protocol after a failure so nobody deadlocks, and
  // run_all() rethrows once the pool has drained.
  bool failed_ = false;
  std::exception_ptr error_;
  std::mutex error_mutex_;

  struct Barrier;
  std::unique_ptr<Barrier> barrier_;

  /// The shard draining on this thread; null on the main thread outside
  /// run_all() (setup and teardown are single-threaded).
  static thread_local Shard* tls_current_;
};

}  // namespace mb::sim
