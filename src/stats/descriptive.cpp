#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace mb::stats {
namespace {

double interpolated_percentile(std::vector<double>& sorted, double p) {
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double mean(std::span<const double> xs) {
  support::check(!xs.empty(), "stats::mean", "empty sample set");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  support::check(!xs.empty(), "stats::variance", "empty sample set");
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  support::check(!xs.empty(), "stats::percentile", "empty sample set");
  support::check(p >= 0.0 && p <= 100.0, "stats::percentile",
                 "p must be in [0, 100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return interpolated_percentile(sorted, p);
}

double ci_halfwidth(std::span<const double> xs, double z) {
  support::check(!xs.empty(), "stats::ci_halfwidth", "empty sample set");
  if (xs.size() < 2) return 0.0;
  return z * stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

double cv(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / std::fabs(m);
}

double geomean(std::span<const double> xs) {
  support::check(!xs.empty(), "stats::geomean", "empty sample set");
  double acc = 0.0;
  for (double x : xs) {
    support::check(x > 0.0, "stats::geomean", "samples must be positive");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

Summary summarize(std::span<const double> xs) {
  support::check(!xs.empty(), "stats::summarize", "empty sample set");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  Summary s;
  s.n = xs.size();
  s.mean = mean(xs);
  s.variance = variance(xs);
  s.stddev = std::sqrt(s.variance);
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = interpolated_percentile(sorted, 50.0);
  s.q1 = interpolated_percentile(sorted, 25.0);
  s.q3 = interpolated_percentile(sorted, 75.0);
  return s;
}

}  // namespace mb::stats
