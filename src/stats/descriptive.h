// Descriptive statistics over benchmark sample sets.
//
// The paper's methodological contribution (Section V) is that performance on
// low-power platforms must be characterized statistically — single numbers
// hide bimodality, allocation bias and scheduler anomalies. These helpers are
// the numeric backbone of mb::core's result sets.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mb::stats {

/// Summary of a sample set.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased (n-1) sample variance
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q1 = 0.0;  ///< 25th percentile
  double q3 = 0.0;  ///< 75th percentile
};

/// Computes the full summary. Requires at least one sample.
Summary summarize(std::span<const double> xs);

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  ///< unbiased; 0 for n < 2
double stddev(std::span<const double> xs);
double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);

/// Half-width of the normal-approximation confidence interval on the mean.
/// `z` defaults to 1.96 (95%). Returns 0 for n < 2.
double ci_halfwidth(std::span<const double> xs, double z = 1.96);

/// Coefficient of variation (stddev / mean); 0 when mean == 0.
double cv(std::span<const double> xs);

/// Geometric mean; requires strictly positive samples.
double geomean(std::span<const double> xs);

}  // namespace mb::stats
