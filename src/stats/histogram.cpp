#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.h"
#include "support/table.h"

namespace mb::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  support::check(lo < hi, "Histogram", "lo must be < hi");
  support::check(bins > 0, "Histogram", "bins must be positive");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto raw = static_cast<long long>(std::floor((x - lo_) / width));
  const long long max_bin = static_cast<long long>(counts_.size()) - 1;
  raw = std::clamp(raw, 0LL, max_bin);
  ++counts_[static_cast<std::size_t>(raw)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
  support::check(bin < counts_.size(), "Histogram::count", "bin out of range");
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  support::check(bin < counts_.size(), "Histogram::bin_center",
                 "bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

std::string Histogram::render(std::size_t width) const {
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * width / std::max<std::size_t>(peak, 1);
    out << support::fmt_fixed(bin_center(b), 3) << " | "
        << std::string(bar, '#') << " " << counts_[b] << '\n';
  }
  return out.str();
}

}  // namespace mb::stats
