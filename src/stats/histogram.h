// Fixed-bin histogram for distribution reporting in benches and the tuning
// harness.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace mb::stats {

class Histogram {
 public:
  /// Builds `bins` equal-width bins over [lo, hi). Requires lo < hi, bins > 0.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds a sample; values outside [lo, hi) are clamped into the edge bins.
  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }

  /// Center of a bin.
  double bin_center(std::size_t bin) const;

  /// ASCII rendering, one line per bin, bar scaled to `width` chars.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mb::stats
