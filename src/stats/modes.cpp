#include "stats/modes.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.h"
#include "support/check.h"

namespace mb::stats {

ModeSplit split_modes(std::span<const double> xs, double min_separation,
                      double min_fraction, double min_ratio) {
  support::check(xs.size() >= 2, "stats::split_modes",
                 "need at least two samples");
  ModeSplit out;

  double lo = *std::min_element(xs.begin(), xs.end());
  double hi = *std::max_element(xs.begin(), xs.end());
  if (lo == hi) {
    out.low_center = out.high_center = lo;
    out.high_indices.resize(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) out.high_indices[i] = i;
    return out;
  }

  // 1-D 2-means, initialized at the extremes; converges in a few sweeps.
  double c0 = lo, c1 = hi;
  std::vector<bool> in_high(xs.size());
  for (int iter = 0; iter < 64; ++iter) {
    double sum0 = 0, sum1 = 0;
    std::size_t n0 = 0, n1 = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      bool high = std::fabs(xs[i] - c1) < std::fabs(xs[i] - c0);
      in_high[i] = high;
      if (high) {
        sum1 += xs[i];
        ++n1;
      } else {
        sum0 += xs[i];
        ++n0;
      }
    }
    if (n0 == 0 || n1 == 0) break;
    double nc0 = sum0 / static_cast<double>(n0);
    double nc1 = sum1 / static_cast<double>(n1);
    if (nc0 == c0 && nc1 == c1) break;
    c0 = nc0;
    c1 = nc1;
  }

  std::vector<double> low_vals, high_vals;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (in_high[i]) {
      out.high_indices.push_back(i);
      high_vals.push_back(xs[i]);
    } else {
      out.low_indices.push_back(i);
      low_vals.push_back(xs[i]);
    }
  }
  if (low_vals.empty() || high_vals.empty()) {
    out.low_center = out.high_center = mean(xs);
    return out;
  }

  out.low_center = mean(low_vals);
  out.high_center = mean(high_vals);

  const double var_low = low_vals.size() > 1 ? variance(low_vals) : 0.0;
  const double var_high = high_vals.size() > 1 ? variance(high_vals) : 0.0;
  const double pooled = std::sqrt(
      (var_low * static_cast<double>(low_vals.size() - 1) +
       var_high * static_cast<double>(high_vals.size() - 1)) /
      std::max<double>(1.0, static_cast<double>(xs.size() - 2)));
  const double gap = out.high_center - out.low_center;
  // Guard against a degenerate zero-spread pool: any finite gap with zero
  // within-cluster spread is infinitely separated.
  out.separation = pooled > 0.0 ? gap / pooled
                                : std::numeric_limits<double>::infinity();

  const double frac_low =
      static_cast<double>(low_vals.size()) / static_cast<double>(xs.size());
  const double frac_high =
      static_cast<double>(high_vals.size()) / static_cast<double>(xs.size());
  const bool ratio_ok =
      out.low_center <= 0.0 ||
      out.high_center / out.low_center >= min_ratio;
  out.bimodal = out.separation >= min_separation &&
                frac_low >= min_fraction && frac_high >= min_fraction &&
                ratio_ok;
  return out;
}

std::size_t count_runs(std::span<const std::size_t> sorted_indices) {
  if (sorted_indices.empty()) return 0;
  std::size_t runs = 1;
  for (std::size_t i = 1; i < sorted_indices.size(); ++i)
    if (sorted_indices[i] != sorted_indices[i - 1] + 1) ++runs;
  return runs;
}

bool is_temporally_clustered(std::span<const std::size_t> sorted_indices,
                             std::size_t total, double cluster_factor) {
  if (sorted_indices.size() < 2 || total == 0) return false;
  const double k = static_cast<double>(sorted_indices.size());
  const double n = static_cast<double>(total);
  const double expected = k * (1.0 - k / n) + 1.0;
  const double runs = static_cast<double>(count_runs(sorted_indices));
  return runs <= std::max(1.0, cluster_factor * expected);
}

}  // namespace mb::stats
