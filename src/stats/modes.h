// Execution-mode detection.
//
// Figure 5 of the paper shows that real-time scheduling on the ARM Snowball
// produces two clearly separated "modes" of effective bandwidth, and that
// degraded samples occur consecutively. This module detects such structure:
// a 1-D 2-means split with a separation criterion, plus a run-length test for
// temporal clustering.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mb::stats {

/// Result of a two-mode split of a 1-D sample set.
struct ModeSplit {
  bool bimodal = false;     ///< true when the separation criterion is met
  double low_center = 0.0;  ///< mean of the lower cluster
  double high_center = 0.0; ///< mean of the upper cluster
  double separation = 0.0;  ///< gap / pooled within-cluster spread
  std::vector<std::size_t> low_indices;   ///< sample indices in lower mode
  std::vector<std::size_t> high_indices;  ///< sample indices in upper mode
};

/// Splits samples into two clusters with 1-D k-means (k=2, exact
/// initialization at min/max) and decides bimodality: the gap between the
/// cluster centers must exceed `min_separation` times the pooled
/// within-cluster standard deviation, each cluster must hold at least
/// `min_fraction` of the samples, and — for positive-valued metrics — the
/// centers must differ by at least `min_ratio` (statistically separated
/// clusters 1% apart are noise structure, not execution modes).
ModeSplit split_modes(std::span<const double> xs, double min_separation = 3.0,
                      double min_fraction = 0.05, double min_ratio = 1.25);

/// Measures temporal clustering of a subset of sample indices: the number of
/// maximal consecutive runs that cover the subset. A subset of size k spread
/// uniformly at random over n slots has ~k(1 - k/n) expected runs; degraded
/// samples that occur "consecutively" (paper Fig. 5b) form very few runs.
std::size_t count_runs(std::span<const std::size_t> sorted_indices);

/// True when the subset is significantly more temporally clustered than a
/// uniform scattering would be: runs <= max(1, cluster_factor * expected).
bool is_temporally_clustered(std::span<const std::size_t> sorted_indices,
                             std::size_t total, double cluster_factor = 0.33);

}  // namespace mb::stats
