#include "stats/regression.h"

#include <cmath>
#include <vector>

#include "support/check.h"

namespace mb::stats {
namespace {

double sum(std::span<const double> v) {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc;
}

}  // namespace

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  support::check(xs.size() == ys.size(), "stats::fit_linear",
                 "xs and ys must have equal size");
  support::check(xs.size() >= 2, "stats::fit_linear",
                 "need at least two points");
  const auto n = static_cast<double>(xs.size());
  const double sx = sum(xs), sy = sum(ys);
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  support::check(denom != 0.0, "stats::fit_linear",
                 "x values must not all be equal");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double ymean = sy / n;
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.slope * xs[i] + fit.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ymean) * (ys[i] - ymean);
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double ExponentialFit::operator()(double x) const {
  return a * std::exp(b * x);
}

double ExponentialFit::solve_for_x(double target) const {
  support::check(b != 0.0, "ExponentialFit::solve_for_x", "b must be nonzero");
  support::check(a > 0.0 && target > 0.0, "ExponentialFit::solve_for_x",
                 "a and target must be positive");
  return std::log(target / a) / b;
}

ExponentialFit fit_exponential(std::span<const double> xs,
                               std::span<const double> ys) {
  support::check(xs.size() == ys.size(), "stats::fit_exponential",
                 "xs and ys must have equal size");
  std::vector<double> logy(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) {
    support::check(ys[i] > 0.0, "stats::fit_exponential",
                   "ys must be strictly positive");
    logy[i] = std::log(ys[i]);
  }
  const LinearFit lin = fit_linear(xs, logy);
  ExponentialFit fit;
  fit.a = std::exp(lin.intercept);
  fit.b = lin.slope;
  fit.r2 = lin.r2;
  return fit;
}

}  // namespace mb::stats
