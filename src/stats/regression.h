// Least-squares fits used for scaling curves (Fig. 3) and the TOP500
// exponential-growth projection (Fig. 1).
#pragma once

#include <span>

namespace mb::stats {

/// y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// Ordinary least squares. Requires xs.size() == ys.size() >= 2 and at least
/// two distinct x values.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// y = a * exp(b * x), fitted as a log-linear regression. Requires strictly
/// positive ys.
struct ExponentialFit {
  double a = 0.0;
  double b = 0.0;
  double r2 = 0.0;

  double operator()(double x) const;

  /// Solves y(x) = target for x (requires b != 0, target/a > 0).
  double solve_for_x(double target) const;
};

ExponentialFit fit_exponential(std::span<const double> xs,
                               std::span<const double> ys);

}  // namespace mb::stats
