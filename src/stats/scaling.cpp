#include "stats/scaling.h"

#include <vector>

#include "stats/regression.h"
#include "support/check.h"

namespace mb::stats {

std::vector<ScalingPoint> strong_scaling(std::span<const int> cores,
                                         std::span<const double> times) {
  support::check(cores.size() == times.size(), "stats::strong_scaling",
                 "cores and times must have equal size");
  support::check(!cores.empty(), "stats::strong_scaling", "empty series");
  support::check(cores[0] > 0 && times[0] > 0.0, "stats::strong_scaling",
                 "baseline must have positive cores and time");

  std::vector<ScalingPoint> out(cores.size());
  const double base_work = times[0] * static_cast<double>(cores[0]);
  for (std::size_t i = 0; i < cores.size(); ++i) {
    support::check(times[i] > 0.0, "stats::strong_scaling",
                   "times must be positive");
    out[i].cores = cores[i];
    out[i].time_s = times[i];
    out[i].speedup = base_work / times[i];
    out[i].efficiency = out[i].speedup / static_cast<double>(cores[i]);
  }
  return out;
}

double final_efficiency(std::span<const ScalingPoint> series) {
  support::check(!series.empty(), "stats::final_efficiency", "empty series");
  return series.back().efficiency;
}

bool tail_is_linear(std::span<const ScalingPoint> series, int from_cores,
                    double min_r2) {
  std::vector<double> xs, ys;
  for (const auto& p : series) {
    if (p.cores >= from_cores) {
      xs.push_back(static_cast<double>(p.cores));
      ys.push_back(p.speedup);
    }
  }
  if (xs.size() < 3) return false;
  return fit_linear(xs, ys).r2 >= min_r2;
}

}  // namespace mb::stats
