// Strong-scaling bookkeeping: speedup and parallel-efficiency series as
// plotted in Figure 3 of the paper.
#pragma once

#include <span>
#include <vector>

namespace mb::stats {

/// One point of a strong-scaling study.
struct ScalingPoint {
  int cores = 0;
  double time_s = 0.0;
  double speedup = 0.0;     ///< relative to the baseline point, scaled so the
                            ///< baseline's speedup equals its core count
  double efficiency = 0.0;  ///< speedup / cores
};

/// Builds speedup/efficiency from (cores, time) pairs. The first entry is the
/// baseline; its speedup is defined as its own core count (the paper's
/// SPECFEM3D curve is "versus a 4 core run" — speedup 4 at 4 cores), so ideal
/// scaling is the y = x diagonal for any baseline.
std::vector<ScalingPoint> strong_scaling(std::span<const int> cores,
                                         std::span<const double> times);

/// Parallel efficiency at the largest core count of a series.
double final_efficiency(std::span<const ScalingPoint> series);

/// True when the tail of the speedup curve is linear in core count:
/// fits speedup vs cores over points with cores >= from_cores and checks
/// r^2 >= min_r2. (The paper notes LINPACK's curve "is linear after 32
/// nodes", indicating scaling would continue.)
bool tail_is_linear(std::span<const ScalingPoint> series, int from_cores,
                    double min_r2 = 0.98);

}  // namespace mb::stats
