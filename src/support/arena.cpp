#include "support/arena.h"

#include <cstdlib>

#include "support/check.h"

namespace mb::support {

Arena::Arena(std::size_t chunk_bytes) : chunk_bytes_(chunk_bytes) {
  check(chunk_bytes >= 256, "Arena", "chunk size must be at least 256 bytes");
}

Arena::~Arena() {
  for (unsigned char* chunk : chunks_) ::operator delete[](chunk);
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  check(align != 0 && (align & (align - 1)) == 0, "Arena::allocate",
        "alignment must be a power of two");
  check(align <= alignof(std::max_align_t), "Arena::allocate",
        "over-aligned types are not supported");
  auto addr = reinterpret_cast<std::uintptr_t>(cursor_);
  const std::uintptr_t aligned = (addr + align - 1) & ~(align - 1);
  const std::size_t needed = (aligned - addr) + bytes;
  if (cursor_ == nullptr || static_cast<std::size_t>(end_ - cursor_) < needed) {
    const std::size_t size = bytes > chunk_bytes_ ? bytes + align
                                                  : chunk_bytes_;
    auto* chunk = static_cast<unsigned char*>(::operator new[](size));
    chunks_.push_back(chunk);
    cursor_ = chunk;
    end_ = chunk + size;
    return allocate(bytes, align);
  }
  cursor_ = reinterpret_cast<unsigned char*>(aligned + bytes);
  bytes_allocated_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

void Arena::reset() {
  // Keep the first chunk: steady-state runs reuse it without churn.
  while (chunks_.size() > 1) {
    ::operator delete[](chunks_.back());
    chunks_.pop_back();
  }
  if (!chunks_.empty()) {
    cursor_ = chunks_.front();
    end_ = cursor_ + chunk_bytes_;
  } else {
    cursor_ = end_ = nullptr;
  }
  bytes_allocated_ = 0;
}

}  // namespace mb::support
