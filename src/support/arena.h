// Arena and pool allocation for simulation hot paths.
//
// The cluster simulator creates and retires millions of short-lived
// objects per run — in-flight messages above all. Going through the
// global allocator for each one costs a malloc/free pair plus cache
// pollution; at 4096 simulated ranks that was a double-digit share of
// the wall time (DESIGN.md §10). An Arena hands out bump-pointer chunks
// that are all released at once when the arena dies; a Pool<T> layers a
// free list on top so fixed-size records recycle without touching the
// arena again.
//
// Pool<T> is thread-compatible by default and can be made thread-safe
// with a spinlock (Pool<T, true>): the sharded DES engine allocates a
// message on the sending rank's shard and frees it on the receiving
// rank's shard, so allocate()/release() may race across shard workers.
// The lock is an uncontended atomic_flag in the common case — still far
// cheaper than the global allocator's locking.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <thread>
#include <utility>
#include <vector>

namespace mb::support {

/// Bump allocator: allocations are freed en masse by destroying (or
/// reset()ing) the arena. Not thread-safe.
class Arena {
 public:
  /// `chunk_bytes` is the granularity of the backing allocations.
  explicit Arena(std::size_t chunk_bytes = 64 * 1024);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two,
  /// at most alignof(std::max_align_t)).
  void* allocate(std::size_t bytes, std::size_t align);

  /// Constructs a T in arena storage. The destructor is NOT run by the
  /// arena — only trivially destructible payloads, or callers that
  /// destroy manually, should use this.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    return ::new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Discards all allocations, keeping the first chunk for reuse.
  void reset();

  std::size_t bytes_allocated() const { return bytes_allocated_; }
  std::size_t chunks() const { return chunks_.size(); }

 private:
  std::size_t chunk_bytes_;
  std::vector<unsigned char*> chunks_;
  unsigned char* cursor_ = nullptr;
  unsigned char* end_ = nullptr;
  std::size_t bytes_allocated_ = 0;
};

/// Fixed-size object pool over an Arena: allocate() pops the free list or
/// bumps the arena; release() runs the destructor and pushes the slot back.
/// With ThreadSafe = true, allocate/release may be called concurrently
/// from multiple threads (the arena itself is only touched under the lock).
template <typename T, bool ThreadSafe = false>
class Pool {
 public:
  explicit Pool(std::size_t chunk_bytes = 64 * 1024) : arena_(chunk_bytes) {}

  template <typename... Args>
  T* allocate(Args&&... args) {
    lock();
    void* slot;
    if (free_ != nullptr) {
      slot = free_;
      free_ = free_->next;
    } else {
      slot = arena_.allocate(slot_bytes(), slot_align());
    }
    ++live_;
    unlock();
    return ::new (slot) T(std::forward<Args>(args)...);
  }

  void release(T* obj) {
    obj->~T();
    lock();
    auto* node = ::new (static_cast<void*>(obj)) FreeNode{free_};
    free_ = node;
    --live_;
    unlock();
  }

  std::size_t live() const { return live_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr std::size_t slot_bytes() {
    return sizeof(T) > sizeof(FreeNode) ? sizeof(T) : sizeof(FreeNode);
  }
  static constexpr std::size_t slot_align() {
    return alignof(T) > alignof(FreeNode) ? alignof(T) : alignof(FreeNode);
  }

  void lock() {
    if constexpr (ThreadSafe) {
      while (lock_.test_and_set(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
  }
  void unlock() {
    if constexpr (ThreadSafe) lock_.clear(std::memory_order_release);
  }

  Arena arena_;
  FreeNode* free_ = nullptr;
  std::size_t live_ = 0;
  std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
};

}  // namespace mb::support
