#include "support/check.h"

namespace mb::support {

void check(bool cond, std::string_view where, std::string_view message) {
  if (!cond) fail(where, message);
}

void fail(std::string_view where, std::string_view message) {
  std::string what;
  what.reserve(where.size() + message.size() + 2);
  what.append(where);
  what.append(": ");
  what.append(message);
  throw Error(what);
}

}  // namespace mb::support
