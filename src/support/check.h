// Error handling primitives for the montblanc library.
//
// The library reports precondition violations and invariant breaks by
// throwing mb::support::Error (a std::runtime_error). Simulation code never
// calls abort(); callers (tests, benches, examples) are expected to treat an
// Error as a bug in their configuration or in the library itself.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace mb::support {

/// Exception type thrown on precondition/invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws Error with the given message when `cond` is false.
///
/// Used for preconditions on public API entry points. `where` should name
/// the function or subsystem for diagnosability.
void check(bool cond, std::string_view where, std::string_view message);

/// Unconditionally reports a broken invariant.
[[noreturn]] void fail(std::string_view where, std::string_view message);

}  // namespace mb::support
