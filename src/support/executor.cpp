#include "support/executor.h"

#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "support/check.h"

namespace mb::support {

Executor::Executor(std::uint32_t jobs) : jobs_(jobs == 0 ? 1 : jobs) {}

void Executor::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  tasks_run_ += n;

  const std::size_t workers = std::min<std::size_t>(jobs_, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Per-worker deques, sharded round-robin. Owners pop from the front,
  // thieves from the back; a plain mutex per deque is plenty at this task
  // granularity (each task is a full simulation).
  struct Queue {
    std::mutex m;
    std::deque<std::size_t> q;
  };
  std::vector<Queue> queues(workers);
  for (std::size_t i = 0; i < n; ++i) queues[i % workers].q.push_back(i);

  std::atomic<std::uint64_t> steals{0};
  std::atomic<bool> abort{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  auto worker = [&](std::size_t self) {
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      std::size_t task = 0;
      bool found = false;
      bool stolen = false;
      {
        std::lock_guard<std::mutex> lock(queues[self].m);
        if (!queues[self].q.empty()) {
          task = queues[self].q.front();
          queues[self].q.pop_front();
          found = true;
        }
      }
      for (std::size_t k = 1; !found && k < workers; ++k) {
        Queue& victim = queues[(self + k) % workers];
        std::lock_guard<std::mutex> lock(victim.m);
        if (!victim.q.empty()) {
          task = victim.q.back();
          victim.q.pop_back();
          found = true;
          stolen = true;
        }
      }
      // Tasks are only ever removed, so one full empty scan means done.
      if (!found) return;
      if (stolen) steals.fetch_add(1, std::memory_order_relaxed);
      try {
        fn(task);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) threads.emplace_back(worker, w);
  worker(0);  // the calling thread pulls its weight too
  for (std::thread& t : threads) t.join();

  steals_ += steals.load();
  if (error) std::rethrow_exception(error);
}

void Executor::run_pinned(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  check(n <= jobs_, "Executor::run_pinned",
        "pinned task count must not exceed jobs()");
  tasks_run_ += n;
  if (n == 1) {
    fn(0);
    return;
  }

  std::mutex error_mutex;
  std::exception_ptr error;
  auto body = [&](std::size_t i) {
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(n - 1);
  for (std::size_t i = 1; i < n; ++i) threads.emplace_back(body, i);
  body(0);
  for (std::thread& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace mb::support
