// Work-stealing index pool (moved here from core/campaign so the DES
// engine can share it without a core -> sim dependency cycle).
//
// Two execution modes:
//  * run(): tasks are sharded round-robin across per-worker deques; an
//    idle worker pops from its own front and steals from a victim's back.
//    Tasks may run in any order and a single thread may run several —
//    right for independent campaign simulations.
//  * run_pinned(): task i runs on its own dedicated thread, all tasks
//    concurrently. Required when tasks synchronize with each other (the
//    sharded DES engine's window barriers): under stealing, one thread
//    could pick up two barrier participants and deadlock against itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace mb::support {

class Executor {
 public:
  explicit Executor(std::uint32_t jobs);

  std::uint32_t jobs() const { return jobs_; }

  /// Invokes fn(i) exactly once for every i in [0, n), in unspecified
  /// order across up to jobs() threads (the calling thread participates).
  /// fn must not touch the obs registry or profiler. The first exception
  /// thrown by any task is rethrown here after all workers stop.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Invokes fn(i) for every i in [0, n) with every invocation on its own
  /// thread, all concurrent (the calling thread runs task 0). No stealing:
  /// safe for tasks that barrier against each other. The first exception
  /// is rethrown after all threads join; n must be <= jobs().
  void run_pinned(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::uint64_t tasks_run() const { return tasks_run_; }
  std::uint64_t steals() const { return steals_; }

 private:
  std::uint32_t jobs_;
  std::uint64_t tasks_run_ = 0;
  std::uint64_t steals_ = 0;
};

}  // namespace mb::support
