// Process exit codes shared by the CLI tools.
//
// One convention for every command instead of scattered literals:
//   0  success (clean lint, no regression, recovered chaos run, ...)
//   1  internal error (unexpected exception; set by the top-level handler)
//   2  usage error (unknown command, malformed flag value)
//   3  findings (lint/verify errors, confirmed perf regression,
//      unrecovered chaos failure) — "the run worked, the answer is bad"
#pragma once

namespace mb::support {

inline constexpr int kExitOk = 0;
inline constexpr int kExitInternalError = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitFindings = 3;

}  // namespace mb::support
