#include "support/hash.h"

#include <cstring>

#include "support/rng.h"

namespace mb::support {

Hasher& Hasher::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    state_ ^= static_cast<std::uint64_t>(p[i]);
    state_ *= kFnv64Prime;
  }
  return *this;
}

Hasher& Hasher::str(std::string_view s) {
  u64(static_cast<std::uint64_t>(s.size()));
  return bytes(s.data(), s.size());
}

Hasher& Hasher::u64(std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xffU);
  }
  return bytes(buf, sizeof(buf));
}

Hasher& Hasher::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return u64(bits);
}

std::uint64_t fnv1a64(std::string_view s) {
  Hasher h;
  h.bytes(s.data(), s.size());
  return h.digest();
}

std::string hex64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xfU];
    v >>= 4;
  }
  return out;
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t config_hash) {
  // Sum with a SplitMix64 mix on top: two tasks whose (base, hash) pairs
  // differ in any bit land in unrelated SplitMix64 streams.
  std::uint64_t state = base_seed + 0x9e3779b97f4a7c15ULL * config_hash;
  return splitmix64(state);
}

}  // namespace mb::support
