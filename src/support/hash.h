// Stable content hashing.
//
// The result cache (core/result_cache.h) addresses simulation outcomes by
// a hash of their full configuration, and the campaign runner derives
// per-task RNG seeds from the same hash — so both need a hash function
// that is identical across processes, builds and platforms. std::hash
// guarantees none of that; this is FNV-1a 64-bit over an explicitly
// serialized byte stream (strings length-prefixed, integers fixed-width
// little-endian, doubles by IEEE-754 bit pattern), which does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace mb::support {

inline constexpr std::uint64_t kFnv64Offset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv64Prime = 0x100000001b3ULL;

/// Incremental FNV-1a 64-bit hasher. Each feed method serializes its
/// value unambiguously before mixing, so `str("ab").str("c")` and
/// `str("a").str("bc")` produce different digests.
class Hasher {
 public:
  Hasher& bytes(const void* data, std::size_t n);
  /// Length-prefixed string (no concatenation ambiguity).
  Hasher& str(std::string_view s);
  /// Fixed-width little-endian integer.
  Hasher& u64(std::uint64_t v);
  /// IEEE-754 bit pattern (note: +0.0 and -0.0 hash differently).
  Hasher& f64(double v);

  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kFnv64Offset;
};

/// One-shot FNV-1a over the raw bytes of `s` (no length prefix — matches
/// the published FNV test vectors).
std::uint64_t fnv1a64(std::string_view s);

/// 16 lowercase hex digits, zero-padded ("00000000000000ff").
std::string hex64(std::uint64_t v);

/// Deterministic per-task seed: mixes a campaign base seed (MB_SEED or
/// --seed) with a task's configuration hash through SplitMix64, so every
/// parameter point gets an independent, reproducible RNG stream that does
/// not depend on execution order or worker count.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t config_hash);

}  // namespace mb::support
