#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/check.h"

namespace mb::support {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values within the exactly-representable range print without
  // an exponent or trailing ".0" noise.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

JsonWriter::JsonWriter(bool pretty) : pretty_(pretty) {}

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  out_ += '\n';
  out_.append(stack_.size() * 2, ' ');
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    check(out_.empty(), "JsonWriter",
          "only one top-level value is allowed");
    return;
  }
  if (stack_.back() == Frame::kObject) {
    check(!expect_key_, "JsonWriter", "value emitted where a key belongs");
    expect_key_ = true;  // next token in this object must be a key again
    return;              // key() already placed comma/indent
  }
  if (!first_in_frame_) out_ += ',';
  newline_indent();
  first_in_frame_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  expect_key_ = true;
  first_in_frame_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  check(!stack_.empty() && stack_.back() == Frame::kObject, "JsonWriter",
        "end_object without matching begin_object");
  check(expect_key_, "JsonWriter", "dangling key at end_object");
  const bool empty = first_in_frame_;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ += '}';
  first_in_frame_ = false;
  expect_key_ = !stack_.empty() && stack_.back() == Frame::kObject;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  expect_key_ = false;
  first_in_frame_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  check(!stack_.empty() && stack_.back() == Frame::kArray, "JsonWriter",
        "end_array without matching begin_array");
  const bool empty = first_in_frame_;
  stack_.pop_back();
  if (!empty) newline_indent();
  out_ += ']';
  first_in_frame_ = false;
  expect_key_ = !stack_.empty() && stack_.back() == Frame::kObject;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  check(!stack_.empty() && stack_.back() == Frame::kObject, "JsonWriter",
        "key outside of an object");
  check(expect_key_, "JsonWriter", "two keys in a row");
  if (!first_in_frame_) out_ += ',';
  newline_indent();
  first_in_frame_ = false;
  out_ += '"';
  out_ += json_escape(name);
  out_ += pretty_ ? "\": " : "\":";
  expect_key_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

std::string JsonWriter::str() const {
  check(stack_.empty(), "JsonWriter", "unclosed object or array");
  check(!out_.empty(), "JsonWriter", "no value written");
  return pretty_ ? out_ + "\n" : out_;
}

// ---------------------------------------------------------------------------
// JsonValue

bool JsonValue::as_bool() const {
  check(kind_ == Kind::kBool, "JsonValue", "not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  check(kind_ == Kind::kNumber, "JsonValue", "not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  check(kind_ == Kind::kString, "JsonValue", "not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  check(kind_ == Kind::kArray, "JsonValue", "not an array");
  return array_;
}

const JsonValue* JsonValue::find(std::string_view name) const {
  check(kind_ == Kind::kObject, "JsonValue", "not an object");
  for (const auto& [k, v] : object_)
    if (k == name) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view name) const {
  const JsonValue* v = find(name);
  check(v != nullptr, "JsonValue",
        "missing object member '" + std::string(name) + "'");
  return *v;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  check(kind_ == Kind::kObject, "JsonValue", "not an object");
  return object_;
}

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    require(pos_ == text_.size(), "trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void error(const std::string& message) const {
    fail("parse_json", message + " at byte " + std::to_string(pos_));
  }
  void require(bool cond, const char* message) const {
    if (!cond) error(message);
  }

  char peek() const {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }
  char next() {
    char c = peek();
    ++pos_;
    return c;
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!consume(c)) error(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }
  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        require(consume_word("true"), "invalid literal");
        return JsonValue::make_bool(true);
      case 'f':
        require(consume_word("false"), "invalid literal");
        return JsonValue::make_bool(false);
      case 'n':
        require(consume_word("null"), "invalid literal");
        return JsonValue::make_null();
      default: return JsonValue::make_number(parse_number());
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (consume('}')) return JsonValue::make_object(std::move(members));
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      break;
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (consume(']')) return JsonValue::make_array(std::move(items));
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      break;
    }
    return JsonValue::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') break;
      if (c == '\\') {
        char e = next();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else error("invalid \\u escape");
            }
            // Encode the code point as UTF-8 (BMP only; surrogate pairs in
            // benchmark names are not a case we generate).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: error("invalid escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        error("unescaped control character in string");
      } else {
        out += c;
      }
    }
    return out;
  }

  double parse_number() {
    const std::size_t start = pos_;
    consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    require(pos_ > start + (text_[start] == '-' ? 1 : 0), "invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    require(end == token.c_str() + token.size(), "invalid number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  Parser p(text);
  return p.parse_document();
}

void write_json_value(JsonWriter& w, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      w.null();
      break;
    case JsonValue::Kind::kBool:
      w.value(v.as_bool());
      break;
    case JsonValue::Kind::kNumber:
      w.value(v.as_number());
      break;
    case JsonValue::Kind::kString:
      w.value(v.as_string());
      break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const auto& item : v.as_array()) write_json_value(w, item);
      w.end_array();
      break;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [name, member] : v.members()) {
        w.key(name);
        write_json_value(w, member);
      }
      w.end_object();
      break;
  }
}

}  // namespace mb::support
