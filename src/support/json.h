// Minimal dependency-free JSON support.
//
// The structured-results layer (core/bench_report.h) needs machine-readable
// output that CI can diff and gate on, and the comparison tool needs to read
// it back. This module provides both directions without any external
// dependency:
//  * JsonWriter — a streaming writer with automatic comma/indent handling,
//    full string escaping and round-trip double formatting;
//  * JsonValue + parse_json() — a small recursive-descent parser for the
//    documents the writer produces (and any other well-formed JSON).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mb::support {

/// Escapes a string for inclusion in a JSON document (adds no quotes).
/// Handles the two-character escapes, control characters (\u00XX) and
/// passes valid UTF-8 bytes through untouched.
std::string json_escape(std::string_view s);

/// Formats a double so that parsing it back yields the same value
/// (shortest round-trip representation). Non-finite values are not
/// representable in JSON and are emitted as null by the writer.
std::string json_number(double v);

/// Streaming JSON writer.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("membench");
///   w.key("samples").begin_array();
///   for (double s : samples) w.value(s);
///   w.end_array();
///   w.end_object();
///   std::string doc = w.str();
///
/// Commas and (optionally) indentation are inserted automatically. Misuse
/// (value without key inside an object, unbalanced end_*) throws Error.
class JsonWriter {
 public:
  /// `pretty` inserts newlines and two-space indentation.
  explicit JsonWriter(bool pretty = true);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be directly inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::uint32_t v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  /// The finished document. Throws if containers are still open.
  std::string str() const;

 private:
  enum class Frame : std::uint8_t { kObject, kArray };
  void before_value();
  void newline_indent();

  std::string out_;
  std::vector<Frame> stack_;
  bool pretty_;
  bool expect_key_ = false;   // inside an object, next token must be a key
  bool first_in_frame_ = true;
};

/// A parsed JSON document node. Object member order is preserved.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject
  };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw Error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;

  /// Object member lookup: nullptr when absent (object kind required).
  const JsonValue* find(std::string_view name) const;
  /// Object member lookup; throws Error when absent.
  const JsonValue& at(std::string_view name) const;
  /// Object members in document order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  // Construction (used by the parser; handy in tests).
  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses a complete JSON document (one top-level value, optionally
/// surrounded by whitespace). Throws Error with a byte offset on malformed
/// input.
JsonValue parse_json(std::string_view text);

/// Re-emits a parsed value through a writer (as the next value in the
/// writer's current context). Member order is preserved and numbers use
/// the writer's round-trip formatting, so parse -> write -> parse is
/// value-identical; used to embed one document inside another (e.g. a
/// fault plan inside an mb-repro bundle).
void write_json_value(JsonWriter& w, const JsonValue& v);

}  // namespace mb::support
