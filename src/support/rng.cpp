#include "support/rng.h"

#include <cmath>
#include <numbers>

#include "support/check.h"

namespace mb::support {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  check(lo <= hi, "Rng::uniform_u64", "lo must be <= hi");
  const std::uint64_t span = hi - lo;
  if (span == ~std::uint64_t{0}) return (*this)();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t n = span + 1;
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % n;
  std::uint64_t x;
  do {
    x = (*this)();
  } while (x >= limit);
  return lo + x % n;
}

std::size_t Rng::index(std::size_t n) {
  check(n > 0, "Rng::index", "n must be positive");
  return static_cast<std::size_t>(uniform_u64(0, n - 1));
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  // Box-Muller; draw u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double sd) { return mean + sd * normal(); }

double Rng::exponential(double rate) {
  check(rate > 0.0, "Rng::exponential", "rate must be positive");
  double u = 1.0 - uniform();
  return -std::log(u) / rate;
}

Rng Rng::split() {
  // Derive a decorrelated seed from two draws mixed through SplitMix64.
  std::uint64_t mix = (*this)() ^ 0xA5A5A5A5DEADBEEFULL;
  std::uint64_t seed = splitmix64(mix) ^ (*this)();
  return Rng(seed);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

}  // namespace mb::support
