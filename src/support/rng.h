// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (page allocators, scheduler
// disturbance models, randomized benchmarking harness, network jitter) draws
// from an explicitly seeded Rng so that experiments are reproducible bit for
// bit. The generator is xoshiro256** seeded via SplitMix64, which is both
// fast and statistically strong for simulation purposes.
#pragma once

#include <cstdint>
#include <vector>

namespace mb::support {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from a single seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Standard normal variate (Box-Muller, no caching: stateless per call).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double sd);

  /// Exponential variate with the given rate (lambda > 0).
  double exponential(double rate);

  /// Creates a child generator with a decorrelated stream. Used to hand
  /// independent streams to sub-components without sharing state.
  Rng split();

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace mb::support
