// Small move-only callable with inline storage.
//
// The DES hot path schedules tens of millions of events per simulated
// second; std::function's copyability forces a heap allocation for any
// capture beyond two pointers, and that allocation dominated the event
// queue's profile (see DESIGN.md §10). SmallFn stores captures up to
// `Cap` bytes inline in the event record itself — scheduling a lambda
// that captures {this, a handful of ints} touches no allocator at all.
// Larger captures (cold paths: chaos plans, test fixtures) transparently
// fall back to the heap, so SmallFn is a drop-in for std::function<void()>
// anywhere the callable is only moved and invoked.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace mb::support {

template <std::size_t Cap = 48>
class SmallFn {
 public:
  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT: match std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT: implicit, match std::function
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= Cap &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); };
      manage_ = [](Action a, void* self, void* other) {
        D* obj = std::launder(reinterpret_cast<D*>(self));
        if (a == Action::kMove) {
          ::new (other) D(std::move(*obj));
          obj->~D();
        } else {
          obj->~D();
        }
      };
    } else {
      // Heap fallback: the buffer holds a single owning pointer.
      auto* heap = new D(std::forward<F>(f));
      ::new (static_cast<void*>(buf_)) D*(heap);
      invoke_ = [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); };
      manage_ = [](Action a, void* self, void* other) {
        D** slot = std::launder(reinterpret_cast<D**>(self));
        if (a == Action::kMove) {
          ::new (other) D*(*slot);
        } else {
          delete *slot;
        }
      };
    }
  }

  SmallFn(SmallFn&& o) noexcept { move_from(o); }

  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      destroy();
      move_from(o);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { destroy(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

 private:
  enum class Action { kMove, kDestroy };
  using Invoke = void (*)(void*);
  using Manage = void (*)(Action, void* self, void* other);

  void destroy() noexcept {
    if (manage_ != nullptr) manage_(Action::kDestroy, buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  void move_from(SmallFn& o) noexcept {
    invoke_ = o.invoke_;
    manage_ = o.manage_;
    if (manage_ != nullptr) manage_(Action::kMove, o.buf_, buf_);
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }

  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Cap];
};

}  // namespace mb::support
