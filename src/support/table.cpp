#include "support/table.h"

#include <cmath>
#include <ostream>
#include <sstream>

#include "support/check.h"

namespace mb::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  check(!header_.empty(), "Table", "header must not be empty");
}

void Table::add_row(std::vector<std::string> cells) {
  check(cells.size() <= header_.size(), "Table::add_row",
        "row has more cells than the header");
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size())
        out << std::string(width[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.render();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_fixed(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

std::string fmt_eng(double v) {
  double a = std::fabs(v);
  int precision;
  if (a == 0.0 || a >= 100.0)
    precision = 1;
  else if (a >= 1.0)
    precision = 2;
  else
    precision = 4;
  return fmt_fixed(v, precision);
}

std::string fmt_group(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace mb::support
