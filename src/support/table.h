// Minimal fixed-width table formatter.
//
// All bench binaries reproduce paper tables/figures as text; this gives them
// a uniform, aligned output format without any external dependency.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mb::support {

/// Column-aligned text table. Add a header and rows of cells; render() pads
/// every column to its widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row. Rows shorter than the header are right-padded with
  /// empty cells; longer rows are rejected.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows (excluding the header).
  std::size_t rows() const { return rows_.size(); }

  /// Renders with a header separator and two-space column gaps.
  std::string render() const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing commas, quotes
  /// or newlines; doubles embedded quotes) for plotting pipelines.
  std::string to_csv() const;

  /// Convenience: renders to a stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
std::string fmt_fixed(double v, int precision);

/// Formats a double in engineering style: chooses a sensible precision.
std::string fmt_eng(double v);

/// Formats an integer with thousands separators ("1,234,567").
std::string fmt_group(std::uint64_t v);

}  // namespace mb::support
