// Unit helpers used across platform descriptions and experiment configs.
#pragma once

#include <cstdint>

namespace mb::support {

inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;
inline constexpr std::uint64_t GiB = 1024 * MiB;

inline constexpr double kHz = 1e3;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

/// Decimal byte rates (network links are decimal: 1 GbE = 1e9 bit/s).
inline constexpr double Kbit = 1e3;
inline constexpr double Mbit = 1e6;
inline constexpr double Gbit = 1e9;

/// Converts a bit rate to bytes/second.
constexpr double bits_to_bytes_per_s(double bits_per_s) {
  return bits_per_s / 8.0;
}

constexpr double us(double v) { return v * 1e-6; }
constexpr double ms(double v) { return v * 1e-3; }
constexpr double ns(double v) { return v * 1e-9; }

}  // namespace mb::support
