#include "support/version.h"

#ifndef MB_VERSION
#define MB_VERSION "0.0.0-unknown"
#endif

namespace mb::support {

std::string_view version() { return MB_VERSION; }

}  // namespace mb::support
