// Build identification.
//
// Profile and trace artifacts outlive the build that produced them; every
// JSON document this toolkit emits carries the producing version so a
// report found in a CI artifact store is attributable to a build.
#pragma once

#include <string_view>

namespace mb::support {

/// The toolkit version ("MAJOR.MINOR.PATCH"), injected by the build
/// system from the CMake project version; "0.0.0-unknown" when built
/// outside CMake.
std::string_view version();

}  // namespace mb::support
