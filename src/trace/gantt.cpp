#include "trace/gantt.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "stats/descriptive.h"
#include "support/check.h"

namespace mb::trace {

std::string render_gantt(const Trace& trace, const GanttOptions& options) {
  support::check(options.width >= 10, "render_gantt",
                 "need at least 10 columns");
  if (trace.records().empty()) return "(empty trace)\n";

  const double t0 = options.t0;
  const double t1 = options.t1 > 0.0 ? options.t1 : trace.end_time();
  support::check(t1 > t0, "render_gantt", "window must be non-empty");
  const double bucket = (t1 - t0) / static_cast<double>(options.width);

  const std::uint32_t ranks = std::min(trace.ranks(), options.max_ranks);

  // Median collective duration, for the delayed marker.
  std::vector<double> coll;
  for (const auto& r : trace.filter(EventKind::kCollective))
    coll.push_back(r.duration());
  const double median_coll = coll.empty() ? 0.0 : stats::median(coll);

  // Priority of glyphs when several events share a bucket.
  auto priority = [](char c) {
    switch (c) {
      case 'F': return 6;
      case 'A': return 5;
      case 'a': return 4;
      case 's': return 3;
      case 'r': return 3;
      case '#': return 2;
      default: return 0;
    }
  };

  std::vector<std::string> rows(ranks, std::string(options.width, '.'));
  std::size_t clipped = 0;  // events of shown ranks entirely outside [t0,t1]
  for (const auto& rec : trace.records()) {
    if (rec.rank >= ranks) continue;
    if (rec.t1 <= t0 || rec.t0 >= t1) {
      ++clipped;
      continue;
    }
    char glyph = '.';
    switch (rec.kind) {
      case EventKind::kCompute: glyph = '#'; break;
      case EventKind::kSend: glyph = 's'; break;
      case EventKind::kRecv: glyph = 'r'; break;
      case EventKind::kWait: glyph = '.'; break;
      case EventKind::kFault: glyph = 'F'; break;
      case EventKind::kCollective:
        glyph = (median_coll > 0.0 && rec.duration() > 2.0 * median_coll)
                    ? 'A'
                    : 'a';
        break;
    }
    const auto first = static_cast<std::int64_t>((rec.t0 - t0) / bucket);
    const auto last = static_cast<std::int64_t>((rec.t1 - t0) / bucket);
    for (std::int64_t b = std::max<std::int64_t>(first, 0);
         b <= last && b < static_cast<std::int64_t>(options.width); ++b) {
      auto& cell = rows[rec.rank][static_cast<std::size_t>(b)];
      if (priority(glyph) > priority(cell)) cell = glyph;
    }
  }

  std::ostringstream out;
  out << "time " << t0 << "s .. " << t1 << "s  ('#' compute, 'a' "
      << "collective, 'A' delayed collective, 's'/'r' p2p, 'F' fault)\n";
  for (std::uint32_t r = 0; r < ranks; ++r) {
    out << (r < 10 ? " " : "") << r << " |" << rows[r] << "|\n";
  }
  // Truncation is never silent: anything the view dropped is footnoted.
  if (trace.ranks() > ranks)
    out << "… " << trace.ranks() - ranks << " ranks not shown\n";
  if (clipped > 0) out << "… " << clipped << " events outside window\n";
  return out.str();
}

}  // namespace mb::trace
