// ASCII Gantt rendering of cluster traces — the poor man's Paraver view
// (paper Fig. 4 is exactly such a timeline with delayed collectives
// circled). One row per rank, one column per time bucket, a letter per
// dominant activity.
#pragma once

#include <string>

#include "trace/trace.h"

namespace mb::trace {

struct GanttOptions {
  std::size_t width = 100;      ///< columns (time buckets)
  std::uint32_t max_ranks = 40; ///< rows; traces with more ranks are cut
  double t0 = 0.0;              ///< window start (seconds)
  double t1 = 0.0;              ///< window end; 0 = end of trace
};

/// Renders the trace as one timeline row per rank:
///   '#' compute   'a' collective (alltoallv etc.)   's'/'r' point-to-point
///   'A' collective interval at least twice the trace-median duration
///   '.' idle
std::string render_gantt(const Trace& trace, const GanttOptions& options);

}  // namespace mb::trace
