#include "trace/mb_trace.h"

#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <unordered_map>

#include "support/check.h"

namespace mb::trace {

namespace {

constexpr char kMagic[4] = {'M', 'B', 'T', 'R'};

void write_u8(std::ostream& os, std::uint8_t v) {
  os.put(static_cast<char>(v));
}

void write_u32(std::ostream& os, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i)
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(buf, 4);
}

void write_u64(std::ostream& os, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i)
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(buf, 8);
}

void write_f64(std::ostream& os, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(os, bits);
}

void write_string(std::ostream& os, const std::string& s) {
  support::check(s.size() <= std::numeric_limits<std::uint32_t>::max(),
                 "write_mb_trace", "string too long");
  write_u32(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void read_exact(std::istream& is, char* buf, std::size_t n) {
  is.read(buf, static_cast<std::streamsize>(n));
  support::check(static_cast<std::size_t>(is.gcount()) == n, "read_mb_trace",
                 "truncated file");
}

std::uint8_t read_u8(std::istream& is) {
  char c = 0;
  read_exact(is, &c, 1);
  return static_cast<std::uint8_t>(c);
}

std::uint32_t read_u32(std::istream& is) {
  char buf[4];
  read_exact(is, buf, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  return v;
}

std::uint64_t read_u64(std::istream& is) {
  char buf[8];
  read_exact(is, buf, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  return v;
}

double read_f64(std::istream& is) {
  const std::uint64_t bits = read_u64(is);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string read_string(std::istream& is, std::uint32_t max_len) {
  const std::uint32_t len = read_u32(is);
  support::check(len <= max_len, "read_mb_trace",
                 "implausible string length " + std::to_string(len));
  std::string s(len, '\0');
  if (len > 0) read_exact(is, s.data(), len);
  return s;
}

}  // namespace

MbTraceWriter::MbTraceWriter(std::ostream& os, const MbTraceMeta& meta,
                             const std::vector<std::string>& string_table,
                             std::uint64_t record_count)
    : os_(os), declared_(record_count) {
  os_.write(kMagic, 4);
  write_u32(os_, kMbTraceVersion);
  write_string(os_, meta.tool_version);
  write_u64(os_, meta.seed);
  write_u32(os_, meta.total_ranks);
  write_u64(os_, meta.dropped);
  support::check(
      meta.sampled_ranks.size() <= std::numeric_limits<std::uint32_t>::max(),
      "write_mb_trace", "too many sampled ranks");
  write_u32(os_, static_cast<std::uint32_t>(meta.sampled_ranks.size()));
  for (const std::uint32_t r : meta.sampled_ranks) write_u32(os_, r);
  support::check(
      string_table.size() <= std::numeric_limits<std::uint32_t>::max(),
      "write_mb_trace", "label table too large");
  write_u32(os_, static_cast<std::uint32_t>(string_table.size()));
  for (const auto& s : string_table) write_string(os_, s);
  write_u64(os_, record_count);
}

void MbTraceWriter::append(std::uint32_t rank, EventKind kind,
                           std::uint32_t label_id, std::uint64_t bytes,
                           double t0, double t1) {
  support::check(written_ < declared_, "write_mb_trace",
                 "more records appended than declared");
  write_u32(os_, rank);
  write_u8(os_, static_cast<std::uint8_t>(kind));
  write_u32(os_, label_id);
  write_u64(os_, bytes);
  write_f64(os_, t0);
  write_f64(os_, t1);
  ++written_;
}

void MbTraceWriter::finish() {
  support::check(written_ == declared_, "write_mb_trace",
                 "declared " + std::to_string(declared_) + " records, wrote " +
                     std::to_string(written_));
  os_.flush();
  support::check(os_.good(), "write_mb_trace", "stream write failed");
}

void write_mb_trace(std::ostream& os, const Trace& trace,
                    const MbTraceMeta& meta) {
  std::vector<std::string> table;
  std::unordered_map<std::string, std::uint32_t> ids;
  std::vector<std::uint32_t> label_of(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& label = trace.records()[i].label;
    auto [it, inserted] =
        ids.emplace(label, static_cast<std::uint32_t>(table.size()));
    if (inserted) table.push_back(label);
    label_of[i] = it->second;
  }
  MbTraceWriter writer(os, meta, table, trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& r = trace.records()[i];
    writer.append(r.rank, r.kind, label_of[i], r.bytes, r.t0, r.t1);
  }
  writer.finish();
}

MbTraceFile read_mb_trace(std::istream& is) {
  char magic[4];
  read_exact(is, magic, 4);
  support::check(std::memcmp(magic, kMagic, 4) == 0, "read_mb_trace",
                 "not an mb-trace file (bad magic)");
  const std::uint32_t version = read_u32(is);
  support::check(version == kMbTraceVersion, "read_mb_trace",
                 "unsupported mb-trace version " + std::to_string(version));

  MbTraceFile file;
  file.meta.tool_version = read_string(is, 1u << 10);
  file.meta.seed = read_u64(is);
  file.meta.total_ranks = read_u32(is);
  file.meta.dropped = read_u64(is);
  const std::uint32_t sampled = read_u32(is);
  support::check(sampled <= (1u << 24), "read_mb_trace",
                 "implausible sampled-rank count");
  file.meta.sampled_ranks.reserve(sampled);
  for (std::uint32_t i = 0; i < sampled; ++i)
    file.meta.sampled_ranks.push_back(read_u32(is));

  const std::uint32_t strings = read_u32(is);
  support::check(strings <= (1u << 24), "read_mb_trace",
                 "implausible label-table size");
  std::vector<std::string> table;
  table.reserve(strings);
  for (std::uint32_t i = 0; i < strings; ++i)
    table.push_back(read_string(is, 1u << 16));

  const std::uint64_t count = read_u64(is);
  for (std::uint64_t i = 0; i < count; ++i) {
    Record r;
    r.rank = read_u32(is);
    const std::uint8_t kind = read_u8(is);
    support::check(kind <= static_cast<std::uint8_t>(EventKind::kFault),
                   "read_mb_trace", "unknown event kind in record");
    r.kind = static_cast<EventKind>(kind);
    const std::uint32_t label_id = read_u32(is);
    support::check(label_id < table.size(), "read_mb_trace",
                   "label id out of range");
    r.label = table[label_id];
    r.bytes = read_u64(is);
    r.t0 = read_f64(is);
    r.t1 = read_f64(is);
    file.trace.add(std::move(r));
  }
  if (!file.meta.tool_version.empty())
    file.trace.set_provenance(file.meta.tool_version, file.meta.seed);
  return file;
}

bool is_mb_trace(std::istream& is) {
  const std::istream::pos_type pos = is.tellg();
  char magic[4] = {};
  is.read(magic, 4);
  const bool got4 = is.gcount() == 4;
  is.clear();
  is.seekg(pos);
  return got4 && std::memcmp(magic, kMagic, 4) == 0;
}

}  // namespace mb::trace
