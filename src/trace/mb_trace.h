// mb-trace v1 — compact binary trace interchange format.
//
// The Paraver-like text format is great for eyeballs and diffs, but at
// 4k-10k simulated ranks a traced run produces tens of millions of
// records; the text form is ~100 bytes/record and rounds times to whole
// microseconds. mb-trace stores the same records in ~33 bytes each with
// a shared label string table, and keeps timestamps as raw IEEE-754
// bits — so write → read → Chrome/Paraver export is byte-identical to
// exporting the original in-memory trace directly.
//
// Layout (all integers little-endian, fixed width):
//
//   "MBTR"                     4-byte magic
//   u32  version               (= 1)
//   u32  tool_version length, bytes
//   u64  seed                  effective seed of the producing run
//   u32  total_ranks           ranks in the simulated run (0 = unknown)
//   u64  dropped               records lost to ring-buffer overflow
//   u32  sampled count, u32[]  traced rank ids (empty = every rank)
//   u32  string count, { u32 length, bytes }[]   label table
//   u64  record count
//   records: { u32 rank, u8 kind, u32 label_id, u64 bytes,
//              u64 t0_bits, u64 t1_bits }
//
// Record order is preserved verbatim; the streaming sink writes
// rank-major, which is also the canonical order the sharded engine
// flushes in — so files are byte-identical for any --sim-jobs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace mb::trace {

inline constexpr std::uint32_t kMbTraceVersion = 1;

struct MbTraceMeta {
  std::string tool_version;
  std::uint64_t seed = 0;
  std::uint32_t total_ranks = 0;
  std::vector<std::uint32_t> sampled_ranks;  ///< empty = every rank traced
  std::uint64_t dropped = 0;  ///< records lost to ring overflow
};

/// Incremental writer: header and string table up front, then records
/// appended one at a time (the streaming sink finalizes spilled chunks
/// through this without materializing the whole trace). finish() checks
/// that exactly the declared number of records was appended.
class MbTraceWriter {
 public:
  MbTraceWriter(std::ostream& os, const MbTraceMeta& meta,
                const std::vector<std::string>& string_table,
                std::uint64_t record_count);

  void append(std::uint32_t rank, EventKind kind, std::uint32_t label_id,
              std::uint64_t bytes, double t0, double t1);
  void finish();

 private:
  std::ostream& os_;
  std::uint64_t declared_ = 0;
  std::uint64_t written_ = 0;
};

/// One-shot writer: builds the label table in first-appearance order and
/// streams every record of `trace`.
void write_mb_trace(std::ostream& os, const Trace& trace,
                    const MbTraceMeta& meta);

struct MbTraceFile {
  Trace trace;  ///< provenance restored from the header
  MbTraceMeta meta;
};

/// Parses a file produced by write_mb_trace()/MbTraceWriter. Throws
/// support::Error on bad magic, unsupported version or a truncated or
/// corrupt body.
MbTraceFile read_mb_trace(std::istream& is);

/// True when the stream starts with the mb-trace magic. The stream
/// position is restored, so the same stream can then be handed to
/// read_mb_trace() or parse_paraver().
bool is_mb_trace(std::istream& is);

}  // namespace mb::trace
