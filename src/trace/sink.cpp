#include "trace/sink.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "support/check.h"
#include "trace/mb_trace.h"

namespace mb::trace {

namespace {

// SplitMix64: tiny, seedable, identical on every platform — exactly what
// deterministic rank sampling needs (std::mt19937 + distributions are
// not portable across standard libraries).
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void put_u32(std::ostream& os, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i)
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(buf, 4);
}

void put_u64(std::ostream& os, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i)
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(buf, 8);
}

void get_exact(std::istream& is, char* buf, std::size_t n) {
  is.read(buf, static_cast<std::streamsize>(n));
  support::check(static_cast<std::size_t>(is.gcount()) == n, "StreamingSink",
                 "truncated spill file");
}

std::uint32_t get_u32(std::istream& is) {
  char buf[4];
  get_exact(is, buf, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  return v;
}

std::uint64_t get_u64(std::istream& is) {
  char buf[8];
  get_exact(is, buf, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
         << (8 * i);
  return v;
}

// One spilled record: kind, label id, bytes, raw t0/t1 bits.
constexpr std::size_t kSpillRecordBytes = 1 + 4 + 8 + 8 + 8;

}  // namespace

std::uint32_t parse_event_kind_mask(std::string_view spec) {
  if (spec == "all") return kAllEventKinds;
  support::check(!spec.empty(), "parse_event_kind_mask", "empty kind list");
  std::uint32_t mask = 0;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view name = spec.substr(start, comma - start);
    support::check(!name.empty(), "parse_event_kind_mask",
                   "empty event kind name in list");
    mask |= event_kind_bit(parse_event_kind(name));
    start = comma + 1;
    if (comma == spec.size()) break;
  }
  return mask;
}

std::vector<std::uint32_t> sample_ranks(std::uint32_t total,
                                        std::uint32_t count,
                                        std::uint64_t seed) {
  std::vector<std::uint32_t> pool(total);
  for (std::uint32_t i = 0; i < total; ++i) pool[i] = i;
  if (count >= total) return pool;
  std::uint64_t state = seed ^ 0xD6E8FEB86659FD93ULL;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t j =
        i + static_cast<std::uint32_t>(splitmix64(state) % (total - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  std::sort(pool.begin(), pool.end());
  return pool;
}

CollectorSink::CollectorSink(Trace& out, std::uint32_t ranks, bool parallel)
    : out_(out), parallel_(parallel) {
  if (parallel_) buffers_.assign(ranks, {});
}

void CollectorSink::emit(Record r) {
  if (parallel_) {
    support::check(r.rank < buffers_.size(), "CollectorSink",
                   "record rank out of range");
    buffers_[r.rank].push_back(std::move(r));
  } else {
    out_.add(std::move(r));
  }
}

void CollectorSink::flush() {
  // Rank-major drain: output becomes independent of how the sharded
  // engine interleaved ranks across workers.
  for (auto& buf : buffers_) {
    for (auto& r : buf) out_.add(std::move(r));
    buf.clear();
  }
}

StreamingSink::StreamingSink(std::uint32_t total_ranks, SinkConfig config)
    : config_(std::move(config)), total_ranks_(total_ranks) {
  if (!config_.rank_list.empty()) {
    sampled_ = config_.rank_list;
    std::sort(sampled_.begin(), sampled_.end());
    sampled_.erase(std::unique(sampled_.begin(), sampled_.end()),
                   sampled_.end());
    for (const std::uint32_t r : sampled_)
      support::check(r < total_ranks_, "StreamingSink",
                     "traced rank " + std::to_string(r) +
                         " out of range (ranks=" +
                         std::to_string(total_ranks_) + ")");
  } else if (config_.sample_count > 0) {
    sampled_ = sample_ranks(total_ranks_, config_.sample_count, config_.seed);
  } else {
    sampled_.resize(total_ranks_);
    for (std::uint32_t i = 0; i < total_ranks_; ++i) sampled_[i] = i;
  }

  rank_to_slot_.assign(total_ranks_, kUnsampled);
  for (std::uint32_t slot = 0; slot < sampled_.size(); ++slot)
    rank_to_slot_[sampled_[slot]] = slot;
  rings_.resize(sampled_.size());

  if (!config_.spill_path.empty()) {
    // Spilling needs a finite chunk size; "unbounded" makes no sense.
    if (config_.ring_capacity == 0) config_.ring_capacity = 65536;
    spill_tmp_path_ = config_.spill_path + ".tmp";
    spill_tmp_.open(spill_tmp_path_, std::ios::binary | std::ios::trunc);
    support::check(spill_tmp_.is_open(), "StreamingSink",
                   "cannot open spill file " + spill_tmp_path_);
  }
}

StreamingSink::~StreamingSink() {
  if (!spill_tmp_path_.empty() && !closed_) {
    spill_tmp_.close();
    std::remove(spill_tmp_path_.c_str());
  }
}

bool StreamingSink::wants(std::uint32_t rank, EventKind kind) const {
  return rank < rank_to_slot_.size() &&
         rank_to_slot_[rank] != kUnsampled &&
         (config_.kind_mask & event_kind_bit(kind)) != 0;
}

void StreamingSink::emit(Record r) {
  if (!wants(r.rank, r.kind)) return;
  const std::uint32_t rank = r.rank;
  RankRing& ring = rings_[rank_to_slot_[rank]];
  ++ring.emitted;
  const std::uint32_t cap = config_.ring_capacity;
  if (cap != 0 && config_.spill_path.empty() && ring.slots.size() >= cap) {
    // Bounded capture without spill keeps the newest records — the tail
    // of a timeline is where stragglers and faults show up.
    ring.slots[ring.head] = std::move(r);
    ring.head = (ring.head + 1) % cap;
    ring.wrapped = true;
    ++ring.dropped;
    return;
  }
  ring.slots.push_back(std::move(r));
  if (cap != 0 && !config_.spill_path.empty() && ring.slots.size() >= cap)
    spill_ring(rank, ring);
}

void StreamingSink::spill_ring(std::uint32_t rank, RankRing& ring) {
  if (ring.slots.empty()) return;
  // Intern labels per rank (tables are tiny — a handful of phase names),
  // then append one chunk under the spill lock. Per-rank chunk order in
  // the temporary is emission order: emits for one rank never race, so
  // the lock only serializes chunks of *different* ranks, whose relative
  // order the canonicalizing close() pass discards anyway.
  std::vector<std::uint32_t> label_ids(ring.slots.size());
  for (std::size_t i = 0; i < ring.slots.size(); ++i) {
    const std::string& label = ring.slots[i].label;
    std::uint32_t id = kUnsampled;
    for (std::uint32_t l = 0; l < ring.labels.size(); ++l)
      if (ring.labels[l] == label) {
        id = l;
        break;
      }
    if (id == kUnsampled) {
      id = static_cast<std::uint32_t>(ring.labels.size());
      ring.labels.push_back(label);
    }
    label_ids[i] = id;
  }
  const std::lock_guard<std::mutex> lock(spill_mutex_);
  put_u32(spill_tmp_, rank);
  put_u32(spill_tmp_, static_cast<std::uint32_t>(ring.slots.size()));
  for (std::size_t i = 0; i < ring.slots.size(); ++i) {
    const Record& r = ring.slots[i];
    spill_tmp_.put(static_cast<char>(r.kind));
    put_u32(spill_tmp_, label_ids[i]);
    put_u64(spill_tmp_, r.bytes);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &r.t0, sizeof(bits));
    put_u64(spill_tmp_, bits);
    std::memcpy(&bits, &r.t1, sizeof(bits));
    put_u64(spill_tmp_, bits);
  }
  support::check(spill_tmp_.good(), "StreamingSink",
                 "spill write failed: " + spill_tmp_path_);
  ring.slots.clear();
}

void StreamingSink::close() {
  if (closed_) return;
  closed_ = true;
  if (config_.spill_path.empty()) return;
  finalize_spill();
}

void StreamingSink::finalize_spill() {
  for (std::uint32_t slot = 0; slot < rings_.size(); ++slot)
    spill_ring(sampled_[slot], rings_[slot]);
  spill_tmp_.close();

  // Pass 1: index the chunks. Per rank they already sit in emission
  // order; only the interleaving between ranks is timing-dependent.
  struct Chunk {
    std::uint64_t offset = 0;
    std::uint32_t count = 0;
  };
  std::vector<std::vector<Chunk>> chunks(rings_.size());
  std::vector<std::uint64_t> per_rank_records(rings_.size(), 0);
  std::uint64_t total_records = 0;
  {
    std::ifstream in(spill_tmp_path_, std::ios::binary);
    support::check(in.is_open(), "StreamingSink",
                   "cannot reopen spill file " + spill_tmp_path_);
    while (true) {
      if (in.peek() == std::ifstream::traits_type::eof()) break;
      const std::uint32_t rank = get_u32(in);
      const std::uint32_t count = get_u32(in);
      support::check(rank < rank_to_slot_.size() &&
                         rank_to_slot_[rank] != kUnsampled,
                     "StreamingSink", "corrupt spill chunk header");
      const std::uint32_t slot = rank_to_slot_[rank];
      const auto offset = static_cast<std::uint64_t>(in.tellg());
      chunks[slot].push_back({offset, count});
      per_rank_records[slot] += count;
      total_records += count;
      in.seekg(static_cast<std::streamoff>(count * kSpillRecordBytes),
               std::ios::cur);
    }
  }

  // Global label table: per-rank tables merged in ascending rank order —
  // deterministic because each per-rank table is.
  std::vector<std::string> table;
  std::vector<std::vector<std::uint32_t>> remap(rings_.size());
  for (std::uint32_t slot = 0; slot < rings_.size(); ++slot) {
    remap[slot].reserve(rings_[slot].labels.size());
    for (const auto& label : rings_[slot].labels) {
      std::uint32_t id = kUnsampled;
      for (std::uint32_t g = 0; g < table.size(); ++g)
        if (table[g] == label) {
          id = g;
          break;
        }
      if (id == kUnsampled) {
        id = static_cast<std::uint32_t>(table.size());
        table.push_back(label);
      }
      remap[slot].push_back(id);
    }
  }

  // Pass 2: write the canonical rank-major mb-trace file.
  MbTraceMeta meta;
  meta.tool_version = config_.tool_version;
  meta.seed = config_.seed;
  meta.total_ranks = total_ranks_;
  meta.sampled_ranks = sampled_;
  meta.dropped = 0;
  std::ofstream out(config_.spill_path, std::ios::binary | std::ios::trunc);
  support::check(out.is_open(), "StreamingSink",
                 "cannot open output file " + config_.spill_path);
  MbTraceWriter writer(out, meta, table, total_records);
  std::ifstream in(spill_tmp_path_, std::ios::binary);
  support::check(in.is_open(), "StreamingSink",
                 "cannot reopen spill file " + spill_tmp_path_);
  for (std::uint32_t slot = 0; slot < rings_.size(); ++slot) {
    for (const Chunk& chunk : chunks[slot]) {
      in.clear();
      in.seekg(static_cast<std::streamoff>(chunk.offset));
      for (std::uint32_t i = 0; i < chunk.count; ++i) {
        char kind_ch = 0;
        get_exact(in, &kind_ch, 1);
        const std::uint32_t label_id = get_u32(in);
        const std::uint64_t bytes = get_u64(in);
        const std::uint64_t t0_bits = get_u64(in);
        const std::uint64_t t1_bits = get_u64(in);
        double t0 = 0.0;
        double t1 = 0.0;
        std::memcpy(&t0, &t0_bits, sizeof(t0));
        std::memcpy(&t1, &t1_bits, sizeof(t1));
        support::check(label_id < remap[slot].size(), "StreamingSink",
                       "corrupt spill record");
        writer.append(sampled_[slot], static_cast<EventKind>(kind_ch),
                      remap[slot][label_id], bytes, t0, t1);
      }
    }
  }
  writer.finish();
  in.close();
  std::remove(spill_tmp_path_.c_str());
}

void StreamingSink::drain(Trace& out) const {
  for (std::uint32_t slot = 0; slot < rings_.size(); ++slot) {
    const RankRing& ring = rings_[slot];
    const std::size_t n = ring.slots.size();
    // Oldest-first: a wrapped ring's oldest record sits at head.
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t at = ring.wrapped ? (ring.head + i) % n : i;
      out.add(ring.slots[at]);
    }
  }
  if (!config_.tool_version.empty())
    out.set_provenance(config_.tool_version, config_.seed);
}

std::uint64_t StreamingSink::total_emitted() const {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring.emitted;
  return total;
}

std::uint64_t StreamingSink::total_dropped() const {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring.dropped;
  return total;
}

std::uint64_t StreamingSink::dropped(std::uint32_t rank) const {
  if (rank >= rank_to_slot_.size() || rank_to_slot_[rank] == kUnsampled)
    return 0;
  return rings_[rank_to_slot_[rank]].dropped;
}

}  // namespace mb::trace
