// Streaming trace capture.
//
// PR 6 scaled the DES to 10k+ simulated ranks; a fully traced BigDFT
// run at that scale emits hundreds of millions of records, so "append
// every Record to one vector" stops being an option. This module turns
// the trace destination into an abstraction:
//
//   * Sink — where the MPI runtime delivers records.
//   * CollectorSink — the classic behaviour (everything into a Trace),
//     including the rank-major buffering the sharded engine needs.
//   * StreamingSink — bounded per-rank ring buffers with deterministic
//     rank sampling, event-kind filters, and optional spill-to-disk into
//     the compact mb-trace v1 format. Memory is
//     O(sampled_ranks × ring_capacity) regardless of run length, and
//     spilled files are byte-identical for any --sim-jobs.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace mb::trace {

/// Bit for one EventKind in a SinkConfig kind mask.
constexpr std::uint32_t event_kind_bit(EventKind k) {
  return 1u << static_cast<std::uint32_t>(k);
}

/// All six event kinds enabled.
inline constexpr std::uint32_t kAllEventKinds =
    event_kind_bit(EventKind::kFault) * 2 - 1;

/// Parses "all" or a comma-separated list of event kind names
/// ("collective,compute") into a mask. Throws support::Error on unknown
/// names or an empty list.
std::uint32_t parse_event_kind_mask(std::string_view spec);

/// Deterministically samples `count` distinct ranks out of
/// [0, total): a seeded partial Fisher-Yates shuffle, result sorted
/// ascending. Same (total, count, seed) → same set, on every platform.
std::vector<std::uint32_t> sample_ranks(std::uint32_t total,
                                        std::uint32_t count,
                                        std::uint64_t seed);

/// Destination for trace records as the MPI runtime emits them.
///
/// Concurrency contract: emit() may be called concurrently for
/// *different* ranks (the sharded engine's workers own disjoint rank
/// sets) but never concurrently for the same rank. wants() must be safe
/// to call concurrently and is a cheap pre-filter — callers may skip
/// building the Record entirely when it returns false.
class Sink {
 public:
  virtual ~Sink() = default;

  virtual bool wants(std::uint32_t rank, EventKind kind) const = 0;
  virtual void emit(Record r) = 0;

  /// Called once after the run completes, before results are read.
  virtual void flush() = 0;
};

/// The classic destination: every record into a Trace. Serial runs
/// append in arrival order (the historical behaviour); under the
/// sharded engine records buffer per rank and flush() appends them
/// rank-major — the canonical order that makes output independent of
/// worker count.
class CollectorSink final : public Sink {
 public:
  CollectorSink(Trace& out, std::uint32_t ranks, bool parallel);

  bool wants(std::uint32_t, EventKind) const override { return true; }
  void emit(Record r) override;
  void flush() override;

 private:
  Trace& out_;
  bool parallel_ = false;
  std::vector<std::vector<Record>> buffers_;
};

struct SinkConfig {
  /// Rank selection: explicit `rank_list` wins; else `sample_count > 0`
  /// samples that many ranks with sample_ranks(seed); else all ranks.
  std::vector<std::uint32_t> rank_list;
  std::uint32_t sample_count = 0;
  std::uint64_t seed = 0;

  /// Records retained per sampled rank. Without a spill path the ring
  /// keeps the *newest* `ring_capacity` records (oldest are dropped and
  /// counted); with one, a full ring is flushed to disk as a chunk and
  /// nothing is lost. 0 = unbounded (the classic collector behaviour).
  std::uint32_t ring_capacity = 65536;

  /// Which event kinds to capture (see event_kind_bit / kAllEventKinds).
  std::uint32_t kind_mask = kAllEventKinds;

  /// Non-empty: stream rings into this mb-trace v1 file. close() writes
  /// the canonical rank-major file via a `<path>.tmp` spill pass.
  std::string spill_path;

  /// Stamped into the mb-trace header and drained traces.
  std::string tool_version;
};

/// Bounded streaming sink. Typical lifecycle:
///
///   StreamingSink sink(total_ranks, config);
///   runtime.set_trace_sink(&sink);
///   ... run ...
///   sink.close();                  // finalizes the spill file, if any
///   sink.drain(result.trace);      // no-spill mode: rank-major drain
class StreamingSink final : public Sink {
 public:
  StreamingSink(std::uint32_t total_ranks, SinkConfig config);
  ~StreamingSink() override;

  bool wants(std::uint32_t rank, EventKind kind) const override;
  void emit(Record r) override;
  void flush() override {}

  /// Finalizes the capture. With a spill path: flushes the remaining
  /// rings, canonicalizes the chunked `<path>.tmp` into the final
  /// rank-major mb-trace file and removes the temporary. Without one:
  /// a no-op. Idempotent; not safe concurrently with emit().
  void close();

  /// Appends every retained record to `out`, ranks ascending and
  /// oldest-first within a rank, and stamps provenance. Only meaningful
  /// without a spill path (spilled records live in the file).
  void drain(Trace& out) const;

  const std::vector<std::uint32_t>& sampled_ranks() const {
    return sampled_;
  }
  std::uint64_t total_emitted() const;
  /// Records lost to ring overflow (always 0 when spilling).
  std::uint64_t total_dropped() const;
  std::uint64_t dropped(std::uint32_t rank) const;

 private:
  struct RankRing {
    std::vector<Record> slots;
    std::size_t head = 0;  ///< oldest slot once the ring has wrapped
    bool wrapped = false;
    std::uint64_t emitted = 0;
    std::uint64_t dropped = 0;
    std::vector<std::string> labels;  ///< spill-mode label intern table
  };

  void spill_ring(std::uint32_t rank, RankRing& ring);
  void finalize_spill();

  SinkConfig config_;
  std::uint32_t total_ranks_ = 0;
  std::vector<std::uint32_t> sampled_;       ///< ascending rank ids
  std::vector<std::uint32_t> rank_to_slot_;  ///< kUnsampled when filtered
  std::vector<RankRing> rings_;              ///< one per sampled rank
  std::ofstream spill_tmp_;
  std::string spill_tmp_path_;
  std::mutex spill_mutex_;
  bool closed_ = false;

  static constexpr std::uint32_t kUnsampled = 0xFFFFFFFFu;
};

}  // namespace mb::trace
