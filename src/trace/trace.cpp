#include "trace/trace.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "stats/descriptive.h"
#include "support/check.h"

namespace mb::trace {

std::string_view event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kCompute: return "compute";
    case EventKind::kSend: return "send";
    case EventKind::kRecv: return "recv";
    case EventKind::kCollective: return "collective";
    case EventKind::kWait: return "wait";
  }
  return "?";
}

void Trace::add(Record r) {
  support::check(r.t1 >= r.t0, "Trace::add", "event ends before it starts");
  records_.push_back(std::move(r));
}

std::vector<Record> Trace::filter(EventKind kind,
                                  std::string_view label) const {
  std::vector<Record> out;
  for (const auto& r : records_)
    if (r.kind == kind && (label.empty() || r.label == label))
      out.push_back(r);
  return out;
}

std::uint32_t Trace::ranks() const {
  std::uint32_t top = 0;
  for (const auto& r : records_) top = std::max(top, r.rank + 1);
  return top;
}

double Trace::end_time() const {
  double end = 0.0;
  for (const auto& r : records_) end = std::max(end, r.t1);
  return end;
}

void Trace::write_paraver(std::ostream& os) const {
  os << "#Paraver-like state records (rank:kind:label:t0_us:t1_us:bytes)\n";
  for (const auto& r : records_) {
    os << r.rank << ':' << event_kind_name(r.kind) << ':' << r.label << ':'
       << static_cast<std::uint64_t>(r.t0 * 1e6) << ':'
       << static_cast<std::uint64_t>(r.t1 * 1e6) << ':' << r.bytes << '\n';
  }
}

CollectiveReport analyze_collectives(const Trace& trace,
                                     std::string_view label,
                                     double delay_factor) {
  support::check(delay_factor > 1.0, "analyze_collectives",
                 "delay_factor must exceed 1");
  // Group the i-th collective occurrence of each rank into instance i.
  std::map<std::uint32_t, std::vector<Record>> per_rank;
  for (const auto& r : trace.filter(EventKind::kCollective, label))
    per_rank[r.rank].push_back(r);

  CollectiveReport report;
  if (per_rank.empty()) return report;

  std::size_t instances = 0;
  for (const auto& [rank, recs] : per_rank)
    instances = std::max(instances, recs.size());

  std::vector<double> durations;
  for (std::size_t i = 0; i < instances; ++i) {
    CollectiveInstance inst;
    inst.index = i;
    inst.start = 1e300;
    for (const auto& [rank, recs] : per_rank) {
      if (i >= recs.size()) continue;
      inst.start = std::min(inst.start, recs[i].t0);
      inst.duration = std::max(inst.duration, recs[i].duration());
    }
    durations.push_back(inst.duration);
    report.instances.push_back(inst);
  }

  report.median_duration = stats::median(durations);
  const double threshold = delay_factor * report.median_duration;
  for (auto& inst : report.instances) {
    inst.delayed = inst.duration > threshold;
    if (!inst.delayed) continue;
    ++report.delayed_count;
    // Count ranks whose own interval exceeded the threshold in this
    // instance (partial delays: only some ranks suffer).
    for (const auto& [rank, recs] : per_rank) {
      if (inst.index < recs.size() &&
          recs[inst.index].duration() > threshold)
        ++inst.slow_ranks;
    }
    if (inst.slow_ranks > 0 && inst.slow_ranks < per_rank.size())
      report.has_partial_delays = true;
  }
  return report;
}

}  // namespace mb::trace
