#include "trace/trace.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "stats/descriptive.h"
#include "support/check.h"

namespace mb::trace {

std::string_view event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kCompute: return "compute";
    case EventKind::kSend: return "send";
    case EventKind::kRecv: return "recv";
    case EventKind::kCollective: return "collective";
    case EventKind::kWait: return "wait";
    case EventKind::kFault: return "fault";
  }
  return "?";
}

void Trace::add(Record r) {
  support::check(r.t1 >= r.t0, "Trace::add", "event ends before it starts");
  records_.push_back(std::move(r));
}

void Trace::set_provenance(std::string tool_version, std::uint64_t seed) {
  has_provenance_ = true;
  tool_version_ = std::move(tool_version);
  seed_ = seed;
}

std::vector<Record> Trace::filter(EventKind kind,
                                  std::string_view label) const {
  std::vector<Record> out;
  for (const auto& r : records_)
    if (r.kind == kind && (label.empty() || r.label == label))
      out.push_back(r);
  return out;
}

std::uint32_t Trace::ranks() const {
  std::uint32_t top = 0;
  for (const auto& r : records_) top = std::max(top, r.rank + 1);
  return top;
}

double Trace::end_time() const {
  double end = 0.0;
  for (const auto& r : records_) end = std::max(end, r.t1);
  return end;
}

EventKind parse_event_kind(std::string_view name) {
  if (name == "compute") return EventKind::kCompute;
  if (name == "send") return EventKind::kSend;
  if (name == "recv") return EventKind::kRecv;
  if (name == "collective") return EventKind::kCollective;
  if (name == "wait") return EventKind::kWait;
  if (name == "fault") return EventKind::kFault;
  support::fail("parse_event_kind",
                "unknown event kind '" + std::string(name) + "'");
}

void Trace::write_paraver(std::ostream& os) const {
  os << "#Paraver-like state records (rank:kind:label:t0_us:t1_us:bytes)\n";
  if (has_provenance_)
    os << "#provenance tool_version=" << tool_version_ << " seed=" << seed_
       << '\n';
  // Rounding (not truncation) keeps the format a fixpoint: parsing a dump
  // and re-writing it reproduces the dump byte for byte. Truncating would
  // drift one microsecond down whenever us/1e6*1e6 lands just below an
  // integer.
  for (const auto& r : records_) {
    os << r.rank << ':' << event_kind_name(r.kind) << ':' << r.label << ':'
       << static_cast<std::uint64_t>(std::llround(r.t0 * 1e6)) << ':'
       << static_cast<std::uint64_t>(std::llround(r.t1 * 1e6)) << ':'
       << r.bytes << '\n';
  }
}

namespace {

std::uint64_t parse_u64_field(std::string_view field, std::size_t line_no) {
  std::uint64_t value = 0;
  support::check(!field.empty(), "parse_paraver",
                 "line " + std::to_string(line_no) + ": empty numeric field");
  for (const char c : field) {
    support::check(c >= '0' && c <= '9', "parse_paraver",
                   "line " + std::to_string(line_no) +
                       ": non-numeric field '" + std::string(field) + "'");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

Trace parse_paraver(std::istream& is) {
  Trace trace;
  std::string line;
  std::size_t line_no = 0;
  constexpr std::string_view kProvenancePrefix = "#provenance tool_version=";
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      // Restore provenance from the stamp write_paraver() emits, so the
      // parse → re-export round trip stays a byte-for-byte fixpoint.
      const std::string_view comment = line;
      if (comment.substr(0, kProvenancePrefix.size()) == kProvenancePrefix) {
        const std::string_view rest = comment.substr(kProvenancePrefix.size());
        const std::size_t seed_at = rest.rfind(" seed=");
        if (seed_at != std::string_view::npos) {
          trace.set_provenance(
              std::string(rest.substr(0, seed_at)),
              parse_u64_field(rest.substr(seed_at + 6), line_no));
        }
      }
      continue;
    }
    const std::string_view view = line;

    // Anchor the split from both ends: the first two fields (rank, kind)
    // and the last three (t0, t1, bytes) cannot contain ':', so a label
    // containing ':' still parses.
    const auto fail_at = [&](std::string_view why) {
      support::fail("parse_paraver", "line " + std::to_string(line_no) +
                                         ": " + std::string(why));
    };
    const std::size_t c1 = view.find(':');
    if (c1 == std::string_view::npos) fail_at("missing ':' separators");
    const std::size_t c2 = view.find(':', c1 + 1);
    if (c2 == std::string_view::npos) fail_at("too few fields");
    const std::size_t c5 = view.rfind(':');
    const std::size_t c4 = c5 > 0 ? view.rfind(':', c5 - 1)
                                  : std::string_view::npos;
    const std::size_t c3 = c4 != std::string_view::npos && c4 > 0
                               ? view.rfind(':', c4 - 1)
                               : std::string_view::npos;
    if (c3 == std::string_view::npos || c3 < c2) fail_at("too few fields");

    Record r;
    r.rank = static_cast<std::uint32_t>(
        parse_u64_field(view.substr(0, c1), line_no));
    r.kind = parse_event_kind(view.substr(c1 + 1, c2 - c1 - 1));
    r.label = std::string(view.substr(c2 + 1, c3 - c2 - 1));
    r.t0 = static_cast<double>(
               parse_u64_field(view.substr(c3 + 1, c4 - c3 - 1), line_no)) /
           1e6;
    r.t1 = static_cast<double>(
               parse_u64_field(view.substr(c4 + 1, c5 - c4 - 1), line_no)) /
           1e6;
    r.bytes = parse_u64_field(view.substr(c5 + 1), line_no);
    support::check(r.t1 >= r.t0, "parse_paraver",
                   "line " + std::to_string(line_no) +
                       ": event ends before it starts");
    trace.add(std::move(r));
  }
  return trace;
}

Trace parse_paraver(std::string_view text) {
  std::istringstream is{std::string(text)};
  return parse_paraver(is);
}

CollectiveReport analyze_collectives(const Trace& trace,
                                     std::string_view label,
                                     double delay_factor) {
  support::check(delay_factor > 1.0, "analyze_collectives",
                 "delay_factor must exceed 1");
  // Group the i-th collective occurrence of each rank into instance i.
  std::map<std::uint32_t, std::vector<Record>> per_rank;
  for (const auto& r : trace.filter(EventKind::kCollective, label))
    per_rank[r.rank].push_back(r);

  CollectiveReport report;
  if (per_rank.empty()) return report;

  std::size_t instances = 0;
  for (const auto& [rank, recs] : per_rank)
    instances = std::max(instances, recs.size());

  std::vector<double> durations;
  for (std::size_t i = 0; i < instances; ++i) {
    CollectiveInstance inst;
    inst.index = i;
    inst.start = 1e300;
    for (const auto& [rank, recs] : per_rank) {
      if (i >= recs.size()) continue;
      inst.start = std::min(inst.start, recs[i].t0);
      inst.duration = std::max(inst.duration, recs[i].duration());
    }
    durations.push_back(inst.duration);
    report.instances.push_back(inst);
  }

  report.median_duration = stats::median(durations);
  const double threshold = delay_factor * report.median_duration;
  for (auto& inst : report.instances) {
    inst.delayed = inst.duration > threshold;
    if (!inst.delayed) continue;
    ++report.delayed_count;
    // Count ranks whose own interval exceeded the threshold in this
    // instance (partial delays: only some ranks suffer).
    for (const auto& [rank, recs] : per_rank) {
      if (inst.index < recs.size() &&
          recs[inst.index].duration() > threshold)
        ++inst.slow_ranks;
    }
    if (inst.slow_ranks > 0 && inst.slow_ranks < per_rank.size())
      report.has_partial_delays = true;
  }
  return report;
}

}  // namespace mb::trace
