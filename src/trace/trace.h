// Execution tracing and analysis (paper Sec. IV, Fig. 4).
//
// The paper instruments BigDFT with an automatic tracing library and
// inspects the run in Paraver, finding that all_to_all_v collectives are
// "sometimes delayed" on Tibidabo. This module records the same kind of
// per-rank interval events from the MPI runtime, exports a Paraver-like
// text format, and classifies collective instances as normal vs delayed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mb::trace {

enum class EventKind : std::uint8_t {
  kCompute,
  kSend,
  kRecv,
  kCollective,
  kWait,
  kFault,  ///< injected fault marker (crash, slowdown, link event)
};

std::string_view event_kind_name(EventKind k);

/// Inverse of event_kind_name(); throws support::Error on unknown names.
EventKind parse_event_kind(std::string_view name);

struct Record {
  std::uint32_t rank = 0;
  double t0 = 0.0;
  double t1 = 0.0;
  EventKind kind = EventKind::kCompute;
  std::string label;        ///< e.g. "alltoallv", "compute", "halo"
  std::uint64_t bytes = 0;  ///< payload for communication events

  double duration() const { return t1 - t0; }
};

class Trace {
 public:
  void add(Record r);

  const std::vector<Record>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// All records with the given kind and label (label empty = any).
  std::vector<Record> filter(EventKind kind,
                             std::string_view label = {}) const;

  /// Highest rank id seen + 1.
  std::uint32_t ranks() const;

  /// End of the last event (the run's makespan).
  double end_time() const;

  /// Writes a Paraver-like state record list:
  ///   <rank>:<kind>:<label>:<t0_us>:<t1_us>:<bytes>
  /// Times are rounded to integer microseconds — the format's resolution —
  /// so that parse_paraver() round-trips: a re-exported parse is
  /// byte-identical to the original dump. Provenance, when set, is
  /// emitted as a `#provenance` comment line that parse_paraver()
  /// restores (older dumps without the line stay fixpoints too).
  void write_paraver(std::ostream& os) const;

  /// Stamps the producing tool version and effective seed; exporters
  /// (Paraver, Chrome, mb-trace) carry it so an artifact always names
  /// the run that produced it.
  void set_provenance(std::string tool_version, std::uint64_t seed);
  bool has_provenance() const { return has_provenance_; }
  const std::string& tool_version() const { return tool_version_; }
  std::uint64_t seed() const { return seed_; }

 private:
  std::vector<Record> records_;
  bool has_provenance_ = false;
  std::string tool_version_;
  std::uint64_t seed_ = 0;
};

/// Parses a dump produced by Trace::write_paraver(). Lines starting with
/// '#' and blank lines are ignored. Labels may themselves contain ':'
/// (the rank/kind prefix and the three numeric suffix fields anchor the
/// split). Throws support::Error on malformed records.
Trace parse_paraver(std::istream& is);
Trace parse_paraver(std::string_view text);

/// Per-instance analysis of one collective operation across ranks:
/// an *instance* is the i-th occurrence of the collective on each rank;
/// its duration is the slowest rank's interval (collectives complete
/// together).
struct CollectiveInstance {
  std::size_t index = 0;
  double start = 0.0;
  double duration = 0.0;  ///< max over ranks
  bool delayed = false;
  std::uint32_t slow_ranks = 0;  ///< ranks whose own interval was delayed
};

struct CollectiveReport {
  std::vector<CollectiveInstance> instances;
  double median_duration = 0.0;
  std::size_t delayed_count = 0;
  /// True when some delayed instances slow only part of the ranks — the
  /// paper observes both whole-run delays and partial ones.
  bool has_partial_delays = false;
};

/// Groups collective records by occurrence order per rank and flags
/// instances whose duration exceeds `delay_factor` x median.
CollectiveReport analyze_collectives(const Trace& trace,
                                     std::string_view label,
                                     double delay_factor = 2.0);

}  // namespace mb::trace
