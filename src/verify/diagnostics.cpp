#include "verify/diagnostics.h"

#include <utility>

#include "obs/metrics.h"
#include "support/check.h"
#include "support/json.h"
#include "support/table.h"
#include "support/version.h"
#include "verify/rules.h"

namespace mb::verify {

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarn: return "warn";
    case Severity::kNote: return "note";
  }
  return "?";
}

Location Location::program(std::uint32_t rank, std::size_t op_index) {
  Location loc;
  loc.in_program = true;
  loc.rank = rank;
  loc.op_index = op_index;
  return loc;
}

Location Location::config(std::string key) {
  Location loc;
  loc.config_key = std::move(key);
  return loc;
}

std::string Location::to_string() const {
  if (in_program) {
    return "rank " + std::to_string(rank) + " op " +
           std::to_string(op_index);
  }
  return config_key;
}

void Report::add(Diagnostic d) {
  support::check(find_rule(d.rule) != nullptr, "Report::add",
                 "unknown rule id '" + d.rule + "'");
  findings_.push_back(std::move(d));
}

void Report::add(std::string_view rule, Location location,
                 std::string message, std::string hint) {
  const RuleInfo* info = find_rule(rule);
  support::check(info != nullptr, "Report::add",
                 "unknown rule id '" + std::string(rule) + "'");
  add(rule, info->severity, std::move(location), std::move(message),
      std::move(hint));
}

void Report::add(std::string_view rule, Severity severity, Location location,
                 std::string message, std::string hint) {
  Diagnostic d;
  d.rule = std::string(rule);
  d.severity = severity;
  d.location = std::move(location);
  d.message = std::move(message);
  d.hint = std::move(hint);
  add(std::move(d));
}

void Report::merge(const Report& other) {
  for (const Diagnostic& d : other.findings_) findings_.push_back(d);
}

std::size_t Report::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : findings_)
    if (d.severity == s) ++n;
  return n;
}

bool Report::has_rule(std::string_view rule) const {
  for (const Diagnostic& d : findings_)
    if (d.rule == rule) return true;
  return false;
}

std::string render_diagnostics(const Report& report) {
  std::string out;
  if (report.empty()) {
    out = "no findings\n";
    return out;
  }
  support::Table table({"Rule", "Severity", "Location", "Message"});
  for (const Diagnostic& d : report.findings()) {
    std::string message = d.message;
    if (!d.hint.empty()) message += " [hint: " + d.hint + "]";
    table.add_row({d.rule, std::string(severity_name(d.severity)),
                   d.location.empty() ? "-" : d.location.to_string(),
                   message});
  }
  out = table.render();
  out += std::to_string(report.errors()) + " error(s), " +
         std::to_string(report.warnings()) + " warning(s), " +
         std::to_string(report.notes()) + " note(s)\n";
  return out;
}

std::string diagnostics_to_json(const Report& report,
                                std::string_view source,
                                std::uint64_t seed) {
  support::JsonWriter w;
  w.begin_object();
  w.field("schema", "mb-diagnostics");
  w.field("schema_version", 1);
  w.field("tool", "mb_verify");
  w.field("tool_version", support::version());
  w.field("source", source);
  w.field("seed", seed);
  w.key("counts").begin_object();
  w.field("error", static_cast<std::uint64_t>(report.errors()));
  w.field("warn", static_cast<std::uint64_t>(report.warnings()));
  w.field("note", static_cast<std::uint64_t>(report.notes()));
  w.end_object();
  w.key("findings").begin_array();
  for (const Diagnostic& d : report.findings()) {
    w.begin_object();
    w.field("rule", d.rule);
    w.field("severity", severity_name(d.severity));
    if (d.location.in_program) {
      w.field("rank", d.location.rank);
      w.field("op_index", static_cast<std::uint64_t>(d.location.op_index));
    }
    if (!d.location.config_key.empty())
      w.field("config_key", d.location.config_key);
    w.field("message", d.message);
    if (!d.hint.empty()) w.field("hint", d.hint);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void publish_diagnostics(const Report& report, std::string_view pass) {
  obs::Registry& registry = obs::metrics();
  registry.counter("verify.runs", {{"pass", std::string(pass)}}).inc();
  registry.counter("verify.findings", {{"severity", "error"}})
      .add(static_cast<double>(report.errors()));
  registry.counter("verify.findings", {{"severity", "warn"}})
      .add(static_cast<double>(report.warnings()));
  registry.counter("verify.findings", {{"severity", "note"}})
      .add(static_cast<double>(report.notes()));
}

}  // namespace mb::verify
