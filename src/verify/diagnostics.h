// Structured diagnostics for the static verification layer.
//
// Every finding carries a stable rule id (see verify/rules.h), a severity,
// a location — either {rank, op index} inside an mpi::Program or a config
// key inside a platform/network description — a human message and an
// optional fix hint. Reports render as an aligned text table for terminals
// and as a versioned JSON document ("mb-diagnostics") for CI artifacts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mb::verify {

enum class Severity : std::uint8_t { kError, kWarn, kNote };

std::string_view severity_name(Severity s);

/// Where a finding points. Exactly one of the two flavours is set: a
/// program location (rank + op index into the rank's op list as the user
/// built it) or a configuration key ("caches[1].line_bytes", "ranks", ...).
struct Location {
  bool in_program = false;
  std::uint32_t rank = 0;
  std::size_t op_index = 0;
  std::string config_key;

  static Location program(std::uint32_t rank, std::size_t op_index);
  static Location config(std::string key);
  static Location none() { return Location{}; }

  bool empty() const { return !in_program && config_key.empty(); }
  std::string to_string() const;
};

struct Diagnostic {
  std::string rule;  ///< stable id, e.g. "MPI003" — never renumbered
  Severity severity = Severity::kError;
  Location location;
  std::string message;
  std::string hint;  ///< optional "how to fix" guidance
};

/// An ordered list of findings plus severity tallies.
class Report {
 public:
  void add(Diagnostic d);
  /// Convenience: add with the rule's registered default severity.
  void add(std::string_view rule, Location location, std::string message,
           std::string hint = {});
  /// Convenience: add with an explicit severity override.
  void add(std::string_view rule, Severity severity, Location location,
           std::string message, std::string hint = {});

  /// Appends every finding of `other` (pass composition).
  void merge(const Report& other);

  const std::vector<Diagnostic>& findings() const { return findings_; }
  bool empty() const { return findings_.empty(); }
  std::size_t count(Severity s) const;
  std::size_t errors() const { return count(Severity::kError); }
  std::size_t warnings() const { return count(Severity::kWarn); }
  std::size_t notes() const { return count(Severity::kNote); }
  bool has_errors() const { return errors() > 0; }

  /// True when any finding carries this rule id.
  bool has_rule(std::string_view rule) const;

 private:
  std::vector<Diagnostic> findings_;
};

/// Human rendering: one table row per finding plus a severity summary line.
std::string render_diagnostics(const Report& report);

/// JSON rendering — the "mb-diagnostics" schema, version 1:
///   {schema, schema_version, tool, tool_version, source, seed,
///    counts: {error, warn, note},
///    findings: [{rule, severity, rank?, op_index?, config_key?,
///                message, hint?}]}
/// `source` names what was analyzed ("platform:snowball", "fig4", ...);
/// `seed` is the effective seed of the analyzed scenario (0 when the
/// target is unseeded, e.g. a platform description).
std::string diagnostics_to_json(const Report& report,
                                std::string_view source,
                                std::uint64_t seed = 0);

/// Publishes the report's severity tallies into the global metrics
/// registry: verify.findings{severity=...} counters plus one
/// verify.runs{pass=...} increment. `pass` is "mpi" or "lint".
void publish_diagnostics(const Report& report, std::string_view pass);

}  // namespace mb::verify
