#include "verify/fault_lint.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "verify/rules.h"

namespace mb::verify {
namespace {

constexpr double kHighLossThreshold = 0.5;

std::string fmt(double v) { return std::to_string(v); }

std::string key_at(const char* array, std::size_t i, const char* field) {
  return std::string(array) + "[" + std::to_string(i) + "]." + field;
}

void check_node(Report& report, std::uint32_t node, std::uint32_t nodes,
                const std::string& key) {
  if (node >= nodes) {
    report.add(kRuleFaultUnknownNode, Location::config(key),
               "node " + std::to_string(node) +
                   " does not exist (cluster has " + std::to_string(nodes) +
                   " nodes)",
               "nodes are numbered 0.." + std::to_string(nodes - 1));
  }
}

void check_window(Report& report, double at_s, double until_s,
                  const std::string& key) {
  if (at_s < 0.0 || !std::isfinite(at_s)) {
    report.add(kRuleFaultBadValue, Location::config(key + ".at_s"),
               "window start " + fmt(at_s) + " s is negative or non-finite",
               "fault times are seconds from run start");
  }
  if (!(until_s > at_s) || !std::isfinite(until_s)) {
    report.add(kRuleFaultBadValue, Location::config(key + ".until_s"),
               "window [" + fmt(at_s) + ", " + fmt(until_s) + ") is empty",
               "until_s must exceed at_s");
  }
}

}  // namespace

Report lint_fault_plan(const fault::FaultPlan& plan, std::uint32_t nodes) {
  Report report;

  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    const fault::NodeCrash& c = plan.crashes[i];
    check_node(report, c.node, nodes, key_at("crashes", i, "node"));
    if (c.at_s < 0.0 || !std::isfinite(c.at_s)) {
      report.add(kRuleFaultBadValue,
                 Location::config(key_at("crashes", i, "at_s")),
                 "crash time " + fmt(c.at_s) + " s is negative or "
                 "non-finite",
                 "fault times are seconds from run start");
    }
  }

  for (std::size_t i = 0; i < plan.slowdowns.size(); ++i) {
    const fault::NodeSlowdown& s = plan.slowdowns[i];
    const std::string key =
        "slowdowns[" + std::to_string(i) + "]";
    check_node(report, s.node, nodes, key + ".node");
    check_window(report, s.at_s, s.until_s, key);
    if (!(s.factor >= 1.0) || !std::isfinite(s.factor)) {
      report.add(kRuleFaultBadValue, Location::config(key + ".factor"),
                 "slowdown factor " + fmt(s.factor) + " must be >= 1",
                 "the Fig. 5 degraded mode runs ~5x slower");
    }
  }

  std::map<std::uint32_t, std::vector<std::pair<double, std::size_t>>>
      windows_by_node;
  for (std::size_t i = 0; i < plan.link_downs.size(); ++i) {
    const fault::LinkDownWindow& d = plan.link_downs[i];
    const std::string key = "link_down[" + std::to_string(i) + "]";
    check_node(report, d.node, nodes, key + ".node");
    check_window(report, d.at_s, d.until_s, key);
    windows_by_node[d.node].push_back({d.at_s, i});
  }
  // Overlap detection per node: sort by start, a window that begins before
  // the previous one ends would have its up-edge fire while the earlier
  // window still holds the link down.
  for (auto& [node, starts] : windows_by_node) {
    std::sort(starts.begin(), starts.end());
    for (std::size_t i = 1; i < starts.size(); ++i) {
      const std::size_t prev = starts[i - 1].second;
      const std::size_t cur = starts[i].second;
      if (plan.link_downs[cur].at_s < plan.link_downs[prev].until_s) {
        report.add(
            kRuleFaultOverlappingWindows,
            Location::config("link_down[" + std::to_string(cur) + "]"),
            "window [" + fmt(plan.link_downs[cur].at_s) + ", " +
                fmt(plan.link_downs[cur].until_s) +
                ") overlaps window link_down[" + std::to_string(prev) +
                "] on node " + std::to_string(node),
            "merge overlapping windows into one");
      }
    }
  }

  for (std::size_t i = 0; i < plan.losses.size(); ++i) {
    const fault::FrameLoss& l = plan.losses[i];
    const std::string key = "frame_loss[" + std::to_string(i) + "]";
    check_node(report, l.node, nodes, key + ".node");
    if (!(l.probability >= 0.0) || l.probability >= 1.0 ||
        !std::isfinite(l.probability)) {
      report.add(kRuleFaultBadValue, Location::config(key + ".probability"),
                 "loss probability " + fmt(l.probability) +
                     " is outside [0, 1)",
                 "probability 1 would never deliver a frame");
    } else if (l.probability > kHighLossThreshold) {
      report.add(kRuleFaultHighLoss, Location::config(key + ".probability"),
                 "loss probability " + fmt(l.probability) +
                     " exceeds " + fmt(kHighLossThreshold),
                 "most frames will need several retransmits; expect "
                 "give-ups");
    }
  }

  if (plan.checkpoint.enabled) {
    const fault::CheckpointConfig& c = plan.checkpoint;
    const auto bad = [&](const char* field, double value) {
      report.add(kRuleFaultCheckpointConfig,
                 Location::config(std::string("checkpoint.") + field),
                 std::string(field) + " " + fmt(value) + " must be positive",
                 "disable checkpointing or configure the cost model fully");
    };
    if (!(c.interval_s > 0.0) || !std::isfinite(c.interval_s))
      bad("interval_s", c.interval_s);
    if (!(c.state_bytes_per_rank > 0.0))
      bad("state_bytes_per_rank", c.state_bytes_per_rank);
    if (!(c.write_bandwidth_bytes_per_s > 0.0))
      bad("write_bandwidth_bytes_per_s", c.write_bandwidth_bytes_per_s);
    if (!(c.read_bandwidth_bytes_per_s > 0.0))
      bad("read_bandwidth_bytes_per_s", c.read_bandwidth_bytes_per_s);
    if (c.restart_overhead_s < 0.0 || !std::isfinite(c.restart_overhead_s))
      bad("restart_overhead_s", c.restart_overhead_s);
  }

  publish_diagnostics(report, "lint");
  return report;
}

}  // namespace mb::verify
