// Pass 2 extension: fault-plan linter.
//
// Checks a fault::FaultPlan against the cluster it will run on before any
// chaos scenario executes: every targeted node must exist (FLT001),
// link-down windows for one node must not overlap (FLT002 — overlapping
// windows make the later up-edge silently re-enable a link the earlier
// window still holds down), an enabled checkpoint model needs positive
// interval/state/bandwidths (FLT003), and every event needs sane values
// (FLT004); near-total frame loss gets a warning (FLT005). Locations are
// config keys into the plan document ("crashes[0].node", ...).
#pragma once

#include <cstdint>

#include "fault/plan.h"
#include "verify/diagnostics.h"

namespace mb::verify {

/// Lints `plan` for a cluster of `nodes` nodes; findings carry
/// FLT001..FLT005. Publishes severity tallies under pass="lint".
Report lint_fault_plan(const fault::FaultPlan& plan, std::uint32_t nodes);

}  // namespace mb::verify
