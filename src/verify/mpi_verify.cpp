#include "verify/mpi_verify.h"

#include <cmath>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "verify/rules.h"

namespace mb::verify {
namespace {

using mpi::Op;
using mpi::Program;

constexpr std::int32_t kUserTagLimit = 1 << 16;  // mirrors Runtime::run
constexpr std::int32_t kTagsPerCollective = 4096;

std::string_view kind_name(Op::Kind kind) {
  switch (kind) {
    case Op::Kind::kCompute: return "compute";
    case Op::Kind::kSend: return "send";
    case Op::Kind::kRecv: return "recv";
    case Op::Kind::kBarrier: return "barrier";
    case Op::Kind::kBcast: return "bcast";
    case Op::Kind::kAllreduce: return "allreduce";
    case Op::Kind::kAlltoallv: return "alltoallv";
    case Op::Kind::kGather: return "gather";
    case Op::Kind::kScatter: return "scatter";
    case Op::Kind::kAllgather: return "allgather";
    case Op::Kind::kReduce: return "reduce";
    case Op::Kind::kBeginGroup: return "begin_group";
    case Op::Kind::kEndGroup: return "end_group";
  }
  return "?";
}

bool uses_root(Op::Kind kind) {
  return kind == Op::Kind::kBcast || kind == Op::Kind::kGather ||
         kind == Op::Kind::kScatter || kind == Op::Kind::kReduce;
}

/// One collective occurrence, as seen by one rank (MPI004 comparison key).
struct CollectiveSig {
  Op::Kind kind = Op::Kind::kBarrier;
  std::uint32_t root = 0;
  std::uint64_t bytes = 0;        ///< counts total for alltoallv
  std::size_t op_index = 0;
};

/// A lowered send or receive, tagged with the op index the user wrote.
struct AOp {
  bool is_send = false;
  std::uint32_t peer = 0;
  std::int32_t tag = 0;
  std::size_t origin = 0;
};

/// "op 4 ('alltoallv')" or "op 2" — names the user-visible op.
std::string describe_origin(const Program& program, std::uint32_t rank,
                            std::size_t origin) {
  const Op& op = program.rank(rank).at(origin);
  std::string out = "op " + std::to_string(origin);
  if (is_collective(op.kind)) {
    out += " ('" + (op.label.empty() ? std::string(kind_name(op.kind))
                                     : op.label) +
           "' collective)";
  }
  return out;
}

/// Structural scan (stage 1). Returns true when the program is sound
/// enough for lowering + matching (stage 2). Only errors that poison the
/// *lowering itself* — mismatched collective sequences (MPI004), roots
/// outside the rank space (MPI007), alltoallv counts of the wrong length
/// (MPI008) — suppress stage 2; everything else (out-of-range peers, bad
/// tags) is reported here and matching still runs, so one broken op no
/// longer hides an unrelated deadlock or orphaned receive.
bool structural_scan(const Program& program, Report& report) {
  const std::uint32_t ranks = program.ranks();
  bool matchable = true;
  std::vector<std::vector<CollectiveSig>> collectives(ranks);

  for (std::uint32_t r = 0; r < ranks; ++r) {
    const auto& ops = program.rank(r);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const Op& op = ops[i];
      const Location here = Location::program(r, i);
      switch (op.kind) {
        case Op::Kind::kCompute:
          if (std::isnan(op.seconds) || !std::isfinite(op.seconds) ||
              op.seconds < 0.0) {
            report.add(kRuleBadComputeSeconds, here,
                       "compute op has invalid duration " +
                           std::to_string(op.seconds) + " s",
                       "compute seconds must be finite and >= 0");
          }
          break;
        case Op::Kind::kSend:
        case Op::Kind::kRecv: {
          const bool is_send = op.kind == Op::Kind::kSend;
          if (op.peer >= ranks) {
            report.add(kRulePeerOutOfRange, here,
                       std::string(is_send ? "send to" : "recv from") +
                           " rank " + std::to_string(op.peer) +
                           ", but the program has only " +
                           std::to_string(ranks) + " ranks",
                       "peers must be in [0, " + std::to_string(ranks - 1) +
                           "]");
            // Matching still runs: lower_rank drops just this op, so an
            // unrelated deadlock elsewhere is still reported.
          } else if (is_send && op.peer == r) {
            report.add(kRuleSelfSend, here,
                       "rank " + std::to_string(r) +
                           " sends to itself (tag " +
                           std::to_string(op.tag) + ")",
                       "self-messages round-trip through the runtime "
                       "mailbox; a local copy is usually intended");
          }
          if (op.tag >= kUserTagLimit) {
            report.add(kRuleTagOutOfRange, here,
                       "user tag " + std::to_string(op.tag) +
                           " is inside the reserved collective tag space "
                           "(>= 65536)",
                       "user tags must stay below 65536");
            // Matching proceeds literally — exactly what the runtime
            // would do with this tag.
          } else if (op.tag < 0) {
            report.add(kRuleTagOutOfRange, Severity::kWarn, here,
                       "negative user tag " + std::to_string(op.tag),
                       "negative tags match literally but are usually "
                       "typos");
          }
          break;
        }
        default:
          if (is_collective(op.kind)) {
            if (uses_root(op.kind) && op.root >= ranks) {
              report.add(kRuleRootOutOfRange, here,
                         std::string(kind_name(op.kind)) + " root rank " +
                             std::to_string(op.root) +
                             " is outside [0, " + std::to_string(ranks - 1) +
                             "]",
                         "collective roots must name an existing rank");
              matchable = false;
            }
            std::uint64_t bytes = op.bytes;
            if (op.kind == Op::Kind::kAlltoallv) {
              if (op.counts.size() != ranks) {
                report.add(kRuleAlltoallvCounts, here,
                           "alltoallv counts vector has " +
                               std::to_string(op.counts.size()) +
                               " entries for " + std::to_string(ranks) +
                               " ranks",
                           "provide exactly one byte count per "
                           "destination rank");
                matchable = false;
              }
              bytes = 0;
              for (const std::uint64_t c : op.counts) bytes += c;
            }
            collectives[r].push_back(
                CollectiveSig{op.kind, op.root, bytes, i});
          }
          break;
      }
    }
  }

  // MPI004: every rank must run the same collective sequence.
  for (std::uint32_t r = 1; r < ranks; ++r) {
    const auto& ref = collectives[0];
    const auto& seq = collectives[r];
    const std::size_t common = std::min(ref.size(), seq.size());
    for (std::size_t c = 0; c < common; ++c) {
      if (seq[c].kind == ref[c].kind && seq[c].root == ref[c].root &&
          seq[c].bytes == ref[c].bytes) {
        continue;
      }
      report.add(
          kRuleCollectiveMismatch, Location::program(r, seq[c].op_index),
          "collective #" + std::to_string(c) + " is " +
              std::string(kind_name(seq[c].kind)) + " (root " +
              std::to_string(seq[c].root) + ", " +
              std::to_string(seq[c].bytes) + " bytes) on rank " +
              std::to_string(r) + " but " +
              std::string(kind_name(ref[c].kind)) + " (root " +
              std::to_string(ref[c].root) + ", " +
              std::to_string(ref[c].bytes) + " bytes) on rank 0",
          "all ranks must issue the same collectives in the same order");
      matchable = false;
    }
    if (ref.size() != seq.size()) {
      const std::size_t anchor =
          seq.empty() ? 0 : seq[std::min(common, seq.size() - 1)].op_index;
      report.add(kRuleCollectiveMismatch, Location::program(r, anchor),
                 "rank " + std::to_string(r) + " issues " +
                     std::to_string(seq.size()) +
                     " collectives but rank 0 issues " +
                     std::to_string(ref.size()),
                 "all ranks must issue the same number of collectives");
      matchable = false;
    }
  }
  return matchable;
}

/// Lowers a rank's program into its send/recv schedule, tagging each
/// lowered op with the user-visible op index it came from. Mirrors the
/// tag-base assignment of Runtime::run so matching is faithful.
std::vector<AOp> lower_rank(const Program& program, std::uint32_t rank) {
  std::vector<AOp> out;
  std::int32_t tag_base = kUserTagLimit;
  const auto& ops = program.rank(rank);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    if (is_collective(op.kind)) {
      for (const Op& low :
           lower_collective(op, rank, program.ranks(), tag_base)) {
        if (low.kind != Op::Kind::kSend && low.kind != Op::Kind::kRecv)
          continue;
        out.push_back(AOp{low.kind == Op::Kind::kSend, low.peer, low.tag, i});
      }
      tag_base += kTagsPerCollective;
    } else if (op.kind == Op::Kind::kSend || op.kind == Op::Kind::kRecv) {
      // Ops naming a nonexistent peer (MPI006, already reported) are
      // dropped from the schedule: they can never match, and keeping
      // them would wedge this rank and hide every later finding.
      if (op.peer >= program.ranks()) continue;
      out.push_back(AOp{op.kind == Op::Kind::kSend, op.peer, op.tag, i});
    }
  }
  return out;
}

/// Abstract execution + wait-for analysis (stage 2).
void match_pass(const Program& program, Report& report) {
  const std::uint32_t ranks = program.ranks();
  std::vector<std::vector<AOp>> schedule(ranks);
  for (std::uint32_t r = 0; r < ranks; ++r)
    schedule[r] = lower_rank(program, r);

  struct Pending {
    std::uint32_t src;
    std::size_t origin;  ///< sender's user-visible op index
  };
  using Key = std::pair<std::uint32_t, std::int32_t>;  // (source, tag)
  std::vector<std::map<Key, std::deque<Pending>>> mailbox(ranks);
  std::vector<std::size_t> pc(ranks, 0);

  // Round-robin to a fixpoint: buffered sends always progress, receives
  // progress when their (source, tag) FIFO is non-empty.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::uint32_t r = 0; r < ranks; ++r) {
      while (pc[r] < schedule[r].size()) {
        const AOp& op = schedule[r][pc[r]];
        if (op.is_send) {
          mailbox[op.peer][Key{r, op.tag}].push_back(
              Pending{r, op.origin});
        } else {
          auto it = mailbox[r].find(Key{op.peer, op.tag});
          if (it == mailbox[r].end() || it->second.empty()) break;
          it->second.pop_front();
          if (it->second.empty()) mailbox[r].erase(it);
        }
        ++pc[r];
        progress = true;
      }
    }
  }

  std::vector<bool> done(ranks, false);
  for (std::uint32_t r = 0; r < ranks; ++r)
    done[r] = pc[r] >= schedule[r].size();

  // Wait-for edges: each blocked rank waits on exactly one peer.
  constexpr std::uint32_t kNone = ~0u;
  std::vector<std::uint32_t> waits_on(ranks, kNone);
  for (std::uint32_t r = 0; r < ranks; ++r)
    if (!done[r]) waits_on[r] = schedule[r][pc[r]].peer;

  // Cycle detection on the functional wait-for graph (edges between
  // blocked ranks only). 0 = unvisited, 1 = on current walk, 2 = settled.
  std::vector<std::uint8_t> state(ranks, 0);
  std::vector<bool> on_cycle(ranks, false);
  std::vector<std::vector<std::uint32_t>> cycles;
  for (std::uint32_t start = 0; start < ranks; ++start) {
    if (done[start] || state[start] != 0) continue;
    std::vector<std::uint32_t> walk;
    std::uint32_t cur = start;
    while (cur != kNone && !done[cur] && state[cur] == 0) {
      state[cur] = 1;
      walk.push_back(cur);
      cur = waits_on[cur];
    }
    if (cur != kNone && !done[cur] && state[cur] == 1) {
      // Closed a loop within this walk: the cycle is the suffix from cur.
      std::vector<std::uint32_t> cycle;
      bool in = false;
      for (const std::uint32_t r : walk) {
        if (r == cur) in = true;
        if (in) {
          cycle.push_back(r);
          on_cycle[r] = true;
        }
      }
      cycles.push_back(std::move(cycle));
    }
    for (const std::uint32_t r : walk) state[r] = 2;
  }

  // Deadlock cycles: one error per cycle, anchored at its smallest rank,
  // plus a locating note per other member.
  for (const auto& cycle : cycles) {
    std::size_t anchor_pos = 0;
    for (std::size_t i = 1; i < cycle.size(); ++i)
      if (cycle[i] < cycle[anchor_pos]) anchor_pos = i;
    std::string chain;
    for (std::size_t i = 0; i <= cycle.size(); ++i) {
      const std::uint32_t r = cycle[(anchor_pos + i) % cycle.size()];
      if (!chain.empty()) chain += " -> ";
      chain += "rank " + std::to_string(r);
    }
    const std::uint32_t anchor = cycle[anchor_pos];
    const AOp& blocked = schedule[anchor][pc[anchor]];
    report.add(kRuleDeadlockCycle,
               Location::program(anchor, blocked.origin),
               "deadlock: wait-for cycle " + chain + "; rank " +
                   std::to_string(anchor) + " blocked at " +
                   describe_origin(program, anchor, blocked.origin) +
                   " receiving from rank " + std::to_string(blocked.peer) +
                   " (tag " + std::to_string(blocked.tag) + ")",
               "break the cycle by reordering one rank's send before its "
               "receive or fixing the mismatched (peer, tag)");
    for (const std::uint32_t r : cycle) {
      if (r == anchor) continue;
      const AOp& member = schedule[r][pc[r]];
      report.add(kRuleDeadlockCycle, Severity::kNote,
                 Location::program(r, member.origin),
                 "rank " + std::to_string(r) +
                     " participates in the cycle: blocked at " +
                     describe_origin(program, r, member.origin) +
                     " receiving from rank " + std::to_string(member.peer) +
                     " (tag " + std::to_string(member.tag) + ")");
    }
  }

  // Orphaned receives and ranks stuck behind a cycle/orphan.
  for (std::uint32_t r = 0; r < ranks; ++r) {
    if (done[r] || on_cycle[r]) continue;
    const AOp& blocked = schedule[r][pc[r]];
    if (done[blocked.peer]) {
      report.add(kRuleOrphanedRecv, Location::program(r, blocked.origin),
                 "rank " + std::to_string(r) + " blocks at " +
                     describe_origin(program, r, blocked.origin) +
                     " receiving from rank " + std::to_string(blocked.peer) +
                     " (tag " + std::to_string(blocked.tag) +
                     "), but rank " + std::to_string(blocked.peer) +
                     " finished without sending it",
                 "check the sender's tag/destination against this receive");
    } else {
      const bool behind_cycle = on_cycle[blocked.peer];
      report.add(behind_cycle ? kRuleDeadlockCycle : kRuleOrphanedRecv,
                 Severity::kNote, Location::program(r, blocked.origin),
                 "rank " + std::to_string(r) + " is stuck behind rank " +
                     std::to_string(blocked.peer) +
                     (behind_cycle ? "'s deadlock cycle"
                                   : "'s unmatched receive"));
    }
  }

  // Unmatched sends: leftovers at receivers that finished their program.
  for (std::uint32_t dst = 0; dst < ranks; ++dst) {
    if (!done[dst]) continue;  // the blocking diagnostics own this rank
    for (const auto& [key, queue] : mailbox[dst]) {
      for (const Pending& msg : queue) {
        report.add(kRuleUnmatchedSend,
                   Location::program(msg.src, msg.origin),
                   "rank " + std::to_string(msg.src) + " " +
                       describe_origin(program, msg.src, msg.origin) +
                       " sends to rank " + std::to_string(dst) + " (tag " +
                       std::to_string(key.second) +
                       ") but rank " + std::to_string(dst) +
                       " finished without receiving it",
                   "add the matching receive or drop the send");
      }
    }
  }
}

}  // namespace

Report verify_program(const Program& program) {
  Report report;
  if (structural_scan(program, report)) {
    match_pass(program, report);
  } else {
    // Attach the skip note to the rule that poisoned matching so the
    // report stays self-explanatory.
    std::string_view poisoner = kRuleCollectiveMismatch;
    for (const Diagnostic& d : report.findings())
      if (d.severity == Severity::kError) {
        poisoner = d.rule;
        break;
      }
    report.add(poisoner, Severity::kNote, Location::none(),
               "send/recv match analysis skipped: fix the structural "
               "errors above first");
  }
  publish_diagnostics(report, "mpi");
  return report;
}

}  // namespace mb::verify
