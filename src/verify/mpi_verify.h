// Pass 1: static verification of mpi::Program communication schedules.
//
// Inspired by MUST/ISP-style MPI checkers: because rank programs here are
// fully declarative (no data-dependent control flow), send/recv matching,
// collective consistency and deadlock are all decidable statically. The
// pass runs in two stages:
//
//  1. Structural scan of the raw per-rank op lists — out-of-range peers and
//     roots, self-sends, alltoallv counts whose length differs from the
//     rank count, negative/NaN compute seconds, user tags colliding with
//     the reserved collective tag space, and collective sequences that
//     differ across ranks (kind, root, payload or count at the same
//     collective index). Any error here poisons stage 2 (lowering would
//     throw or match nonsense), so matching is skipped with a note.
//
//  2. Abstract execution of the lowered program (collectives expanded via
//     lower_collective with the same per-occurrence tag-base scheme the
//     runtime uses). Sends are buffered/eager — they complete immediately
//     and enqueue into the destination's (source, tag) FIFO; receives
//     block until their FIFO is non-empty. The abstract machine advances
//     ranks round-robin to a fixpoint. Afterwards:
//       * blocked rank waiting on a finished rank  -> orphaned receive,
//       * cycle in the wait-for graph              -> deadlock, with the
//         rank -> blocked-on-rank chain printed,
//       * ranks stuck behind either                -> notes,
//       * leftover mailbox messages whose receiver finished -> unmatched
//         sends.
//
// Locations always name the *user-visible* op index (the index into
// program.rank(r) as the caller built it), not the lowered index, so the
// fix hint points at an op the user actually wrote.
#pragma once

#include "mpi/program.h"
#include "verify/diagnostics.h"

namespace mb::verify {

/// Verifies `program`; findings carry the rules MPI001..MPI010. The
/// severity tallies are published to obs::metrics() (pass="mpi").
Report verify_program(const mpi::Program& program);

}  // namespace mb::verify
