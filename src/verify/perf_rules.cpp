#include "verify/perf_rules.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "verify/rules.h"

namespace mb::verify {
namespace {

using mpi::Op;
using mpi::Program;

std::string fmt2(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

std::string fmt_kib(double bytes) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.0f KiB", bytes / 1024.0);
  return buf;
}

/// PERF001: per-rank payload imbalance.
void check_imbalance(const CostReport& cost, const PerfThresholds& t,
                     Report& report) {
  if (cost.ranks < 2 || cost.mean_rank_bytes <= 0.0) return;
  std::uint32_t worst = 0;
  for (std::uint32_t r = 1; r < cost.ranks; ++r)
    if (cost.per_rank[r].bytes_sent > cost.per_rank[worst].bytes_sent)
      worst = r;
  const double max_bytes =
      static_cast<double>(cost.per_rank[worst].bytes_sent);
  const double ratio = max_bytes / cost.mean_rank_bytes;
  if (ratio <= t.imbalance_ratio) return;
  if (max_bytes - cost.mean_rank_bytes <
      static_cast<double>(t.imbalance_floor_bytes))
    return;
  report.add(kRulePerfImbalance, Location::program(worst, 0),
             "rank " + std::to_string(worst) + " sends " +
                 fmt_kib(max_bytes) + ", " + fmt2(ratio) +
                 "x the per-rank mean of " + fmt_kib(cost.mean_rank_bytes),
             "spread the payload across ranks; one overloaded sender "
             "serializes the whole exchange on its host link");
}

/// PERF002: an all-to-all style occurrence whose burst into one switch
/// port exceeds the buffer — the Fig. 4 incast.
void check_incast(const CostReport& cost, const CostDescriptor& d,
                  const PerfThresholds& t, Report& report) {
  double host_buffer = 0.0, uplink_buffer = 0.0;
  for (const LinkClassCost& lc : cost.link_classes) {
    if (lc.name == "host-down") host_buffer = lc.buffer_bytes;
    if (lc.name == "uplink-up" || lc.name == "uplink-down")
      uplink_buffer = lc.buffer_bytes;
  }
  for (const CollectiveCost& cc : cost.collectives) {
    if (cc.kind != Op::Kind::kAlltoallv && cc.kind != Op::Kind::kAllgather)
      continue;
    const double down = static_cast<double>(cc.worst_host_down);
    const double up = static_cast<double>(cc.worst_uplink);
    const bool down_hot =
        host_buffer > 0.0 && down > t.incast_ratio * host_buffer;
    const bool up_hot =
        uplink_buffer > 0.0 && up > t.incast_ratio * uplink_buffer;
    if (!down_hot && !up_hot) continue;
    const std::string where =
        down_hot ? "a host downlink (" + fmt_kib(down) + " burst vs " +
                       fmt_kib(host_buffer) + " buffer)"
                 : "an uplink (" + fmt_kib(up) + " burst vs " +
                       fmt_kib(uplink_buffer) + " buffer)";
    report.add(
        kRulePerfIncast, Location::program(0, cc.op_index),
        "'" +
            (cc.label.empty() ? std::string("collective") : cc.label) +
            "' bursts past " + where +
            " on this tree: frames will drop and retransmit (mtu " +
            std::to_string(d.mtu_bytes) + ")",
        "use deeper-buffered switches (upgraded tree), shrink the "
        "exchange, or stagger the senders (pairwise exchange)");
  }
}

/// PERF003: late-sender — already under contention-free assumptions a
/// rank spends most of its time blocked in p2p receives.
void check_late_sender(const CostReport& cost, const PerfThresholds& t,
                       Report& report) {
  if (cost.makespan_lower_s <= 0.0) return;
  std::uint32_t worst = 0;
  for (std::uint32_t r = 1; r < cost.ranks; ++r)
    if (cost.per_rank[r].wait_p2p_lower_s >
        cost.per_rank[worst].wait_p2p_lower_s)
      worst = r;
  const RankCost& rc = cost.per_rank[worst];
  if (rc.wait_p2p_lower_s < t.late_sender_floor_s) return;
  const double fraction = rc.wait_p2p_lower_s / cost.makespan_lower_s;
  if (fraction <= t.late_sender_fraction) return;
  report.add(kRulePerfLateSender,
             Location::program(worst, rc.worst_wait_op),
             "rank " + std::to_string(worst) + " is blocked in receives "
             "for " + fmt2(100.0 * fraction) +
             "% of the lower-bound makespan (" + fmt2(rc.wait_p2p_lower_s) +
             " s of " + fmt2(cost.makespan_lower_s) +
             " s) even with a contention-free network",
             "the matching senders are structurally late: rebalance the "
             "compute preceding their sends or post the sends earlier");
}

/// PERF004: checkpoint interval vs the fault plan's crash rate (Young's
/// first-order optimum: interval* = sqrt(2 * MTBF * checkpoint_cost)).
void check_checkpoint(const CostReport& cost, const fault::FaultPlan* plan,
                      const PerfThresholds& t, Report& report) {
  if (plan == nullptr || plan->crashes.empty()) return;
  if (!plan->checkpoint.enabled) {
    report.add(kRulePerfCheckpointInterval,
               Location::config("checkpoint.enabled"),
               "the fault plan crashes " +
                   std::to_string(plan->crashes.size()) +
                   " node(s) but checkpointing is disabled: every crash "
                   "loses the whole run so far",
               "enable coordinated checkpointing or drop the crashes "
               "from the plan");
    return;
  }
  double last_crash = 0.0;
  for (const auto& c : plan->crashes) last_crash = std::max(last_crash, c.at_s);
  const double horizon = std::max(cost.makespan_lower_s, last_crash);
  if (horizon <= 0.0) return;
  const double mtbf =
      horizon / static_cast<double>(plan->crashes.size());
  const double cost_s = plan->checkpoint.state_bytes_per_rank /
                        plan->checkpoint.write_bandwidth_bytes_per_s;
  const double optimal = std::sqrt(2.0 * mtbf * cost_s);
  const double interval = plan->checkpoint.interval_s;
  if (interval > t.checkpoint_band * optimal) {
    report.add(kRulePerfCheckpointInterval,
               Location::config("checkpoint.interval_s"),
               "checkpoint interval " + fmt2(interval) + " s is " +
                   fmt2(interval / optimal) + "x Young's optimum " +
                   fmt2(optimal) + " s for MTBF " + fmt2(mtbf) +
                   " s: expected lost work per crash dwarfs the "
                   "checkpoint cost",
               "set the interval near sqrt(2 * MTBF * checkpoint_cost) = " +
                   fmt2(optimal) + " s");
  } else if (interval * t.checkpoint_band < optimal) {
    report.add(kRulePerfCheckpointInterval,
               Location::config("checkpoint.interval_s"),
               "checkpoint interval " + fmt2(interval) +
                   " s is far below Young's optimum " + fmt2(optimal) +
                   " s for MTBF " + fmt2(mtbf) +
                   " s: checkpoint overhead dominates between crashes",
               "set the interval near sqrt(2 * MTBF * checkpoint_cost) = " +
                   fmt2(optimal) + " s");
  }
}

/// PERF005: ring/pipeline-shaped p2p traffic where a large byte fraction
/// crosses the root switch — renumbering ranks would keep neighbours
/// inside one leaf subtree.
void check_mapping(const Program& program, const CostDescriptor& d,
                   const CostReport& cost, const PerfThresholds& t,
                   Report& report) {
  if (cost.leaves < 2) return;
  const std::uint32_t ranks = program.ranks();
  const std::uint32_t per_leaf = d.cores_per_node * d.tree.switch_ports;
  std::uint64_t total = 0, cross = 0;
  std::uint32_t max_degree = 0;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    std::set<std::uint32_t> peers;
    for (const Op& op : program.rank(r)) {
      if (op.kind != Op::Kind::kSend && op.kind != Op::Kind::kRecv)
        continue;
      if (op.peer >= ranks) return;  // structurally broken; not our call
      peers.insert(op.peer);
      if (op.kind != Op::Kind::kSend) continue;
      total += op.bytes;
      if (r / per_leaf != op.peer / per_leaf) cross += op.bytes;
    }
    max_degree =
        std::max(max_degree, static_cast<std::uint32_t>(peers.size()));
  }
  if (total == 0 || max_degree > t.mapping_max_degree) return;
  const double fraction =
      static_cast<double>(cross) / static_cast<double>(total);
  if (fraction <= t.mapping_cross_fraction) return;
  report.add(
      kRulePerfCrossSwitchMapping, Location::config("rank_mapping"),
      "the point-to-point pattern is neighbour-shaped (degree <= " +
          std::to_string(max_degree) + ") yet " +
          fmt2(100.0 * fraction) +
          "% of its bytes cross the root switch on this " +
          std::to_string(cost.leaves) + "-leaf tree",
      "renumber ranks so communicating neighbours land in the same leaf "
      "subtree (contiguous blocks of " + std::to_string(per_leaf) +
          " ranks per leaf)");
}

/// PERF006: collective algorithm mismatched to the message size. The
/// ring allreduce moves 2(p-1) rounds of bytes/p — bandwidth-optimal,
/// but pure latency when the segment is smaller than one frame.
void check_collective_algorithm(const CostReport& cost,
                                const CostDescriptor& d,
                                const PerfThresholds& t, Report& report) {
  for (const CollectiveCost& cc : cost.collectives) {
    if (cc.kind != Op::Kind::kAllreduce) continue;
    if (cost.ranks < t.allreduce_min_ranks) continue;
    // payload_bytes sums the lowered sends over every rank: p ranks each
    // send 2(p-1) segments of bytes/p, so one segment is the total over
    // p * 2(p-1).
    const std::uint64_t rounds = 2ull * (cost.ranks - 1);
    const std::uint64_t chunk =
        cc.payload_bytes /
        std::max<std::uint64_t>(1, rounds * cost.ranks);
    if (chunk >= d.mtu_bytes) continue;
    report.add(
        kRulePerfCollectiveAlgorithm, Location::program(0, cc.op_index),
        "'" + (cc.label.empty() ? std::string("allreduce") : cc.label) +
            "' ring-allreduces " + std::to_string(chunk) +
            " B segments over " + std::to_string(rounds) +
            " rounds: at this size the collective is pure latency",
        "a recursive-doubling/binomial allreduce needs only 2*log2(" +
            std::to_string(cost.ranks) + ") latency-bound rounds for "
            "sub-MTU payloads");
  }
}

}  // namespace

Report perf_pass(const mpi::Program& program,
                 const CostDescriptor& descriptor, const CostReport& cost,
                 const fault::FaultPlan* plan,
                 const PerfThresholds& thresholds) {
  Report report;
  check_imbalance(cost, thresholds, report);
  check_incast(cost, descriptor, thresholds, report);
  check_late_sender(cost, thresholds, report);
  check_checkpoint(cost, plan, thresholds, report);
  check_mapping(program, descriptor, cost, thresholds, report);
  check_collective_algorithm(cost, descriptor, thresholds, report);
  publish_diagnostics(report, "perf");
  return report;
}

}  // namespace mb::verify
