// PERF001-PERF006: performance smells derived from the static cost facts.
//
// Where the MPI pass proves a program *wrong* (deadlock, unmatched sends),
// this pass flags programs that are *slow on this tree* — the paper's
// findings turned into rules. Every rule keys on CostReport facts, so the
// pass costs nothing beyond the analyze_cost walk that produced them:
//
//   PERF001  payload imbalance: one rank moves far more bytes than the
//            mean (the load-balancing failure SPECFEM3D avoids).
//   PERF002  incast: an all-to-all occurrence bursts more bytes into one
//            switch port than its buffer holds — the Fig. 4 delayed
//            collectives on the cheap 128 KB switches.
//   PERF003  late sender: a rank's lower-bound schedule already spends a
//            large fraction of the run blocked in p2p receives.
//   PERF004  checkpoint interval far from Young's optimum sqrt(2*MTBF*C)
//            for the fault plan's crash rate.
//   PERF005  ring/pipeline neighbour traffic crossing the root switch:
//            a contiguous rank mapping would keep it inside one leaf.
//   PERF006  collective algorithm vs message size: the ring allreduce is
//            bandwidth-optimal but latency-bound for tiny payloads.
//
// Thresholds live in PerfThresholds so fixtures and future advisor
// integration can tighten or relax them without touching the pass.
#pragma once

#include "fault/plan.h"
#include "verify/diagnostics.h"
#include "verify/static_cost.h"

namespace mb::verify {

struct PerfThresholds {
  /// PERF001: fire when max/mean per-rank sent bytes exceeds this and the
  /// absolute excess also clears the floor (tiny programs stay quiet).
  double imbalance_ratio = 4.0;
  std::uint64_t imbalance_floor_bytes = 1u << 20;
  /// PERF002: burst-to-buffer ratio that counts as congestion-prone.
  double incast_ratio = 1.0;
  /// PERF003: fraction of the lower-bound makespan a rank may spend
  /// blocked in p2p receives, plus an absolute floor.
  double late_sender_fraction = 0.3;
  double late_sender_floor_s = 1e-3;
  /// PERF004: accepted band around Young's optimal interval.
  double checkpoint_band = 4.0;
  /// PERF005: neighbour degree that still counts as ring/pipeline-like,
  /// and the cross-root byte fraction that trips the rule.
  std::uint32_t mapping_max_degree = 2;
  double mapping_cross_fraction = 0.25;
  /// PERF006: ring allreduce is latency-bound when the per-rank segment
  /// is below one MTU and there are at least this many ranks.
  std::uint32_t allreduce_min_ranks = 8;
};

/// Runs the PERF pass over a program and its cost report. `plan` is
/// optional (PERF004 needs a fault plan to reason about; pass nullptr
/// when the scenario has none). Tallies are published to obs::metrics()
/// under pass="perf".
Report perf_pass(const mpi::Program& program,
                 const CostDescriptor& descriptor, const CostReport& cost,
                 const fault::FaultPlan* plan = nullptr,
                 const PerfThresholds& thresholds = {});

}  // namespace mb::verify
