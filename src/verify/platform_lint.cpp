#include "verify/platform_lint.h"

#include <cmath>
#include <string>

#include "verify/rules.h"

namespace mb::verify {
namespace {

// Plausibility window for modelled machines: the paper's platforms span
// 1 GHz Cortex-A9 boards to a 2.66 GHz Nehalem; anything far outside is
// almost certainly a units mistake (MHz vs Hz, W vs mW).
constexpr double kMinPlausibleHz = 100e6;
constexpr double kMaxPlausibleHz = 6e9;
constexpr double kMaxPlausibleWatts = 400.0;

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::string fmt(double v) {
  std::string s = std::to_string(v);
  return s;
}

void lint_link(Report& report, const net::LinkSpec& link,
               const std::string& key) {
  if (!(link.bandwidth_bytes_per_s > 0.0)) {
    report.add(kRuleLinkBandwidth,
               Location::config(key + ".bandwidth_bytes_per_s"),
               "link bandwidth " + fmt(link.bandwidth_bytes_per_s) +
                   " B/s is not positive",
               "a GbE link is 125e6 B/s");
  }
  if (link.latency_s < 0.0 || std::isnan(link.latency_s)) {
    report.add(kRuleLinkLatency, Location::config(key + ".latency_s"),
               "link latency " + fmt(link.latency_s) + " s is negative",
               "store-and-forward GbE switches add tens of microseconds");
  }
  if (!(link.buffer_bytes > 0.0)) {
    report.add(kRuleSwitchBuffer, Location::config(key + ".buffer_bytes"),
               "output-port buffer " + fmt(link.buffer_bytes) +
                   " B is not positive",
               "cheap GbE switches buffer ~100 KiB per port; use a large "
               "value to disable drops");
  }
  if (!(link.retransmit_timeout_s > 0.0)) {
    report.add(kRuleSwitchBuffer,
               Location::config(key + ".retransmit_timeout_s"),
               "retransmit timeout " + fmt(link.retransmit_timeout_s) +
                   " s is not positive",
               "Linux TCP's minimum RTO is 0.2 s");
  }
}

}  // namespace

Report lint_platform(const arch::Platform& platform) {
  Report report;
  const std::string p = platform.name.empty() ? "platform" : platform.name;

  if (platform.cores == 0) {
    report.add(kRuleFreqBounds, Severity::kError,
               Location::config(p + ".cores"),
               "platform has zero cores", "every modelled chip needs at "
               "least one core");
  }
  const double hz = platform.core.freq_hz;
  if (!(hz > 0.0)) {
    report.add(kRuleFreqBounds, Severity::kError,
               Location::config(p + ".core.freq_hz"),
               "core frequency " + fmt(hz) + " Hz is not positive",
               "set the clock in Hz (1 GHz = 1e9)");
  } else if (hz < kMinPlausibleHz || hz > kMaxPlausibleHz) {
    report.add(kRuleFreqBounds, Location::config(p + ".core.freq_hz"),
               "core frequency " + fmt(hz) +
                   " Hz is outside the plausible range [100 MHz, 6 GHz]",
               "check for a MHz-vs-Hz units mistake");
  }

  if (!(platform.power_w > 0.0)) {
    report.add(kRulePowerBounds, Severity::kError,
               Location::config(p + ".power_w"),
               "platform power " + fmt(platform.power_w) +
                   " W is not positive",
               "the paper uses nameplate power (2.5 W Snowball, 95 W "
               "Xeon TDP)");
  } else if (platform.power_w > kMaxPlausibleWatts) {
    report.add(kRulePowerBounds, Location::config(p + ".power_w"),
               "platform power " + fmt(platform.power_w) +
                   " W exceeds the plausible single-node range (400 W)",
               "check for a mW-vs-W units mistake");
  }

  for (std::size_t i = 0; i < platform.caches.size(); ++i) {
    const arch::CacheConfig& cache = platform.caches[i];
    const std::string key = p + ".caches[" + std::to_string(i) + "]";
    if (!is_pow2(cache.line_bytes)) {
      report.add(kRuleCacheLinePow2, Location::config(key + ".line_bytes"),
                 cache.name + " line size " +
                     std::to_string(cache.line_bytes) +
                     " B is not a power of two",
                 "real caches use power-of-two lines (32/64/128 B)");
    }
    if (cache.associativity == 0 || cache.size_bytes == 0) {
      report.add(kRuleCacheGeometry, Location::config(key),
                 cache.name + " has zero size or zero ways",
                 "size, line and associativity must all be positive");
    } else if (is_pow2(cache.line_bytes)) {
      const std::uint64_t way_bytes =
          static_cast<std::uint64_t>(cache.line_bytes) * cache.associativity;
      if (cache.size_bytes % way_bytes != 0 || !is_pow2(cache.sets())) {
        report.add(kRuleCacheGeometry, Location::config(key),
                   cache.name + " geometry " +
                       std::to_string(cache.size_bytes) + " B / (" +
                       std::to_string(cache.line_bytes) + " B x " +
                       std::to_string(cache.associativity) +
                       " ways) does not give a power-of-two set count",
                   "size must equal sets * line * ways with sets a power "
                   "of two");
      }
    }
    if (i > 0 && cache.size_bytes < platform.caches[i - 1].size_bytes) {
      report.add(kRuleCacheInversion, Location::config(key + ".size_bytes"),
                 cache.name + " (" + std::to_string(cache.size_bytes) +
                     " B) is smaller than " + platform.caches[i - 1].name +
                     " (" + std::to_string(platform.caches[i - 1].size_bytes) +
                     " B) below it",
                 "cache levels are expected to grow towards memory");
    }
  }

  if (!(platform.mem.bandwidth_bytes_per_s > 0.0)) {
    report.add(kRuleMemConfig,
               Location::config(p + ".mem.bandwidth_bytes_per_s"),
               "memory bandwidth " + fmt(platform.mem.bandwidth_bytes_per_s) +
                   " B/s is not positive",
               "set the sustainable chip bandwidth in B/s");
  }
  if (platform.mem.latency_ns < 0.0 || std::isnan(platform.mem.latency_ns)) {
    report.add(kRuleMemConfig, Location::config(p + ".mem.latency_ns"),
               "memory latency " + fmt(platform.mem.latency_ns) +
                   " ns is negative",
               "loaded DRAM latency is typically 50-200 ns");
  }
  if (platform.mem.total_bytes == 0) {
    report.add(kRuleMemConfig, Location::config(p + ".mem.total_bytes"),
               "installed memory capacity is zero",
               "set the installed DRAM capacity in bytes");
  }
  if (!is_pow2(platform.mem.page_bytes)) {
    report.add(kRuleMemConfig, Location::config(p + ".mem.page_bytes"),
               "page size " + std::to_string(platform.mem.page_bytes) +
                   " B is not a power of two",
               "OS pages are powers of two (4096 B typical)");
  }

  publish_diagnostics(report, "lint");
  return report;
}

Report lint_tree(const net::TreeParams& params, std::string_view name) {
  Report report;
  const std::string p(name.empty() ? "tree" : name);
  if (params.nodes == 0) {
    report.add(kRuleTreeShape, Location::config(p + ".nodes"),
               "tree topology has zero nodes",
               "a cluster needs at least one host");
  }
  if (params.switch_ports == 0) {
    report.add(kRuleTreeShape, Location::config(p + ".switch_ports"),
               "switches have zero host ports",
               "Tibidabo uses 48-port GbE switches");
  }
  lint_link(report, params.host_link, p + ".host_link");
  lint_link(report, params.uplink, p + ".uplink");
  publish_diagnostics(report, "lint");
  return report;
}

Report lint_rank_count(std::uint64_t ranks, std::uint32_t cores_per_node,
                       std::string_view context) {
  Report report;
  const std::string key(context.empty() ? "ranks" : context);
  if (ranks == 0) {
    report.add(kRuleRankCount, Location::config(key),
               "rank count must be positive",
               "one rank per core: use a multiple of " +
                   std::to_string(cores_per_node));
  } else if (cores_per_node != 0 && ranks % cores_per_node != 0) {
    report.add(kRuleRankCount, Location::config(key),
               "rank count " + std::to_string(ranks) +
                   " is not a multiple of " + std::to_string(cores_per_node) +
                   " cores per node",
               "whole boards must be occupied (dual-core Tibidabo nodes "
               "need an even rank count)");
  }
  publish_diagnostics(report, "lint");
  return report;
}

}  // namespace mb::verify
