// Pass 2: platform / model linter.
//
// Rule-registry-driven checks over the declarative machine and network
// models: arch::Platform (cache geometry, memory system, frequency/power
// plausibility) and net::TreeParams (link bandwidth/latency, switch
// buffering, tree shape), plus the rank-count configuration rule that
// mbctl's scenario commands share (CFG001). Unlike Platform::validate(),
// which throws on the first violation, the linter collects every finding
// into a Report so one run surfaces the full state of a model.
//
// Locations are config keys ("snowball.caches[0].line_bytes") rather than
// (rank, op) pairs. Each lint_* call publishes its severity tallies to
// obs::metrics() under pass="lint"; merging reports afterwards does not
// double-count.
#pragma once

#include <cstdint>
#include <string_view>

#include "arch/platform.h"
#include "net/topology.h"
#include "verify/diagnostics.h"

namespace mb::verify {

/// Lints a machine model; findings carry PLT001..PLT006.
Report lint_platform(const arch::Platform& platform);

/// Lints a tree-interconnect parameter set; findings carry NET001..NET004.
/// `name` prefixes the config keys ("tibidabo", "upgraded", ...).
Report lint_tree(const net::TreeParams& params, std::string_view name);

/// Checks a requested rank count against a node's core count (CFG001):
/// ranks must be positive and a multiple of cores_per_node so whole
/// boards are occupied. `context` names the setting ("--ranks", ...).
Report lint_rank_count(std::uint64_t ranks, std::uint32_t cores_per_node,
                       std::string_view context);

}  // namespace mb::verify
