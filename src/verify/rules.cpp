#include "verify/rules.h"

namespace mb::verify {

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> kRules = {
      {kRuleUnmatchedSend, "mpi", Severity::kError,
       "send posted but no rank ever receives the message"},
      {kRuleOrphanedRecv, "mpi", Severity::kError,
       "receive blocks on a (peer, tag) no remaining send will satisfy"},
      {kRuleDeadlockCycle, "mpi", Severity::kError,
       "wait-for-graph cycle: ranks block on each other forever"},
      {kRuleCollectiveMismatch, "mpi", Severity::kError,
       "collective sequence differs across ranks (kind/root/bytes/count)"},
      {kRuleSelfSend, "mpi", Severity::kWarn,
       "rank sends a point-to-point message to itself"},
      {kRulePeerOutOfRange, "mpi", Severity::kError,
       "send/recv peer is not a valid rank"},
      {kRuleRootOutOfRange, "mpi", Severity::kError,
       "collective root is not a valid rank"},
      {kRuleAlltoallvCounts, "mpi", Severity::kError,
       "alltoallv counts vector length differs from the rank count"},
      {kRuleBadComputeSeconds, "mpi", Severity::kError,
       "compute op has negative or non-finite seconds"},
      {kRuleTagOutOfRange, "mpi", Severity::kError,
       "user tag collides with the reserved collective tag space"},
      {kRuleCacheLinePow2, "lint", Severity::kError,
       "cache line size is zero or not a power of two"},
      {kRuleCacheInversion, "lint", Severity::kWarn,
       "cache level is larger than the level above it (capacity inversion)"},
      {kRuleCacheGeometry, "lint", Severity::kError,
       "cache size/ways do not divide into a power-of-two set count"},
      {kRuleFreqBounds, "lint", Severity::kWarn,
       "core frequency outside the plausible range for modelled machines"},
      {kRulePowerBounds, "lint", Severity::kWarn,
       "platform power outside the plausible range (nameplate accounting)"},
      {kRuleMemConfig, "lint", Severity::kError,
       "memory system has non-positive bandwidth/latency or bad page size"},
      {kRuleLinkBandwidth, "lint", Severity::kError,
       "network link bandwidth is zero or negative"},
      {kRuleLinkLatency, "lint", Severity::kError,
       "network link latency is negative"},
      {kRuleSwitchBuffer, "lint", Severity::kError,
       "switch buffer or retransmit timeout is not positive"},
      {kRuleTreeShape, "lint", Severity::kError,
       "tree topology has zero nodes or zero switch ports"},
      {kRuleRankCount, "lint", Severity::kError,
       "rank count is zero or not a multiple of cores per node"},
      {kRuleFaultUnknownNode, "lint", Severity::kError,
       "fault plan targets a node the cluster does not have"},
      {kRuleFaultOverlappingWindows, "lint", Severity::kError,
       "link-down windows for the same node overlap"},
      {kRuleFaultCheckpointConfig, "lint", Severity::kError,
       "checkpoint interval, state size, bandwidth or overhead is not "
       "positive"},
      {kRuleFaultBadValue, "lint", Severity::kError,
       "fault event has a bad value (negative time, empty window, factor "
       "< 1, probability outside [0,1))"},
      {kRuleFaultHighLoss, "lint", Severity::kWarn,
       "frame-loss probability above 0.5 — the link barely functions"},
      {kRulePerfImbalance, "perf", Severity::kWarn,
       "per-rank payload imbalance: one rank moves far more bytes than "
       "the mean"},
      {kRulePerfIncast, "perf", Severity::kWarn,
       "all-to-all burst exceeds a switch buffer on this tree (incast)"},
      {kRulePerfLateSender, "perf", Severity::kWarn,
       "late-sender pattern: a rank spends most of its time blocked in "
       "point-to-point receives"},
      {kRulePerfCheckpointInterval, "perf", Severity::kWarn,
       "checkpoint interval inconsistent with the fault plan's MTBF"},
      {kRulePerfCrossSwitchMapping, "perf", Severity::kWarn,
       "neighbour communication crosses the root switch: a contiguous "
       "rank mapping would keep it inside one leaf"},
      {kRulePerfCollectiveAlgorithm, "perf", Severity::kWarn,
       "collective algorithm mismatched to the message size"},
  };
  return kRules;
}

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& rule : all_rules())
    if (rule.id == id) return &rule;
  return nullptr;
}

}  // namespace mb::verify
