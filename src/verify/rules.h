// The rule registry: every diagnostic the verifier or linter can emit.
//
// Rule ids are stable API: once published they are never renumbered or
// reused, only retired (the id stays reserved). Tools and CI key on them,
// so renaming a rule means adding a new id. The registry carries each
// rule's pass, default severity and a one-line summary; the README's
// rule-id table and the tests' coverage sweep are both driven from here.
#pragma once

#include <string_view>
#include <vector>

#include "verify/diagnostics.h"

namespace mb::verify {

struct RuleInfo {
  std::string_view id;        ///< "MPI001", "PLT002", ...
  std::string_view pass;      ///< "mpi" (program verifier) or "lint"
  Severity severity;          ///< default severity (passes may escalate)
  std::string_view summary;   ///< one-line description
};

/// All registered rules, ordered by id.
const std::vector<RuleInfo>& all_rules();

/// Looks a rule up by id; nullptr when unknown.
const RuleInfo* find_rule(std::string_view id);

// --- Pass 1: MPI program verifier ----------------------------------------
inline constexpr std::string_view kRuleUnmatchedSend = "MPI001";
inline constexpr std::string_view kRuleOrphanedRecv = "MPI002";
inline constexpr std::string_view kRuleDeadlockCycle = "MPI003";
inline constexpr std::string_view kRuleCollectiveMismatch = "MPI004";
inline constexpr std::string_view kRuleSelfSend = "MPI005";
inline constexpr std::string_view kRulePeerOutOfRange = "MPI006";
inline constexpr std::string_view kRuleRootOutOfRange = "MPI007";
inline constexpr std::string_view kRuleAlltoallvCounts = "MPI008";
inline constexpr std::string_view kRuleBadComputeSeconds = "MPI009";
inline constexpr std::string_view kRuleTagOutOfRange = "MPI010";

// --- Pass 2: platform / model linter --------------------------------------
inline constexpr std::string_view kRuleCacheLinePow2 = "PLT001";
inline constexpr std::string_view kRuleCacheInversion = "PLT002";
inline constexpr std::string_view kRuleCacheGeometry = "PLT003";
inline constexpr std::string_view kRuleFreqBounds = "PLT004";
inline constexpr std::string_view kRulePowerBounds = "PLT005";
inline constexpr std::string_view kRuleMemConfig = "PLT006";
inline constexpr std::string_view kRuleLinkBandwidth = "NET001";
inline constexpr std::string_view kRuleLinkLatency = "NET002";
inline constexpr std::string_view kRuleSwitchBuffer = "NET003";
inline constexpr std::string_view kRuleTreeShape = "NET004";
inline constexpr std::string_view kRuleRankCount = "CFG001";
inline constexpr std::string_view kRuleFaultUnknownNode = "FLT001";
inline constexpr std::string_view kRuleFaultOverlappingWindows = "FLT002";
inline constexpr std::string_view kRuleFaultCheckpointConfig = "FLT003";
inline constexpr std::string_view kRuleFaultBadValue = "FLT004";
inline constexpr std::string_view kRuleFaultHighLoss = "FLT005";

// --- Pass 3: static performance analyzer (verify/perf_rules.h) ------------
inline constexpr std::string_view kRulePerfImbalance = "PERF001";
inline constexpr std::string_view kRulePerfIncast = "PERF002";
inline constexpr std::string_view kRulePerfLateSender = "PERF003";
inline constexpr std::string_view kRulePerfCheckpointInterval = "PERF004";
inline constexpr std::string_view kRulePerfCrossSwitchMapping = "PERF005";
inline constexpr std::string_view kRulePerfCollectiveAlgorithm = "PERF006";

}  // namespace mb::verify
