#include "verify/static_cost.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "support/check.h"
#include "support/json.h"
#include "support/table.h"
#include "support/version.h"

namespace mb::verify {
namespace {

using mpi::Op;
using mpi::Program;

constexpr std::int32_t kUserTagLimit = 1 << 16;  // mirrors Runtime::run
constexpr std::int32_t kTagsPerCollective = 4096;
constexpr double kFrameOverheadBytes = 38.0;  // preamble + IFG + headers
constexpr std::uint64_t kFrameOverheadU64 = 38;

std::string_view kind_name(Op::Kind kind) {
  switch (kind) {
    case Op::Kind::kBarrier: return "barrier";
    case Op::Kind::kBcast: return "bcast";
    case Op::Kind::kAllreduce: return "allreduce";
    case Op::Kind::kAlltoallv: return "alltoallv";
    case Op::Kind::kGather: return "gather";
    case Op::Kind::kScatter: return "scatter";
    case Op::Kind::kAllgather: return "allgather";
    case Op::Kind::kReduce: return "reduce";
    default: return "?";
  }
}

/// Directed-link classes of the two-level tree. kHostUp carries only
/// first-hop frames (a message's source NIC buffers them), so it can
/// never drop; every other class queues behind a switch output port.
enum LinkClass : int { kHostUp = 0, kHostDown = 1, kUpUp = 2, kUpDown = 3 };

constexpr std::array<std::string_view, 4> kClassNames = {
    "host-up", "host-down", "uplink-up", "uplink-down"};

/// A lowered op annotated with what the cost walk needs: the payload, the
/// user-visible origin index and the collective occurrence it came from
/// (-1 for user point-to-point ops).
struct LOp {
  Op::Kind kind = Op::Kind::kCompute;
  std::uint32_t peer = 0;
  std::int32_t tag = 0;
  std::uint64_t bytes = 0;
  double seconds = 0.0;
  std::size_t origin = 0;
  std::int32_t coll = -1;
};

/// Per-directed-link accumulators, kept per class in node/leaf order.
struct LinkAcc {
  std::uint64_t wire_bytes = 0;
  std::uint64_t frames = 0;
  std::uint64_t messages = 0;
  std::uint64_t occ_cur = 0;       ///< burst of the occurrence being summed
  std::uint64_t occ_max = 0;       ///< worst single-occurrence burst
  std::uint64_t p2p_burst = 0;     ///< sum of per-rank consecutive-send runs
};

struct Hop {
  int cls;
  std::uint32_t idx;
};

/// The route of a cross-node message: 2 hops inside one leaf subtree,
/// 4 hops through the root otherwise.
struct Route {
  int hops = 0;
  std::array<Hop, 4> hop{};
};

class Interpreter {
 public:
  Interpreter(const Program& program, const CostDescriptor& d)
      : program_(program), d_(d), ranks_(program.ranks()) {
    support::check(d_.cores_per_node >= 1, "analyze_cost",
                   "cores_per_node must be >= 1");
    support::check(ranks_ == d_.tree.nodes * d_.cores_per_node,
                   "analyze_cost",
                   "program ranks (" + std::to_string(ranks_) +
                       ") must equal tree nodes * cores_per_node (" +
                       std::to_string(d_.tree.nodes) + " * " +
                       std::to_string(d_.cores_per_node) + ")");
    support::check(d_.mtu_bytes >= 1, "analyze_cost",
                   "mtu_bytes must be >= 1");
    nodes_ = d_.tree.nodes;
    leaves_ = (nodes_ + d_.tree.switch_ports - 1) / d_.tree.switch_ports;
    acc_[kHostUp].resize(nodes_);
    acc_[kHostDown].resize(nodes_);
    if (leaves_ > 1) {
      acc_[kUpUp].resize(leaves_);
      acc_[kUpDown].resize(leaves_);
    }
  }

  CostReport run() {
    lower_all();
    accumulate_traffic();
    accumulate_occurrence_bursts();
    timed_lower_bound();
    return finish();
  }

 private:
  std::uint32_t node_of(std::uint32_t rank) const {
    return rank / d_.cores_per_node;
  }
  std::uint32_t leaf_of(std::uint32_t node) const {
    return node / d_.tree.switch_ports;
  }
  const net::LinkSpec& spec(int cls) const {
    return cls == kHostUp || cls == kHostDown ? d_.tree.host_link
                                              : d_.tree.uplink;
  }
  double buffer_limit(int cls) const {
    return std::max(spec(cls).buffer_bytes, 4.0 * d_.mtu_bytes);
  }

  std::uint64_t frames_of(std::uint64_t bytes) const {
    return std::max<std::uint64_t>(
        1, (bytes + d_.mtu_bytes - 1) / d_.mtu_bytes);
  }
  std::uint64_t wire_of(std::uint64_t bytes) const {
    return bytes + kFrameOverheadU64 * frames_of(bytes);
  }

  Route route(std::uint32_t src, std::uint32_t dst) const {
    const std::uint32_t ns = node_of(src), nd = node_of(dst);
    Route r;
    r.hop[r.hops++] = Hop{kHostUp, ns};
    if (leaf_of(ns) != leaf_of(nd)) {
      r.hop[r.hops++] = Hop{kUpUp, leaf_of(ns)};
      r.hop[r.hops++] = Hop{kUpDown, leaf_of(nd)};
    }
    r.hop[r.hops++] = Hop{kHostDown, nd};
    return r;
  }

  /// Lowers every rank with the runtime's tag-base scheme, keeping
  /// compute ops (for the timed walk) and payloads on sends.
  void lower_all() {
    schedule_.resize(ranks_);
    for (std::uint32_t r = 0; r < ranks_; ++r) {
      std::int32_t tag_base = kUserTagLimit;
      std::int32_t coll = 0;
      const auto& ops = program_.rank(r);
      auto& out = schedule_[r];
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op& op = ops[i];
        if (is_collective(op.kind)) {
          for (const Op& low :
               lower_collective(op, r, ranks_, tag_base)) {
            if (low.kind != Op::Kind::kSend && low.kind != Op::Kind::kRecv)
              continue;
            out.push_back(LOp{low.kind, low.peer, low.tag, low.bytes, 0.0,
                              i, coll});
          }
          tag_base += kTagsPerCollective;
          ++coll;
          if (r == 0) {
            CollectiveCost cc;
            cc.kind = op.kind;
            cc.op_index = i;
            cc.label = op.label;
            collectives_.push_back(cc);
          }
        } else if (op.kind == Op::Kind::kSend ||
                   op.kind == Op::Kind::kRecv) {
          out.push_back(LOp{op.kind, op.peer, op.tag, op.bytes, 0.0, i, -1});
        } else if (op.kind == Op::Kind::kCompute) {
          out.push_back(LOp{op.kind, 0, 0, 0, op.seconds, i, -1});
        }
      }
    }
  }

  /// Exact byte/message counts, per-link totals, the serialized upper
  /// bound terms, and the per-rank p2p burst estimate.
  void accumulate_traffic() {
    per_rank_.assign(ranks_, RankCost{});
    for (std::uint32_t r = 0; r < ranks_; ++r) {
      // (class, idx) -> {current run, max run} of consecutive p2p sends.
      std::map<std::pair<int, std::uint32_t>,
               std::pair<std::uint64_t, std::uint64_t>>
          runs;
      for (const LOp& op : schedule_[r]) {
        if (op.kind == Op::Kind::kCompute) {
          per_rank_[r].compute_s += op.seconds;
          total_compute_ += op.seconds;
          serialized_ += op.seconds;  // every rank's compute, unoverlapped
          continue;
        }
        if (op.kind == Op::Kind::kRecv) {
          per_rank_[r].messages_received += 1;
          serialized_ += d_.mpi.recv_overhead_s;
          // A blocking receive drains the rank's send burst.
          for (auto& [key, run] : runs) run.first = 0;
          continue;
        }
        // Send.
        per_rank_[r].bytes_sent += op.bytes;
        per_rank_[op.peer].bytes_received += op.bytes;
        per_rank_[r].messages_sent += 1;
        total_bytes_ += op.bytes;
        ++total_messages_;
        serialized_ += d_.mpi.send_overhead_s;
        if (node_of(r) == node_of(op.peer)) {
          ++intra_messages_;
          serialized_ += d_.mpi.intra_latency_s +
                         static_cast<double>(op.bytes) /
                             d_.mpi.intra_bandwidth_bytes_per_s;
          continue;
        }
        ++net_messages_;
        const std::uint64_t frames = frames_of(op.bytes);
        const std::uint64_t wire = wire_of(op.bytes);
        total_frames_ += frames;
        const Route rt = route(r, op.peer);
        for (int h = 0; h < rt.hops; ++h) {
          const Hop hop = rt.hop[h];
          LinkAcc& a = acc_[hop.cls][hop.idx];
          a.wire_bytes += wire;
          a.messages += 1;
          if (h > 0) a.frames += frames;  // first-hop frames never drop
          const net::LinkSpec& s = spec(hop.cls);
          serialized_ += s.latency_s +
                         static_cast<double>(wire) / s.bandwidth_bytes_per_s;
          if (op.coll < 0) {
            auto& run = runs[{hop.cls, hop.idx}];
            run.first += wire;
            run.second = std::max(run.second, run.first);
          }
        }
      }
      for (const auto& [key, run] : runs)
        acc_[key.first][key.second].p2p_burst += run.second;
    }
  }

  /// Worst single-collective-occurrence burst per link: occurrence-major
  /// re-lowering (cheap — tags don't matter for routes) so one
  /// occurrence's sends are summed together across all ranks.
  void accumulate_occurrence_bursts() {
    if (collectives_.empty()) return;
    // Per-rank indices of user-visible collective ops; MPI004-clean
    // programs have the same count everywhere.
    std::vector<std::vector<std::size_t>> coll_ops(ranks_);
    for (std::uint32_t r = 0; r < ranks_; ++r) {
      const auto& ops = program_.rank(r);
      for (std::size_t i = 0; i < ops.size(); ++i)
        if (is_collective(ops[i].kind)) coll_ops[r].push_back(i);
      support::check(coll_ops[r].size() == collectives_.size(),
                     "analyze_cost",
                     "collective sequence differs across ranks; run "
                     "verify_program first");
    }
    std::vector<Hop> touched;
    for (std::size_t c = 0; c < collectives_.size(); ++c) {
      touched.clear();
      std::uint64_t payload = 0;
      for (std::uint32_t r = 0; r < ranks_; ++r) {
        const Op& op = program_.rank(r)[coll_ops[r][c]];
        for (const Op& low : lower_collective(op, r, ranks_, 0)) {
          if (low.kind != Op::Kind::kSend) continue;
          payload += low.bytes;
          if (node_of(r) == node_of(low.peer)) continue;
          const std::uint64_t wire = wire_of(low.bytes);
          const Route rt = route(r, low.peer);
          for (int h = 0; h < rt.hops; ++h) {
            LinkAcc& a = acc_[rt.hop[h].cls][rt.hop[h].idx];
            if (a.occ_cur == 0) touched.push_back(rt.hop[h]);
            a.occ_cur += wire;
          }
        }
      }
      CollectiveCost& cc = collectives_[c];
      cc.payload_bytes = payload;
      for (const Hop& hop : touched) {
        LinkAcc& a = acc_[hop.cls][hop.idx];
        a.occ_max = std::max(a.occ_max, a.occ_cur);
        if (hop.cls == kHostDown)
          cc.worst_host_down = std::max(cc.worst_host_down, a.occ_cur);
        if (hop.cls == kUpUp || hop.cls == kUpDown)
          cc.worst_uplink = std::max(cc.worst_uplink, a.occ_cur);
        a.occ_cur = 0;
      }
    }
  }

  /// Optimistic per-message delivery time: route latency plus wire bytes
  /// over the bottleneck bandwidth — contention-free, so <= the DES.
  double delivery_lower(std::uint32_t src, std::uint32_t dst,
                        std::uint64_t bytes) const {
    const Route rt = route(src, dst);
    double lat = 0.0, min_bw = spec(rt.hop[0].cls).bandwidth_bytes_per_s;
    for (int h = 0; h < rt.hops; ++h) {
      const net::LinkSpec& s = spec(rt.hop[h].cls);
      lat += s.latency_s;
      min_bw = std::min(min_bw, s.bandwidth_bytes_per_s);
    }
    return lat + static_cast<double>(wire_of(bytes)) / min_bw;
  }

  /// The timed abstract execution (lower bound). Mirrors the verifier's
  /// FIFO fixpoint, with per-rank clocks and per-message arrival times.
  void timed_lower_bound() {
    using Key = std::pair<std::uint32_t, std::int32_t>;  // (source, tag)
    std::vector<std::map<Key, std::deque<double>>> mailbox(ranks_);
    std::vector<std::size_t> pc(ranks_, 0);
    std::vector<double> clock(ranks_, 0.0);

    bool progress = true;
    while (progress) {
      progress = false;
      for (std::uint32_t r = 0; r < ranks_; ++r) {
        while (pc[r] < schedule_[r].size()) {
          const LOp& op = schedule_[r][pc[r]];
          if (op.kind == Op::Kind::kCompute) {
            clock[r] += op.seconds;
          } else if (op.kind == Op::Kind::kSend) {
            const double arrival =
                node_of(r) == node_of(op.peer)
                    ? clock[r] + d_.mpi.send_overhead_s +
                          d_.mpi.intra_latency_s +
                          static_cast<double>(op.bytes) /
                              d_.mpi.intra_bandwidth_bytes_per_s
                    : clock[r] + delivery_lower(r, op.peer, op.bytes);
            mailbox[op.peer][Key{r, op.tag}].push_back(arrival);
            clock[r] += d_.mpi.send_overhead_s;
          } else {  // receive
            auto it = mailbox[r].find(Key{op.peer, op.tag});
            if (it == mailbox[r].end() || it->second.empty()) break;
            const double arrival = it->second.front();
            it->second.pop_front();
            if (it->second.empty()) mailbox[r].erase(it);
            const double wait = std::max(0.0, arrival - clock[r]);
            if (op.coll < 0) {
              per_rank_[r].wait_p2p_lower_s += wait;
              if (wait > per_rank_[r].worst_wait_s) {
                per_rank_[r].worst_wait_s = wait;
                per_rank_[r].worst_wait_op = op.origin;
              }
            }
            clock[r] = std::max(clock[r], arrival) +
                       d_.mpi.recv_overhead_s;
          }
          ++pc[r];
          progress = true;
        }
      }
    }
    for (std::uint32_t r = 0; r < ranks_; ++r) {
      support::check(pc[r] >= schedule_[r].size(), "analyze_cost",
                     "abstract execution stalled (rank " +
                         std::to_string(r) +
                         " blocked): the program has matching errors — "
                         "run verify_program first");
      per_rank_[r].finish_lower_s = clock[r];
      makespan_lower_ = std::max(makespan_lower_, clock[r]);
    }
  }

  /// Worst-case retransmit cost for one frame at one hop: the full capped
  /// backoff schedule plus a re-transmission per attempt.
  double frame_retransmit_allowance(const net::LinkSpec& s) const {
    double out = 0.0;
    double delay = s.retransmit_timeout_s;
    for (std::uint32_t k = 0; k < s.max_retransmits; ++k) {
      out += std::min(delay, s.retransmit_timeout_max_s);
      delay *= s.retransmit_backoff;
    }
    out += s.max_retransmits *
           (static_cast<double>(d_.mtu_bytes) + kFrameOverheadBytes) /
           s.bandwidth_bytes_per_s;
    return out;
  }

  CostReport finish() {
    CostReport rep;
    rep.ranks = ranks_;
    rep.nodes = nodes_;
    rep.leaves = leaves_;
    rep.mtu_bytes = d_.mtu_bytes;
    rep.per_rank = std::move(per_rank_);
    rep.total_bytes = total_bytes_;
    rep.total_messages = total_messages_;
    rep.intra_messages = intra_messages_;
    rep.net_messages = net_messages_;
    rep.total_frames = total_frames_;
    rep.total_compute_s = total_compute_;
    rep.makespan_lower_s = makespan_lower_;
    rep.makespan_serialized_s = serialized_;
    rep.collectives = std::move(collectives_);

    double allowance = 0.0;
    bool all_certified = true;
    for (int cls = 0; cls < 4; ++cls) {
      if (acc_[cls].empty()) continue;
      LinkClassCost lc;
      lc.name = std::string(kClassNames[cls]);
      lc.links = static_cast<std::uint32_t>(acc_[cls].size());
      lc.buffer_bytes = buffer_limit(cls);
      const double per_frame = frame_retransmit_allowance(spec(cls));
      for (const LinkAcc& a : acc_[cls]) {
        lc.messages += a.messages;
        lc.wire_bytes += a.wire_bytes;
        lc.max_link_wire_bytes =
            std::max(lc.max_link_wire_bytes, a.wire_bytes);
        const std::uint64_t inflight = a.occ_max + a.p2p_burst;
        lc.max_inflight_est = std::max(lc.max_inflight_est, inflight);
        if (static_cast<double>(inflight) > lc.buffer_bytes)
          ++lc.congested_links;
        // No-drop certificate: every droppable byte through this link
        // fits in its buffer at once. kHostUp carries first-hop frames
        // only (a.frames stays 0), so it certifies trivially.
        if (static_cast<double>(a.wire_bytes) > lc.buffer_bytes &&
            a.frames > 0) {
          lc.no_drop_certified = false;
          allowance += static_cast<double>(a.frames) * per_frame;
        }
      }
      all_certified = all_certified && lc.no_drop_certified;
      rep.link_classes.push_back(std::move(lc));
    }
    rep.no_drop_certified = all_certified;
    rep.retransmit_allowance_s = allowance;
    rep.makespan_upper_s = serialized_ + allowance;

    for (const RankCost& rc : rep.per_rank)
      rep.max_rank_bytes = std::max(rep.max_rank_bytes, rc.bytes_sent);
    rep.mean_rank_bytes =
        static_cast<double>(total_bytes_) / std::max(1u, ranks_);
    return rep;
  }

  const Program& program_;
  const CostDescriptor& d_;
  std::uint32_t ranks_;
  std::uint32_t nodes_ = 0;
  std::uint32_t leaves_ = 0;

  std::vector<std::vector<LOp>> schedule_;
  std::array<std::vector<LinkAcc>, 4> acc_;
  std::vector<RankCost> per_rank_;
  std::vector<CollectiveCost> collectives_;

  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_messages_ = 0;
  std::uint64_t intra_messages_ = 0;
  std::uint64_t net_messages_ = 0;
  std::uint64_t total_frames_ = 0;
  double total_compute_ = 0.0;
  double serialized_ = 0.0;
  double makespan_lower_ = 0.0;
};

std::string fmt_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof buf, "%.2f GiB",
                  static_cast<double>(bytes) / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof buf, "%.2f MiB",
                  static_cast<double>(bytes) / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof buf, "%.2f KiB",
                  static_cast<double>(bytes) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string fmt_s(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f s", seconds);
  return buf;
}

}  // namespace

CostReport analyze_cost(const mpi::Program& program,
                        const CostDescriptor& descriptor) {
  return Interpreter(program, descriptor).run();
}

std::string render_cost(const CostReport& r) {
  std::string out;
  out += "ranks " + std::to_string(r.ranks) + " on " +
         std::to_string(r.nodes) + " node(s), " + std::to_string(r.leaves) +
         " leaf switch(es), mtu " + std::to_string(r.mtu_bytes) + "\n";
  out += "traffic: " + fmt_bytes(r.total_bytes) + " payload in " +
         std::to_string(r.total_messages) + " message(s) (" +
         std::to_string(r.net_messages) + " network / " +
         std::to_string(r.intra_messages) + " intra-node), " +
         std::to_string(r.total_frames) + " frame(s)\n";
  out += "per-rank bytes: max " + fmt_bytes(r.max_rank_bytes) + ", mean " +
         fmt_bytes(static_cast<std::uint64_t>(r.mean_rank_bytes)) + "\n";
  out += "compute total: " + fmt_s(r.total_compute_s) + "\n";
  out += "makespan lower bound: " + fmt_s(r.makespan_lower_s) +
         " (contention-free critical path)\n";
  out += "makespan upper bound: " + fmt_s(r.makespan_upper_s) +
         " (serialized " + fmt_s(r.makespan_serialized_s) +
         " + retransmit allowance " + fmt_s(r.retransmit_allowance_s) +
         ")\n";
  out += std::string("no-drop certificate: ") +
         (r.no_drop_certified ? "PASS (buffers can never overflow)"
                              : "FAIL (some switch buffer may overflow; "
                                "upper bound includes retransmits)") +
         "\n";
  if (!r.link_classes.empty()) {
    support::Table table({"Link class", "Links", "Messages", "Wire bytes",
                          "Busiest link", "In-flight est", "Buffer",
                          "Congested"});
    for (const LinkClassCost& lc : r.link_classes) {
      table.add_row({lc.name, std::to_string(lc.links),
                     std::to_string(lc.messages), fmt_bytes(lc.wire_bytes),
                     fmt_bytes(lc.max_link_wire_bytes),
                     fmt_bytes(lc.max_inflight_est),
                     fmt_bytes(static_cast<std::uint64_t>(lc.buffer_bytes)),
                     std::to_string(lc.congested_links)});
    }
    out += table.render();
  }
  return out;
}

std::string static_analysis_to_json(const CostReport& r,
                                    std::string_view source,
                                    std::uint64_t seed,
                                    const Report& findings) {
  support::JsonWriter w;
  w.begin_object();
  w.field("schema", "mb-static-analysis");
  w.field("schema_version", 1);
  w.field("tool", "mb_verify");
  w.field("tool_version", support::version());
  w.field("source", source);
  w.field("seed", seed);
  w.field("ranks", r.ranks);
  w.field("nodes", r.nodes);
  w.field("leaves", r.leaves);
  w.field("mtu_bytes", r.mtu_bytes);

  w.key("totals").begin_object();
  w.field("payload_bytes", r.total_bytes);
  w.field("messages", r.total_messages);
  w.field("intra_messages", r.intra_messages);
  w.field("net_messages", r.net_messages);
  w.field("frames", r.total_frames);
  w.field("compute_s", r.total_compute_s);
  w.end_object();

  w.key("bounds").begin_object();
  w.field("makespan_lower_s", r.makespan_lower_s);
  w.field("makespan_upper_s", r.makespan_upper_s);
  w.field("makespan_serialized_s", r.makespan_serialized_s);
  w.field("retransmit_allowance_s", r.retransmit_allowance_s);
  w.field("no_drop_certified", r.no_drop_certified);
  w.end_object();

  w.key("rank_summary").begin_object();
  w.field("max_bytes_sent", r.max_rank_bytes);
  w.field("mean_bytes_sent", r.mean_rank_bytes);
  w.end_object();

  w.key("per_rank").begin_object();
  w.key("bytes_sent").begin_array();
  for (const RankCost& rc : r.per_rank) w.value(rc.bytes_sent);
  w.end_array();
  w.key("bytes_received").begin_array();
  for (const RankCost& rc : r.per_rank) w.value(rc.bytes_received);
  w.end_array();
  w.key("messages_sent").begin_array();
  for (const RankCost& rc : r.per_rank) w.value(rc.messages_sent);
  w.end_array();
  w.key("messages_received").begin_array();
  for (const RankCost& rc : r.per_rank) w.value(rc.messages_received);
  w.end_array();
  w.key("finish_lower_s").begin_array();
  for (const RankCost& rc : r.per_rank) w.value(rc.finish_lower_s);
  w.end_array();
  w.end_object();

  w.key("link_classes").begin_array();
  for (const LinkClassCost& lc : r.link_classes) {
    w.begin_object();
    w.field("name", lc.name);
    w.field("links", lc.links);
    w.field("messages", lc.messages);
    w.field("wire_bytes", lc.wire_bytes);
    w.field("max_link_wire_bytes", lc.max_link_wire_bytes);
    w.field("max_inflight_est", lc.max_inflight_est);
    w.field("buffer_bytes", lc.buffer_bytes);
    w.field("congested_links", lc.congested_links);
    w.field("no_drop_certified", lc.no_drop_certified);
    w.end_object();
  }
  w.end_array();

  w.key("collectives").begin_array();
  for (const CollectiveCost& cc : r.collectives) {
    w.begin_object();
    w.field("kind", kind_name(cc.kind));
    w.field("op_index", static_cast<std::uint64_t>(cc.op_index));
    if (!cc.label.empty()) w.field("label", cc.label);
    w.field("payload_bytes", cc.payload_bytes);
    w.field("worst_host_down_burst", cc.worst_host_down);
    w.field("worst_uplink_burst", cc.worst_uplink);
    w.end_object();
  }
  w.end_array();

  w.key("counts").begin_object();
  w.field("error", static_cast<std::uint64_t>(findings.errors()));
  w.field("warn", static_cast<std::uint64_t>(findings.warnings()));
  w.field("note", static_cast<std::uint64_t>(findings.notes()));
  w.end_object();
  w.key("findings").begin_array();
  for (const Diagnostic& d : findings.findings()) {
    w.begin_object();
    w.field("rule", d.rule);
    w.field("severity", severity_name(d.severity));
    if (d.location.in_program) {
      w.field("rank", d.location.rank);
      w.field("op_index", static_cast<std::uint64_t>(d.location.op_index));
    }
    if (!d.location.config_key.empty())
      w.field("config_key", d.location.config_key);
    w.field("message", d.message);
    if (!d.hint.empty()) w.field("hint", d.hint);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace mb::verify
